#include "common/rng.h"

#include <cmath>

#include "common/assert.h"

namespace multipub {

double Rng::uniform(double lo, double hi) {
  MP_EXPECTS(lo <= hi);
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  MP_EXPECTS(lo <= hi);
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::lognormal_median(double median, double sigma) {
  MP_EXPECTS(median > 0.0);
  MP_EXPECTS(sigma >= 0.0);
  // For LogNormal(mu, sigma), the median is exp(mu).
  const double mu = std::log(median);
  return std::lognormal_distribution<double>(mu, sigma)(engine_);
}

double Rng::normal(double mean, double stddev) {
  MP_EXPECTS(stddev >= 0.0);
  if (stddev == 0.0) return mean;
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

double Rng::exponential(double mean) {
  MP_EXPECTS(mean > 0.0);
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

Rng Rng::fork() {
  // Draw a fresh 64-bit seed; the child stream is independent of subsequent
  // draws from this generator.
  return Rng(engine_());
}

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

std::uint64_t derive_stream_seed(std::uint64_t base_seed,
                                 std::uint64_t stream_key) {
  // The golden-ratio increment decorrelates (base, key) pairs that differ in
  // only a few bits before the finalizer scrambles them.
  return mix64(base_seed + 0x9e3779b97f4a7c15ULL * (stream_key + 1));
}

}  // namespace multipub
