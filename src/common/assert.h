// Contract-checking macros in the spirit of the Core Guidelines' Expects /
// Ensures (I.6, I.8). Violations indicate programmer error and abort with a
// message; they are never used for expected runtime conditions.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace multipub::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "[multipub] %s violated: %s (%s:%d)\n", kind, expr,
               file, line);
  std::abort();
}

}  // namespace multipub::detail

#define MP_EXPECTS(cond)                                                  \
  do {                                                                    \
    if (!(cond))                                                          \
      ::multipub::detail::contract_failure("precondition", #cond,         \
                                           __FILE__, __LINE__);           \
  } while (false)

#define MP_ENSURES(cond)                                                  \
  do {                                                                    \
    if (!(cond))                                                          \
      ::multipub::detail::contract_failure("postcondition", #cond,        \
                                           __FILE__, __LINE__);           \
  } while (false)
