// Percentile and summary statistics.
//
// The delivery-constraint check (paper Eq. 5/6) asks for the n-th smallest
// delivery time where n = ceil(ratio/100 * |D|). Two implementations are
// provided:
//  - percentile():          over a materialized sample list (the paper's
//                           approach; linear in the number of messages),
//  - weighted_percentile(): over (value, multiplicity) pairs, which is how
//                           the optimizer aggregates per (publisher,
//                           subscriber) delivery times whose multiplicity is
//                           the publisher's message count.
// Both compute the identical order statistic; a property-test suite asserts
// this equivalence.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"

namespace multipub {

/// A sample value with an integer multiplicity (e.g. one (publisher,
/// subscriber) pair's delivery time repeated for each message sent).
struct WeightedSample {
  Millis value = 0.0;
  std::uint64_t weight = 1;
};

/// 1-based rank of the order statistic that realizes `ratio` percent of `n`
/// samples: ceil(ratio/100 * n), clamped to [1, n]. Pre: n > 0,
/// 0 < ratio <= 100.
[[nodiscard]] std::uint64_t percentile_rank(double ratio, std::uint64_t n);

/// The order statistic of rank percentile_rank(ratio, samples.size()).
/// Copies the input (caller keeps ordering); uses nth_element, O(n).
/// Pre: !samples.empty().
[[nodiscard]] Millis percentile(std::span<const Millis> samples, double ratio);

/// Weighted equivalent: treats each sample as `weight` repeated values and
/// returns the same order statistic percentile() would return on the
/// expanded list. O(k log k) in the number of distinct pairs.
/// Pre: samples non-empty with total weight > 0.
[[nodiscard]] Millis weighted_percentile(std::vector<WeightedSample> samples,
                                         double ratio);

/// In-place variant for callers that own a reusable scratch buffer (the
/// optimizer's evaluation engine): identical order statistic, zero
/// allocations, reorders `samples`. Pre: samples non-empty, total weight > 0.
[[nodiscard]] Millis weighted_percentile_inplace(std::span<WeightedSample> samples,
                                                 double ratio);

/// Plain summary statistics over a sample list.
struct Summary {
  std::uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
};

/// Computes count/min/max/mean/stddev (population stddev). Empty input
/// yields a zeroed Summary.
[[nodiscard]] Summary summarize(std::span<const double> samples);

}  // namespace multipub
