// Deterministic random number generation.
//
// Every stochastic component of MultiPub (synthetic client population,
// workload generation, event jitter) draws from an explicitly seeded Rng so
// that simulations and experiments are reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <random>

namespace multipub {

/// Seeded wrapper around mt19937_64 with the distribution helpers the
/// codebase needs. Not thread-safe; give each thread / component its own
/// instance (fork() derives independent streams).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Lognormal draw parameterized by the *median* and sigma of the
  /// underlying normal — convenient for last-mile latency modelling.
  [[nodiscard]] double lognormal_median(double median, double sigma);

  /// Normal (Gaussian) draw.
  [[nodiscard]] double normal(double mean, double stddev);

  /// Exponential draw with the given mean (inter-arrival times).
  [[nodiscard]] double exponential(double mean);

  /// Derives an independent generator; deterministic in (seed, n_forks).
  [[nodiscard]] Rng fork();

  /// Access for std:: algorithms (std::shuffle etc.).
  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// SplitMix64 finalizer: a high-quality 64->64 bit mixer (Steele et al.,
/// "Fast Splittable Pseudorandom Number Generators"). Bijective, so distinct
/// inputs never collide.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x);

/// Seed of the substream identified by `stream_key` within the family rooted
/// at `base_seed`. A pure function of its two inputs: unlike Rng::fork(),
/// deriving one stream does not disturb any other, so components that need a
/// private stream per entity (e.g. one jitter stream per network link) get
/// the SAME stream regardless of the order — or the thread — in which the
/// entities first draw. That order-independence is what makes sharded
/// parallel runs bit-identical to single-threaded ones.
[[nodiscard]] std::uint64_t derive_stream_seed(std::uint64_t base_seed,
                                               std::uint64_t stream_key);

}  // namespace multipub
