// Deterministic random number generation.
//
// Every stochastic component of MultiPub (synthetic client population,
// workload generation, event jitter) draws from an explicitly seeded Rng so
// that simulations and experiments are reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <random>

namespace multipub {

/// Seeded wrapper around mt19937_64 with the distribution helpers the
/// codebase needs. Not thread-safe; give each thread / component its own
/// instance (fork() derives independent streams).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Lognormal draw parameterized by the *median* and sigma of the
  /// underlying normal — convenient for last-mile latency modelling.
  [[nodiscard]] double lognormal_median(double median, double sigma);

  /// Normal (Gaussian) draw.
  [[nodiscard]] double normal(double mean, double stddev);

  /// Exponential draw with the given mean (inter-arrival times).
  [[nodiscard]] double exponential(double mean);

  /// Derives an independent generator; deterministic in (seed, n_forks).
  [[nodiscard]] Rng fork();

  /// Access for std:: algorithms (std::shuffle etc.).
  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace multipub
