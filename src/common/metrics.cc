#include "common/metrics.h"

#include <cstdio>

namespace multipub {

void MetricsRegistry::set(std::string name, double value) {
  values_[std::move(name)] = value;
}

void MetricsRegistry::add(std::string name, double delta) {
  values_[std::move(name)] += delta;
}

double MetricsRegistry::value(std::string_view name) const {
  const auto it = values_.find(name);
  return it == values_.end() ? 0.0 : it->second;
}

bool MetricsRegistry::contains(std::string_view name) const {
  return values_.find(name) != values_.end();
}

std::string MetricsRegistry::render() const {
  std::string out;
  char buffer[64];
  for (const auto& [name, value] : values_) {
    std::snprintf(buffer, sizeof(buffer), " %.17g\n", value);
    out += name;
    out += buffer;
  }
  return out;
}

}  // namespace multipub
