#include "common/metrics.h"

#include <cstdio>

namespace multipub {

void ShardedCounter::configure(std::size_t lanes) {
  cells_.assign(lanes == 0 ? 1 : lanes, Cell{});
}

std::uint64_t ShardedCounter::total() const {
  std::uint64_t sum = 0;
  for (const Cell& cell : cells_) sum += cell.value;
  return sum;
}

void MetricsRegistry::set(std::string name, double value) {
  values_[std::move(name)] = value;
}

void MetricsRegistry::add(std::string name, double delta) {
  values_[std::move(name)] += delta;
}

double MetricsRegistry::value(std::string_view name) const {
  const auto it = values_.find(name);
  return it == values_.end() ? 0.0 : it->second;
}

bool MetricsRegistry::contains(std::string_view name) const {
  return values_.find(name) != values_.end();
}

std::string MetricsRegistry::render() const {
  std::string out;
  char buffer[64];
  for (const auto& [name, value] : values_) {
    std::snprintf(buffer, sizeof(buffer), " %.17g\n", value);
    out += name;
    out += buffer;
  }
  return out;
}

}  // namespace multipub
