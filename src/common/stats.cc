#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace multipub {

std::uint64_t percentile_rank(double ratio, std::uint64_t n) {
  MP_EXPECTS(n > 0);
  MP_EXPECTS(ratio > 0.0 && ratio <= 100.0);
  const auto rank =
      static_cast<std::uint64_t>(std::ceil(ratio / 100.0 * static_cast<double>(n)));
  return std::clamp<std::uint64_t>(rank, 1, n);
}

Millis percentile(std::span<const Millis> samples, double ratio) {
  MP_EXPECTS(!samples.empty());
  std::vector<Millis> copy(samples.begin(), samples.end());
  const std::uint64_t rank = percentile_rank(ratio, copy.size());
  auto nth = copy.begin() + static_cast<std::ptrdiff_t>(rank - 1);
  std::nth_element(copy.begin(), nth, copy.end());
  return *nth;
}

Millis weighted_percentile(std::vector<WeightedSample> samples, double ratio) {
  return weighted_percentile_inplace(samples, ratio);
}

Millis weighted_percentile_inplace(std::span<WeightedSample> samples,
                                   double ratio) {
  MP_EXPECTS(!samples.empty());
  std::uint64_t total = 0;
  for (const auto& s : samples) total += s.weight;
  MP_EXPECTS(total > 0);
  std::uint64_t rank = percentile_rank(ratio, total);

  // Weighted quickselect: expected O(k), which matters because the optimizer
  // calls this once per candidate configuration. Each round partitions
  // around a median-of-three pivot and discards either the strictly-smaller
  // or the smaller-or-equal prefix, adjusting the remaining rank.
  auto lo = samples.begin();
  auto hi = samples.end();
  while (hi - lo > 1) {
    const Millis a = lo->value;
    const Millis b = (lo + (hi - lo) / 2)->value;
    const Millis c = (hi - 1)->value;
    const Millis pivot =
        std::max(std::min(a, b), std::min(std::max(a, b), c));

    const auto less_end =
        std::partition(lo, hi, [pivot](const WeightedSample& s) {
          return s.value < pivot;
        });
    std::uint64_t w_less = 0;
    for (auto it = lo; it != less_end; ++it) w_less += it->weight;
    if (rank <= w_less) {
      hi = less_end;  // shrinks: the pivot-equal group is excluded
      continue;
    }
    const auto equal_end =
        std::partition(less_end, hi, [pivot](const WeightedSample& s) {
          return s.value == pivot;
        });
    std::uint64_t w_equal = 0;
    for (auto it = less_end; it != equal_end; ++it) w_equal += it->weight;
    if (rank <= w_less + w_equal) return pivot;
    rank -= w_less + w_equal;
    lo = equal_end;  // shrinks: the pivot-equal group is non-empty
  }
  return lo->value;
}

Summary summarize(std::span<const double> samples) {
  Summary out;
  if (samples.empty()) return out;
  out.count = samples.size();
  out.min = *std::min_element(samples.begin(), samples.end());
  out.max = *std::max_element(samples.begin(), samples.end());
  double sum = 0.0;
  for (double s : samples) sum += s;
  out.mean = sum / static_cast<double>(out.count);
  double sq = 0.0;
  for (double s : samples) sq += (s - out.mean) * (s - out.mean);
  out.stddev = std::sqrt(sq / static_cast<double>(out.count));
  return out;
}

}  // namespace multipub
