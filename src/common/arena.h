// Block-chained bump allocator for the million-client data plane.
//
// The cohort layer (DESIGN.md §12) keeps per-client state in parallel
// arrays and interned topic sets; none of it is ever freed individually, so
// a bump allocator is the right shape: allocation is a pointer increment,
// deallocation is dropping the whole arena, and 10M clients do not turn
// into 10M small heap nodes with per-node malloc headers.
//
// Blocks double geometrically up to a cap, so tiny registries stay tiny and
// big ones amortize the malloc count to O(log n). Alignment is handled per
// allocation; an oversized request gets its own block.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "common/assert.h"

namespace multipub {

class Arena {
 public:
  static constexpr std::size_t kMinBlockBytes = 4 * 1024;
  static constexpr std::size_t kMaxBlockBytes = 4 * 1024 * 1024;

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// `size` bytes aligned to `align` (a power of two). The memory lives
  /// until the arena is destroyed or reset().
  [[nodiscard]] void* allocate(std::size_t size, std::size_t align) {
    MP_EXPECTS(align != 0 && (align & (align - 1)) == 0);
    if (size == 0) size = 1;
    const std::uintptr_t current =
        reinterpret_cast<std::uintptr_t>(cursor_);
    const std::uintptr_t aligned = (current + align - 1) & ~(align - 1);
    const std::size_t padding = aligned - current;
    if (cursor_ == nullptr || padding + size > remaining_) {
      grow(size, align);
      return allocate(size, align);
    }
    cursor_ += padding;
    remaining_ -= padding;
    void* out = cursor_;
    cursor_ += size;
    remaining_ -= size;
    bytes_used_ += padding + size;
    return out;
  }

  /// Default-initialized array of `count` T. T must be trivially
  /// destructible — the arena never runs destructors.
  template <typename T>
  [[nodiscard]] T* make_array(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>);
    T* out = static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
    for (std::size_t i = 0; i < count; ++i) new (out + i) T();
    return out;
  }

  /// One T constructed from `args`. Same triviality contract as make_array.
  template <typename T, typename... Args>
  [[nodiscard]] T* make(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>);
    void* slot = allocate(sizeof(T), alignof(T));
    return new (slot) T(static_cast<Args&&>(args)...);
  }

  /// Bytes handed out (including alignment padding) — what a bench reports
  /// as the registry's working-set footprint.
  [[nodiscard]] std::size_t bytes_used() const { return bytes_used_; }

  /// Total bytes reserved from the heap across all blocks.
  [[nodiscard]] std::size_t bytes_reserved() const { return bytes_reserved_; }

  /// Drops every block. Invalidates all outstanding allocations.
  void reset() {
    blocks_.clear();
    cursor_ = nullptr;
    remaining_ = 0;
    next_block_bytes_ = kMinBlockBytes;
    bytes_used_ = 0;
    bytes_reserved_ = 0;
  }

 private:
  void grow(std::size_t size, std::size_t align) {
    // Worst case the aligned request needs size + align - 1 bytes.
    std::size_t need = size + align - 1;
    std::size_t block = next_block_bytes_;
    while (block < need) block *= 2;
    blocks_.push_back(std::make_unique<std::byte[]>(block));
    cursor_ = blocks_.back().get();
    remaining_ = block;
    bytes_reserved_ += block;
    if (next_block_bytes_ < kMaxBlockBytes) next_block_bytes_ *= 2;
  }

  std::vector<std::unique_ptr<std::byte[]>> blocks_;
  std::byte* cursor_ = nullptr;
  std::size_t remaining_ = 0;
  std::size_t next_block_bytes_ = kMinBlockBytes;
  std::size_t bytes_used_ = 0;
  std::size_t bytes_reserved_ = 0;
};

}  // namespace multipub
