// Strong identifier and unit types used throughout MultiPub.
//
// Following C++ Core Guidelines P.1 ("express ideas directly in code") we do
// not pass bare ints/doubles across module boundaries: a RegionId cannot be
// confused with a ClientId, and a latency (Millis) cannot be added to a
// dollar amount without an explicit conversion.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace multipub {

/// CRTP-free strong integer id. `Tag` makes each instantiation a distinct
/// type; the underlying value is a dense 0-based index suitable for vector
/// addressing.
template <typename Tag>
class StrongId {
 public:
  using underlying_type = std::int32_t;

  constexpr StrongId() = default;
  constexpr explicit StrongId(underlying_type v) : value_(v) {}

  [[nodiscard]] constexpr underlying_type value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ >= 0; }

  /// Dense index for container addressing. Pre: valid().
  [[nodiscard]] constexpr std::size_t index() const {
    return static_cast<std::size_t>(value_);
  }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;

  static constexpr StrongId invalid() { return StrongId{-1}; }

 private:
  underlying_type value_ = -1;
};

struct RegionTag {};
struct ClientTag {};
struct TopicTag {};

/// Identifies one cloud region (a column of the assignment matrix).
using RegionId = StrongId<RegionTag>;
/// Identifies one client — a publisher or a subscriber endpoint.
using ClientId = StrongId<ClientTag>;
/// Identifies one pub/sub topic (a row of the assignment matrix).
using TopicId = StrongId<TopicTag>;

/// One-way network latency (or simulated time instant) in milliseconds.
/// Stored as double: the paper's model works with fractional ping averages.
using Millis = double;

/// Message / bandwidth size in bytes.
using Bytes = std::uint64_t;

/// US dollars (cost model output).
using Dollars = double;

inline constexpr double kBytesPerGb = 1024.0 * 1024.0 * 1024.0;

/// Converts a published $/GB tariff into $/byte, the unit used by the
/// per-message cost equations (paper §III-E: alpha and beta are per byte).
[[nodiscard]] constexpr double per_gb_to_per_byte(double dollars_per_gb) {
  return dollars_per_gb / kBytesPerGb;
}

/// Sentinel "no latency measured / unreachable" value.
inline constexpr Millis kUnreachable = std::numeric_limits<Millis>::infinity();

}  // namespace multipub

template <typename Tag>
struct std::hash<multipub::StrongId<Tag>> {
  std::size_t operator()(multipub::StrongId<Tag> id) const noexcept {
    return std::hash<std::int32_t>{}(id.value());
  }
};
