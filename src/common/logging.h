// Minimal leveled logger.
//
// MultiPub components log reconfiguration decisions and protocol events at
// Info/Debug; the default level (Warn) keeps tests and benchmarks quiet.
// A single global level keeps the dependency surface tiny — the simulator is
// single-threaded per scenario, and the level is typically set once at
// startup before any concurrency begins.
#pragma once

#include <sstream>
#include <string_view>

namespace multipub {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

namespace detail {
void log_line(LogLevel level, std::string_view component,
              std::string_view message);
}  // namespace detail

/// Streams one log line on destruction:  `[level] component: message`.
/// Usage: LogStream(LogLevel::kInfo, "controller") << "topic " << t;
class LogStream {
 public:
  LogStream(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() {
    if (level_ >= log_level()) {
      detail::log_line(level_, component_, buffer_.str());
    }
  }

  template <typename T>
  LogStream& operator<<(const T& value) {
    if (level_ >= log_level()) buffer_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream buffer_;
};

}  // namespace multipub

#define MP_LOG_DEBUG(component) \
  ::multipub::LogStream(::multipub::LogLevel::kDebug, component)
#define MP_LOG_INFO(component) \
  ::multipub::LogStream(::multipub::LogLevel::kInfo, component)
#define MP_LOG_WARN(component) \
  ::multipub::LogStream(::multipub::LogLevel::kWarn, component)
#define MP_LOG_ERROR(component) \
  ::multipub::LogStream(::multipub::LogLevel::kError, component)
