#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace multipub {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

[[nodiscard]] const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO";
    case LogLevel::kWarn:  return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace detail {

void log_line(LogLevel level, std::string_view component,
              std::string_view message) {
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace detail
}  // namespace multipub
