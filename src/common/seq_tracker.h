// Cumulative-ack cursor over a dense 1-based sequence stream.
//
// Reliable delivery (DESIGN.md §15) numbers every broker ring entry 1, 2,
// 3, ... and receivers must be able to say "replay everything from X" such
// that repeated requests eventually heal ANY loss pattern — including the
// loss of a replay batch itself. A high-water cursor cannot: once it
// advances past a gap, the missing entries are never asked for again. This
// tracker advances `next` only contiguously (TCP-style cumulative ack) and
// parks out-of-order receipts in a small ordered set until the hole fills,
// so `next` always names the oldest entry still missing.
#pragma once

#include <cstdint>
#include <set>

namespace multipub {

class SeqTracker {
 public:
  /// Records receipt of sequence `s`. Idempotent; `s == 0` (an unstamped
  /// message) is ignored.
  void record(std::uint64_t s) {
    if (s < next_) return;
    if (s == next_) {
      ++next_;
      while (!pending_.empty() && *pending_.begin() == next_) {
        pending_.erase(pending_.begin());
        ++next_;
      }
    } else {
      pending_.insert(s);
    }
    if (s > high_) high_ = s;
  }

  /// True when `s` would open a NEW gap: it lands beyond everything seen so
  /// far AND beyond the contiguous point. The caller fires one replay
  /// request per new gap; re-requests for a stalled gap are the periodic
  /// sync pass's job, not the per-delivery path's.
  [[nodiscard]] bool opens_gap(std::uint64_t s) const {
    return s > high_ + 1 && s > next_;
  }

  /// Oldest sequence not yet received — the `from` of a replay request.
  [[nodiscard]] std::uint64_t next() const { return next_; }
  /// Highest sequence received (0 = nothing yet).
  [[nodiscard]] std::uint64_t high() const { return high_; }
  /// True when everything in [1, high] arrived.
  [[nodiscard]] bool contiguous() const { return next_ == high_ + 1; }

  /// Back to the stream origin (a (re)attach faces fresh ring numbering).
  void reset() {
    next_ = 1;
    high_ = 0;
    pending_.clear();
  }

  friend bool operator==(const SeqTracker& a, const SeqTracker& b) {
    return a.next_ == b.next_ && a.high_ == b.high_ &&
           a.pending_ == b.pending_;
  }

 private:
  std::uint64_t next_ = 1;
  std::uint64_t high_ = 0;
  std::set<std::uint64_t> pending_;
};

}  // namespace multipub
