// Minimal metrics registry.
//
// A flat name -> value map with counter (add) and gauge (set) semantics and
// a deterministic text rendering, in the spirit of a Prometheus exposition:
// one "name value" line per metric, sorted by name. Components stay
// metrics-free; sim::collect_metrics snapshots a live system into a
// registry on demand.
#pragma once

#include <map>
#include <string>
#include <string_view>

namespace multipub {

class MetricsRegistry {
 public:
  /// Gauge semantics: overwrite.
  void set(std::string name, double value);

  /// Counter semantics: accumulate (creates at delta when absent).
  void add(std::string name, double delta);

  /// Current value; 0.0 when the metric does not exist.
  [[nodiscard]] double value(std::string_view name) const;

  [[nodiscard]] bool contains(std::string_view name) const;
  [[nodiscard]] std::size_t size() const { return values_.size(); }

  /// "name value\n" lines, sorted by name, %.17g values (round-trippable).
  [[nodiscard]] std::string render() const;

 private:
  std::map<std::string, double, std::less<>> values_;
};

}  // namespace multipub
