// Minimal metrics registry.
//
// A flat name -> value map with counter (add) and gauge (set) semantics and
// a deterministic text rendering, in the spirit of a Prometheus exposition:
// one "name value" line per metric, sorted by name. Components stay
// metrics-free; sim::collect_metrics snapshots a live system into a
// registry on demand.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace multipub {

/// Counter that is race-free under concurrent increment without a lock or an
/// atomic on the hot path: each writer owns one LANE (a cache-line-padded
/// cell) and bumps it with a plain store; total() merges the lanes in fixed
/// lane order on a quiescent counter. The contract mirrors the sharded data
/// plane's phase structure:
///   - between barriers, at most one thread writes each lane;
///   - total()/lane() are only called while no writer is running.
/// Integer addition is commutative, so the merged value is independent of
/// how work was distributed over lanes — a K-shard run and a 1-shard run of
/// the same workload report bit-identical counts.
class ShardedCounter {
 public:
  explicit ShardedCounter(std::size_t lanes = 1) { configure(lanes); }

  /// Resets to `lanes` zeroed lanes. Pre: no concurrent access.
  void configure(std::size_t lanes);

  void add(std::size_t lane, std::uint64_t delta = 1) {
    cells_[lane].value += delta;
  }

  [[nodiscard]] std::size_t lanes() const { return cells_.size(); }
  [[nodiscard]] std::uint64_t lane(std::size_t i) const {
    return cells_[i].value;
  }

  /// Deterministic merge: sums lanes in ascending lane order.
  [[nodiscard]] std::uint64_t total() const;

 private:
  struct alignas(64) Cell {  // one cache line per lane: no false sharing
    std::uint64_t value = 0;
  };
  std::vector<Cell> cells_;
};

class MetricsRegistry {
 public:
  /// Gauge semantics: overwrite.
  void set(std::string name, double value);

  /// Counter semantics: accumulate (creates at delta when absent).
  void add(std::string name, double delta);

  /// Current value; 0.0 when the metric does not exist.
  [[nodiscard]] double value(std::string_view name) const;

  [[nodiscard]] bool contains(std::string_view name) const;
  [[nodiscard]] std::size_t size() const { return values_.size(); }

  /// "name value\n" lines, sorted by name, %.17g values (round-trippable).
  [[nodiscard]] std::string render() const;

 private:
  std::map<std::string, double, std::less<>> values_;
};

}  // namespace multipub
