#include "client/subscriber.h"

#include "common/assert.h"

namespace multipub::client {

Subscriber::Subscriber(ClientId id, net::Clock& clock, net::Bus& bus,
                       const geo::ClientLatencyMap& latencies)
    : id_(id),
      clock_(&clock),
      bus_(&bus),
      latencies_(&latencies),
      prober_(id, clock, bus) {
  MP_EXPECTS(id.valid());
  bus.register_handler(net::Address::client(id),
                       [this](const wire::Message& msg) { handle(msg); });
}

void Subscriber::subscribe(TopicId topic, const core::TopicConfig& config,
                           wire::KeyFilter filter) {
  MP_EXPECTS(!config.regions.empty());
  filters_[topic] = filter;
  attach(topic, latencies_->closest_region(id_, config.regions));
}

void Subscriber::unsubscribe(TopicId topic) {
  const auto it = attachments_.find(topic);
  if (it == attachments_.end()) return;

  wire::Message msg;
  msg.type = wire::MessageType::kUnsubscribe;
  msg.topic = topic;
  msg.subscriber = id_;
  bus_->send(net::Address::client(id_), net::Address::region(it->second),
                   msg);
  attachments_.erase(it);
  filters_.erase(topic);
}

RegionId Subscriber::attached_region(TopicId topic) const {
  const auto it = attachments_.find(topic);
  return it == attachments_.end() ? RegionId::invalid() : it->second;
}

std::vector<Millis> Subscriber::delivery_times() const {
  std::vector<Millis> out;
  out.reserve(deliveries_.size());
  for (const auto& record : deliveries_) out.push_back(record.delivery_time);
  return out;
}

void Subscriber::attach(TopicId topic, RegionId region) {
  const auto it = attachments_.find(topic);
  if (it != attachments_.end() && it->second != region) {
    // Reconnection (paper §III-A5), make-before-break: join the new region
    // now, leave the old one after the grace period so in-flight
    // publications still land somewhere that knows us.
    const RegionId old_region = it->second;
    ++reconnects_;
    clock_->schedule_after(handover_grace_ms_, [this, topic, old_region] {
      const auto current = attachments_.find(topic);
      if (current != attachments_.end() && current->second == old_region) {
        return;  // flapped back during the grace period: still attached
      }
      wire::Message unsub;
      unsub.type = wire::MessageType::kUnsubscribe;
      unsub.topic = topic;
      unsub.subscriber = id_;
      bus_->send(net::Address::client(id_),
                       net::Address::region(old_region), unsub);
    });
  }

  wire::Message sub;
  sub.type = wire::MessageType::kSubscribe;
  sub.topic = topic;
  sub.subscriber = id_;
  if (const auto filter_it = filters_.find(topic);
      filter_it != filters_.end()) {
    sub.filter = filter_it->second;  // content filter survives reconnections
  }
  bus_->send(net::Address::client(id_), net::Address::region(region),
                   sub);
  attachments_[topic] = region;
}

void Subscriber::handle(const wire::Message& msg) {
  if (prober_.on_message(msg)) return;
  switch (msg.type) {
    case wire::MessageType::kDeliver: {
      // Handover overlap can deliver the same publication from two regions;
      // keep the first copy only.
      if (!seen_[msg.topic][msg.publisher].insert(msg.seq).second) {
        ++duplicates_;
        break;
      }
      DeliveryRecord record;
      record.topic = msg.topic;
      record.publisher = msg.publisher;
      record.seq = msg.seq;
      record.delivery_time = clock_->now() - msg.published_at;
      deliveries_.push_back(record);
      break;
    }
    case wire::MessageType::kConfigUpdate: {
      // Only react if we are subscribed to the topic.
      if (attachments_.find(msg.topic) == attachments_.end()) break;
      core::TopicConfig config;
      config.regions = msg.config_regions;
      config.mode = msg.config_mode == wire::WireMode::kRouted
                        ? core::DeliveryMode::kRouted
                        : core::DeliveryMode::kDirect;
      attach(msg.topic, latencies_->closest_region(id_, config.regions));
      break;
    }
    default:
      break;
  }
}

}  // namespace multipub::client
