#include "client/subscriber.h"

#include "common/assert.h"

namespace multipub::client {

Subscriber::Subscriber(ClientId id, net::Clock& clock, net::Bus& bus,
                       const geo::ClientLatencyMap& latencies)
    : id_(id),
      clock_(&clock),
      bus_(&bus),
      latencies_(&latencies),
      prober_(id, clock, bus) {
  MP_EXPECTS(id.valid());
  bus.register_handler(net::Address::client(id),
                       [this](const wire::Message& msg) { handle(msg); });
}

void Subscriber::subscribe(TopicId topic, const core::TopicConfig& config,
                           wire::KeyFilter filter) {
  MP_EXPECTS(!config.regions.empty());
  filters_[topic] = filter;
  attach(topic, latencies_->closest_region(id_, config.regions));
}

void Subscriber::unsubscribe(TopicId topic) {
  const auto it = attachments_.find(topic);
  if (it == attachments_.end()) return;

  wire::Message msg;
  msg.type = wire::MessageType::kUnsubscribe;
  msg.topic = topic;
  msg.subscriber = id_;
  bus_->send(net::Address::client(id_), net::Address::region(it->second),
                   msg);
  attachments_.erase(it);
  filters_.erase(topic);
}

RegionId Subscriber::attached_region(TopicId topic) const {
  const auto it = attachments_.find(topic);
  return it == attachments_.end() ? RegionId::invalid() : it->second;
}

std::vector<Millis> Subscriber::delivery_times() const {
  std::vector<Millis> out;
  out.reserve(deliveries_.size());
  for (const auto& record : deliveries_) out.push_back(record.delivery_time);
  return out;
}

void Subscriber::attach(TopicId topic, RegionId region) {
  const auto it = attachments_.find(topic);
  if (it != attachments_.end() && it->second != region) {
    // Reconnection (paper §III-A5), make-before-break: join the new region
    // now, leave the old one after the grace period so in-flight
    // publications still land somewhere that knows us.
    const RegionId old_region = it->second;
    ++reconnects_;
    clock_->schedule_after(handover_grace_ms_, [this, topic, old_region] {
      const auto current = attachments_.find(topic);
      if (current != attachments_.end() && current->second == old_region) {
        return;  // flapped back during the grace period: still attached
      }
      wire::Message unsub;
      unsub.type = wire::MessageType::kUnsubscribe;
      unsub.topic = topic;
      unsub.subscriber = id_;
      bus_->send(net::Address::client(id_),
                       net::Address::region(old_region), unsub);
    });
  }

  wire::Message sub;
  sub.type = wire::MessageType::kSubscribe;
  sub.topic = topic;
  sub.subscriber = id_;
  if (const auto filter_it = filters_.find(topic);
      filter_it != filters_.end()) {
    sub.filter = filter_it->second;  // content filter survives reconnections
  }
  bus_->send(net::Address::client(id_), net::Address::region(region),
                   sub);
  attachments_[topic] = region;
  // Every (re)attach restarts gap tracking at the ring's origin: the broker
  // we now face may be a crashed-and-rebuilt one with fresh numbering, and
  // starting at 1 means even a loss of the very first delivery is detected.
  if (reliable_) cursors_[topic].reset();
}

std::uint64_t Subscriber::unique_count(TopicId topic) const {
  const auto it = seen_.find(topic);
  if (it == seen_.end()) return 0;
  std::uint64_t count = 0;
  for (const auto& [publisher, seqs] : it->second) count += seqs.size();
  return count;
}

bool Subscriber::matches_all(TopicId topic) const {
  const auto it = filters_.find(topic);
  return it != filters_.end() && it->second.match_all();
}

void Subscriber::request_replay(TopicId topic, std::uint64_t from) {
  const auto it = attachments_.find(topic);
  if (it == attachments_.end()) return;
  wire::Message req;
  req.type = wire::MessageType::kReplayRequest;
  req.topic = topic;
  req.subscriber = id_;
  req.delivery_seq = from;
  bus_->send(net::Address::client(id_), net::Address::region(it->second),
             req);
  ++replay_requests_;
}

void Subscriber::reconnect(RegionId region) {
  for (const auto& [topic, attached] : attachments_) {
    // Same-region re-attach: an idempotent kSubscribe upsert on the broker
    // (which may have just been rebuilt empty) plus a next_seq reset here.
    if (attached == region) attach(topic, region);
  }
}

void Subscriber::sync_replay() {
  if (!reliable_) return;
  for (const auto& [topic, region] : attachments_) {
    request_replay(topic, cursors_[topic].next());
  }
}

void Subscriber::on_publication(const wire::Message& msg, bool replayed) {
  if (reliable_) {
    SeqTracker& cursor = cursors_[msg.topic];
    // One request per NEW gap; a stalled gap (its replay batch was itself
    // lost) is re-requested by the periodic sync pass from cursor.next(),
    // which — being cumulative — still names the oldest missing entry.
    // Replayed copies never trigger requests (a truncated ring would loop).
    const bool fresh_gap = !replayed && cursor.opens_gap(msg.delivery_seq);
    cursor.record(msg.delivery_seq);
    if (fresh_gap) request_replay(msg.topic, cursor.next());
  }
  // Handover overlap (and replay) can deliver the same publication twice;
  // the (topic, publisher, seq) identity — never the broker's ring stamp —
  // decides what counts, so a rebuilt broker's fresh numbering cannot turn
  // old publications into new ones.
  if (!seen_[msg.topic][msg.publisher].insert(msg.seq).second) {
    ++duplicates_;
    if (dedup_enabled_) return;
    ++recorded_duplicates_;  // negative hook: let the oracle see it
  }
  DeliveryRecord record;
  record.topic = msg.topic;
  record.publisher = msg.publisher;
  record.seq = msg.seq;
  record.delivery_time = clock_->now() - msg.published_at;
  deliveries_.push_back(record);
}

void Subscriber::handle(const wire::Message& msg) {
  if (prober_.on_message(msg)) return;
  switch (msg.type) {
    case wire::MessageType::kDeliver:
      on_publication(msg, /*replayed=*/false);
      break;
    case wire::MessageType::kReplayBatch:
      on_publication(msg, /*replayed=*/true);
      break;
    case wire::MessageType::kConfigUpdate: {
      // Only react if we are subscribed to the topic.
      if (attachments_.find(msg.topic) == attachments_.end()) break;
      core::TopicConfig config;
      config.regions = msg.config_regions;
      config.mode = msg.config_mode == wire::WireMode::kRouted
                        ? core::DeliveryMode::kRouted
                        : core::DeliveryMode::kDirect;
      attach(msg.topic, latencies_->closest_region(id_, config.regions));
      break;
    }
    default:
      break;
  }
}

}  // namespace multipub::client
