// Hash-consed topic-set interning (DESIGN.md §12).
//
// A client's subscription identity is WHICH topics it subscribes to; the
// cohort key needs that identity as one comparable integer. The pool
// canonicalizes (sorts, dedups) each set, stores it once in the arena, and
// returns a dense handle — two clients subscribed to the same topics always
// hold the same handle, so cohort grouping is a map lookup, not a set
// comparison. Handle 0 is always the empty set (a client subscribed to
// nothing belongs to no cohort).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/arena.h"
#include "common/assert.h"
#include "common/types.h"

namespace multipub::client {

class TopicSetPool {
 public:
  /// Borrows the arena; it must outlive the pool.
  explicit TopicSetPool(Arena& arena) : arena_(&arena) {
    sets_.push_back({nullptr, 0});  // handle 0: the empty set
  }

  TopicSetPool(const TopicSetPool&) = delete;
  TopicSetPool& operator=(const TopicSetPool&) = delete;

  static constexpr std::int32_t kEmpty = 0;

  /// Canonical handle for `topics` (order and duplicates ignored).
  [[nodiscard]] std::int32_t intern(std::span<const TopicId> topics) {
    scratch_.assign(topics.begin(), topics.end());
    std::sort(scratch_.begin(), scratch_.end());
    scratch_.erase(std::unique(scratch_.begin(), scratch_.end()),
                   scratch_.end());
    return intern_canonical();
  }

  /// The set's topics in ascending id order.
  [[nodiscard]] std::span<const TopicId> view(std::int32_t handle) const {
    MP_EXPECTS(handle >= 0 &&
               static_cast<std::size_t>(handle) < sets_.size());
    const Stored& s = sets_[static_cast<std::size_t>(handle)];
    return {s.topics, s.count};
  }

  [[nodiscard]] bool contains(std::int32_t handle, TopicId topic) const {
    const auto set = view(handle);
    return std::binary_search(set.begin(), set.end(), topic);
  }

  /// Handle for the set plus `topic` (== handle when already a member).
  [[nodiscard]] std::int32_t with(std::int32_t handle, TopicId topic) {
    const auto set = view(handle);
    if (std::binary_search(set.begin(), set.end(), topic)) return handle;
    scratch_.assign(set.begin(), set.end());
    scratch_.insert(
        std::lower_bound(scratch_.begin(), scratch_.end(), topic), topic);
    return intern_canonical();
  }

  /// Handle for the set minus `topic` (== handle when not a member).
  [[nodiscard]] std::int32_t without(std::int32_t handle, TopicId topic) {
    const auto set = view(handle);
    if (!std::binary_search(set.begin(), set.end(), topic)) return handle;
    scratch_.assign(set.begin(), set.end());
    scratch_.erase(std::find(scratch_.begin(), scratch_.end(), topic));
    return intern_canonical();
  }

  /// Distinct sets interned so far (including the empty set).
  [[nodiscard]] std::size_t size() const { return sets_.size(); }

 private:
  struct Stored {
    const TopicId* topics;
    std::size_t count;
  };

  [[nodiscard]] static std::uint64_t hash_canonical(
      std::span<const TopicId> set) {
    std::uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (const TopicId t : set) {
      h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(t.value()));
      h *= 0x100000001b3ULL;
    }
    return h;
  }

  /// Interns scratch_ (already sorted + deduped).
  [[nodiscard]] std::int32_t intern_canonical() {
    if (scratch_.empty()) return kEmpty;
    const std::uint64_t h = hash_canonical(scratch_);
    auto [lo, hi] = index_.equal_range(h);
    for (auto it = lo; it != hi; ++it) {
      const auto existing = view(it->second);
      if (std::equal(existing.begin(), existing.end(), scratch_.begin(),
                     scratch_.end())) {
        return it->second;
      }
    }
    TopicId* stored = arena_->make_array<TopicId>(scratch_.size());
    std::copy(scratch_.begin(), scratch_.end(), stored);
    const auto handle = static_cast<std::int32_t>(sets_.size());
    sets_.push_back({stored, scratch_.size()});
    index_.emplace(h, handle);
    return handle;
  }

  Arena* arena_;
  std::vector<Stored> sets_;  // canonical storage lives in the arena
  std::unordered_multimap<std::uint64_t, std::int32_t> index_;
  std::vector<TopicId> scratch_;
};

}  // namespace multipub::client
