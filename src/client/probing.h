// Client-side latency probing.
//
// A client measures its one-way latency to a region by sending kPing
// (stamped with the send time) and halving the round trip when the kPong
// echo returns — the same ping-based methodology the paper used to build
// its matrices (§V-A). Each measurement is immediately reported back to the
// measured region as a kLatencyReport, which the region manager forwards to
// the controller's latency estimator.
#pragma once

#include <unordered_map>

#include "geo/region_set.h"
#include "net/bus.h"

namespace multipub::client {

class LatencyProber {
 public:
  /// `self` is the owning client endpoint. Borrows clock and bus.
  LatencyProber(ClientId self, net::Clock& clock, net::Bus& bus);

  /// Sends one kPing to every member of `regions`.
  void probe(geo::RegionSet regions);

  /// Handles a kPong if it belongs to this prober; returns true when the
  /// message was consumed. On a match, computes RTT/2, records it, and
  /// sends a kLatencyReport to the measured region.
  bool on_message(const wire::Message& msg);

  /// Latest one-way measurement per region (empty until pongs arrive).
  [[nodiscard]] const std::unordered_map<RegionId, Millis>& measurements()
      const {
    return measurements_;
  }

  [[nodiscard]] std::uint64_t pings_sent() const { return pings_sent_; }
  [[nodiscard]] std::uint64_t pongs_received() const {
    return pongs_received_;
  }

 private:
  ClientId self_;
  net::Clock* clock_;
  net::Bus* bus_;
  /// Ping seq -> region it probed (pongs carry the seq back).
  std::unordered_map<std::uint64_t, RegionId> outstanding_;
  std::unordered_map<RegionId, Millis> measurements_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t pings_sent_ = 0;
  std::uint64_t pongs_received_ = 0;
};

}  // namespace multipub::client
