// Subscriber client endpoint.
//
// Attaches to the closest serving region of each subscribed topic, records
// the end-to-end delivery time of every publication it receives, and — when
// a kConfigUpdate arrives — re-evaluates its closest serving region and
// moves there if it changed (paper §III-A5).
//
// Reconnection is make-before-break: the new subscription is opened
// immediately and the old one is torn down only after a grace period, so
// publications in flight during the handover are not lost; the overlap can
// deliver a publication twice, which a (topic, publisher, seq) dedup filter
// absorbs. Without this, a reconfiguration under live traffic silently
// drops the messages that were racing the resubscription.
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "client/probing.h"
#include "common/seq_tracker.h"
#include "core/config.h"
#include "geo/latency.h"
#include "net/bus.h"

namespace multipub::client {

/// One received publication, for latency analysis.
struct DeliveryRecord {
  TopicId topic;
  ClientId publisher;
  std::uint64_t seq = 0;
  Millis delivery_time = 0.0;  ///< receive time - publish time.
};

class Subscriber {
 public:
  /// Registers at Address::client(id); borrows everything.
  Subscriber(ClientId id, net::Clock& clock, net::Bus& bus,
             const geo::ClientLatencyMap& latencies);

  Subscriber(const Subscriber&) = delete;
  Subscriber& operator=(const Subscriber&) = delete;

  /// Subscribes to `topic` under `config`, attaching to the closest serving
  /// region (sends kSubscribe). An optional content filter restricts
  /// delivery to publications whose key it matches; the filter survives
  /// reconnections.
  void subscribe(TopicId topic, const core::TopicConfig& config,
                 wire::KeyFilter filter = wire::KeyFilter::all());

  /// Unsubscribes from `topic` entirely.
  void unsubscribe(TopicId topic);

  /// Region this subscriber is currently attached to for the topic;
  /// RegionId::invalid() when not subscribed.
  [[nodiscard]] RegionId attached_region(TopicId topic) const;

  [[nodiscard]] ClientId id() const { return id_; }
  [[nodiscard]] const std::vector<DeliveryRecord>& deliveries() const {
    return deliveries_;
  }
  /// Delivery times only (convenience for percentile computations).
  [[nodiscard]] std::vector<Millis> delivery_times() const;
  [[nodiscard]] std::uint64_t reconnect_count() const { return reconnects_; }

  /// Duplicates absorbed by the handover dedup filter.
  [[nodiscard]] std::uint64_t duplicate_count() const { return duplicates_; }

  /// How long the old subscription is kept alive after a reconnection.
  void set_handover_grace(Millis grace_ms) { handover_grace_ms_ = grace_ms; }
  [[nodiscard]] Millis handover_grace() const { return handover_grace_ms_; }

  void clear_deliveries() { deliveries_.clear(); }

  /// Probes the given regions (kPing); measurements flow to the controller
  /// as kLatencyReports once the echoes return.
  void probe_latencies(geo::RegionSet regions) { prober_.probe(regions); }
  [[nodiscard]] const LatencyProber& prober() const { return prober_; }

  // ---- Reliable delivery (DESIGN.md §15)

  /// Turns on gap detection + replay: deliveries carry the broker's
  /// per-topic ring sequence in delivery_seq; a jump past the expected next
  /// value sends a kReplayRequest for the missing range. Off by default
  /// (the default plane is bit-identical to the pre-reliable client).
  void set_reliable(bool on) { reliable_ = on; }
  [[nodiscard]] bool reliable() const { return reliable_; }

  /// Negative chaos hook: with dedup disabled, duplicate publications are
  /// RECORDED instead of absorbed — the no-duplicate oracle must catch this.
  void set_dedup_enabled(bool on) { dedup_enabled_ = on; }

  /// Duplicates that made it into deliveries() because dedup was disabled
  /// (always 0 with the filter on).
  [[nodiscard]] std::uint64_t recorded_duplicate_count() const {
    return recorded_duplicates_;
  }

  /// kReplayRequests sent (gap detections + sync passes).
  [[nodiscard]] std::uint64_t replay_request_count() const {
    return replay_requests_;
  }

  /// Distinct publications received on `topic` (dedup'd across replays and
  /// handover overlap) — the zero-loss oracle compares this against the
  /// broker-accepted count.
  [[nodiscard]] std::uint64_t unique_count(TopicId topic) const;

  /// True when the topic is subscribed with a match-all content filter (the
  /// zero-loss oracle only binds such subscribers — filtered ones
  /// legitimately receive less).
  [[nodiscard]] bool matches_all(TopicId topic) const;

  /// Reliable sync pass, client half: re-request replay from the expected
  /// next sequence on every attachment, repairing tail losses that no later
  /// delivery's gap would reveal.
  void sync_replay();

  /// Reconnect-and-replay after a broker outage: re-sends the kSubscribe for
  /// every topic attached to `region` and (in reliable mode) resets their
  /// gap tracking, so the next sync pass replays the rebuilt broker's whole
  /// retained ring through the dedup filter.
  void reconnect(RegionId region);

 private:
  void handle(const wire::Message& msg);
  void attach(TopicId topic, RegionId region);
  void on_publication(const wire::Message& msg, bool replayed);
  void request_replay(TopicId topic, std::uint64_t from);

  ClientId id_;
  net::Clock* clock_;
  net::Bus* bus_;
  const geo::ClientLatencyMap* latencies_;
  LatencyProber prober_;
  std::unordered_map<TopicId, RegionId> attachments_;
  std::unordered_map<TopicId, wire::KeyFilter> filters_;
  std::vector<DeliveryRecord> deliveries_;
  /// Dedup filter: per (topic, publisher), the publication seqs already
  /// delivered (handover overlap can deliver twice).
  std::unordered_map<TopicId,
                     std::unordered_map<ClientId, std::unordered_set<std::uint64_t>>>
      seen_;
  Millis handover_grace_ms_ = 1000.0;
  std::uint64_t reconnects_ = 0;
  std::uint64_t duplicates_ = 0;

  // ---- Reliable-delivery state (inert when reliable_ is off).
  bool reliable_ = false;
  bool dedup_enabled_ = true;
  /// Cumulative-ack cursor over the broker's ring numbering per topic;
  /// reset on every attach — a reconnect (possibly to a
  /// crashed-and-rebuilt broker) restarts gap tracking and the next sync
  /// pass replays the ring suffix. Cumulative (never skipping a hole) so a
  /// lost replay batch is simply re-requested by a later sync.
  std::unordered_map<TopicId, SeqTracker> cursors_;
  std::uint64_t recorded_duplicates_ = 0;
  std::uint64_t replay_requests_ = 0;
};

}  // namespace multipub::client
