// Cohort-compressed subscriber plane (DESIGN.md §12).
//
// Clients that are identical in every simulation-relevant way — same home
// region, same interned topic set, same interned latency row — fold into
// one COHORT. Each (cohort, topic) pair is a FLOCK: the dense addressable
// unit the broker's subscription table holds and the transport fans out to.
// One weighted message per flock replaces one message per member, and every
// counter, billed byte, and latency sample carries the member count — so at
// equal scale the cohort plane is bit-identical to the per-client plane,
// and at a million clients it does a thousandth of the event work.
//
// The pool is the cohort-mode twin of client::Subscriber: it attaches each
// flock to the closest serving region, performs make-before-break handover
// on kConfigUpdate (grace-delayed weighted unsubscribe, flap-back safe),
// dedups handover duplicates per (topic, publisher, seq), and records
// weighted arrivals that expand back to exact per-member delivery times.
//
// Equivalence envelope (the differential tests pin it): membership churn
// happens at drained quiescent points; fault rules never name clients as
// SENDERS; event sequence numbers may differ between the planes, which is
// observable only through same-timestamp tie-breaks that carry equal
// payloads. See DESIGN.md §12 for the full argument.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "client/client_registry.h"
#include "client/topic_set_pool.h"
#include "common/seq_tracker.h"
#include "core/config.h"
#include "net/bus.h"
#include "net/cohort_directory.h"

namespace multipub::client {

class CohortPool final : public net::CohortDirectory {
 public:
  /// Borrows everything; registry and topic sets must outlive the pool.
  /// Registers one bus handler per flock as cohorts are enrolled.
  CohortPool(ClientRegistry& registry, TopicSetPool& topic_sets,
             net::Clock& clock, net::Bus& bus);
  ~CohortPool();

  CohortPool(const CohortPool&) = delete;
  CohortPool& operator=(const CohortPool&) = delete;

  /// Places `client` into the cohort for its (home, topic set, latency row)
  /// key, creating the cohort — and one flock per subscribed topic — on
  /// first sight. Returns the cohort slot, or -1 for an empty topic set.
  /// Enrollment order defines cohort and flock ids, so enroll in a
  /// deterministic order (the scenario's subscriber order).
  std::int32_t enroll(ClientId client);

  /// Forbids creating NEW cohorts (existing ones keep accepting members).
  /// Called before the simulator is sharded: a flock's shard is fixed by
  /// the shard map, so the flock universe must be closed first.
  void freeze() { frozen_ = true; }

  [[nodiscard]] std::size_t cohort_count() const { return cohorts_.size(); }
  [[nodiscard]] std::size_t flock_count() const { return flocks_.size(); }
  /// Cohorts whose last member left (kept addressable, zero fan-out).
  [[nodiscard]] std::size_t retired_cohort_count() const;
  [[nodiscard]] RegionId cohort_home(std::int32_t cohort) const;
  [[nodiscard]] std::uint32_t cohort_weight(std::int32_t cohort) const;

  /// Cohort-mode twin of the deploy() subscriber loop: every flock of
  /// `topic` attaches to the closest serving region (one weighted
  /// kSubscribe per flock).
  void deploy(TopicId topic, const core::TopicConfig& config,
              wire::KeyFilter filter = wire::KeyFilter::all());

  /// Member-level churn, mirroring Subscriber::subscribe/unsubscribe: the
  /// client moves between cohorts (weight-1 kSubscribe/kUnsubscribe on the
  /// affected flocks). A filter must match the flock's — cohort keys do not
  /// include filters, so a flock is uniformly filtered by construction.
  void subscribe_client(ClientId client, TopicId topic,
                        const core::TopicConfig& config,
                        wire::KeyFilter filter = wire::KeyFilter::all());
  void unsubscribe_client(ClientId client, TopicId topic);

  /// Silent death: the member leaves its cohort without a protocol
  /// good-bye, like a crashed client. The flock's weight drops immediately;
  /// a flock at weight 0 is retired from fan-out.
  void kill_client(ClientId client);

  /// How long the old attachment outlives a reconnection.
  void set_handover_grace(Millis grace_ms) { handover_grace_ms_ = grace_ms; }
  [[nodiscard]] Millis handover_grace() const { return handover_grace_ms_; }

  /// The flock representing (client's cohort, topic); -1 when the client is
  /// in no cohort or not subscribed to the topic.
  [[nodiscard]] std::int32_t flock_of(ClientId client, TopicId topic) const;
  /// Region the client's flock is attached to for the topic (invalid when
  /// none) — the cohort-mode attached_region().
  [[nodiscard]] RegionId attached_region(ClientId client, TopicId topic) const;

  /// Drops the recorded arrivals of every cohort (start of an interval);
  /// the handover dedup memory persists, like Subscriber's.
  void clear_arrivals();

  /// Appends the member's delivery times since clear_arrivals(), in arrival
  /// order — exactly the vector the member's per-client Subscriber would
  /// have recorded.
  void append_delivery_times(ClientId member, std::vector<Millis>& out) const;

  /// Weighted counter totals (sums over cohorts; read at drained points).
  [[nodiscard]] std::uint64_t reconnect_weight() const;
  [[nodiscard]] std::uint64_t duplicate_weight() const;
  /// Weighted deliveries recorded since clear_arrivals().
  [[nodiscard]] std::uint64_t interval_delivery_weight() const;
  /// Weighted deliveries recorded over the pool's lifetime.
  [[nodiscard]] std::uint64_t total_delivery_weight() const;

  // ---- Reliable delivery (DESIGN.md §15), mirroring Subscriber exactly.

  /// Turns on gap detection + replay. A uniform flock (every member expects
  /// the same next sequence) compresses the members' identical gap requests
  /// into one weighted kReplayRequest; after a fault split leaves members at
  /// different positions the pool falls back to per-member weight-1
  /// requests — byte-for-byte what the per-client plane sends.
  void set_reliable(bool on) { reliable_ = on; }
  [[nodiscard]] bool reliable() const { return reliable_; }

  /// Negative chaos hook, cohort twin of Subscriber::set_dedup_enabled.
  void set_dedup_enabled(bool on) { dedup_enabled_ = on; }

  /// Weighted duplicates recorded because dedup was disabled (always 0 with
  /// the filter on).
  [[nodiscard]] std::uint64_t recorded_duplicate_weight() const;

  /// Reliable sync pass, cohort half: every attached flock re-requests
  /// replay from its expected next sequence (weighted when uniform,
  /// per-member otherwise).
  void sync_replay();

  /// Reconnect-and-replay after a broker outage, cohort twin of
  /// Subscriber::reconnect: every flock attached to `region` re-sends its
  /// weighted kSubscribe and resets gap tracking.
  void reconnect(RegionId region);

  [[nodiscard]] TopicId flock_topic(std::int32_t flock) const;
  /// True when the flock subscribes with a match-all content filter.
  [[nodiscard]] bool flock_matches_all(std::int32_t flock) const;
  /// Distinct publications on the flock's topic that EVERY current member
  /// has received — the cohort-plane quantity the zero-loss oracle compares
  /// against the broker-accepted count.
  [[nodiscard]] std::uint64_t flock_complete_count(std::int32_t flock) const;

  // CohortDirectory — the transport/broker view.
  [[nodiscard]] std::uint32_t flock_weight(std::int32_t flock) const override;
  [[nodiscard]] std::span<const ClientId> flock_members(
      std::int32_t flock) const override;
  [[nodiscard]] Millis flock_latency(std::int32_t flock,
                                     RegionId region) const override;
  [[nodiscard]] RegionId flock_home(std::int32_t flock) const override;
  [[nodiscard]] RegionId flock_attachment(std::int32_t flock) const override;

 private:
  struct SeenKey {
    std::int32_t topic;
    std::int32_t publisher;
    std::uint64_t seq;
    friend bool operator==(const SeenKey&, const SeenKey&) = default;
  };
  struct SeenKeyHash {
    std::size_t operator()(const SeenKey& k) const {
      std::uint64_t h = static_cast<std::uint32_t>(k.topic);
      h = h * 0x9e3779b97f4a7c15ULL ^ static_cast<std::uint32_t>(k.publisher);
      h = h * 0x9e3779b97f4a7c15ULL ^ k.seq;
      return static_cast<std::size_t>(h * 0x9e3779b97f4a7c15ULL);
    }
  };
  /// Which members already received a given publication. `all` short-cuts
  /// the common case (every whole-flock delivery); the member list only
  /// fills when a fault split a delivery into per-member copies.
  struct SeenEntry {
    bool all = false;
    std::vector<ClientId> members;
  };

  /// One recorded delivery. member == invalid: a whole-flock arrival
  /// covering `weight` members — all of them when `fresh` is empty, exactly
  /// the listed ones when a partial duplicate left only some members
  /// unserved. member valid: a fault-split weight-1 arrival for one member.
  struct Arrival {
    TopicId topic;
    ClientId member;
    std::uint32_t weight = 1;
    Millis value = 0.0;
    std::vector<ClientId> fresh;
  };

  struct Flock {
    std::int32_t cohort = -1;
    TopicId topic;
    RegionId attachment = RegionId::invalid();
    /// Regions whose broker table currently holds this flock's entry — the
    /// pool's mirror of the per-client table transitions, from which the
    /// kSubscribe membership-marking seq is derived.
    geo::RegionSet presence;
    wire::KeyFilter filter;
    /// Reliable mode: cumulative-ack cursor over the broker's ring
    /// numbering, shared by every member without an override (reset on
    /// every attach, like Subscriber's).
    SeqTracker cursor;
    /// Members whose position diverged from the shared cursor (fault-split
    /// deliveries land on single members); keyed by ClientId value, dropped
    /// as soon as the flock is uniform again.
    std::unordered_map<std::int32_t, SeqTracker> cursor_override;
  };

  struct Cohort {
    RegionId home;
    std::int32_t topic_set = TopicSetPool::kEmpty;
    std::int32_t row = -1;
    std::vector<ClientId> members;
    /// (topic, flock id), ascending by topic.
    std::vector<std::pair<TopicId, std::int32_t>> flocks;
    std::vector<Arrival> arrivals;
    std::unordered_map<SeenKey, SeenEntry, SeenKeyHash> seen;
    // Shard-local counters (a cohort's flocks all live on the home
    // region's shard); summed by the accessors at drained points.
    std::uint64_t reconnects_w = 0;
    std::uint64_t duplicates_w = 0;
    std::uint64_t interval_deliveries_w = 0;
    std::uint64_t total_deliveries_w = 0;
    /// Weighted duplicates recorded because dedup was disabled (negative
    /// chaos hook; always 0 otherwise).
    std::uint64_t recorded_duplicates_w = 0;
  };

  struct CohortKeyHash {
    std::size_t operator()(std::uint64_t k) const {
      return static_cast<std::size_t>(k * 0x9e3779b97f4a7c15ULL);
    }
  };
  [[nodiscard]] static std::uint64_t cohort_key(RegionId home,
                                                std::int32_t topic_set,
                                                std::int32_t row) {
    // 16/24/24 bit packing: regions are single digits, interned handles
    // stay far below 16M in any plausible population.
    return (static_cast<std::uint64_t>(
                static_cast<std::uint16_t>(home.value()))
            << 48) |
           (static_cast<std::uint64_t>(
                static_cast<std::uint32_t>(topic_set) & 0xffffffu)
            << 24) |
           (static_cast<std::uint32_t>(row) & 0xffffffu);
  }

  [[nodiscard]] Cohort& cohort_of_flock(std::int32_t flock);
  [[nodiscard]] const Cohort& cohort_of_flock(std::int32_t flock) const;
  /// Finds (or, unless frozen, creates) the cohort slot for a key.
  std::int32_t cohort_slot(RegionId home, std::int32_t topic_set,
                           std::int32_t row);
  void remove_member(ClientId client);
  /// Removes the client from its cohort, sending a weight-1 kUnsubscribe on
  /// every attached flock (its table entries everywhere go away).
  void leave_cohort(ClientId client);
  /// Adds the client to the (existing or new) cohort for `topic_set`,
  /// emitting one weight-1 kSubscribe per flock — a joining member is a new
  /// table entry everywhere, so every one is membership-marking. Every
  /// flock of the target cohort must already be attached.
  void add_member(ClientId client, std::int32_t topic_set);

  /// Attaches a flock to `region` with make-before-break handover,
  /// mirroring Subscriber::attach under weighting.
  void attach(std::int32_t flock_id, RegionId region);
  void send_control(std::int32_t flock_id, RegionId to,
                    wire::MessageType type, std::uint32_t weight,
                    std::uint64_t membership_seq);
  void handle(std::int32_t flock_id, const wire::Message& msg);
  void on_deliver(std::int32_t flock_id, const wire::Message& msg,
                  bool replayed);
  /// Sends one kReplayRequest for the flock: `member` invalid = a weighted
  /// request standing for `weight` members at the same position; valid = a
  /// weight-1 request for that member alone.
  void request_replay(std::int32_t flock_id, std::uint64_t from,
                      std::uint32_t weight, ClientId member);
  /// Reliable gap/advance bookkeeping shared by kDeliver and kReplayBatch.
  void track_sequence(std::int32_t flock_id, const wire::Message& msg,
                      bool replayed);

  ClientRegistry* registry_;
  TopicSetPool* topic_sets_;
  net::Clock* clock_;
  net::Bus* bus_;
  std::vector<Cohort> cohorts_;
  std::vector<Flock> flocks_;
  std::unordered_map<std::uint64_t, std::int32_t, CohortKeyHash> by_key_;
  Millis handover_grace_ms_ = 1000.0;
  bool frozen_ = false;
  bool reliable_ = false;
  bool dedup_enabled_ = true;
};

}  // namespace multipub::client
