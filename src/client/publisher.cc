#include "client/publisher.h"

#include "common/assert.h"

namespace multipub::client {

Publisher::Publisher(ClientId id, net::Clock& clock, net::Bus& bus,
                     const geo::ClientLatencyMap& latencies)
    : id_(id),
      clock_(&clock),
      bus_(&bus),
      latencies_(&latencies),
      prober_(id, clock, bus) {
  MP_EXPECTS(id.valid());
  bus.register_handler(net::Address::client(id),
                       [this](const wire::Message& msg) { handle(msg); });
}

void Publisher::set_config(TopicId topic, const core::TopicConfig& config) {
  MP_EXPECTS(!config.regions.empty());
  configs_[topic] = config;
}

const core::TopicConfig* Publisher::config(TopicId topic) const {
  const auto it = configs_.find(topic);
  return it == configs_.end() ? nullptr : &it->second;
}

void Publisher::publish(TopicId topic, Bytes payload_bytes,
                        std::uint64_t key) {
  const core::TopicConfig* config = this->config(topic);
  MP_EXPECTS(config != nullptr);

  wire::Message msg;
  msg.type = wire::MessageType::kPublish;
  msg.topic = topic;
  msg.publisher = id_;
  msg.seq = seq_++;
  msg.published_at = clock_->now();
  msg.payload_bytes = payload_bytes;
  msg.key = key;
  // Stamp the fan-out intent on the message: a broker must fan a
  // routed-mode publication out to its peers even if its own configuration
  // has already moved on (reconfiguration race), and must NOT re-fan a
  // direct-mode publication the publisher already replicated itself.
  msg.config_mode = config->mode == core::DeliveryMode::kRouted
                        ? wire::WireMode::kRouted
                        : wire::WireMode::kDirect;

  const net::Address self = net::Address::client(id_);
  if (config->mode == core::DeliveryMode::kDirect) {
    for (RegionId region : config->regions) {
      bus_->send(self, net::Address::region(region), msg);
    }
  } else {
    const RegionId home = latencies_->closest_region(id_, config->regions);
    bus_->send(self, net::Address::region(home), msg);
  }
  ++published_;
}

void Publisher::handle(const wire::Message& msg) {
  if (prober_.on_message(msg)) return;
  if (msg.type != wire::MessageType::kConfigUpdate) return;
  ++config_updates_;

  core::TopicConfig config;
  config.regions = msg.config_regions;
  config.mode = msg.config_mode == wire::WireMode::kRouted
                    ? core::DeliveryMode::kRouted
                    : core::DeliveryMode::kDirect;

  const TopicId topic = msg.topic;
  if (configs_.find(topic) == configs_.end()) {
    configs_[topic] = config;  // first config: nothing to hand over from
    return;
  }
  // Keep publishing on the old path for the grace window; remote
  // subscribers are still re-attaching (see class comment).
  clock_->schedule_after(handover_grace_ms_, [this, topic, config] {
    configs_[topic] = config;
  });
}

}  // namespace multipub::client
