#include "client/probing.h"

#include "common/assert.h"

namespace multipub::client {

LatencyProber::LatencyProber(ClientId self, net::Clock& clock, net::Bus& bus)
    : self_(self), clock_(&clock), bus_(&bus) {
  MP_EXPECTS(self.valid());
}

void LatencyProber::probe(geo::RegionSet regions) {
  for (RegionId region : regions) {
    wire::Message ping;
    ping.type = wire::MessageType::kPing;
    ping.subscriber = self_;
    ping.seq = next_seq_++;
    ping.published_at = clock_->now();
    outstanding_[ping.seq] = region;
    bus_->send(net::Address::client(self_), net::Address::region(region),
                     ping);
    ++pings_sent_;
  }
}

bool LatencyProber::on_message(const wire::Message& msg) {
  if (msg.type != wire::MessageType::kPong) return false;
  const auto it = outstanding_.find(msg.seq);
  if (it == outstanding_.end()) return true;  // stale pong: consumed, ignored

  const RegionId region = it->second;
  outstanding_.erase(it);
  ++pongs_received_;

  const Millis one_way = (clock_->now() - msg.published_at) / 2.0;
  measurements_[region] = one_way;

  wire::Message report;
  report.type = wire::MessageType::kLatencyReport;
  report.subscriber = self_;
  report.published_at = one_way;
  bus_->send(net::Address::client(self_), net::Address::region(region),
                   report);
  return true;
}

}  // namespace multipub::client
