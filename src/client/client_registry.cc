#include "client/client_registry.h"

#include <cmath>
#include <cstring>

namespace multipub::client {

namespace {

std::uint64_t hash_row(std::span<const Millis> row) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const Millis v : row) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    h ^= bits;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

ClientRegistry::ClientRegistry(std::size_t capacity, std::size_t n_regions,
                               Millis row_bucket_ms, Arena& arena)
    : arena_(&arena),
      capacity_(capacity),
      n_regions_(n_regions),
      row_bucket_ms_(row_bucket_ms) {
  MP_EXPECTS(capacity >= 1 && n_regions >= 1);
  MP_EXPECTS(row_bucket_ms >= 0.0);
  home_ = arena.make_array<std::int32_t>(capacity);
  row_ = arena.make_array<std::int32_t>(capacity);
  topic_set_ = arena.make_array<std::int32_t>(capacity);
  alive_ = arena.make_array<std::uint8_t>(capacity);
  cohort_ = arena.make_array<std::int32_t>(capacity);
  cohort_index_ = arena.make_array<std::int32_t>(capacity);
}

std::int32_t ClientRegistry::intern_row(std::span<const Millis> latency_row) {
  MP_EXPECTS(latency_row.size() == n_regions_);
  // The hash-cons key is the QUANTIZED row; the stored row is the exact row
  // of the bucket's first member (the representative every later member of
  // the bucket inherits). With bucket 0 the key equals the row itself, so
  // only bit-identical rows merge.
  std::span<const Millis> key = latency_row;
  if (row_bucket_ms_ > 0.0) {
    quantize_scratch_.resize(n_regions_);
    for (std::size_t i = 0; i < n_regions_; ++i) {
      quantize_scratch_[i] =
          std::floor(latency_row[i] / row_bucket_ms_) * row_bucket_ms_;
    }
    key = quantize_scratch_;
  }
  const std::uint64_t h = hash_row(key);
  auto [lo, hi] = row_index_.equal_range(h);
  for (auto it = lo; it != hi; ++it) {
    std::span<const Millis> existing = row(it->second);
    if (row_bucket_ms_ > 0.0) {
      // Compare bucket membership, not stored values: the stored row is the
      // representative's exact row.
      bool same = true;
      for (std::size_t i = 0; i < n_regions_; ++i) {
        if (std::floor(existing[i] / row_bucket_ms_) * row_bucket_ms_ !=
            key[i]) {
          same = false;
          break;
        }
      }
      if (same) return it->second;
    } else if (std::equal(existing.begin(), existing.end(),
                          latency_row.begin())) {
      return it->second;
    }
  }
  Millis* stored = arena_->make_array<Millis>(n_regions_);
  std::copy(latency_row.begin(), latency_row.end(), stored);
  const auto id = static_cast<std::int32_t>(rows_.size());
  rows_.push_back(stored);
  row_index_.emplace(h, id);
  return id;
}

ClientId ClientRegistry::add(RegionId home, std::span<const Millis> latency_row,
                             std::int32_t topic_set) {
  MP_EXPECTS(size_ < capacity_);
  MP_EXPECTS(home.valid() && home.index() < n_regions_);
  const std::size_t i = size_++;
  home_[i] = home.value();
  row_[i] = intern_row(latency_row);
  topic_set_[i] = topic_set;
  alive_[i] = 1;
  cohort_[i] = -1;
  cohort_index_[i] = -1;
  return ClientId{static_cast<ClientId::underlying_type>(i)};
}

RegionId ClientRegistry::closest_region(std::int32_t row,
                                        geo::RegionSet candidates) const {
  MP_EXPECTS(!candidates.empty());
  const std::span<const Millis> r = this->row(row);
  RegionId best = RegionId::invalid();
  Millis best_latency = kUnreachable;
  for (std::size_t i = 0; i < n_regions_; ++i) {
    const RegionId region{static_cast<RegionId::underlying_type>(i)};
    if (!candidates.contains(region)) continue;
    if (r[i] < best_latency) {
      best_latency = r[i];
      best = region;
    }
  }
  MP_ENSURES(best.valid());
  return best;
}

}  // namespace multipub::client
