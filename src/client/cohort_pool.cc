#include "client/cohort_pool.h"

#include <algorithm>
#include <tuple>

#include "common/assert.h"

namespace multipub::client {

CohortPool::CohortPool(ClientRegistry& registry, TopicSetPool& topic_sets,
                       net::Clock& clock, net::Bus& bus)
    : registry_(&registry),
      topic_sets_(&topic_sets),
      clock_(&clock),
      bus_(&bus) {}

CohortPool::~CohortPool() {
  if (bus_->cohort_directory() == this) {
    bus_->set_cohort_directory(nullptr);
  }
  for (std::size_t fid = 0; fid < flocks_.size(); ++fid) {
    bus_->unregister_handler(
        net::Address::cohort(static_cast<std::int32_t>(fid)));
  }
}

std::int32_t CohortPool::enroll(ClientId client) {
  MP_EXPECTS(registry_->cohort_of(client) < 0);
  const std::int32_t set = registry_->topic_set(client);
  if (set == TopicSetPool::kEmpty) return -1;
  const std::int32_t slot =
      cohort_slot(registry_->home(client), set, registry_->row_of(client));
  Cohort& cohort = cohorts_[static_cast<std::size_t>(slot)];
  cohort.members.push_back(client);
  registry_->set_cohort(client, slot,
                        static_cast<std::int32_t>(cohort.members.size()) - 1);
  return slot;
}

std::size_t CohortPool::retired_cohort_count() const {
  std::size_t retired = 0;
  for (const Cohort& cohort : cohorts_) {
    if (cohort.members.empty()) ++retired;
  }
  return retired;
}

RegionId CohortPool::cohort_home(std::int32_t cohort) const {
  MP_EXPECTS(cohort >= 0 &&
             static_cast<std::size_t>(cohort) < cohorts_.size());
  return cohorts_[static_cast<std::size_t>(cohort)].home;
}

std::uint32_t CohortPool::cohort_weight(std::int32_t cohort) const {
  MP_EXPECTS(cohort >= 0 &&
             static_cast<std::size_t>(cohort) < cohorts_.size());
  return static_cast<std::uint32_t>(
      cohorts_[static_cast<std::size_t>(cohort)].members.size());
}

void CohortPool::deploy(TopicId topic, const core::TopicConfig& config,
                        wire::KeyFilter filter) {
  MP_EXPECTS(!config.regions.empty());
  for (Cohort& cohort : cohorts_) {
    if (cohort.members.empty()) continue;
    for (const auto& [t, fid] : cohort.flocks) {
      if (t != topic) continue;
      flocks_[static_cast<std::size_t>(fid)].filter = filter;
      attach(fid, registry_->closest_region(cohort.row, config.regions));
    }
  }
}

void CohortPool::subscribe_client(ClientId client, TopicId topic,
                                  const core::TopicConfig& config,
                                  wire::KeyFilter filter) {
  MP_EXPECTS(!config.regions.empty());
  MP_EXPECTS(registry_->alive(client));
  const std::int32_t row = registry_->row_of(client);
  const RegionId target = registry_->closest_region(row, config.regions);
  const std::int32_t set = registry_->topic_set(client);
  if (topic_sets_->contains(set, topic)) {
    // Idempotent re-subscribe, mirroring Subscriber::subscribe when the
    // closest region is the current attachment. A member can never compute
    // a DIFFERENT closest region than its flock — everyone in the cohort
    // shares the latency row — so a flock-splitting re-attach cannot arise.
    const std::int32_t fid = flock_of(client, topic);
    MP_EXPECTS(fid >= 0);
    const Flock& flock = flocks_[static_cast<std::size_t>(fid)];
    MP_EXPECTS(flock.attachment == target);
    MP_EXPECTS(flock.filter == filter &&
               "cohort flocks are uniformly filtered");
    send_control(fid, target, wire::MessageType::kSubscribe, 1, 0);
    return;
  }
  const std::int32_t new_set = topic_sets_->with(set, topic);
  if (registry_->cohort_of(client) >= 0) leave_cohort(client);
  const std::int32_t slot =
      cohort_slot(registry_->home(client), new_set, row);
  Cohort& cohort = cohorts_[static_cast<std::size_t>(slot)];
  // Seed the subscribed flock's attachment before the member joins: an
  // empty (new or revived) cohort attaches where this first member would; a
  // populated one must already sit exactly there.
  for (const auto& [t, fid] : cohort.flocks) {
    if (t != topic) continue;
    Flock& flock = flocks_[static_cast<std::size_t>(fid)];
    if (cohort.members.empty() || !flock.attachment.valid()) {
      flock.attachment = target;
      flock.filter = filter;
    } else {
      MP_EXPECTS(flock.attachment == target);
      MP_EXPECTS(flock.filter == filter &&
                 "cohort flocks are uniformly filtered");
    }
  }
  registry_->set_topic_set(client, new_set);
  add_member(client, new_set);
}

void CohortPool::unsubscribe_client(ClientId client, TopicId topic) {
  const std::int32_t set = registry_->topic_set(client);
  if (!topic_sets_->contains(set, topic)) return;  // mirror: not attached
  const std::int32_t old_cohort = registry_->cohort_of(client);
  MP_EXPECTS(old_cohort >= 0);
  // Retained topics move with the client; remember where their flocks sit
  // so a brand-new smaller cohort starts attached in the same places.
  std::vector<std::tuple<TopicId, RegionId, wire::KeyFilter>> retained;
  for (const auto& [t, fid] :
       cohorts_[static_cast<std::size_t>(old_cohort)].flocks) {
    if (t != topic) {
      const Flock& flock = flocks_[static_cast<std::size_t>(fid)];
      retained.emplace_back(t, flock.attachment, flock.filter);
    }
  }
  leave_cohort(client);
  const std::int32_t new_set = topic_sets_->without(set, topic);
  registry_->set_topic_set(client, new_set);
  if (new_set == TopicSetPool::kEmpty) return;
  const std::int32_t slot = cohort_slot(
      registry_->home(client), new_set, registry_->row_of(client));
  Cohort& cohort = cohorts_[static_cast<std::size_t>(slot)];
  for (const auto& [t, fid] : cohort.flocks) {
    Flock& flock = flocks_[static_cast<std::size_t>(fid)];
    for (const auto& [rt, ra, rf] : retained) {
      if (rt != t || !ra.valid()) continue;
      if (cohort.members.empty() || !flock.attachment.valid()) {
        flock.attachment = ra;
        flock.filter = rf;
      } else {
        // Same row + same config history => same closest region.
        MP_EXPECTS(flock.attachment == ra);
      }
    }
  }
  add_member(client, new_set);
}

void CohortPool::kill_client(ClientId client) {
  if (registry_->cohort_of(client) >= 0) remove_member(client);
  registry_->set_alive(client, false);
}

std::int32_t CohortPool::flock_of(ClientId client, TopicId topic) const {
  const std::int32_t cohort = registry_->cohort_of(client);
  if (cohort < 0) return -1;
  for (const auto& [t, fid] :
       cohorts_[static_cast<std::size_t>(cohort)].flocks) {
    if (t == topic) return fid;
  }
  return -1;
}

RegionId CohortPool::attached_region(ClientId client, TopicId topic) const {
  const std::int32_t fid = flock_of(client, topic);
  return fid < 0 ? RegionId::invalid()
                 : flocks_[static_cast<std::size_t>(fid)].attachment;
}

void CohortPool::clear_arrivals() {
  for (Cohort& cohort : cohorts_) {
    cohort.arrivals.clear();
    cohort.interval_deliveries_w = 0;
  }
}

void CohortPool::append_delivery_times(ClientId member,
                                       std::vector<Millis>& out) const {
  const std::int32_t cohort = registry_->cohort_of(member);
  if (cohort < 0) return;
  for (const Arrival& arrival :
       cohorts_[static_cast<std::size_t>(cohort)].arrivals) {
    bool covered;
    if (arrival.member.valid()) {
      covered = arrival.member == member;
    } else if (arrival.fresh.empty()) {
      covered = true;  // whole-flock arrival: every member got a copy
    } else {
      covered = std::find(arrival.fresh.begin(), arrival.fresh.end(),
                          member) != arrival.fresh.end();
    }
    if (covered) out.push_back(arrival.value);
  }
}

std::uint64_t CohortPool::reconnect_weight() const {
  std::uint64_t total = 0;
  for (const Cohort& cohort : cohorts_) total += cohort.reconnects_w;
  return total;
}

std::uint64_t CohortPool::duplicate_weight() const {
  std::uint64_t total = 0;
  for (const Cohort& cohort : cohorts_) total += cohort.duplicates_w;
  return total;
}

std::uint64_t CohortPool::interval_delivery_weight() const {
  std::uint64_t total = 0;
  for (const Cohort& cohort : cohorts_) total += cohort.interval_deliveries_w;
  return total;
}

std::uint64_t CohortPool::total_delivery_weight() const {
  std::uint64_t total = 0;
  for (const Cohort& cohort : cohorts_) total += cohort.total_deliveries_w;
  return total;
}

std::uint32_t CohortPool::flock_weight(std::int32_t flock) const {
  return static_cast<std::uint32_t>(cohort_of_flock(flock).members.size());
}

std::span<const ClientId> CohortPool::flock_members(std::int32_t flock) const {
  return cohort_of_flock(flock).members;
}

Millis CohortPool::flock_latency(std::int32_t flock, RegionId region) const {
  return registry_->row_latency(cohort_of_flock(flock).row, region);
}

RegionId CohortPool::flock_home(std::int32_t flock) const {
  return cohort_of_flock(flock).home;
}

RegionId CohortPool::flock_attachment(std::int32_t flock) const {
  MP_EXPECTS(flock >= 0 && static_cast<std::size_t>(flock) < flocks_.size());
  return flocks_[static_cast<std::size_t>(flock)].attachment;
}

CohortPool::Cohort& CohortPool::cohort_of_flock(std::int32_t flock) {
  MP_EXPECTS(flock >= 0 && static_cast<std::size_t>(flock) < flocks_.size());
  return cohorts_[static_cast<std::size_t>(
      flocks_[static_cast<std::size_t>(flock)].cohort)];
}

const CohortPool::Cohort& CohortPool::cohort_of_flock(
    std::int32_t flock) const {
  MP_EXPECTS(flock >= 0 && static_cast<std::size_t>(flock) < flocks_.size());
  return cohorts_[static_cast<std::size_t>(
      flocks_[static_cast<std::size_t>(flock)].cohort)];
}

std::int32_t CohortPool::cohort_slot(RegionId home, std::int32_t topic_set,
                                     std::int32_t row) {
  const std::uint64_t key = cohort_key(home, topic_set, row);
  if (const auto it = by_key_.find(key); it != by_key_.end()) {
    return it->second;
  }
  MP_EXPECTS(!frozen_ &&
             "the cohort universe is closed once the simulator is sharded");
  const auto slot = static_cast<std::int32_t>(cohorts_.size());
  Cohort cohort;
  cohort.home = home;
  cohort.topic_set = topic_set;
  cohort.row = row;
  for (const TopicId topic : topic_sets_->view(topic_set)) {
    const auto fid = static_cast<std::int32_t>(flocks_.size());
    Flock flock;
    flock.cohort = slot;
    flock.topic = topic;
    flocks_.push_back(flock);
    cohort.flocks.emplace_back(topic, fid);
    bus_->register_handler(
        net::Address::cohort(fid),
        [this, fid](const wire::Message& msg) { handle(fid, msg); });
  }
  cohorts_.push_back(std::move(cohort));
  by_key_.emplace(key, slot);
  return slot;
}

void CohortPool::remove_member(ClientId client) {
  const std::int32_t slot = registry_->cohort_of(client);
  const std::int32_t index = registry_->index_in_cohort(client);
  MP_EXPECTS(slot >= 0 && index >= 0);
  auto& members = cohorts_[static_cast<std::size_t>(slot)].members;
  MP_EXPECTS(static_cast<std::size_t>(index) < members.size() &&
             members[static_cast<std::size_t>(index)] == client);
  const ClientId last = members.back();
  members[static_cast<std::size_t>(index)] = last;
  members.pop_back();
  if (last != client) registry_->set_cohort(last, slot, index);
  registry_->set_cohort(client, -1, -1);
}

void CohortPool::leave_cohort(ClientId client) {
  const std::int32_t slot = registry_->cohort_of(client);
  MP_EXPECTS(slot >= 0);
  remove_member(client);
  Cohort& cohort = cohorts_[static_cast<std::size_t>(slot)];
  for (const auto& [t, fid] : cohort.flocks) {
    Flock& flock = flocks_[static_cast<std::size_t>(fid)];
    if (!flock.attachment.valid()) continue;
    send_control(fid, flock.attachment, wire::MessageType::kUnsubscribe, 1,
                 0);
    // Last member out: the broker drops the flock's entry on arrival.
    if (cohort.members.empty()) flock.presence.remove(flock.attachment);
  }
}

void CohortPool::add_member(ClientId client, std::int32_t topic_set) {
  const std::int32_t slot = cohort_slot(registry_->home(client), topic_set,
                                        registry_->row_of(client));
  Cohort& cohort = cohorts_[static_cast<std::size_t>(slot)];
  cohort.members.push_back(client);
  registry_->set_cohort(client, slot,
                        static_cast<std::int32_t>(cohort.members.size()) - 1);
  registry_->set_topic_set(client, topic_set);
  for (const auto& [t, fid] : cohort.flocks) {
    Flock& flock = flocks_[static_cast<std::size_t>(fid)];
    MP_EXPECTS(flock.attachment.valid() &&
               "a member can only join a fully deployed cohort");
    flock.presence.add(flock.attachment);
    // A joining member is a new per-client table entry everywhere, so every
    // one of these is membership-marking (seq 1).
    send_control(fid, flock.attachment, wire::MessageType::kSubscribe, 1, 1);
  }
}

void CohortPool::attach(std::int32_t flock_id, RegionId region) {
  Flock& flock = flocks_[static_cast<std::size_t>(flock_id)];
  Cohort& cohort = cohorts_[static_cast<std::size_t>(flock.cohort)];
  const auto weight = static_cast<std::uint32_t>(cohort.members.size());
  if (weight == 0) return;  // retired flock: the per-client loop is empty
  if (flock.attachment.valid() && flock.attachment != region) {
    // Reconnection (paper §III-A5), make-before-break: join the new region
    // now, leave the old one after the grace period — one weighted
    // good-bye standing for every member's.
    const RegionId old_region = flock.attachment;
    cohort.reconnects_w += weight;
    clock_->schedule_after(handover_grace_ms_, [this, flock_id, old_region] {
      Flock& current = flocks_[static_cast<std::size_t>(flock_id)];
      if (current.attachment == old_region) {
        return;  // flapped back during the grace period: still attached
      }
      current.presence.remove(old_region);
      const auto grace_weight = static_cast<std::uint32_t>(
          cohorts_[static_cast<std::size_t>(current.cohort)].members.size());
      send_control(flock_id, old_region, wire::MessageType::kUnsubscribe,
                   grace_weight, 0);
    });
  }
  // The kSubscribe marks membership only when the region's table would gain
  // entries — i.e. when the flock has no entry there yet.
  const std::uint64_t membership_seq =
      flock.presence.contains(region) ? 0 : 1;
  flock.presence.add(region);
  flock.attachment = region;
  send_control(flock_id, region, wire::MessageType::kSubscribe, weight,
               membership_seq);
  // Every member's Subscriber would reset its gap tracking to the ring's
  // origin on (re)attach; the flock does it once for all of them.
  if (reliable_) {
    flock.cursor.reset();
    flock.cursor_override.clear();
  }
}

void CohortPool::send_control(std::int32_t flock_id, RegionId to,
                              wire::MessageType type, std::uint32_t weight,
                              std::uint64_t membership_seq) {
  if (weight == 0) return;  // zero members: the per-client loop sends nothing
  const Flock& flock = flocks_[static_cast<std::size_t>(flock_id)];
  wire::Message msg;
  msg.type = type;
  msg.topic = flock.topic;
  msg.subscriber = ClientId{flock_id};  // the broker table's flock handle
  msg.seq = membership_seq;
  msg.weight = weight;
  if (type == wire::MessageType::kSubscribe) msg.filter = flock.filter;
  bus_->send(net::Address::cohort(flock_id), net::Address::region(to),
                   msg);
}

void CohortPool::handle(std::int32_t flock_id, const wire::Message& msg) {
  switch (msg.type) {
    case wire::MessageType::kDeliver:
      on_deliver(flock_id, msg, /*replayed=*/false);
      break;
    case wire::MessageType::kReplayBatch:
      on_deliver(flock_id, msg, /*replayed=*/true);
      break;
    case wire::MessageType::kConfigUpdate: {
      const Flock& flock = flocks_[static_cast<std::size_t>(flock_id)];
      // Only react while attached, like Subscriber's subscription check.
      if (!flock.attachment.valid() || msg.config_regions.empty()) break;
      const Cohort& cohort =
          cohorts_[static_cast<std::size_t>(flock.cohort)];
      attach(flock_id,
             registry_->closest_region(cohort.row, msg.config_regions));
      break;
    }
    default:
      break;
  }
}

void CohortPool::on_deliver(std::int32_t flock_id, const wire::Message& msg,
                            bool replayed) {
  Flock& flock = flocks_[static_cast<std::size_t>(flock_id)];
  Cohort& cohort = cohorts_[static_cast<std::size_t>(flock.cohort)];
  if (reliable_) track_sequence(flock_id, msg, replayed);
  const Millis value = clock_->now() - msg.published_at;
  const SeenKey key{msg.topic.value(), msg.publisher.value(), msg.seq};
  SeenEntry& entry = cohort.seen[key];
  if (!msg.subscriber.valid()) {
    // Whole-flock delivery standing for msg.weight per-member copies.
    if (entry.all) {
      cohort.duplicates_w += msg.weight;
      if (!dedup_enabled_) cohort.recorded_duplicates_w += msg.weight;
      return;
    }
    if (entry.members.empty()) {
      cohort.arrivals.push_back(
          {msg.topic, ClientId::invalid(), msg.weight, value, {}});
      cohort.interval_deliveries_w += msg.weight;
      cohort.total_deliveries_w += msg.weight;
    } else {
      // A fault already split this publication: the listed members hold
      // their first copy, everyone else sees theirs now.
      std::vector<ClientId> fresh;
      for (const ClientId member : cohort.members) {
        if (std::find(entry.members.begin(), entry.members.end(), member) ==
            entry.members.end()) {
          fresh.push_back(member);
        }
      }
      const auto fresh_count = static_cast<std::uint32_t>(fresh.size());
      if (msg.weight > fresh_count) {
        cohort.duplicates_w += msg.weight - fresh_count;
        if (!dedup_enabled_) {
          cohort.recorded_duplicates_w += msg.weight - fresh_count;
        }
      }
      if (fresh_count > 0) {
        cohort.interval_deliveries_w += fresh_count;
        cohort.total_deliveries_w += fresh_count;
        cohort.arrivals.push_back({msg.topic, ClientId::invalid(),
                                   fresh_count, value, std::move(fresh)});
      }
    }
    entry.all = true;
    entry.members.clear();
    entry.members.shrink_to_fit();
    return;
  }
  // Fault-split weight-1 copy addressed to one member.
  const ClientId member = msg.subscriber;
  if (entry.all ||
      std::find(entry.members.begin(), entry.members.end(), member) !=
          entry.members.end()) {
    cohort.duplicates_w += 1;
    if (!dedup_enabled_) cohort.recorded_duplicates_w += 1;
    return;
  }
  entry.members.push_back(member);
  cohort.arrivals.push_back({msg.topic, member, 1, value, {}});
  cohort.interval_deliveries_w += 1;
  cohort.total_deliveries_w += 1;
}

// ---- Reliable delivery (DESIGN.md §15)

void CohortPool::request_replay(std::int32_t flock_id, std::uint64_t from,
                                std::uint32_t weight, ClientId member) {
  if (weight == 0) return;
  const Flock& flock = flocks_[static_cast<std::size_t>(flock_id)];
  if (!flock.attachment.valid()) return;
  wire::Message req;
  req.type = wire::MessageType::kReplayRequest;
  req.topic = flock.topic;
  req.subscriber = member;  // invalid = whole-flock weighted request
  req.key = static_cast<std::uint64_t>(flock_id) + 1;  // flock handle
  req.weight = weight;
  req.delivery_seq = from;
  bus_->send(net::Address::cohort(flock_id),
             net::Address::region(flock.attachment), req);
}

void CohortPool::track_sequence(std::int32_t flock_id,
                                const wire::Message& msg, bool replayed) {
  Flock& flock = flocks_[static_cast<std::size_t>(flock_id)];
  Cohort& cohort = cohorts_[static_cast<std::size_t>(flock.cohort)];
  const std::uint64_t s = msg.delivery_seq;
  if (!msg.subscriber.valid()) {
    // Whole-flock copy: every member sees it (uniform replay requests are
    // only ever emitted while the flock IS uniform, so a replayed batch too
    // stands for everyone it was requested for).
    if (flock.cursor_override.empty()) {
      // Uniform: the members' identical gap requests compress into one
      // weighted request.
      const bool fresh_gap = !replayed && flock.cursor.opens_gap(s);
      flock.cursor.record(s);
      if (fresh_gap) {
        request_replay(flock_id, flock.cursor.next(),
                       static_cast<std::uint32_t>(cohort.members.size()),
                       ClientId::invalid());
      }
    } else {
      // Divergent positions: exactly the per-client plane's requests, in
      // member order; every member still records the arrival. The shared
      // decision is taken once (record() is idempotent, but the first
      // record would hide the gap from the remaining shared members).
      const bool shared_gap = !replayed && flock.cursor.opens_gap(s);
      flock.cursor.record(s);
      for (const ClientId member : cohort.members) {
        const auto it = flock.cursor_override.find(member.value());
        if (it == flock.cursor_override.end()) {
          if (shared_gap) {
            request_replay(flock_id, flock.cursor.next(), 1, member);
          }
          continue;
        }
        const bool fresh_gap = !replayed && it->second.opens_gap(s);
        it->second.record(s);
        if (fresh_gap) request_replay(flock_id, it->second.next(), 1, member);
      }
    }
  } else {
    // Fault-split weight-1 copy: only this member advances; everyone else's
    // position is untouched (they never received it — just like the
    // per-client plane). A member diverging for the first time starts from
    // the shared cursor's position.
    SeqTracker& cursor =
        flock.cursor_override.try_emplace(msg.subscriber.value(), flock.cursor)
            .first->second;
    const bool fresh_gap = !replayed && cursor.opens_gap(s);
    cursor.record(s);
    if (fresh_gap) request_replay(flock_id, cursor.next(), 1, msg.subscriber);
  }
  // Collapse the overrides once every member is back at the same position.
  if (!flock.cursor_override.empty()) {
    bool uniform = true;
    for (const auto& [member, cursor] : flock.cursor_override) {
      if (!(cursor == flock.cursor)) {
        uniform = false;
        break;
      }
    }
    if (uniform) flock.cursor_override.clear();
  }
}

void CohortPool::reconnect(RegionId region) {
  for (std::size_t fid = 0; fid < flocks_.size(); ++fid) {
    if (flocks_[fid].attachment == region) {
      attach(static_cast<std::int32_t>(fid), region);
    }
  }
}

void CohortPool::sync_replay() {
  if (!reliable_) return;
  for (std::size_t fid = 0; fid < flocks_.size(); ++fid) {
    const Flock& flock = flocks_[fid];
    if (!flock.attachment.valid()) continue;
    const Cohort& cohort = cohorts_[static_cast<std::size_t>(flock.cohort)];
    if (cohort.members.empty()) continue;
    const auto id = static_cast<std::int32_t>(fid);
    if (flock.cursor_override.empty()) {
      request_replay(id, flock.cursor.next(),
                     static_cast<std::uint32_t>(cohort.members.size()),
                     ClientId::invalid());
    } else {
      for (const ClientId member : cohort.members) {
        const auto it = flock.cursor_override.find(member.value());
        const std::uint64_t from = it == flock.cursor_override.end()
                                       ? flock.cursor.next()
                                       : it->second.next();
        request_replay(id, from, 1, member);
      }
    }
  }
}

std::uint64_t CohortPool::recorded_duplicate_weight() const {
  std::uint64_t total = 0;
  for (const Cohort& cohort : cohorts_) total += cohort.recorded_duplicates_w;
  return total;
}

TopicId CohortPool::flock_topic(std::int32_t flock) const {
  return flocks_[static_cast<std::size_t>(flock)].topic;
}

bool CohortPool::flock_matches_all(std::int32_t flock) const {
  return flocks_[static_cast<std::size_t>(flock)].filter.match_all();
}

std::uint64_t CohortPool::flock_complete_count(std::int32_t flock_id) const {
  const Flock& flock = flocks_[static_cast<std::size_t>(flock_id)];
  const Cohort& cohort = cohorts_[static_cast<std::size_t>(flock.cohort)];
  std::uint64_t count = 0;
  for (const auto& [key, entry] : cohort.seen) {
    if (key.topic != flock.topic.value()) continue;
    if (entry.all) {
      ++count;
      continue;
    }
    bool covers = true;
    for (const ClientId member : cohort.members) {
      if (std::find(entry.members.begin(), entry.members.end(), member) ==
          entry.members.end()) {
        covers = false;
        break;
      }
    }
    if (covers) ++count;
  }
  return count;
}

}  // namespace multipub::client
