// Publisher client endpoint.
//
// Publishes on topics according to the currently deployed configuration:
//   direct — one kPublish to every serving region (paper Fig. 1b),
//   routed — one kPublish to the closest serving region only (Fig. 1c).
//
// Configuration updates arrive as kConfigUpdate messages from region
// managers and take effect after a handover grace period: if the publisher
// adopted a shrunken region set immediately, publications would stop
// reaching regions that remote subscribers are still re-attaching away from
// and be lost. Keeping the old path alive for the grace window (mirroring
// the subscriber's make-before-break) closes that race; the subscriber's
// dedup filter absorbs any resulting duplicates.
#pragma once

#include <unordered_map>

#include "client/probing.h"
#include "core/config.h"
#include "geo/latency.h"
#include "net/bus.h"

namespace multipub::client {

class Publisher {
 public:
  /// Registers at Address::client(id); clock/bus/matrices are borrowed. A
  /// client acting as both publisher and subscriber must use two distinct
  /// ClientIds (one per role), as the bus allows one handler per address.
  Publisher(ClientId id, net::Clock& clock, net::Bus& bus,
            const geo::ClientLatencyMap& latencies);

  Publisher(const Publisher&) = delete;
  Publisher& operator=(const Publisher&) = delete;

  /// Installs the topic configuration (bootstrap or test override).
  void set_config(TopicId topic, const core::TopicConfig& config);

  [[nodiscard]] const core::TopicConfig* config(TopicId topic) const;

  /// Publishes one message of `payload_bytes` now, tagged with a content
  /// `key` (0 when content filtering is unused). Pre: a configuration for
  /// the topic is known.
  void publish(TopicId topic, Bytes payload_bytes, std::uint64_t key = 0);

  [[nodiscard]] ClientId id() const { return id_; }
  [[nodiscard]] std::uint64_t published_count() const { return published_; }
  [[nodiscard]] std::uint64_t config_updates_received() const {
    return config_updates_;
  }

  /// Probes the given regions (kPing); measurements flow to the controller
  /// as kLatencyReports once the echoes return.
  void probe_latencies(geo::RegionSet regions) { prober_.probe(regions); }
  [[nodiscard]] const LatencyProber& prober() const { return prober_; }

  /// How long a kConfigUpdate is deferred before taking effect (first
  /// configuration for a topic applies immediately).
  void set_handover_grace(Millis grace_ms) { handover_grace_ms_ = grace_ms; }
  [[nodiscard]] Millis handover_grace() const { return handover_grace_ms_; }

 private:
  void handle(const wire::Message& msg);

  ClientId id_;
  net::Clock* clock_;
  net::Bus* bus_;
  const geo::ClientLatencyMap* latencies_;
  LatencyProber prober_;
  std::unordered_map<TopicId, core::TopicConfig> configs_;
  Millis handover_grace_ms_ = 1000.0;
  std::uint64_t published_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t config_updates_ = 0;
};

}  // namespace multipub::client
