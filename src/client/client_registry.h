// Struct-of-arrays client state for the cohort-compressed data plane
// (DESIGN.md §12).
//
// Per-client identity is kept OFF the hot path in parallel arena-backed
// arrays — home region, interned latency-row id, interned topic-set handle,
// liveness, and the client's current cohort slot. The hot path (delivery
// fan-out) never touches any of this; it only sees flock weights. Churn —
// re-subscription, death, a latency change — mutates a handful of int32
// cells and moves the client between cohorts.
//
// Latency rows are hash-consed like topic sets: clients at identical (or,
// with a quantization bucket, near-identical) network positions share one
// stored row, which is both the compression lever (a shared row is a
// necessary condition for sharing a cohort) and the memory lever (ten
// million clients reference a few thousand rows instead of owning one
// each).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/arena.h"
#include "common/assert.h"
#include "common/types.h"
#include "geo/region_set.h"

namespace multipub::client {

class ClientRegistry {
 public:
  /// Fixed-capacity registry: `capacity` clients over `n_regions` regions.
  /// `row_bucket_ms` > 0 quantizes latency rows to that granularity before
  /// interning (clients within a bucket share the first-seen representative
  /// row); 0 interns exact rows only — the setting the differential tests
  /// rely on for bit-identical per-client equivalence. Borrows the arena.
  ClientRegistry(std::size_t capacity, std::size_t n_regions,
                 Millis row_bucket_ms, Arena& arena);

  ClientRegistry(const ClientRegistry&) = delete;
  ClientRegistry& operator=(const ClientRegistry&) = delete;

  /// Registers the next client (ids are dense, in registration order) with
  /// its home region, latency row (one entry per region, interned), and
  /// topic-set handle. Returns the new client's id.
  ClientId add(RegionId home, std::span<const Millis> latency_row,
               std::int32_t topic_set);

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t n_regions() const { return n_regions_; }
  [[nodiscard]] Millis row_bucket_ms() const { return row_bucket_ms_; }

  [[nodiscard]] RegionId home(ClientId c) const {
    return RegionId{home_[check(c)]};
  }
  [[nodiscard]] std::int32_t row_of(ClientId c) const {
    return row_[check(c)];
  }
  [[nodiscard]] std::int32_t topic_set(ClientId c) const {
    return topic_set_[check(c)];
  }
  void set_topic_set(ClientId c, std::int32_t handle) {
    topic_set_[check(c)] = handle;
  }
  [[nodiscard]] bool alive(ClientId c) const { return alive_[check(c)] != 0; }
  void set_alive(ClientId c, bool alive) {
    alive_[check(c)] = alive ? 1 : 0;
  }

  /// Re-homes the client's network position onto a different latency row
  /// (its measured latencies drifted into another bucket). The caller moves
  /// the client between cohorts afterwards.
  [[nodiscard]] std::int32_t intern_row(std::span<const Millis> latency_row);
  void set_row(ClientId c, std::int32_t row) {
    MP_EXPECTS(row >= 0 && static_cast<std::size_t>(row) < rows_.size());
    row_[check(c)] = row;
  }

  /// Cohort membership (slot + position inside the member array); -1 when
  /// the client belongs to no cohort. Maintained by the CohortPool.
  [[nodiscard]] std::int32_t cohort_of(ClientId c) const {
    return cohort_[check(c)];
  }
  [[nodiscard]] std::int32_t index_in_cohort(ClientId c) const {
    return cohort_index_[check(c)];
  }
  void set_cohort(ClientId c, std::int32_t cohort, std::int32_t index) {
    const std::size_t i = check(c);
    cohort_[i] = cohort;
    cohort_index_[i] = index;
  }

  /// Distinct latency rows interned so far.
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  [[nodiscard]] std::span<const Millis> row(std::int32_t row) const {
    MP_EXPECTS(row >= 0 && static_cast<std::size_t>(row) < rows_.size());
    return {rows_[static_cast<std::size_t>(row)], n_regions_};
  }
  [[nodiscard]] Millis row_latency(std::int32_t row, RegionId region) const {
    MP_EXPECTS(region.valid() && region.index() < n_regions_);
    return this->row(row)[region.index()];
  }

  /// The candidate region with the smallest row latency, ties towards the
  /// lower id — the same scan as geo::ClientLatencyMap::closest_region, so
  /// a cohort attaches exactly where each member would have.
  [[nodiscard]] RegionId closest_region(std::int32_t row,
                                        geo::RegionSet candidates) const;

 private:
  [[nodiscard]] std::size_t check(ClientId c) const {
    MP_EXPECTS(c.valid() && c.index() < size_);
    return c.index();
  }

  Arena* arena_;
  std::size_t capacity_;
  std::size_t n_regions_;
  Millis row_bucket_ms_;
  std::size_t size_ = 0;

  // Parallel per-client arrays (arena-backed, length == capacity).
  std::int32_t* home_;
  std::int32_t* row_;
  std::int32_t* topic_set_;
  std::uint8_t* alive_;
  std::int32_t* cohort_;
  std::int32_t* cohort_index_;

  // Interned latency rows: arena storage + hash-cons index over the
  // (quantized) contents.
  std::vector<const Millis*> rows_;
  std::unordered_multimap<std::uint64_t, std::int32_t> row_index_;
  std::vector<Millis> quantize_scratch_;
};

}  // namespace multipub::client
