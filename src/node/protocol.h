// Node lifecycle protocol constants (DESIGN.md §13).
//
// A live deployment runs one controller process and one broker process per
// region, all driven by the same scenario file. The controller sequences
// the run as a lock-step phase machine: it broadcasts kPhaseStart(phase)
// and advances only after every broker acked with kPhaseDone(phase) — plus
// a settle delay, so traffic queued at the moment of the ack has landed.
//
// Phases:
//   kAttach   — install the bootstrap configuration: brokers set the
//               topic's assignment row, publishers learn their targets,
//               subscribers attach to their closest serving region.
//   kTraffic  — replay the scenario's interval: every publisher emits
//               messages_per_interval() publications at fixed spacing.
//               The ack is quiesce-based: a broker reports done only after
//               its event loop sat idle for a full quiet window, so the ack
//               implies all traffic it can observe has drained.
//   kReport   — region managers run collect_reports(); the batches travel
//               to the controller as kReportPublisher/kReportSubscriber
//               lines framed by kReportEnd. The controller ingests them in
//               region order, re-optimizes, and deploys changed
//               configurations (kConfigUpdate to the region address, which
//               the node runtime turns into apply_config).
//   kShutdown — brokers flush, write their metrics file, send kNodeBye and
//               exit; the controller writes its metrics and exits once
//               every broker said goodbye.
#pragma once

#include <cstdint>

namespace multipub::node {

enum class Phase : std::uint64_t {
  kAttach = 1,
  kTraffic = 2,
  kReport = 3,
  kShutdown = 4,
};

/// Heartbeat cadence handed to brokers in kNodeWelcome.seq.
inline constexpr std::uint64_t kHeartbeatIntervalMs = 250;

/// Wire protocol version carried in kNodeHello.key; the controller rejects
/// brokers speaking another version.
inline constexpr std::uint64_t kNodeProtocolVersion = 1;

/// Sentinel subscriber id marking an empty TopicReport on the wire (a delta
/// report whose publisher and subscriber lists are both empty still tells
/// the controller the topic's traffic stopped).
inline constexpr std::int32_t kEmptyReportMarker = -1;

/// Quiet window a broker's event loop must sit idle before it acks
/// kTraffic, and the controller's settle delay between phases.
inline constexpr double kQuiesceIdleMs = 400.0;
inline constexpr double kPhaseSettleMs = 300.0;

}  // namespace multipub::node
