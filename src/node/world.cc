#include "node/world.h"

#include <vector>

#include "geo/latency.h"
#include "geo/region.h"

namespace multipub::node {

std::optional<sim::Scenario> build_live_world(const sim::ScenarioSpec& spec,
                                              std::string* error) {
  const geo::RegionCatalog full_catalog = geo::RegionCatalog::ec2_2016();
  const geo::InterRegionLatency full_backbone =
      geo::InterRegionLatency::ec2_2016();

  // Placement regions in order of first appearance -> dense live RegionIds.
  std::vector<RegionId> picked;  // live index -> full-catalog id
  for (const auto& placement : spec.placements) {
    const RegionId id = full_catalog.find(placement.region);
    if (!id.valid()) {
      if (error != nullptr) *error = "unknown region: " + placement.region;
      return std::nullopt;
    }
    bool seen = false;
    for (RegionId existing : picked) seen = seen || existing == id;
    if (!seen) picked.push_back(id);
  }
  if (picked.empty()) {
    if (error != nullptr) *error = "scenario has no placements";
    return std::nullopt;
  }

  std::vector<geo::Region> regions;
  regions.reserve(picked.size());
  for (std::size_t i = 0; i < picked.size(); ++i) {
    geo::Region region = full_catalog.at(picked[i]);
    region.id = RegionId{static_cast<RegionId::underlying_type>(i)};
    regions.push_back(std::move(region));
  }
  geo::RegionCatalog catalog(std::move(regions));

  geo::InterRegionLatency backbone(picked.size());
  for (std::size_t a = 0; a < picked.size(); ++a) {
    for (std::size_t b = a + 1; b < picked.size(); ++b) {
      backbone.set(RegionId{static_cast<RegionId::underlying_type>(a)},
                   RegionId{static_cast<RegionId::underlying_type>(b)},
                   full_backbone.at(picked[a], picked[b]));
    }
  }

  return sim::build_scenario(spec, catalog, backbone, error);
}

core::TopicConfig choose_bootstrap_config(const sim::Scenario& scenario) {
  const core::Optimizer optimizer = scenario.make_optimizer();
  return optimizer.optimize(scenario.topic).config;
}

}  // namespace multipub::node
