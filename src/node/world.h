// Shared world construction for live nodes and their digital twin.
//
// A live deployment runs one broker process per region, so the world is
// RESTRICTED to the regions the scenario actually places clients in: the
// EC2-2016 catalog rows of those regions (densely re-numbered in order of
// first appearance) and the matching backbone submatrix. Every process —
// controller, each broker, and the in-process twin a convergence test runs
// — builds the world through this one function from the same ScenarioSpec,
// so they agree on region ids, the synthesized population (seeded), the
// optimizer's candidate set, and therefore the chosen configuration.
#pragma once

#include <optional>
#include <string>

#include "core/optimizer.h"
#include "sim/scenario_file.h"

namespace multipub::node {

/// Materializes `spec` over the restricted EC2-2016 world. On failure
/// returns nullopt and explains in `error`.
[[nodiscard]] std::optional<sim::Scenario> build_live_world(
    const sim::ScenarioSpec& spec, std::string* error);

/// The bootstrap configuration every process deploys in the attach phase:
/// the optimizer's choice for the scenario's expected topic state. Pure
/// function of the scenario, so controller and twin compute the same one.
[[nodiscard]] core::TopicConfig choose_bootstrap_config(
    const sim::Scenario& scenario);

}  // namespace multipub::node
