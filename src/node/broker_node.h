// One broker region as a real OS process (DESIGN.md §13).
//
// A BrokerNode owns a SocketTransport and runs, over it, exactly the
// middleware a simulated region runs over SimTransport: a RegionManager
// (with its Broker) plus the Publisher/Subscriber endpoints of every client
// homed in this region. The node's own contribution is the lifecycle: it
// registers with the controller (kNodeHello), beats a seeded heartbeat,
// executes the controller's phase commands, and shuts down gracefully —
// flush, metrics file, kNodeBye.
//
// The node wraps the broker's bus handler: lifecycle messages and
// region-addressed kConfigUpdates (the wire form of apply_config) are
// consumed here, everything else is forwarded verbatim to Broker::handle.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "broker/region_manager.h"
#include "client/publisher.h"
#include "client/subscriber.h"
#include "net/socket_transport.h"
#include "node/protocol.h"
#include "sim/scenario.h"

namespace multipub::node {

struct BrokerNodeOptions {
  std::uint16_t listen_port = 0;  ///< 0 = ephemeral
  std::uint16_t controller_port = 0;
  std::string metrics_path;       ///< empty = no metrics file
  double time_scale = 1.0;        ///< >1 compresses the traffic interval
  /// Arms the in-process reliability layer (DESIGN.md §15): the broker
  /// stamps delivery sequences and serves replay, this node's subscribers
  /// detect gaps and re-request. Cross-process standby replication is not
  /// wired here — a deployment's peers are independent OS processes, and
  /// the controller does not (yet) assign standbys over TCP.
  bool reliable = false;
  /// Batched transport hot path (DESIGN.md §16): coalesced vectored
  /// flushes and encode-once fan-out. Off keeps the per-frame-flush
  /// reference behaviour; billing and delivery are identical either way.
  bool transport_batching = true;
};

class BrokerNode {
 public:
  /// Borrows the scenario; it must outlive the node. `self` is the live
  /// RegionId this process serves.
  BrokerNode(const sim::Scenario& scenario, RegionId self,
             const BrokerNodeOptions& options);

  BrokerNode(const BrokerNode&) = delete;
  BrokerNode& operator=(const BrokerNode&) = delete;

  /// Binds the listen socket and announces to the controller. Returns
  /// success.
  bool start();

  /// Runs the event loop until the shutdown phase completed or
  /// `deadline_ms` of wall time passed. Returns true on clean shutdown.
  bool run(double deadline_ms);

  [[nodiscard]] std::uint16_t port() const { return transport_.port(); }
  [[nodiscard]] net::SocketTransport& transport() { return transport_; }
  [[nodiscard]] broker::RegionManager& manager() { return *manager_; }

 private:
  void handle(const wire::Message& msg);
  void on_attach(const wire::Message& msg);
  void on_traffic();
  void on_report();
  void on_shutdown();
  void beat();
  void send_to_controller(wire::Message msg);
  void phase_done(Phase phase);
  void write_metrics() const;
  /// Fires deferred phase acks and the shutdown epilogue. Message handlers
  /// must never poll (the transport's dispatch loop is not re-entrant), so
  /// quiesce-gated acks are decided here, from the top of run()'s loop.
  void advance();

  const sim::Scenario* scenario_;
  RegionId self_;
  BrokerNodeOptions options_;
  net::SocketTransport transport_;
  std::unique_ptr<broker::RegionManager> manager_;
  std::vector<std::unique_ptr<client::Publisher>> publishers_;
  std::vector<std::unique_ptr<client::Subscriber>> subscribers_;

  bool welcomed_ = false;
  bool shutdown_complete_ = false;
  std::uint64_t heartbeat_interval_ms_ = 0;
  std::uint64_t heartbeat_seq_ = 0;
  std::uint64_t publications_done_ = 0;
  std::uint64_t publications_expected_ = 0;

  /// Phase whose kPhaseDone ack waits for the event loop to quiesce.
  std::optional<Phase> pending_ack_;
  /// When the shutdown epilogue (metrics, kNodeBye) runs; set by kShutdown.
  std::optional<Millis> shutdown_at_;
  /// Last wall time poll_once() dispatched a message (idle detection).
  Millis last_activity_ = 0.0;
};

}  // namespace multipub::node
