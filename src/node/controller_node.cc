#include "node/controller_node.h"

#include <algorithm>
#include <cstdio>

#include "common/assert.h"
#include "common/logging.h"
#include "node/world.h"

namespace multipub::node {

ControllerNode::ControllerNode(const sim::Scenario& scenario,
                               const ControllerNodeOptions& options)
    : scenario_(&scenario), options_(options) {
  const std::size_t n = region_count();
  MP_EXPECTS(n >= 1);
  hello_.assign(n, false);
  broker_port_.assign(n, 0);
  done_.assign(n, false);
  bye_.assign(n, false);
  heartbeats_.assign(n, 0);
  report_lines_.assign(n, {});
  report_end_.assign(n, false);
  report_full_.assign(n, false);

  transport_.set_self_node(net::SocketTransport::kControllerNode);
  transport_.set_catalog(&scenario.catalog);
  transport_.set_batching(options.transport_batching);
  const sim::Scenario* world = scenario_;
  transport_.set_address_resolver([world](net::Address to) -> std::int32_t {
    switch (to.kind) {
      case net::Address::Kind::kRegion:
        return to.id;
      case net::Address::Kind::kClient:
        if (to.id >= 0 &&
            static_cast<std::size_t>(to.id) < world->population.size()) {
          return world->population.home_region[static_cast<std::size_t>(
              to.id)].value();
        }
        return net::SocketTransport::kControllerNode;
      case net::Address::Kind::kCohort:
        return net::SocketTransport::kControllerNode;
    }
    return net::SocketTransport::kControllerNode;
  });

  controller_ = std::make_unique<broker::Controller>(
      scenario.catalog, scenario.backbone, scenario.population.latencies);
  controller_->set_constraint(scenario.topic.topic,
                              scenario.topic.constraint);
}

bool ControllerNode::start() {
  if (!transport_.listen(options_.listen_port)) return false;
  // Brokers address the controller one past the client id space (see
  // BrokerNode::send_to_controller).
  transport_.register_handler(
      net::Address::client(
          ClientId{static_cast<std::int32_t>(scenario_->population.size())}),
      [this](const wire::Message& msg) { handle(msg); });
  return true;
}

std::uint64_t ControllerNode::heartbeats(RegionId region) const {
  return region.valid() && region.index() < heartbeats_.size()
             ? heartbeats_[region.index()]
             : 0;
}

void ControllerNode::broadcast(const wire::Message& msg) {
  const net::Address from = net::Address::client(
      ClientId{static_cast<std::int32_t>(scenario_->population.size())});
  for (std::size_t r = 0; r < region_count(); ++r) {
    transport_.send(from,
                    net::Address::region(RegionId{static_cast<int>(r)}),
                    msg);
  }
}

void ControllerNode::handle(const wire::Message& msg) {
  const auto region_index = [this](std::int32_t id) -> std::optional<std::size_t> {
    if (id < 0 || static_cast<std::size_t>(id) >= region_count()) {
      return std::nullopt;
    }
    return static_cast<std::size_t>(id);
  };

  switch (msg.type) {
    case wire::MessageType::kNodeHello: {
      const auto r = region_index(msg.publisher.value());
      if (!r.has_value() || msg.key != kNodeProtocolVersion) {
        ++rejected_hellos_;
        MP_LOG_WARN("node") << "rejecting hello (region "
                            << msg.publisher.value() << ", version "
                            << msg.key << ")";
        break;
      }
      broker_port_[*r] = static_cast<std::uint16_t>(msg.seq);
      transport_.add_peer(static_cast<std::int32_t>(*r), broker_port_[*r]);
      hello_[*r] = true;
      wire::Message welcome;
      welcome.type = wire::MessageType::kNodeWelcome;
      welcome.seq = kHeartbeatIntervalMs;
      welcome.key = options_.seed;
      const net::Address from = net::Address::client(ClientId{
          static_cast<std::int32_t>(scenario_->population.size())});
      transport_.send(from,
                      net::Address::region(RegionId{static_cast<int>(*r)}),
                      std::move(welcome));
      break;
    }
    case wire::MessageType::kHeartbeat: {
      const auto r = region_index(msg.publisher.value());
      if (r.has_value()) ++heartbeats_[*r];
      break;
    }
    case wire::MessageType::kPhaseDone: {
      const auto r = region_index(msg.publisher.value());
      if (r.has_value() && step_ == Step::kWaitAcks &&
          static_cast<Phase>(msg.seq) == current_phase_) {
        done_[*r] = true;
      }
      break;
    }
    case wire::MessageType::kReportPublisher: {
      const auto r = region_index(msg.subscriber.value());
      if (r.has_value()) report_lines_[*r].push_back(msg);
      break;
    }
    case wire::MessageType::kReportSubscriber: {
      const auto r = region_index(msg.publisher.value());
      if (r.has_value()) report_lines_[*r].push_back(msg);
      break;
    }
    case wire::MessageType::kReportEnd: {
      const auto r = region_index(msg.publisher.value());
      if (!r.has_value()) break;
      if (report_lines_[*r].size() != msg.seq) {
        MP_LOG_WARN("node") << "region " << *r << " reported " << msg.seq
                            << " lines, received "
                            << report_lines_[*r].size();
      }
      report_full_[*r] = (msg.key & 1) != 0;
      report_end_[*r] = true;
      break;
    }
    case wire::MessageType::kNodeBye: {
      const auto r = region_index(msg.publisher.value());
      if (r.has_value()) bye_[*r] = true;
      break;
    }
    default:
      MP_LOG_WARN("node") << "controller ignoring "
                          << wire::to_string(msg.type);
      break;
  }
}

void ControllerNode::start_phase(Phase phase) {
  current_phase_ = phase;
  std::fill(done_.begin(), done_.end(), false);
  wire::Message start;
  start.type = wire::MessageType::kPhaseStart;
  start.seq = static_cast<std::uint64_t>(phase);
  if (phase == Phase::kAttach) {
    const core::TopicConfig bootstrap = choose_bootstrap_config(*scenario_);
    start.topic = scenario_->topic.topic;
    start.config_regions = bootstrap.regions;
    start.config_mode = bootstrap.mode == core::DeliveryMode::kRouted
                            ? wire::WireMode::kRouted
                            : wire::WireMode::kDirect;
  }
  broadcast(start);
  step_ = phase == Phase::kShutdown ? Step::kWaitByes : Step::kWaitAcks;
}

void ControllerNode::on_all_reports() {
  // Rebuild each region's ReportBatch from its key-indexed lines and ingest
  // in region-id order — the digital twin's reconfigure_now order.
  for (std::size_t r = 0; r < region_count(); ++r) {
    std::size_t report_count = 0;
    for (const auto& line : report_lines_[r]) {
      report_count = std::max(report_count,
                              static_cast<std::size_t>(line.key) + 1);
    }
    std::vector<broker::TopicReport> reports(report_count);
    for (const auto& line : report_lines_[r]) {
      broker::TopicReport& report = reports[static_cast<std::size_t>(line.key)];
      report.topic = line.topic;
      if (line.type == wire::MessageType::kReportPublisher) {
        report.publishers.push_back(
            {line.publisher, line.seq, line.payload_bytes});
      } else if (line.subscriber.value() != kEmptyReportMarker) {
        report.subscribers.push_back(line.subscriber);
      }
    }
    report_lines_[r].clear();
    const RegionId region{static_cast<int>(r)};
    controller_->ingest(region, reports, report_full_[r]);
    controller_->observe_latencies(region, {});
  }

  const auto decisions = controller_->reconfigure();
  decisions_ += decisions.size();
  for (const auto& decision : decisions) {
    if (!decision.changed) continue;
    ++changed_;
    wire::Message update;
    update.type = wire::MessageType::kConfigUpdate;
    update.topic = decision.topic;
    update.config_regions = decision.result.config.regions;
    update.config_mode =
        decision.result.config.mode == core::DeliveryMode::kRouted
            ? wire::WireMode::kRouted
            : wire::WireMode::kDirect;
    broadcast(update);
  }
}

void ControllerNode::advance() {
  switch (step_) {
    case Step::kWaitHellos: {
      if (std::find(hello_.begin(), hello_.end(), false) != hello_.end()) {
        break;
      }
      // Everyone is in: introduce each broker to every other, then settle
      // into the attach phase.
      for (std::size_t r = 0; r < region_count(); ++r) {
        wire::Message info;
        info.type = wire::MessageType::kPeerInfo;
        info.publisher = ClientId{static_cast<std::int32_t>(r)};
        info.seq = broker_port_[r];
        const net::Address from = net::Address::client(ClientId{
            static_cast<std::int32_t>(scenario_->population.size())});
        for (std::size_t peer = 0; peer < region_count(); ++peer) {
          if (peer == r) continue;
          transport_.send(
              from, net::Address::region(RegionId{static_cast<int>(peer)}),
              info);
        }
      }
      next_phase_ = Phase::kAttach;
      settle_until_ = transport_.now() + kPhaseSettleMs;
      step_ = Step::kSettle;
      break;
    }
    case Step::kSettle:
      if (transport_.now() >= *settle_until_) {
        settle_until_.reset();
        start_phase(next_phase_);
      }
      break;
    case Step::kWaitAcks: {
      if (std::find(done_.begin(), done_.end(), false) != done_.end()) {
        break;
      }
      if (current_phase_ == Phase::kReport &&
          std::find(report_end_.begin(), report_end_.end(), false) !=
              report_end_.end()) {
        break;  // acks in, report lines still in flight
      }
      if (current_phase_ == Phase::kReport) on_all_reports();
      next_phase_ =
          static_cast<Phase>(static_cast<std::uint64_t>(current_phase_) + 1);
      settle_until_ = transport_.now() + kPhaseSettleMs;
      step_ = Step::kSettle;
      break;
    }
    case Step::kWaitByes:
      if (std::find(bye_.begin(), bye_.end(), false) != bye_.end()) break;
      write_metrics();
      step_ = Step::kDone;
      break;
    case Step::kDone:
      break;
  }
}

bool ControllerNode::run(double deadline_ms) {
  const Millis deadline = transport_.now() + deadline_ms;
  while (step_ != Step::kDone && transport_.now() < deadline) {
    transport_.poll_once(20);
    advance();
  }
  return step_ == Step::kDone;
}

void ControllerNode::write_metrics() const {
  if (options_.metrics_path.empty()) return;
  std::FILE* out = std::fopen(options_.metrics_path.c_str(), "w");
  if (out == nullptr) {
    MP_LOG_WARN("node") << "cannot write metrics to "
                        << options_.metrics_path;
    return;
  }
  std::fprintf(out, "node.brokers %llu\n",
               static_cast<unsigned long long>(region_count()));
  std::fprintf(out, "controller.decisions %llu\n",
               static_cast<unsigned long long>(decisions_));
  std::fprintf(out, "controller.changed %llu\n",
               static_cast<unsigned long long>(changed_));
  std::fprintf(out, "controller.rejected_hellos %llu\n",
               static_cast<unsigned long long>(rejected_hellos_));
  for (std::size_t r = 0; r < heartbeats_.size(); ++r) {
    std::fprintf(out, "node.heartbeats.%llu %llu\n",
                 static_cast<unsigned long long>(r),
                 static_cast<unsigned long long>(heartbeats_[r]));
  }
  // Hot-path telemetry (net.transport.*): observational only, never part
  // of the convergence contract.
  const std::string hot_path =
      net::collect_transport_metrics(transport_).render();
  std::fwrite(hot_path.data(), 1, hot_path.size(), out);
  // The deployed assignment matrix, one commented line per topic, exactly
  // as the digital twin renders it.
  const std::string matrix = controller_->render_assignment_matrix();
  std::size_t begin = 0;
  while (begin < matrix.size()) {
    std::size_t end = matrix.find('\n', begin);
    if (end == std::string::npos) end = matrix.size();
    std::fprintf(out, "# assignment %.*s\n", static_cast<int>(end - begin),
                 matrix.data() + begin);
    begin = end + 1;
  }
  std::fclose(out);
}

}  // namespace multipub::node
