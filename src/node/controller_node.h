// The controller as a real OS process (DESIGN.md §13).
//
// Owns a Controller over a SocketTransport and sequences a live run as the
// lock-step phase machine of node/protocol.h: wait for every broker's
// kNodeHello, introduce the brokers to each other (kPeerInfo), then drive
// attach -> traffic -> report -> shutdown, advancing past each phase only
// after all N brokers acked and a settle delay elapsed. During the report
// phase it rebuilds each region's ReportBatch from the wire lines, ingests
// them in region-id order — exactly the order the digital twin uses — and
// deploys changed configurations with region-addressed kConfigUpdates.
//
// Message handlers only record state and send; the phase machine advances
// from the top of run()'s loop (the transport's dispatch loop is not
// re-entrant).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "broker/controller.h"
#include "net/socket_transport.h"
#include "node/protocol.h"
#include "sim/scenario.h"

namespace multipub::node {

struct ControllerNodeOptions {
  std::uint16_t listen_port = 0;  ///< 0 = ephemeral
  std::string metrics_path;       ///< empty = no metrics file
  /// Seed handed to brokers in kNodeWelcome.key (heartbeat jitter).
  std::uint64_t seed = 0;
  /// Batched transport hot path (DESIGN.md §16); see BrokerNodeOptions.
  bool transport_batching = true;
};

class ControllerNode {
 public:
  /// Borrows the scenario; it must outlive the node.
  ControllerNode(const sim::Scenario& scenario,
                 const ControllerNodeOptions& options);

  ControllerNode(const ControllerNode&) = delete;
  ControllerNode& operator=(const ControllerNode&) = delete;

  /// Binds the listen socket. Returns success.
  bool start();

  /// Runs the whole deployment to completion (all brokers said goodbye) or
  /// until `deadline_ms` of wall time passed. Returns true on completion.
  bool run(double deadline_ms);

  [[nodiscard]] std::uint16_t port() const { return transport_.port(); }
  [[nodiscard]] broker::Controller& controller() { return *controller_; }
  [[nodiscard]] net::SocketTransport& transport() { return transport_; }
  [[nodiscard]] std::uint64_t heartbeats(RegionId region) const;

 private:
  /// Where the phase machine currently stands.
  enum class Step {
    kWaitHellos,  ///< collecting kNodeHello from every region
    kSettle,      ///< settle delay before broadcasting the next phase
    kWaitAcks,    ///< barrier on N kPhaseDone for current_phase_
    kWaitByes,    ///< barrier on N kNodeBye
    kDone,
  };

  void handle(const wire::Message& msg);
  void advance();
  void start_phase(Phase phase);
  void broadcast(const wire::Message& msg);
  void on_all_reports();
  void write_metrics() const;
  [[nodiscard]] std::size_t region_count() const {
    return scenario_->catalog.size();
  }

  const sim::Scenario* scenario_;
  ControllerNodeOptions options_;
  net::SocketTransport transport_;
  std::unique_ptr<broker::Controller> controller_;

  Step step_ = Step::kWaitHellos;
  Phase current_phase_ = Phase::kAttach;
  Phase next_phase_ = Phase::kAttach;
  std::optional<Millis> settle_until_;

  std::vector<bool> hello_;       // per region
  std::vector<std::uint16_t> broker_port_;
  std::vector<bool> done_;        // kPhaseDone for current_phase_
  std::vector<bool> bye_;
  std::vector<std::uint64_t> heartbeats_;
  std::vector<std::vector<wire::Message>> report_lines_;  // per region
  std::vector<bool> report_end_;
  std::vector<bool> report_full_;
  std::size_t decisions_ = 0;
  std::size_t changed_ = 0;
  std::uint64_t rejected_hellos_ = 0;
};

}  // namespace multipub::node
