#include "node/broker_node.h"

#include <cstdio>

#include "common/assert.h"
#include "common/logging.h"

namespace multipub::node {

BrokerNode::BrokerNode(const sim::Scenario& scenario, RegionId self,
                       const BrokerNodeOptions& options)
    : scenario_(&scenario), self_(self), options_(options) {
  MP_EXPECTS(self.valid() &&
             self.index() < scenario.catalog.size());
  MP_EXPECTS(options.time_scale > 0.0);
  transport_.set_self_node(self.value());
  transport_.set_catalog(&scenario.catalog);
  transport_.set_batching(options.transport_batching);
  // Region -> its broker node; client/cohort -> its home region's node;
  // anything else (the controller's own addresses never appear here) ->
  // the controller.
  const sim::Scenario* world = scenario_;
  transport_.set_address_resolver([world](net::Address to) -> std::int32_t {
    switch (to.kind) {
      case net::Address::Kind::kRegion:
        return to.id;
      case net::Address::Kind::kClient:
        if (to.id >= 0 &&
            static_cast<std::size_t>(to.id) < world->population.size()) {
          return world->population.home_region[static_cast<std::size_t>(
              to.id)].value();
        }
        return net::SocketTransport::kControllerNode;
      case net::Address::Kind::kCohort:
        return net::SocketTransport::kControllerNode;
    }
    return net::SocketTransport::kControllerNode;
  });
}

bool BrokerNode::start() {
  if (!transport_.listen(options_.listen_port)) return false;
  transport_.add_peer(net::SocketTransport::kControllerNode,
                      options_.controller_port);

  // The manager registers the broker at Address::region(self_); wrap that
  // handler so lifecycle traffic is consumed here.
  manager_ = std::make_unique<broker::RegionManager>(self_, transport_,
                                                     transport_);
  if (options_.reliable) manager_->broker().set_reliable(true);
  transport_.register_handler(net::Address::region(self_),
                              [this](const wire::Message& msg) {
                                handle(msg);
                              });

  // This region's client endpoints live in this process.
  for (const auto& pub : scenario_->topic.publishers) {
    if (scenario_->population.home_region[pub.client.index()] != self_) {
      continue;
    }
    publishers_.push_back(std::make_unique<client::Publisher>(
        pub.client, transport_, transport_, scenario_->population.latencies));
  }
  for (const auto& sub : scenario_->topic.subscribers) {
    if (scenario_->population.home_region[sub.client.index()] != self_) {
      continue;
    }
    subscribers_.push_back(std::make_unique<client::Subscriber>(
        sub.client, transport_, transport_, scenario_->population.latencies));
    if (options_.reliable) subscribers_.back()->set_reliable(true);
  }

  wire::Message hello;
  hello.type = wire::MessageType::kNodeHello;
  hello.seq = transport_.port();
  hello.key = kNodeProtocolVersion;
  send_to_controller(std::move(hello));
  return true;
}

void BrokerNode::send_to_controller(wire::Message msg) {
  // The reporting region rides in the publisher field — except on
  // kReportPublisher lines, whose publisher field carries the actual
  // publishing client (the region is in `subscriber` there; see
  // wire/message.h).
  if (msg.type == wire::MessageType::kReportPublisher) {
    msg.subscriber = ClientId{self_.value()};
  } else {
    msg.publisher = ClientId{self_.value()};
  }
  // The controller has no region, so it listens one past the client id
  // space: Address::client(population size). Both sides build the same
  // world from the same spec, so the id agrees across processes.
  const net::Address controller = net::Address::client(
      ClientId{static_cast<std::int32_t>(scenario_->population.size())});
  transport_.send(net::Address::region(self_), controller, std::move(msg));
}

void BrokerNode::phase_done(Phase phase) {
  wire::Message done;
  done.type = wire::MessageType::kPhaseDone;
  done.seq = static_cast<std::uint64_t>(phase);
  send_to_controller(std::move(done));
}

void BrokerNode::beat() {
  if (shutdown_complete_) return;
  wire::Message beat_msg;
  beat_msg.type = wire::MessageType::kHeartbeat;
  beat_msg.seq = heartbeat_seq_++;
  send_to_controller(std::move(beat_msg));
  transport_.schedule_after(static_cast<Millis>(heartbeat_interval_ms_),
                            [this] { beat(); });
}

void BrokerNode::handle(const wire::Message& msg) {
  switch (msg.type) {
    case wire::MessageType::kNodeWelcome: {
      if (welcomed_) break;
      welcomed_ = true;
      heartbeat_interval_ms_ = msg.seq == 0 ? kHeartbeatIntervalMs : msg.seq;
      // Seeded start offset staggers the brokers' beats apart.
      const std::uint64_t offset =
          (msg.key + static_cast<std::uint64_t>(self_.value()) * 7919) %
          heartbeat_interval_ms_;
      transport_.schedule_after(static_cast<Millis>(offset),
                                [this] { beat(); });
      break;
    }
    case wire::MessageType::kPeerInfo:
      transport_.add_peer(msg.publisher.value(),
                          static_cast<std::uint16_t>(msg.seq));
      break;
    case wire::MessageType::kPhaseStart:
      switch (static_cast<Phase>(msg.seq)) {
        case Phase::kAttach:
          on_attach(msg);
          break;
        case Phase::kTraffic:
          on_traffic();
          break;
        case Phase::kReport:
          on_report();
          break;
        case Phase::kShutdown:
          on_shutdown();
          break;
      }
      break;
    case wire::MessageType::kConfigUpdate: {
      // The wire form of RegionManager::apply_config: the controller
      // deploys a changed decision to every region.
      core::TopicConfig config;
      config.regions = msg.config_regions;
      config.mode = msg.config_mode == wire::WireMode::kRouted
                        ? core::DeliveryMode::kRouted
                        : core::DeliveryMode::kDirect;
      manager_->apply_config(msg.topic, config);
      break;
    }
    default:
      manager_->broker().handle(msg);
      break;
  }
}

void BrokerNode::on_attach(const wire::Message& msg) {
  core::TopicConfig config;
  config.regions = msg.config_regions;
  config.mode = msg.config_mode == wire::WireMode::kRouted
                    ? core::DeliveryMode::kRouted
                    : core::DeliveryMode::kDirect;
  const TopicId topic = scenario_->topic.topic;
  manager_->broker().set_topic_config(topic, config);
  for (auto& publisher : publishers_) publisher->set_config(topic, config);
  for (auto& subscriber : subscribers_) subscriber->subscribe(topic, config);
  pending_ack_ = Phase::kAttach;  // acked once the handshakes quiesced
}

void BrokerNode::on_traffic() {
  const TopicId topic = scenario_->topic.topic;
  // Expected per-publisher count is what the scenario's TopicState already
  // carries (build_scenario fills msg_count = messages_per_interval, the
  // same rounding the digital twin's fixed-rate scheduler applies).
  const double interval_ms =
      1000.0 * scenario_->interval_seconds / options_.time_scale;
  publications_expected_ = 0;
  publications_done_ = 0;
  std::size_t index = 0;
  for (auto& publisher : publishers_) {
    std::uint64_t count = 0;
    Bytes bytes = 1024;
    for (const auto& pub : scenario_->topic.publishers) {
      if (pub.client == publisher->id()) {
        count = pub.msg_count;
        bytes = pub.total_bytes / pub.msg_count;
        break;
      }
    }
    MP_EXPECTS(count >= 1);
    publications_expected_ += count;
    const double spacing_ms = interval_ms / static_cast<double>(count);
    // Deterministic phase stagger; only the count must match the twin.
    const double phase = spacing_ms * static_cast<double>(index + 1) /
                         static_cast<double>(publishers_.size() + 1);
    client::Publisher* raw = publisher.get();
    for (std::uint64_t k = 0; k < count; ++k) {
      transport_.schedule_after(phase + static_cast<double>(k) * spacing_ms,
                                [this, raw, topic, bytes] {
                                  raw->publish(topic, bytes);
                                  ++publications_done_;
                                });
    }
    ++index;
  }
  // Acked by advance() once every local publication is out AND the loop
  // quiesced — a subscriber-only region acks when inbound traffic stops.
  pending_ack_ = Phase::kTraffic;
}

void BrokerNode::on_report() {
  const broker::ReportBatch batch = manager_->collect_reports();
  std::uint64_t lines = 0;
  std::uint64_t report_index = 0;
  for (const auto& report : batch.reports) {
    bool empty = true;
    for (const auto& stats : report.publishers) {
      wire::Message line;
      line.type = wire::MessageType::kReportPublisher;
      line.topic = report.topic;
      line.publisher = stats.client;
      line.seq = stats.msg_count;
      line.payload_bytes = stats.total_bytes;
      line.key = report_index;
      send_to_controller(std::move(line));
      ++lines;
      empty = false;
    }
    for (const ClientId subscriber : report.subscribers) {
      wire::Message line;
      line.type = wire::MessageType::kReportSubscriber;
      line.topic = report.topic;
      line.subscriber = subscriber;
      line.key = report_index;
      send_to_controller(std::move(line));
      ++lines;
      empty = false;
    }
    if (empty) {
      wire::Message marker;
      marker.type = wire::MessageType::kReportSubscriber;
      marker.topic = report.topic;
      marker.subscriber = ClientId{kEmptyReportMarker};
      marker.key = report_index;
      send_to_controller(std::move(marker));
      ++lines;
    }
    ++report_index;
  }
  wire::Message end;
  end.type = wire::MessageType::kReportEnd;
  end.seq = lines;
  end.key = batch.full_snapshot ? 1 : 0;
  send_to_controller(std::move(end));
  phase_done(Phase::kReport);
}

void BrokerNode::on_shutdown() {
  // Defer the epilogue to advance(): give in-flight stragglers a short
  // window to land before the counters are frozen into the metrics file.
  shutdown_at_ = transport_.now() + 2.0 * kPhaseSettleMs;
}

void BrokerNode::advance() {
  if (shutdown_at_.has_value()) {
    if (transport_.now() < *shutdown_at_) return;
    shutdown_at_.reset();
    write_metrics();
    wire::Message bye;
    bye.type = wire::MessageType::kNodeBye;
    send_to_controller(std::move(bye));
    // One more pass so the bye leaves the socket before the loop stops.
    transport_.poll_once(10);
    shutdown_complete_ = true;
    return;
  }
  if (!pending_ack_.has_value()) return;
  if (*pending_ack_ == Phase::kTraffic &&
      publications_done_ < publications_expected_) {
    return;
  }
  if (transport_.now() - last_activity_ < kQuiesceIdleMs) return;
  phase_done(*pending_ack_);
  pending_ack_.reset();
}

void BrokerNode::write_metrics() const {
  if (options_.metrics_path.empty()) return;
  std::FILE* out = std::fopen(options_.metrics_path.c_str(), "w");
  if (out == nullptr) {
    MP_LOG_WARN("node") << "cannot write metrics to "
                        << options_.metrics_path;
    return;
  }
  std::uint64_t publications = 0;
  for (const auto& publisher : publishers_) {
    publications += publisher->published_count();
  }
  std::uint64_t deliveries = 0;
  std::uint64_t duplicates = 0;
  for (const auto& subscriber : subscribers_) {
    deliveries += subscriber->deliveries().size();
    duplicates += subscriber->duplicate_count();
  }
  const broker::Broker& broker = manager_->broker();
  std::fprintf(out, "broker.delivered %llu\n",
               static_cast<unsigned long long>(broker.delivered_count()));
  std::fprintf(out, "broker.forwarded %llu\n",
               static_cast<unsigned long long>(broker.forwarded_count()));
  std::fprintf(out, "clients.deliveries %llu\n",
               static_cast<unsigned long long>(deliveries));
  std::fprintf(out, "clients.duplicates %llu\n",
               static_cast<unsigned long long>(duplicates));
  std::fprintf(out, "clients.publications %llu\n",
               static_cast<unsigned long long>(publications));
  std::fprintf(out, "node.heartbeats_sent %llu\n",
               static_cast<unsigned long long>(heartbeat_seq_));
  std::fprintf(out, "transport.inter_region_bytes %llu\n",
               static_cast<unsigned long long>(
                   transport_.inter_region_bytes(self_)));
  std::fprintf(out, "transport.internet_bytes %llu\n",
               static_cast<unsigned long long>(
                   transport_.internet_bytes(self_)));
  // Hot-path telemetry (net.transport.*): observational only, never part
  // of the convergence contract.
  const std::string hot_path =
      net::collect_transport_metrics(transport_).render();
  std::fwrite(hot_path.data(), 1, hot_path.size(), out);
  std::fclose(out);
}

bool BrokerNode::run(double deadline_ms) {
  const Millis deadline = transport_.now() + deadline_ms;
  while (!shutdown_complete_ && transport_.now() < deadline) {
    if (transport_.poll_once(20) > 0) last_activity_ = transport_.now();
    advance();
  }
  return shutdown_complete_;
}

}  // namespace multipub::node
