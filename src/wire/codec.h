// Binary codec for protocol messages.
//
// Fixed-layout little-endian framing with a magic byte and version so a
// decoder can reject foreign data. The in-memory simulation passes Message
// structs directly; the codec exists so the protocol has a concrete wire
// representation (and so framing bugs are caught by round-trip tests rather
// than in a future socket transport).
//
// Layout (all integers little-endian):
//   offset 0  : u8  magic (0xMB -> 0xAB)
//   offset 1  : u8  version (4)
//   offset 2  : u8  type
//   offset 3  : u8  config_mode
//   offset 4  : i32 topic
//   offset 8  : i32 publisher
//   offset 12 : i32 subscriber
//   offset 16 : u64 seq
//   offset 24 : f64 published_at
//   offset 32 : u64 payload_bytes
//   offset 40 : u64 config_regions mask
//   offset 48 : u64 content key
//   offset 56 : u64 filter lo
//   offset 64 : u64 filter hi
//   offset 72 : u32 weight
//   offset 76 : u32 reserved (encoded as 0, rejected nonzero on decode)
//   offset 80 : u64 delivery_seq
//   total 88 bytes
// (v1 was 48 bytes without the content-filtering fields, v2 was 72 bytes
// without the cohort weight, v3 was 80 bytes without the reliable-delivery
// sequence number; old frames are rejected, the protocol is not
// mixed-version.)
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>

#include "wire/message.h"

namespace multipub::wire {

inline constexpr std::size_t kEncodedSize = 88;
inline constexpr std::uint8_t kMagic = 0xAB;
inline constexpr std::uint8_t kVersion = 4;

using EncodedMessage = std::array<std::byte, kEncodedSize>;

/// Serializes `msg` into its fixed 88-byte frame.
[[nodiscard]] EncodedMessage encode(const Message& msg);

/// Parses a frame; nullopt on bad magic/version/type or wrong size.
[[nodiscard]] std::optional<Message> decode(std::span<const std::byte> frame);

}  // namespace multipub::wire
