// Resumable frame decoder for byte streams.
//
// A TCP stream delivers codec frames at arbitrary read boundaries: one
// recv() may end mid-frame, the next may carry the remainder plus three
// more frames. StreamDecoder owns that reassembly so transports never
// shuffle partial frames themselves: bytes go in (either copied via feed()
// or read straight into the decoder's buffer via write_window()/commit(),
// which is what lets a socket transport bulk-recv with zero intermediate
// copies), complete frames come out of next() decoded in place.
//
// Frames may be prefixed by a fixed-size transport header (the socket
// transport's 12-byte routing envelope); the decoder treats header + frame
// as one record and hands the header bytes back alongside the decoded
// message. Decoding a record never allocates: the internal buffer is
// reused across records, and compaction only ever moves the (< one
// record) undecoded tail.
//
// A frame that fails wire::decode poisons the decoder (corrupt() stays
// true, next() stops yielding) — a stream that framed wrong once has lost
// byte alignment for good, so the connection must be torn down, exactly
// what the transports do.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "wire/codec.h"
#include "wire/message.h"

namespace multipub::wire {

class StreamDecoder {
 public:
  /// `header_bytes` of transport framing precede every codec frame (0 =
  /// bare frames); one record is header_bytes + kEncodedSize bytes.
  explicit StreamDecoder(std::size_t header_bytes = 0)
      : header_bytes_(header_bytes),
        record_bytes_(header_bytes + kEncodedSize) {}

  /// Appends stream bytes (any length, including mid-record splits).
  void feed(std::span<const std::byte> bytes);

  /// Zero-copy intake: returns a writable window of at least `min_bytes`
  /// at the buffer tail for the caller to recv() into, then commit(n) the
  /// bytes actually read (n <= min_bytes). The window is invalidated by
  /// any other call.
  [[nodiscard]] std::byte* write_window(std::size_t min_bytes);
  void commit(std::size_t n);

  /// Decodes the next complete record in place. nullopt when fewer than
  /// record_bytes() are buffered or the stream is corrupt. When `header`
  /// is non-null it receives the record's header bytes, valid until the
  /// next call on this decoder.
  [[nodiscard]] std::optional<Message> next(
      std::span<const std::byte>* header = nullptr);

  /// A record failed to decode; the stream's framing is unrecoverable.
  [[nodiscard]] bool corrupt() const { return corrupt_; }

  /// Undecoded bytes currently buffered (< record_bytes() once next()
  /// returned nullopt on a healthy stream).
  [[nodiscard]] std::size_t buffered() const { return len_ - head_; }

  [[nodiscard]] std::size_t record_bytes() const { return record_bytes_; }

  /// Forgets all buffered bytes and clears the corrupt flag (reconnect:
  /// mid-record bytes from the old connection are useless).
  void reset();

 private:
  /// Moves the undecoded tail to the buffer front once the decoded prefix
  /// dominates the buffer, keeping memory bounded without per-record
  /// erase-from-front shuffling.
  void compact();

  /// Makes room for `bytes` more at the tail (compact + geometric growth).
  void ensure_room(std::size_t bytes);

  std::size_t header_bytes_;
  std::size_t record_bytes_;
  std::vector<std::byte> buf_;  ///< storage; the filled prefix is len_
  std::size_t len_ = 0;         ///< bytes filled
  std::size_t head_ = 0;        ///< first undecoded byte
  bool corrupt_ = false;
};

}  // namespace multipub::wire
