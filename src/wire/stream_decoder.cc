#include "wire/stream_decoder.h"

#include <algorithm>
#include <cstring>

namespace multipub::wire {
namespace {

/// Compact once the decoded prefix exceeds this many bytes; the surviving
/// tail is at most one partial record, so the move is tiny and amortized
/// O(1) per record.
constexpr std::size_t kCompactThresholdBytes = 64 * 1024;

}  // namespace

void StreamDecoder::ensure_room(std::size_t bytes) {
  compact();
  if (len_ + bytes > buf_.size()) {
    // Geometric growth: the one-time zero-fill of resize() amortizes away,
    // and steady-state intake never reallocates again.
    buf_.resize(std::max(len_ + bytes, buf_.size() * 2));
  }
}

void StreamDecoder::feed(std::span<const std::byte> bytes) {
  if (bytes.empty()) return;
  ensure_room(bytes.size());
  std::memcpy(buf_.data() + len_, bytes.data(), bytes.size());
  len_ += bytes.size();
}

std::byte* StreamDecoder::write_window(std::size_t min_bytes) {
  ensure_room(min_bytes);
  return buf_.data() + len_;
}

void StreamDecoder::commit(std::size_t n) { len_ += n; }

std::optional<Message> StreamDecoder::next(
    std::span<const std::byte>* header) {
  if (corrupt_ || buffered() < record_bytes_) return std::nullopt;
  const std::span<const std::byte> record(buf_.data() + head_, record_bytes_);
  auto msg = decode(record.subspan(header_bytes_, kEncodedSize));
  if (!msg.has_value()) {
    corrupt_ = true;
    return std::nullopt;
  }
  if (header != nullptr) *header = record.first(header_bytes_);
  head_ += record_bytes_;
  return msg;
}

void StreamDecoder::compact() {
  if (head_ == 0) return;
  if (head_ == len_) {
    len_ = 0;
    head_ = 0;
    return;
  }
  if (head_ < kCompactThresholdBytes) return;
  const std::size_t tail = len_ - head_;
  std::memmove(buf_.data(), buf_.data() + head_, tail);
  len_ = tail;
  head_ = 0;
}

void StreamDecoder::reset() {
  len_ = 0;
  head_ = 0;
  corrupt_ = false;
}

}  // namespace multipub::wire
