#include "wire/codec.h"

#include <bit>
#include <cstring>

namespace multipub::wire {
namespace {

/// Little-endian scalar writer. The host is assumed little-endian (x86-64 /
/// AArch64 Linux targets); a static_assert guards the assumption.
static_assert(std::endian::native == std::endian::little,
              "codec assumes a little-endian host");

template <typename T>
void put(EncodedMessage& buf, std::size_t offset, T value) {
  std::memcpy(buf.data() + offset, &value, sizeof(T));
}

template <typename T>
[[nodiscard]] T get(std::span<const std::byte> buf, std::size_t offset) {
  T value;
  std::memcpy(&value, buf.data() + offset, sizeof(T));
  return value;
}

[[nodiscard]] bool valid_type(std::uint8_t raw) {
  return raw >= static_cast<std::uint8_t>(MessageType::kSubscribe) &&
         raw <= static_cast<std::uint8_t>(MessageType::kStateDelta);
}

}  // namespace

EncodedMessage encode(const Message& msg) {
  EncodedMessage buf{};
  put<std::uint8_t>(buf, 0, kMagic);
  put<std::uint8_t>(buf, 1, kVersion);
  put<std::uint8_t>(buf, 2, static_cast<std::uint8_t>(msg.type));
  put<std::uint8_t>(buf, 3, static_cast<std::uint8_t>(msg.config_mode));
  put<std::int32_t>(buf, 4, msg.topic.value());
  put<std::int32_t>(buf, 8, msg.publisher.value());
  put<std::int32_t>(buf, 12, msg.subscriber.value());
  put<std::uint64_t>(buf, 16, msg.seq);
  put<double>(buf, 24, msg.published_at);
  put<std::uint64_t>(buf, 32, msg.payload_bytes);
  put<std::uint64_t>(buf, 40, msg.config_regions.mask());
  put<std::uint64_t>(buf, 48, msg.key);
  put<std::uint64_t>(buf, 56, msg.filter.lo);
  put<std::uint64_t>(buf, 64, msg.filter.hi);
  put<std::uint32_t>(buf, 72, msg.weight);
  put<std::uint32_t>(buf, 76, 0);
  put<std::uint64_t>(buf, 80, msg.delivery_seq);
  return buf;
}

std::optional<Message> decode(std::span<const std::byte> frame) {
  if (frame.size() != kEncodedSize) return std::nullopt;
  if (get<std::uint8_t>(frame, 0) != kMagic) return std::nullopt;
  if (get<std::uint8_t>(frame, 1) != kVersion) return std::nullopt;
  const auto raw_type = get<std::uint8_t>(frame, 2);
  if (!valid_type(raw_type)) return std::nullopt;
  const auto raw_mode = get<std::uint8_t>(frame, 3);
  if (raw_mode > static_cast<std::uint8_t>(WireMode::kRouted)) {
    return std::nullopt;
  }
  // The reserved word must be zero so decode stays the inverse of encode on
  // its accepted domain (and so v5 can assign it a meaning unambiguously).
  if (get<std::uint32_t>(frame, 76) != 0) return std::nullopt;

  Message msg;
  msg.type = static_cast<MessageType>(raw_type);
  msg.config_mode = static_cast<WireMode>(raw_mode);
  msg.topic = TopicId{get<std::int32_t>(frame, 4)};
  msg.publisher = ClientId{get<std::int32_t>(frame, 8)};
  msg.subscriber = ClientId{get<std::int32_t>(frame, 12)};
  msg.seq = get<std::uint64_t>(frame, 16);
  msg.published_at = get<double>(frame, 24);
  msg.payload_bytes = get<std::uint64_t>(frame, 32);
  msg.config_regions = geo::RegionSet(get<std::uint64_t>(frame, 40));
  msg.key = get<std::uint64_t>(frame, 48);
  msg.filter.lo = get<std::uint64_t>(frame, 56);
  msg.filter.hi = get<std::uint64_t>(frame, 64);
  msg.weight = get<std::uint32_t>(frame, 72);
  msg.delivery_seq = get<std::uint64_t>(frame, 80);
  return msg;
}

}  // namespace multipub::wire
