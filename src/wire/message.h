// Protocol messages exchanged between clients, brokers, region managers and
// the controller.
//
// One Message struct covers the whole protocol; which fields are meaningful
// depends on the type (documented per enumerator). payload_bytes carries
// Omega(M) — the application payload size the cost model bills — rather than
// the bytes themselves: the simulation never needs the content, only its
// size, and this keeps a 10^6-message run allocation-free.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "geo/region_set.h"

namespace multipub::wire {

enum class MessageType : std::uint8_t {
  kSubscribe = 1,     ///< client -> broker: subscriber, topic.
  kUnsubscribe = 2,   ///< client -> broker: subscriber, topic.
  kPublish = 3,       ///< publisher -> broker: topic, seq, published_at,
                      ///< payload_bytes.
  kForward = 4,       ///< broker -> broker (routed mode): same publication
                      ///< fields as kPublish.
  kDeliver = 5,       ///< broker -> subscriber: same publication fields.
  kConfigUpdate = 6,  ///< region manager -> client: topic, config_regions,
                      ///< config_mode.
  kPing = 7,          ///< client -> broker latency probe: subscriber (the
                      ///< probing client), seq, published_at (send time).
  kPong = 8,          ///< broker -> client probe echo: same fields.
  kLatencyReport = 9, ///< client -> broker: "my one-way latency to you is
                      ///< published_at ms"; subscriber = reporting client.

  // Node lifecycle protocol (live deployment, DESIGN.md §13). These travel
  // between broker processes and the controller process; the simulated
  // plane never emits them. Region ids ride in the ClientId-typed fields
  // (publisher unless stated otherwise) — the fields are plain int32
  // carriers at this layer.
  kNodeHello = 10,        ///< broker -> controller: publisher = region id,
                          ///< seq = the broker's listening port.
  kNodeWelcome = 11,      ///< controller -> broker registration ack:
                          ///< seq = heartbeat interval ms, key = seed for
                          ///< the broker's heartbeat jitter stream.
  kPeerInfo = 12,         ///< controller -> broker: peer broker endpoint;
                          ///< publisher = region id, seq = port.
  kHeartbeat = 13,        ///< broker -> controller liveness beacon:
                          ///< publisher = region id, seq = beat counter.
  kPhaseStart = 14,       ///< controller -> broker: enter phase `seq` (see
                          ///< node/protocol.h); attach phase carries the
                          ///< bootstrap config_regions/config_mode.
  kPhaseDone = 15,        ///< broker -> controller: phase `seq` finished;
                          ///< publisher = region id.
  kReportPublisher = 16,  ///< broker -> controller report line: topic,
                          ///< publisher, seq = msg_count, payload_bytes =
                          ///< total bytes; subscriber = reporting region.
  kReportSubscriber = 17, ///< broker -> controller report line: topic,
                          ///< subscriber; publisher = reporting region.
  kReportEnd = 18,        ///< broker -> controller: report batch complete;
                          ///< publisher = region id, seq = line count,
                          ///< key bit 0 = full_snapshot.
  kNodeBye = 19,          ///< broker -> controller: graceful shutdown;
                          ///< publisher = region id.

  // Reliable-delivery protocol (DESIGN.md §15). Only emitted when the
  // reliable mode is on; the default plane never sees these kinds.
  kReplayRequest = 20,  ///< subscriber/broker -> broker: "replay topic
                        ///< `topic` from delivery_seq onward". subscriber =
                        ///< requesting client (invalid for broker-to-broker
                        ///< catch-up), key = flock id + 1 when the requester
                        ///< is a cohort member (0 otherwise), weight = the
                        ///< requester's weight. topic == -1 requests a full
                        ///< state snapshot (standby resync).
  kReplayBatch = 21,    ///< broker -> subscriber/broker: one replayed
                        ///< publication; same fields as kDeliver (including
                        ///< delivery_seq) and billed like it.
  kStateSnapshot = 22,  ///< broker -> standby/successor: one subscription
                        ///< (subscriber valid: topic, subscriber, filter,
                        ///< weight, key = flock id + 1) or one topic config
                        ///< (subscriber invalid: topic, config_regions,
                        ///< config_mode, seq = ring head) table entry;
                        ///< topic == -1 is the end-of-snapshot marker whose
                        ///< delivery_seq carries the primary's state_seq.
  kStateDelta = 23,     ///< broker -> standby: one sequenced state change
                        ///< (delivery_seq = primary state_seq). Fields as in
                        ///< kStateSnapshot; seq bit 0 distinguishes
                        ///< subscribe/install (1) from unsubscribe (0). A
                        ///< delta with an invalid topic and subscriber is a
                        ///< heartbeat restating the current state_seq.
};

[[nodiscard]] const char* to_string(MessageType type);

/// Delivery mode on the wire (mirrors core::DeliveryMode without creating a
/// wire -> core dependency).
enum class WireMode : std::uint8_t { kDirect = 0, kRouted = 1 };

/// Inclusive key interval for content-filtered subscriptions (the paper's
/// §VII future work: "extend our model to support content-based pub/sub").
/// Publications carry a 64-bit content key; a filtered subscription only
/// receives publications whose key falls inside the interval. The default
/// interval matches everything (plain topic-based semantics).
struct KeyFilter {
  std::uint64_t lo = 0;
  std::uint64_t hi = ~std::uint64_t{0};

  [[nodiscard]] bool matches(std::uint64_t key) const {
    return key >= lo && key <= hi;
  }
  [[nodiscard]] bool match_all() const {
    return lo == 0 && hi == ~std::uint64_t{0};
  }
  [[nodiscard]] static KeyFilter all() { return {}; }

  friend bool operator==(const KeyFilter&, const KeyFilter&) = default;
};

struct Message {
  MessageType type = MessageType::kPublish;
  TopicId topic;
  /// Originating publisher (kPublish/kForward/kDeliver).
  ClientId publisher;
  /// Acting subscriber (kSubscribe/kUnsubscribe) or delivery target
  /// (kDeliver).
  ClientId subscriber;
  /// Publication sequence number, unique per publisher.
  std::uint64_t seq = 0;
  /// Virtual timestamp at which the publisher emitted the publication;
  /// subscribers compute delivery time as now() - published_at.
  Millis published_at = 0.0;
  /// Omega(M): application payload size in bytes (what the tariff bills).
  Bytes payload_bytes = 0;
  /// New assignment vector (kConfigUpdate).
  geo::RegionSet config_regions;
  /// New delivery mode (kConfigUpdate).
  WireMode config_mode = WireMode::kDirect;
  /// Content key of the publication (kPublish/kForward/kDeliver).
  std::uint64_t key = 0;
  /// Content filter of a subscription (kSubscribe).
  KeyFilter filter;
  /// How many identical per-client messages this one stands for. 1 for
  /// ordinary traffic; a message to or from a cohort address carries the
  /// flock's member count, and every transport counter and billed byte is
  /// multiplied by it — which is exactly what the per-client loop would
  /// have recorded (DESIGN.md §12).
  std::uint32_t weight = 1;
  /// Reliable-delivery sequence number (DESIGN.md §15): the broker's
  /// per-topic replay-ring position on kDeliver/kForward/kReplayBatch, the
  /// resume point on kReplayRequest, the primary's state_seq on
  /// kStateSnapshot/kStateDelta. 0 everywhere when the reliable mode is off.
  std::uint64_t delivery_seq = 0;

  /// Bytes billed by the cost model when this message leaves a cloud
  /// region: the application payload for publication traffic, zero for
  /// control-plane traffic (the paper's model only bills publication
  /// dissemination).
  [[nodiscard]] Bytes billable_bytes() const;

  friend bool operator==(const Message&, const Message&) = default;
};

}  // namespace multipub::wire
