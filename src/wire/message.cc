#include "wire/message.h"

namespace multipub::wire {

const char* to_string(MessageType type) {
  switch (type) {
    case MessageType::kSubscribe:    return "SUBSCRIBE";
    case MessageType::kUnsubscribe:  return "UNSUBSCRIBE";
    case MessageType::kPublish:      return "PUBLISH";
    case MessageType::kForward:      return "FORWARD";
    case MessageType::kDeliver:      return "DELIVER";
    case MessageType::kConfigUpdate: return "CONFIG_UPDATE";
    case MessageType::kPing:          return "PING";
    case MessageType::kPong:          return "PONG";
    case MessageType::kLatencyReport: return "LATENCY_REPORT";
    case MessageType::kNodeHello:        return "NODE_HELLO";
    case MessageType::kNodeWelcome:      return "NODE_WELCOME";
    case MessageType::kPeerInfo:         return "PEER_INFO";
    case MessageType::kHeartbeat:        return "HEARTBEAT";
    case MessageType::kPhaseStart:       return "PHASE_START";
    case MessageType::kPhaseDone:        return "PHASE_DONE";
    case MessageType::kReportPublisher:  return "REPORT_PUBLISHER";
    case MessageType::kReportSubscriber: return "REPORT_SUBSCRIBER";
    case MessageType::kReportEnd:        return "REPORT_END";
    case MessageType::kNodeBye:          return "NODE_BYE";
    case MessageType::kReplayRequest:    return "REPLAY_REQUEST";
    case MessageType::kReplayBatch:      return "REPLAY_BATCH";
    case MessageType::kStateSnapshot:    return "STATE_SNAPSHOT";
    case MessageType::kStateDelta:       return "STATE_DELTA";
  }
  return "?";
}

Bytes Message::billable_bytes() const {
  switch (type) {
    case MessageType::kPublish:
    case MessageType::kForward:
    case MessageType::kDeliver:
    // A replayed publication leaves the region exactly like the delivery it
    // re-issues, so the tariff bills it identically (DESIGN.md §15).
    case MessageType::kReplayBatch:
      return payload_bytes;
    case MessageType::kSubscribe:
    case MessageType::kUnsubscribe:
    case MessageType::kConfigUpdate:
    case MessageType::kPing:
    case MessageType::kPong:
    case MessageType::kLatencyReport:
    case MessageType::kNodeHello:
    case MessageType::kNodeWelcome:
    case MessageType::kPeerInfo:
    case MessageType::kHeartbeat:
    case MessageType::kPhaseStart:
    case MessageType::kPhaseDone:
    case MessageType::kReportPublisher:
    case MessageType::kReportSubscriber:
    case MessageType::kReportEnd:
    case MessageType::kNodeBye:
    case MessageType::kReplayRequest:
    case MessageType::kStateSnapshot:
    case MessageType::kStateDelta:
      return 0;
  }
  return 0;
}

}  // namespace multipub::wire
