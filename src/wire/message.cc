#include "wire/message.h"

namespace multipub::wire {

const char* to_string(MessageType type) {
  switch (type) {
    case MessageType::kSubscribe:    return "SUBSCRIBE";
    case MessageType::kUnsubscribe:  return "UNSUBSCRIBE";
    case MessageType::kPublish:      return "PUBLISH";
    case MessageType::kForward:      return "FORWARD";
    case MessageType::kDeliver:      return "DELIVER";
    case MessageType::kConfigUpdate: return "CONFIG_UPDATE";
    case MessageType::kPing:          return "PING";
    case MessageType::kPong:          return "PONG";
    case MessageType::kLatencyReport: return "LATENCY_REPORT";
  }
  return "?";
}

Bytes Message::billable_bytes() const {
  switch (type) {
    case MessageType::kPublish:
    case MessageType::kForward:
    case MessageType::kDeliver:
      return payload_bytes;
    case MessageType::kSubscribe:
    case MessageType::kUnsubscribe:
    case MessageType::kConfigUpdate:
    case MessageType::kPing:
    case MessageType::kPong:
    case MessageType::kLatencyReport:
      return 0;
  }
  return 0;
}

}  // namespace multipub::wire
