#include "geo/synthetic.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/assert.h"

namespace multipub::geo {

SyntheticWorld synthesize_world(std::size_t n_regions,
                                const SyntheticWorldParams& params, Rng& rng) {
  MP_EXPECTS(n_regions >= 1 && n_regions <= 64);
  MP_EXPECTS(params.extent_ms > 0.0);

  struct Point {
    double x, y;
  };
  std::vector<Point> points;
  points.reserve(n_regions);
  std::vector<Region> regions;
  regions.reserve(n_regions);
  for (std::size_t i = 0; i < n_regions; ++i) {
    points.push_back({rng.uniform(0.0, params.extent_ms),
                      rng.uniform(0.0, params.extent_ms)});
    const double alpha = rng.uniform(params.alpha_min, params.alpha_max);
    // beta is at least alpha (Internet egress never undercuts the
    // intra-cloud rate) and at least the configured floor.
    const double beta =
        std::max(alpha, rng.uniform(params.beta_min, params.beta_max));
    regions.push_back({RegionId{}, "syn-" + std::to_string(i),
                       "synthetic-" + std::to_string(i), alpha, beta});
  }

  SyntheticWorld world;
  world.catalog = RegionCatalog(std::move(regions));
  world.backbone = InterRegionLatency(n_regions);
  for (std::size_t i = 0; i < n_regions; ++i) {
    for (std::size_t j = i + 1; j < n_regions; ++j) {
      const double dx = points[i].x - points[j].x;
      const double dy = points[i].y - points[j].y;
      const double distance = std::sqrt(dx * dx + dy * dy);
      const double latency = params.backbone_base_ms +
                             params.backbone_stretch * distance +
                             std::abs(rng.normal(0.0, params.backbone_jitter_ms));
      world.backbone.set(RegionId{static_cast<RegionId::underlying_type>(i)},
                         RegionId{static_cast<RegionId::underlying_type>(j)},
                         latency);
    }
  }
  MP_ENSURES(world.backbone.complete());
  return world;
}

}  // namespace multipub::geo
