#include "geo/latency.h"

#include <array>

#include "common/assert.h"

namespace multipub::geo {

InterRegionLatency::InterRegionLatency(std::size_t n_regions)
    : n_(n_regions), cells_(n_regions * n_regions, kUnreachable) {
  for (std::size_t i = 0; i < n_; ++i) cells_[i * n_ + i] = 0.0;
}

InterRegionLatency InterRegionLatency::ec2_2016() {
  // One-way latencies (ms) between the ten EC2 regions, paper order
  // R1=us-east-1 .. R10=sa-east-1. Assembled from publicly documented
  // 2016-era inter-region RTTs divided by two. Upper triangle; the matrix
  // is symmetric.
  constexpr std::size_t n = 10;
  constexpr std::array<std::array<double, n>, n> one_way{{
      //  R1    R2    R3    R4    R5    R6    R7    R8    R9   R10
      {{  0,   35,   40,   40,   45,   75,   85,  110,  100,   60}},  // R1
      {{ 35,    0,   10,   75,   83,   55,   65,   85,   70,   95}},  // R2
      {{ 40,   10,    0,   70,   80,   50,   60,   82,   70,   90}},  // R3
      {{ 40,   75,   70,    0,   10,  110,  120,  120,  140,   95}},  // R4
      {{ 45,   83,   80,   10,    0,  120,  130,  115,  150,  100}},  // R5
      {{ 75,   55,   50,  110,  120,    0,   17,   35,   52,  130}},  // R6
      {{ 85,   65,   60,  120,  130,   17,    0,   45,   65,  140}},  // R7
      {{110,   85,   82,  120,  115,   35,   45,    0,   45,  165}},  // R8
      {{100,   70,   70,  140,  150,   52,   65,   45,    0,  160}},  // R9
      {{ 60,   95,   90,   95,  100,  130,  140,  165,  160,    0}},  // R10
  }};
  InterRegionLatency m(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      m.set(RegionId{static_cast<RegionId::underlying_type>(i)},
            RegionId{static_cast<RegionId::underlying_type>(j)},
            one_way[i][j]);
    }
  }
  MP_ENSURES(m.complete());
  return m;
}

InterRegionLatency InterRegionLatency::prefix(std::size_t n) const {
  MP_EXPECTS(n <= n_);
  InterRegionLatency out(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      out.cells_[i * n + j] = cells_[i * n_ + j];
    }
  }
  return out;
}

void InterRegionLatency::set(RegionId a, RegionId b, Millis one_way) {
  MP_EXPECTS(a.valid() && a.index() < n_);
  MP_EXPECTS(b.valid() && b.index() < n_);
  MP_EXPECTS(a != b);
  MP_EXPECTS(one_way >= 0.0);
  cells_[a.index() * n_ + b.index()] = one_way;
  cells_[b.index() * n_ + a.index()] = one_way;
}

Millis InterRegionLatency::at(RegionId a, RegionId b) const {
  MP_EXPECTS(a.valid() && a.index() < n_);
  MP_EXPECTS(b.valid() && b.index() < n_);
  return cells_[a.index() * n_ + b.index()];
}

bool InterRegionLatency::complete() const {
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) {
      if (i != j && cells_[i * n_ + j] == kUnreachable) return false;
    }
  }
  return true;
}

ClientId ClientLatencyMap::add_client(std::span<const Millis> row) {
  MP_EXPECTS(row.size() == n_regions_);
  cells_.insert(cells_.end(), row.begin(), row.end());
  ++n_clients_;
  return ClientId{static_cast<ClientId::underlying_type>(n_clients_ - 1)};
}

void ClientLatencyMap::ensure_client(ClientId client) {
  MP_EXPECTS(client.valid());
  while (n_clients_ <= client.index()) {
    cells_.insert(cells_.end(), n_regions_, kUnreachable);
    ++n_clients_;
  }
}

void ClientLatencyMap::set(ClientId client, RegionId region, Millis value) {
  MP_EXPECTS(client.valid() && client.index() < n_clients_);
  MP_EXPECTS(region.valid() && region.index() < n_regions_);
  MP_EXPECTS(value >= 0.0);
  cells_[client.index() * n_regions_ + region.index()] = value;
}

std::span<const Millis> ClientLatencyMap::row(ClientId client) const {
  MP_EXPECTS(client.valid() && client.index() < n_clients_);
  return {cells_.data() + client.index() * n_regions_, n_regions_};
}

RegionId ClientLatencyMap::closest_region(ClientId client,
                                          RegionSet candidates) const {
  MP_EXPECTS(!candidates.empty());
  const std::span<const Millis> row = this->row(client);
  RegionId best = RegionId::invalid();
  Millis best_latency = kUnreachable;
  for (std::size_t i = 0; i < n_regions_; ++i) {
    const RegionId r{static_cast<RegionId::underlying_type>(i)};
    if (!candidates.contains(r)) continue;
    if (row[i] < best_latency) {
      best_latency = row[i];
      best = r;
    }
  }
  MP_ENSURES(best.valid());
  return best;
}

Millis ClientLatencyMap::closest_latency(ClientId client,
                                         RegionSet candidates) const {
  return at(client, closest_region(client, candidates));
}

}  // namespace multipub::geo
