#include "geo/region_set.h"

#include <bit>

#include "common/assert.h"

namespace multipub::geo {

RegionSet RegionSet::universe(std::size_t n_regions) {
  MP_EXPECTS(n_regions <= 64);
  if (n_regions == 64) return RegionSet(~std::uint64_t{0});
  return RegionSet((std::uint64_t{1} << n_regions) - 1);
}

RegionSet RegionSet::single(RegionId region) {
  RegionSet s;
  s.add(region);
  return s;
}

bool RegionSet::contains(RegionId region) const {
  MP_EXPECTS(region.valid() && region.index() < 64);
  return (mask_ >> region.index()) & 1;
}

int RegionSet::size() const { return std::popcount(mask_); }

void RegionSet::add(RegionId region) {
  MP_EXPECTS(region.valid() && region.index() < 64);
  mask_ |= std::uint64_t{1} << region.index();
}

void RegionSet::remove(RegionId region) {
  MP_EXPECTS(region.valid() && region.index() < 64);
  mask_ &= ~(std::uint64_t{1} << region.index());
}

RegionSet RegionSet::with(RegionId region) const {
  RegionSet s = *this;
  s.add(region);
  return s;
}

RegionSet RegionSet::without(RegionId region) const {
  RegionSet s = *this;
  s.remove(region);
  return s;
}

std::vector<RegionId> RegionSet::to_vector() const {
  std::vector<RegionId> out;
  out.reserve(static_cast<std::size_t>(size()));
  for (RegionId r : *this) out.push_back(r);
  return out;
}

RegionId RegionSet::first() const {
  if (mask_ == 0) return RegionId::invalid();
  return RegionId{static_cast<RegionId::underlying_type>(std::countr_zero(mask_))};
}

std::string RegionSet::to_string() const {
  std::string out = "{";
  bool first_entry = true;
  for (RegionId r : *this) {
    if (!first_entry) out += ',';
    out += 'R';
    out += std::to_string(r.value() + 1);  // paper numbering is 1-based
    first_entry = false;
  }
  out += '}';
  return out;
}

std::vector<RegionSet> all_nonempty_subsets(std::size_t n_regions) {
  MP_EXPECTS(n_regions >= 1 && n_regions <= 24);  // enumeration guard
  const std::uint64_t limit = std::uint64_t{1} << n_regions;
  std::vector<RegionSet> out;
  out.reserve(limit - 1);
  for (std::uint64_t m = 1; m < limit; ++m) out.emplace_back(m);
  return out;
}

}  // namespace multipub::geo
