#include "geo/region.h"

#include "common/assert.h"

namespace multipub::geo {

RegionCatalog::RegionCatalog(std::vector<Region> regions)
    : regions_(std::move(regions)) {
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    regions_[i].id = RegionId{static_cast<RegionId::underlying_type>(i)};
    MP_EXPECTS(regions_[i].inter_region_cost_per_gb >= 0.0);
    MP_EXPECTS(regions_[i].internet_cost_per_gb >= 0.0);
  }
}

RegionCatalog RegionCatalog::ec2_2016() {
  // Paper Table I. RegionId order matches the paper's R1..R10.
  std::vector<Region> r{
      {RegionId{}, "us-east-1", "N. Virginia", 0.02, 0.09},
      {RegionId{}, "us-west-1", "N. California", 0.02, 0.09},
      {RegionId{}, "us-west-2", "Oregon", 0.02, 0.09},
      {RegionId{}, "eu-west-1", "Ireland", 0.02, 0.09},
      {RegionId{}, "eu-central-1", "Frankfurt", 0.02, 0.09},
      {RegionId{}, "ap-northeast-1", "Tokyo", 0.09, 0.14},
      {RegionId{}, "ap-northeast-2", "Seoul", 0.08, 0.126},
      {RegionId{}, "ap-southeast-1", "Singapore", 0.09, 0.12},
      {RegionId{}, "ap-southeast-2", "Sydney", 0.14, 0.14},
      {RegionId{}, "sa-east-1", "Sao Paulo", 0.16, 0.25},
  };
  return RegionCatalog(std::move(r));
}

RegionCatalog RegionCatalog::prefix(std::size_t n) const {
  MP_EXPECTS(n <= regions_.size());
  return RegionCatalog(
      std::vector<Region>(regions_.begin(),
                          regions_.begin() + static_cast<std::ptrdiff_t>(n)));
}

const Region& RegionCatalog::at(RegionId id) const {
  MP_EXPECTS(id.valid() && id.index() < regions_.size());
  return regions_[id.index()];
}

RegionId RegionCatalog::find(std::string_view name) const {
  for (const auto& region : regions_) {
    if (region.name == name) return region.id;
  }
  return RegionId::invalid();
}

}  // namespace multipub::geo
