// Latency matrices.
//
// The paper's model rests on two matrices (§III-C):
//  - L^R : one-way latency between each pair of cloud regions, measured by
//          pinging VMs in all 10 EC2 regions (we bake in values assembled
//          from public EC2 inter-region measurements of the same era), and
//  - L   : one-way latency between every client and every region, derived in
//          the paper from the King dataset (we synthesize an equivalent
//          population, see geo/king_synth.h).
#pragma once

#include <span>
#include <vector>

#include "common/assert.h"
#include "common/types.h"
#include "geo/region_set.h"

namespace multipub::geo {

/// Symmetric one-way inter-region latency matrix (the paper's L^R).
class InterRegionLatency {
 public:
  InterRegionLatency() = default;

  /// Builds an n x n matrix with zero diagonal; off-diagonal entries start
  /// as kUnreachable and must be filled with set().
  explicit InterRegionLatency(std::size_t n_regions);

  /// One-way latencies between the ten EC2 regions of RegionCatalog::
  /// ec2_2016(), assembled from publicly documented RTT measurements of
  /// 2016-era EC2, halved (as the paper halves its ping averages).
  [[nodiscard]] static InterRegionLatency ec2_2016();

  /// The top-left n x n block (used when sweeping the region count).
  [[nodiscard]] InterRegionLatency prefix(std::size_t n) const;

  [[nodiscard]] std::size_t size() const { return n_; }

  /// Symmetric assignment: sets both (a,b) and (b,a). Pre: a != b.
  void set(RegionId a, RegionId b, Millis one_way);

  [[nodiscard]] Millis at(RegionId a, RegionId b) const;

  /// True when every off-diagonal entry has been filled.
  [[nodiscard]] bool complete() const;

 private:
  std::size_t n_ = 0;
  std::vector<Millis> cells_;  // row-major n x n
};

/// Client-to-region one-way latency matrix (the paper's L). Row = client,
/// column = region; clients are dense ids handed out by add_client().
class ClientLatencyMap {
 public:
  ClientLatencyMap() = default;
  explicit ClientLatencyMap(std::size_t n_regions) : n_regions_(n_regions) {}

  /// Appends one client's latency row (one entry per region, in catalog
  /// order) and returns its ClientId. Pre: row.size() == n_regions().
  ClientId add_client(std::span<const Millis> row);

  [[nodiscard]] std::size_t n_clients() const { return n_clients_; }
  [[nodiscard]] std::size_t n_regions() const { return n_regions_; }

  /// Inline and a single indexed load: this sits on the data plane's
  /// per-hop path (every client-bound delivery looks its latency up here).
  [[nodiscard]] Millis at(ClientId client, RegionId region) const {
    MP_EXPECTS(client.valid() && client.index() < n_clients_);
    MP_EXPECTS(region.valid() && region.index() < n_regions_);
    return cells_[client.index() * n_regions_ + region.index()];
  }
  [[nodiscard]] std::span<const Millis> row(ClientId client) const;

  /// Overwrites one cell (used by the controller's latency monitoring,
  /// paper §III-C: L may be "updated over time at an infrequent rate").
  void set(ClientId client, RegionId region, Millis value);

  /// Grows the map so `client` has a row (filled with kUnreachable until
  /// measurements arrive). Supports client churn: a client that joins after
  /// the matrix was built becomes known through its first probe reports.
  void ensure_client(ClientId client);

  /// The member of `candidates` with the smallest latency from `client`
  /// (ties broken towards the lower region id, matching a deterministic
  /// scan). Pre: candidates non-empty and within range.
  [[nodiscard]] RegionId closest_region(ClientId client,
                                        RegionSet candidates) const;

  /// Latency from `client` to its closest region among `candidates`.
  [[nodiscard]] Millis closest_latency(ClientId client,
                                       RegionSet candidates) const;

 private:
  std::size_t n_regions_ = 0;
  std::size_t n_clients_ = 0;
  std::vector<Millis> cells_;  // row-major n_clients x n_regions
};

}  // namespace multipub::geo
