#include "geo/latency_io.h"

#include <cstdio>
#include <sstream>
#include <vector>

namespace multipub::geo {
namespace {

void append_value(std::string& out, Millis value) {
  if (value == kUnreachable) {
    out += "inf";
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out += buffer;
}

bool parse_value(const std::string& token, Millis* out) {
  if (token == "inf") {
    *out = kUnreachable;
    return true;
  }
  char* end = nullptr;
  *out = std::strtod(token.c_str(), &end);
  return end != nullptr && *end == '\0' && !token.empty();
}

std::string at_line(int line, const std::string& message) {
  return "line " + std::to_string(line) + ": " + message;
}

}  // namespace

std::string serialize_latencies(const InterRegionLatency& backbone,
                                const ClientLatencyMap& clients) {
  std::string out;
  if (backbone.size() > 0) {
    out += "backbone " + std::to_string(backbone.size()) + "\n";
    for (std::size_t i = 0; i < backbone.size(); ++i) {
      for (std::size_t j = 0; j < backbone.size(); ++j) {
        if (j > 0) out += ' ';
        append_value(out, backbone.at(RegionId{static_cast<int>(i)},
                                      RegionId{static_cast<int>(j)}));
      }
      out += '\n';
    }
  }
  if (clients.n_regions() > 0 && clients.n_clients() > 0) {
    out += "clients " + std::to_string(clients.n_clients()) + " " +
           std::to_string(clients.n_regions()) + "\n";
    for (std::size_t c = 0; c < clients.n_clients(); ++c) {
      const auto row = clients.row(ClientId{static_cast<int>(c)});
      for (std::size_t j = 0; j < row.size(); ++j) {
        if (j > 0) out += ' ';
        append_value(out, row[j]);
      }
      out += '\n';
    }
  }
  return out;
}

std::optional<ParsedLatencies> parse_latencies(std::string_view text,
                                               std::string* error) {
  ParsedLatencies out;
  std::istringstream stream{std::string(text)};
  std::string raw;
  int line_no = 0;

  // Reads the next non-empty, comment-stripped line; false at EOF.
  auto next_line = [&](std::string* line) {
    while (std::getline(stream, raw)) {
      ++line_no;
      if (const auto hash = raw.find('#'); hash != std::string::npos) {
        raw.erase(hash);
      }
      std::istringstream probe(raw);
      std::string first;
      if (probe >> first) {
        *line = raw;
        return true;
      }
    }
    return false;
  };

  std::string line;
  while (next_line(&line)) {
    std::istringstream header(line);
    std::string kind;
    header >> kind;
    if (kind == "backbone") {
      std::size_t n = 0;
      if (!(header >> n) || n == 0 || n > 64) {
        if (error) *error = at_line(line_no, "bad backbone header");
        return std::nullopt;
      }
      out.backbone = InterRegionLatency(n);
      for (std::size_t i = 0; i < n; ++i) {
        if (!next_line(&line)) {
          if (error) *error = at_line(line_no, "backbone matrix truncated");
          return std::nullopt;
        }
        std::istringstream row(line);
        std::string token;
        for (std::size_t j = 0; j < n; ++j) {
          Millis value = 0.0;
          if (!(row >> token) || !parse_value(token, &value)) {
            if (error) *error = at_line(line_no, "bad backbone value");
            return std::nullopt;
          }
          if (i == j) {
            if (value != 0.0) {
              if (error) *error = at_line(line_no, "diagonal must be 0");
              return std::nullopt;
            }
            continue;
          }
          if (j > i) {  // set() writes both triangles; validate symmetry after
            out.backbone.set(RegionId{static_cast<int>(i)},
                             RegionId{static_cast<int>(j)}, value);
          } else if (out.backbone.at(RegionId{static_cast<int>(i)},
                                     RegionId{static_cast<int>(j)}) != value) {
            if (error) *error = at_line(line_no, "backbone not symmetric");
            return std::nullopt;
          }
        }
      }
    } else if (kind == "clients") {
      std::size_t rows = 0, n = 0;
      if (!(header >> rows >> n) || n == 0) {
        if (error) *error = at_line(line_no, "bad clients header");
        return std::nullopt;
      }
      out.clients = ClientLatencyMap(n);
      for (std::size_t c = 0; c < rows; ++c) {
        if (!next_line(&line)) {
          if (error) *error = at_line(line_no, "client matrix truncated");
          return std::nullopt;
        }
        std::istringstream row_stream(line);
        std::vector<Millis> row(n);
        std::string token;
        for (std::size_t j = 0; j < n; ++j) {
          if (!(row_stream >> token) || !parse_value(token, &row[j])) {
            if (error) *error = at_line(line_no, "bad client value");
            return std::nullopt;
          }
        }
        out.clients.add_client(row);
      }
    } else {
      if (error) *error = at_line(line_no, "unknown section '" + kind + "'");
      return std::nullopt;
    }
  }
  return out;
}

}  // namespace multipub::geo
