// Cloud region catalog.
//
// A Region carries the two outgoing-bandwidth tariffs the paper's cost model
// uses (Table I): $/GB towards another region of the same cloud (alpha) and
// $/GB towards arbitrary Internet hosts (beta). RegionCatalog owns the
// ordered list of regions; RegionId is a dense index into it.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace multipub::geo {

/// Static description of one cloud region.
struct Region {
  RegionId id;
  std::string name;      ///< Provider identifier, e.g. "us-east-1".
  std::string location;  ///< Human-readable location, e.g. "N. Virginia".
  /// $/GB for data leaving this region towards another region of the same
  /// cloud (Table I column $EC2); the paper's alpha(R) before the per-byte
  /// conversion.
  double inter_region_cost_per_gb = 0.0;
  /// $/GB for data leaving this region towards any Internet host (Table I
  /// column $Inet); the paper's beta(R) before the per-byte conversion.
  double internet_cost_per_gb = 0.0;

  /// alpha(R): cost per outgoing byte towards a different region.
  [[nodiscard]] double alpha_per_byte() const {
    return per_gb_to_per_byte(inter_region_cost_per_gb);
  }
  /// beta(R): cost per outgoing byte towards a client/subscriber.
  [[nodiscard]] double beta_per_byte() const {
    return per_gb_to_per_byte(internet_cost_per_gb);
  }
};

/// Ordered, immutable-after-construction list of regions.
class RegionCatalog {
 public:
  RegionCatalog() = default;
  explicit RegionCatalog(std::vector<Region> regions);

  /// The ten Amazon EC2 regions of the paper's Table I, with the paper's
  /// outgoing-bandwidth tariffs.
  [[nodiscard]] static RegionCatalog ec2_2016();

  /// A catalog holding only the first `n` regions of this one (used by the
  /// runtime-analysis experiment, which sweeps the region count).
  [[nodiscard]] RegionCatalog prefix(std::size_t n) const;

  [[nodiscard]] std::size_t size() const { return regions_.size(); }
  [[nodiscard]] bool empty() const { return regions_.empty(); }
  [[nodiscard]] const Region& at(RegionId id) const;
  [[nodiscard]] const std::vector<Region>& all() const { return regions_; }

  /// Looks a region up by provider name; RegionId::invalid() if absent.
  [[nodiscard]] RegionId find(std::string_view name) const;

 private:
  std::vector<Region> regions_;
};

}  // namespace multipub::geo
