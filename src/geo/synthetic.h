// Synthetic worlds: region catalogs and backbones of arbitrary size.
//
// The paper's brute-force controller is exponential in the region count and
// its conclusion proposes heuristics "to support even larger-scale systems";
// modern clouds have 30+ regions. To evaluate the heuristic optimizer beyond
// the 10-region EC2 catalog we synthesize larger worlds: regions are placed
// on a 2D plane (a crude geography), backbone latency grows with distance,
// and tariffs are drawn from the EC2 price range.
#pragma once

#include "common/rng.h"
#include "geo/latency.h"
#include "geo/region.h"

namespace multipub::geo {

struct SyntheticWorldParams {
  /// Plane is [0, extent] x [0, extent] "ms units".
  double extent_ms = 150.0;
  /// Latency = distance * stretch + base + jitter.
  double backbone_stretch = 1.0;
  double backbone_base_ms = 4.0;
  double backbone_jitter_ms = 3.0;
  /// Tariff ranges ($/GB), spanning the EC2 table's spread.
  double alpha_min = 0.02, alpha_max = 0.16;
  double beta_min = 0.09, beta_max = 0.25;
};

struct SyntheticWorld {
  RegionCatalog catalog;
  InterRegionLatency backbone;
};

/// Generates `n_regions` regions with plane-geometry latencies and random
/// tariffs (alpha <= beta per region, as in every real tariff table).
/// Deterministic in (params, rng state).
[[nodiscard]] SyntheticWorld synthesize_world(std::size_t n_regions,
                                              const SyntheticWorldParams& params,
                                              Rng& rng);

}  // namespace multipub::geo
