// RegionSet: a small bitmask over regions.
//
// One row of the paper's assignment matrix — the set of regions serving one
// topic — is "a bit vector" (paper §IV). RegionSet wraps a 64-bit mask with
// set semantics plus the enumeration helpers the optimizer needs
// (all non-empty subsets of a universe).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <string>
#include <vector>

#include "common/types.h"

namespace multipub::geo {

/// Set of RegionIds backed by a 64-bit mask (supports up to 64 regions;
/// EC2 2016 has 10, and the optimizer is exponential in this count anyway).
class RegionSet {
 public:
  constexpr RegionSet() = default;
  constexpr explicit RegionSet(std::uint64_t mask) : mask_(mask) {}

  /// The set {R_0, ..., R_{n-1}} covering a whole catalog of size n.
  [[nodiscard]] static RegionSet universe(std::size_t n_regions);

  [[nodiscard]] static RegionSet single(RegionId region);

  [[nodiscard]] constexpr std::uint64_t mask() const { return mask_; }
  [[nodiscard]] bool contains(RegionId region) const;
  [[nodiscard]] bool empty() const { return mask_ == 0; }
  [[nodiscard]] int size() const;

  void add(RegionId region);
  void remove(RegionId region);

  [[nodiscard]] RegionSet with(RegionId region) const;
  [[nodiscard]] RegionSet without(RegionId region) const;

  /// Set union / intersection.
  friend constexpr RegionSet operator|(RegionSet a, RegionSet b) {
    return RegionSet(a.mask_ | b.mask_);
  }
  friend constexpr RegionSet operator&(RegionSet a, RegionSet b) {
    return RegionSet(a.mask_ & b.mask_);
  }

  /// Allocation-free forward iterator over the members in ascending id
  /// order (lowest set bit first). This is what hot paths — broker fan-out,
  /// publisher replication — use; to_vector() stays around for tests and
  /// callers that genuinely need a materialised vector.
  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = RegionId;
    using difference_type = std::ptrdiff_t;

    constexpr const_iterator() = default;
    constexpr explicit const_iterator(std::uint64_t remaining)
        : remaining_(remaining) {}

    [[nodiscard]] constexpr RegionId operator*() const {
      return RegionId{
          static_cast<RegionId::underlying_type>(std::countr_zero(remaining_))};
    }
    constexpr const_iterator& operator++() {
      remaining_ &= remaining_ - 1;  // clear the lowest set bit
      return *this;
    }
    constexpr const_iterator operator++(int) {
      const_iterator copy = *this;
      ++*this;
      return copy;
    }
    friend constexpr bool operator==(const_iterator, const_iterator) = default;

   private:
    std::uint64_t remaining_ = 0;
  };

  [[nodiscard]] constexpr const_iterator begin() const {
    return const_iterator(mask_);
  }
  [[nodiscard]] constexpr const_iterator end() const {
    return const_iterator(0);
  }

  /// Member regions in ascending id order, materialised. Allocates — hot
  /// paths should range-for the set directly via begin()/end().
  [[nodiscard]] std::vector<RegionId> to_vector() const;

  /// Smallest member id; RegionId::invalid() when empty.
  [[nodiscard]] RegionId first() const;

  /// e.g. "{R1,R5,R8}" using 1-based paper numbering.
  [[nodiscard]] std::string to_string() const;

  friend constexpr bool operator==(RegionSet, RegionSet) = default;

 private:
  std::uint64_t mask_ = 0;
};

/// Enumerates every non-empty subset of universe(n_regions) —
/// the 2^n - 1 assignment vectors the optimizer must consider.
[[nodiscard]] std::vector<RegionSet> all_nonempty_subsets(std::size_t n_regions);

}  // namespace multipub::geo
