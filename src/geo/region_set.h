// RegionSet: a small bitmask over regions.
//
// One row of the paper's assignment matrix — the set of regions serving one
// topic — is "a bit vector" (paper §IV). RegionSet wraps a 64-bit mask with
// set semantics plus the enumeration helpers the optimizer needs
// (all non-empty subsets of a universe).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace multipub::geo {

/// Set of RegionIds backed by a 64-bit mask (supports up to 64 regions;
/// EC2 2016 has 10, and the optimizer is exponential in this count anyway).
class RegionSet {
 public:
  constexpr RegionSet() = default;
  constexpr explicit RegionSet(std::uint64_t mask) : mask_(mask) {}

  /// The set {R_0, ..., R_{n-1}} covering a whole catalog of size n.
  [[nodiscard]] static RegionSet universe(std::size_t n_regions);

  [[nodiscard]] static RegionSet single(RegionId region);

  [[nodiscard]] constexpr std::uint64_t mask() const { return mask_; }
  [[nodiscard]] bool contains(RegionId region) const;
  [[nodiscard]] bool empty() const { return mask_ == 0; }
  [[nodiscard]] int size() const;

  void add(RegionId region);
  void remove(RegionId region);

  [[nodiscard]] RegionSet with(RegionId region) const;
  [[nodiscard]] RegionSet without(RegionId region) const;

  /// Set union / intersection.
  friend constexpr RegionSet operator|(RegionSet a, RegionSet b) {
    return RegionSet(a.mask_ | b.mask_);
  }
  friend constexpr RegionSet operator&(RegionSet a, RegionSet b) {
    return RegionSet(a.mask_ & b.mask_);
  }

  /// Member regions in ascending id order.
  [[nodiscard]] std::vector<RegionId> to_vector() const;

  /// Smallest member id; RegionId::invalid() when empty.
  [[nodiscard]] RegionId first() const;

  /// e.g. "{R1,R5,R8}" using 1-based paper numbering.
  [[nodiscard]] std::string to_string() const;

  friend constexpr bool operator==(RegionSet, RegionSet) = default;

 private:
  std::uint64_t mask_ = 0;
};

/// Enumerates every non-empty subset of universe(n_regions) —
/// the 2^n - 1 assignment vectors the optimizer must consider.
[[nodiscard]] std::vector<RegionSet> all_nonempty_subsets(std::size_t n_regions);

}  // namespace multipub::geo
