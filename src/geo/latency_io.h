// Text serialization of the latency matrices.
//
// The paper's matrices are MEASURED artifacts (EC2 pings, King dataset);
// ours are synthesized stand-ins. This module makes both interchangeable:
// matrices serialize to a line-oriented text format that users can replace
// with their own measurements, and everything downstream (optimizer, live
// middleware, trace replay) consumes whichever matrix was loaded.
//
// Format:
//   backbone <n>            # n x n one-way matrix, then n rows of n values
//   <v11> <v12> ... <v1n>
//   ...
//   clients <rows> <n>      # client matrix, then one row per client
//   <v11> ... <v1n>
//   ...
// '#' starts a comment; blank lines are ignored. Values are milliseconds;
// "inf" marks unmeasured cells.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "geo/latency.h"

namespace multipub::geo {

/// Renders both matrices (either may be empty and is then omitted).
[[nodiscard]] std::string serialize_latencies(
    const InterRegionLatency& backbone, const ClientLatencyMap& clients);

struct ParsedLatencies {
  InterRegionLatency backbone;
  ClientLatencyMap clients;
};

/// Parses the format above; nullopt + line-numbered `error` on failure.
/// A file may contain either section or both; missing sections come back
/// empty (size 0).
[[nodiscard]] std::optional<ParsedLatencies> parse_latencies(
    std::string_view text, std::string* error);

}  // namespace multipub::geo
