#include "geo/king_synth.h"

#include <algorithm>

#include "common/assert.h"

namespace multipub::geo {
namespace {

/// Builds one client row homed at `home` and appends it to the population.
void append_client(ClientPopulation& pop, const RegionCatalog& catalog,
                   const InterRegionLatency& backbone, RegionId home,
                   const KingSynthParams& params, Rng& rng) {
  const double lastmile =
      rng.lognormal_median(params.lastmile_median_ms, params.lastmile_sigma);
  const double stretch =
      std::max(1.0, rng.normal(params.stretch_mean, params.stretch_stddev));

  std::vector<Millis> row(catalog.size());
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const RegionId r{static_cast<RegionId::underlying_type>(i)};
    const double backbone_leg = backbone.at(home, r);
    const double jitter =
        r == home ? 0.0 : std::abs(rng.normal(0.0, params.jitter_stddev_ms));
    row[i] = lastmile + stretch * backbone_leg + jitter;
  }
  // The synthetic client must actually be closest to its home region, or
  // experiment placement ("clients close to R") would be inconsistent. The
  // construction guarantees it: the home column is lastmile + 0.
  pop.latencies.add_client(row);
  pop.home_region.push_back(home);
}

}  // namespace

std::vector<ClientId> ClientPopulation::clients_near(RegionId region) const {
  std::vector<ClientId> out;
  for (std::size_t i = 0; i < home_region.size(); ++i) {
    if (home_region[i] == region) {
      out.emplace_back(static_cast<ClientId::underlying_type>(i));
    }
  }
  return out;
}

ClientPopulation synthesize_population(const RegionCatalog& catalog,
                                       const InterRegionLatency& backbone,
                                       std::size_t per_region,
                                       const KingSynthParams& params,
                                       Rng& rng) {
  MP_EXPECTS(catalog.size() == backbone.size());
  ClientPopulation pop;
  pop.latencies = ClientLatencyMap(catalog.size());
  for (const auto& region : catalog.all()) {
    for (std::size_t k = 0; k < per_region; ++k) {
      append_client(pop, catalog, backbone, region.id, params, rng);
    }
  }
  return pop;
}

ClientPopulation synthesize_local_population(const RegionCatalog& catalog,
                                             const InterRegionLatency& backbone,
                                             RegionId home, std::size_t count,
                                             const KingSynthParams& params,
                                             Rng& rng) {
  MP_EXPECTS(catalog.size() == backbone.size());
  MP_EXPECTS(home.valid() && home.index() < catalog.size());
  ClientPopulation pop;
  pop.latencies = ClientLatencyMap(catalog.size());
  for (std::size_t k = 0; k < count; ++k) {
    append_client(pop, catalog, backbone, home, params, rng);
  }
  return pop;
}

}  // namespace multipub::geo
