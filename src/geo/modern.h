// Modern AWS world: 30 regions, circa 2024.
//
// The paper's catalog is the 10-region EC2 of 2016; today's AWS spans 30+.
// This module provides a deterministic modern-scale world to exercise the
// heuristic optimizer (the paper's proposed answer to exponential growth):
// real region names and city coordinates, backbone one-way latencies from
// great-circle distance (fiber light speed ~200 km/ms, times a routing
// inflation factor, plus a base hop cost), and approximate 2024 egress
// tariffs. Absolute tariffs/latencies are estimates; the structure —
// many cheap $0.09 regions, expensive Cape Town / Sao Paulo, continental
// clusters — is faithful.
#pragma once

#include "geo/latency.h"
#include "geo/region.h"

namespace multipub::geo {

struct ModernAwsWorld {
  RegionCatalog catalog;
  InterRegionLatency backbone;
};

/// The 30-region world. Deterministic (no RNG): derived from embedded
/// coordinates and tariffs.
[[nodiscard]] ModernAwsWorld modern_aws_world();

/// One-way latency estimate between two coordinates (degrees):
/// great-circle km / 200 km-per-ms * routing_factor + base_ms.
[[nodiscard]] Millis great_circle_latency_ms(double lat1, double lon1,
                                             double lat2, double lon2,
                                             double routing_factor = 1.25,
                                             double base_ms = 2.0);

}  // namespace multipub::geo
