#include "geo/modern.h"

#include <cmath>
#include <numbers>

#include "common/assert.h"

namespace multipub::geo {
namespace {

struct ModernRegion {
  const char* name;
  const char* city;
  double lat;
  double lon;
  double alpha;  ///< $/GB to another AWS region (approx. 2024)
  double beta;   ///< $/GB to the Internet, first tier (approx. 2024)
};

// Coordinates are the regions' metro areas; tariffs approximate the public
// 2024 price sheet's first Internet-egress tier and typical inter-region
// rates.
constexpr ModernRegion kRegions[] = {
    {"us-east-1", "N. Virginia", 38.9, -77.4, 0.02, 0.09},
    {"us-east-2", "Ohio", 40.0, -83.0, 0.02, 0.09},
    {"us-west-1", "N. California", 37.4, -122.0, 0.02, 0.09},
    {"us-west-2", "Oregon", 45.8, -119.7, 0.02, 0.09},
    {"ca-central-1", "Montreal", 45.5, -73.6, 0.02, 0.09},
    {"ca-west-1", "Calgary", 51.0, -114.0, 0.02, 0.09},
    {"sa-east-1", "Sao Paulo", -23.5, -46.6, 0.138, 0.15},
    {"eu-west-1", "Dublin", 53.3, -6.3, 0.02, 0.09},
    {"eu-west-2", "London", 51.5, -0.1, 0.02, 0.09},
    {"eu-west-3", "Paris", 48.9, 2.4, 0.02, 0.09},
    {"eu-central-1", "Frankfurt", 50.1, 8.7, 0.02, 0.09},
    {"eu-central-2", "Zurich", 47.4, 8.5, 0.02, 0.09},
    {"eu-north-1", "Stockholm", 59.3, 18.1, 0.02, 0.09},
    {"eu-south-1", "Milan", 45.5, 9.2, 0.02, 0.09},
    {"eu-south-2", "Spain", 40.4, -3.7, 0.02, 0.09},
    {"il-central-1", "Tel Aviv", 32.1, 34.8, 0.08, 0.11},
    {"me-south-1", "Bahrain", 26.1, 50.6, 0.0835, 0.117},
    {"me-central-1", "UAE", 24.5, 54.4, 0.0835, 0.11},
    {"af-south-1", "Cape Town", -33.9, 18.4, 0.147, 0.154},
    {"ap-south-1", "Mumbai", 19.1, 72.9, 0.086, 0.1093},
    {"ap-south-2", "Hyderabad", 17.4, 78.5, 0.086, 0.1093},
    {"ap-southeast-1", "Singapore", 1.3, 103.8, 0.09, 0.12},
    {"ap-southeast-2", "Sydney", -33.9, 151.2, 0.098, 0.114},
    {"ap-southeast-3", "Jakarta", -6.2, 106.8, 0.10, 0.132},
    {"ap-southeast-4", "Melbourne", -37.8, 145.0, 0.098, 0.114},
    {"ap-northeast-1", "Tokyo", 35.7, 139.7, 0.09, 0.114},
    {"ap-northeast-2", "Seoul", 37.6, 127.0, 0.08, 0.126},
    {"ap-northeast-3", "Osaka", 34.7, 135.5, 0.09, 0.114},
    {"ap-east-1", "Hong Kong", 22.3, 114.2, 0.09, 0.12},
    {"cn-north-1", "Beijing", 39.9, 116.4, 0.09, 0.12},
};

constexpr std::size_t kRegionCount = std::size(kRegions);

[[nodiscard]] double to_radians(double degrees) {
  return degrees * std::numbers::pi / 180.0;
}

}  // namespace

Millis great_circle_latency_ms(double lat1, double lon1, double lat2,
                               double lon2, double routing_factor,
                               double base_ms) {
  MP_EXPECTS(routing_factor >= 1.0);
  // Haversine great-circle distance on a 6371 km sphere.
  const double phi1 = to_radians(lat1);
  const double phi2 = to_radians(lat2);
  const double d_phi = to_radians(lat2 - lat1);
  const double d_lambda = to_radians(lon2 - lon1);
  const double a = std::sin(d_phi / 2) * std::sin(d_phi / 2) +
                   std::cos(phi1) * std::cos(phi2) *
                       std::sin(d_lambda / 2) * std::sin(d_lambda / 2);
  const double distance_km =
      2.0 * 6371.0 * std::asin(std::min(1.0, std::sqrt(a)));
  // Light in fiber covers ~200 km per ms; real routes are longer than the
  // great circle by the routing factor, plus per-path equipment latency.
  return distance_km / 200.0 * routing_factor + base_ms;
}

ModernAwsWorld modern_aws_world() {
  std::vector<Region> regions;
  regions.reserve(kRegionCount);
  for (const auto& r : kRegions) {
    regions.push_back({RegionId{}, r.name, r.city, r.alpha, r.beta});
  }

  ModernAwsWorld world;
  world.catalog = RegionCatalog(std::move(regions));
  world.backbone = InterRegionLatency(kRegionCount);
  for (std::size_t i = 0; i < kRegionCount; ++i) {
    for (std::size_t j = i + 1; j < kRegionCount; ++j) {
      world.backbone.set(
          RegionId{static_cast<RegionId::underlying_type>(i)},
          RegionId{static_cast<RegionId::underlying_type>(j)},
          great_circle_latency_ms(kRegions[i].lat, kRegions[i].lon,
                                  kRegions[j].lat, kRegions[j].lon));
    }
  }
  MP_ENSURES(world.backbone.complete());
  return world;
}

}  // namespace multipub::geo
