// Synthetic King-dataset client population.
//
// The paper derives client-to-region latencies by pinging the ~1800 DNS
// vantage points of the King dataset from VMs in all EC2 regions (700
// responded). We do not have that dataset, so we synthesize an equivalent
// population (substitution #3 in DESIGN.md):
//
//   L[C][R] = lastmile(C) + stretch(C) * L^R[home(C)][R] + jitter
//
// where home(C) is the region the client is geographically closest to,
// lastmile is a lognormal access-network delay, and stretch > 1 models the
// fact that public-Internet paths between a client and a *remote* region are
// slower than the optimized inter-cloud backbone — the property that makes
// routed delivery competitive (paper §II-B2, Experiment 2).
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "geo/latency.h"
#include "geo/region.h"

namespace multipub::geo {

/// Tunables for the synthetic population.
struct KingSynthParams {
  /// Median last-mile latency to the client's home region (ms).
  double lastmile_median_ms = 18.0;
  /// Lognormal sigma of the last-mile latency (0.45 yields a realistic
  /// long-tailed access distribution: p95 around 2x the median).
  double lastmile_sigma = 0.45;
  /// Mean multiplicative stretch of client paths over backbone paths.
  double stretch_mean = 1.25;
  /// Stddev of the stretch (clamped below at 1.0).
  double stretch_stddev = 0.10;
  /// Additive per-(client,region) noise stddev (ms).
  double jitter_stddev_ms = 3.0;
};

/// One synthesized client population: the latency matrix L plus each
/// client's home region (the region used for "10 publishers close to R_i"
/// placement in the experiments).
struct ClientPopulation {
  ClientLatencyMap latencies;
  std::vector<RegionId> home_region;  // indexed by ClientId

  [[nodiscard]] std::size_t size() const { return home_region.size(); }

  /// Ids of all clients whose home region is `region`.
  [[nodiscard]] std::vector<ClientId> clients_near(RegionId region) const;
};

/// Generates `per_region` clients homed at every region of the catalog.
/// Deterministic in (params, rng seed).
[[nodiscard]] ClientPopulation synthesize_population(
    const RegionCatalog& catalog, const InterRegionLatency& backbone,
    std::size_t per_region, const KingSynthParams& params, Rng& rng);

/// Generates `count` clients all homed at `home` (Experiment 3's localized
/// scenario: "100 publishers and 100 subscribers ... closest to region R").
[[nodiscard]] ClientPopulation synthesize_local_population(
    const RegionCatalog& catalog, const InterRegionLatency& backbone,
    RegionId home, std::size_t count, const KingSynthParams& params, Rng& rng);

}  // namespace multipub::geo
