// Bounded per-topic replay ring (DESIGN.md §15).
//
// The reliable-delivery mode stamps every publication a broker accepts with
// a per-topic, 1-based, strictly monotone ring sequence number and retains
// the last `capacity` publications so gap-detecting subscribers (and peer
// brokers catching up after an outage) can ask for them again. The ring is
// the broker's only replay store: entries older than head - capacity + 1
// are gone, and a request reaching below oldest_retained() is answered with
// whatever suffix is still held — the documented loss bound of the
// mechanism.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "wire/message.h"

namespace multipub::broker {

class ReplayRing {
 public:
  /// `capacity` > 0: how many publications are retained per topic.
  explicit ReplayRing(std::size_t capacity = kDefaultCapacity);

  static constexpr std::size_t kDefaultCapacity = 4096;

  /// Stores a copy of `msg` (a publication: kPublish/kForward/kReplayBatch
  /// field shape) and returns its ring sequence number (1-based, strictly
  /// monotone). Evicts the oldest entry when full.
  std::uint64_t append(const wire::Message& msg);

  /// Sequence number of the newest stored entry; 0 when nothing was ever
  /// appended.
  [[nodiscard]] std::uint64_t head() const { return head_; }

  /// Sequence number of the oldest entry still held; head() + 1 when the
  /// ring is empty (nothing retained).
  [[nodiscard]] std::uint64_t oldest_retained() const {
    return head_ - entries_.size() + 1;
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// The entry with ring sequence `seq`, or nullptr when it was never
  /// appended (seq > head) or already evicted (seq < oldest_retained).
  /// The returned message carries `delivery_seq == seq`.
  [[nodiscard]] const wire::Message* find(std::uint64_t seq) const;

  /// Drops every entry and resets the numbering (a crashed broker's
  /// successor starts a fresh ring and rebuilds it from its peers).
  void clear();

 private:
  std::size_t capacity_;
  std::uint64_t head_ = 0;
  /// entries_[i] holds seq oldest_retained() + i; a vector-backed deque —
  /// eviction slides the window by rotating the start index.
  std::vector<wire::Message> entries_;
  std::size_t start_ = 0;  ///< index of oldest_retained() inside entries_
};

}  // namespace multipub::broker
