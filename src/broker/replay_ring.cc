#include "broker/replay_ring.h"

#include "common/assert.h"

namespace multipub::broker {

ReplayRing::ReplayRing(std::size_t capacity) : capacity_(capacity) {
  MP_EXPECTS(capacity > 0);
}

std::uint64_t ReplayRing::append(const wire::Message& msg) {
  ++head_;
  wire::Message stored = msg;
  stored.delivery_seq = head_;
  if (entries_.size() < capacity_) {
    entries_.push_back(stored);
  } else {
    // Full: the slot of the evicted oldest entry becomes the newest.
    entries_[start_] = stored;
    start_ = (start_ + 1) % capacity_;
  }
  return head_;
}

const wire::Message* ReplayRing::find(std::uint64_t seq) const {
  if (seq > head_ || seq < oldest_retained()) return nullptr;
  const std::size_t offset =
      static_cast<std::size_t>(seq - oldest_retained());
  return &entries_[(start_ + offset) % entries_.size()];
}

void ReplayRing::clear() {
  entries_.clear();
  start_ = 0;
  head_ = 0;
}

}  // namespace multipub::broker
