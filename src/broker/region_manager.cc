#include "broker/region_manager.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/assert.h"
#include "common/logging.h"

namespace multipub::broker {

namespace {

bool same_stats(const std::vector<core::PublisherStats>& a,
                const std::vector<core::PublisherStats>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].client != b[i].client || a[i].msg_count != b[i].msg_count ||
        a[i].total_bytes != b[i].total_bytes) {
      return false;
    }
  }
  return true;
}

}  // namespace

RegionManager::RegionManager(RegionId self, net::Clock& clock, net::Bus& bus)
    : bus_(&bus), broker_(self, clock, bus) {}

void RegionManager::set_refresh_period(int period) {
  MP_EXPECTS(period >= 1);
  refresh_period_ = period;
}

void RegionManager::set_known_publisher_cap(std::size_t cap) {
  MP_EXPECTS(cap >= 1);
  known_publisher_cap_ = cap;
}

std::size_t RegionManager::known_publisher_count(TopicId topic) const {
  const auto it = known_publishers_.find(topic);
  return it == known_publishers_.end() ? 0 : it->second.size();
}

void RegionManager::remember_publisher(TopicId topic, ClientId publisher) {
  auto& known = known_publishers_[topic];
  if (known.size() >= known_publisher_cap_ && known.count(publisher) == 0) {
    known.erase(known.begin());  // bounded memory beats perfect recall
  }
  known.insert(publisher);
}

ReportBatch RegionManager::collect_reports() {
  return collect_impl(/*force_full=*/false);
}

std::vector<TopicReport> RegionManager::collect_full_reports() {
  return collect_impl(/*force_full=*/true).reports;
}

ReportBatch RegionManager::collect_impl(bool force_full) {
  const bool full = force_full || collections_ == 0 ||
                    refresh_period_ <= 1 ||
                    collections_ % static_cast<std::uint64_t>(
                                       refresh_period_) ==
                        0;
  ++collections_;

  // This interval's traffic, sorted per topic for deterministic reports.
  std::map<TopicId, std::vector<core::PublisherStats>> current;
  for (const auto& [topic, traffic] : broker_.traffic()) {
    auto& pubs = current[topic];
    pubs.reserve(traffic.size());
    for (const auto& [publisher, observed] : traffic) {
      pubs.push_back({publisher, observed.msg_count, observed.total_bytes});
      remember_publisher(topic, publisher);
    }
    std::sort(pubs.begin(), pubs.end(),
              [](const core::PublisherStats& a, const core::PublisherStats& b) {
                return a.client < b.client;
              });
  }

  // Which topics make the report: everything for a full snapshot; for a
  // delta, topics whose traffic changed (including dropping to zero) plus
  // topics with membership changes.
  std::set<TopicId> topics;
  if (full) {
    for (const auto& [topic, pubs] : current) topics.insert(topic);
    for (TopicId topic : broker_.subscriptions().topics()) {
      topics.insert(topic);
    }
  } else {
    for (const auto& [topic, pubs] : current) {
      const auto it = last_traffic_.find(topic);
      if (it == last_traffic_.end() || !same_stats(it->second, pubs)) {
        topics.insert(topic);
      }
    }
    for (const auto& [topic, pubs] : last_traffic_) {
      if (current.count(topic) == 0) topics.insert(topic);  // went quiet
    }
    for (TopicId topic : broker_.membership_changes()) {
      topics.insert(topic);
    }
  }

  ReportBatch batch;
  batch.full_snapshot = full;
  batch.reports.reserve(topics.size());
  const net::CohortDirectory* dir = bus_->cohort_directory();
  for (TopicId topic : topics) {
    TopicReport report;
    report.topic = topic;
    if (const auto it = current.find(topic); it != current.end()) {
      report.publishers = it->second;
    }
    if (dir != nullptr) {
      // Cohort plane: expand flock entries back to member client ids — the
      // controller's view stays per-client (it canonicalizes by sorting, so
      // the expansion order is immaterial).
      for (const Subscription& sub :
           broker_.subscriptions().subscriptions(topic)) {
        const auto members = dir->flock_members(sub.subscriber.value());
        report.subscribers.insert(report.subscribers.end(), members.begin(),
                                  members.end());
      }
    } else {
      report.subscribers = broker_.subscriptions().subscriber_ids(topic);
    }
    batch.reports.push_back(std::move(report));
  }

  // Dynamoth-lite: resize this region's server pool for the observed load —
  // from the COMPLETE current traffic, not the delta, so steady topics keep
  // their server assignments. Load model: egress-dominated — inbound bytes
  // fanned out to each local subscriber.
  std::vector<TopicLoad> loads;
  loads.reserve(current.size());
  for (const auto& [topic, pubs] : current) {
    double inbound = 0.0;
    for (const auto& pub : pubs) {
      inbound += static_cast<double>(pub.total_bytes);
    }
    // Local fan-out degree: per-client entries count 1 each; a flock entry
    // counts its live member weight.
    std::size_t fanout = 0;
    for (const Subscription& sub :
         broker_.subscriptions().subscriptions(topic)) {
      fanout += dir != nullptr ? dir->flock_weight(sub.subscriber.value()) : 1;
    }
    loads.push_back({topic, inbound * static_cast<double>(1 + fanout)});
  }
  scaler_.rebalance(loads);

  last_traffic_.clear();
  for (auto& [topic, pubs] : current) {
    last_traffic_.emplace(topic, std::move(pubs));
  }
  broker_.reset_traffic();
  broker_.clear_membership_changes();
  prune_known_publishers();
  return batch;
}

void RegionManager::prune_known_publishers() {
  for (auto it = known_publishers_.begin(); it != known_publishers_.end();) {
    const TopicId topic = it->first;
    const core::TopicConfig* config = broker_.topic_config(topic);
    const bool serves_here =
        config == nullptr || config->regions.contains(region());
    const bool active =
        last_traffic_.count(topic) > 0 ||
        !broker_.subscriptions().subscriptions(topic).empty();
    // Only prune when the deployed configuration PROVES the topic moved away
    // and nothing local still depends on it: quiet publishers of topics we
    // do serve must keep hearing about config changes.
    if (!serves_here && !active) {
      it = known_publishers_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<LatencyReport> RegionManager::collect_latency_reports() {
  std::vector<LatencyReport> out = broker_.latency_reports();
  broker_.clear_latency_reports();
  return out;
}

void RegionManager::apply_config(TopicId topic,
                                 const core::TopicConfig& config) {
  // Publishers that appeared since the last report collection must hear
  // about the change too — fold the broker's in-progress interval into the
  // notification set before broadcasting.
  if (const auto it = broker_.traffic().find(topic);
      it != broker_.traffic().end()) {
    for (const auto& [publisher, observed] : it->second) {
      remember_publisher(topic, publisher);
    }
  }
  broker_.set_topic_config(topic, config);

  wire::Message update;
  update.type = wire::MessageType::kConfigUpdate;
  update.topic = topic;
  update.config_regions = config.regions;
  update.config_mode = config.mode == core::DeliveryMode::kRouted
                           ? wire::WireMode::kRouted
                           : wire::WireMode::kDirect;

  const net::Address self = net::Address::region(region());
  // Notify local subscribers (by-reference view; no per-call vector)...
  const net::CohortDirectory* dir = bus_->cohort_directory();
  for (const Subscription& sub : broker_.subscriptions().subscriptions(topic)) {
    if (dir != nullptr) {
      // One weighted update per flock — the per-client plane would have
      // sent one copy per member.
      const std::uint32_t weight = dir->flock_weight(sub.subscriber.value());
      if (weight == 0) continue;
      update.weight = weight;
      bus_->send(self, net::Address::cohort(sub.subscriber.value()),
                       update);
      update.weight = 1;
      continue;
    }
    bus_->send(self, net::Address::client(sub.subscriber), update);
  }
  // ...and every publisher this region has ever served for the topic.
  if (const auto it = known_publishers_.find(topic);
      it != known_publishers_.end()) {
    for (ClientId publisher : it->second) {
      bus_->send(self, net::Address::client(publisher), update);
    }
  }
  MP_LOG_INFO("region-manager")
      << "R" << region().value() + 1 << " deployed topic "
      << topic.value() << " -> " << config.to_string();
}

void RegionManager::notify_client(TopicId topic,
                                  const core::TopicConfig& config,
                                  ClientId client) {
  wire::Message update;
  update.type = wire::MessageType::kConfigUpdate;
  update.topic = topic;
  update.config_regions = config.regions;
  update.config_mode = config.mode == core::DeliveryMode::kRouted
                           ? wire::WireMode::kRouted
                           : wire::WireMode::kDirect;
  bus_->send(net::Address::region(region()),
                   net::Address::client(client), update);
}

void RegionManager::notify_flock(TopicId topic, const core::TopicConfig& config,
                                 std::int32_t flock, std::uint32_t weight) {
  if (weight == 0) return;
  wire::Message update;
  update.type = wire::MessageType::kConfigUpdate;
  update.topic = topic;
  update.config_regions = config.regions;
  update.config_mode = config.mode == core::DeliveryMode::kRouted
                           ? wire::WireMode::kRouted
                           : wire::WireMode::kDirect;
  update.weight = weight;
  bus_->send(net::Address::region(region()), net::Address::cohort(flock),
                   update);
}

}  // namespace multipub::broker
