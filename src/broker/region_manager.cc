#include "broker/region_manager.h"

#include <algorithm>

#include "common/logging.h"

namespace multipub::broker {

RegionManager::RegionManager(RegionId self, net::Simulator& sim,
                             net::SimTransport& transport)
    : transport_(&transport), broker_(self, sim, transport) {}

std::vector<TopicReport> RegionManager::collect_reports() {
  // Union of topics with traffic and topics with subscriptions.
  std::unordered_set<TopicId> topic_ids;
  for (const auto& [topic, traffic] : broker_.traffic()) {
    topic_ids.insert(topic);
  }
  for (TopicId topic : broker_.subscriptions().topics()) {
    topic_ids.insert(topic);
  }

  std::vector<TopicId> ordered(topic_ids.begin(), topic_ids.end());
  std::sort(ordered.begin(), ordered.end());

  std::vector<TopicReport> reports;
  reports.reserve(ordered.size());
  for (TopicId topic : ordered) {
    TopicReport report;
    report.topic = topic;
    if (const auto it = broker_.traffic().find(topic);
        it != broker_.traffic().end()) {
      for (const auto& [publisher, observed] : it->second) {
        report.publishers.push_back(
            {publisher, observed.msg_count, observed.total_bytes});
        known_publishers_[topic].insert(publisher);
      }
      // Deterministic report ordering regardless of hash-map iteration.
      std::sort(report.publishers.begin(), report.publishers.end(),
                [](const core::PublisherStats& a, const core::PublisherStats& b) {
                  return a.client < b.client;
                });
    }
    report.subscribers = broker_.subscriptions().subscriber_ids(topic);
    reports.push_back(std::move(report));
  }

  // Dynamoth-lite: resize this region's server pool for the observed load.
  // Load model: egress-dominated — inbound bytes fanned out to each local
  // subscriber.
  std::vector<TopicLoad> loads;
  loads.reserve(reports.size());
  for (const auto& report : reports) {
    double inbound = 0.0;
    for (const auto& pub : report.publishers) {
      inbound += static_cast<double>(pub.total_bytes);
    }
    loads.push_back(
        {report.topic,
         inbound * static_cast<double>(1 + report.subscribers.size())});
  }
  scaler_.rebalance(loads);

  broker_.reset_traffic();
  return reports;
}

std::vector<LatencyReport> RegionManager::collect_latency_reports() {
  std::vector<LatencyReport> out = broker_.latency_reports();
  broker_.clear_latency_reports();
  return out;
}

void RegionManager::apply_config(TopicId topic,
                                 const core::TopicConfig& config) {
  // Publishers that appeared since the last report collection must hear
  // about the change too — fold the broker's in-progress interval into the
  // notification set before broadcasting.
  if (const auto it = broker_.traffic().find(topic);
      it != broker_.traffic().end()) {
    for (const auto& [publisher, observed] : it->second) {
      known_publishers_[topic].insert(publisher);
    }
  }
  broker_.set_topic_config(topic, config);

  wire::Message update;
  update.type = wire::MessageType::kConfigUpdate;
  update.topic = topic;
  update.config_regions = config.regions;
  update.config_mode = config.mode == core::DeliveryMode::kRouted
                           ? wire::WireMode::kRouted
                           : wire::WireMode::kDirect;

  const net::Address self = net::Address::region(region());
  // Notify local subscribers...
  for (ClientId sub : broker_.subscriptions().subscriber_ids(topic)) {
    transport_->send(self, net::Address::client(sub), update);
  }
  // ...and every publisher this region has ever served for the topic.
  if (const auto it = known_publishers_.find(topic);
      it != known_publishers_.end()) {
    for (ClientId publisher : it->second) {
      transport_->send(self, net::Address::client(publisher), update);
    }
  }
  MP_LOG_INFO("region-manager")
      << "R" << region().value() + 1 << " deployed topic "
      << topic.value() << " -> " << config.to_string();
}

void RegionManager::notify_client(TopicId topic,
                                  const core::TopicConfig& config,
                                  ClientId client) {
  wire::Message update;
  update.type = wire::MessageType::kConfigUpdate;
  update.topic = topic;
  update.config_regions = config.regions;
  update.config_mode = config.mode == core::DeliveryMode::kRouted
                           ? wire::WireMode::kRouted
                           : wire::WireMode::kDirect;
  transport_->send(net::Address::region(region()),
                   net::Address::client(client), update);
}

}  // namespace multipub::broker
