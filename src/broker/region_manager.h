// Region manager (paper §III-A3 and §III-A5).
//
// One per region. Owns the region's broker, collects its per-topic
// statistics at the end of every collection interval, and — when the
// controller deploys a new configuration — updates the broker's assignment
// matrix row and notifies the affected local clients with kConfigUpdate
// messages.
//
// Reports are DELTAS: a topic appears in a batch only when its traffic
// differs from what this manager last reported or its local subscriber set
// changed. Every refresh_period()-th collection is a full snapshot
// (full_snapshot = true) so the controller can self-heal from any lost or
// reordered delta. collect_full_reports() forces the seed's unconditional
// snapshot for the non-incremental reference pipeline.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "broker/broker.h"
#include "broker/scaling.h"
#include "core/topic_state.h"

namespace multipub::broker {

/// What one region tells the controller about one topic for one interval.
/// In a delta batch both lists are authoritative for this region: an empty
/// publisher list means the topic's traffic here stopped.
struct TopicReport {
  TopicId topic;
  /// Publishers that sent publications to this region, with their traffic.
  std::vector<core::PublisherStats> publishers;
  /// Subscribers currently attached to this region for the topic.
  std::vector<ClientId> subscribers;
};

/// One interval's reports plus whether they cover EVERY topic this region
/// knows (so the controller may drop state for topics not listed).
struct ReportBatch {
  std::vector<TopicReport> reports;
  bool full_snapshot = false;
};

class RegionManager {
 public:
  /// Creates the region's broker and registers it on the bus.
  RegionManager(RegionId self, net::Clock& clock, net::Bus& bus);

  RegionManager(const RegionManager&) = delete;
  RegionManager& operator=(const RegionManager&) = delete;

  [[nodiscard]] Broker& broker() { return broker_; }
  [[nodiscard]] const Broker& broker() const { return broker_; }
  [[nodiscard]] RegionId region() const { return broker_.region(); }

  /// Delta report for this interval: topics whose traffic or local
  /// membership changed since the previous collection, ordered by topic id.
  /// The first collection and every refresh_period()-th one are full
  /// snapshots. Resets the broker's traffic counters.
  [[nodiscard]] ReportBatch collect_reports();

  /// The seed's unconditional snapshot of every topic with traffic or
  /// subscriptions (always a full snapshot) — the non-incremental reference
  /// path. Resets the broker's traffic counters.
  [[nodiscard]] std::vector<TopicReport> collect_full_reports();

  /// How often collect_reports() sends a full snapshot (every Nth call);
  /// <= 1 means every collection is full. The first collection always is.
  void set_refresh_period(int period);
  [[nodiscard]] int refresh_period() const { return refresh_period_; }

  /// Drains the latency samples clients reported to this region this
  /// interval (for the controller's latency estimator).
  [[nodiscard]] std::vector<LatencyReport> collect_latency_reports();

  /// Intra-region elasticity (Dynamoth-lite, paper §III-A1): collect_reports
  /// feeds each interval's per-topic egress load into the scaler, which
  /// sizes this region's server pool. Purely local — placement decisions
  /// and the cost model are unaffected, as the paper assumes.
  [[nodiscard]] const IntraRegionScaler& scaler() const { return scaler_; }
  [[nodiscard]] int provisioned_servers() const {
    return scaler_.server_count();
  }

  /// Installs the new configuration on the broker and notifies every local
  /// client of the topic (current subscribers plus all publishers seen on
  /// this region) with a kConfigUpdate message.
  void apply_config(TopicId topic, const core::TopicConfig& config);

  /// Sends a kConfigUpdate for one specific client. Used for failover: a
  /// client whose region died cannot be notified by that region's manager,
  /// so the controller delegates the notification to an alive one.
  void notify_client(TopicId topic, const core::TopicConfig& config,
                     ClientId client);

  /// Cohort-plane twin of notify_client: one weighted kConfigUpdate for a
  /// whole flock (its members are identical, so they are orphaned — and
  /// re-homed — together). No-op at weight 0.
  void notify_flock(TopicId topic, const core::TopicConfig& config,
                    std::int32_t flock, std::uint32_t weight);

  /// Cap on remembered publishers per topic (an arbitrary entry is evicted
  /// at the cap). Bounds known_publishers_ memory under publisher churn.
  void set_known_publisher_cap(std::size_t cap);
  [[nodiscard]] std::size_t known_publisher_cap() const {
    return known_publisher_cap_;
  }
  [[nodiscard]] std::size_t known_publisher_count(TopicId topic) const;
  [[nodiscard]] std::size_t known_publisher_topic_count() const {
    return known_publishers_.size();
  }

 private:
  ReportBatch collect_impl(bool force_full);
  void remember_publisher(TopicId topic, ClientId publisher);
  /// Drops known_publishers_ entries for topics this region provably no
  /// longer serves and that have no local activity left.
  void prune_known_publishers();

  net::Bus* bus_;
  Broker broker_;
  IntraRegionScaler scaler_;
  /// Publishers ever seen per topic — kept across intervals so that a
  /// publisher that was quiet during the last interval still learns about
  /// configuration changes. Pruned when the topic leaves this region and
  /// capped per topic (see set_known_publisher_cap).
  std::unordered_map<TopicId, std::unordered_set<ClientId>> known_publishers_;
  /// Per-topic traffic as last reported to the controller (sorted by
  /// client) — the baseline delta reports diff against.
  std::unordered_map<TopicId, std::vector<core::PublisherStats>> last_traffic_;
  int refresh_period_ = 16;
  std::uint64_t collections_ = 0;
  std::size_t known_publisher_cap_ = 4096;
};

}  // namespace multipub::broker
