// Region manager (paper §III-A3 and §III-A5).
//
// One per region. Owns the region's broker, collects its per-topic
// statistics at the end of every collection interval, and — when the
// controller deploys a new configuration — updates the broker's assignment
// matrix row and notifies the affected local clients with kConfigUpdate
// messages.
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "broker/broker.h"
#include "broker/scaling.h"
#include "core/topic_state.h"

namespace multipub::broker {

/// What one region tells the controller about one topic for one interval.
struct TopicReport {
  TopicId topic;
  /// Publishers that sent publications to this region, with their traffic.
  std::vector<core::PublisherStats> publishers;
  /// Subscribers currently attached to this region for the topic.
  std::vector<ClientId> subscribers;
};

class RegionManager {
 public:
  /// Creates the region's broker and registers it on the transport.
  RegionManager(RegionId self, net::Simulator& sim,
                net::SimTransport& transport);

  RegionManager(const RegionManager&) = delete;
  RegionManager& operator=(const RegionManager&) = delete;

  [[nodiscard]] Broker& broker() { return broker_; }
  [[nodiscard]] const Broker& broker() const { return broker_; }
  [[nodiscard]] RegionId region() const { return broker_.region(); }

  /// Snapshot of all topics seen this interval (traffic or subscriptions),
  /// then resets the broker's traffic counters. Reports are ordered by
  /// topic id for determinism.
  [[nodiscard]] std::vector<TopicReport> collect_reports();

  /// Drains the latency samples clients reported to this region this
  /// interval (for the controller's latency estimator).
  [[nodiscard]] std::vector<LatencyReport> collect_latency_reports();

  /// Intra-region elasticity (Dynamoth-lite, paper §III-A1): collect_reports
  /// feeds each interval's per-topic egress load into the scaler, which
  /// sizes this region's server pool. Purely local — placement decisions
  /// and the cost model are unaffected, as the paper assumes.
  [[nodiscard]] const IntraRegionScaler& scaler() const { return scaler_; }
  [[nodiscard]] int provisioned_servers() const {
    return scaler_.server_count();
  }

  /// Installs the new configuration on the broker and notifies every local
  /// client of the topic (current subscribers plus all publishers seen on
  /// this region) with a kConfigUpdate message.
  void apply_config(TopicId topic, const core::TopicConfig& config);

  /// Sends a kConfigUpdate for one specific client. Used for failover: a
  /// client whose region died cannot be notified by that region's manager,
  /// so the controller delegates the notification to an alive one.
  void notify_client(TopicId topic, const core::TopicConfig& config,
                     ClientId client);

 private:
  net::SimTransport* transport_;
  Broker broker_;
  IntraRegionScaler scaler_;
  /// Publishers ever seen per topic — kept across intervals so that a
  /// publisher that was quiet during the last interval still learns about
  /// configuration changes.
  std::unordered_map<TopicId, std::unordered_set<ClientId>> known_publishers_;
};

}  // namespace multipub::broker
