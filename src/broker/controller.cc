#include "broker/controller.h"

#include <algorithm>

#include "common/assert.h"
#include "common/logging.h"

namespace multipub::broker {

Controller::Controller(const geo::RegionCatalog& catalog,
                       const geo::InterRegionLatency& backbone,
                       const geo::ClientLatencyMap& clients)
    : estimator_(clients),
      optimizer_(catalog, backbone, estimator_.map()),
      heuristic_(catalog, backbone, estimator_.map()) {}

void Controller::observe_latencies(RegionId region,
                                   const std::vector<LatencyReport>& reports) {
  for (const auto& report : reports) {
    estimator_.observe(report.client, region, report.one_way_ms);
  }
}

void Controller::set_constraint(TopicId topic,
                                const core::DeliveryConstraint& constraint) {
  MP_EXPECTS(constraint.ratio > 0.0 && constraint.ratio <= 100.0);
  constraints_[topic] = constraint;
}

void Controller::enable_failure_detection(int missed_rounds) {
  MP_EXPECTS(missed_rounds >= 1);
  failure_detection_rounds_ = missed_rounds;
  const std::size_t n = optimizer_.cost_model().catalog().size();
  missed_rounds_.assign(n, 0);
  reported_this_round_.assign(n, false);
}

int Controller::missed_rounds(RegionId region) const {
  if (region.index() >= missed_rounds_.size()) return 0;
  return missed_rounds_[region.index()];
}

void Controller::ingest(RegionId region,
                        const std::vector<TopicReport>& reports) {
  if (failure_detection_rounds_ > 0 &&
      region.index() < reported_this_round_.size()) {
    // Any ingest — even an empty report list — proves the region's manager
    // is alive and reachable.
    reported_this_round_[region.index()] = true;
    missed_rounds_[region.index()] = 0;
    unavailable_.remove(region);
  }
  for (const auto& report : reports) {
    auto& agg = interval_[report.topic];
    auto& seen_at = last_seen_at_[report.topic];
    for (const auto& pub : report.publishers) {
      auto& existing = agg.publishers[pub.client];
      // Direct delivery: every serving region saw the same messages — keep
      // the maximum rather than the sum.
      if (pub.msg_count > existing.msg_count) {
        existing = pub;
      }
      existing.client = pub.client;
      seen_at[pub.client] = region;
    }
    for (ClientId sub : report.subscribers) {
      agg.subscribers.insert(sub);
      seen_at[sub] = region;
    }
  }
}

core::TopicState Controller::aggregate(TopicId topic) const {
  core::TopicState state;
  state.topic = topic;
  if (const auto it = constraints_.find(topic); it != constraints_.end()) {
    state.constraint = it->second;
  }
  const auto it = interval_.find(topic);
  if (it == interval_.end()) return state;

  for (const auto& [client, stats] : it->second.publishers) {
    state.publishers.push_back(stats);
  }
  std::vector<ClientId> subs(it->second.subscribers.begin(),
                             it->second.subscribers.end());
  std::sort(subs.begin(), subs.end());
  state.subscribers = core::unit_subscribers(subs);
  return state;
}

void Controller::set_region_available(RegionId region, bool available) {
  if (available) {
    unavailable_.remove(region);
  } else {
    unavailable_.add(region);
  }
}

bool Controller::region_available(RegionId region) const {
  return !unavailable_.contains(region);
}

void Controller::enable_mitigation(bool enabled,
                                   const core::MitigationParams& params) {
  mitigation_enabled_ = enabled;
  mitigation_params_ = params;
}

std::vector<Controller::Decision> Controller::reconfigure(
    const core::OptimizerOptions& options) {
  // Failure detection: regions silent for too many consecutive rounds are
  // treated as down until they report again.
  if (failure_detection_rounds_ > 0) {
    for (std::size_t i = 0; i < reported_this_round_.size(); ++i) {
      const RegionId region{static_cast<RegionId::underlying_type>(i)};
      if (!reported_this_round_[i]) {
        if (++missed_rounds_[i] >= failure_detection_rounds_) {
          if (!unavailable_.contains(region)) {
            MP_LOG_WARN("controller")
                << "region R" << region.value() + 1 << " silent for "
                << missed_rounds_[i] << " rounds; marking unavailable";
          }
          unavailable_.add(region);
        }
      }
      reported_this_round_[i] = false;
    }
  }

  // Outages shrink the candidate set for every topic.
  core::OptimizerOptions effective = options;
  {
    const std::size_t n = optimizer_.cost_model().catalog().size();
    const geo::RegionSet base = effective.candidates.empty()
                                    ? geo::RegionSet::universe(n)
                                    : effective.candidates;
    const geo::RegionSet masked =
        geo::RegionSet(base.mask() & ~unavailable_.mask());
    // If everything is down there is nothing sane to deploy; keep the base
    // set and let operators sort the datacenter fire out.
    if (!masked.empty()) effective.candidates = masked;
  }

  std::vector<Decision> decisions;
  for (const auto& [topic, agg] : interval_) {
    const core::TopicState state = aggregate(topic);
    // A topic with no subscribers or no traffic cannot be optimized (there
    // is no delivery to constrain); skip until it has both.
    if (state.subscribers.empty() || state.total_messages() == 0) continue;

    Decision decision;
    decision.topic = topic;
    if (solver_ == Solver::kHeuristic) {
      core::HeuristicOptions h_options;
      h_options.mode_policy = effective.mode_policy;
      h_options.candidates = effective.candidates;
      const auto h = heuristic_.optimize(state, h_options);
      decision.result.config = h.config;
      decision.result.percentile = h.percentile;
      decision.result.cost = h.cost;
      decision.result.constraint_met = h.constraint_met;
      decision.result.configs_evaluated = h.configs_evaluated;
    } else {
      decision.result = optimizer_.optimize(state, effective);
    }

    // High-latency client mitigation (paper §IV-D): force-add regions for
    // subscribers whose every delivery misses max_T, then re-price the
    // augmented configuration.
    if (mitigation_enabled_ &&
        state.constraint.max != kUnreachable) {
      const auto outcome = core::mitigate_high_latency_clients(
          state, decision.result.config, optimizer_.delivery_model(),
          mitigation_params_);
      if (!outcome.added_regions.empty()) {
        decision.mitigation_regions = outcome.added_regions;
        const auto eval = optimizer_.evaluate(state, outcome.config);
        decision.result.config = eval.config;
        decision.result.percentile = eval.percentile;
        decision.result.cost = eval.cost;
        decision.result.constraint_met = eval.feasible;
      }
    }

    // Failover bookkeeping: clients last seen at a now-dead region cannot
    // be reached by that region's manager.
    if (!unavailable_.empty()) {
      if (const auto seen = last_seen_at_.find(topic);
          seen != last_seen_at_.end()) {
        for (const auto& [client, region] : seen->second) {
          if (unavailable_.contains(region)) {
            decision.orphans.push_back(client);
          }
        }
        std::sort(decision.orphans.begin(), decision.orphans.end());
      }
    }

    const auto deployed = deployed_.find(topic);
    decision.changed = deployed == deployed_.end() ||
                       !(deployed->second == decision.result.config);
    if (decision.changed) {
      deployed_[topic] = decision.result.config;
      MP_LOG_INFO("controller")
          << "topic " << topic.value() << " reconfigured to "
          << decision.result.config.to_string() << " (D=" << decision.result.percentile
          << "ms, Z=$" << decision.result.cost << ")";
    }
    decisions.push_back(decision);
  }
  interval_.clear();
  return decisions;
}

const core::TopicConfig* Controller::deployed_config(TopicId topic) const {
  const auto it = deployed_.find(topic);
  return it == deployed_.end() ? nullptr : &it->second;
}

std::vector<Controller::AssignmentRow> Controller::assignment_matrix() const {
  std::vector<AssignmentRow> rows;
  rows.reserve(deployed_.size());
  for (const auto& [topic, config] : deployed_) {
    rows.push_back({topic, config});
  }
  std::sort(rows.begin(), rows.end(),
            [](const AssignmentRow& a, const AssignmentRow& b) {
              return a.topic < b.topic;
            });
  return rows;
}

std::string Controller::render_assignment_matrix() const {
  const std::size_t n = optimizer_.cost_model().catalog().size();
  std::string out;
  for (const auto& row : assignment_matrix()) {
    out += "topic " + std::to_string(row.topic.value()) + " |";
    for (std::size_t r = 0; r < n; ++r) {
      out += row.config.regions.contains(
                 RegionId{static_cast<RegionId::underlying_type>(r)})
                 ? " 1"
                 : " 0";
    }
    out += " | ";
    out += core::to_string(row.config.mode);
    out += '\n';
  }
  return out;
}

}  // namespace multipub::broker
