#include "broker/controller.h"

#include <algorithm>

#include "common/assert.h"
#include "common/logging.h"

namespace multipub::broker {

Controller::Controller(const geo::RegionCatalog& catalog,
                       const geo::InterRegionLatency& backbone,
                       const geo::ClientLatencyMap& clients)
    : estimator_(clients),
      optimizer_(catalog, backbone, estimator_.map()),
      heuristic_(catalog, backbone, estimator_.map()) {}

void Controller::observe_latencies(RegionId region,
                                   const std::vector<LatencyReport>& reports) {
  for (const auto& report : reports) {
    if (estimator_.observe(report.client, region, report.one_way_ms)) {
      // The optimizer reads the estimator's live matrix: a moved estimate
      // can change the optimum of every topic this client participates in.
      store_.touch_client(report.client, core::DirtyReason::kLatency);
    }
  }
}

void Controller::set_constraint(TopicId topic,
                                const core::DeliveryConstraint& constraint) {
  store_.set_constraint(topic, constraint);
}

void Controller::set_traffic_threshold(double threshold) {
  store_.set_traffic_threshold(threshold);
}

void Controller::enable_failure_detection(int missed_rounds) {
  MP_EXPECTS(missed_rounds >= 1);
  failure_detection_rounds_ = missed_rounds;
  const std::size_t n = optimizer_.cost_model().catalog().size();
  missed_rounds_.assign(n, 0);
  reported_this_round_.assign(n, false);
}

int Controller::missed_rounds(RegionId region) const {
  if (region.index() >= missed_rounds_.size()) return 0;
  return missed_rounds_[region.index()];
}

void Controller::ingest(RegionId region,
                        const std::vector<TopicReport>& reports,
                        bool full_snapshot) {
  if (failure_detection_rounds_ > 0 &&
      region.index() < reported_this_round_.size()) {
    // Any ingest — even an empty report list — proves the region's manager
    // is alive and reachable.
    reported_this_round_[region.index()] = true;
    missed_rounds_[region.index()] = 0;
    unavailable_.remove(region);
  }
  for (const auto& report : reports) {
    auto& seen_at = last_seen_at_[report.topic];
    for (const auto& pub : report.publishers) {
      seen_at[pub.client] = region;
    }
    for (ClientId sub : report.subscribers) {
      seen_at[sub] = region;
    }
    store_.apply_report(region, report.topic, report.publishers,
                        report.subscribers);
  }
  if (full_snapshot) {
    std::vector<TopicId> reported;
    reported.reserve(reports.size());
    for (const auto& report : reports) {
      reported.push_back(report.topic);
    }
    store_.reconcile_region(region, reported);
  }
}

core::TopicState Controller::aggregate(TopicId topic) const {
  if (const core::TopicState* state = store_.state(topic)) {
    return *state;
  }
  core::TopicState state;
  state.topic = topic;
  return state;
}

void Controller::set_region_available(RegionId region, bool available) {
  if (available) {
    unavailable_.remove(region);
  } else {
    unavailable_.add(region);
  }
}

bool Controller::region_available(RegionId region) const {
  return !unavailable_.contains(region);
}

void Controller::enable_mitigation(bool enabled,
                                   const core::MitigationParams& params) {
  mitigation_enabled_ = enabled;
  mitigation_params_ = params;
}

std::vector<Controller::Decision> Controller::reconfigure(
    const core::OptimizerOptions& options) {
  return reconfigure_impl(options, /*full_scan=*/false);
}

std::vector<Controller::Decision> Controller::reconfigure_full(
    const core::OptimizerOptions& options) {
  return reconfigure_impl(options, /*full_scan=*/true);
}

std::vector<Controller::Decision> Controller::reconfigure_impl(
    const core::OptimizerOptions& options, bool full_scan) {
  // Failure detection: regions silent for too many consecutive rounds are
  // treated as down until they report again.
  if (failure_detection_rounds_ > 0) {
    for (std::size_t i = 0; i < reported_this_round_.size(); ++i) {
      const RegionId region{static_cast<RegionId::underlying_type>(i)};
      if (!reported_this_round_[i]) {
        if (++missed_rounds_[i] >= failure_detection_rounds_) {
          if (!unavailable_.contains(region)) {
            MP_LOG_WARN("controller")
                << "region R" << region.value() + 1 << " silent for "
                << missed_rounds_[i] << " rounds; marking unavailable";
          }
          unavailable_.add(region);
        }
      }
      reported_this_round_[i] = false;
    }
  }

  // Outages shrink the candidate set for every topic.
  core::OptimizerOptions effective = options;
  const std::size_t n_regions = optimizer_.cost_model().catalog().size();
  if (outage_exclusion_enabled_) {
    const geo::RegionSet base = effective.candidates.empty()
                                    ? geo::RegionSet::universe(n_regions)
                                    : effective.candidates;
    const geo::RegionSet masked =
        geo::RegionSet(base.mask() & ~unavailable_.mask());
    // If everything is down there is nothing sane to deploy; keep the base
    // set and let operators sort the datacenter fire out.
    if (!masked.empty()) effective.candidates = masked;
  }

  // A changed candidate universe (outage, recovery, caller-tweaked options)
  // or solver policy invalidates every cached outcome at once: the
  // optimizer's epsilon tie-breaks mean no per-topic containment check can
  // prove a cached selection still wins.
  RoundFingerprint fingerprint;
  fingerprint.candidates_mask = (effective.candidates.empty()
                                     ? geo::RegionSet::universe(n_regions)
                                     : effective.candidates)
                                    .mask();
  fingerprint.mode_policy = effective.mode_policy;
  fingerprint.strategy = effective.strategy;
  fingerprint.solver = solver_;
  fingerprint.mitigation = mitigation_enabled_;
  if (has_last_fingerprint_ && !(fingerprint == last_fingerprint_)) {
    store_.mark_all_dirty(core::DirtyReason::kAvailability);
  }
  last_fingerprint_ = fingerprint;
  has_last_fingerprint_ = true;

  const std::vector<TopicId> dirty = store_.dirty_topics();
  stats_ = RoundStats{};
  stats_.tracked = store_.size();
  stats_.dirty = dirty.size();
  stats_.full_scan = full_scan;
  for (TopicId topic : dirty) {
    const unsigned reasons = store_.dirty_reasons(topic);
    for (int bit = 0; bit < core::kDirtyReasonCount; ++bit) {
      if ((reasons & (1u << bit)) != 0) ++stats_.dirty_by_reason[bit];
    }
  }

  const auto collect_orphans = [&](Decision& decision) {
    // Failover bookkeeping: clients last seen at a now-dead region cannot
    // be reached by that region's manager.
    if (unavailable_.empty()) return;
    if (const auto seen = last_seen_at_.find(decision.topic);
        seen != last_seen_at_.end()) {
      for (const auto& [client, region] : seen->second) {
        if (unavailable_.contains(region)) {
          decision.orphans.push_back(client);
        }
      }
      std::sort(decision.orphans.begin(), decision.orphans.end());
    }
  };

  std::vector<Decision> decisions;
  for (TopicId topic : store_.topic_ids()) {
    const bool work = full_scan || store_.dirty(topic);
    if (!work) {
      // Clean topic: replay the last outcome without touching the solver.
      const auto cached = last_outcomes_.find(topic);
      if (cached == last_outcomes_.end()) continue;
      ++stats_.skipped_clean;
      Decision decision;
      decision.topic = topic;
      decision.result = cached->second.result;
      decision.result.configs_evaluated = 0;  // marks a carried decision
      decision.mitigation_regions = cached->second.mitigation_regions;
      decision.changed = false;
      collect_orphans(decision);
      decisions.push_back(std::move(decision));
      continue;
    }

    const core::TopicState& state = *store_.state(topic);
    // A topic with no subscribers or no traffic cannot be optimized (there
    // is no delivery to constrain); skip until it has both.
    if (state.subscribers.empty() || state.total_messages() == 0) {
      ++stats_.skipped_empty;
      continue;
    }

    Decision decision;
    decision.topic = topic;
    if (solver_ == Solver::kHeuristic) {
      core::HeuristicOptions h_options;
      h_options.mode_policy = effective.mode_policy;
      h_options.candidates = effective.candidates;
      const auto h = heuristic_.optimize(state, h_options);
      decision.result.config = h.config;
      decision.result.percentile = h.percentile;
      decision.result.cost = h.cost;
      decision.result.constraint_met = h.constraint_met;
      decision.result.configs_evaluated = h.configs_evaluated;
    } else {
      decision.result = optimizer_.optimize(state, effective);
    }
    ++stats_.evaluated;

    // High-latency client mitigation (paper §IV-D): force-add regions for
    // subscribers whose every delivery misses max_T, then re-price the
    // augmented configuration.
    if (mitigation_enabled_ &&
        state.constraint.max != kUnreachable) {
      const auto outcome = core::mitigate_high_latency_clients(
          state, decision.result.config, optimizer_.delivery_model(),
          mitigation_params_);
      if (!outcome.added_regions.empty()) {
        decision.mitigation_regions = outcome.added_regions;
        const auto eval = optimizer_.evaluate(state, outcome.config);
        decision.result.config = eval.config;
        decision.result.percentile = eval.percentile;
        decision.result.cost = eval.cost;
        decision.result.constraint_met = eval.feasible;
      }
    }

    collect_orphans(decision);

    const auto deployed = deployed_.find(topic);
    decision.changed = deployed == deployed_.end() ||
                       !(deployed->second == decision.result.config);
    if (decision.changed) {
      deployed_[topic] = decision.result.config;
      MP_LOG_INFO("controller")
          << "topic " << topic.value() << " reconfigured to "
          << decision.result.config.to_string() << " (D=" << decision.result.percentile
          << "ms, Z=$" << decision.result.cost << ")";
    }
    last_outcomes_[topic] = {decision.result, decision.mitigation_regions};
    decisions.push_back(std::move(decision));
  }

  store_.clear_dirty();
  stats_.round = ++rounds_;
  return decisions;
}

const core::TopicConfig* Controller::deployed_config(TopicId topic) const {
  const auto it = deployed_.find(topic);
  return it == deployed_.end() ? nullptr : &it->second;
}

std::vector<Controller::AssignmentRow> Controller::assignment_matrix() const {
  std::vector<AssignmentRow> rows;
  rows.reserve(deployed_.size());
  for (const auto& [topic, config] : deployed_) {
    rows.push_back({topic, config});
  }
  std::sort(rows.begin(), rows.end(),
            [](const AssignmentRow& a, const AssignmentRow& b) {
              return a.topic < b.topic;
            });
  return rows;
}

std::string Controller::render_assignment_matrix() const {
  const std::size_t n = optimizer_.cost_model().catalog().size();
  std::string out;
  for (const auto& row : assignment_matrix()) {
    out += "topic " + std::to_string(row.topic.value()) + " |";
    for (std::size_t r = 0; r < n; ++r) {
      out += row.config.regions.contains(
                 RegionId{static_cast<RegionId::underlying_type>(r)})
                 ? " 1"
                 : " 0";
    }
    out += " | ";
    out += core::to_string(row.config.mode);
    out += '\n';
  }
  return out;
}

}  // namespace multipub::broker
