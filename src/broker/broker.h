// Per-region pub/sub broker (the Dynamoth stand-in, substitution #4).
//
// The broker is the data plane of one region: it accepts subscriptions,
// matches publications to local subscribers, and — when a topic runs in
// routed mode and the publication arrived directly from a publisher —
// forwards it to the other serving regions. It also records the per-topic
// traffic statistics the region manager reports to the controller.
#pragma once

#include <unordered_map>
#include <unordered_set>

#include "broker/subscription_table.h"
#include "core/config.h"
#include "net/bus.h"
#include "wire/message.h"

namespace multipub::broker {

/// Traffic observed from one publisher on one topic during the current
/// collection interval.
struct ObservedPublisher {
  std::uint64_t msg_count = 0;
  Bytes total_bytes = 0;
};

/// One client-measured latency sample towards this region (kLatencyReport).
struct LatencyReport {
  ClientId client;
  Millis one_way_ms = 0.0;
};

class Broker {
 public:
  /// Registers itself as the handler for Address::region(self) on the bus.
  /// Clock and bus must outlive the broker (the clock drives the
  /// reconfiguration drain windows). The broker is transport-agnostic: the
  /// same code runs over SimTransport (virtual time) and SocketTransport
  /// (a real process on wall time).
  Broker(RegionId self, net::Clock& clock, net::Bus& bus);

  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  /// Installs the topic's configuration (assignment vector + mode).
  ///
  /// Replacing an existing configuration starts a DRAIN window: routed
  /// publications keep being fanned out to the previous region set too for
  /// `drain_grace()` ms, because remote subscribers re-attach asynchronously
  /// and would otherwise miss the publications racing the reconfiguration.
  void set_topic_config(TopicId topic, const core::TopicConfig& config);

  [[nodiscard]] const core::TopicConfig* topic_config(TopicId topic) const;

  /// Message entry point (wired to the transport at construction).
  void handle(const wire::Message& msg);

  [[nodiscard]] RegionId region() const { return self_; }
  [[nodiscard]] const SubscriptionTable& subscriptions() const { return subs_; }

  /// Per-topic publisher traffic since the last drain.
  using TopicTraffic = std::unordered_map<ClientId, ObservedPublisher>;
  [[nodiscard]] const std::unordered_map<TopicId, TopicTraffic>& traffic()
      const {
    return traffic_;
  }

  /// Clears the collected statistics (end of a collection interval).
  void reset_traffic();

  /// Topics whose local subscriber set changed since the last
  /// clear_membership_changes() (a subscriber actually joined or left —
  /// idempotent re-subscribes and no-op unsubscribes do not count). The
  /// region manager drains this to build delta reports.
  [[nodiscard]] const std::unordered_set<TopicId>& membership_changes() const {
    return membership_changed_;
  }
  void clear_membership_changes() { membership_changed_.clear(); }

  /// Latency samples clients reported this interval (drained by the region
  /// manager alongside the traffic statistics).
  [[nodiscard]] const std::vector<LatencyReport>& latency_reports() const {
    return latency_reports_;
  }
  void clear_latency_reports() { latency_reports_.clear(); }

  /// How long the previous region set keeps receiving routed fan-out after
  /// a reconfiguration.
  void set_drain_grace(Millis grace_ms) { drain_grace_ms_ = grace_ms; }
  [[nodiscard]] Millis drain_grace() const { return drain_grace_ms_; }

  /// Regions currently in the drain window for a topic (empty set when
  /// none).
  [[nodiscard]] geo::RegionSet draining_regions(TopicId topic) const;

  /// Publications delivered to local subscribers since construction.
  [[nodiscard]] std::uint64_t delivered_count() const { return delivered_; }

  /// Publications fanned out to peer regions since construction.
  [[nodiscard]] std::uint64_t forwarded_count() const { return forwarded_; }

  /// Subset of forwarded_count(): duplicate fan-outs sent to regions that
  /// are ONLY in a drain window (no longer in the serving set). Measures the
  /// bandwidth price of reconfiguration hand-overs.
  [[nodiscard]] std::uint64_t drain_forwarded_count() const {
    return drain_forwarded_;
  }

  /// Deliveries suppressed by content filters since construction.
  [[nodiscard]] std::uint64_t filtered_count() const { return filtered_; }

 private:
  void on_publish(const wire::Message& msg);
  void deliver_locally(const wire::Message& msg);

  struct Drain {
    geo::RegionSet regions;
    Millis until = 0.0;
  };

  RegionId self_;
  net::Clock* clock_;
  net::Bus* bus_;
  SubscriptionTable subs_;
  std::unordered_map<TopicId, core::TopicConfig> configs_;
  std::unordered_map<TopicId, Drain> draining_;
  std::unordered_map<TopicId, TopicTraffic> traffic_;
  std::unordered_set<TopicId> membership_changed_;
  std::vector<LatencyReport> latency_reports_;
  // Reusable fan-out target buffers: the transport batches from a span, so
  // these never outlive a call and the hot path stops allocating once the
  // high-water mark is reached.
  std::vector<net::Address> fanout_scratch_;
  std::vector<net::Address> deliver_scratch_;
  Millis drain_grace_ms_ = 1000.0;
  std::uint64_t delivered_ = 0;
  std::uint64_t forwarded_ = 0;
  std::uint64_t drain_forwarded_ = 0;
  std::uint64_t filtered_ = 0;
};

}  // namespace multipub::broker
