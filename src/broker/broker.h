// Per-region pub/sub broker (the Dynamoth stand-in, substitution #4).
//
// The broker is the data plane of one region: it accepts subscriptions,
// matches publications to local subscribers, and — when a topic runs in
// routed mode and the publication arrived directly from a publisher —
// forwards it to the other serving regions. It also records the per-topic
// traffic statistics the region manager reports to the controller.
#pragma once

#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "broker/replay_ring.h"
#include "broker/subscription_table.h"
#include "common/seq_tracker.h"
#include "core/config.h"
#include "net/bus.h"
#include "wire/message.h"

namespace multipub::broker {

/// Traffic observed from one publisher on one topic during the current
/// collection interval.
struct ObservedPublisher {
  std::uint64_t msg_count = 0;
  Bytes total_bytes = 0;
};

/// One client-measured latency sample towards this region (kLatencyReport).
struct LatencyReport {
  ClientId client;
  Millis one_way_ms = 0.0;
};

class Broker {
 public:
  /// Registers itself as the handler for Address::region(self) on the bus.
  /// Clock and bus must outlive the broker (the clock drives the
  /// reconfiguration drain windows). The broker is transport-agnostic: the
  /// same code runs over SimTransport (virtual time) and SocketTransport
  /// (a real process on wall time).
  Broker(RegionId self, net::Clock& clock, net::Bus& bus);

  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  /// Installs the topic's configuration (assignment vector + mode).
  ///
  /// Replacing an existing configuration starts a DRAIN window: routed
  /// publications keep being fanned out to the previous region set too for
  /// `drain_grace()` ms, because remote subscribers re-attach asynchronously
  /// and would otherwise miss the publications racing the reconfiguration.
  void set_topic_config(TopicId topic, const core::TopicConfig& config);

  [[nodiscard]] const core::TopicConfig* topic_config(TopicId topic) const;

  /// Message entry point (wired to the transport at construction).
  void handle(const wire::Message& msg);

  [[nodiscard]] RegionId region() const { return self_; }
  [[nodiscard]] const SubscriptionTable& subscriptions() const { return subs_; }

  /// Per-topic publisher traffic since the last drain.
  using TopicTraffic = std::unordered_map<ClientId, ObservedPublisher>;
  [[nodiscard]] const std::unordered_map<TopicId, TopicTraffic>& traffic()
      const {
    return traffic_;
  }

  /// Clears the collected statistics (end of a collection interval).
  void reset_traffic();

  /// Topics whose local subscriber set changed since the last
  /// clear_membership_changes() (a subscriber actually joined or left —
  /// idempotent re-subscribes and no-op unsubscribes do not count). The
  /// region manager drains this to build delta reports.
  [[nodiscard]] const std::unordered_set<TopicId>& membership_changes() const {
    return membership_changed_;
  }
  void clear_membership_changes() { membership_changed_.clear(); }

  /// Latency samples clients reported this interval (drained by the region
  /// manager alongside the traffic statistics).
  [[nodiscard]] const std::vector<LatencyReport>& latency_reports() const {
    return latency_reports_;
  }
  void clear_latency_reports() { latency_reports_.clear(); }

  /// How long the previous region set keeps receiving routed fan-out after
  /// a reconfiguration.
  void set_drain_grace(Millis grace_ms) { drain_grace_ms_ = grace_ms; }
  [[nodiscard]] Millis drain_grace() const { return drain_grace_ms_; }

  /// Regions currently in the drain window for a topic (empty set when
  /// none).
  [[nodiscard]] geo::RegionSet draining_regions(TopicId topic) const;

  /// Publications delivered to local subscribers since construction.
  [[nodiscard]] std::uint64_t delivered_count() const { return delivered_; }

  /// Publications fanned out to peer regions since construction.
  [[nodiscard]] std::uint64_t forwarded_count() const { return forwarded_; }

  /// Subset of forwarded_count(): duplicate fan-outs sent to regions that
  /// are ONLY in a drain window (no longer in the serving set). Measures the
  /// bandwidth price of reconfiguration hand-overs.
  [[nodiscard]] std::uint64_t drain_forwarded_count() const {
    return drain_forwarded_;
  }

  /// Deliveries suppressed by content filters since construction.
  [[nodiscard]] std::uint64_t filtered_count() const { return filtered_; }

  // ---- Reliable delivery + Clone-pattern state replication (DESIGN.md §15)

  /// Turns on the reliable-delivery mode: publications are stamped with
  /// per-topic ring sequence numbers and retained for replay, forwards carry
  /// the sender's ring position for broker-level gap detection, and every
  /// subscription/config mutation is streamed to the standby as a sequenced
  /// kStateDelta. Call before any traffic; off by default (the default plane
  /// is bit-identical to the pre-reliable broker).
  void set_reliable(bool on) { reliable_ = on; }
  [[nodiscard]] bool reliable() const { return reliable_; }

  /// Per-topic replay-ring capacity for rings created after the call.
  void set_replay_capacity(std::size_t capacity) {
    replay_capacity_ = capacity;
  }

  /// Negative chaos hook: a broker with replay disabled ignores every
  /// kReplayRequest, so losses stay unrepaired (the zero-loss oracle must
  /// catch this).
  void set_replay_enabled(bool on) { replay_enabled_ = on; }
  /// Negative chaos hook: stops the kStateSnapshot/kStateDelta stream to the
  /// standby (the replication-lag oracle must catch this).
  void set_state_sync_enabled(bool on) { state_sync_enabled_ = on; }

  /// Designates the region hosting this broker's Clone-pattern standby and
  /// streams it an initial full snapshot. RegionId::invalid() detaches.
  void set_standby(RegionId standby);
  [[nodiscard]] RegionId standby() const { return standby_; }

  /// Monotone counter of subscription/config table mutations (the sequence
  /// number of the kStateDelta stream). 0 until the first mutation.
  [[nodiscard]] std::uint64_t state_seq() const { return state_seq_; }

  /// state_seq the replica this broker hosts for `owner` has applied; 0 when
  /// it hosts none.
  [[nodiscard]] std::uint64_t replica_applied_seq(RegionId owner) const;

  /// Simulated crash: every piece of in-memory state — subscriptions,
  /// configs, drains, traffic, replay rings, dedup state, peer cursors,
  /// state_seq, hosted replicas — is lost. The successor rebuilds tables
  /// from the standby's snapshot and rings from its peers' replay.
  void crash();

  /// Recovery entry point, called on the STANDBY HOST after the primary
  /// `owner` restarts: streams the hosted replica back to `owner` as a
  /// kStateSnapshot stream. No-op without a replica for `owner`.
  void restore_peer(RegionId owner);

  /// Reliable sync pass, broker half: ask every peer in each routed topic's
  /// serving set to replay forwards we may have missed, and heartbeat the
  /// current state_seq to the standby so a diverged replica resyncs.
  void sync_with_peers();

  /// Ring head of `topic` — the number of distinct publications this broker
  /// has accepted for it (ring numbering restarts only at crash(), after
  /// which peer replay rebuilds the count).
  [[nodiscard]] std::uint64_t unique_accepted(TopicId topic) const;

  /// Publications this broker has accepted, per topic and publisher. The
  /// chaos harness walks a crashing broker's set to find publications no
  /// surviving broker holds (the zero-loss oracle's crash-loss exemption).
  using PublicationsSeen = std::unordered_map<
      TopicId,
      std::unordered_map<ClientId, std::unordered_set<std::uint64_t>>>;
  [[nodiscard]] const PublicationsSeen& seen_publications() const {
    return seen_;
  }
  [[nodiscard]] bool has_accepted(TopicId topic, ClientId publisher,
                                  std::uint64_t seq) const;

 private:
  void on_publish(const wire::Message& msg);
  void deliver_locally(const wire::Message& msg);

  // Reliable-mode internals (DESIGN.md §15).
  void on_reliable_arrival(const wire::Message& msg, bool from_replay);
  void on_replay_request(const wire::Message& msg);
  void on_state_snapshot(const wire::Message& msg);
  void on_state_delta(const wire::Message& msg);
  /// True when (publisher, seq) was not seen before on `topic` (and records
  /// it).
  bool first_sight(TopicId topic, ClientId publisher, std::uint64_t seq);
  ReplayRing& ring(TopicId topic);
  /// Emits one kStateDelta for a table mutation (no-op unless reliable with
  /// a standby and sync enabled).
  void emit_state_delta(wire::Message delta);
  void bump_state_seq() { if (reliable_) ++state_seq_; }
  /// Streams begin marker + config entries + subscription entries + end
  /// marker describing `owner`'s state to region `to`. When owner == self_
  /// the broker's own tables are streamed; otherwise the hosted replica.
  void stream_state_snapshot(RegionId to, RegionId owner);
  void request_state_resync(RegionId owner);

  struct Drain {
    geo::RegionSet regions;
    Millis until = 0.0;
  };

  /// Clone-pattern replica of a peer primary's broker state, held by this
  /// broker as that peer's standby (DESIGN.md §15). Entries are stored as
  /// the wire messages that described them, keyed for deterministic
  /// re-streaming order.
  struct StandbyReplica {
    std::uint64_t applied_seq = 0;
    /// A full resync is in flight: further gapped deltas must not each
    /// re-request the whole snapshot (the resync-storm would scale with the
    /// delta rate, not the failure rate). Re-armed by every heartbeat, so a
    /// snapshot lost in transit is re-requested at the next sync interval.
    bool resync_pending = false;
    /// topic value -> config entry (kStateSnapshot/kStateDelta shape).
    std::map<std::int32_t, wire::Message> configs;
    /// topic value -> subscription entries in arrival order.
    std::map<std::int32_t, std::vector<wire::Message>> subscriptions;
  };

  RegionId self_;
  net::Clock* clock_;
  net::Bus* bus_;
  SubscriptionTable subs_;
  std::unordered_map<TopicId, core::TopicConfig> configs_;
  std::unordered_map<TopicId, Drain> draining_;
  std::unordered_map<TopicId, TopicTraffic> traffic_;
  std::unordered_set<TopicId> membership_changed_;
  std::vector<LatencyReport> latency_reports_;
  // Reusable fan-out target buffers: the transport batches from a span, so
  // these never outlive a call and the hot path stops allocating once the
  // high-water mark is reached.
  std::vector<net::Address> fanout_scratch_;
  std::vector<net::Address> deliver_scratch_;
  Millis drain_grace_ms_ = 1000.0;
  std::uint64_t delivered_ = 0;
  std::uint64_t forwarded_ = 0;
  std::uint64_t drain_forwarded_ = 0;
  std::uint64_t filtered_ = 0;

  // ---- Reliable-delivery state (all empty/inert when reliable_ is off).
  bool reliable_ = false;
  bool replay_enabled_ = true;
  bool state_sync_enabled_ = true;
  std::size_t replay_capacity_ = ReplayRing::kDefaultCapacity;
  /// Per-topic bounded replay store; ring head is also the per-topic
  /// delivery sequence stamp.
  std::unordered_map<TopicId, ReplayRing> rings_;
  /// Publications already accepted, per topic: publisher -> publication
  /// seqs. Replayed/caught-up copies dedup against this before re-entering
  /// the ring.
  std::unordered_map<
      TopicId,
      std::unordered_map<ClientId, std::unordered_set<std::uint64_t>>>
      seen_;
  /// Cumulative-ack cursor over each peer's ring numbering, keyed by (peer
  /// region value, topic value); absent = unknown (first contact or
  /// post-crash), whose fresh cursor asks a sync pass to replay the peer's
  /// whole retained ring. Cumulative so a lost replay batch is simply
  /// re-requested by the next sync.
  std::map<std::pair<std::int32_t, std::int32_t>, SeqTracker> peer_cursors_;
  RegionId standby_ = RegionId::invalid();
  std::uint64_t state_seq_ = 0;
  /// Replicas this broker hosts for peer primaries, keyed by owner region
  /// value.
  std::map<std::int32_t, StandbyReplica> replicas_;
};

}  // namespace multipub::broker
