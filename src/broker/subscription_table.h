// Topic -> subscriber mapping of one broker.
//
// Topic-based matching is "a simple lookup operation" (paper §III-D); this
// is that lookup. Each subscription optionally carries a content KeyFilter
// (the content-based extension of the paper's §VII): a publication is
// delivered to a subscriber only when its key matches the filter. Insertion
// is idempotent (re-subscribing replaces the filter) and removal tolerates
// absent entries, so retried control messages are harmless.
#pragma once

#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "wire/message.h"

namespace multipub::broker {

/// One subscriber's registration on a topic.
struct Subscription {
  ClientId subscriber;
  wire::KeyFilter filter;
};

class SubscriptionTable {
 public:
  /// Adds (or re-registers) `subscriber` on `topic`; returns false when the
  /// subscriber was already present (its filter is updated regardless).
  bool subscribe(TopicId topic, ClientId subscriber,
                 wire::KeyFilter filter = wire::KeyFilter::all());

  /// Removes `subscriber` from `topic`; returns false when absent.
  bool unsubscribe(TopicId topic, ClientId subscriber);

  /// Subscriptions of `topic` in subscription order (empty when none).
  [[nodiscard]] const std::vector<Subscription>& subscriptions(
      TopicId topic) const;

  /// Just the subscriber ids, in subscription order. Builds a fresh vector
  /// on every call — reach for the by-reference subscriptions() view
  /// instead unless you genuinely need an owned ClientId vector (e.g. a
  /// report that outlives the table's current state).
  [[nodiscard]] std::vector<ClientId> subscriber_ids(TopicId topic) const;

  [[nodiscard]] bool contains(TopicId topic, ClientId subscriber) const;
  [[nodiscard]] std::size_t topic_count() const;
  [[nodiscard]] std::size_t subscription_count() const;

  /// Topics that currently have at least one subscriber, ascending.
  [[nodiscard]] std::vector<TopicId> topics() const;

  /// Drops every subscription (a crashed broker loses its table; the
  /// Clone-pattern standby re-seeds it, DESIGN.md §15).
  void clear() { table_.clear(); }

 private:
  std::unordered_map<TopicId, std::vector<Subscription>> table_;
};

}  // namespace multipub::broker
