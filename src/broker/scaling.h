// Intra-region elasticity — a "Dynamoth-lite".
//
// The paper runs each region's pub/sub on Dynamoth, "a pub/sub service that
// automatically and dynamically provisions the number of servers needed to
// handle the current load", and treats intra-region scaling as orthogonal
// to MultiPub's placement problem (§III-A1). This module models that layer:
// given each topic's per-interval load, it sizes a server pool and assigns
// topics to servers with a sticky longest-processing-time packing, so the
// region can report how many servers it needs and which server owns which
// topic. It deliberately does not affect delivery semantics or the cost
// model (bandwidth is billed per region, not per server) — exactly the
// orthogonality the paper claims.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace multipub::broker {

/// One topic's load during an interval (any consistent unit; the region
/// manager uses egress bytes).
struct TopicLoad {
  TopicId topic;
  double load = 0.0;
};

class IntraRegionScaler {
 public:
  struct Params {
    /// Load one server sustains per interval.
    double server_capacity = 1 * 1024 * 1024;
    /// A topic already placed on a server stays there as long as the
    /// server's total stays below capacity * (1 + stickiness_slack); this
    /// dampens pointless migrations on small load wobbles.
    double stickiness_slack = 0.2;
  };

  IntraRegionScaler();  // default Params
  explicit IntraRegionScaler(const Params& params);

  /// Result of one rebalance round.
  struct Assignment {
    int n_servers = 1;
    /// Per-server total load, index = server id in [0, n_servers).
    std::vector<double> server_load;
    /// Peak utilization: max server load / capacity.
    double max_utilization = 0.0;
  };

  /// Re-provisions the pool for the interval's loads and (re)assigns
  /// topics. Topics keep their server when stickiness allows. Topics with
  /// zero load release their assignment.
  Assignment rebalance(const std::vector<TopicLoad>& loads);

  /// Server currently owning a topic; -1 when unassigned.
  [[nodiscard]] int server_of(TopicId topic) const;

  [[nodiscard]] int server_count() const { return n_servers_; }
  /// Topics moved between servers across all rebalances (excludes first
  /// placements).
  [[nodiscard]] std::uint64_t migrations() const { return migrations_; }
  [[nodiscard]] const Params& params() const { return params_; }

 private:
  Params params_;
  int n_servers_ = 1;
  std::unordered_map<TopicId, int> assignment_;
  std::uint64_t migrations_ = 0;
};

}  // namespace multipub::broker
