#include "broker/subscription_table.h"

#include <algorithm>

namespace multipub::broker {
namespace {
const std::vector<Subscription> kEmpty;

[[nodiscard]] auto find_subscriber(std::vector<Subscription>& subs,
                                   ClientId subscriber) {
  return std::find_if(subs.begin(), subs.end(),
                      [subscriber](const Subscription& s) {
                        return s.subscriber == subscriber;
                      });
}

}  // namespace

bool SubscriptionTable::subscribe(TopicId topic, ClientId subscriber,
                                  wire::KeyFilter filter) {
  auto& subs = table_[topic];
  if (const auto it = find_subscriber(subs, subscriber); it != subs.end()) {
    it->filter = filter;  // refresh the filter, keep the position
    return false;
  }
  subs.push_back({subscriber, filter});
  return true;
}

bool SubscriptionTable::unsubscribe(TopicId topic, ClientId subscriber) {
  const auto it = table_.find(topic);
  if (it == table_.end()) return false;
  auto& subs = it->second;
  const auto pos = find_subscriber(subs, subscriber);
  if (pos == subs.end()) return false;
  subs.erase(pos);
  if (subs.empty()) table_.erase(it);
  return true;
}

const std::vector<Subscription>& SubscriptionTable::subscriptions(
    TopicId topic) const {
  const auto it = table_.find(topic);
  return it == table_.end() ? kEmpty : it->second;
}

std::vector<ClientId> SubscriptionTable::subscriber_ids(TopicId topic) const {
  const auto& subs = subscriptions(topic);
  std::vector<ClientId> out;
  out.reserve(subs.size());
  for (const auto& s : subs) out.push_back(s.subscriber);
  return out;
}

bool SubscriptionTable::contains(TopicId topic, ClientId subscriber) const {
  const auto& subs = subscriptions(topic);
  return std::any_of(subs.begin(), subs.end(),
                     [subscriber](const Subscription& s) {
                       return s.subscriber == subscriber;
                     });
}

std::size_t SubscriptionTable::topic_count() const { return table_.size(); }

std::size_t SubscriptionTable::subscription_count() const {
  std::size_t n = 0;
  for (const auto& [topic, subs] : table_) n += subs.size();
  return n;
}

std::vector<TopicId> SubscriptionTable::topics() const {
  std::vector<TopicId> out;
  out.reserve(table_.size());
  for (const auto& [topic, subs] : table_) out.push_back(topic);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace multipub::broker
