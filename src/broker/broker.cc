#include "broker/broker.h"

#include "common/assert.h"
#include "common/logging.h"

namespace multipub::broker {

Broker::Broker(RegionId self, net::Clock& clock, net::Bus& bus)
    : self_(self), clock_(&clock), bus_(&bus) {
  MP_EXPECTS(self.valid());
  bus.register_handler(net::Address::region(self),
                       [this](const wire::Message& msg) { handle(msg); });
}

void Broker::set_topic_config(TopicId topic, const core::TopicConfig& config) {
  MP_EXPECTS(!config.regions.empty());
  if (const auto it = configs_.find(topic);
      it != configs_.end() && !(it->second == config)) {
    // Reconfiguration: keep the outgoing fan-out covering the previous
    // serving set until clients have finished their handover.
    Drain& drain = draining_[topic];
    drain.regions = drain.regions | it->second.regions;
    drain.until = clock_->now() + drain_grace_ms_;
    clock_->schedule_after(drain_grace_ms_, [this, topic] {
      const auto drain_it = draining_.find(topic);
      if (drain_it != draining_.end() &&
          clock_->now() >= drain_it->second.until) {
        draining_.erase(drain_it);
      }
    });
  }
  configs_[topic] = config;
}

geo::RegionSet Broker::draining_regions(TopicId topic) const {
  const auto it = draining_.find(topic);
  return it == draining_.end() ? geo::RegionSet{} : it->second.regions;
}

const core::TopicConfig* Broker::topic_config(TopicId topic) const {
  const auto it = configs_.find(topic);
  return it == configs_.end() ? nullptr : &it->second;
}

void Broker::handle(const wire::Message& msg) {
  switch (msg.type) {
    case wire::MessageType::kSubscribe:
      if (bus_->cohort_directory() != nullptr) {
        // Cohort plane: msg.subscriber carries a flock id, and msg.seq says
        // whether this attach changes the region's member set (the pool
        // mirrors the per-client table transitions exactly; a re-attach to
        // the same region arrives with seq 0, like the idempotent
        // re-subscribe below).
        (void)subs_.subscribe(msg.topic, msg.subscriber, msg.filter);
        if (msg.seq != 0) membership_changed_.insert(msg.topic);
      } else if (subs_.subscribe(msg.topic, msg.subscriber, msg.filter)) {
        membership_changed_.insert(msg.topic);
      }
      break;
    case wire::MessageType::kUnsubscribe:
      if (const net::CohortDirectory* dir = bus_->cohort_directory();
          dir != nullptr) {
        // A flock entry outlives single-member departures: it goes away
        // only when nobody is left behind it or the flock re-attached
        // elsewhere — the exact moments the per-client table would have
        // dropped its last member entry for this region.
        const std::int32_t flock = msg.subscriber.value();
        if (subs_.contains(msg.topic, msg.subscriber)) {
          membership_changed_.insert(msg.topic);
          if (dir->flock_weight(flock) == 0 ||
              dir->flock_attachment(flock) != self_) {
            (void)subs_.unsubscribe(msg.topic, msg.subscriber);
          }
        }
      } else if (subs_.unsubscribe(msg.topic, msg.subscriber)) {
        membership_changed_.insert(msg.topic);
      }
      break;
    case wire::MessageType::kPublish:
      on_publish(msg);
      break;
    case wire::MessageType::kForward:
      deliver_locally(msg);
      break;
    case wire::MessageType::kPing: {
      // Latency probe: echo it back so the client can measure the RTT.
      wire::Message pong = msg;
      pong.type = wire::MessageType::kPong;
      bus_->send(net::Address::region(self_),
                       net::Address::client(msg.subscriber), pong);
      break;
    }
    case wire::MessageType::kLatencyReport:
      latency_reports_.push_back({msg.subscriber, msg.published_at});
      break;
    case wire::MessageType::kDeliver:
    case wire::MessageType::kConfigUpdate:
    case wire::MessageType::kPong:
      MP_LOG_WARN("broker") << "region R" << self_.value() + 1
                            << " ignoring client-bound message "
                            << wire::to_string(msg.type);
      break;
    case wire::MessageType::kNodeHello:
    case wire::MessageType::kNodeWelcome:
    case wire::MessageType::kPeerInfo:
    case wire::MessageType::kHeartbeat:
    case wire::MessageType::kPhaseStart:
    case wire::MessageType::kPhaseDone:
    case wire::MessageType::kReportPublisher:
    case wire::MessageType::kReportSubscriber:
    case wire::MessageType::kReportEnd:
    case wire::MessageType::kNodeBye:
      // Node lifecycle traffic is consumed by the node runtime wrapper
      // before it reaches the broker; seeing one here means no wrapper is
      // installed (e.g. a stray send in a simulation).
      MP_LOG_WARN("broker") << "region R" << self_.value() + 1
                            << " ignoring node-lifecycle message "
                            << wire::to_string(msg.type);
      break;
  }
}

void Broker::on_publish(const wire::Message& msg) {
  // Collection-interval statistics (paper §III-A3): who published, how many
  // messages, how many bytes.
  auto& observed = traffic_[msg.topic][msg.publisher];
  observed.msg_count += 1;
  observed.total_bytes += msg.payload_bytes;

  // Under routed delivery the publisher sent the publication only to us (its
  // closest serving region); we forward it to every other serving region.
  // Two reconfiguration races are handled here:
  //  - the fan-out decision follows the MESSAGE's stamped intent, not our
  //    own (possibly newer) configuration — during a routed->direct switch
  //    a publication already in flight still expects us to fan it out;
  //  - the fan-out TARGETS include regions in the drain window — remote
  //    subscribers may still be attached to a region that just left the
  //    serving set.
  // The target list is built into a reusable scratch buffer and handed to
  // the transport as one batch: one shared message, no per-peer copy here.
  // A region in both the serving and the draining set appears once — the
  // union is still a set.
  if (const core::TopicConfig* config = topic_config(msg.topic);
      config != nullptr && msg.config_mode == wire::WireMode::kRouted) {
    const geo::RegionSet draining = draining_regions(msg.topic);
    const geo::RegionSet targets = config->regions | draining;
    fanout_scratch_.clear();
    for (RegionId peer : targets) {
      if (peer == self_) continue;
      fanout_scratch_.push_back(net::Address::region(peer));
      ++forwarded_;
      if (draining.contains(peer) && !config->regions.contains(peer)) {
        ++drain_forwarded_;
      }
    }
    bus_->send_batch(net::Address::region(self_), fanout_scratch_, msg,
                           wire::MessageType::kForward);
  }
  deliver_locally(msg);
}

void Broker::deliver_locally(const wire::Message& msg) {
  deliver_scratch_.clear();
  const net::CohortDirectory* dir = bus_->cohort_directory();
  for (const Subscription& sub : subs_.subscriptions(msg.topic)) {
    if (dir != nullptr) {
      // Cohort plane: the entry is a flock; its live weight is the member
      // count the per-client loop would have iterated. A retired cohort
      // (weight 0) contributes nothing to fan-out.
      const std::int32_t flock = sub.subscriber.value();
      const std::uint64_t weight = dir->flock_weight(flock);
      if (weight == 0) continue;
      if (!sub.filter.matches(msg.key)) {
        filtered_ += weight;
        continue;
      }
      deliver_scratch_.push_back(net::Address::cohort(flock));
      delivered_ += weight;
      continue;
    }
    // Content-based matching: filtered subscriptions only receive
    // publications whose key falls inside their interval.
    if (!sub.filter.matches(msg.key)) {
      ++filtered_;
      continue;
    }
    deliver_scratch_.push_back(net::Address::client(sub.subscriber));
    ++delivered_;
  }
  // The batch stamps kDeliver and the per-target subscriber as each
  // delivery is scheduled.
  bus_->send_batch(net::Address::region(self_), deliver_scratch_, msg,
                         wire::MessageType::kDeliver);
}

void Broker::reset_traffic() { traffic_.clear(); }

}  // namespace multipub::broker
