#include "broker/broker.h"

#include <algorithm>
#include <utility>

#include "common/assert.h"
#include "common/logging.h"

namespace multipub::broker {
namespace {

/// Replica entries double as wire messages; config entries are rebuilt into
/// core configs when a successor restores from them.
core::TopicConfig config_from_entry(const wire::Message& entry) {
  core::TopicConfig config;
  config.regions = entry.config_regions;
  config.mode = entry.config_mode == wire::WireMode::kRouted
                    ? core::DeliveryMode::kRouted
                    : core::DeliveryMode::kDirect;
  return config;
}

}  // namespace

Broker::Broker(RegionId self, net::Clock& clock, net::Bus& bus)
    : self_(self), clock_(&clock), bus_(&bus) {
  MP_EXPECTS(self.valid());
  bus.register_handler(net::Address::region(self),
                       [this](const wire::Message& msg) { handle(msg); });
}

void Broker::set_topic_config(TopicId topic, const core::TopicConfig& config) {
  MP_EXPECTS(!config.regions.empty());
  if (const auto it = configs_.find(topic);
      it != configs_.end() && !(it->second == config)) {
    // Reconfiguration: keep the outgoing fan-out covering the previous
    // serving set until clients have finished their handover.
    Drain& drain = draining_[topic];
    drain.regions = drain.regions | it->second.regions;
    drain.until = clock_->now() + drain_grace_ms_;
    clock_->schedule_after(drain_grace_ms_, [this, topic] {
      const auto drain_it = draining_.find(topic);
      if (drain_it != draining_.end() &&
          clock_->now() >= drain_it->second.until) {
        draining_.erase(drain_it);
      }
    });
  }
  configs_[topic] = config;
  if (reliable_) {
    ++state_seq_;
    wire::Message delta;
    delta.topic = topic;
    delta.subscriber = ClientId{-1};  // config entry, not a subscription
    delta.config_regions = config.regions;
    delta.config_mode = config.mode == core::DeliveryMode::kRouted
                            ? wire::WireMode::kRouted
                            : wire::WireMode::kDirect;
    delta.seq = 1;  // upsert
    emit_state_delta(delta);
  }
}

geo::RegionSet Broker::draining_regions(TopicId topic) const {
  const auto it = draining_.find(topic);
  return it == draining_.end() ? geo::RegionSet{} : it->second.regions;
}

const core::TopicConfig* Broker::topic_config(TopicId topic) const {
  const auto it = configs_.find(topic);
  return it == configs_.end() ? nullptr : &it->second;
}

void Broker::handle(const wire::Message& msg) {
  switch (msg.type) {
    case wire::MessageType::kSubscribe:
      if (bus_->cohort_directory() != nullptr) {
        // Cohort plane: msg.subscriber carries a flock id, and msg.seq says
        // whether this attach changes the region's member set (the pool
        // mirrors the per-client table transitions exactly; a re-attach to
        // the same region arrives with seq 0, like the idempotent
        // re-subscribe below).
        (void)subs_.subscribe(msg.topic, msg.subscriber, msg.filter);
        if (msg.seq != 0) membership_changed_.insert(msg.topic);
      } else if (subs_.subscribe(msg.topic, msg.subscriber, msg.filter)) {
        membership_changed_.insert(msg.topic);
      }
      if (reliable_) {
        // Upsert delta: re-subscribes replace the filter on the primary, so
        // the replica applies the same upsert and the tables stay mirrored.
        // The delta inherits the subscribe's weight: a weighted cohort
        // subscribe stands for that many per-client subscribes, and the
        // replication stream must bill like the per-client expansion would.
        ++state_seq_;
        wire::Message delta;
        delta.topic = msg.topic;
        delta.subscriber = msg.subscriber;
        delta.filter = msg.filter;
        delta.weight = msg.weight;
        delta.seq = 1;  // add/upsert
        emit_state_delta(delta);
      }
      break;
    case wire::MessageType::kUnsubscribe: {
      bool erased = false;
      if (const net::CohortDirectory* dir = bus_->cohort_directory();
          dir != nullptr) {
        // A flock entry outlives single-member departures: it goes away
        // only when nobody is left behind it or the flock re-attached
        // elsewhere — the exact moments the per-client table would have
        // dropped its last member entry for this region.
        const std::int32_t flock = msg.subscriber.value();
        if (subs_.contains(msg.topic, msg.subscriber)) {
          membership_changed_.insert(msg.topic);
          if (dir->flock_weight(flock) == 0 ||
              dir->flock_attachment(flock) != self_) {
            erased = subs_.unsubscribe(msg.topic, msg.subscriber);
          }
        }
      } else if (subs_.unsubscribe(msg.topic, msg.subscriber)) {
        membership_changed_.insert(msg.topic);
        erased = true;
      }
      if (reliable_ && erased) {
        ++state_seq_;
        wire::Message delta;
        delta.topic = msg.topic;
        delta.subscriber = msg.subscriber;
        delta.weight = msg.weight;  // mirror the per-client expansion count
        delta.seq = 0;  // remove
        emit_state_delta(delta);
      }
      break;
    }
    case wire::MessageType::kPublish:
      on_publish(msg);
      break;
    case wire::MessageType::kForward:
      if (reliable_) {
        on_reliable_arrival(msg, /*from_replay=*/false);
      } else {
        deliver_locally(msg);
      }
      break;
    case wire::MessageType::kReplayRequest:
      if (reliable_) on_replay_request(msg);
      break;
    case wire::MessageType::kReplayBatch:
      // Broker-bound replay: a peer's catch-up answer. Client-bound batches
      // go to client/cohort addresses and never reach a broker.
      if (reliable_) on_reliable_arrival(msg, /*from_replay=*/true);
      break;
    case wire::MessageType::kStateSnapshot:
      if (reliable_) on_state_snapshot(msg);
      break;
    case wire::MessageType::kStateDelta:
      if (reliable_) on_state_delta(msg);
      break;
    case wire::MessageType::kPing: {
      // Latency probe: echo it back so the client can measure the RTT.
      wire::Message pong = msg;
      pong.type = wire::MessageType::kPong;
      bus_->send(net::Address::region(self_),
                       net::Address::client(msg.subscriber), pong);
      break;
    }
    case wire::MessageType::kLatencyReport:
      latency_reports_.push_back({msg.subscriber, msg.published_at});
      break;
    case wire::MessageType::kDeliver:
    case wire::MessageType::kConfigUpdate:
    case wire::MessageType::kPong:
      MP_LOG_WARN("broker") << "region R" << self_.value() + 1
                            << " ignoring client-bound message "
                            << wire::to_string(msg.type);
      break;
    case wire::MessageType::kNodeHello:
    case wire::MessageType::kNodeWelcome:
    case wire::MessageType::kPeerInfo:
    case wire::MessageType::kHeartbeat:
    case wire::MessageType::kPhaseStart:
    case wire::MessageType::kPhaseDone:
    case wire::MessageType::kReportPublisher:
    case wire::MessageType::kReportSubscriber:
    case wire::MessageType::kReportEnd:
    case wire::MessageType::kNodeBye:
      // Node lifecycle traffic is consumed by the node runtime wrapper
      // before it reaches the broker; seeing one here means no wrapper is
      // installed (e.g. a stray send in a simulation).
      MP_LOG_WARN("broker") << "region R" << self_.value() + 1
                            << " ignoring node-lifecycle message "
                            << wire::to_string(msg.type);
      break;
  }
}

void Broker::on_publish(const wire::Message& msg) {
  // Collection-interval statistics (paper §III-A3): who published, how many
  // messages, how many bytes.
  auto& observed = traffic_[msg.topic][msg.publisher];
  observed.msg_count += 1;
  observed.total_bytes += msg.payload_bytes;

  // Reliable mode: the ring position this publication gets here is the
  // delivery sequence number every local subscriber orders against, and the
  // stamp peers use to detect forward gaps. Publishers never retransmit,
  // but recording first sight lets a replayed copy of this publication
  // dedup later.
  std::uint64_t rseq = 0;
  if (reliable_) {
    (void)first_sight(msg.topic, msg.publisher, msg.seq);
    rseq = ring(msg.topic).append(msg);
  }

  // Under routed delivery the publisher sent the publication only to us (its
  // closest serving region); we forward it to every other serving region.
  // Two reconfiguration races are handled here:
  //  - the fan-out decision follows the MESSAGE's stamped intent, not our
  //    own (possibly newer) configuration — during a routed->direct switch
  //    a publication already in flight still expects us to fan it out;
  //  - the fan-out TARGETS include regions in the drain window — remote
  //    subscribers may still be attached to a region that just left the
  //    serving set.
  // The target list is built into a reusable scratch buffer and handed to
  // the transport as one batch: one shared message, no per-peer copy here.
  // A region in both the serving and the draining set appears once — the
  // union is still a set.
  if (const core::TopicConfig* config = topic_config(msg.topic);
      config != nullptr && msg.config_mode == wire::WireMode::kRouted) {
    const geo::RegionSet draining = draining_regions(msg.topic);
    const geo::RegionSet targets = config->regions | draining;
    fanout_scratch_.clear();
    for (RegionId peer : targets) {
      if (peer == self_) continue;
      fanout_scratch_.push_back(net::Address::region(peer));
      ++forwarded_;
      if (draining.contains(peer) && !config->regions.contains(peer)) {
        ++drain_forwarded_;
      }
    }
    if (reliable_) {
      // The forward carries our ring position (gap detection at the peer)
      // and our region id in the subscriber field — send_batch preserves it
      // for region targets, and the peer needs to know whom to ask for a
      // replay.
      wire::Message fwd = msg;
      fwd.delivery_seq = rseq;
      fwd.subscriber = ClientId{self_.value()};
      bus_->send_batch(net::Address::region(self_), fanout_scratch_, fwd,
                       wire::MessageType::kForward);
    } else {
      bus_->send_batch(net::Address::region(self_), fanout_scratch_, msg,
                       wire::MessageType::kForward);
    }
  }
  if (reliable_) {
    wire::Message local = msg;
    local.delivery_seq = rseq;
    deliver_locally(local);
  } else {
    deliver_locally(msg);
  }
}

void Broker::deliver_locally(const wire::Message& msg) {
  deliver_scratch_.clear();
  const net::CohortDirectory* dir = bus_->cohort_directory();
  for (const Subscription& sub : subs_.subscriptions(msg.topic)) {
    if (dir != nullptr) {
      // Cohort plane: the entry is a flock; its live weight is the member
      // count the per-client loop would have iterated. A retired cohort
      // (weight 0) contributes nothing to fan-out.
      const std::int32_t flock = sub.subscriber.value();
      const std::uint64_t weight = dir->flock_weight(flock);
      if (weight == 0) continue;
      if (!sub.filter.matches(msg.key)) {
        filtered_ += weight;
        continue;
      }
      deliver_scratch_.push_back(net::Address::cohort(flock));
      delivered_ += weight;
      continue;
    }
    // Content-based matching: filtered subscriptions only receive
    // publications whose key falls inside their interval.
    if (!sub.filter.matches(msg.key)) {
      ++filtered_;
      continue;
    }
    deliver_scratch_.push_back(net::Address::client(sub.subscriber));
    ++delivered_;
  }
  // The batch stamps kDeliver and the per-target subscriber as each
  // delivery is scheduled.
  bus_->send_batch(net::Address::region(self_), deliver_scratch_, msg,
                         wire::MessageType::kDeliver);
}

void Broker::reset_traffic() { traffic_.clear(); }

// ---- Reliable delivery + Clone-pattern state replication (DESIGN.md §15)

bool Broker::first_sight(TopicId topic, ClientId publisher,
                         std::uint64_t seq) {
  return seen_[topic][publisher].insert(seq).second;
}

bool Broker::has_accepted(TopicId topic, ClientId publisher,
                          std::uint64_t seq) const {
  const auto topic_it = seen_.find(topic);
  if (topic_it == seen_.end()) return false;
  const auto pub_it = topic_it->second.find(publisher);
  return pub_it != topic_it->second.end() && pub_it->second.count(seq) > 0;
}

ReplayRing& Broker::ring(TopicId topic) {
  return rings_.try_emplace(topic, replay_capacity_).first->second;
}

std::uint64_t Broker::unique_accepted(TopicId topic) const {
  const auto it = rings_.find(topic);
  return it == rings_.end() ? 0 : it->second.head();
}

std::uint64_t Broker::replica_applied_seq(RegionId owner) const {
  const auto it = replicas_.find(owner.value());
  return it == replicas_.end() ? 0 : it->second.applied_seq;
}

void Broker::on_reliable_arrival(const wire::Message& msg, bool from_replay) {
  // The subscriber field of a reliable kForward/broker-bound kReplayBatch
  // carries the sending region, and delivery_seq its ring position there.
  const RegionId sender{msg.subscriber.value()};
  SeqTracker& cursor = peer_cursors_[{sender.value(), msg.topic.value()}];
  // One request per NEW gap; a stalled gap (its replay batch was itself
  // lost in flight) is re-requested by sync_with_peers from cursor.next(),
  // which — being cumulative — still names the oldest missing forward.
  // Replayed copies never re-trigger requests (a truncated ring would loop
  // forever).
  const bool fresh_gap = !from_replay && cursor.opens_gap(msg.delivery_seq);
  cursor.record(msg.delivery_seq);
  if (fresh_gap) {
    wire::Message req;
    req.type = wire::MessageType::kReplayRequest;
    req.topic = msg.topic;
    req.publisher = ClientId{self_.value()};  // requester region
    req.subscriber = ClientId{-1};
    req.delivery_seq = cursor.next();
    bus_->send(net::Address::region(self_), net::Address::region(sender),
               req);
  }

  if (!first_sight(msg.topic, msg.publisher, msg.seq)) return;  // duplicate
  const std::uint64_t rseq = ring(msg.topic).append(msg);
  wire::Message local = msg;
  local.type = wire::MessageType::kForward;  // publication field shape
  local.subscriber = ClientId{-1};           // drop the region carrier
  local.delivery_seq = rseq;                 // OUR numbering for subscribers
  deliver_locally(local);
}

void Broker::on_replay_request(const wire::Message& msg) {
  if (!msg.topic.valid()) {
    // Standby host asking for a full state resync (its delta stream
    // diverged or it lost the replica). Gated on the STATE-SYNC hook, not
    // the replay hook: set_replay_enabled(false) sabotages data replay
    // only, so each negative chaos hook trips exactly its own oracle.
    if (state_sync_enabled_) {
      stream_state_snapshot(RegionId{msg.publisher.value()}, self_);
    }
    return;
  }
  if (!replay_enabled_) return;
  const auto rit = rings_.find(msg.topic);
  if (rit == rings_.end()) return;  // nothing retained for the topic
  const ReplayRing& r = rit->second;
  // Below oldest_retained() the ring has evicted: the requester gets the
  // surviving suffix — the mechanism's documented loss bound.
  const std::uint64_t from =
      std::max<std::uint64_t>(msg.delivery_seq, r.oldest_retained());

  const bool to_flock = msg.key != 0;
  const bool to_client = to_flock || msg.subscriber.valid();
  if (!to_client) {
    // Broker-level catch-up: stream our ring suffix to the requesting
    // region, stamped like reliable forwards.
    const net::Address requester =
        net::Address::region(RegionId{msg.publisher.value()});
    for (std::uint64_t seq = from; seq <= r.head(); ++seq) {
      wire::Message batch = *r.find(seq);
      batch.type = wire::MessageType::kReplayBatch;
      batch.subscriber = ClientId{self_.value()};
      bus_->send(net::Address::region(self_), requester, batch);
    }
    return;
  }

  // Client-level replay: honour the requester's content filter (a filtered
  // publication was never delivered, so it is not replayed either).
  const ClientId table_key =
      to_flock ? ClientId{static_cast<std::int32_t>(msg.key - 1)}
               : msg.subscriber;
  wire::KeyFilter filter = wire::KeyFilter::all();
  for (const Subscription& sub : subs_.subscriptions(msg.topic)) {
    if (sub.subscriber == table_key) {
      filter = sub.filter;
      break;
    }
  }
  const net::Address dest =
      to_flock ? net::Address::cohort(static_cast<std::int32_t>(msg.key - 1))
               : net::Address::client(msg.subscriber);
  for (std::uint64_t seq = from; seq <= r.head(); ++seq) {
    const wire::Message* entry = r.find(seq);
    if (!filter.matches(entry->key)) continue;
    wire::Message batch = *entry;
    batch.type = wire::MessageType::kReplayBatch;
    // A whole-flock request (invalid subscriber) is answered with weighted
    // whole-flock batches; a member-stamped request with weight-1 batches
    // for exactly that member.
    batch.subscriber = msg.subscriber;
    batch.weight = msg.weight;
    bus_->send(net::Address::region(self_), dest, batch);
  }
}

void Broker::emit_state_delta(wire::Message delta) {
  MP_EXPECTS(reliable_);
  if (!standby_.valid() || !state_sync_enabled_) return;
  delta.type = wire::MessageType::kStateDelta;
  delta.publisher = ClientId{self_.value()};  // state owner
  delta.delivery_seq = state_seq_;
  bus_->send(net::Address::region(self_), net::Address::region(standby_),
             delta);
}

void Broker::set_standby(RegionId standby) {
  MP_EXPECTS(!standby.valid() || standby != self_);
  standby_ = standby;
  if (reliable_ && standby_.valid() && state_sync_enabled_) {
    stream_state_snapshot(standby_, self_);
  }
}

void Broker::stream_state_snapshot(RegionId to, RegionId owner) {
  const net::Address self_addr = net::Address::region(self_);
  const net::Address dest = net::Address::region(to);
  const auto send_marker = [&](std::uint64_t kind, std::uint64_t state_seq) {
    wire::Message marker;
    marker.type = wire::MessageType::kStateSnapshot;
    marker.publisher = ClientId{owner.value()};
    marker.topic = TopicId{-1};
    marker.subscriber = ClientId{-1};
    marker.seq = kind;  // 0 = begin (clear), 1 = end (commit)
    marker.delivery_seq = state_seq;
    bus_->send(self_addr, dest, marker);
  };

  if (owner == self_) {
    // Primary streaming its own tables (standby bootstrap or resync).
    send_marker(0, state_seq_);
    std::vector<std::int32_t> topic_values;
    topic_values.reserve(configs_.size());
    for (const auto& [topic, config] : configs_) {
      topic_values.push_back(topic.value());
    }
    std::sort(topic_values.begin(), topic_values.end());
    for (const std::int32_t t : topic_values) {
      const core::TopicConfig& config = configs_.at(TopicId{t});
      wire::Message entry;
      entry.type = wire::MessageType::kStateSnapshot;
      entry.publisher = ClientId{owner.value()};
      entry.topic = TopicId{t};
      entry.subscriber = ClientId{-1};
      entry.config_regions = config.regions;
      entry.config_mode = config.mode == core::DeliveryMode::kRouted
                              ? wire::WireMode::kRouted
                              : wire::WireMode::kDirect;
      entry.seq = 1;
      bus_->send(self_addr, dest, entry);
    }
    const net::CohortDirectory* dir = bus_->cohort_directory();
    for (const TopicId topic : subs_.topics()) {
      for (const Subscription& sub : subs_.subscriptions(topic)) {
        wire::Message entry;
        entry.type = wire::MessageType::kStateSnapshot;
        entry.publisher = ClientId{owner.value()};
        entry.topic = topic;
        entry.subscriber = sub.subscriber;
        entry.filter = sub.filter;
        // On the cohort plane a table entry stands for a whole flock; the
        // snapshot stream bills as the per-client expansion would.
        entry.weight =
            dir == nullptr ? 1 : dir->flock_weight(sub.subscriber.value());
        entry.seq = 1;
        bus_->send(self_addr, dest, entry);
      }
    }
    send_marker(1, state_seq_);
    return;
  }

  // Standby host streaming a replica back to its restored owner.
  const auto it = replicas_.find(owner.value());
  if (it == replicas_.end()) return;
  const StandbyReplica& rep = it->second;
  send_marker(0, rep.applied_seq);
  for (const auto& [topic_value, entry] : rep.configs) {
    bus_->send(self_addr, dest, entry);
  }
  for (const auto& [topic_value, entries] : rep.subscriptions) {
    for (const wire::Message& entry : entries) {
      bus_->send(self_addr, dest, entry);
    }
  }
  send_marker(1, rep.applied_seq);
}

void Broker::request_state_resync(RegionId owner) {
  wire::Message req;
  req.type = wire::MessageType::kReplayRequest;
  req.topic = TopicId{-1};  // state, not a topic ring
  req.publisher = ClientId{self_.value()};
  req.subscriber = ClientId{-1};
  bus_->send(net::Address::region(self_), net::Address::region(owner), req);
}

void Broker::on_state_snapshot(const wire::Message& msg) {
  if (msg.publisher.value() == self_.value()) {
    // Our own state coming back from the standby after a crash.
    if (!msg.topic.valid()) {
      if (msg.seq == 1) state_seq_ = msg.delivery_seq;
      return;
    }
    if (msg.subscriber.valid()) {
      (void)subs_.subscribe(msg.topic, msg.subscriber, msg.filter);
      // The controller must re-learn what this region serves.
      membership_changed_.insert(msg.topic);
    } else {
      configs_[msg.topic] = config_from_entry(msg);  // no drain on restore
    }
    return;
  }

  // We are the standby host receiving the owner's stream.
  StandbyReplica& rep = replicas_[msg.publisher.value()];
  if (!msg.topic.valid()) {
    if (msg.seq == 0) {
      rep.configs.clear();
      rep.subscriptions.clear();
    } else {
      rep.applied_seq = msg.delivery_seq;
      rep.resync_pending = false;  // resync committed; gaps may re-request
    }
    return;
  }
  wire::Message entry = msg;
  entry.type = wire::MessageType::kStateSnapshot;  // canonical stored shape
  if (!entry.subscriber.valid()) {
    rep.configs[entry.topic.value()] = entry;
    return;
  }
  auto& list = rep.subscriptions[entry.topic.value()];
  const auto match =
      std::find_if(list.begin(), list.end(), [&](const wire::Message& e) {
        return e.subscriber == entry.subscriber;
      });
  if (match != list.end()) {
    *match = entry;
  } else {
    list.push_back(entry);
  }
}

void Broker::on_state_delta(const wire::Message& msg) {
  const RegionId owner{msg.publisher.value()};
  StandbyReplica& rep = replicas_[owner.value()];
  if (!msg.topic.valid() && !msg.subscriber.valid()) {
    // Heartbeat restating the owner's state_seq: any divergence (dropped
    // deltas, a crashed-and-restarted host) triggers a full resync. The
    // heartbeat also re-arms the pending flag, so a snapshot lost in
    // transit is re-requested once per sync interval, never per delta.
    rep.resync_pending = false;
    if (rep.applied_seq != msg.delivery_seq) {
      request_state_resync(owner);
      rep.resync_pending = true;
    }
    return;
  }
  if (msg.delivery_seq <= rep.applied_seq) return;  // stale duplicate
  if (msg.delivery_seq != rep.applied_seq + 1) {
    // Gap in the sequenced delta stream: one resync per gap episode, not
    // one per delta that arrives while the snapshot is still in flight.
    if (!rep.resync_pending) {
      request_state_resync(owner);
      rep.resync_pending = true;
    }
    return;
  }
  if (!msg.subscriber.valid()) {
    wire::Message entry = msg;
    entry.type = wire::MessageType::kStateSnapshot;
    rep.configs[entry.topic.value()] = entry;
  } else {
    auto& list = rep.subscriptions[msg.topic.value()];
    const auto match =
        std::find_if(list.begin(), list.end(), [&](const wire::Message& e) {
          return e.subscriber == msg.subscriber;
        });
    if ((msg.seq & 1) != 0) {  // add/upsert
      wire::Message entry = msg;
      entry.type = wire::MessageType::kStateSnapshot;
      if (match != list.end()) {
        *match = entry;
      } else {
        list.push_back(entry);
      }
    } else if (match != list.end()) {  // remove
      list.erase(match);
      if (list.empty()) rep.subscriptions.erase(msg.topic.value());
    }
  }
  rep.applied_seq = msg.delivery_seq;
}

void Broker::crash() {
  // A crash loses every piece of in-memory state; the counters survive —
  // they are the experiment's observability, not broker state.
  subs_.clear();
  configs_.clear();
  draining_.clear();
  traffic_.clear();
  membership_changed_.clear();
  latency_reports_.clear();
  rings_.clear();
  seen_.clear();
  peer_cursors_.clear();
  replicas_.clear();
  state_seq_ = 0;
}

void Broker::restore_peer(RegionId owner) {
  if (!reliable_ || !state_sync_enabled_) return;
  if (replicas_.find(owner.value()) == replicas_.end()) return;
  stream_state_snapshot(owner, owner);
}

void Broker::sync_with_peers() {
  if (!reliable_) return;
  // Deterministic topic order (configs_ is a hash map).
  std::vector<std::int32_t> topic_values;
  topic_values.reserve(configs_.size());
  for (const auto& [topic, config] : configs_) {
    topic_values.push_back(topic.value());
  }
  std::sort(topic_values.begin(), topic_values.end());
  for (const std::int32_t t : topic_values) {
    const TopicId topic{t};
    const core::TopicConfig& config = configs_.at(topic);
    // Both modes sync: under direct delivery serving brokers hold parallel
    // rings (one kPublish copy each), and a region that JOINS the serving
    // set must backfill from its peers or re-homed subscribers would find
    // an empty ring. The first pull pays a one-time ring backfill (billed
    // like deliveries); afterwards the per-peer cursor keeps it incremental.
    // Only serving regions hold subscribers to repair; a bystander pulling
    // rings would replicate (and bill) traffic it has no use for.
    if (!config.regions.contains(self_)) continue;
    const geo::RegionSet peers = config.regions | draining_regions(topic);
    for (const RegionId peer : peers) {
      if (peer == self_) continue;
      const auto it = peer_cursors_.find({peer.value(), t});
      // Unknown cursor (first contact or post-crash): ask for everything
      // the peer still retains.
      const std::uint64_t from =
          it == peer_cursors_.end() ? 1 : it->second.next();
      wire::Message req;
      req.type = wire::MessageType::kReplayRequest;
      req.topic = topic;
      req.publisher = ClientId{self_.value()};
      req.subscriber = ClientId{-1};
      req.delivery_seq = from;
      bus_->send(net::Address::region(self_), net::Address::region(peer),
                 req);
    }
  }
  if (standby_.valid() && state_sync_enabled_) {
    wire::Message hb;
    hb.type = wire::MessageType::kStateDelta;
    hb.publisher = ClientId{self_.value()};
    hb.topic = TopicId{-1};
    hb.subscriber = ClientId{-1};
    hb.delivery_seq = state_seq_;
    bus_->send(net::Address::region(self_), net::Address::region(standby_),
               hb);
  }
}

}  // namespace multipub::broker
