// The MultiPub controller (paper §III-A4/A5).
//
// Installed in one region, the controller folds the region managers'
// per-interval reports into a persistent TopicStore (one aggregated
// TopicState per topic, with dirty tracking), re-optimizes the topics that
// changed, and emits the configurations that changed. It owns the per-topic
// delivery constraints and the latency matrices (paper: "it keeps track of
// the latencies between every client and each of the cloud regions, as well
// as between each pair of cloud regions").
//
// Reconfiguration is incremental: reconfigure() only runs the optimizer for
// DIRTY topics (traffic / membership / constraint / availability / latency
// changes since the previous round) and carries the deployed configuration
// forward for clean ones. reconfigure_full() keeps the seed's full scan as
// the reference path — both produce bit-identical deployed assignment
// matrices (see incremental_diff_test).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "broker/region_manager.h"
#include "core/heuristic.h"
#include "core/latency_estimator.h"
#include "core/mitigation.h"
#include "core/optimizer.h"
#include "core/topic_store.h"

namespace multipub::broker {

class Controller {
 public:
  /// Catalog and backbone are borrowed and must outlive the controller; the
  /// client latency matrix is COPIED into the controller's latency
  /// estimator, which keeps it up to date as measurements arrive.
  Controller(const geo::RegionCatalog& catalog,
             const geo::InterRegionLatency& backbone,
             const geo::ClientLatencyMap& clients);

  /// Registers (or updates) a topic's delivery constraint. Topics without a
  /// constraint are optimized for cost only (constraint "any latency").
  void set_constraint(TopicId topic, const core::DeliveryConstraint& constraint);

  /// Ingests one region's interval reports (called once per region per
  /// interval). Reports may be deltas — only the topics whose activity
  /// changed at that region — or, with `full_snapshot`, the region's
  /// complete topic list, in which case topics the region did NOT report
  /// are dropped from its view (self-healing against lost deltas).
  /// Publisher statistics are deduplicated across regions by taking the
  /// maximum per publisher: under direct delivery every serving region
  /// observes the same publications.
  void ingest(RegionId region, const std::vector<TopicReport>& reports,
              bool full_snapshot = false);

  /// One topic's outcome of a reconfiguration round.
  struct Decision {
    TopicId topic;
    core::OptimizerResult result;
    /// False when the optimal configuration equals the deployed one (no
    /// deployment necessary). Carried-forward decisions of clean topics are
    /// always unchanged and report configs_evaluated == 0.
    bool changed = false;
    /// Clients whose last-reported region is currently unavailable: their
    /// own region manager cannot notify them, so the deployment driver must
    /// route their kConfigUpdate through an alive region manager
    /// (RegionManager::notify_client).
    std::vector<ClientId> orphans;
    /// Regions force-added by the high-latency mitigation pass (paper
    /// §IV-D), when enabled.
    std::vector<RegionId> mitigation_regions;
  };

  /// What one reconfiguration round did (incremental observability).
  struct RoundStats {
    std::uint64_t round = 0;        ///< 1-based counter; 0 = no round yet
    std::size_t tracked = 0;        ///< topics in the store
    std::size_t dirty = 0;          ///< dirty at round start
    std::size_t evaluated = 0;      ///< optimizer actually ran
    std::size_t skipped_clean = 0;  ///< clean; deployed config carried forward
    std::size_t skipped_empty = 0;  ///< no subscribers or no traffic
    /// Dirty topics per DirtyReason bit (index i = bit 1 << i; a topic dirty
    /// for several reasons counts once per reason).
    std::array<std::size_t, core::kDirtyReasonCount> dirty_by_reason{};
    bool full_scan = false;
  };

  /// Incremental round: optimizes only the dirty topics, carries the
  /// deployed configuration forward for clean ones, and returns one
  /// decision per previously-optimized topic, ordered by topic id.
  [[nodiscard]] std::vector<Decision> reconfigure(
      const core::OptimizerOptions& options = {});

  /// Reference round: optimizes every tracked topic regardless of dirtiness
  /// (the seed's behaviour). Kept for differential tests and as the
  /// --incremental off escape hatch; produces the same deployed matrix as
  /// reconfigure() fed with the same reports.
  [[nodiscard]] std::vector<Decision> reconfigure_full(
      const core::OptimizerOptions& options = {});

  [[nodiscard]] const RoundStats& last_round_stats() const { return stats_; }

  /// The configuration currently deployed for a topic (nullptr before the
  /// first reconfigure round that saw it).
  [[nodiscard]] const core::TopicConfig* deployed_config(TopicId topic) const;

  /// One row of the assignment matrix (paper §III-A2).
  struct AssignmentRow {
    TopicId topic;
    core::TopicConfig config;
  };

  /// The deployed assignment matrix, rows sorted by topic id.
  [[nodiscard]] std::vector<AssignmentRow> assignment_matrix() const;

  /// Printable form: one line per topic, one column per region —
  ///   topic 0 | 1 0 0 0 1 0 0 0 0 0 | routed
  [[nodiscard]] std::string render_assignment_matrix() const;

  /// The TopicState the controller would optimize right now (exposed for
  /// tests and the live runner's analytic cross-checks).
  [[nodiscard]] core::TopicState aggregate(TopicId topic) const;

  [[nodiscard]] const core::Optimizer& optimizer() const { return optimizer_; }
  [[nodiscard]] const core::TopicStore& topic_store() const { return store_; }

  /// Noise gate for dirty tracking: relative per-publisher traffic deltas at
  /// or below `threshold` do not dirty a topic (see TopicStoreOptions).
  void set_traffic_threshold(double threshold);

  /// Folds one region's drained latency reports into the estimator: each
  /// sample is a measured client<->region one-way latency (paper §III-C).
  /// Samples that move an estimate dirty the client's topics.
  void observe_latencies(RegionId region,
                         const std::vector<LatencyReport>& reports);

  /// Marks a region unavailable (outage) or available again. Unavailable
  /// regions are excluded from every topic's candidate set at the next
  /// reconfigure round.
  void set_region_available(RegionId region, bool available);
  [[nodiscard]] bool region_available(RegionId region) const;

  /// The regions currently considered down (manual marks + failure
  /// detection) — the set the next round's candidate masking will use.
  [[nodiscard]] const geo::RegionSet& unavailable_regions() const {
    return unavailable_;
  }

  /// Chaos/testing hook: when disabled, reconfigure rounds STOP masking
  /// unavailable regions out of the candidate sets (availability is still
  /// tracked for orphan bookkeeping). This deliberately re-introduces the
  /// bug class where the controller routes topics through dead regions —
  /// the chaos harness's dead-region oracles must catch it. On by default.
  void set_outage_exclusion_enabled(bool enabled) {
    outage_exclusion_enabled_ = enabled;
  }
  [[nodiscard]] bool outage_exclusion_enabled() const {
    return outage_exclusion_enabled_;
  }

  /// Enables the paper's §IV-D pass: after each topic's optimization, scan
  /// for subscribers whose every delivery misses max_T and force-add a
  /// region when it meets (or significantly improves) their latencies.
  void enable_mitigation(bool enabled,
                         const core::MitigationParams& params = {});

  /// Which search the reconfigure rounds run. kExhaustive is the paper's
  /// brute force (exponential in regions); kHeuristic is the polynomial
  /// seed/grow/trim-swap search — the right choice past ~15 regions.
  enum class Solver { kExhaustive, kHeuristic };
  void set_solver(Solver solver) { solver_ = solver; }
  [[nodiscard]] Solver solver() const { return solver_; }

  /// Enables automatic failure detection: a region that misses
  /// `missed_rounds` consecutive ingest rounds (no ingest() call between
  /// two reconfigure() calls) is marked unavailable; it becomes available
  /// again on its next ingest. Manual set_region_available still overrides.
  void enable_failure_detection(int missed_rounds = 2);

  /// Rounds each region has consecutively missed (diagnostics).
  [[nodiscard]] int missed_rounds(RegionId region) const;

  [[nodiscard]] const core::LatencyEstimator& latency_estimator() const {
    return estimator_;
  }

 private:
  /// Cached outcome of a topic's last optimization, replayed for clean
  /// topics without rerunning the solver.
  struct CachedOutcome {
    core::OptimizerResult result;
    std::vector<RegionId> mitigation_regions;
  };

  std::vector<Decision> reconfigure_impl(const core::OptimizerOptions& options,
                                         bool full_scan);
  /// Everything besides the topic state that can flip an optimization
  /// outcome. When it differs from the previous round's, every cached
  /// decision is invalid (the optimizer's epsilon tie-breaks make even
  /// "unrelated" topics sensitive to the candidate universe).
  struct RoundFingerprint {
    std::uint64_t candidates_mask = 0;
    core::ModePolicy mode_policy{};
    core::EvaluationStrategy strategy{};
    Solver solver{};
    bool mitigation = false;
    friend bool operator==(const RoundFingerprint&,
                           const RoundFingerprint&) = default;
  };

  core::LatencyEstimator estimator_;  // must precede the solvers (borrowed)
  core::Optimizer optimizer_;
  core::HeuristicOptimizer heuristic_;
  Solver solver_ = Solver::kExhaustive;
  geo::RegionSet unavailable_;
  bool outage_exclusion_enabled_ = true;
  bool mitigation_enabled_ = false;
  core::MitigationParams mitigation_params_;
  int failure_detection_rounds_ = 0;  ///< 0 = disabled
  std::vector<int> missed_rounds_;    ///< per region, consecutive misses
  std::vector<bool> reported_this_round_;
  /// Last region each client was reported at (attachment for subscribers,
  /// publishing target for publishers) — the failover notification map.
  std::unordered_map<TopicId, std::unordered_map<ClientId, RegionId>>
      last_seen_at_;
  core::TopicStore store_;
  std::unordered_map<TopicId, CachedOutcome> last_outcomes_;
  RoundFingerprint last_fingerprint_;
  bool has_last_fingerprint_ = false;
  std::uint64_t rounds_ = 0;
  RoundStats stats_;
  std::unordered_map<TopicId, core::TopicConfig> deployed_;
};

}  // namespace multipub::broker
