// The MultiPub controller (paper §III-A4/A5).
//
// Installed in one region, the controller aggregates the region managers'
// per-interval reports into one TopicState per topic, re-runs the optimizer,
// and emits the configurations that changed. It owns the per-topic delivery
// constraints and the latency matrices (paper: "it keeps track of the
// latencies between every client and each of the cloud regions, as well as
// between each pair of cloud regions").
#pragma once

#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "broker/region_manager.h"
#include "core/heuristic.h"
#include "core/latency_estimator.h"
#include "core/mitigation.h"
#include "core/optimizer.h"

namespace multipub::broker {

class Controller {
 public:
  /// Catalog and backbone are borrowed and must outlive the controller; the
  /// client latency matrix is COPIED into the controller's latency
  /// estimator, which keeps it up to date as measurements arrive.
  Controller(const geo::RegionCatalog& catalog,
             const geo::InterRegionLatency& backbone,
             const geo::ClientLatencyMap& clients);

  /// Registers (or updates) a topic's delivery constraint. Topics without a
  /// constraint are optimized for cost only (constraint "any latency").
  void set_constraint(TopicId topic, const core::DeliveryConstraint& constraint);

  /// Ingests one region's interval reports (called once per region per
  /// interval). Publisher statistics are deduplicated across regions by
  /// taking the maximum per publisher: under direct delivery every serving
  /// region observes the same publications.
  void ingest(RegionId region, const std::vector<TopicReport>& reports);

  /// One topic's outcome of a reconfiguration round.
  struct Decision {
    TopicId topic;
    core::OptimizerResult result;
    /// False when the optimal configuration equals the deployed one (no
    /// deployment necessary).
    bool changed = false;
    /// Clients whose last-reported region is currently unavailable: their
    /// own region manager cannot notify them, so the deployment driver must
    /// route their kConfigUpdate through an alive region manager
    /// (RegionManager::notify_client).
    std::vector<ClientId> orphans;
    /// Regions force-added by the high-latency mitigation pass (paper
    /// §IV-D), when enabled.
    std::vector<RegionId> mitigation_regions;
  };

  /// Optimizes every topic seen this interval, remembers the deployed
  /// configuration, clears the interval aggregation, and returns all
  /// decisions ordered by topic id.
  [[nodiscard]] std::vector<Decision> reconfigure(
      const core::OptimizerOptions& options = {});

  /// The configuration currently deployed for a topic (nullptr before the
  /// first reconfigure round that saw it).
  [[nodiscard]] const core::TopicConfig* deployed_config(TopicId topic) const;

  /// One row of the assignment matrix (paper §III-A2).
  struct AssignmentRow {
    TopicId topic;
    core::TopicConfig config;
  };

  /// The deployed assignment matrix, rows sorted by topic id.
  [[nodiscard]] std::vector<AssignmentRow> assignment_matrix() const;

  /// Printable form: one line per topic, one column per region —
  ///   topic 0 | 1 0 0 0 1 0 0 0 0 0 | routed
  [[nodiscard]] std::string render_assignment_matrix() const;

  /// The TopicState the controller would optimize right now (exposed for
  /// tests and the live runner's analytic cross-checks).
  [[nodiscard]] core::TopicState aggregate(TopicId topic) const;

  [[nodiscard]] const core::Optimizer& optimizer() const { return optimizer_; }

  /// Folds one region's drained latency reports into the estimator: each
  /// sample is a measured client<->region one-way latency (paper §III-C).
  void observe_latencies(RegionId region,
                         const std::vector<LatencyReport>& reports);

  /// Marks a region unavailable (outage) or available again. Unavailable
  /// regions are excluded from every topic's candidate set at the next
  /// reconfigure round.
  void set_region_available(RegionId region, bool available);
  [[nodiscard]] bool region_available(RegionId region) const;

  /// Enables the paper's §IV-D pass: after each topic's optimization, scan
  /// for subscribers whose every delivery misses max_T and force-add a
  /// region when it meets (or significantly improves) their latencies.
  void enable_mitigation(bool enabled,
                         const core::MitigationParams& params = {});

  /// Which search the reconfigure rounds run. kExhaustive is the paper's
  /// brute force (exponential in regions); kHeuristic is the polynomial
  /// seed/grow/trim-swap search — the right choice past ~15 regions.
  enum class Solver { kExhaustive, kHeuristic };
  void set_solver(Solver solver) { solver_ = solver; }
  [[nodiscard]] Solver solver() const { return solver_; }

  /// Enables automatic failure detection: a region that misses
  /// `missed_rounds` consecutive ingest rounds (no ingest() call between
  /// two reconfigure() calls) is marked unavailable; it becomes available
  /// again on its next ingest. Manual set_region_available still overrides.
  void enable_failure_detection(int missed_rounds = 2);

  /// Rounds each region has consecutively missed (diagnostics).
  [[nodiscard]] int missed_rounds(RegionId region) const;

  [[nodiscard]] const core::LatencyEstimator& latency_estimator() const {
    return estimator_;
  }

 private:
  struct Aggregation {
    std::map<ClientId, core::PublisherStats> publishers;
    std::unordered_set<ClientId> subscribers;
  };

  core::LatencyEstimator estimator_;  // must precede the solvers (borrowed)
  core::Optimizer optimizer_;
  core::HeuristicOptimizer heuristic_;
  Solver solver_ = Solver::kExhaustive;
  geo::RegionSet unavailable_;
  bool mitigation_enabled_ = false;
  core::MitigationParams mitigation_params_;
  int failure_detection_rounds_ = 0;  ///< 0 = disabled
  std::vector<int> missed_rounds_;    ///< per region, consecutive misses
  std::vector<bool> reported_this_round_;
  /// Last region each client was reported at (attachment for subscribers,
  /// publishing target for publishers) — the failover notification map.
  std::unordered_map<TopicId, std::unordered_map<ClientId, RegionId>>
      last_seen_at_;
  std::unordered_map<TopicId, core::DeliveryConstraint> constraints_;
  std::map<TopicId, Aggregation> interval_;  // ordered for determinism
  std::unordered_map<TopicId, core::TopicConfig> deployed_;
};

}  // namespace multipub::broker
