#include "broker/scaling.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace multipub::broker {

IntraRegionScaler::IntraRegionScaler() : IntraRegionScaler(Params{}) {}

IntraRegionScaler::IntraRegionScaler(const Params& params) : params_(params) {
  MP_EXPECTS(params.server_capacity > 0.0);
  MP_EXPECTS(params.stickiness_slack >= 0.0);
}

IntraRegionScaler::Assignment IntraRegionScaler::rebalance(
    const std::vector<TopicLoad>& loads) {
  double total = 0.0;
  for (const auto& l : loads) {
    MP_EXPECTS(l.load >= 0.0);
    total += l.load;
  }

  Assignment out;
  out.n_servers = std::max(
      1, static_cast<int>(std::ceil(total / params_.server_capacity)));
  out.server_load.assign(static_cast<std::size_t>(out.n_servers), 0.0);

  // Pass 1 (sticky): topics keep their server when it still exists and the
  // addition stays under capacity * (1 + slack).
  const double sticky_limit =
      params_.server_capacity * (1.0 + params_.stickiness_slack);
  std::vector<TopicLoad> homeless;
  std::vector<TopicLoad> ordered(loads.begin(), loads.end());
  std::sort(ordered.begin(), ordered.end(),
            [](const TopicLoad& a, const TopicLoad& b) {
              if (a.load != b.load) return a.load > b.load;
              return a.topic < b.topic;  // deterministic tie-break
            });

  std::unordered_map<TopicId, int> next_assignment;
  for (const auto& l : ordered) {
    if (l.load == 0.0) continue;  // released below
    const auto it = assignment_.find(l.topic);
    if (it != assignment_.end() && it->second < out.n_servers &&
        out.server_load[static_cast<std::size_t>(it->second)] + l.load <=
            sticky_limit) {
      out.server_load[static_cast<std::size_t>(it->second)] += l.load;
      next_assignment[l.topic] = it->second;
    } else {
      homeless.push_back(l);
    }
  }

  // Pass 2 (LPT): place the rest on the least-loaded server. `homeless`
  // inherits the descending order from `ordered`.
  for (const auto& l : homeless) {
    const auto least = std::min_element(out.server_load.begin(),
                                        out.server_load.end());
    const int server =
        static_cast<int>(std::distance(out.server_load.begin(), least));
    *least += l.load;
    const auto prev = assignment_.find(l.topic);
    if (prev != assignment_.end() && prev->second != server) {
      ++migrations_;
    }
    next_assignment[l.topic] = server;
  }

  assignment_ = std::move(next_assignment);
  n_servers_ = out.n_servers;
  const double peak =
      *std::max_element(out.server_load.begin(), out.server_load.end());
  out.max_utilization = peak / params_.server_capacity;
  return out;
}

int IntraRegionScaler::server_of(TopicId topic) const {
  const auto it = assignment_.find(topic);
  return it == assignment_.end() ? -1 : it->second;
}

}  // namespace multipub::broker
