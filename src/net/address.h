// Node addressing for the simulated network.
//
// Split out of transport.h so the simulator's typed delivery events can name
// endpoints without depending on the transport itself.
#pragma once

#include <cstdint>
#include <cstddef>

#include "common/types.h"

namespace multipub::net {

/// Node address: a client endpoint, a region's broker, or a cohort — one
/// weighted flock of identical clients (DESIGN.md §12). A flock id names a
/// (cohort, topic) subscription unit in the CohortDirectory; deliveries to
/// it stand for one delivery to every member.
struct Address {
  enum class Kind : std::uint8_t { kClient, kRegion, kCohort };
  Kind kind = Kind::kClient;
  std::int32_t id = -1;

  [[nodiscard]] static Address client(ClientId c) {
    return {Kind::kClient, c.value()};
  }
  [[nodiscard]] static Address region(RegionId r) {
    return {Kind::kRegion, r.value()};
  }
  [[nodiscard]] static Address cohort(std::int32_t flock) {
    return {Kind::kCohort, flock};
  }

  [[nodiscard]] ClientId as_client() const { return ClientId{id}; }
  [[nodiscard]] RegionId as_region() const { return RegionId{id}; }
  [[nodiscard]] std::int32_t as_flock() const { return id; }

  friend bool operator==(Address, Address) = default;
};

struct AddressHash {
  std::size_t operator()(Address a) const noexcept {
    return (static_cast<std::size_t>(a.kind) << 32) ^
           static_cast<std::size_t>(static_cast<std::uint32_t>(a.id));
  }
};

}  // namespace multipub::net
