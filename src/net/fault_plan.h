// Scheduled fault injection for the simulated network.
//
// A FaultPlan is a set of rules the transport consults for every message it
// is about to put on the wire. Each rule matches a directed link — a (from,
// to) endpoint pattern, so partitions can be asymmetric — and is active
// inside a virtual-time window [start, end):
//
//   kPartition : matching messages are lost in transit (sent, not billed,
//                counted as dropped — same accounting as a send towards a
//                dead region),
//   kDelay     : matching messages take delay * factor + extra_ms instead
//                of their nominal latency (applied after jitter),
//   kDrop      : matching messages are lost with probability p, drawn from
//                the plan's own seeded stream.
//
// Everything is a pure function of (rule set, seed, send order), and the
// send order is fixed by the deterministic simulator, so a chaos run is
// bit-reproducible from its seed. The plan is passive: it never schedules
// anything itself; SimTransport::set_fault_plan() wires it into send() /
// send_batch(), and a null plan (the default) leaves the data path exactly
// as before.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "net/address.h"

namespace multipub::net {

/// One side of a link pattern. kAny* forms are wildcards; kRegion/kClient
/// match one concrete endpoint.
struct FaultEndpoint {
  enum class Kind : std::uint8_t {
    kAny,        ///< any endpoint
    kAnyRegion,  ///< any region broker
    kAnyClient,  ///< any client
    kRegion,     ///< the region with this id
    kClient,     ///< the client with this id
  };
  Kind kind = Kind::kAny;
  std::int32_t id = -1;

  [[nodiscard]] static FaultEndpoint any() { return {}; }
  [[nodiscard]] static FaultEndpoint any_region() {
    return {Kind::kAnyRegion, -1};
  }
  [[nodiscard]] static FaultEndpoint any_client() {
    return {Kind::kAnyClient, -1};
  }
  [[nodiscard]] static FaultEndpoint region(RegionId r) {
    return {Kind::kRegion, r.value()};
  }
  [[nodiscard]] static FaultEndpoint client(ClientId c) {
    return {Kind::kClient, c.value()};
  }

  [[nodiscard]] bool matches(Address address) const;

  friend bool operator==(const FaultEndpoint&, const FaultEndpoint&) = default;
};

/// One injected fault. Fields beyond (kind, from, to, window) are only
/// meaningful for their kind.
struct FaultRule {
  enum class Kind : std::uint8_t { kPartition, kDelay, kDrop };
  Kind kind = Kind::kPartition;
  FaultEndpoint from;
  FaultEndpoint to;
  Millis start = 0.0;           ///< window start (inclusive, virtual ms)
  Millis end = kUnreachable;    ///< window end (exclusive)
  double delay_factor = 1.0;    ///< kDelay: multiplies the nominal latency
  Millis delay_extra_ms = 0.0;  ///< kDelay: added on top
  double drop_probability = 0.0;  ///< kDrop: loss probability in [0, 1]
};

class FaultPlan {
 public:
  /// `seed` feeds the probabilistic-drop stream; two plans with the same
  /// seed and the same consult sequence make identical drop decisions.
  explicit FaultPlan(std::uint64_t seed) : seed_(seed), rng_(seed) {}

  /// Root of the plan's drop-coin stream family. The transport derives one
  /// per-link coin stream from it (common::derive_stream_seed), so coin
  /// order is a per-link property — independent of how sends from different
  /// links interleave, and therefore of the shard count.
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Installs a rule; returns a handle for remove(). Rules are consulted in
  /// insertion order.
  int add(const FaultRule& rule);
  void remove(int id);
  void clear() { rules_.clear(); }
  [[nodiscard]] std::size_t active_rules() const { return rules_.size(); }

  /// What the plan decided for one message on the (from -> to) link at
  /// virtual time `now`.
  struct Outcome {
    bool dropped = false;
    double delay_factor = 1.0;
    Millis delay_extra_ms = 0.0;
  };

  /// Consults every active rule in insertion order. Delay rules compound
  /// (factors multiply, extras add); the first matching partition — or drop
  /// rule whose coin lands — stops the scan. Each consulted kDrop rule
  /// takes one draw from the seeded stream; since every coin outcome is
  /// itself deterministic in the seed, so is the whole stream.
  [[nodiscard]] Outcome apply(Address from, Address to, Millis now);

  /// Form for callers that own the coin stream (the transport keeps one
  /// per link so sharded runs stay deterministic): same rule scan, but drop
  /// coins come from `coin` and the plan's own stream stays untouched. The
  /// tallies are bumped with relaxed atomics — increments commute, so the
  /// totals are shard-count-invariant and the call is safe from concurrent
  /// shard workers.
  [[nodiscard]] Outcome apply(Address from, Address to, Millis now,
                              Rng& coin) const;

  /// True when some rule active at `now` could apply to a client-bound hop
  /// from `from` (its to-pattern is able to match a client endpoint). The
  /// cohort fast path uses this to decide between one whole-flock send
  /// (exact when no rule can touch the link) and an exact per-member replay
  /// that draws the same per-client coins as the uncompressed plane.
  [[nodiscard]] bool may_affect_client_deliveries(Address from,
                                                  Millis now) const;

  /// Mirror for client-originated hops towards `to`: true when an active
  /// rule's from-pattern can match a client. Cohort-mode control sends
  /// reject such rules (MP_EXPECTS) — a weighted send cannot replay the
  /// per-member coin streams the uncompressed plane would consume.
  [[nodiscard]] bool may_affect_client_sends(Address to, Millis now) const;

  /// Most pessimistic factor active delay rules could shrink a latency by:
  /// the product of every rule's min(1, delay_factor), ignoring windows and
  /// link patterns (conservative). Extras are nonnegative by add()'s
  /// contract, so `min_link_latency * lookahead_scale()` is a valid
  /// conservative window width for the sharded simulator under this plan.
  [[nodiscard]] double lookahead_scale() const;

  /// Messages lost to partitions / to probabilistic drop; messages whose
  /// latency a delay rule touched.
  [[nodiscard]] std::uint64_t partition_dropped() const {
    return partition_dropped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t random_dropped() const {
    return random_dropped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t delayed() const {
    return delayed_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<std::pair<int, FaultRule>> rules_;
  std::uint64_t seed_;
  Rng rng_;
  int next_id_ = 0;
  // mutable + relaxed: the const apply() tallies too. Totals are sums of
  // commuting increments, hence independent of worker interleaving.
  mutable std::atomic<std::uint64_t> partition_dropped_{0};
  mutable std::atomic<std::uint64_t> random_dropped_{0};
  mutable std::atomic<std::uint64_t> delayed_{0};
};

}  // namespace multipub::net
