#include "net/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/assert.h"
#include "common/logging.h"

namespace multipub::net {
namespace {

bool set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

sockaddr_in loopback(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

TcpEndpoint::TcpEndpoint(Handler handler) : handler_(std::move(handler)) {
  MP_EXPECTS(handler_ != nullptr);
}

TcpEndpoint::~TcpEndpoint() { close_all(); }

bool TcpEndpoint::listen(std::uint16_t port) {
  MP_EXPECTS(listen_fd_ < 0);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;

  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr = loopback(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 16) != 0 || !set_nonblocking(listen_fd_)) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  return true;
}

int TcpEndpoint::connect_to(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;

  sockaddr_in addr = loopback(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  configure_socket(fd);
  if (!set_nonblocking(fd)) {
    ::close(fd);
    return -1;
  }
  const int handle = next_handle_++;
  peers_[handle] = Peer{fd, wire::StreamDecoder{}, {}};
  return handle;
}

bool TcpEndpoint::send(int peer, const wire::Message& msg) {
  const auto it = peers_.find(peer);
  if (it == peers_.end()) return false;
  Peer& p = it->second;

  const wire::EncodedMessage frame = wire::encode(msg);
  std::size_t sent = 0;
  // Frames must leave in send order, so nothing may bypass a non-empty
  // outbox. Otherwise try the socket directly and buffer only what the
  // kernel refuses — the common case stays zero-copy into the outbox.
  if (p.outbox.empty()) {
    while (sent < frame.size()) {
      const ssize_t n = ::send(p.fd, frame.data() + sent, frame.size() - sent,
                               MSG_NOSIGNAL);
      if (n > 0) {
        sent += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      drop(peer);  // real socket error: connection is gone
      return false;
    }
  }
  p.outbox.insert(p.outbox.end(), frame.begin() + static_cast<std::ptrdiff_t>(sent),
                  frame.end());
  return true;
}

bool TcpEndpoint::flush_outbox(Peer& peer) {
  std::size_t sent = 0;
  while (sent < peer.outbox.size()) {
    const ssize_t n = ::send(peer.fd, peer.outbox.data() + sent,
                             peer.outbox.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    return false;  // real socket error
  }
  peer.outbox.erase(peer.outbox.begin(),
                    peer.outbox.begin() + static_cast<std::ptrdiff_t>(sent));
  return true;
}

void TcpEndpoint::configure_socket(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (socket_buffer_bytes_ > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &socket_buffer_bytes_,
                 sizeof(socket_buffer_bytes_));
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &socket_buffer_bytes_,
                 sizeof(socket_buffer_bytes_));
  }
}

void TcpEndpoint::accept_pending() {
  while (listen_fd_ >= 0) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN: nothing pending
    configure_socket(fd);
    if (!set_nonblocking(fd)) {
      ::close(fd);
      continue;
    }
    peers_[next_handle_++] = Peer{fd, wire::StreamDecoder{}, {}};
  }
}

std::size_t TcpEndpoint::pending_send_bytes(int peer) const {
  const auto it = peers_.find(peer);
  return it == peers_.end() ? 0 : it->second.outbox.size();
}

bool TcpEndpoint::read_from(int handle) {
  auto& peer = peers_.at(handle);
  constexpr std::size_t kReadChunk = 16 * 1024;
  bool closed = false;
  while (true) {
    // Bulk-read straight into the decoder's buffer: no intermediate copy.
    std::byte* window = peer.inbox.write_window(kReadChunk);
    const ssize_t n = ::recv(peer.fd, window, kReadChunk, 0);
    if (n > 0) {
      peer.inbox.commit(static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    closed = true;  // orderly close or error
    break;
  }

  // Dispatch every complete frame, even when the peer closed right after
  // sending them.
  while (const auto msg = peer.inbox.next()) {
    ++received_;
    handler_(*msg);
  }
  if (peer.inbox.corrupt()) {
    ++corrupt_;
    MP_LOG_WARN("tcp") << "corrupt frame from peer " << handle
                       << "; dropping connection";
    return false;
  }
  return !closed;
}

std::size_t TcpEndpoint::poll(int timeout_ms) {
  std::vector<pollfd> fds;
  std::vector<int> handles;
  if (listen_fd_ >= 0) {
    fds.push_back({listen_fd_, POLLIN, 0});
    handles.push_back(-1);
  }
  for (const auto& [handle, peer] : peers_) {
    const short events =
        static_cast<short>(POLLIN | (peer.outbox.empty() ? 0 : POLLOUT));
    fds.push_back({peer.fd, events, 0});
    handles.push_back(handle);
  }
  if (fds.empty()) return 0;

  const std::uint64_t before = received_;
  if (::poll(fds.data(), fds.size(), timeout_ms) <= 0) return 0;

  std::vector<int> to_drop;
  for (std::size_t i = 0; i < fds.size(); ++i) {
    if (fds[i].revents == 0) continue;
    if (handles[i] == -1) {
      accept_pending();
      continue;
    }
    const auto it = peers_.find(handles[i]);
    if (it == peers_.end()) continue;
    if ((fds[i].revents & POLLOUT) != 0 && !flush_outbox(it->second)) {
      to_drop.push_back(handles[i]);
      continue;
    }
    if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0 &&
        !read_from(handles[i])) {
      to_drop.push_back(handles[i]);
    }
  }
  for (int handle : to_drop) drop(handle);
  return received_ - before;
}

void TcpEndpoint::drop(int handle) {
  const auto it = peers_.find(handle);
  if (it == peers_.end()) return;
  ::close(it->second.fd);
  peers_.erase(it);
}

void TcpEndpoint::close_all() {
  for (auto& [handle, peer] : peers_) {
    ::close(peer.fd);
  }
  peers_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    port_ = 0;
  }
}

}  // namespace multipub::net
