// Directory the transport and brokers consult to resolve cohort addresses.
//
// A FLOCK is the addressable unit of the cohort-compressed data plane
// (DESIGN.md §12): one cohort of identical clients subscribed to one topic.
// The directory maps a flock id to the live weight (member count), the
// members themselves (for exact per-member fault replay and for expanding
// reports back to client ids), and the shared client<->region latency of
// every member — members of one cohort are identical in every
// simulation-relevant way, so one latency per (flock, region) is exact.
//
// Implemented by client::CohortPool; lives in net/ so the transport does
// not depend on the client layer.
#pragma once

#include <cstdint>
#include <span>

#include "common/types.h"

namespace multipub::net {

class CohortDirectory {
 public:
  /// Live member count of the flock (0 once every member left — a retired
  /// cohort keeps its id but contributes nothing to fan-out).
  [[nodiscard]] virtual std::uint32_t flock_weight(std::int32_t flock)
      const = 0;

  /// The members, in cohort insertion order. Only consulted off the hot
  /// path: per-member fault replay and report expansion.
  [[nodiscard]] virtual std::span<const ClientId> flock_members(
      std::int32_t flock) const = 0;

  /// One-way latency between any member and `region` (identical for all
  /// members by construction of the cohort key).
  [[nodiscard]] virtual Millis flock_latency(std::int32_t flock,
                                             RegionId region) const = 0;

  /// Home region of the flock's members; the flock lives on this region's
  /// shard.
  [[nodiscard]] virtual RegionId flock_home(std::int32_t flock) const = 0;

  /// Region the flock is currently attached to for its topic (invalid when
  /// detached). Brokers use it to drop a table entry exactly when the
  /// per-client plane would have dropped the last member's entry.
  [[nodiscard]] virtual RegionId flock_attachment(std::int32_t flock)
      const = 0;

 protected:
  ~CohortDirectory() = default;
};

}  // namespace multipub::net
