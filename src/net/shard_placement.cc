#include "net/shard_placement.h"

#include <algorithm>
#include <numeric>

#include "common/assert.h"

namespace multipub::net {

std::optional<ShardPlacement> parse_shard_placement(std::string_view name) {
  if (name == "round-robin") return ShardPlacement::kRoundRobin;
  if (name == "topology") return ShardPlacement::kTopology;
  return std::nullopt;
}

std::string shard_placement_name(ShardPlacement placement) {
  return placement == ShardPlacement::kRoundRobin ? "round-robin" : "topology";
}

namespace {

struct Edge {
  Millis weight;
  std::uint32_t a;
  std::uint32_t b;
};

/// Union-find with path halving; union by the smaller root id so the
/// representative is always the smallest region id of its component (which
/// makes the first-appearance labeling below trivial to reason about).
class Components {
 public:
  explicit Components(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }

  std::uint32_t find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Returns true when the roots differed (a merge happened).
  bool unite(std::uint32_t a, std::uint32_t b) {
    const std::uint32_t ra = find(a);
    const std::uint32_t rb = find(b);
    if (ra == rb) return false;
    if (ra < rb) {
      parent_[rb] = ra;
    } else {
      parent_[ra] = rb;
    }
    return true;
  }

 private:
  std::vector<std::uint32_t> parent_;
};

}  // namespace

std::vector<std::uint32_t> partition_regions(
    ShardPlacement placement, const geo::InterRegionLatency& backbone,
    std::uint32_t shards) {
  const std::size_t n = backbone.size();
  MP_EXPECTS(shards >= 1 && shards <= n);
  std::vector<std::uint32_t> assignment(n);
  if (placement == ShardPlacement::kRoundRobin) {
    for (std::size_t r = 0; r < n; ++r) {
      assignment[r] = static_cast<std::uint32_t>(r) % shards;
    }
    return assignment;
  }

  // Single-linkage clustering as Kruskal's MST stopped at `shards`
  // components: repeatedly merge the two closest components. The symmetric
  // pair distance covers asymmetric matrices (both directions cross a shard
  // boundary, so the tighter one is the binding constraint).
  std::vector<Edge> edges;
  edges.reserve(n * (n - 1) / 2);
  for (std::uint32_t a = 0; a + 1 < n; ++a) {
    for (std::uint32_t b = a + 1; b < n; ++b) {
      const Millis ab = backbone.at(RegionId{static_cast<std::int32_t>(a)},
                                    RegionId{static_cast<std::int32_t>(b)});
      const Millis ba = backbone.at(RegionId{static_cast<std::int32_t>(b)},
                                    RegionId{static_cast<std::int32_t>(a)});
      edges.push_back(Edge{std::min(ab, ba), a, b});
    }
  }
  // Total order including the endpoints: equal-latency edges (uniform or
  // highly symmetric matrices) merge in (a, b) order, so the partition is a
  // deterministic function of the matrix alone.
  std::sort(edges.begin(), edges.end(), [](const Edge& x, const Edge& y) {
    if (x.weight != y.weight) return x.weight < y.weight;
    if (x.a != y.a) return x.a < y.a;
    return x.b < y.b;
  });

  Components components(n);
  std::size_t merges = 0;
  const std::size_t wanted = n - shards;  // merges until K components remain
  for (const Edge& edge : edges) {
    if (merges == wanted) break;
    if (components.unite(edge.a, edge.b)) ++merges;
  }
  // kUnreachable entries can leave the graph disconnected with more than
  // `shards` natural components; the leftover singletons simply stay their
  // own shards via the labeling below, which still yields <= n labels but
  // may exceed `shards` — forbid that instead of silently producing more
  // shards than asked for.
  MP_EXPECTS(merges == wanted && "backbone matrix has too few finite links");

  // First-appearance labeling: scanning regions in id order, a component
  // gets the next free shard id the first time any of its members appears.
  // Region 0 therefore always lands on shard 0.
  std::vector<std::uint32_t> label(n, UINT32_MAX);
  std::uint32_t next = 0;
  for (std::uint32_t r = 0; r < n; ++r) {
    const std::uint32_t root = components.find(r);
    if (label[root] == UINT32_MAX) label[root] = next++;
    assignment[r] = label[root];
  }
  MP_EXPECTS(next == shards);
  return assignment;
}

Millis min_cross_shard_region_latency(
    const geo::InterRegionLatency& backbone,
    const std::vector<std::uint32_t>& region_shard) {
  const std::size_t n = backbone.size();
  MP_EXPECTS(region_shard.size() >= n);
  Millis best = kUnreachable;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b || region_shard[a] == region_shard[b]) continue;
      best = std::min(best,
                      backbone.at(RegionId{static_cast<std::int32_t>(a)},
                                  RegionId{static_cast<std::int32_t>(b)}));
    }
  }
  return best;
}

}  // namespace multipub::net
