// Region-to-shard placement strategies for the sharded data plane.
//
// The conservative window of the parallel simulator (DESIGN.md §11) is as
// wide as the minimum CROSS-shard link latency, so where regions land
// directly bounds how often the shards must synchronize. Round-robin —
// the PR 5 recipe — scatters neighbouring regions across shards and pins
// the window to the globally closest region pair. The topology strategy
// instead clusters nearby regions onto the same shard, cutting only the
// widest links: for the same K it maximizes the minimum cross-shard
// backbone latency, which widens every legal window (see DESIGN.md §14).
//
// Placement never changes observables: shard assignment only decides which
// worker executes an event, and the sharded plane is bit-identical for any
// assignment. Only the window structure (and with it wall-clock) moves.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "geo/latency.h"

namespace multipub::net {

enum class ShardPlacement : std::uint8_t {
  kRoundRobin,  ///< region r -> shard r % K (the PR 5 recipe)
  kTopology,    ///< single-linkage clustering over the backbone matrix
};

/// Flag spelling <-> enum ("round-robin" | "topology"); nullopt on anything
/// else.
[[nodiscard]] std::optional<ShardPlacement> parse_shard_placement(
    std::string_view name);
[[nodiscard]] std::string shard_placement_name(ShardPlacement placement);

/// Region -> shard assignment for `shards` shards under `placement`.
///
/// kTopology runs deterministic single-linkage clustering: Kruskal's MST
/// over the symmetric backbone distances (edges sorted by (latency, a, b)),
/// stopped when exactly `shards` components remain — equivalently, cutting
/// the K-1 heaviest MST edges. That partition maximizes the minimum
/// inter-cluster single-linkage distance, i.e. the minimum cross-shard
/// region<->region latency. Cluster labels are assigned by first appearance
/// in region-id order, so the output is a pure function of the matrix.
///
/// A uniform scaling of the matrix (e.g. FaultPlan::lookahead_scale, which
/// shrinks every latency by one global factor) does not change the argmax
/// partition, so the raw backbone is the right input even under fault
/// plans. Pre: 1 <= shards <= n_regions.
[[nodiscard]] std::vector<std::uint32_t> partition_regions(
    ShardPlacement placement, const geo::InterRegionLatency& backbone,
    std::uint32_t shards);

/// Minimum backbone latency over region pairs the assignment separates
/// (kUnreachable when no pair is separated). Shared by the partitioner's
/// tests and the benches' reporting.
[[nodiscard]] Millis min_cross_shard_region_latency(
    const geo::InterRegionLatency& backbone,
    const std::vector<std::uint32_t>& region_shard);

}  // namespace multipub::net
