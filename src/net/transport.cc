#include "net/transport.h"

#include <cmath>
#include <type_traits>
#include <utility>

#include "common/assert.h"

namespace multipub::net {

static_assert(std::is_trivially_copyable_v<DeliveryEvent>,
              "the typed event fast path relies on DeliveryEvent being "
              "plain copyable data (no per-hop heap traffic)");

namespace {

/// Packed directed-link identity: (kind, id) of both endpoints. Address ids
/// are nonnegative int32, so kind fits above them in each half.
[[nodiscard]] std::uint64_t link_key(Address from, Address to) {
  const auto half = [](Address a) {
    // Cohort links never own RNG streams (the weighted plane forbids jitter
    // and replays fault coins on the members' own client links), so the
    // 1-bit kind encoding stays collision-free.
    MP_EXPECTS(a.kind != Address::Kind::kCohort);
    return static_cast<std::uint64_t>(
               a.kind == Address::Kind::kClient ? 1u : 0u)
               << 31 |
           static_cast<std::uint32_t>(a.id);
  };
  return half(from) << 32 | half(to);
}

/// Domain separator so a fault plan and a jitter config that happen to share
/// a seed still produce unrelated per-link streams.
constexpr std::uint64_t kCoinDomain = 0xc01fc01fc01fc01fULL;

/// The payload-carrying kinds the reliable mode's fault semantics still
/// drops; everything else is control traffic the protocol would retry until
/// acknowledged (DESIGN.md §15).
[[nodiscard]] bool is_data_kind(wire::MessageType type) {
  return type == wire::MessageType::kPublish ||
         type == wire::MessageType::kForward ||
         type == wire::MessageType::kDeliver ||
         type == wire::MessageType::kReplayBatch;
}

}  // namespace

Dollars CostLedger::total_cost(const geo::RegionCatalog& catalog) const {
  MP_EXPECTS(catalog.size() == inter_region_bytes.size());
  Dollars total = 0.0;
  for (const auto& region : catalog.all()) {
    total += static_cast<double>(inter_region_bytes[region.id.index()]) *
             region.alpha_per_byte();
    total += static_cast<double>(internet_bytes[region.id.index()]) *
             region.beta_per_byte();
  }
  return total;
}

SimTransport::SimTransport(Simulator& sim, const geo::RegionCatalog& catalog,
                           const geo::InterRegionLatency& backbone,
                           const geo::ClientLatencyMap& clients)
    : sim_(&sim),
      catalog_(&catalog),
      backbone_(&backbone),
      clients_(&clients),
      region_handlers_(catalog.size()),
      region_down_(catalog.size(), false),
      bills_(catalog.size()),
      ledger_(catalog.size()) {
  MP_EXPECTS(catalog.size() == backbone.size());
  MP_EXPECTS(catalog.size() == clients.n_regions());
  lanes_.push_back(std::make_unique<ShardLane>());
}

void SimTransport::set_fast_path(bool on) {
  // The weighted cohort plane has no legacy twin; drop the directory first.
  MP_EXPECTS(on || directory_ == nullptr);
  fast_path_ = on;
  sim_->set_legacy_scheduling(!on);
}

void SimTransport::set_cohort_directory(const CohortDirectory* directory) {
  MP_EXPECTS(directory == nullptr ||
             (fast_path_ && !jitter_.has_value()));
  directory_ = directory;
}

void SimTransport::set_shards(std::uint32_t shards) {
  MP_EXPECTS(shards >= 1);
  // Fresh lanes and counter layouts: a shard-count change re-baselines the
  // books, so it belongs before any traffic (next to configure_shards).
  sent_.configure(shards);
  delivered_.configure(shards);
  dropped_.configure(shards);
  dropped_unregistered_.configure(shards);
  dropped_sender_down_.configure(shards);
  dropped_dead_arrival_.configure(shards);
  dropped_faulted_.configure(shards);
  lanes_.clear();
  for (std::uint32_t i = 0; i < shards; ++i) {
    lanes_.push_back(std::make_unique<ShardLane>());
  }
}

std::vector<Millis> SimTransport::cross_shard_lookaheads(
    const ShardMap& map) const {
  const std::size_t k = map.shards;
  std::vector<Millis> la(k * k, kUnreachable);
  const auto fold = [&](std::uint32_t src, std::uint32_t dst, Millis l) {
    if (src == dst) return;
    Millis& slot = la[static_cast<std::size_t>(src) * k + dst];
    slot = std::min(slot, l);
  };
  const std::size_t regions = catalog_->size();
  MP_EXPECTS(map.region_shard.size() >= regions);
  for (std::size_t a = 0; a < regions; ++a) {
    for (std::size_t b = 0; b < regions; ++b) {
      if (a == b) continue;
      fold(map.region_shard[a], map.region_shard[b],
           backbone_->at(RegionId{static_cast<std::int32_t>(a)},
                         RegionId{static_cast<std::int32_t>(b)}));
    }
  }
  const std::size_t n_clients =
      std::min(map.client_shard.size(), clients_->n_clients());
  for (std::size_t c = 0; c < n_clients; ++c) {
    for (std::size_t r = 0; r < regions; ++r) {
      // Client links are symmetric: at(c, r) covers both directions.
      const Millis l = clients_->at(ClientId{static_cast<std::int32_t>(c)},
                                    RegionId{static_cast<std::int32_t>(r)});
      fold(map.client_shard[c], map.region_shard[r], l);
      fold(map.region_shard[r], map.client_shard[c], l);
    }
  }
  // Cohort rows matter independently of the client rows above: flock
  // latencies are the cohort key's QUANTIZED values, which floor-quantize
  // below the exact per-client latency, so they can be the binding minimum.
  if (directory_ != nullptr) {
    for (std::size_t f = 0; f < map.cohort_shard.size(); ++f) {
      for (std::size_t r = 0; r < regions; ++r) {
        const Millis l = directory_->flock_latency(
            static_cast<std::int32_t>(f),
            RegionId{static_cast<std::int32_t>(r)});
        fold(map.cohort_shard[f], map.region_shard[r], l);
        fold(map.region_shard[r], map.cohort_shard[f], l);
      }
    }
  }
  return la;
}

Millis SimTransport::min_cross_shard_latency(const ShardMap& map) const {
  const std::vector<Millis> la = cross_shard_lookaheads(map);
  const std::size_t k = map.shards;
  Millis best = kUnreachable;
  for (std::size_t src = 0; src < k; ++src) {
    for (std::size_t dst = 0; dst < k; ++dst) {
      if (src != dst) best = std::min(best, la[src * k + dst]);
    }
  }
  return best;
}

void SimTransport::register_handler(Address address, Handler handler) {
  MP_EXPECTS(handler != nullptr);
  MP_EXPECTS(address.id >= 0);
  // During parallel windows the tables must stay immutable (workers read
  // them concurrently); churn-driven registration is only legal from
  // single-threaded dispatch or between runs.
  MP_EXPECTS(!sim_->sharded() || !sim_->dispatching());
  const auto index = static_cast<std::size_t>(address.id);
  auto& dense = address.kind == Address::Kind::kClient   ? client_handlers_
                : address.kind == Address::Kind::kRegion ? region_handlers_
                                                         : cohort_handlers_;
  if (index >= dense.size()) dense.resize(index + 1);
  // Growing the deque above is safe mid-delivery (existing elements stay
  // put), but overwriting the std::function deliver() is currently invoking
  // would destroy it under its own feet.
  MP_EXPECTS(&dense[index] != lane(sim_->current_shard()).active_handler &&
             "cannot replace a handler from within its own delivery");
  dense[index] = handler;
  handlers_[address] = std::move(handler);
}

void SimTransport::unregister_handler(Address address) {
  MP_EXPECTS(address.id >= 0);
  MP_EXPECTS(!sim_->sharded() || !sim_->dispatching());
  const auto index = static_cast<std::size_t>(address.id);
  auto& dense = address.kind == Address::Kind::kClient   ? client_handlers_
                : address.kind == Address::Kind::kRegion ? region_handlers_
                                                         : cohort_handlers_;
  if (index < dense.size()) {
    MP_EXPECTS(&dense[index] != lane(sim_->current_shard()).active_handler &&
               "cannot remove a handler from within its own delivery");
    dense[index] = nullptr;
  }
  handlers_.erase(address);
}

const SimTransport::Handler* SimTransport::find_handler(
    Address address) const {
  const auto& dense = address.kind == Address::Kind::kClient ? client_handlers_
                      : address.kind == Address::Kind::kRegion
                          ? region_handlers_
                          : cohort_handlers_;
  const auto index = static_cast<std::size_t>(address.id);
  if (index >= dense.size() || !dense[index]) return nullptr;
  return &dense[index];
}

Millis SimTransport::latency(Address from, Address to) const {
  using Kind = Address::Kind;
  if (from.kind == Kind::kRegion && to.kind == Kind::kRegion) {
    return backbone_->at(from.as_region(), to.as_region());
  }
  if (from.kind == Kind::kClient && to.kind == Kind::kRegion) {
    return clients_->at(from.as_client(), to.as_region());
  }
  if (from.kind == Kind::kRegion && to.kind == Kind::kClient) {
    return clients_->at(to.as_client(), from.as_region());
  }
  // Cohort links: every member shares one latency row by construction, so
  // the directory's per-(flock, region) value is the members' exact value.
  if (from.kind == Kind::kCohort && to.kind == Kind::kRegion) {
    MP_EXPECTS(directory_ != nullptr);
    return directory_->flock_latency(from.as_flock(), to.as_region());
  }
  if (from.kind == Kind::kRegion && to.kind == Kind::kCohort) {
    MP_EXPECTS(directory_ != nullptr);
    return directory_->flock_latency(to.as_flock(), from.as_region());
  }
  MP_EXPECTS(false && "client<->client links do not exist");
  return kUnreachable;
}

void SimTransport::enable_jitter(const JitterSpec& spec, std::uint64_t seed) {
  MP_EXPECTS(spec.relative >= 0.0 && spec.absolute_ms >= 0.0);
  // A weighted cohort delivery cannot replay w per-member jitter draws.
  MP_EXPECTS(directory_ == nullptr);
  jitter_.emplace(Jitter{spec, seed});
  reset_streams(/*jitter=*/true, /*coins=*/false);
}

void SimTransport::disable_jitter() {
  jitter_.reset();
  reset_streams(/*jitter=*/true, /*coins=*/false);
}

void SimTransport::set_fault_plan(FaultPlan* plan) {
  fault_plan_ = plan;
  reset_streams(/*jitter=*/false, /*coins=*/true);
}

void SimTransport::reset_streams(bool jitter, bool coins) {
  for (auto& lane : lanes_) {
    if (jitter) lane->jitter_streams.clear();
    if (coins) lane->coin_streams.clear();
  }
}

Millis SimTransport::jittered(ShardLane& lane, Address from, Address to,
                              Millis delay) {
  const std::uint64_t key = link_key(from, to);
  auto it = lane.jitter_streams.find(key);
  if (it == lane.jitter_streams.end()) {
    it = lane.jitter_streams
             .emplace(key, Rng(derive_stream_seed(jitter_->seed, key)))
             .first;
  }
  Rng& stream = it->second;
  return delay * stream.uniform(1.0, 1.0 + jitter_->spec.relative) +
         std::abs(stream.normal(0.0, jitter_->spec.absolute_ms));
}

Rng& SimTransport::coin_stream(ShardLane& lane, Address from, Address to) {
  const std::uint64_t key = link_key(from, to);
  auto it = lane.coin_streams.find(key);
  if (it == lane.coin_streams.end()) {
    it = lane.coin_streams
             .emplace(key, Rng(derive_stream_seed(
                               fault_plan_->seed() ^ kCoinDomain, key)))
             .first;
  }
  return it->second;
}

std::uint64_t SimTransport::publish_drop_count(TopicId topic) const {
  std::uint64_t total = 0;
  for (const auto& lane : lanes_) {
    const auto it = lane->publish_drops.find(topic.value());
    if (it != lane->publish_drops.end()) total += it->second;
  }
  return total;
}

const CostLedger& SimTransport::ledger() const {
  for (std::size_t r = 0; r < bills_.size(); ++r) {
    ledger_.inter_region_bytes[r] = bills_[r].inter_region;
    ledger_.internet_bytes[r] = bills_[r].internet;
  }
  return ledger_;
}

Dollars SimTransport::topic_cost(TopicId topic) const {
  // Region-id order: a deterministic merge of the per-region byte totals,
  // converted to dollars at read time — one multiply per (region, tariff),
  // so the result is independent of how many sends accumulated the bytes.
  Dollars total = 0.0;
  for (std::size_t r = 0; r < bills_.size(); ++r) {
    const RegionBill& bill = bills_[r];
    const geo::Region& region =
        catalog_->at(RegionId{static_cast<std::int32_t>(r)});
    const auto inter = bill.topic_inter.find(topic);
    if (inter != bill.topic_inter.end()) {
      total += static_cast<double>(inter->second) * region.alpha_per_byte();
    }
    const auto internet = bill.topic_internet.find(topic);
    if (internet != bill.topic_internet.end()) {
      total += static_cast<double>(internet->second) * region.beta_per_byte();
    }
  }
  return total;
}

Dollars SimTransport::topic_cost_total() const {
  Dollars total = 0.0;
  for (std::size_t r = 0; r < bills_.size(); ++r) {
    const RegionBill& bill = bills_[r];
    const geo::Region& region =
        catalog_->at(RegionId{static_cast<std::int32_t>(r)});
    for (const auto& [topic, bytes] : bill.topic_inter) {
      total += static_cast<double>(bytes) * region.alpha_per_byte();
    }
    for (const auto& [topic, bytes] : bill.topic_internet) {
      total += static_cast<double>(bytes) * region.beta_per_byte();
    }
  }
  return total;
}

void SimTransport::set_region_down(RegionId region, bool down) {
  MP_EXPECTS(region.valid() && region.index() < region_down_.size());
  region_down_[region.index()] = down;
}

bool SimTransport::region_down(RegionId region) const {
  MP_EXPECTS(region.valid() && region.index() < region_down_.size());
  return region_down_[region.index()];
}

void SimTransport::deliver(const DeliveryEvent& event) {
  const std::size_t shard = sim_->current_shard();
  // Every counter moves by the message's weight: a cohort delivery stands
  // for `weight` per-client copies (weight is 1 for ordinary traffic, so
  // this is the seed arithmetic outside cohort mode).
  const std::uint32_t weight = event.msg.weight;
  // Drop-on-arrival: the destination region died while this message was in
  // flight. The bytes were billed at departure (they left the sender), but
  // a dead datacenter processes nothing.
  if (event.to.kind == Address::Kind::kRegion &&
      region_down(event.to.as_region())) {
    dropped_.add(shard, weight);
    dropped_dead_arrival_.add(shard, weight);
    if (event.msg.type == wire::MessageType::kPublish) {
      lane(shard).publish_drops[event.msg.topic.value()] += weight;
    }
    return;
  }
  const Handler* handler = find_handler(event.to);
  if (handler == nullptr) {
    dropped_.add(shard, weight);
    dropped_unregistered_.add(shard, weight);
    if (event.msg.type == wire::MessageType::kPublish) {
      lane(shard).publish_drops[event.msg.topic.value()] += weight;
    }
    return;
  }
  delivered_.add(shard, weight);
  // Mark the slot as executing so register_handler can reject replacing it
  // mid-call (the deque keeps the reference stable against table growth).
  ShardLane& self = lane(shard);
  const Handler* previous = self.active_handler;
  self.active_handler = handler;
  (*handler)(event.msg);
  self.active_handler = previous;
}

void SimTransport::send(Address from, Address to, wire::Message msg) {
  if (to.kind == Address::Kind::kCohort) {
    // The caller (a broker or region manager) set msg.weight to the number
    // of per-client copies this send stands for.
    send_cohort(from, to, msg, msg.weight);
    return;
  }
  const std::size_t shard = sim_->current_shard();
  const std::uint32_t weight = msg.weight;
  // Outage handling: a dead region neither sends nor receives. A dead
  // sender emits nothing (and bills nothing); a message towards a dead
  // destination is lost in transit.
  if (from.kind == Address::Kind::kRegion && region_down(from.as_region())) {
    dropped_.add(shard, weight);
    dropped_sender_down_.add(shard, weight);
    return;
  }
  if (to.kind == Address::Kind::kRegion && region_down(to.as_region())) {
    sent_.add(shard, weight);
    dropped_.add(shard, weight);
    if (msg.type == wire::MessageType::kPublish) {
      lane(shard).publish_drops[msg.topic.value()] += weight;
    }
    return;
  }

  // Injected faults: a partitioned or coin-flipped-away message is lost in
  // transit (sent, dropped, not billed — like a send towards a dead
  // region); delay rules stretch the latency below. The sender's OWNER
  // shard keys the stream lane: every send on a link draws from one stream
  // in per-link send order, whether it runs inside a window (where the
  // executing shard IS the owner shard) or from the quiescent control
  // plane — the link's position never forks across lanes.
  ShardLane& sender_lane = lane(sim_->owner_shard(from));
  FaultPlan::Outcome fault;
  if (fault_plan_ != nullptr &&
      (!reliable_control_ || is_data_kind(msg.type))) {
    if (from.kind == Address::Kind::kCohort) {
      // A weighted control send stands for `weight` client-originated
      // sends, each of which would draw from its own per-client link
      // stream; no generated schedule installs client-originated rules, so
      // reject them rather than replay them wrong.
      MP_EXPECTS(!fault_plan_->may_affect_client_sends(to, sim_->now()) &&
                 "client-originated fault rules are unsupported in cohort "
                 "mode");
      // No rule can match this hop: the per-client loop would have
      // consulted the plan and drawn nothing.
    } else {
      fault = fault_plan_->apply(from, to, sim_->now(),
                                 coin_stream(sender_lane, from, to));
      if (fault.dropped) {
        sent_.add(shard, weight);
        dropped_.add(shard, weight);
        dropped_faulted_.add(shard, weight);
        if (msg.type == wire::MessageType::kPublish) {
          lane(shard).publish_drops[msg.topic.value()] += weight;
        }
        return;
      }
    }
  }

  // Bill egress at the sender's tariff before the message is even delivered:
  // the bytes leave the region regardless of what happens downstream.
  if (from.kind == Address::Kind::kRegion) {
    const Bytes billable = msg.billable_bytes() * weight;
    RegionBill& bill = bills_[from.as_region().index()];
    if (to.kind == Address::Kind::kRegion) {
      bill.inter_region += billable;
      bill.topic_inter[msg.topic] += billable;
    } else {
      bill.internet += billable;
      bill.topic_internet[msg.topic] += billable;
    }
  }

  Millis delay = latency(from, to);
  if (jitter_.has_value()) {
    delay = jittered(sender_lane, from, to, delay);
  }
  delay = delay * fault.delay_factor + fault.delay_extra_ms;
  sent_.add(shard, weight);
  if (fast_path_) {
    sim_->schedule_delivery_after(delay, *this, from, to, msg);
    return;
  }
  sim_->schedule_after(delay, [this, to, msg = std::move(msg)]() {
    const std::size_t arrival_shard = sim_->current_shard();
    if (to.kind == Address::Kind::kRegion && region_down(to.as_region())) {
      dropped_.add(arrival_shard, msg.weight);
      dropped_dead_arrival_.add(arrival_shard, msg.weight);
      if (msg.type == wire::MessageType::kPublish) {
        lane(arrival_shard).publish_drops[msg.topic.value()] += msg.weight;
      }
      return;
    }
    const auto it = handlers_.find(to);
    if (it == handlers_.end()) {
      dropped_.add(arrival_shard, msg.weight);
      dropped_unregistered_.add(arrival_shard, msg.weight);
      if (msg.type == wire::MessageType::kPublish) {
        lane(arrival_shard).publish_drops[msg.topic.value()] += msg.weight;
      }
      return;
    }
    delivered_.add(arrival_shard, msg.weight);
    it->second(msg);
  });
}

void SimTransport::send_cohort(Address from, Address to,
                               const wire::Message& msg,
                               std::uint32_t weight) {
  MP_EXPECTS(from.kind == Address::Kind::kRegion);
  MP_EXPECTS(directory_ != nullptr && fast_path_ && !jitter_.has_value());
  const std::size_t shard = sim_->current_shard();
  if (region_down(from.as_region())) {
    dropped_.add(shard, weight);
    dropped_sender_down_.add(shard, weight);
    return;
  }
  const std::int32_t flock = to.as_flock();
  const Millis base = directory_->flock_latency(flock, from.as_region());
  RegionBill& bill = bills_[from.as_region().index()];
  const Bytes billable = msg.billable_bytes();

  if (msg.type == wire::MessageType::kReplayBatch && msg.subscriber.valid()) {
    // Member-addressed replay: one member asked, one member is served —
    // exactly the single send() the per-client plane performs, drawing the
    // member's own region->client coin.
    const Address member_addr = Address::client(msg.subscriber);
    FaultPlan::Outcome fault;
    if (fault_plan_ != nullptr) {  // kReplayBatch is a data kind
      ShardLane& sender_lane = lane(sim_->owner_shard(from));
      fault = fault_plan_->apply(from, member_addr, sim_->now(),
                                 coin_stream(sender_lane, from, member_addr));
      if (fault.dropped) {
        sent_.add(shard);
        dropped_.add(shard);
        dropped_faulted_.add(shard);
        return;
      }
    }
    bill.internet += billable;
    bill.topic_internet[msg.topic] += billable;
    const Millis delay = base * fault.delay_factor + fault.delay_extra_ms;
    sent_.add(shard);
    wire::Message copy = msg;
    copy.weight = 1;
    sim_->schedule_delivery_after(delay, *this, from, to, copy);
    return;
  }

  if (fault_plan_ != nullptr &&
      (!reliable_control_ || is_data_kind(msg.type)) &&
      fault_plan_->may_affect_client_deliveries(from, sim_->now())) {
    // Exact per-member replay: each member's drop coin comes from its own
    // region->client link stream — the very streams the per-client plane
    // consumes — and survivors travel as weight-1 deliveries addressed to
    // the flock with the member stamped in `subscriber`.
    ShardLane& sender_lane = lane(sim_->owner_shard(from));
    wire::Message split = msg;
    split.weight = 1;
    for (const ClientId member : directory_->flock_members(flock)) {
      const Address member_addr = Address::client(member);
      const FaultPlan::Outcome fault = fault_plan_->apply(
          from, member_addr, sim_->now(),
          coin_stream(sender_lane, from, member_addr));
      if (fault.dropped) {
        sent_.add(shard);
        dropped_.add(shard);
        dropped_faulted_.add(shard);
        continue;
      }
      bill.internet += billable;
      bill.topic_internet[split.topic] += billable;
      const Millis delay = base * fault.delay_factor + fault.delay_extra_ms;
      sent_.add(shard);
      split.subscriber = member;
      sim_->schedule_delivery_after(delay, *this, from, to, split);
    }
    return;
  }

  // Whole-flock fast path: no active rule can touch region->client links,
  // so the per-client loop would have drawn nothing and scheduled `weight`
  // identical copies; one weighted delivery records the same books. The
  // delay expression matches the per-client path bit for bit (x * 1 + 0 is
  // exact for the positive latencies the matrices hold).
  if (weight == 0) return;  // a retired flock has nobody to deliver to
  bill.internet += billable * weight;
  bill.topic_internet[msg.topic] += billable * weight;
  const Millis delay = base * 1.0 + 0.0;
  sent_.add(shard, weight);
  wire::Message whole = msg;
  whole.weight = weight;
  whole.subscriber = ClientId{-1};  // whole-flock sentinel
  sim_->schedule_delivery_after(delay, *this, from, to, whole);
}

void SimTransport::send_batch(Address from, std::span<const Address> targets,
                              const wire::Message& msg,
                              wire::MessageType stamped_type) {
  if (targets.empty()) return;
  if (!fast_path_) {
    // Reference path: the seed data plane materialised one message copy per
    // peer and pushed each through send() — per-target billing, map handler
    // lookup, and a heap-allocating callback per hop.
    wire::Message copy = msg;
    copy.type = stamped_type;
    for (const Address to : targets) {
      copy.subscriber = to.kind == Address::Kind::kClient ? to.as_client()
                                                          : msg.subscriber;
      send(from, to, copy);
    }
    return;
  }

  const std::size_t shard = sim_->current_shard();
  // Stream lane by the sender's owner shard, as in send(): one stream per
  // link, regardless of where the call executes.
  ShardLane& sender_lane = lane(sim_->owner_shard(from));
  const bool from_region = from.kind == Address::Kind::kRegion;
  const std::uint32_t weight = msg.weight;
  if (from_region && region_down(from.as_region())) {
    // Exactly what the per-target send() loop records: one drop each,
    // nothing sent, nothing billed. Cohort targets weigh their member
    // count, like the per-target loop would.
    std::uint64_t copies = 0;
    for (const Address to : targets) {
      copies += to.kind == Address::Kind::kCohort
                    ? directory_->flock_weight(to.as_flock())
                    : weight;
    }
    dropped_.add(shard, copies);
    dropped_sender_down_.add(shard, copies);
    return;
  }

  wire::Message stamped = msg;
  stamped.type = stamped_type;

  // Sender-side billing facts are shared by the whole batch; the per-target
  // += order below matches the per-target send() loop bit for bit.
  const Bytes billable_bytes = stamped.billable_bytes() * weight;
  RegionBill* bill = nullptr;
  Bytes* topic_inter = nullptr;
  Bytes* topic_internet = nullptr;
  if (from_region) {
    bill = &bills_[from.as_region().index()];
    topic_inter = &bill->topic_inter[stamped.topic];
    topic_internet = &bill->topic_internet[stamped.topic];
  }

  for (const Address to : targets) {
    if (to.kind == Address::Kind::kCohort) {
      // One weighted hop (or an exact per-member replay inside fault
      // windows) standing for the flock's member count.
      send_cohort(from, to, stamped, directory_->flock_weight(to.as_flock()));
      continue;
    }
    if (to.kind == Address::Kind::kRegion && region_down(to.as_region())) {
      sent_.add(shard, weight);
      dropped_.add(shard, weight);
      continue;
    }
    // Same consult position as send(): after the dead-region checks, before
    // billing, one apply() per target — so fault-coin and jitter draws line
    // up exactly with the per-target reference loop.
    FaultPlan::Outcome fault;
    if (fault_plan_ != nullptr &&
        (!reliable_control_ || is_data_kind(stamped_type))) {
      fault = fault_plan_->apply(from, to, sim_->now(),
                                 coin_stream(sender_lane, from, to));
      if (fault.dropped) {
        sent_.add(shard, weight);
        dropped_.add(shard, weight);
        dropped_faulted_.add(shard, weight);
        continue;
      }
    }
    if (from_region) {
      if (to.kind == Address::Kind::kRegion) {
        bill->inter_region += billable_bytes;
        *topic_inter += billable_bytes;
      } else {
        bill->internet += billable_bytes;
        *topic_internet += billable_bytes;
      }
    }
    Millis delay = latency(from, to);
    if (jitter_.has_value()) {
      delay = jittered(sender_lane, from, to, delay);
    }
    delay = delay * fault.delay_factor + fault.delay_extra_ms;
    sent_.add(shard, weight);
    // Per-target stamp; region targets keep the original subscriber so a
    // mixed batch cannot leak one client's stamp into a broker-bound copy.
    stamped.subscriber = to.kind == Address::Kind::kClient ? to.as_client()
                                                           : msg.subscriber;
    sim_->schedule_delivery_after(delay, *this, from, to, stamped);
  }
}

}  // namespace multipub::net
