#include "net/transport.h"

#include <cmath>
#include <utility>

#include "common/assert.h"

namespace multipub::net {

Dollars CostLedger::total_cost(const geo::RegionCatalog& catalog) const {
  MP_EXPECTS(catalog.size() == inter_region_bytes.size());
  Dollars total = 0.0;
  for (const auto& region : catalog.all()) {
    total += static_cast<double>(inter_region_bytes[region.id.index()]) *
             region.alpha_per_byte();
    total += static_cast<double>(internet_bytes[region.id.index()]) *
             region.beta_per_byte();
  }
  return total;
}

SimTransport::SimTransport(Simulator& sim, const geo::RegionCatalog& catalog,
                           const geo::InterRegionLatency& backbone,
                           const geo::ClientLatencyMap& clients)
    : sim_(&sim),
      catalog_(&catalog),
      backbone_(&backbone),
      clients_(&clients),
      region_down_(catalog.size(), false),
      ledger_(catalog.size()) {
  MP_EXPECTS(catalog.size() == backbone.size());
  MP_EXPECTS(catalog.size() == clients.n_regions());
}

void SimTransport::register_handler(Address address, Handler handler) {
  MP_EXPECTS(handler != nullptr);
  handlers_[address] = std::move(handler);
}

Millis SimTransport::latency(Address from, Address to) const {
  using Kind = Address::Kind;
  if (from.kind == Kind::kRegion && to.kind == Kind::kRegion) {
    return backbone_->at(from.as_region(), to.as_region());
  }
  if (from.kind == Kind::kClient && to.kind == Kind::kRegion) {
    return clients_->at(from.as_client(), to.as_region());
  }
  if (from.kind == Kind::kRegion && to.kind == Kind::kClient) {
    return clients_->at(to.as_client(), from.as_region());
  }
  MP_EXPECTS(false && "client<->client links do not exist");
  return kUnreachable;
}

void SimTransport::enable_jitter(const JitterSpec& spec, std::uint64_t seed) {
  MP_EXPECTS(spec.relative >= 0.0 && spec.absolute_ms >= 0.0);
  jitter_.emplace(Jitter{spec, Rng(seed)});
}

Dollars SimTransport::topic_cost(TopicId topic) const {
  const auto it = topic_cost_.find(topic);
  return it == topic_cost_.end() ? 0.0 : it->second;
}

void SimTransport::set_region_down(RegionId region, bool down) {
  MP_EXPECTS(region.valid() && region.index() < region_down_.size());
  region_down_[region.index()] = down;
}

bool SimTransport::region_down(RegionId region) const {
  MP_EXPECTS(region.valid() && region.index() < region_down_.size());
  return region_down_[region.index()];
}

void SimTransport::send(Address from, Address to, wire::Message msg) {
  // Outage handling: a dead region neither sends nor receives. A dead
  // sender emits nothing (and bills nothing); a message towards a dead
  // destination is lost in transit.
  if (from.kind == Address::Kind::kRegion && region_down(from.as_region())) {
    ++dropped_;
    return;
  }
  if (to.kind == Address::Kind::kRegion && region_down(to.as_region())) {
    ++sent_;
    ++dropped_;
    return;
  }

  // Bill egress at the sender's tariff before the message is even delivered:
  // the bytes leave the region regardless of what happens downstream.
  if (from.kind == Address::Kind::kRegion) {
    const Bytes billable = msg.billable_bytes();
    const geo::Region& region = catalog_->at(from.as_region());
    if (to.kind == Address::Kind::kRegion) {
      ledger_.inter_region_bytes[from.as_region().index()] += billable;
      topic_cost_[msg.topic] +=
          static_cast<double>(billable) * region.alpha_per_byte();
    } else {
      ledger_.internet_bytes[from.as_region().index()] += billable;
      topic_cost_[msg.topic] +=
          static_cast<double>(billable) * region.beta_per_byte();
    }
  }

  Millis delay = latency(from, to);
  if (jitter_.has_value()) {
    delay = delay * jitter_->rng.uniform(1.0, 1.0 + jitter_->spec.relative) +
            std::abs(jitter_->rng.normal(0.0, jitter_->spec.absolute_ms));
  }
  ++sent_;
  sim_->schedule_after(delay, [this, to, msg = std::move(msg)]() {
    const auto it = handlers_.find(to);
    if (it == handlers_.end()) {
      ++dropped_;
      return;
    }
    it->second(msg);
  });
}

}  // namespace multipub::net
