#include "net/transport.h"

#include <cmath>
#include <type_traits>
#include <utility>

#include "common/assert.h"

namespace multipub::net {

static_assert(std::is_trivially_copyable_v<DeliveryEvent>,
              "the typed event fast path relies on DeliveryEvent being "
              "plain copyable data (no per-hop heap traffic)");

Dollars CostLedger::total_cost(const geo::RegionCatalog& catalog) const {
  MP_EXPECTS(catalog.size() == inter_region_bytes.size());
  Dollars total = 0.0;
  for (const auto& region : catalog.all()) {
    total += static_cast<double>(inter_region_bytes[region.id.index()]) *
             region.alpha_per_byte();
    total += static_cast<double>(internet_bytes[region.id.index()]) *
             region.beta_per_byte();
  }
  return total;
}

SimTransport::SimTransport(Simulator& sim, const geo::RegionCatalog& catalog,
                           const geo::InterRegionLatency& backbone,
                           const geo::ClientLatencyMap& clients)
    : sim_(&sim),
      catalog_(&catalog),
      backbone_(&backbone),
      clients_(&clients),
      region_handlers_(catalog.size()),
      region_down_(catalog.size(), false),
      ledger_(catalog.size()) {
  MP_EXPECTS(catalog.size() == backbone.size());
  MP_EXPECTS(catalog.size() == clients.n_regions());
}

void SimTransport::set_fast_path(bool on) {
  fast_path_ = on;
  sim_->set_legacy_scheduling(!on);
}

void SimTransport::register_handler(Address address, Handler handler) {
  MP_EXPECTS(handler != nullptr);
  MP_EXPECTS(address.id >= 0);
  const auto index = static_cast<std::size_t>(address.id);
  auto& dense = address.kind == Address::Kind::kClient ? client_handlers_
                                                       : region_handlers_;
  if (index >= dense.size()) dense.resize(index + 1);
  // Growing the deque above is safe mid-delivery (existing elements stay
  // put), but overwriting the std::function deliver() is currently invoking
  // would destroy it under its own feet.
  MP_EXPECTS(&dense[index] != active_handler_ &&
             "cannot replace a handler from within its own delivery");
  dense[index] = handler;
  handlers_[address] = std::move(handler);
}

const SimTransport::Handler* SimTransport::find_handler(
    Address address) const {
  const auto& dense = address.kind == Address::Kind::kClient
                          ? client_handlers_
                          : region_handlers_;
  const auto index = static_cast<std::size_t>(address.id);
  if (index >= dense.size() || !dense[index]) return nullptr;
  return &dense[index];
}

Millis SimTransport::latency(Address from, Address to) const {
  using Kind = Address::Kind;
  if (from.kind == Kind::kRegion && to.kind == Kind::kRegion) {
    return backbone_->at(from.as_region(), to.as_region());
  }
  if (from.kind == Kind::kClient && to.kind == Kind::kRegion) {
    return clients_->at(from.as_client(), to.as_region());
  }
  if (from.kind == Kind::kRegion && to.kind == Kind::kClient) {
    return clients_->at(to.as_client(), from.as_region());
  }
  MP_EXPECTS(false && "client<->client links do not exist");
  return kUnreachable;
}

void SimTransport::enable_jitter(const JitterSpec& spec, std::uint64_t seed) {
  MP_EXPECTS(spec.relative >= 0.0 && spec.absolute_ms >= 0.0);
  jitter_.emplace(Jitter{spec, Rng(seed)});
}

Dollars SimTransport::topic_cost(TopicId topic) const {
  const auto it = topic_cost_.find(topic);
  return it == topic_cost_.end() ? 0.0 : it->second;
}

Dollars SimTransport::topic_cost_total() const {
  Dollars total = 0.0;
  for (const auto& [topic, dollars] : topic_cost_) total += dollars;
  return total;
}

void SimTransport::set_region_down(RegionId region, bool down) {
  MP_EXPECTS(region.valid() && region.index() < region_down_.size());
  region_down_[region.index()] = down;
}

bool SimTransport::region_down(RegionId region) const {
  MP_EXPECTS(region.valid() && region.index() < region_down_.size());
  return region_down_[region.index()];
}

void SimTransport::deliver(const DeliveryEvent& event) {
  // Drop-on-arrival: the destination region died while this message was in
  // flight. The bytes were billed at departure (they left the sender), but
  // a dead datacenter processes nothing.
  if (event.to.kind == Address::Kind::kRegion &&
      region_down(event.to.as_region())) {
    ++dropped_;
    ++dropped_dead_arrival_;
    return;
  }
  const Handler* handler = find_handler(event.to);
  if (handler == nullptr) {
    ++dropped_;
    ++dropped_unregistered_;
    return;
  }
  ++delivered_;
  // Mark the slot as executing so register_handler can reject replacing it
  // mid-call (the deque keeps the reference stable against table growth).
  const Handler* previous = active_handler_;
  active_handler_ = handler;
  (*handler)(event.msg);
  active_handler_ = previous;
}

void SimTransport::send(Address from, Address to, wire::Message msg) {
  // Outage handling: a dead region neither sends nor receives. A dead
  // sender emits nothing (and bills nothing); a message towards a dead
  // destination is lost in transit.
  if (from.kind == Address::Kind::kRegion && region_down(from.as_region())) {
    ++dropped_;
    ++dropped_sender_down_;
    return;
  }
  if (to.kind == Address::Kind::kRegion && region_down(to.as_region())) {
    ++sent_;
    ++dropped_;
    return;
  }

  // Injected faults: a partitioned or coin-flipped-away message is lost in
  // transit (sent, dropped, not billed — like a send towards a dead
  // region); delay rules stretch the latency below.
  FaultPlan::Outcome fault;
  if (fault_plan_ != nullptr) {
    fault = fault_plan_->apply(from, to, sim_->now());
    if (fault.dropped) {
      ++sent_;
      ++dropped_;
      ++dropped_faulted_;
      return;
    }
  }

  // Bill egress at the sender's tariff before the message is even delivered:
  // the bytes leave the region regardless of what happens downstream.
  if (from.kind == Address::Kind::kRegion) {
    const Bytes billable = msg.billable_bytes();
    const geo::Region& region = catalog_->at(from.as_region());
    if (to.kind == Address::Kind::kRegion) {
      ledger_.inter_region_bytes[from.as_region().index()] += billable;
      topic_cost_[msg.topic] +=
          static_cast<double>(billable) * region.alpha_per_byte();
    } else {
      ledger_.internet_bytes[from.as_region().index()] += billable;
      topic_cost_[msg.topic] +=
          static_cast<double>(billable) * region.beta_per_byte();
    }
  }

  Millis delay = latency(from, to);
  if (jitter_.has_value()) {
    delay = delay * jitter_->rng.uniform(1.0, 1.0 + jitter_->spec.relative) +
            std::abs(jitter_->rng.normal(0.0, jitter_->spec.absolute_ms));
  }
  delay = delay * fault.delay_factor + fault.delay_extra_ms;
  ++sent_;
  if (fast_path_) {
    sim_->schedule_delivery_after(delay, *this, from, to, msg);
    return;
  }
  sim_->schedule_after(delay, [this, to, msg = std::move(msg)]() {
    if (to.kind == Address::Kind::kRegion && region_down(to.as_region())) {
      ++dropped_;
      ++dropped_dead_arrival_;
      return;
    }
    const auto it = handlers_.find(to);
    if (it == handlers_.end()) {
      ++dropped_;
      ++dropped_unregistered_;
      return;
    }
    ++delivered_;
    it->second(msg);
  });
}

void SimTransport::send_batch(Address from, std::span<const Address> targets,
                              const wire::Message& msg,
                              wire::MessageType stamped_type) {
  if (targets.empty()) return;
  if (!fast_path_) {
    // Reference path: the seed data plane materialised one message copy per
    // peer and pushed each through send() — per-target billing, map handler
    // lookup, and a heap-allocating callback per hop.
    wire::Message copy = msg;
    copy.type = stamped_type;
    for (const Address to : targets) {
      copy.subscriber = to.kind == Address::Kind::kClient ? to.as_client()
                                                          : msg.subscriber;
      send(from, to, copy);
    }
    return;
  }

  const bool from_region = from.kind == Address::Kind::kRegion;
  if (from_region && region_down(from.as_region())) {
    // Exactly what the per-target send() loop records: one drop each,
    // nothing sent, nothing billed.
    dropped_ += targets.size();
    dropped_sender_down_ += targets.size();
    return;
  }

  wire::Message stamped = msg;
  stamped.type = stamped_type;

  // Sender-side billing facts are shared by the whole batch; the per-target
  // += order below matches the per-target send() loop bit for bit.
  const double billable = static_cast<double>(stamped.billable_bytes());
  const Bytes billable_bytes = stamped.billable_bytes();
  std::size_t from_index = 0;
  double alpha = 0.0, beta = 0.0;
  Dollars* topic_dollars = nullptr;
  if (from_region) {
    const geo::Region& region = catalog_->at(from.as_region());
    from_index = from.as_region().index();
    alpha = region.alpha_per_byte();
    beta = region.beta_per_byte();
    topic_dollars = &topic_cost_[stamped.topic];
  }

  for (const Address to : targets) {
    if (to.kind == Address::Kind::kRegion && region_down(to.as_region())) {
      ++sent_;
      ++dropped_;
      continue;
    }
    // Same consult position as send(): after the dead-region checks, before
    // billing, one apply() per target — so fault-RNG and jitter draws line
    // up exactly with the per-target reference loop.
    FaultPlan::Outcome fault;
    if (fault_plan_ != nullptr) {
      fault = fault_plan_->apply(from, to, sim_->now());
      if (fault.dropped) {
        ++sent_;
        ++dropped_;
        ++dropped_faulted_;
        continue;
      }
    }
    if (from_region) {
      if (to.kind == Address::Kind::kRegion) {
        ledger_.inter_region_bytes[from_index] += billable_bytes;
        *topic_dollars += billable * alpha;
      } else {
        ledger_.internet_bytes[from_index] += billable_bytes;
        *topic_dollars += billable * beta;
      }
    }
    Millis delay = latency(from, to);
    if (jitter_.has_value()) {
      delay = delay * jitter_->rng.uniform(1.0, 1.0 + jitter_->spec.relative) +
              std::abs(jitter_->rng.normal(0.0, jitter_->spec.absolute_ms));
    }
    delay = delay * fault.delay_factor + fault.delay_extra_ms;
    ++sent_;
    // Per-target stamp; region targets keep the original subscriber so a
    // mixed batch cannot leak one client's stamp into a broker-bound copy.
    stamped.subscriber = to.kind == Address::Kind::kClient ? to.as_client()
                                                           : msg.subscriber;
    sim_->schedule_delivery_after(delay, *this, from, to, stamped);
  }
}

}  // namespace multipub::net
