// Transport-agnostic middleware interfaces.
//
// The middleware layers — Broker, RegionManager, the client endpoints and
// the cohort pool — talk to the network through two narrow interfaces
// instead of a concrete transport:
//
//   Clock : time + deferred execution. Virtual milliseconds on the
//           simulator, wall-clock milliseconds on a live node. Everything
//           time-dependent in the middleware (drain windows, handover
//           grace, delivery timestamps) goes through it, which is what
//           makes the same Broker run under virtual and real time.
//   Bus   : message delivery. register_handler subscribes an Address to
//           inbound traffic; send/send_batch move wire::Messages between
//           addresses. The cohort directory hangs off the bus because the
//           weighted fan-out contract (DESIGN.md §12) is a property of the
//           messaging plane, not of any one component.
//
// Two implementations exist: Simulator/SimTransport (the deterministic
// digital twin — discrete events, latency matrices, cost accounting) and
// SocketTransport (real sockets over epoll, wall time, one process per
// node). The interfaces were extracted from SimTransport verbatim, so the
// simulated plane compiles unchanged and behaves bit-identically through
// them.
#pragma once

#include <functional>
#include <span>

#include "common/types.h"
#include "net/address.h"
#include "net/cohort_directory.h"
#include "wire/message.h"

namespace multipub::net {

/// Time source and timer service the middleware schedules against.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in milliseconds. Virtual time on the simulator (ms since
  /// simulation start), wall time on a live node (ms since node start).
  [[nodiscard]] virtual Millis now() const = 0;

  /// Runs `action` `delay` ms from now. Pre: delay >= 0.
  virtual void schedule_after(Millis delay, std::function<void()> action) = 0;
};

/// Message delivery between addresses.
class Bus {
 public:
  using Handler = std::function<void(const wire::Message&)>;

  virtual ~Bus() = default;

  /// Installs (or replaces) the message handler for an address.
  virtual void register_handler(Address address, Handler handler) = 0;

  /// Removes the handler for an address; deliveries to it afterwards count
  /// as dropped.
  virtual void unregister_handler(Address address) = 0;

  /// Delivers `msg` from `from` to `to` (asynchronously: the handler runs
  /// from the event loop, never inside the send).
  virtual void send(Address from, Address to, wire::Message msg) = 0;

  /// Fan-out form of send(): one delivery per target from a single shared
  /// message, stamping `type` to `stamped_type` and — for client and cohort
  /// targets — `subscriber` to the target. Equivalent to the per-target
  /// copy-and-send loop; the span only needs to live for the call.
  virtual void send_batch(Address from, std::span<const Address> targets,
                          const wire::Message& msg,
                          wire::MessageType stamped_type) = 0;

  /// Installs (or, with nullptr, clears) the directory that resolves
  /// cohort addresses into weighted member sets. Borrowed; must outlive
  /// the bus or be cleared first.
  virtual void set_cohort_directory(const CohortDirectory* directory) = 0;
  [[nodiscard]] virtual const CohortDirectory* cohort_directory() const = 0;
};

}  // namespace multipub::net
