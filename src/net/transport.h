// Latency-aware, cost-accounting message transport over the simulator.
//
// Every node of the live system — clients, per-region brokers — has an
// Address. send() looks the one-way latency up (client<->region in L,
// region<->region in L^R), schedules delivery on the simulator, and bills
// the message's billable bytes against the sending region's tariff:
//   region -> region : alpha(from)   (inter-region rate)
//   region -> client : beta(from)    (Internet rate)
//   client -> region : free          (cloud ingress is not billed)
// The resulting CostLedger is what the live-vs-model property tests compare
// against Equations 3/4.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "geo/latency.h"
#include "geo/region.h"
#include "net/simulator.h"
#include "wire/message.h"

namespace multipub::net {

/// Node address: either a client endpoint or a region's broker.
struct Address {
  enum class Kind : std::uint8_t { kClient, kRegion };
  Kind kind = Kind::kClient;
  std::int32_t id = -1;

  [[nodiscard]] static Address client(ClientId c) {
    return {Kind::kClient, c.value()};
  }
  [[nodiscard]] static Address region(RegionId r) {
    return {Kind::kRegion, r.value()};
  }

  [[nodiscard]] ClientId as_client() const { return ClientId{id}; }
  [[nodiscard]] RegionId as_region() const { return RegionId{id}; }

  friend bool operator==(Address, Address) = default;
};

struct AddressHash {
  std::size_t operator()(Address a) const noexcept {
    return (static_cast<std::size_t>(a.kind) << 32) ^
           static_cast<std::size_t>(static_cast<std::uint32_t>(a.id));
  }
};

/// Per-region egress accounting.
struct CostLedger {
  std::vector<Bytes> inter_region_bytes;  ///< indexed by RegionId
  std::vector<Bytes> internet_bytes;      ///< indexed by RegionId

  explicit CostLedger(std::size_t n_regions)
      : inter_region_bytes(n_regions, 0), internet_bytes(n_regions, 0) {}

  /// Dollar total under the catalog's tariffs (Eq. 3/4 shape).
  [[nodiscard]] Dollars total_cost(const geo::RegionCatalog& catalog) const;
};

/// The simulated network. Borrows the simulator and matrices; they must
/// outlive the transport.
class SimTransport {
 public:
  using Handler = std::function<void(const wire::Message&)>;

  SimTransport(Simulator& sim, const geo::RegionCatalog& catalog,
               const geo::InterRegionLatency& backbone,
               const geo::ClientLatencyMap& clients);

  /// Installs (or replaces) the message handler for an address.
  void register_handler(Address address, Handler handler);

  /// Schedules delivery of `msg` to `to` after the one-way latency from
  /// `from`. Bills billable_bytes() against `from` when `from` is a region.
  /// Messages to unregistered addresses are counted as dropped (billing
  /// still applies — the bytes left the region).
  void send(Address from, Address to, wire::Message msg);

  /// One-way latency between two addresses. Client<->client links do not
  /// exist in the architecture (everything goes through a broker).
  [[nodiscard]] Millis latency(Address from, Address to) const;

  /// Fails (or restores) a region: while down, messages from or to the
  /// region vanish — nothing egresses a dead region, so nothing is billed
  /// for it either; messages towards it are counted as dropped.
  void set_region_down(RegionId region, bool down);
  [[nodiscard]] bool region_down(RegionId region) const;

  /// Enables per-message latency jitter: each delivery takes
  /// base * U(1, 1 + relative) + |N(0, absolute_ms)| instead of exactly the
  /// matrix value. Default off (deterministic), which is what the analytic
  /// equivalence tests rely on. Jitter draws come from a transport-owned
  /// seeded stream, so runs stay reproducible.
  struct JitterSpec {
    double relative = 0.0;     ///< multiplicative spread, e.g. 0.1 = +0..10 %
    double absolute_ms = 0.0;  ///< additive half-normal spread
  };
  void enable_jitter(const JitterSpec& spec, std::uint64_t seed);
  void disable_jitter() { jitter_.reset(); }

  [[nodiscard]] const CostLedger& ledger() const { return ledger_; }
  [[nodiscard]] std::uint64_t sent_count() const { return sent_; }
  [[nodiscard]] std::uint64_t dropped_count() const { return dropped_; }

  /// Dollars billed so far attributable to one topic's traffic (publication
  /// messages carry their topic). Sums over topics to the ledger total.
  [[nodiscard]] Dollars topic_cost(TopicId topic) const;

 private:
  Simulator* sim_;
  const geo::RegionCatalog* catalog_;
  const geo::InterRegionLatency* backbone_;
  const geo::ClientLatencyMap* clients_;
  struct Jitter {
    JitterSpec spec;
    Rng rng;
  };

  std::unordered_map<Address, Handler, AddressHash> handlers_;
  std::vector<bool> region_down_;  // indexed by RegionId
  std::optional<Jitter> jitter_;
  CostLedger ledger_;
  std::unordered_map<TopicId, Dollars> topic_cost_;
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace multipub::net
