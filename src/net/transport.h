// Latency-aware, cost-accounting message transport over the simulator.
//
// Every node of the live system — clients, per-region brokers — has an
// Address. send() looks the one-way latency up (client<->region in L,
// region<->region in L^R), schedules delivery on the simulator, and bills
// the message's billable bytes against the sending region's tariff:
//   region -> region : alpha(from)   (inter-region rate)
//   region -> client : beta(from)    (Internet rate)
//   client -> region : free          (cloud ingress is not billed)
// The resulting CostLedger is what the live-vs-model property tests compare
// against Equations 3/4.
//
// Data-plane fast path: by default deliveries travel as typed simulator
// events (no per-hop heap allocation) and are dispatched through dense
// per-kind handler tables; send_batch() bills and schedules a whole fan-out
// from one shared message. set_fast_path(false) reverts to the seed's
// std::function-per-hop scheduling — kept as the observationally-identical
// reference for the differential tests and bench_dataplane.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/types.h"
#include "geo/latency.h"
#include "geo/region.h"
#include "net/address.h"
#include "net/bus.h"
#include "net/cohort_directory.h"
#include "net/fault_plan.h"
#include "net/simulator.h"
#include "wire/message.h"

namespace multipub::net {

/// Per-region egress accounting.
struct CostLedger {
  std::vector<Bytes> inter_region_bytes;  ///< indexed by RegionId
  std::vector<Bytes> internet_bytes;      ///< indexed by RegionId

  explicit CostLedger(std::size_t n_regions)
      : inter_region_bytes(n_regions, 0), internet_bytes(n_regions, 0) {}

  /// Dollar total under the catalog's tariffs (Eq. 3/4 shape).
  [[nodiscard]] Dollars total_cost(const geo::RegionCatalog& catalog) const;
};

/// The simulated network: the Bus implementation of the digital twin.
/// Borrows the simulator and matrices; they must outlive the transport.
/// final: the data plane calls through concrete SimTransport*/Simulator*
/// almost everywhere, so the Bus virtualization costs the hot paths
/// nothing.
class SimTransport final : public Bus, public DeliverySink {
 public:
  using Handler = Bus::Handler;

  SimTransport(Simulator& sim, const geo::RegionCatalog& catalog,
               const geo::InterRegionLatency& backbone,
               const geo::ClientLatencyMap& clients);

  /// Installs (or replaces) the message handler for an address.
  void register_handler(Address address, Handler handler) override;

  /// Removes the handler for an address (deliveries to it count as
  /// dropped_unregistered afterwards). Cohort mode uses this to take the
  /// per-client subscriber handlers off the wire once the pool owns their
  /// traffic. Same immutability rules as register_handler.
  void unregister_handler(Address address) override;

  /// Installs (or, with nullptr, clears) the directory that resolves cohort
  /// addresses. Cohort traffic requires the fast path and no jitter — the
  /// weighted plane has no per-member jitter streams to replay. Borrowed;
  /// must outlive the transport or be cleared first.
  void set_cohort_directory(const CohortDirectory* directory) override;
  [[nodiscard]] const CohortDirectory* cohort_directory() const override {
    return directory_;
  }

  /// Schedules delivery of `msg` to `to` after the one-way latency from
  /// `from`. Bills billable_bytes() against `from` when `from` is a region.
  /// Messages to unregistered addresses are counted as dropped (billing
  /// still applies — the bytes left the region).
  void send(Address from, Address to, wire::Message msg) override;

  /// Fan-out form of send(): bills and schedules one delivery per target
  /// from a single shared message, stamping `type` to `stamped_type` and —
  /// for client targets — `subscriber` to the target as each delivery is
  /// scheduled. Equivalent to the per-target copy-and-send loop (same
  /// billing order, same jitter draws, same counters) without materialising
  /// a wire::Message per target on the caller's side. The span only needs
  /// to live for the duration of the call, so callers can reuse a scratch
  /// buffer.
  void send_batch(Address from, std::span<const Address> targets,
                  const wire::Message& msg,
                  wire::MessageType stamped_type) override;

  /// One-way latency between two addresses. Client<->client links do not
  /// exist in the architecture (everything goes through a broker).
  [[nodiscard]] Millis latency(Address from, Address to) const;

  /// Fails (or restores) a region: while down, messages from or to the
  /// region vanish — nothing egresses a dead region, so nothing is billed
  /// for it either; messages towards it are counted as dropped. The check
  /// applies at BOTH ends of the hop: a message already in flight towards a
  /// region that dies before it lands is dropped on arrival (see
  /// dropped_dead_arrival_count) — a dead datacenter does not process the
  /// packets that were racing its failure.
  void set_region_down(RegionId region, bool down);
  [[nodiscard]] bool region_down(RegionId region) const;

  /// Installs (or, with nullptr, removes) a fault-injection plan. Borrowed;
  /// must outlive the transport or be detached first. The plan is consulted
  /// on every send — after the dead-region checks, before billing — so a
  /// partitioned or randomly dropped message counts as sent and dropped but
  /// bills nothing (the accounting of a send towards a dead region).
  /// Delay rules stretch the hop's latency after jitter is applied. Drop
  /// coins are drawn from transport-owned per-link streams rooted at the
  /// plan's seed (see enable_jitter for why per-link), so installing a plan
  /// resets any streams of a previously installed one.
  void set_fault_plan(FaultPlan* plan);
  [[nodiscard]] FaultPlan* fault_plan() const { return fault_plan_; }

  /// Selects the scheduling implementation. On (default): typed delivery
  /// events + dense handler dispatch. Off: the seed's per-hop
  /// std::function path, retained as the bit-identical reference. Only
  /// meaningful before traffic is scheduled (the simulator queue must be
  /// empty when switching).
  void set_fast_path(bool on);
  [[nodiscard]] bool fast_path() const { return fast_path_; }

  /// Reliable-mode fault semantics (DESIGN.md §15): when on, the installed
  /// FaultPlan only applies to DATA messages (kPublish/kForward/kDeliver/
  /// kReplayBatch) — control traffic (subscriptions, config updates, replay
  /// requests, state sync) passes untouched and draws no coins. The
  /// reliable protocol treats its control channel as retried-until-acked,
  /// and exempting it keeps the per-link coin streams advancing identically
  /// in the per-client and cohort planes (the kConfigUpdate-under-drop
  /// divergence fix). Off by default: every message is faultable, exactly
  /// the pre-reliable behaviour.
  void set_reliable_control(bool on) { reliable_control_ = on; }
  [[nodiscard]] bool reliable_control() const { return reliable_control_; }

  /// kPublish messages of `topic` lost in transit (dead destination, fault
  /// drop, dead arrival, unregistered handler). A publication dropped here
  /// reached NO broker, so no replay can repair it — the zero-loss oracle's
  /// exempt class.
  [[nodiscard]] std::uint64_t publish_drop_count(TopicId topic) const;

  /// Typed delivery dispatch (DeliverySink); called by the simulator.
  void deliver(const DeliveryEvent& event) override;

  /// Enables per-message latency jitter: each delivery takes
  /// base * U(1, 1 + relative) + |N(0, absolute_ms)| instead of exactly the
  /// matrix value. Default off (deterministic), which is what the analytic
  /// equivalence tests rely on. Every LINK (directed from->to pair) draws
  /// from its own stream, derived from `seed` and the link identity alone —
  /// so a link's jitter sequence depends only on how many messages IT
  /// carried, never on how sends interleave globally. That makes jittered
  /// runs reproducible AND bit-identical across shard counts.
  struct JitterSpec {
    double relative = 0.0;     ///< multiplicative spread, e.g. 0.1 = +0..10 %
    double absolute_ms = 0.0;  ///< additive half-normal spread
  };
  void enable_jitter(const JitterSpec& spec, std::uint64_t seed);
  void disable_jitter();

  /// Sizes the per-shard state (counter lanes, stream tables, handler
  /// guards) for a K-shard simulator. Resets all counters and streams, so
  /// it must be called before traffic — right next to the simulator's
  /// configure_shards(). K = 1 restores single-threaded layout.
  void set_shards(std::uint32_t shards);

  /// Per-(source shard, destination shard) minimum link latency under
  /// `map`, row-major map.shards^2: entry [src * K + dst] is the smallest
  /// latency of any link from a src-owned entity to a dst-owned one —
  /// region->region (directed), client<->region (symmetric, both
  /// directions) and, when a cohort directory is installed, cohort<->region
  /// rows for every flock in the map. The diagonal and pairs with no link
  /// stay kUnreachable. This is the lookahead matrix for
  /// Simulator::set_lookahead_matrix (the adaptive window policy).
  [[nodiscard]] std::vector<Millis> cross_shard_lookaheads(
      const ShardMap& map) const;

  /// Smallest finite latency of any link whose endpoints `map` places on
  /// different shards — the off-diagonal minimum of
  /// cross_shard_lookaheads(), i.e. the conservative scalar lookahead for
  /// configure_shards(). Includes the cohort directory's flock rows, whose
  /// quantized latencies can undercut the exact per-client values.
  /// kUnreachable when no cross-shard link exists.
  [[nodiscard]] Millis min_cross_shard_latency(const ShardMap& map) const;

  /// Materialized per-region egress ledger (rebuilt from the shard-safe
  /// per-region bills on every call; main thread only, between runs).
  [[nodiscard]] const CostLedger& ledger() const;
  [[nodiscard]] std::uint64_t sent_count() const { return sent_.total(); }
  [[nodiscard]] std::uint64_t dropped_count() const {
    return dropped_.total();
  }

  /// Handler invocations (messages that actually arrived somewhere). With a
  /// drained queue the transport's books must balance:
  ///   sent == delivered + (dropped - dropped_sender_down)
  /// — every message that left a sender was either handed to a handler or
  /// lost in flight. The chaos harness checks this after every interval.
  [[nodiscard]] std::uint64_t delivered_count() const {
    return delivered_.total();
  }

  /// Subset of dropped_count(): deliveries that reached an address nobody
  /// registered a handler for. These are the silent drops (a down region at
  /// least shows up in region metrics); surfaced as transport.dropped_unregistered
  /// in sim::collect_metrics.
  [[nodiscard]] std::uint64_t dropped_unregistered_count() const {
    return dropped_unregistered_.total();
  }

  /// Subset of dropped_count(): sends suppressed because the SENDING region
  /// was down — these never left the region (nothing was sent or billed).
  [[nodiscard]] std::uint64_t dropped_sender_down_count() const {
    return dropped_sender_down_.total();
  }

  /// Subset of dropped_count(): messages that were in flight towards a
  /// region when it died and were discarded on arrival.
  [[nodiscard]] std::uint64_t dropped_dead_arrival_count() const {
    return dropped_dead_arrival_.total();
  }

  /// Subset of dropped_count(): messages lost to the installed FaultPlan
  /// (partitions and probabilistic drop).
  [[nodiscard]] std::uint64_t dropped_faulted_count() const {
    return dropped_faulted_.total();
  }

  /// Dollars billed so far attributable to one topic's traffic (publication
  /// messages carry their topic). Sums over topics to the ledger total.
  [[nodiscard]] Dollars topic_cost(TopicId topic) const;

  /// Sum of topic_cost over every topic seen. Both sides bill in the same
  /// branch of send(), so with a correct transport this equals the ledger's
  /// total_cost up to floating-point association — the chaos harness's
  /// cost-conservation oracle.
  [[nodiscard]] Dollars topic_cost_total() const;

 private:
  /// Dense handler slot for `address`, or nullptr when never registered.
  [[nodiscard]] const Handler* find_handler(Address address) const;

  /// One send towards a cohort address standing for `weight` per-client
  /// copies. Outside fault windows that can touch region->client links this
  /// is a single weighted delivery; inside them it replays the per-member
  /// loop exactly (same per-client coin streams, same drop/delay outcomes),
  /// emitting weight-1 deliveries stamped with the member id.
  void send_cohort(Address from, Address to, const wire::Message& msg,
                   std::uint32_t weight);

  struct Jitter {
    JitterSpec spec;
    std::uint64_t seed = 0;
  };

  /// Per-shard mutable hot state, touched only by the thread dispatching
  /// that shard's window (sends execute on the SENDER's shard, so a link's
  /// streams always live in its sender's lane). Heap-allocated one per
  /// lane: no false sharing between workers.
  struct ShardLane {
    const Handler* active_handler = nullptr;  // set while deliver() runs
    /// Per-link RNG streams, keyed by the packed (from, to) link id and
    /// created on first use from derive_stream_seed(base, link) — the same
    /// stream regardless of which lane or creation order, so draws are a
    /// per-link sequence independent of global interleaving.
    std::unordered_map<std::uint64_t, Rng> jitter_streams;
    std::unordered_map<std::uint64_t, Rng> coin_streams;
    /// kPublish losses by topic value (shard-local; summed by
    /// publish_drop_count on the main thread between windows).
    std::unordered_map<std::int32_t, std::uint64_t> publish_drops;
  };
  [[nodiscard]] ShardLane& lane(std::size_t index) { return *lanes_[index]; }
  /// The link's jitter draw applied to `delay` (pre: jitter enabled).
  [[nodiscard]] Millis jittered(ShardLane& lane, Address from, Address to,
                                Millis delay);
  /// The link's fault-coin stream (pre: a plan is installed).
  [[nodiscard]] Rng& coin_stream(ShardLane& lane, Address from, Address to);
  void reset_streams(bool jitter, bool coins);

  /// Egress billed to one sending region. Written only from that region's
  /// shard (single writer per window); merged on demand by ledger() /
  /// topic_cost(). Everything is integer bytes — dollars are derived at
  /// read time from the byte totals — so the sums are exact, commutative,
  /// and identical whether a fan-out billed per client or once per weighted
  /// cohort message.
  struct alignas(64) RegionBill {
    Bytes inter_region = 0;
    Bytes internet = 0;
    std::unordered_map<TopicId, Bytes> topic_inter;
    std::unordered_map<TopicId, Bytes> topic_internet;
  };

  Simulator* sim_;
  const geo::RegionCatalog* catalog_;
  const geo::InterRegionLatency* backbone_;
  const geo::ClientLatencyMap* clients_;

  // The map is what the legacy (seed) path looks handlers up in; the dense
  // tables serve the fast path. register_handler keeps both in sync. Deques
  // (not vectors): deliver() invokes the handler through a reference into
  // the table, and a handler may register NEW handlers (client churn), which
  // grows the table — deque growth leaves existing elements in place, so the
  // executing std::function is never moved mid-call. Replacing the handler
  // currently executing is the one remaining hazard; register_handler
  // asserts against it (tracked via the lane's active_handler). During
  // parallel windows the tables are read-only (registration is a setup /
  // single-threaded-dispatch affair; register_handler asserts this).
  std::unordered_map<Address, Handler, AddressHash> handlers_;
  std::deque<Handler> client_handlers_;
  std::deque<Handler> region_handlers_;
  std::deque<Handler> cohort_handlers_;
  const CohortDirectory* directory_ = nullptr;  // borrowed, may be null
  std::vector<std::unique_ptr<ShardLane>> lanes_;  // one per shard
  std::vector<bool> region_down_;  // indexed by RegionId
  std::optional<Jitter> jitter_;
  FaultPlan* fault_plan_ = nullptr;  // borrowed, may be null
  std::vector<RegionBill> bills_;   // indexed by sending RegionId
  mutable CostLedger ledger_;       // materialized view of bills_
  ShardedCounter sent_;
  ShardedCounter delivered_;
  ShardedCounter dropped_;
  ShardedCounter dropped_unregistered_;
  ShardedCounter dropped_sender_down_;
  ShardedCounter dropped_dead_arrival_;
  ShardedCounter dropped_faulted_;
  bool fast_path_ = true;
  bool reliable_control_ = false;
};

}  // namespace multipub::net
