// Live-socket implementation of the Bus/Clock pair.
//
// SocketTransport is what a real multipub-node process plugs the middleware
// into: the same Broker/RegionManager/client code that runs over
// SimTransport in virtual time runs here over nonblocking TCP sockets and
// wall time. One instance per OS process; single-threaded — all IO and all
// handler dispatch happen inside poll_once(), driven by an epoll loop.
//
// Topology: every process is a NODE (one broker per region, plus the
// controller, node id kControllerNode). Each node listens on one port and
// keeps one outbound connection per peer it was told about (add_peer);
// inbound connections are accepted and read from, so a pair of nodes talks
// over two unidirectional streams — no connection-identity handshake
// needed. Outbound connects are lazy and retried with a flat backoff, and
// frames queued while a link is down are flushed on (re)connect.
//
// Addressing: wire::Messages travel between net::Addresses, but sockets
// connect nodes. An address resolver (set_address_resolver) maps each
// Address to the node hosting it — a region maps to its broker node,
// clients and cohorts to their home region's node, the controller to
// kControllerNode. An address resolving to the local node dispatches
// through the local handler table (deferred to the next poll_once pass, so
// a handler never runs inside send(), matching the simulator's asynchrony
// contract).
//
// Framing: a 12-byte envelope (magic, from/to address) followed by the
// codec's fixed frame. The envelope carries the addressing the codec frame
// does not, so the receiver can route to the right handler.
//
// Billing mirrors SimTransport's cost model: when the sender address is a
// region, billable_bytes() x weight is charged to that region's
// inter-region meter (region destination) or internet meter (client/cohort
// destination); dollars are derived from the catalog tariff at read time.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "geo/region.h"
#include "net/bus.h"
#include "wire/codec.h"

namespace multipub::net {

class SocketTransport final : public Bus, public Clock {
 public:
  /// Node id of the controller process (brokers use their region id).
  static constexpr std::int32_t kControllerNode = -1;

  /// Resolves an Address to the node id hosting it.
  using AddressResolver = std::function<std::int32_t(Address)>;

  SocketTransport();
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  // ---- Clock ----

  /// Wall-clock milliseconds since this transport was constructed.
  [[nodiscard]] Millis now() const override;

  /// Runs `action` from poll_once() once `delay` ms of wall time elapsed.
  void schedule_after(Millis delay, std::function<void()> action) override;

  // ---- Bus ----

  void register_handler(Address address, Handler handler) override;
  void unregister_handler(Address address) override;
  void send(Address from, Address to, wire::Message msg) override;
  void send_batch(Address from, std::span<const Address> targets,
                  const wire::Message& msg,
                  wire::MessageType stamped_type) override;
  void set_cohort_directory(const CohortDirectory* directory) override {
    directory_ = directory;
  }
  [[nodiscard]] const CohortDirectory* cohort_directory() const override {
    return directory_;
  }

  // ---- Node wiring ----

  /// Starts listening on 127.0.0.1:`port` (0 = ephemeral). Returns success.
  bool listen(std::uint16_t port);
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// This process's own node id (used to short-circuit local deliveries).
  void set_self_node(std::int32_t node) { self_node_ = node; }

  /// Declares a peer node reachable on 127.0.0.1:`port`. The connection is
  /// established lazily (first send or next poll) and re-established with a
  /// flat backoff after failures; frames sent meanwhile are queued.
  void add_peer(std::int32_t node, std::uint16_t port);

  void set_address_resolver(AddressResolver resolver) {
    resolver_ = std::move(resolver);
  }

  /// Tariff source for dollar readings (borrowed; may be nullptr, in which
  /// case only byte meters are available).
  void set_catalog(const geo::RegionCatalog* catalog) { catalog_ = catalog; }

  // ---- Event loop ----

  /// One IO pass: waits up to `max_wait_ms` for socket readiness (clamped
  /// by the next due timer), services accepts/reads/writes/reconnects and
  /// fires due timers. Returns the number of handler dispatches.
  std::size_t poll_once(int max_wait_ms);

  /// Polls until `idle_ms` elapse without a single dispatch (or until
  /// `budget_ms` of wall time is spent; returns false on budget exhaustion).
  bool drain(Millis idle_ms, Millis budget_ms);

  // ---- Introspection ----

  [[nodiscard]] std::uint64_t sent_count() const { return sent_; }
  [[nodiscard]] std::uint64_t delivered_count() const { return delivered_; }
  [[nodiscard]] std::uint64_t dropped_unresolved() const {
    return dropped_unresolved_;
  }
  [[nodiscard]] std::uint64_t dropped_unregistered() const {
    return dropped_unregistered_;
  }
  [[nodiscard]] std::uint64_t reconnect_count() const { return reconnects_; }

  /// Cumulative billed egress bytes for a sender region.
  [[nodiscard]] Bytes inter_region_bytes(RegionId region) const;
  [[nodiscard]] Bytes internet_bytes(RegionId region) const;

  /// Total billed cost in dollars across all regions (0 without a catalog).
  [[nodiscard]] double total_cost_dollars() const;

  void close_all();

 private:
  struct Link {
    std::uint16_t peer_port = 0;        // where the peer listens (outbound)
    int fd = -1;
    bool connecting = false;            // nonblocking connect in flight
    std::vector<std::byte> inbox;
    std::vector<std::byte> outbox;
    Millis retry_at = 0.0;              // next connect attempt (down links)
  };

  struct Timer {
    Millis due = 0.0;
    std::uint64_t seq = 0;  // FIFO tie-break among equal deadlines
    std::function<void()> action;
    bool operator>(const Timer& other) const {
      return due != other.due ? due > other.due : seq > other.seq;
    }
  };

  struct Meter {
    Bytes inter_region = 0;
    Bytes internet = 0;
  };

  void bill(Address from, Address to, const wire::Message& msg);
  void deliver_local(const wire::Message& msg, Address to);
  void enqueue_remote(std::int32_t node, Address from, Address to,
                      const wire::Message& msg);
  void try_connect(Link& link);
  void finish_connect(Link& link);
  void fail_link(Link& link);
  bool flush_link(Link& link);
  void read_link(int fd, std::vector<std::byte>& inbox, bool* closed);
  void accept_pending();
  void update_epoll(int fd, bool want_write);
  std::size_t fire_due_timers();
  [[nodiscard]] int next_deadline_wait(int max_wait_ms) const;

  std::chrono::steady_clock::time_point epoch_;
  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::int32_t self_node_ = kControllerNode;
  AddressResolver resolver_;
  const CohortDirectory* directory_ = nullptr;
  const geo::RegionCatalog* catalog_ = nullptr;

  std::unordered_map<Address, Handler, AddressHash> handlers_;
  std::unordered_map<std::int32_t, Link> links_;       // node -> outbound
  std::unordered_map<int, std::vector<std::byte>> inbound_;  // fd -> inbox

  std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timers_;
  std::uint64_t timer_seq_ = 0;

  std::vector<Meter> meters_;  // indexed by sender region
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_unresolved_ = 0;
  std::uint64_t dropped_unregistered_ = 0;
  std::uint64_t reconnects_ = 0;
};

}  // namespace multipub::net
