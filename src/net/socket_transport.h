// Live-socket implementation of the Bus/Clock pair.
//
// SocketTransport is what a real multipub-node process plugs the middleware
// into: the same Broker/RegionManager/client code that runs over
// SimTransport in virtual time runs here over nonblocking TCP sockets and
// wall time. One instance per OS process; single-threaded — all IO and all
// handler dispatch happen inside poll_once(), driven by an epoll loop.
//
// Topology: every process is a NODE (one broker per region, plus the
// controller, node id kControllerNode). Each node listens on one port and
// keeps one outbound connection per peer it was told about (add_peer);
// inbound connections are accepted and read from, so a pair of nodes talks
// over two unidirectional streams — no connection-identity handshake
// needed. Outbound connects are lazy and retried with capped exponential
// backoff plus seeded deterministic jitter, and frames queued while a link
// is down are flushed on (re)connect.
//
// Addressing: wire::Messages travel between net::Addresses, but sockets
// connect nodes. An address resolver (set_address_resolver) maps each
// Address to the node hosting it — a region maps to its broker node,
// clients and cohorts to their home region's node, the controller to
// kControllerNode. An address resolving to the local node dispatches
// through the local handler table without ever touching the codec
// (deferred to the next poll_once pass, so a handler never runs inside
// send(), matching the simulator's asynchrony contract).
//
// Framing: a 12-byte envelope (magic, from/to address) followed by the
// codec's fixed frame. The envelope carries the addressing the codec frame
// does not, so the receiver can route to the right handler.
//
// Hot path (DESIGN.md §16): outbound frames are encoded straight into
// pooled, reusable send segments — send_batch() encodes the shared frame
// ONCE and patches only the per-target fields per copy — and a whole
// poll_once() round's frames per link are flushed with one bounded-iovec
// sendmsg() (partial writes resume mid-record). Inbound bytes are
// bulk-recv()'d into a per-connection wire::StreamDecoder and decoded in
// place with a resumable cursor: no per-message allocation in either
// direction. set_batching(false) keeps the PR 7 reference behaviour —
// per-message encode, immediate flush after every frame — as the in-tree
// oracle bench_transport measures the batched path against.
//
// Billing mirrors SimTransport's cost model in both modes: when the sender
// address is a region, billable_bytes() x weight is charged to that
// region's inter-region meter (region destination) or internet meter
// (client/cohort destination); dollars are derived from the catalog tariff
// at read time.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "geo/region.h"
#include "net/bus.h"
#include "wire/codec.h"
#include "wire/stream_decoder.h"

namespace multipub::net {

/// Syscall/copy telemetry of the socket hot path (the `net.transport.*`
/// metrics family; see collect_transport_metrics). Counters only — reading
/// them never perturbs the transport.
struct TransportStats {
  std::uint64_t sendmsg_calls = 0;   ///< vectored flush syscalls
  std::uint64_t send_calls = 0;      ///< single-buffer send() syscalls
  std::uint64_t read_calls = 0;      ///< recv() syscalls
  std::uint64_t bytes_sent = 0;      ///< bytes accepted by the kernel
  std::uint64_t bytes_received = 0;
  std::uint64_t frames_sent = 0;     ///< complete frames handed to the kernel
  std::uint64_t frames_received = 0;
  std::uint64_t flushes = 0;         ///< flush rounds that moved >= 1 byte
  std::uint64_t partial_flushes = 0; ///< flushes stopped early by EAGAIN
  /// Frames completed per flush, log2 buckets with lower bounds
  /// 1,2,4,...,128 (the last bucket is unbounded): the writev batch-size
  /// histogram. A healthy batched run has most mass past bucket 0.
  std::array<std::uint64_t, 8> flush_frames_hist{};
  std::uint64_t pool_acquires = 0;     ///< send segments handed out
  std::uint64_t pool_high_water = 0;   ///< max segments outstanding at once
  std::uint64_t syscall_soft_errors = 0;  ///< failed setsockopt/epoll_ctl

  [[nodiscard]] std::uint64_t flush_syscalls() const {
    return sendmsg_calls + send_calls;
  }
  [[nodiscard]] double frames_per_flush() const {
    return flushes == 0 ? 0.0
                        : static_cast<double>(frames_sent) /
                              static_cast<double>(flushes);
  }
};

class SocketTransport final : public Bus, public Clock {
 public:
  /// Node id of the controller process (brokers use their region id).
  static constexpr std::int32_t kControllerNode = -1;

  /// Resolves an Address to the node id hosting it.
  using AddressResolver = std::function<std::int32_t(Address)>;

  SocketTransport();
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  // ---- Clock ----

  /// Wall-clock milliseconds since this transport was constructed.
  [[nodiscard]] Millis now() const override;

  /// Runs `action` from poll_once() once `delay` ms of wall time elapsed.
  void schedule_after(Millis delay, std::function<void()> action) override;

  // ---- Bus ----

  void register_handler(Address address, Handler handler) override;
  void unregister_handler(Address address) override;
  void send(Address from, Address to, wire::Message msg) override;
  void send_batch(Address from, std::span<const Address> targets,
                  const wire::Message& msg,
                  wire::MessageType stamped_type) override;
  void set_cohort_directory(const CohortDirectory* directory) override {
    directory_ = directory;
  }
  [[nodiscard]] const CohortDirectory* cohort_directory() const override {
    return directory_;
  }

  // ---- Node wiring ----

  /// Starts listening on 127.0.0.1:`port` (0 = ephemeral). Returns success.
  bool listen(std::uint16_t port);
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// This process's own node id (used to short-circuit local deliveries).
  void set_self_node(std::int32_t node) { self_node_ = node; }

  /// Declares a peer node reachable on 127.0.0.1:`port`. The connection is
  /// established lazily (first send or next poll) and re-established with
  /// capped exponential backoff after failures; frames sent meanwhile are
  /// queued.
  void add_peer(std::int32_t node, std::uint16_t port);

  void set_address_resolver(AddressResolver resolver) {
    resolver_ = std::move(resolver);
  }

  /// Tariff source for dollar readings (borrowed; may be nullptr, in which
  /// case only byte meters are available).
  void set_catalog(const geo::RegionCatalog* catalog) { catalog_ = catalog; }

  /// Batched send path (default on): frames coalesce per link across a
  /// poll_once() round and flush with one vectored sendmsg(). Off keeps
  /// the reference behaviour — every frame flushed the moment it is
  /// queued, one write per frame on an uncongested socket. Billing and
  /// delivery order are identical in both modes.
  void set_batching(bool on) { batching_ = on; }
  [[nodiscard]] bool batching() const { return batching_; }

  /// Applies SO_SNDBUF/SO_RCVBUF of `bytes` to every subsequently created
  /// connection (0 = kernel default). Exists so tests can shrink the
  /// socket buffers far enough to exercise the partial-writev resume path.
  void set_socket_buffer_bytes(int bytes) { socket_buffer_bytes_ = bytes; }

  // ---- Event loop ----

  /// One IO pass: waits up to `max_wait_ms` for socket readiness (clamped
  /// by the next due timer and by pending local deliveries), services
  /// accepts/reads/writes/reconnects, fires due timers, dispatches local
  /// deliveries and flushes every link that queued frames this round.
  /// Returns the number of handler dispatches.
  std::size_t poll_once(int max_wait_ms);

  /// Polls until `idle_ms` elapse without a single dispatch (or until
  /// `budget_ms` of wall time is spent; returns false on budget exhaustion).
  bool drain(Millis idle_ms, Millis budget_ms);

  // ---- Introspection ----

  [[nodiscard]] std::uint64_t sent_count() const { return sent_; }
  [[nodiscard]] std::uint64_t delivered_count() const { return delivered_; }
  [[nodiscard]] std::uint64_t dropped_unresolved() const {
    return dropped_unresolved_;
  }
  [[nodiscard]] std::uint64_t dropped_unregistered() const {
    return dropped_unregistered_;
  }
  [[nodiscard]] std::uint64_t reconnect_count() const { return reconnects_; }
  [[nodiscard]] const TransportStats& stats() const { return stats_; }

  /// Reconnect backoff schedule: first retry ~kBackoffBaseMs after the
  /// failure, doubling per consecutive failure up to kBackoffCapMs, each
  /// delay stretched by deterministic per-link jitter.
  static constexpr Millis kBackoffBaseMs = 25.0;
  static constexpr Millis kBackoffCapMs = 2000.0;
  static constexpr double kBackoffJitter = 0.25;

  /// Reconnect delay before attempt number `attempt` (0-based), in ms:
  /// min(kBackoffCapMs, kBackoffBaseMs * 2^attempt) stretched by a
  /// uniform [1, 1 + kBackoffJitter) factor drawn from `rng`. Public and
  /// pure so the backoff contract is testable without a dead peer.
  [[nodiscard]] static Millis backoff_delay_ms(std::uint32_t attempt,
                                               Rng& rng);

  /// Cumulative billed egress bytes for a sender region.
  [[nodiscard]] Bytes inter_region_bytes(RegionId region) const;
  [[nodiscard]] Bytes internet_bytes(RegionId region) const;

  /// Total billed cost in dollars across all regions (0 without a catalog).
  [[nodiscard]] double total_cost_dollars() const;

  void close_all();

 private:
  /// One pooled, reusable send buffer: frames are encoded into `bytes`
  /// at the tail and drained from `read` by the flush path. Fully drained
  /// segments return to the pool instead of being freed, so a steady-state
  /// link sends without allocating.
  struct SendSegment {
    std::vector<std::byte> bytes;
    std::size_t read = 0;        ///< bytes already written to the socket
    std::uint64_t frames = 0;    ///< frames queued into this segment

    [[nodiscard]] std::size_t pending() const { return bytes.size() - read; }
    void recycle() {
      bytes.clear();
      read = 0;
      frames = 0;
    }
  };

  struct Link {
    std::int32_t node = 0;              // peer node id (links_ key)
    std::uint16_t peer_port = 0;        // where the peer listens (outbound)
    int fd = -1;
    bool connecting = false;            // nonblocking connect in flight
    wire::StreamDecoder inbox{/*header_bytes=*/12};
    std::deque<std::unique_ptr<SendSegment>> outbox;
    std::size_t pending_bytes = 0;      // unsent bytes across the outbox
    std::size_t partial_frame_bytes = 0;  // bytes of a half-written record
    Millis retry_at = 0.0;              // next connect attempt (down links)
    std::uint32_t connect_attempts = 0; // consecutive failures (backoff)
    bool flush_queued = false;          // on this round's flush list
  };

  struct Timer {
    Millis due = 0.0;
    std::uint64_t seq = 0;  // FIFO tie-break among equal deadlines
    std::function<void()> action;
    bool operator>(const Timer& other) const {
      return due != other.due ? due > other.due : seq > other.seq;
    }
  };

  struct Meter {
    Bytes inter_region = 0;
    Bytes internet = 0;
  };

  /// A same-node delivery waiting for the next poll_once() pass.
  struct LocalDelivery {
    Address to;
    wire::Message msg;
  };

  void bill(Address from, Address to, const wire::Message& msg);
  void bill_raw(Address::Kind to_kind, std::int32_t from_region,
                Bytes billable);
  void deliver_local(const wire::Message& msg, Address to);
  void enqueue_remote(std::int32_t node, Address from, Address to,
                      const wire::Message& msg);
  /// Appends one encoded record to the link's outbox; flushes immediately
  /// in unbatched mode, otherwise defers to the round flush.
  void queue_frame(Link& link, const std::byte* record);
  void mark_dirty(std::int32_t node, Link& link);
  void flush_dirty_links();
  std::size_t drain_local_and_timers();
  SendSegment* tail_segment(Link& link);
  std::unique_ptr<SendSegment> acquire_segment();
  void release_segment(std::unique_ptr<SendSegment> segment);
  void try_connect(Link& link);
  void finish_connect(Link& link);
  void fail_link(Link& link);
  void schedule_retry(Link& link);
  bool flush_link(Link& link);
  void read_link(int fd, wire::StreamDecoder& inbox, bool* closed);
  void accept_pending();
  void update_epoll(int fd, bool want_write);
  std::size_t fire_due_timers();
  [[nodiscard]] int next_deadline_wait(int max_wait_ms) const;
  [[nodiscard]] Rng& backoff_rng(std::int32_t node);

  std::chrono::steady_clock::time_point epoch_;
  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::int32_t self_node_ = kControllerNode;
  bool batching_ = true;
  int socket_buffer_bytes_ = 0;
  AddressResolver resolver_;
  const CohortDirectory* directory_ = nullptr;
  const geo::RegionCatalog* catalog_ = nullptr;

  std::unordered_map<Address, Handler, AddressHash> handlers_;
  std::unordered_map<std::int32_t, Link> links_;  // node -> outbound
  std::unordered_map<int, std::int32_t> fd_to_node_;      // outbound fd owner
  std::unordered_map<int, wire::StreamDecoder> inbound_;  // fd -> decoder
  std::unordered_map<std::int32_t, Rng> backoff_rngs_;    // node -> jitter

  /// Links that queued frames since their last flush (batched mode).
  std::vector<std::int32_t> dirty_links_;
  /// Pooled send segments not currently owned by any link.
  std::vector<std::unique_ptr<SendSegment>> segment_pool_;
  std::uint64_t segments_outstanding_ = 0;

  std::deque<LocalDelivery> pending_local_;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timers_;
  std::uint64_t timer_seq_ = 0;

  std::vector<Meter> meters_;  // indexed by sender region
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_unresolved_ = 0;
  std::uint64_t dropped_unregistered_ = 0;
  std::uint64_t reconnects_ = 0;
  TransportStats stats_;
};

/// Snapshots the transport's hot-path telemetry into a registry under the
/// `net.transport.*` prefix (mirrors the dataplane.* WindowStats pattern:
/// strictly observational, never part of the billing/counter contract).
[[nodiscard]] MetricsRegistry collect_transport_metrics(
    const SocketTransport& transport);

}  // namespace multipub::net
