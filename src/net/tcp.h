// TCP message endpoint.
//
// The simulation transports messages in-process; this endpoint carries the
// same wire::Message frames over real sockets, proving the protocol has a
// working network representation (and giving downstream users a starting
// point for an actual deployment). Single-threaded: readiness is polled
// explicitly with poll(), no background threads, so tests are
// deterministic.
//
// Framing is the codec's fixed-size frame (wire::kEncodedSize bytes); a connection that delivers a
// frame that fails to decode is considered corrupt and closed.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "wire/codec.h"
#include "wire/message.h"
#include "wire/stream_decoder.h"

namespace multipub::net {

class TcpEndpoint {
 public:
  using Handler = std::function<void(const wire::Message&)>;

  /// `handler` receives every decoded inbound message.
  explicit TcpEndpoint(Handler handler);
  ~TcpEndpoint();

  TcpEndpoint(const TcpEndpoint&) = delete;
  TcpEndpoint& operator=(const TcpEndpoint&) = delete;

  /// Starts listening on 127.0.0.1:`port` (0 = ephemeral). Returns success.
  bool listen(std::uint16_t port);

  /// The bound port (after listen); 0 when not listening.
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Connects to a listening endpoint on 127.0.0.1:`port`. Returns a peer
  /// handle (>= 0) or -1 on failure.
  int connect_to(std::uint16_t port);

  /// Sends one message to the given peer handle. Returns success. Never
  /// blocks: when the kernel send buffer is full (or accepts only part of
  /// the frame) the remainder is buffered in the peer's outbox and flushed
  /// by poll() once the socket turns writable again — backpressure delays
  /// frames, it does not tear or drop them.
  bool send(int peer, const wire::Message& msg);

  /// Services readiness for up to `timeout_ms` (0 = non-blocking pass):
  /// accepts new connections, reads frames, dispatches to the handler.
  /// Returns the number of messages dispatched.
  std::size_t poll(int timeout_ms);

  /// Open peer connections (inbound + outbound).
  [[nodiscard]] std::size_t connection_count() const { return peers_.size(); }
  [[nodiscard]] std::uint64_t received_count() const { return received_; }
  [[nodiscard]] std::uint64_t corrupt_frames() const { return corrupt_; }

  /// Bytes buffered in a peer's outbox awaiting socket writability (0 for
  /// unknown handles). Nonzero means the peer is backpressured.
  [[nodiscard]] std::size_t pending_send_bytes(int peer) const;

  /// Applies SO_SNDBUF/SO_RCVBUF of `bytes` to every subsequently created
  /// connection (0 = kernel default). Exists so tests can shrink the socket
  /// buffers far enough to exercise the partial-write path.
  void set_socket_buffer_bytes(int bytes) { socket_buffer_bytes_ = bytes; }

  void close_all();

 private:
  struct Peer {
    int fd = -1;
    wire::StreamDecoder inbox{};    // resumable inbound frame reassembly
    std::vector<std::byte> outbox;  // unsent outbound bytes (backpressure)
  };

  void accept_pending();
  bool read_from(int handle);
  bool flush_outbox(Peer& peer);
  void configure_socket(int fd);
  void drop(int handle);

  Handler handler_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::unordered_map<int, Peer> peers_;  // handle -> peer
  int next_handle_ = 0;
  int socket_buffer_bytes_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t corrupt_ = 0;
};

}  // namespace multipub::net
