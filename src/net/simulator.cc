#include "net/simulator.h"

#include <utility>

#include "common/assert.h"

namespace multipub::net {

void Simulator::schedule_at(Millis t, Action action) {
  MP_EXPECTS(t >= now_);
  queue_.push(Event{t, next_seq_++, std::move(action)});
}

void Simulator::schedule_after(Millis delay, Action action) {
  MP_EXPECTS(delay >= 0.0);
  schedule_at(now_ + delay, std::move(action));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; the action must be moved out before pop.
  Event event = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = event.time;
  ++processed_;
  event.action();
  return true;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(Millis t) {
  MP_EXPECTS(t >= now_);
  while (!queue_.empty() && queue_.top().time <= t) {
    step();
  }
  now_ = t;
}

}  // namespace multipub::net
