#include "net/simulator.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/assert.h"

namespace multipub::net {

namespace {
constexpr std::uint32_t kKindAction = 0;
constexpr std::uint32_t kKindDelivery = 1;
constexpr std::size_t kArity = 4;
// Aimed-for events per rung bucket == steady-state near-heap depth: small
// enough that the near heap's sift path stays in L1/L2.
constexpr std::size_t kBucketTarget = 2048;
constexpr std::size_t kMaxBuckets = 8192;

/// One spin-wait pause: keeps the core's speculative pipeline calm (and on
/// SMT hands cycles to the sibling) without giving up the time slice.
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}
}  // namespace

thread_local Simulator::EventStore* Simulator::tls_store_ = nullptr;
thread_local std::uint32_t Simulator::tls_shard_ = 0;

void Simulator::EventStore::heap_push(const CompactEvent& event) {
  std::size_t i = heap_.size();
  heap_.push_back(event);
  // Hole-based sift-up: shift parents down instead of swapping.
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!before(event, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = event;
}

void Simulator::EventStore::far_push(const CompactEvent& event) {
  ++compact_pending_;
  if (rung_count_ > 0) {
    // Compare in double first: casting an out-of-range value to size_t is
    // UB, and a pathological far-future timestamp must simply go to top_.
    const double idx_d = (event.time - rung_start_) / rung_width_;
    if (idx_d < 0.0) {
      // Legal after run_until stops short of the rung's coverage (the rung
      // was built from far-future events, then the clock was advanced to a
      // time below rung_start_): a new event may land before the rung
      // entirely. It precedes every rung/top event, so the near heap is its
      // ordering-preserving home — and the cast below stays in range.
      heap_push(event);
      return;
    }
    if (idx_d < static_cast<double>(rung_count_)) {
      const auto idx = static_cast<std::size_t>(idx_d);
      if (idx < rung_cur_) {
        // Its bucket has already been promoted — the near heap is now the
        // only store allowed to hold it.
        heap_push(event);
      } else {
        rung_[idx].push_back(event);
      }
      return;
    }
  }
  if (top_.empty()) {
    top_min_ = event.time;
    top_max_ = event.time;
  } else {
    top_min_ = std::min(top_min_, event.time);
    top_max_ = std::max(top_max_, event.time);
  }
  top_.push_back(event);
}

void Simulator::EventStore::build_rung() {
  // One pass: distribute the top list over constant-width buckets sized so
  // a bucket holds ~kBucketTarget events. Width 0 (all-equal timestamps)
  // degenerates to a single bucket. The mapping here must be the EXACT
  // computation far_push uses, so an event at the coverage boundary (FP
  // rounding can push floor((max-start)/width) to rung_count_) stays in the
  // top list rather than being force-clamped into the last bucket — that
  // keeps "top events never precede bucket events" airtight. At least the
  // top-minimum always lands in bucket 0, so the rebuild loop terminates.
  rung_count_ = std::clamp<std::size_t>(top_.size() / kBucketTarget + 1, 1,
                                        kMaxBuckets);
  if (rung_.size() < rung_count_) rung_.resize(rung_count_);
  rung_start_ = top_min_;
  rung_width_ = (top_max_ - top_min_) / static_cast<double>(rung_count_);
  if (!(rung_width_ > 0.0)) rung_width_ = 1.0;
  rung_cur_ = 0;
  std::size_t kept = 0;
  Millis kept_min = 0.0, kept_max = 0.0;
  for (const CompactEvent& event : top_) {
    const double idx_d = (event.time - rung_start_) / rung_width_;
    if (idx_d < static_cast<double>(rung_count_)) {
      rung_[static_cast<std::size_t>(idx_d)].push_back(event);
      continue;
    }
    if (kept == 0) {
      kept_min = event.time;
      kept_max = event.time;
    } else {
      kept_min = std::min(kept_min, event.time);
      kept_max = std::max(kept_max, event.time);
    }
    top_[kept++] = event;
  }
  top_.resize(kept);
  top_min_ = kept_min;
  top_max_ = kept_max;
}

void Simulator::EventStore::refill() {
  while (heap_.empty()) {
    if (rung_cur_ < rung_count_) {
      for (const CompactEvent& event : rung_[rung_cur_]) heap_push(event);
      rung_[rung_cur_].clear();
      ++rung_cur_;
      continue;
    }
    if (top_.empty()) return;  // fully drained
    build_rung();
  }
}

Simulator::CompactEvent Simulator::EventStore::heap_pop() {
  const CompactEvent top = heap_.front();
  const CompactEvent last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n > 0) {
    std::size_t i = 0;
    for (;;) {
      const std::size_t first_child = i * kArity + 1;
      if (first_child >= n) break;
      const std::size_t end_child = std::min(first_child + kArity, n);
      std::size_t best = first_child;
      for (std::size_t c = first_child + 1; c < end_child; ++c) {
        if (before(heap_[c], heap_[best])) best = c;
      }
      if (!before(heap_[best], last)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }
  return top;
}

std::uint32_t Simulator::EventStore::acquire_action_slot() {
  if (!action_free_.empty()) {
    const std::uint32_t slot = action_free_.back();
    action_free_.pop_back();
    return slot;
  }
  // Slot ids must fit CompactEvent's 24-bit field (16M concurrent events).
  MP_EXPECTS(action_pool_.size() < (1u << CompactEvent::kSlotBits));
  action_pool_.emplace_back();
  return static_cast<std::uint32_t>(action_pool_.size() - 1);
}

std::uint32_t Simulator::EventStore::acquire_delivery_slot() {
  if (!delivery_free_.empty()) {
    const std::uint32_t slot = delivery_free_.back();
    delivery_free_.pop_back();
    return slot;
  }
  MP_EXPECTS(delivery_pool_.size() < (1u << CompactEvent::kSlotBits));
  delivery_pool_.emplace_back();
  return static_cast<std::uint32_t>(delivery_pool_.size() - 1);
}

void Simulator::EventStore::insert_action(Millis t, Simulator::Action action) {
  const std::uint32_t slot = acquire_action_slot();
  action_pool_[slot] = std::move(action);
  far_push(CompactEvent::make(t, seq++, kKindAction, slot));
}

void Simulator::EventStore::insert_delivery(Millis t, DeliverySink& sink,
                                            Address from, Address to,
                                            const wire::Message& msg) {
  const std::uint32_t slot = acquire_delivery_slot();
  DeliveryEvent& event = delivery_pool_[slot];
  event.sink = &sink;
  event.from = from;
  event.to = to;
  event.msg = msg;
  far_push(CompactEvent::make(t, seq++, kKindDelivery, slot));
}

Millis Simulator::EventStore::next_time() {
  if (heap_.empty()) refill();
  return heap_.empty() ? kUnreachable : heap_.front().time;
}

void Simulator::EventStore::dispatch_one() {
  const CompactEvent event = heap_pop();
  --compact_pending_;
  clock = event.time;
  ++processed;
  const std::uint32_t slot = event.slot();
  if (event.kind() == kKindAction) {
    // Move the callback out and release the slot before invoking: the
    // action may schedule new events, growing or reusing the pool.
    Action action = std::move(action_pool_[slot]);
    action_pool_[slot] = nullptr;
    action_free_.push_back(slot);
    action();
  } else {
    // Trivially-copyable payload: a stack copy keeps the dispatch safe
    // against pool reallocation when the handler schedules further hops.
    const DeliveryEvent delivery = delivery_pool_[slot];
    delivery_free_.push_back(slot);
    delivery.sink->deliver(delivery);
  }
}

Simulator::~Simulator() { shutdown_workers(); }

void Simulator::set_legacy_scheduling(bool on) {
  MP_EXPECTS(pending() == 0);
  MP_EXPECTS(!sharded());
  legacy_ = on;
}

std::size_t Simulator::pending() const {
  if (legacy_) return legacy_queue_.size();
  std::size_t total = 0;
  for (const auto& store : stores_) total += store->compact_pending_;
  return total;
}

std::uint64_t Simulator::processed() const {
  std::uint64_t total = processed_base_;
  for (const auto& store : stores_) total += store->processed;
  return total;
}

void Simulator::configure_shards(ShardMap map, Millis lookahead) {
  MP_EXPECTS(!legacy_);
  MP_EXPECTS(pending() == 0);
  MP_EXPECTS(tls_store_ == nullptr);
  MP_EXPECTS(map.shards >= 1);
  shutdown_workers();
  const std::uint32_t k = map.shards;
  map_ = std::move(map);
  // Fresh stores: pools and per-shard sequence counters restart, the clocks
  // carry the current time forward, and already-dispatched counts fold into
  // the base so processed() stays monotone.
  for (const auto& store : stores_) processed_base_ += store->processed;
  stores_.clear();
  stores_.reserve(k);
  for (std::uint32_t i = 0; i < k; ++i) {
    stores_.push_back(std::make_unique<EventStore>());
    stores_.back()->clock = now_;
  }
  mail_.assign(static_cast<std::size_t>(k) * k, Mailbox{});
  // The lookahead matrix is per-map (it depends on which entities share a
  // shard); the caller re-derives it for the new map before an adaptive run.
  la_.clear();
  dist_.clear();
  window_end_.assign(k, 0.0);
  next_times_.assign(k, 0.0);
  sync_.assign(k, ShardSync{});
  windows_ = 0;
  width_sum_ = 0.0;
  width_max_ = 0.0;
  mail_items_ = 0;
  // No workers exist here (shutdown_workers above), so plain stores suffice;
  // thread creation below publishes everything to the new workers.
  epoch_.store(0, std::memory_order_relaxed);
  arrivals_.store(0, std::memory_order_relaxed);
  parties_ = k;
  if (k == 1) {
    lookahead_ = 0.0;
    return;
  }
  MP_EXPECTS(lookahead > 0.0);
  lookahead_ = lookahead;
  workers_.reserve(k - 1);
  for (std::uint32_t i = 1; i < k; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

void Simulator::set_lookahead(Millis lookahead) {
  MP_EXPECTS(sharded());
  MP_EXPECTS(tls_store_ == nullptr);
  MP_EXPECTS(lookahead > 0.0);
  lookahead_ = lookahead;
}

void Simulator::set_window_policy(WindowPolicy policy) {
  MP_EXPECTS(tls_store_ == nullptr);
  policy_ = policy;
}

void Simulator::set_lookahead_matrix(std::vector<Millis> lookaheads) {
  MP_EXPECTS(sharded());
  MP_EXPECTS(tls_store_ == nullptr);
  const std::size_t k = stores_.size();
  MP_EXPECTS(lookaheads.size() == k * k);
  for (const Millis entry : lookaheads) MP_EXPECTS(entry >= 0.0);
  la_ = std::move(lookaheads);
  // Shortest-walk closure by Floyd–Warshall with an UNREACHABLE diagonal:
  // starting from the direct edges only, dist_[i][j] (i != j) relaxes to the
  // cheapest >= 1-hop walk i -> j, and dist_[i][i] to the cheapest cycle
  // through i. The closure — not the raw edges — is what bounds adaptive
  // windows: a busy shard A can reach d indirectly by waking an idle shard
  // that then sends to d, and that chain costs at least dist_[A][d]. The
  // diagonal cycle term likewise stops a lone busy shard from running past
  // the earliest echo of its own sends. Entries stay kUnreachable exactly
  // when no chain exists at all, in which case no bound is needed.
  dist_.assign(k * k, kUnreachable);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      if (i != j) dist_[i * k + j] = la_[i * k + j];
    }
  }
  for (std::size_t m = 0; m < k; ++m) {
    for (std::size_t i = 0; i < k; ++i) {
      const Millis im = dist_[i * k + m];
      if (!(im < kUnreachable)) continue;
      for (std::size_t j = 0; j < k; ++j) {
        const Millis cand = im + dist_[m * k + j];
        if (cand < dist_[i * k + j]) dist_[i * k + j] = cand;
      }
    }
  }
}

WindowStats Simulator::window_stats() const {
  WindowStats stats;
  if (!sharded()) return stats;
  stats.windows = windows_;
  stats.width_sum = width_sum_;
  stats.width_max = width_max_;
  stats.mail_items = mail_items_;
  // sync_ slots are single-writer; the kEndRun ack barrier ordered every
  // worker's in-run counter writes before this (between-runs) read.
  for (const ShardSync& sync : sync_) {
    stats.barrier_spins += sync.spins;
    stats.barrier_parks += sync.parks;
  }
  for (const auto& store : stores_) stats.events += store->processed;
  return stats;
}

void Simulator::shutdown_workers() {
  if (workers_.empty()) return;
  // Workers are parked in await_publication between runs, so command_ is
  // ours to write; publish() hands it over and wakes them.
  command_ = Command::kShutdown;
  publish();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

void Simulator::schedule_at(Millis t, Action action) {
  MP_EXPECTS(t >= now());
  if (legacy_) {
    legacy_queue_.push(Event{t, legacy_seq_++, std::move(action)});
    return;
  }
  // Inside a window the action stays on the dispatching shard (timers are
  // entity-local); outside, shard 0 hosts un-hinted actions.
  EventStore& store = tls_store_ != nullptr ? *tls_store_ : *stores_[0];
  store.insert_action(t, std::move(action));
}

void Simulator::schedule_at(Millis t, Address owner, Action action) {
  MP_EXPECTS(t >= now());
  if (legacy_) {
    legacy_queue_.push(Event{t, legacy_seq_++, std::move(action)});
    return;
  }
  EventStore& store = *stores_[owner_shard(owner)];
  // Cross-shard actions have no sequenced channel — only deliveries do — so
  // from inside a window the owner must be local.
  MP_EXPECTS(tls_store_ == nullptr || tls_store_ == &store);
  store.insert_action(t, std::move(action));
}

void Simulator::schedule_after(Millis delay, Action action) {
  MP_EXPECTS(delay >= 0.0);
  schedule_at(now() + delay, std::move(action));
}

void Simulator::schedule_delivery_at(Millis t, DeliverySink& sink,
                                     Address from, Address to,
                                     const wire::Message& msg) {
  MP_EXPECTS(t >= now());
  MP_EXPECTS(!legacy_);
  if (!sharded()) {
    stores_[0]->insert_delivery(t, sink, from, to, msg);
    return;
  }
  const std::uint32_t dst = map_.shard_of(to);
  if (tls_store_ == nullptr) {
    // No window running (control plane, test setup): every store is
    // quiescent, insert straight into the owner's.
    stores_[dst]->insert_delivery(t, sink, from, to, msg);
    return;
  }
  if (dst == tls_shard_) {
    tls_store_->insert_delivery(t, sink, from, to, msg);
    return;
  }
  // Cross-shard: park in the (src, dst) mailbox until the window barrier.
  mail_[static_cast<std::size_t>(tls_shard_) * stores_.size() + dst].push(
      MailItem{t, DeliveryEvent{&sink, from, to, msg}});
}

void Simulator::schedule_delivery_after(Millis delay, DeliverySink& sink,
                                        Address from, Address to,
                                        const wire::Message& msg) {
  MP_EXPECTS(delay >= 0.0);
  schedule_delivery_at(now() + delay, sink, from, to, msg);
}

bool Simulator::step() {
  if (legacy_) {
    if (legacy_queue_.empty()) return false;
    // priority_queue::top() is const; the action must be moved out before
    // pop.
    Event event = std::move(const_cast<Event&>(legacy_queue_.top()));
    legacy_queue_.pop();
    now_ = event.time;
    ++processed_base_;
    event.action();
    return true;
  }
  MP_EXPECTS(!sharded());  // the parallel plane runs whole windows
  EventStore& store = *stores_[0];
  if (store.next_time() == kUnreachable) return false;
  tls_store_ = &store;
  store.dispatch_one();
  tls_store_ = nullptr;
  now_ = store.clock;
  return true;
}

void Simulator::run_window(std::uint32_t shard) {
  EventStore& store = *stores_[shard];
  tls_store_ = &store;
  tls_shard_ = shard;
  const Millis end = window_end_[shard];
  while (store.next_time() < end) store.dispatch_one();
  tls_store_ = nullptr;
  tls_shard_ = 0;
}

void Simulator::drain_all_inboxes() {
  const std::size_t k = stores_.size();
  // Fixed merge order — source shard ascending, FIFO within a source — with
  // fresh destination-local sequence numbers: the interleaving is a pure
  // function of the schedule-independent send order, never of thread timing.
  for (std::size_t dst = 0; dst < k; ++dst) {
    EventStore& store = *stores_[dst];
    for (std::size_t src = 0; src < k; ++src) {
      Mailbox& box = mail_[src * k + dst];
      if (box.full.empty() && box.tail.empty()) continue;
      const auto insert = [&](const MailItem& item) {
        // Conservative-window invariant: a cross-shard send arrives no
        // earlier than the end of the window its destination just ran (the
        // destination's window end is bounded by every busy shard's horizon
        // plus the lookahead closure — see plan_round).
        MP_EXPECTS(item.time >= window_end_[dst]);
        store.insert_delivery(item.time, *item.event.sink, item.event.from,
                              item.event.to, item.event.msg);
      };
      for (std::vector<MailItem>& chunk : box.full) {
        for (const MailItem& item : chunk) insert(item);
        mail_items_ += chunk.size();
        chunk.clear();
        box.spare.push_back(std::move(chunk));
      }
      box.full.clear();
      for (const MailItem& item : box.tail) insert(item);
      mail_items_ += box.tail.size();
      box.tail.clear();
    }
  }
}

void Simulator::plan_round() {
  const std::size_t k = stores_.size();
  Millis t_min = kUnreachable;
  for (std::size_t i = 0; i < k; ++i) {
    next_times_[i] = stores_[i]->next_time();
    t_min = std::min(t_min, next_times_[i]);
  }
  if (!(t_min < limit_)) {
    command_ = Command::kEndRun;
    return;
  }
  command_ = Command::kRunWindow;
  if (policy_ == WindowPolicy::kFixed) {
    // Window [t_min, t_min + lookahead) for every shard: any event inside it
    // can only reach another shard at t >= end (delays are at least the
    // lookahead; jitter and fault factors only stretch them). IEEE addition
    // is monotone, so computed arrival times respect the bound; nextafter
    // keeps the window non-empty even when lookahead_ vanishes against the
    // ulp of t_min.
    Millis end = t_min + lookahead_;
    if (!(end > t_min)) end = std::nextafter(t_min, kUnreachable);
    end = std::min(end, limit_);
    for (std::size_t d = 0; d < k; ++d) window_end_[d] = end;
  } else {
    // Adaptive: shard d may run to the earliest time any BUSY shard's work
    // could possibly reach it — directly or through a chain of reactivated
    // shards, hence the walk closure dist_, whose diagonal also bounds d
    // against echoes of its own sends. Idle shards impose no bound, so a
    // lone busy shard advances a full self-cycle per round and quiet
    // stretches collapse; with every shard busy at ~t_min this degenerates
    // to the fixed pacing. Soundness of the drain assert: a send dispatched
    // by src at t_e arrives >= t_e + la_[src][dst] >= next_times_[src] +
    // dist_[src][dst] >= window_end_[dst].
    for (std::size_t d = 0; d < k; ++d) {
      Millis end = kUnreachable;
      for (std::size_t a = 0; a < k; ++a) {
        if (!(next_times_[a] < kUnreachable)) continue;
        end = std::min(end, next_times_[a] + dist_[a * k + d]);
      }
      if (!(end > t_min)) end = std::nextafter(t_min, kUnreachable);
      window_end_[d] = std::min(end, limit_);
    }
  }
  ++windows_;
  Millis top = window_end_[0];
  for (std::size_t d = 1; d < k; ++d) top = std::max(top, window_end_[d]);
  const Millis width = top - t_min;
  width_sum_ += width;
  width_max_ = std::max(width_max_, width);
}

void Simulator::serial_phase() {
  if (command_ != Command::kRunWindow) return;  // kEndRun ack: nothing to do
  drain_all_inboxes();
  plan_round();
}

std::uint32_t Simulator::arrive_and_wait(std::uint32_t shard,
                                         std::uint32_t seen) {
  if (arrivals_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
    // Last arriver. Everyone else is spinning or parked on epoch_, so the
    // reset cannot race a next-round arrival; the release bump below
    // publishes it (and the serial phase's work) together.
    arrivals_.store(0, std::memory_order_relaxed);
    serial_phase();
    epoch_.fetch_add(1, std::memory_order_release);
    epoch_.notify_all();
    return seen + 1;
  }
  return await_change(seen, shard);
}

std::uint32_t Simulator::await_change(std::uint32_t seen, std::uint32_t shard) {
  // Exponential-backoff spin: load-balanced windows flip the epoch within a
  // few hundred cycles, so most waits resolve here without a syscall.
  for (std::uint32_t delay = 1; delay <= 64; delay *= 2) {
    for (std::uint32_t i = 0; i < delay; ++i) cpu_relax();
    if (epoch_.load(std::memory_order_acquire) != seen) {
      ++sync_[shard].spins;
      return seen + 1;
    }
  }
  for (int i = 0; i < 8; ++i) {
    std::this_thread::yield();
    if (epoch_.load(std::memory_order_acquire) != seen) {
      ++sync_[shard].spins;
      return seen + 1;
    }
  }
  ++sync_[shard].parks;
  return await_publication(seen);
}

std::uint32_t Simulator::await_publication(std::uint32_t seen) {
  // Waits until epoch_ != seen (the != comparison is wrap-safe), then
  // consumes exactly ONE protocol step: the return is seen + 1, NOT the
  // loaded epoch. A slow waiter can observe two bumps merged — the kEndRun
  // ack plus the very next publication — and adopting the loaded value
  // would swallow the publication and strand the thread waiting for a
  // change that already happened. Stepping one epoch at a time keeps every
  // transition processed; the epoch can only run ahead across steps the
  // caller does not read state from (the ack break), because any window
  // round needs this thread's arrival before it can complete. Reading a
  // LATER epoch still synchronizes: the bumps are an RMW release sequence,
  // so the acquire load sees every serial phase up to that epoch.
  while (epoch_.load(std::memory_order_acquire) == seen) {
    epoch_.wait(seen, std::memory_order_acquire);
  }
  return seen + 1;
}

std::uint32_t Simulator::publish() {
  const std::uint32_t next =
      epoch_.fetch_add(1, std::memory_order_release) + 1;
  epoch_.notify_all();
  return next;
}

void Simulator::worker_loop(std::uint32_t shard) {
  // configure_shards() zeroes epoch_ before spawning, so epoch 0 is the
  // well-known starting point — loading epoch_ here instead could miss a
  // publication that lands between spawn and load.
  std::uint32_t seen = 0;
  for (;;) {
    seen = await_publication(seen);  // a command round was published
    for (;;) {
      // Safe to read: the publication (or the previous round's serial
      // phase) wrote command_ before the epoch bump this thread acquired.
      const Command command = command_;
      if (command == Command::kShutdown) return;
      if (command == Command::kEndRun) {
        // Ack round: after it the driver owns command_ again and this
        // thread is back to waiting for a fresh publication.
        seen = arrive_and_wait(shard, seen);
        break;
      }
      run_window(shard);
      seen = arrive_and_wait(shard, seen);
    }
  }
}

void Simulator::run_windows(Millis limit) {
  MP_EXPECTS(tls_store_ == nullptr);
  MP_EXPECTS(policy_ == WindowPolicy::kFixed ||
             dist_.size() == stores_.size() * stores_.size());
  limit_ = limit;
  // Mailboxes are empty here (every serial phase drains before planning),
  // so the entry plan needs no drain.
  plan_round();
  std::uint32_t seen = publish();
  for (;;) {
    if (command_ == Command::kEndRun) {
      // Ack round: every worker has read kEndRun; command_ is ours again.
      arrive_and_wait(0, seen);
      return;
    }
    run_window(0);  // the driving thread doubles as shard 0's worker
    seen = arrive_and_wait(0, seen);
  }
}

void Simulator::run() {
  if (!sharded()) {
    while (step()) {
    }
    return;
  }
  run_windows(kUnreachable);
  // The run's end time is schedule-independent: the max event timestamp any
  // shard dispatched (or the previous time when nothing ran).
  Millis end = now_;
  for (const auto& store : stores_) end = std::max(end, store->clock);
  now_ = end;
  for (const auto& store : stores_) store->clock = end;
}

void Simulator::run_until(Millis t) {
  MP_EXPECTS(t >= now());
  if (legacy_) {
    while (!legacy_queue_.empty() && legacy_queue_.top().time <= t) {
      step();
    }
    now_ = t;
    return;
  }
  if (!sharded()) {
    EventStore& store = *stores_[0];
    while (store.next_time() <= t) {
      step();
    }
    now_ = t;
    store.clock = t;
    return;
  }
  // Exclusive bound just past t: events at exactly t still run.
  run_windows(std::nextafter(t, kUnreachable));
  now_ = t;
  for (const auto& store : stores_) store->clock = t;
}

}  // namespace multipub::net
