#include "net/simulator.h"

#include <algorithm>
#include <utility>

#include "common/assert.h"

namespace multipub::net {

namespace {
constexpr std::uint32_t kKindAction = 0;
constexpr std::uint32_t kKindDelivery = 1;
constexpr std::size_t kArity = 4;
// Aimed-for events per rung bucket == steady-state near-heap depth: small
// enough that the near heap's sift path stays in L1/L2.
constexpr std::size_t kBucketTarget = 2048;
constexpr std::size_t kMaxBuckets = 8192;
}  // namespace

void Simulator::heap_push(const CompactEvent& event) {
  std::size_t i = heap_.size();
  heap_.push_back(event);
  // Hole-based sift-up: shift parents down instead of swapping.
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!before(event, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = event;
}

void Simulator::far_push(const CompactEvent& event) {
  ++compact_pending_;
  if (rung_count_ > 0) {
    // Compare in double first: casting an out-of-range value to size_t is
    // UB, and a pathological far-future timestamp must simply go to top_.
    const double idx_d = (event.time - rung_start_) / rung_width_;
    if (idx_d < 0.0) {
      // Legal after run_until stops short of the rung's coverage (the rung
      // was built from far-future events, then the clock was advanced to a
      // time below rung_start_): a new event may land before the rung
      // entirely. It precedes every rung/top event, so the near heap is its
      // ordering-preserving home — and the cast below stays in range.
      heap_push(event);
      return;
    }
    if (idx_d < static_cast<double>(rung_count_)) {
      const auto idx = static_cast<std::size_t>(idx_d);
      if (idx < rung_cur_) {
        // Its bucket has already been promoted — the near heap is now the
        // only store allowed to hold it.
        heap_push(event);
      } else {
        rung_[idx].push_back(event);
      }
      return;
    }
  }
  if (top_.empty()) {
    top_min_ = event.time;
    top_max_ = event.time;
  } else {
    top_min_ = std::min(top_min_, event.time);
    top_max_ = std::max(top_max_, event.time);
  }
  top_.push_back(event);
}

void Simulator::build_rung() {
  // One pass: distribute the top list over constant-width buckets sized so
  // a bucket holds ~kBucketTarget events. Width 0 (all-equal timestamps)
  // degenerates to a single bucket. The mapping here must be the EXACT
  // computation far_push uses, so an event at the coverage boundary (FP
  // rounding can push floor((max-start)/width) to rung_count_) stays in the
  // top list rather than being force-clamped into the last bucket — that
  // keeps "top events never precede bucket events" airtight. At least the
  // top-minimum always lands in bucket 0, so the rebuild loop terminates.
  rung_count_ = std::clamp<std::size_t>(top_.size() / kBucketTarget + 1, 1,
                                        kMaxBuckets);
  if (rung_.size() < rung_count_) rung_.resize(rung_count_);
  rung_start_ = top_min_;
  rung_width_ = (top_max_ - top_min_) / static_cast<double>(rung_count_);
  if (!(rung_width_ > 0.0)) rung_width_ = 1.0;
  rung_cur_ = 0;
  std::size_t kept = 0;
  Millis kept_min = 0.0, kept_max = 0.0;
  for (const CompactEvent& event : top_) {
    const double idx_d = (event.time - rung_start_) / rung_width_;
    if (idx_d < static_cast<double>(rung_count_)) {
      rung_[static_cast<std::size_t>(idx_d)].push_back(event);
      continue;
    }
    if (kept == 0) {
      kept_min = event.time;
      kept_max = event.time;
    } else {
      kept_min = std::min(kept_min, event.time);
      kept_max = std::max(kept_max, event.time);
    }
    top_[kept++] = event;
  }
  top_.resize(kept);
  top_min_ = kept_min;
  top_max_ = kept_max;
}

void Simulator::refill() {
  while (heap_.empty()) {
    if (rung_cur_ < rung_count_) {
      for (const CompactEvent& event : rung_[rung_cur_]) heap_push(event);
      rung_[rung_cur_].clear();
      ++rung_cur_;
      continue;
    }
    if (top_.empty()) return;  // fully drained
    build_rung();
  }
}

Simulator::CompactEvent Simulator::heap_pop() {
  const CompactEvent top = heap_.front();
  const CompactEvent last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n > 0) {
    std::size_t i = 0;
    for (;;) {
      const std::size_t first_child = i * kArity + 1;
      if (first_child >= n) break;
      const std::size_t end_child = std::min(first_child + kArity, n);
      std::size_t best = first_child;
      for (std::size_t c = first_child + 1; c < end_child; ++c) {
        if (before(heap_[c], heap_[best])) best = c;
      }
      if (!before(heap_[best], last)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }
  return top;
}

void Simulator::set_legacy_scheduling(bool on) {
  MP_EXPECTS(pending() == 0);
  legacy_ = on;
}

std::uint32_t Simulator::acquire_action_slot() {
  if (!action_free_.empty()) {
    const std::uint32_t slot = action_free_.back();
    action_free_.pop_back();
    return slot;
  }
  // Slot ids must fit CompactEvent's 24-bit field (16M concurrent events).
  MP_EXPECTS(action_pool_.size() < (1u << CompactEvent::kSlotBits));
  action_pool_.emplace_back();
  return static_cast<std::uint32_t>(action_pool_.size() - 1);
}

std::uint32_t Simulator::acquire_delivery_slot() {
  if (!delivery_free_.empty()) {
    const std::uint32_t slot = delivery_free_.back();
    delivery_free_.pop_back();
    return slot;
  }
  MP_EXPECTS(delivery_pool_.size() < (1u << CompactEvent::kSlotBits));
  delivery_pool_.emplace_back();
  return static_cast<std::uint32_t>(delivery_pool_.size() - 1);
}

void Simulator::schedule_at(Millis t, Action action) {
  MP_EXPECTS(t >= now_);
  if (legacy_) {
    legacy_queue_.push(Event{t, next_seq_++, std::move(action)});
    return;
  }
  const std::uint32_t slot = acquire_action_slot();
  action_pool_[slot] = std::move(action);
  far_push(CompactEvent::make(t, next_seq_++, kKindAction, slot));
}

void Simulator::schedule_after(Millis delay, Action action) {
  MP_EXPECTS(delay >= 0.0);
  schedule_at(now_ + delay, std::move(action));
}

void Simulator::schedule_delivery_at(Millis t, DeliverySink& sink,
                                     Address from, Address to,
                                     const wire::Message& msg) {
  MP_EXPECTS(t >= now_);
  MP_EXPECTS(!legacy_);
  const std::uint32_t slot = acquire_delivery_slot();
  DeliveryEvent& event = delivery_pool_[slot];
  event.sink = &sink;
  event.from = from;
  event.to = to;
  event.msg = msg;
  far_push(CompactEvent::make(t, next_seq_++, kKindDelivery, slot));
}

void Simulator::schedule_delivery_after(Millis delay, DeliverySink& sink,
                                        Address from, Address to,
                                        const wire::Message& msg) {
  MP_EXPECTS(delay >= 0.0);
  schedule_delivery_at(now_ + delay, sink, from, to, msg);
}

bool Simulator::step() {
  if (legacy_) {
    if (legacy_queue_.empty()) return false;
    // priority_queue::top() is const; the action must be moved out before
    // pop.
    Event event = std::move(const_cast<Event&>(legacy_queue_.top()));
    legacy_queue_.pop();
    now_ = event.time;
    ++processed_;
    event.action();
    return true;
  }

  if (heap_.empty()) {
    refill();
    if (heap_.empty()) return false;
  }
  const CompactEvent event = heap_pop();
  --compact_pending_;
  now_ = event.time;
  ++processed_;
  const std::uint32_t slot = event.slot();
  if (event.kind() == kKindAction) {
    // Move the callback out and release the slot before invoking: the
    // action may schedule new events, growing or reusing the pool.
    Action action = std::move(action_pool_[slot]);
    action_pool_[slot] = nullptr;
    action_free_.push_back(slot);
    action();
  } else {
    // Trivially-copyable payload: a stack copy keeps the dispatch safe
    // against pool reallocation when the handler schedules further hops.
    const DeliveryEvent delivery = delivery_pool_[slot];
    delivery_free_.push_back(slot);
    delivery.sink->deliver(delivery);
  }
  return true;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(Millis t) {
  MP_EXPECTS(t >= now_);
  if (legacy_) {
    while (!legacy_queue_.empty() && legacy_queue_.top().time <= t) {
      step();
    }
  } else {
    for (;;) {
      if (heap_.empty()) refill();
      if (heap_.empty() || heap_.front().time > t) break;
      step();
    }
  }
  now_ = t;
}

}  // namespace multipub::net
