#include "net/simulator.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/assert.h"

namespace multipub::net {

namespace {
constexpr std::uint32_t kKindAction = 0;
constexpr std::uint32_t kKindDelivery = 1;
constexpr std::size_t kArity = 4;
// Aimed-for events per rung bucket == steady-state near-heap depth: small
// enough that the near heap's sift path stays in L1/L2.
constexpr std::size_t kBucketTarget = 2048;
constexpr std::size_t kMaxBuckets = 8192;
}  // namespace

thread_local Simulator::EventStore* Simulator::tls_store_ = nullptr;
thread_local std::uint32_t Simulator::tls_shard_ = 0;

void Simulator::EventStore::heap_push(const CompactEvent& event) {
  std::size_t i = heap_.size();
  heap_.push_back(event);
  // Hole-based sift-up: shift parents down instead of swapping.
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!before(event, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = event;
}

void Simulator::EventStore::far_push(const CompactEvent& event) {
  ++compact_pending_;
  if (rung_count_ > 0) {
    // Compare in double first: casting an out-of-range value to size_t is
    // UB, and a pathological far-future timestamp must simply go to top_.
    const double idx_d = (event.time - rung_start_) / rung_width_;
    if (idx_d < 0.0) {
      // Legal after run_until stops short of the rung's coverage (the rung
      // was built from far-future events, then the clock was advanced to a
      // time below rung_start_): a new event may land before the rung
      // entirely. It precedes every rung/top event, so the near heap is its
      // ordering-preserving home — and the cast below stays in range.
      heap_push(event);
      return;
    }
    if (idx_d < static_cast<double>(rung_count_)) {
      const auto idx = static_cast<std::size_t>(idx_d);
      if (idx < rung_cur_) {
        // Its bucket has already been promoted — the near heap is now the
        // only store allowed to hold it.
        heap_push(event);
      } else {
        rung_[idx].push_back(event);
      }
      return;
    }
  }
  if (top_.empty()) {
    top_min_ = event.time;
    top_max_ = event.time;
  } else {
    top_min_ = std::min(top_min_, event.time);
    top_max_ = std::max(top_max_, event.time);
  }
  top_.push_back(event);
}

void Simulator::EventStore::build_rung() {
  // One pass: distribute the top list over constant-width buckets sized so
  // a bucket holds ~kBucketTarget events. Width 0 (all-equal timestamps)
  // degenerates to a single bucket. The mapping here must be the EXACT
  // computation far_push uses, so an event at the coverage boundary (FP
  // rounding can push floor((max-start)/width) to rung_count_) stays in the
  // top list rather than being force-clamped into the last bucket — that
  // keeps "top events never precede bucket events" airtight. At least the
  // top-minimum always lands in bucket 0, so the rebuild loop terminates.
  rung_count_ = std::clamp<std::size_t>(top_.size() / kBucketTarget + 1, 1,
                                        kMaxBuckets);
  if (rung_.size() < rung_count_) rung_.resize(rung_count_);
  rung_start_ = top_min_;
  rung_width_ = (top_max_ - top_min_) / static_cast<double>(rung_count_);
  if (!(rung_width_ > 0.0)) rung_width_ = 1.0;
  rung_cur_ = 0;
  std::size_t kept = 0;
  Millis kept_min = 0.0, kept_max = 0.0;
  for (const CompactEvent& event : top_) {
    const double idx_d = (event.time - rung_start_) / rung_width_;
    if (idx_d < static_cast<double>(rung_count_)) {
      rung_[static_cast<std::size_t>(idx_d)].push_back(event);
      continue;
    }
    if (kept == 0) {
      kept_min = event.time;
      kept_max = event.time;
    } else {
      kept_min = std::min(kept_min, event.time);
      kept_max = std::max(kept_max, event.time);
    }
    top_[kept++] = event;
  }
  top_.resize(kept);
  top_min_ = kept_min;
  top_max_ = kept_max;
}

void Simulator::EventStore::refill() {
  while (heap_.empty()) {
    if (rung_cur_ < rung_count_) {
      for (const CompactEvent& event : rung_[rung_cur_]) heap_push(event);
      rung_[rung_cur_].clear();
      ++rung_cur_;
      continue;
    }
    if (top_.empty()) return;  // fully drained
    build_rung();
  }
}

Simulator::CompactEvent Simulator::EventStore::heap_pop() {
  const CompactEvent top = heap_.front();
  const CompactEvent last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n > 0) {
    std::size_t i = 0;
    for (;;) {
      const std::size_t first_child = i * kArity + 1;
      if (first_child >= n) break;
      const std::size_t end_child = std::min(first_child + kArity, n);
      std::size_t best = first_child;
      for (std::size_t c = first_child + 1; c < end_child; ++c) {
        if (before(heap_[c], heap_[best])) best = c;
      }
      if (!before(heap_[best], last)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }
  return top;
}

std::uint32_t Simulator::EventStore::acquire_action_slot() {
  if (!action_free_.empty()) {
    const std::uint32_t slot = action_free_.back();
    action_free_.pop_back();
    return slot;
  }
  // Slot ids must fit CompactEvent's 24-bit field (16M concurrent events).
  MP_EXPECTS(action_pool_.size() < (1u << CompactEvent::kSlotBits));
  action_pool_.emplace_back();
  return static_cast<std::uint32_t>(action_pool_.size() - 1);
}

std::uint32_t Simulator::EventStore::acquire_delivery_slot() {
  if (!delivery_free_.empty()) {
    const std::uint32_t slot = delivery_free_.back();
    delivery_free_.pop_back();
    return slot;
  }
  MP_EXPECTS(delivery_pool_.size() < (1u << CompactEvent::kSlotBits));
  delivery_pool_.emplace_back();
  return static_cast<std::uint32_t>(delivery_pool_.size() - 1);
}

void Simulator::EventStore::insert_action(Millis t, Simulator::Action action) {
  const std::uint32_t slot = acquire_action_slot();
  action_pool_[slot] = std::move(action);
  far_push(CompactEvent::make(t, seq++, kKindAction, slot));
}

void Simulator::EventStore::insert_delivery(Millis t, DeliverySink& sink,
                                            Address from, Address to,
                                            const wire::Message& msg) {
  const std::uint32_t slot = acquire_delivery_slot();
  DeliveryEvent& event = delivery_pool_[slot];
  event.sink = &sink;
  event.from = from;
  event.to = to;
  event.msg = msg;
  far_push(CompactEvent::make(t, seq++, kKindDelivery, slot));
}

Millis Simulator::EventStore::next_time() {
  if (heap_.empty()) refill();
  return heap_.empty() ? kUnreachable : heap_.front().time;
}

void Simulator::EventStore::dispatch_one() {
  const CompactEvent event = heap_pop();
  --compact_pending_;
  clock = event.time;
  ++processed;
  const std::uint32_t slot = event.slot();
  if (event.kind() == kKindAction) {
    // Move the callback out and release the slot before invoking: the
    // action may schedule new events, growing or reusing the pool.
    Action action = std::move(action_pool_[slot]);
    action_pool_[slot] = nullptr;
    action_free_.push_back(slot);
    action();
  } else {
    // Trivially-copyable payload: a stack copy keeps the dispatch safe
    // against pool reallocation when the handler schedules further hops.
    const DeliveryEvent delivery = delivery_pool_[slot];
    delivery_free_.push_back(slot);
    delivery.sink->deliver(delivery);
  }
}

Simulator::~Simulator() { shutdown_workers(); }

void Simulator::set_legacy_scheduling(bool on) {
  MP_EXPECTS(pending() == 0);
  MP_EXPECTS(!sharded());
  legacy_ = on;
}

std::size_t Simulator::pending() const {
  if (legacy_) return legacy_queue_.size();
  std::size_t total = 0;
  for (const auto& store : stores_) total += store->compact_pending_;
  return total;
}

std::uint64_t Simulator::processed() const {
  std::uint64_t total = processed_base_;
  for (const auto& store : stores_) total += store->processed;
  return total;
}

void Simulator::configure_shards(ShardMap map, Millis lookahead) {
  MP_EXPECTS(!legacy_);
  MP_EXPECTS(pending() == 0);
  MP_EXPECTS(tls_store_ == nullptr);
  MP_EXPECTS(map.shards >= 1);
  shutdown_workers();
  const std::uint32_t k = map.shards;
  map_ = std::move(map);
  // Fresh stores: pools and per-shard sequence counters restart, the clocks
  // carry the current time forward, and already-dispatched counts fold into
  // the base so processed() stays monotone.
  for (const auto& store : stores_) processed_base_ += store->processed;
  stores_.clear();
  stores_.reserve(k);
  for (std::uint32_t i = 0; i < k; ++i) {
    stores_.push_back(std::make_unique<EventStore>());
    stores_.back()->clock = now_;
  }
  mail_.assign(static_cast<std::size_t>(k) * k, Mailbox{});
  if (k == 1) {
    lookahead_ = 0.0;
    return;
  }
  MP_EXPECTS(lookahead > 0.0);
  lookahead_ = lookahead;
  gate_ = std::make_unique<std::barrier<>>(k);
  workers_.reserve(k - 1);
  for (std::uint32_t i = 1; i < k; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

void Simulator::set_lookahead(Millis lookahead) {
  MP_EXPECTS(sharded());
  MP_EXPECTS(tls_store_ == nullptr);
  MP_EXPECTS(lookahead > 0.0);
  lookahead_ = lookahead;
}

void Simulator::shutdown_workers() {
  if (workers_.empty()) return;
  command_ = Command::kShutdown;
  gate_->arrive_and_wait();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  gate_.reset();
}

void Simulator::schedule_at(Millis t, Action action) {
  MP_EXPECTS(t >= now());
  if (legacy_) {
    legacy_queue_.push(Event{t, legacy_seq_++, std::move(action)});
    return;
  }
  // Inside a window the action stays on the dispatching shard (timers are
  // entity-local); outside, shard 0 hosts un-hinted actions.
  EventStore& store = tls_store_ != nullptr ? *tls_store_ : *stores_[0];
  store.insert_action(t, std::move(action));
}

void Simulator::schedule_at(Millis t, Address owner, Action action) {
  MP_EXPECTS(t >= now());
  if (legacy_) {
    legacy_queue_.push(Event{t, legacy_seq_++, std::move(action)});
    return;
  }
  EventStore& store = *stores_[owner_shard(owner)];
  // Cross-shard actions have no sequenced channel — only deliveries do — so
  // from inside a window the owner must be local.
  MP_EXPECTS(tls_store_ == nullptr || tls_store_ == &store);
  store.insert_action(t, std::move(action));
}

void Simulator::schedule_after(Millis delay, Action action) {
  MP_EXPECTS(delay >= 0.0);
  schedule_at(now() + delay, std::move(action));
}

void Simulator::schedule_delivery_at(Millis t, DeliverySink& sink,
                                     Address from, Address to,
                                     const wire::Message& msg) {
  MP_EXPECTS(t >= now());
  MP_EXPECTS(!legacy_);
  if (!sharded()) {
    stores_[0]->insert_delivery(t, sink, from, to, msg);
    return;
  }
  const std::uint32_t dst = map_.shard_of(to);
  if (tls_store_ == nullptr) {
    // No window running (control plane, test setup): every store is
    // quiescent, insert straight into the owner's.
    stores_[dst]->insert_delivery(t, sink, from, to, msg);
    return;
  }
  if (dst == tls_shard_) {
    tls_store_->insert_delivery(t, sink, from, to, msg);
    return;
  }
  // Cross-shard: park in the (src, dst) mailbox until the window barrier.
  mail_[static_cast<std::size_t>(tls_shard_) * stores_.size() + dst]
      .items.push_back(MailItem{t, DeliveryEvent{&sink, from, to, msg}});
}

void Simulator::schedule_delivery_after(Millis delay, DeliverySink& sink,
                                        Address from, Address to,
                                        const wire::Message& msg) {
  MP_EXPECTS(delay >= 0.0);
  schedule_delivery_at(now() + delay, sink, from, to, msg);
}

bool Simulator::step() {
  if (legacy_) {
    if (legacy_queue_.empty()) return false;
    // priority_queue::top() is const; the action must be moved out before
    // pop.
    Event event = std::move(const_cast<Event&>(legacy_queue_.top()));
    legacy_queue_.pop();
    now_ = event.time;
    ++processed_base_;
    event.action();
    return true;
  }
  MP_EXPECTS(!sharded());  // the parallel plane runs whole windows
  EventStore& store = *stores_[0];
  if (store.next_time() == kUnreachable) return false;
  tls_store_ = &store;
  store.dispatch_one();
  tls_store_ = nullptr;
  now_ = store.clock;
  return true;
}

Millis Simulator::global_next_time() {
  Millis t_min = kUnreachable;
  for (const auto& store : stores_) t_min = std::min(t_min, store->next_time());
  return t_min;
}

void Simulator::run_window(std::uint32_t shard) {
  EventStore& store = *stores_[shard];
  tls_store_ = &store;
  tls_shard_ = shard;
  const Millis end = window_end_;
  while (store.next_time() < end) store.dispatch_one();
  tls_store_ = nullptr;
  tls_shard_ = 0;
}

void Simulator::drain_inboxes(std::uint32_t shard) {
  const std::size_t k = stores_.size();
  EventStore& store = *stores_[shard];
  // Fixed merge order — source shard ascending, FIFO within a source — with
  // fresh destination-local sequence numbers: the interleaving is a pure
  // function of the schedule-independent send order, never of thread timing.
  for (std::size_t src = 0; src < k; ++src) {
    Mailbox& box = mail_[src * k + shard];
    for (const MailItem& item : box.items) {
      // Conservative-window invariant: a cross-shard send arrives no
      // earlier than the end of the window that produced it (the window is
      // at most the minimum cross-shard latency wide).
      MP_EXPECTS(item.time >= window_end_);
      store.insert_delivery(item.time, *item.event.sink, item.event.from,
                            item.event.to, item.event.msg);
    }
    box.items.clear();
  }
}

void Simulator::worker_loop(std::uint32_t shard) {
  // Every command is read exactly once per publication phase, and the
  // driver never rewrites command_ until a LATER phase this thread helped
  // complete — kRunWindow is covered by its own B/C barriers, kEndRun by
  // the explicit ack below, kShutdown by being final on this barrier.
  // Without the ack, a worker waking late from the kEndRun phase could see
  // the command already overwritten for the next phase and desynchronize.
  for (;;) {
    gate_->arrive_and_wait();  // window (or control command) published
    const Command command = command_;
    if (command == Command::kShutdown) return;
    if (command == Command::kEndRun) {
      gate_->arrive_and_wait();  // ack: the driver may publish again
      continue;
    }
    run_window(shard);
    gate_->arrive_and_wait();  // all shards done writing mailboxes
    drain_inboxes(shard);
    gate_->arrive_and_wait();  // all inboxes drained
  }
}

void Simulator::run_windows(Millis limit) {
  MP_EXPECTS(tls_store_ == nullptr);
  for (;;) {
    const Millis t_min = global_next_time();
    if (!(t_min < limit)) break;
    // Window [t_min, t_min + lookahead): every event a shard dispatches in
    // it can only reach another shard at t >= window_end_ (delays are at
    // least the lookahead, jitter and fault factors only stretch them —
    // drain_inboxes asserts this). IEEE addition is monotone, so computed
    // arrival times respect the bound too; nextafter keeps the window
    // non-empty even when lookahead_ vanishes against the ulp of t_min.
    Millis end = t_min + lookahead_;
    if (!(end > t_min)) end = std::nextafter(t_min, kUnreachable);
    window_end_ = std::min(end, limit);
    command_ = Command::kRunWindow;
    gate_->arrive_and_wait();
    run_window(0);  // the driving thread doubles as shard 0's worker
    gate_->arrive_and_wait();
    drain_inboxes(0);
    gate_->arrive_and_wait();
  }
  command_ = Command::kEndRun;
  gate_->arrive_and_wait();  // end-of-run published
  gate_->arrive_and_wait();  // every worker has read it; command_ is ours
}

void Simulator::run() {
  if (!sharded()) {
    while (step()) {
    }
    return;
  }
  run_windows(kUnreachable);
  // The run's end time is schedule-independent: the max event timestamp any
  // shard dispatched (or the previous time when nothing ran).
  Millis end = now_;
  for (const auto& store : stores_) end = std::max(end, store->clock);
  now_ = end;
  for (const auto& store : stores_) store->clock = end;
}

void Simulator::run_until(Millis t) {
  MP_EXPECTS(t >= now());
  if (legacy_) {
    while (!legacy_queue_.empty() && legacy_queue_.top().time <= t) {
      step();
    }
    now_ = t;
    return;
  }
  if (!sharded()) {
    EventStore& store = *stores_[0];
    while (store.next_time() <= t) {
      step();
    }
    now_ = t;
    store.clock = t;
    return;
  }
  // Exclusive bound just past t: events at exactly t still run.
  run_windows(std::nextafter(t, kUnreachable));
  now_ = t;
  for (const auto& store : stores_) store->clock = t;
}

}  // namespace multipub::net
