#include "net/fault_plan.h"

#include <algorithm>

#include "common/assert.h"

namespace multipub::net {

bool FaultEndpoint::matches(Address address) const {
  switch (kind) {
    case Kind::kAny:
      return true;
    case Kind::kAnyRegion:
      return address.kind == Address::Kind::kRegion;
    case Kind::kAnyClient:
      return address.kind == Address::Kind::kClient;
    case Kind::kRegion:
      return address.kind == Address::Kind::kRegion && address.id == id;
    case Kind::kClient:
      return address.kind == Address::Kind::kClient && address.id == id;
  }
  return false;
}

int FaultPlan::add(const FaultRule& rule) {
  MP_EXPECTS(rule.start <= rule.end);
  MP_EXPECTS(rule.delay_factor > 0.0);
  MP_EXPECTS(rule.delay_extra_ms >= 0.0);
  MP_EXPECTS(rule.drop_probability >= 0.0 && rule.drop_probability <= 1.0);
  const int id = next_id_++;
  rules_.emplace_back(id, rule);
  return id;
}

void FaultPlan::remove(int id) {
  rules_.erase(std::remove_if(rules_.begin(), rules_.end(),
                              [id](const auto& entry) {
                                return entry.first == id;
                              }),
               rules_.end());
}

FaultPlan::Outcome FaultPlan::apply(Address from, Address to, Millis now) {
  Outcome outcome;
  for (const auto& [id, rule] : rules_) {
    if (now < rule.start || now >= rule.end) continue;
    if (!rule.from.matches(from) || !rule.to.matches(to)) continue;
    switch (rule.kind) {
      case FaultRule::Kind::kPartition:
        partition_dropped_.fetch_add(1, std::memory_order_relaxed);
        outcome.dropped = true;
        return outcome;
      case FaultRule::Kind::kDrop:
        // One draw per active matching rule until the message is lost. The
        // coin outcomes are themselves deterministic in the seed, so the
        // stream position — and with it every later decision — is too.
        if (rng_.uniform(0.0, 1.0) < rule.drop_probability) {
          random_dropped_.fetch_add(1, std::memory_order_relaxed);
          outcome.dropped = true;
          return outcome;
        }
        break;
      case FaultRule::Kind::kDelay:
        outcome.delay_factor *= rule.delay_factor;
        outcome.delay_extra_ms += rule.delay_extra_ms;
        break;
    }
  }
  if (outcome.delay_factor != 1.0 || outcome.delay_extra_ms != 0.0) {
    delayed_.fetch_add(1, std::memory_order_relaxed);
  }
  return outcome;
}

FaultPlan::Outcome FaultPlan::apply(Address from, Address to, Millis now,
                                    Rng& coin) const {
  // Same scan as the stateful overload, but the coin stream is the caller's
  // and the plan's own stream is untouched; the tallies are relaxed atomics,
  // so shard workers can consult one shared plan concurrently.
  Outcome outcome;
  for (const auto& [id, rule] : rules_) {
    if (now < rule.start || now >= rule.end) continue;
    if (!rule.from.matches(from) || !rule.to.matches(to)) continue;
    switch (rule.kind) {
      case FaultRule::Kind::kPartition:
        partition_dropped_.fetch_add(1, std::memory_order_relaxed);
        outcome.dropped = true;
        return outcome;
      case FaultRule::Kind::kDrop:
        if (coin.uniform(0.0, 1.0) < rule.drop_probability) {
          random_dropped_.fetch_add(1, std::memory_order_relaxed);
          outcome.dropped = true;
          return outcome;
        }
        break;
      case FaultRule::Kind::kDelay:
        outcome.delay_factor *= rule.delay_factor;
        outcome.delay_extra_ms += rule.delay_extra_ms;
        break;
    }
  }
  if (outcome.delay_factor != 1.0 || outcome.delay_extra_ms != 0.0) {
    delayed_.fetch_add(1, std::memory_order_relaxed);
  }
  return outcome;
}

namespace {
[[nodiscard]] bool pattern_can_match_client(const FaultEndpoint& endpoint) {
  return endpoint.kind == FaultEndpoint::Kind::kAny ||
         endpoint.kind == FaultEndpoint::Kind::kAnyClient ||
         endpoint.kind == FaultEndpoint::Kind::kClient;
}
}  // namespace

bool FaultPlan::may_affect_client_deliveries(Address from, Millis now) const {
  for (const auto& [id, rule] : rules_) {
    if (now < rule.start || now >= rule.end) continue;
    if (rule.from.matches(from) && pattern_can_match_client(rule.to)) {
      return true;
    }
  }
  return false;
}

bool FaultPlan::may_affect_client_sends(Address to, Millis now) const {
  for (const auto& [id, rule] : rules_) {
    if (now < rule.start || now >= rule.end) continue;
    if (pattern_can_match_client(rule.from) && rule.to.matches(to)) {
      return true;
    }
  }
  return false;
}

double FaultPlan::lookahead_scale() const {
  double scale = 1.0;
  for (const auto& [id, rule] : rules_) {
    if (rule.kind != FaultRule::Kind::kDelay) continue;
    scale *= std::min(1.0, rule.delay_factor);
  }
  MP_EXPECTS(scale > 0.0);  // add() rejects non-positive factors
  return scale;
}

}  // namespace multipub::net
