// Discrete-event simulator.
//
// The substrate on which the live MultiPub middleware runs (substitution #1
// in DESIGN.md): virtual time in milliseconds, a priority queue of events,
// deterministic FIFO ordering among same-timestamp events (a sequence number
// breaks ties), so every run is reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace multipub::net {

/// Single-threaded virtual-time event loop.
class Simulator {
 public:
  using Action = std::function<void()>;

  /// Current virtual time (ms since simulation start).
  [[nodiscard]] Millis now() const { return now_; }

  /// Schedules `action` at absolute virtual time `t`. Pre: t >= now().
  void schedule_at(Millis t, Action action);

  /// Schedules `action` `delay` ms from now. Pre: delay >= 0.
  void schedule_after(Millis delay, Action action);

  /// Executes the earliest pending event; returns false when idle.
  bool step();

  /// Runs until the queue drains.
  void run();

  /// Runs all events with timestamp <= t, then advances the clock to t.
  void run_until(Millis t);

  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t processed() const { return processed_; }

 private:
  struct Event {
    Millis time;
    std::uint64_t seq;  // FIFO tie-break for equal timestamps
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  Millis now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace multipub::net
