// Discrete-event simulator.
//
// The substrate on which the live MultiPub middleware runs (substitution #1
// in DESIGN.md): virtual time in milliseconds, a priority queue of events,
// deterministic FIFO ordering among same-timestamp events (a sequence number
// breaks ties), so every run is reproducible.
//
// Two event representations share one (time, seq) order:
//  - generic Actions (std::function) for control-plane callbacks, and
//  - typed DeliveryEvents — one message hop, dispatched straight to the
//    transport that scheduled it — so the data plane never pays a heap
//    allocation per hop: the queue holds a 16-byte handle and the payload
//    lives in a recycled pool slot.
// The seed's std::function-per-event engine is retained behind
// set_legacy_scheduling(true) as the differential-test / benchmark
// reference; both engines consume one sequence counter per store, so
// dispatch order is bit-identical between them.
//
// Sharded parallel mode (DESIGN.md §11): configure_shards() partitions the
// address space over K shards, each with its own two-level event store and
// worker thread, synchronized by conservative time windows. Every window
// [T, T + lookahead) is executed by all shards in parallel; an event may
// only schedule a cross-shard delivery at least `lookahead` (the minimum
// cross-shard link latency) in the future, so no event inside a window can
// affect another shard within the same window. Cross-shard deliveries land
// in per-(source, destination) mailboxes and are drained at the window
// barrier in fixed source-shard order, which makes the interleaving — and
// with it every observable — bit-identical to the single-threaded run.
//
// Window policy (DESIGN.md §14): kFixed sizes every window by the single
// scalar lookahead; kAdaptive gives each shard its own window end derived
// from which shards actually hold work — E_d = min over busy shards A of
// (t_A + dist[A][d]), where dist is the shortest-walk matrix over the
// per-(source, destination) lookahead graph. Idle shards impose no bound,
// so quiet stretches collapse into a handful of wide windows while dense
// phases degenerate to exactly the fixed pacing. Both policies execute the
// identical event sequence — windows only batch, never reorder.
//
// Synchronization is one purpose-built sense-reversing barrier round per
// window: arrivals spin briefly (exponential backoff, then yields) before
// parking on a futex via std::atomic::wait; the LAST arriver drains every
// mailbox and plans the next window inside the barrier's serial phase, so
// a window costs a single synchronization episode instead of the previous
// run/drain barrier pair.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <thread>
#include <vector>

#include "common/assert.h"
#include "common/types.h"
#include "net/address.h"
#include "net/bus.h"
#include "wire/message.h"

namespace multipub::net {

class DeliverySink;

/// One in-flight message hop: deliver `msg` (sent by `from`) to `to` via the
/// transport that scheduled it. Plain trivially-copyable data — scheduling a
/// delivery never touches the heap beyond the simulator's recycled pools.
struct DeliveryEvent {
  DeliverySink* sink = nullptr;
  Address from;
  Address to;
  wire::Message msg;
};

/// Receiver of typed delivery events (implemented by SimTransport).
class DeliverySink {
 public:
  virtual void deliver(const DeliveryEvent& event) = 0;

 protected:
  ~DeliverySink() = default;
};

/// Static entity-to-shard assignment for the sharded data plane. Every
/// address (client or region broker) lives on exactly one shard; all events
/// OWNED by an entity (deliveries to it, its timers) execute on that shard.
struct ShardMap {
  std::uint32_t shards = 1;
  std::vector<std::uint32_t> region_shard;  ///< indexed by RegionId
  std::vector<std::uint32_t> client_shard;  ///< indexed by ClientId
  /// Indexed by flock id; a cohort lives on its home region's shard.
  std::vector<std::uint32_t> cohort_shard;

  [[nodiscard]] std::uint32_t shard_of(Address address) const {
    const auto index = static_cast<std::size_t>(address.id);
    const auto& table = address.kind == Address::Kind::kClient ? client_shard
                        : address.kind == Address::Kind::kRegion
                            ? region_shard
                            : cohort_shard;
    MP_EXPECTS(address.id >= 0 && index < table.size());
    return table[index];
  }
};

/// How the sharded plane sizes its conservative windows.
enum class WindowPolicy : std::uint8_t {
  kFixed,     ///< every window is `lookahead` wide (the PR 5 behaviour)
  kAdaptive,  ///< per-shard ends from the busy-shard horizon (DESIGN.md §14)
};

/// Telemetry of the sharded plane's window machinery. Hardware-independent
/// counters (windows, widths, mailbox traffic) prove scheduling progress
/// even on a 1-core bench host; the barrier counters diagnose whether waits
/// resolve by spinning or by parking. Reset by configure_shards().
struct WindowStats {
  std::uint64_t windows = 0;        ///< barrier rounds executed
  Millis width_sum = 0.0;           ///< sum of (max window end - round start)
  Millis width_max = 0.0;           ///< widest single round
  std::uint64_t mail_items = 0;     ///< cross-shard deliveries drained
  std::uint64_t barrier_spins = 0;  ///< waits resolved while spinning
  std::uint64_t barrier_parks = 0;  ///< waits that parked on the futex
  std::uint64_t events = 0;         ///< events dispatched by the shard stores

  [[nodiscard]] Millis width_mean() const {
    return windows > 0 ? width_sum / static_cast<double>(windows) : 0.0;
  }
  [[nodiscard]] double events_per_window() const {
    return windows > 0
               ? static_cast<double>(events) / static_cast<double>(windows)
               : 0.0;
  }
};

/// Virtual-time event loop; single-threaded by default, optionally sharded
/// over worker threads via configure_shards(). The middleware sees it as a
/// Clock (virtual time); the overrides are final, so calls through a
/// concrete Simulator* still devirtualize.
class Simulator : public Clock {
 public:
  using Action = std::function<void()>;

  Simulator() { stores_.push_back(std::make_unique<EventStore>()); }
  ~Simulator() override;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time (ms since simulation start). Inside a sharded
  /// window this is the executing shard's clock — the timestamp of the
  /// event being dispatched, exactly as in a single-threaded run.
  [[nodiscard]] Millis now() const final {
    return tls_store_ != nullptr ? tls_store_->clock : now_;
  }

  /// Schedules `action` at absolute virtual time `t`. Pre: t >= now().
  /// In sharded mode the action runs on the CALLING shard (entity timers
  /// are entity-local); from outside a window it lands on shard 0 — use the
  /// owner-hinted overload for actions that touch a specific entity.
  void schedule_at(Millis t, Action action);

  /// Owner-hinted form for sharded mode: the action executes on the shard
  /// that owns `owner` (e.g. a publisher's client address for a traffic
  /// injection). From inside a window the owner must be on the calling
  /// shard — cross-shard effects must travel as deliveries, which are the
  /// only sequenced cross-shard channel.
  void schedule_at(Millis t, Address owner, Action action);

  /// Schedules `action` `delay` ms from now. Pre: delay >= 0.
  void schedule_after(Millis delay, Action action) final;

  /// Schedules a typed message delivery at absolute virtual time `t`; the
  /// event is dispatched back to `sink` when it fires. Pre: t >= now() and
  /// legacy scheduling is off (the legacy engine predates typed events).
  /// In sharded mode the event is routed to the shard owning `to`: directly
  /// into its store when the sender shares the shard (or no window is
  /// running), through the sequenced mailbox otherwise.
  void schedule_delivery_at(Millis t, DeliverySink& sink, Address from,
                            Address to, const wire::Message& msg);

  /// Same, `delay` ms from now. Pre: delay >= 0.
  void schedule_delivery_after(Millis delay, DeliverySink& sink, Address from,
                               Address to, const wire::Message& msg);

  /// Executes the earliest pending event; returns false when idle. Only
  /// meaningful single-threaded (the sharded plane runs whole windows).
  bool step();

  /// Runs until the queue drains.
  void run();

  /// Runs all events with timestamp <= t, then advances the clock to t.
  void run_until(Millis t);

  /// Switches to (or away from) the seed's std::function-per-event engine.
  /// Only allowed while the queue is empty and unsharded; kept as the
  /// reference path for the data-plane differential tests and
  /// bench_dataplane.
  void set_legacy_scheduling(bool on);
  [[nodiscard]] bool legacy_scheduling() const { return legacy_; }

  /// Splits the simulation into `map.shards` parallel shards with the given
  /// conservative window width (the minimum cross-shard link latency; see
  /// SimTransport::min_cross_shard_latency). Spawns shards-1 worker threads;
  /// the calling thread doubles as shard 0's worker inside run(). Only
  /// allowed while the queue is empty and legacy scheduling is off.
  /// `map.shards == 1` restores single-threaded operation.
  void configure_shards(ShardMap map, Millis lookahead);
  [[nodiscard]] std::uint32_t shards() const {
    return static_cast<std::uint32_t>(stores_.size());
  }
  [[nodiscard]] bool sharded() const { return stores_.size() > 1; }

  /// Refreshes the window width (e.g. after a FaultPlan starts shrinking
  /// latencies). Only between runs. Pre: sharded, lookahead > 0.
  void set_lookahead(Millis lookahead);
  [[nodiscard]] Millis lookahead() const { return lookahead_; }

  /// Selects how windows are sized (kFixed by default). kAdaptive requires a
  /// lookahead matrix (set_lookahead_matrix). Only between runs.
  void set_window_policy(WindowPolicy policy);
  [[nodiscard]] WindowPolicy window_policy() const { return policy_; }

  /// Per-(source shard, destination shard) lookahead matrix for the adaptive
  /// policy, row-major K*K: la[src * K + dst] is the earliest a shard-`src`
  /// event at time t can affect shard `dst` (t + la). The diagonal is
  /// ignored. Internally expanded to the shortest-walk closure (>= 1 hop),
  /// so transitive reactivation chains — A wakes B which sends back to A —
  /// bound every window correctly. Only between runs; pre: sharded, entries
  /// >= 0. Rescale together with set_lookahead when a FaultPlan shrinks
  /// latencies.
  void set_lookahead_matrix(std::vector<Millis> lookaheads);

  /// Snapshot of the window/barrier telemetry accumulated since the last
  /// configure_shards(). All zeros when unsharded. Only between runs.
  [[nodiscard]] WindowStats window_stats() const;

  /// Shard of the event being dispatched on the calling thread; 0 outside
  /// dispatch. Counters indexed by this are race-free lane-wise.
  [[nodiscard]] std::uint32_t current_shard() const { return tls_shard_; }

  /// Shard that OWNS `address` under the current map (0 when unsharded).
  /// Per-sender state (e.g. the transport's per-link RNG streams) keyed by
  /// this is single-writer: during a window only the owner shard dispatches
  /// the sender's events, and outside windows every shard is quiescent.
  [[nodiscard]] std::uint32_t owner_shard(Address address) const {
    return sharded() ? map_.shard_of(address) : 0;
  }

  /// True while the calling thread is dispatching an event (single-threaded
  /// step or a sharded window).
  [[nodiscard]] bool dispatching() const { return tls_store_ != nullptr; }

  [[nodiscard]] std::size_t pending() const;
  [[nodiscard]] std::uint64_t processed() const;

 private:
  /// 16-byte queue entry of the default engine; the payload (an Action or a
  /// DeliveryEvent) lives in the matching pool at index `slot`. seq, kind
  /// and slot share one word: seq occupies the HIGH bits, so comparing the
  /// packed words compares seq — the FIFO tie-break for equal timestamps —
  /// and kind/slot below it never influence the order (seq is unique).
  struct CompactEvent {
    Millis time;
    std::uint64_t packed;  // seq:39 | kind:1 | slot:24

    static constexpr std::uint64_t kSlotBits = 24;
    static constexpr std::uint64_t kKindShift = kSlotBits;
    static constexpr std::uint64_t kSeqShift = kSlotBits + 1;
    static constexpr std::uint64_t kSeqBits = 64 - kSeqShift;  // 39

    [[nodiscard]] static CompactEvent make(Millis time, std::uint64_t seq,
                                           std::uint32_t kind,
                                           std::uint32_t slot) {
      // A seq past 39 bits would silently spill into kind/slot and corrupt
      // both dispatch and the FIFO tie-break; fail loudly instead (the slot
      // pools already assert their 24-bit limit).
      MP_EXPECTS(seq < (std::uint64_t{1} << kSeqBits));
      return {time, seq << kSeqShift |
                        std::uint64_t{kind} << kKindShift | slot};
    }
    [[nodiscard]] std::uint32_t kind() const {
      return static_cast<std::uint32_t>(packed >> kKindShift & 1);
    }
    [[nodiscard]] std::uint32_t slot() const {
      return static_cast<std::uint32_t>(packed & ((1u << kSlotBits) - 1));
    }
  };
  /// (time, seq) is a TOTAL order (seq is unique per store), so any correct
  /// min-heap pops the exact same sequence — the container choice cannot
  /// affect determinism.
  [[nodiscard]] static bool before(const CompactEvent& a,
                                   const CompactEvent& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.packed < b.packed;  // high bits are seq
  }

  /// One shard's complete event state: the two-level store (see the member
  /// comment below), the recycled payload pools, its own sequence counter
  /// (assigned in insertion order, exactly as the single-threaded engine
  /// would) and its clock. In single-threaded mode there is exactly one.
  struct EventStore {
    void heap_push(const CompactEvent& event);
    CompactEvent heap_pop();
    /// Routes a compact event to the near heap, a rung bucket, or the top
    /// list.
    void far_push(const CompactEvent& event);
    /// Promotes rung buckets (rebuilding the rung from the top list when it
    /// runs out) until the near heap has events or everything is drained.
    void refill();
    void build_rung();

    [[nodiscard]] std::uint32_t acquire_action_slot();
    [[nodiscard]] std::uint32_t acquire_delivery_slot();
    void insert_action(Millis t, Simulator::Action action);
    void insert_delivery(Millis t, DeliverySink& sink, Address from,
                         Address to, const wire::Message& msg);
    /// Timestamp of the earliest pending event (kUnreachable when empty);
    /// refills the near heap as a side effect.
    [[nodiscard]] Millis next_time();
    /// Pops and invokes the earliest event, advancing `clock` to its time.
    void dispatch_one();

    Millis clock = 0.0;
    std::uint64_t seq = 0;
    std::uint64_t processed = 0;

    // Two-level event store for the default engine (a single-rung ladder
    // queue). Pops are absorbed by a small NEAR heap (4-ary min-heap, stays
    // cache-resident); far-future events wait unsorted — first in the TOP
    // list, then distributed once into the RUNG's constant-width time
    // buckets — and are only heapified when the horizon reaches their
    // bucket. Every event is bucketed O(1) times, so the steady-state cost
    // per event stays flat even with ~10^6 in flight (where a single big
    // heap spends its time in cache misses).
    //
    // Ordering stays EXACT: bucket_of(t) = floor((t - start) / width) is
    // monotone in t under IEEE rounding (subtraction, division by a
    // positive constant and floor are all monotone), so an event in a lower
    // bucket never has a later time than one in a higher bucket, and the
    // near heap — which always holds every not-yet-popped event of the
    // buckets below rung_cur_ — contains the global minimum whenever it is
    // non-empty. Ties are settled inside the near heap by the total
    // (time, seq) order.
    std::vector<CompactEvent> heap_;                // near events
    std::vector<std::vector<CompactEvent>> rung_;   // reused bucket storage
    std::vector<CompactEvent> top_;  // beyond the rung's coverage
    std::size_t rung_count_ = 0;     // active buckets this generation
    std::size_t rung_cur_ = 0;       // next bucket to promote
    Millis rung_start_ = 0.0;
    Millis rung_width_ = 1.0;
    Millis top_min_ = 0.0, top_max_ = 0.0;
    std::size_t compact_pending_ = 0;  // near + rung + top
    std::vector<Action> action_pool_;
    std::vector<std::uint32_t> action_free_;
    std::vector<DeliveryEvent> delivery_pool_;
    std::vector<std::uint32_t> delivery_free_;
  };

  /// Cross-shard delivery in flight between two window barriers.
  struct MailItem {
    Millis time;
    DeliveryEvent event;
  };
  /// One (source shard, destination shard) channel. Written only by the
  /// source shard during a window, drained only in the barrier's serial
  /// phase — never both at once, so no lock is needed. Items accumulate in
  /// fixed-size chunks that the drain splices out wholesale and recycles
  /// through `spare`, so a push never copies earlier items (no mid-window
  /// vector growth) and steady-state traffic allocates nothing. The
  /// padding keeps concurrent writers off each other's cache lines.
  struct alignas(64) Mailbox {
    static constexpr std::size_t kChunkItems = 256;

    std::vector<std::vector<MailItem>> full;  ///< sealed chunks, oldest first
    std::vector<MailItem> tail;               ///< chunk being filled
    std::vector<std::vector<MailItem>> spare;  ///< recycled empty chunks

    void push(const MailItem& item) {
      if (tail.size() == kChunkItems) roll();
      if (tail.capacity() == 0) tail.reserve(kChunkItems);
      tail.push_back(item);
    }

    void roll() {
      full.push_back(std::move(tail));
      if (!spare.empty()) {
        tail = std::move(spare.back());
        spare.pop_back();
      } else {
        tail = {};
        tail.reserve(kChunkItems);
      }
    }
  };

  /// Seed engine's queue entry: the callback is heap-allocated by
  /// std::function whenever its captures exceed the small-buffer size,
  /// i.e. on every captured-message hop.
  struct Event {
    Millis time;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  enum class Command : std::uint8_t { kRunWindow, kEndRun, kShutdown };

  /// Runs windows until no store has an event before `limit` (exclusive).
  void run_windows(Millis limit);
  /// Executes every event of `shard` with time < window_end_[shard].
  void run_window(std::uint32_t shard);
  void worker_loop(std::uint32_t shard);
  void shutdown_workers();

  // --- barrier protocol (sharded mode) -----------------------------------
  //
  // One epoch-counter barrier replaces the previous run/drain std::barrier
  // pair. A round: every shard runs its window, then calls arrive_and_wait;
  // the LAST arriver executes serial_phase() — drain every mailbox, plan the
  // next round (or publish kEndRun) — then releases the epoch. Waiters spin
  // with exponential backoff, then park via std::atomic::wait (futex-backed
  // on Linux). Correctness of the data handoff: each shard's window writes
  // happen-before its acq_rel fetch_add on arrivals_, so the serial thread
  // (whose fetch_add reads all prior increments) sees every mailbox and
  // store; the release bump of epoch_ then publishes the serial writes to
  // every waiter's acquire load. Epoch comparison uses != (wrap-safe).

  /// Arrive at the barrier; the last arriver runs serial_phase() and bumps
  /// the epoch. Returns the epoch after release. `seen` is the epoch
  /// observed before arriving.
  std::uint32_t arrive_and_wait(std::uint32_t shard, std::uint32_t seen);
  /// Spin-then-park until epoch_ != seen; returns the new epoch and credits
  /// sync_[shard] with a spin or a park.
  std::uint32_t await_change(std::uint32_t seen, std::uint32_t shard);
  /// Parks immediately until epoch_ != seen. Workers idle between runs use
  /// this instead of await_change: the gap is control-plane time, not
  /// barrier contention, so it must not pollute the telemetry — and not
  /// counting it keeps sync_ single-owner while window_stats() reads it.
  std::uint32_t await_publication(std::uint32_t seen);
  /// Bumps the epoch (releasing command_/window_end_) and wakes parked
  /// waiters; returns the new epoch. Thread 0 only, between rounds.
  std::uint32_t publish();
  /// Last arriver's work: drain all mailboxes, plan the next round.
  void serial_phase();
  /// Computes the next window [t_min, window_end_[*]) under policy_, or
  /// sets command_ = kEndRun when nothing remains before limit_.
  void plan_round();
  /// Moves every mailbox's items into the destination stores, in source-
  /// shard ascending FIFO order, assigning fresh shard-local sequence
  /// numbers. Serial phase only.
  void drain_all_inboxes();

  Millis now_ = 0.0;
  std::uint64_t legacy_seq_ = 0;
  /// Events dispatched outside the current stores: by the legacy engine,
  /// or by stores retired when configure_shards() rebuilt them.
  std::uint64_t processed_base_ = 0;
  bool legacy_ = false;

  std::vector<std::unique_ptr<EventStore>> stores_;  // one per shard
  ShardMap map_;
  Millis lookahead_ = 0.0;
  WindowPolicy policy_ = WindowPolicy::kFixed;
  std::vector<Millis> la_;    ///< K*K per-(src,dst) lookaheads (row-major)
  std::vector<Millis> dist_;  ///< shortest-walk closure of la_ (>= 1 hop);
                              ///< diagonal = shortest cycle through the shard
  std::vector<Mailbox> mail_;  // K*K, index = src * K + dst
  std::vector<std::thread> workers_;

  Command command_ = Command::kEndRun;
  std::vector<Millis> window_end_;  ///< per-shard end of the current round
  Millis limit_ = 0.0;              ///< run_windows() horizon (exclusive)
  std::vector<Millis> next_times_;  ///< plan_round scratch: store horizons
  std::uint32_t parties_ = 1;
  std::atomic<std::uint32_t> epoch_{0};
  std::atomic<std::uint32_t> arrivals_{0};
  /// Per-shard wait counters; single-writer (each shard updates its own
  /// slot), read between runs. Padded against false sharing in the spin
  /// loops.
  struct alignas(64) ShardSync {
    std::uint64_t spins = 0;
    std::uint64_t parks = 0;
  };
  std::vector<ShardSync> sync_;
  // Window telemetry; written only in the serial phase (rounds are ordered
  // by the barrier, so no atomics needed).
  std::uint64_t windows_ = 0;
  Millis width_sum_ = 0.0;
  Millis width_max_ = 0.0;
  std::uint64_t mail_items_ = 0;

  // Shard context of the calling thread while it dispatches a window.
  // Static: runs of different Simulator instances never overlap on one
  // thread, and both are reset to null/0 outside dispatch.
  static thread_local EventStore* tls_store_;
  static thread_local std::uint32_t tls_shard_;

  std::priority_queue<Event, std::vector<Event>, Later> legacy_queue_;
};

}  // namespace multipub::net
