// Discrete-event simulator.
//
// The substrate on which the live MultiPub middleware runs (substitution #1
// in DESIGN.md): virtual time in milliseconds, a priority queue of events,
// deterministic FIFO ordering among same-timestamp events (a sequence number
// breaks ties), so every run is reproducible.
//
// Two event representations share one (time, seq) order:
//  - generic Actions (std::function) for control-plane callbacks, and
//  - typed DeliveryEvents — one message hop, dispatched straight to the
//    transport that scheduled it — so the data plane never pays a heap
//    allocation per hop: the queue holds a 16-byte handle and the payload
//    lives in a recycled pool slot.
// The seed's std::function-per-event engine is retained behind
// set_legacy_scheduling(true) as the differential-test / benchmark
// reference; both engines consume the same sequence counter, so dispatch
// order is bit-identical between them.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/assert.h"
#include "common/types.h"
#include "net/address.h"
#include "wire/message.h"

namespace multipub::net {

class DeliverySink;

/// One in-flight message hop: deliver `msg` (sent by `from`) to `to` via the
/// transport that scheduled it. Plain trivially-copyable data — scheduling a
/// delivery never touches the heap beyond the simulator's recycled pools.
struct DeliveryEvent {
  DeliverySink* sink = nullptr;
  Address from;
  Address to;
  wire::Message msg;
};

/// Receiver of typed delivery events (implemented by SimTransport).
class DeliverySink {
 public:
  virtual void deliver(const DeliveryEvent& event) = 0;

 protected:
  ~DeliverySink() = default;
};

/// Single-threaded virtual-time event loop.
class Simulator {
 public:
  using Action = std::function<void()>;

  /// Current virtual time (ms since simulation start).
  [[nodiscard]] Millis now() const { return now_; }

  /// Schedules `action` at absolute virtual time `t`. Pre: t >= now().
  void schedule_at(Millis t, Action action);

  /// Schedules `action` `delay` ms from now. Pre: delay >= 0.
  void schedule_after(Millis delay, Action action);

  /// Schedules a typed message delivery at absolute virtual time `t`; the
  /// event is dispatched back to `sink` when it fires. Pre: t >= now() and
  /// legacy scheduling is off (the legacy engine predates typed events).
  void schedule_delivery_at(Millis t, DeliverySink& sink, Address from,
                            Address to, const wire::Message& msg);

  /// Same, `delay` ms from now. Pre: delay >= 0.
  void schedule_delivery_after(Millis delay, DeliverySink& sink, Address from,
                               Address to, const wire::Message& msg);

  /// Executes the earliest pending event; returns false when idle.
  bool step();

  /// Runs until the queue drains.
  void run();

  /// Runs all events with timestamp <= t, then advances the clock to t.
  void run_until(Millis t);

  /// Switches to (or away from) the seed's std::function-per-event engine.
  /// Only allowed while the queue is empty; kept as the reference path for
  /// the data-plane differential tests and bench_dataplane.
  void set_legacy_scheduling(bool on);
  [[nodiscard]] bool legacy_scheduling() const { return legacy_; }

  [[nodiscard]] std::size_t pending() const {
    return legacy_ ? legacy_queue_.size() : compact_pending_;
  }
  [[nodiscard]] std::uint64_t processed() const { return processed_; }

 private:
  /// 16-byte queue entry of the default engine; the payload (an Action or a
  /// DeliveryEvent) lives in the matching pool at index `slot`. seq, kind
  /// and slot share one word: seq occupies the HIGH bits, so comparing the
  /// packed words compares seq — the FIFO tie-break for equal timestamps —
  /// and kind/slot below it never influence the order (seq is unique).
  struct CompactEvent {
    Millis time;
    std::uint64_t packed;  // seq:39 | kind:1 | slot:24

    static constexpr std::uint64_t kSlotBits = 24;
    static constexpr std::uint64_t kKindShift = kSlotBits;
    static constexpr std::uint64_t kSeqShift = kSlotBits + 1;
    static constexpr std::uint64_t kSeqBits = 64 - kSeqShift;  // 39

    [[nodiscard]] static CompactEvent make(Millis time, std::uint64_t seq,
                                           std::uint32_t kind,
                                           std::uint32_t slot) {
      // A seq past 39 bits would silently spill into kind/slot and corrupt
      // both dispatch and the FIFO tie-break; fail loudly instead (the slot
      // pools already assert their 24-bit limit).
      MP_EXPECTS(seq < (std::uint64_t{1} << kSeqBits));
      return {time, seq << kSeqShift |
                        std::uint64_t{kind} << kKindShift | slot};
    }
    [[nodiscard]] std::uint32_t kind() const {
      return static_cast<std::uint32_t>(packed >> kKindShift & 1);
    }
    [[nodiscard]] std::uint32_t slot() const {
      return static_cast<std::uint32_t>(packed & ((1u << kSlotBits) - 1));
    }
  };
  /// (time, seq) is a TOTAL order (seq is unique), so any correct min-heap
  /// pops the exact same sequence — the container choice cannot affect
  /// determinism.
  [[nodiscard]] static bool before(const CompactEvent& a,
                                   const CompactEvent& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.packed < b.packed;  // high bits are seq
  }
  void heap_push(const CompactEvent& event);
  CompactEvent heap_pop();

  /// Seed engine's queue entry: the callback is heap-allocated by
  /// std::function whenever its captures exceed the small-buffer size,
  /// i.e. on every captured-message hop.
  struct Event {
    Millis time;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  [[nodiscard]] std::uint32_t acquire_action_slot();
  [[nodiscard]] std::uint32_t acquire_delivery_slot();

  /// Routes a compact event to the near heap, a rung bucket, or the top
  /// list (two-level store, see the member comment below).
  void far_push(const CompactEvent& event);
  /// Promotes rung buckets (rebuilding the rung from the top list when it
  /// runs out) until the near heap has events or everything is drained.
  /// Pre: the near heap is empty.
  void refill();
  void build_rung();

  Millis now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  bool legacy_ = false;

  // Two-level event store for the default engine (a single-rung ladder
  // queue). Pops are absorbed by a small NEAR heap (4-ary min-heap, stays
  // cache-resident); far-future events wait unsorted — first in the TOP
  // list, then distributed once into the RUNG's constant-width time buckets
  // — and are only heapified when the horizon reaches their bucket. Every
  // event is bucketed O(1) times, so the steady-state cost per event stays
  // flat even with ~10^6 in flight (where a single big heap spends its time
  // in cache misses).
  //
  // Ordering stays EXACT: bucket_of(t) = floor((t - start) / width) is
  // monotone in t under IEEE rounding (subtraction, division by a positive
  // constant and floor are all monotone), so an event in a lower bucket
  // never has a later time than one in a higher bucket, and the near heap
  // — which always holds every not-yet-popped event of the buckets below
  // rung_cur_ — contains the global minimum whenever it is non-empty. Ties
  // are settled inside the near heap by the total (time, seq) order.
  std::vector<CompactEvent> heap_;       // near events
  std::vector<std::vector<CompactEvent>> rung_;  // reused bucket storage
  std::vector<CompactEvent> top_;        // beyond the rung's coverage
  std::size_t rung_count_ = 0;           // active buckets this generation
  std::size_t rung_cur_ = 0;             // next bucket to promote
  Millis rung_start_ = 0.0;
  Millis rung_width_ = 1.0;
  Millis top_min_ = 0.0, top_max_ = 0.0;
  std::size_t compact_pending_ = 0;      // near + rung + top
  std::vector<Action> action_pool_;
  std::vector<std::uint32_t> action_free_;
  std::vector<DeliveryEvent> delivery_pool_;
  std::vector<std::uint32_t> delivery_free_;

  std::priority_queue<Event, std::vector<Event>, Later> legacy_queue_;
};

}  // namespace multipub::net
