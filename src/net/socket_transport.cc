#include "net/socket_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/assert.h"
#include "common/logging.h"

namespace multipub::net {
namespace {

/// Envelope preceding every codec frame on a node-to-node stream:
///   offset 0 : u16 magic "MP"
///   offset 2 : u8  from kind, offset 3 : u8 to kind
///   offset 4 : i32 from id,   offset 8 : i32 to id
constexpr std::size_t kEnvelopeSize = 12;
constexpr std::uint16_t kEnvelopeMagic = 0x4D50;
constexpr std::size_t kWireSize = kEnvelopeSize + wire::kEncodedSize;

/// Flat reconnect backoff: cheap to reason about, and a localhost deployment
/// either connects instantly or the peer process is not up yet.
constexpr Millis kReconnectBackoffMs = 200.0;

bool set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

sockaddr_in loopback(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

void append_wire_frame(std::vector<std::byte>& out, Address from, Address to,
                       const wire::Message& msg) {
  std::byte envelope[kEnvelopeSize];
  const std::uint16_t magic = kEnvelopeMagic;
  std::memcpy(envelope, &magic, 2);
  envelope[2] = static_cast<std::byte>(from.kind);
  envelope[3] = static_cast<std::byte>(to.kind);
  std::memcpy(envelope + 4, &from.id, 4);
  std::memcpy(envelope + 8, &to.id, 4);
  const wire::EncodedMessage frame = wire::encode(msg);
  out.insert(out.end(), envelope, envelope + kEnvelopeSize);
  out.insert(out.end(), frame.begin(), frame.end());
}

/// Parses one envelope; false on bad magic/kind.
bool parse_envelope(std::span<const std::byte> buf, Address* from,
                    Address* to) {
  std::uint16_t magic = 0;
  std::memcpy(&magic, buf.data(), 2);
  if (magic != kEnvelopeMagic) return false;
  const auto from_kind = static_cast<std::uint8_t>(buf[2]);
  const auto to_kind = static_cast<std::uint8_t>(buf[3]);
  if (from_kind > static_cast<std::uint8_t>(Address::Kind::kCohort) ||
      to_kind > static_cast<std::uint8_t>(Address::Kind::kCohort)) {
    return false;
  }
  from->kind = static_cast<Address::Kind>(from_kind);
  to->kind = static_cast<Address::Kind>(to_kind);
  std::memcpy(&from->id, buf.data() + 4, 4);
  std::memcpy(&to->id, buf.data() + 8, 4);
  return true;
}

}  // namespace

SocketTransport::SocketTransport()
    : epoch_(std::chrono::steady_clock::now()) {
  epoll_fd_ = ::epoll_create1(0);
  MP_EXPECTS(epoll_fd_ >= 0);
}

SocketTransport::~SocketTransport() { close_all(); }

Millis SocketTransport::now() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return std::chrono::duration<double, std::milli>(elapsed).count();
}

void SocketTransport::schedule_after(Millis delay,
                                     std::function<void()> action) {
  MP_EXPECTS(delay >= 0.0);
  timers_.push(Timer{now() + delay, timer_seq_++, std::move(action)});
}

void SocketTransport::register_handler(Address address, Handler handler) {
  handlers_[address] = std::move(handler);
}

void SocketTransport::unregister_handler(Address address) {
  handlers_.erase(address);
}

void SocketTransport::bill(Address from, Address to,
                           const wire::Message& msg) {
  if (from.kind != Address::Kind::kRegion) return;
  const Bytes billable = msg.billable_bytes() * msg.weight;
  if (billable == 0) return;
  const auto index = static_cast<std::size_t>(from.id);
  if (meters_.size() <= index) meters_.resize(index + 1);
  if (to.kind == Address::Kind::kRegion) {
    meters_[index].inter_region += billable;
  } else {
    meters_[index].internet += billable;
  }
}

void SocketTransport::deliver_local(const wire::Message& msg, Address to) {
  // Deferred dispatch: the handler runs from the event loop, never inside
  // the send that produced the message — same asynchrony contract as the
  // simulator, which is what keeps middleware reentrancy assumptions valid
  // on both planes.
  schedule_after(0.0, [this, msg, to] {
    const auto it = handlers_.find(to);
    if (it == handlers_.end()) {
      ++dropped_unregistered_;
      return;
    }
    ++delivered_;
    it->second(msg);
  });
}

void SocketTransport::enqueue_remote(std::int32_t node, Address from,
                                     Address to, const wire::Message& msg) {
  const auto it = links_.find(node);
  if (it == links_.end()) {
    ++dropped_unresolved_;
    MP_LOG_WARN("socket") << "no link for node " << node << "; dropping "
                          << wire::to_string(msg.type);
    return;
  }
  Link& link = it->second;
  append_wire_frame(link.outbox, from, to, msg);
  if (link.fd < 0) {
    if (!link.connecting && now() >= link.retry_at) try_connect(link);
    return;
  }
  if (!link.connecting && !flush_link(link)) {
    fail_link(link);
  }
}

void SocketTransport::send(Address from, Address to, wire::Message msg) {
  ++sent_;
  bill(from, to, msg);
  if (resolver_ == nullptr) {
    deliver_local(msg, to);
    return;
  }
  const std::int32_t node = resolver_(to);
  if (node == self_node_) {
    deliver_local(msg, to);
  } else {
    enqueue_remote(node, from, to, msg);
  }
}

void SocketTransport::send_batch(Address from,
                                 std::span<const Address> targets,
                                 const wire::Message& msg,
                                 wire::MessageType stamped_type) {
  // Semantically the per-target copy-and-send loop (SimTransport's
  // reference path); sockets gain nothing from batching beyond what the
  // outbox already coalesces.
  wire::Message copy = msg;
  copy.type = stamped_type;
  for (const Address to : targets) {
    copy.subscriber = to.kind == Address::Kind::kClient ? to.as_client()
                                                        : msg.subscriber;
    send(from, to, copy);
  }
}

bool SocketTransport::listen(std::uint16_t port) {
  MP_EXPECTS(listen_fd_ < 0);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 64) != 0 || !set_nonblocking(listen_fd_)) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  return true;
}

void SocketTransport::add_peer(std::int32_t node, std::uint16_t port) {
  MP_EXPECTS(node != self_node_);
  Link& link = links_[node];
  link.peer_port = port;
  if (link.fd < 0 && !link.connecting) try_connect(link);
}

void SocketTransport::try_connect(Link& link) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    link.retry_at = now() + kReconnectBackoffMs;
    return;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (!set_nonblocking(fd)) {
    ::close(fd);
    link.retry_at = now() + kReconnectBackoffMs;
    return;
  }
  sockaddr_in addr = loopback(link.peer_port);
  const int rc =
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    link.retry_at = now() + kReconnectBackoffMs;
    return;
  }
  link.fd = fd;
  link.connecting = rc != 0;
  epoll_event ev{};
  // While connecting, EPOLLOUT signals the outcome; once up, EPOLLOUT is
  // armed only when the outbox has bytes (update_epoll).
  ev.events = EPOLLIN | (link.connecting || !link.outbox.empty()
                             ? EPOLLOUT
                             : 0u);
  ev.data.fd = fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  if (!link.connecting && !link.outbox.empty() && !flush_link(link)) {
    fail_link(link);
  }
}

void SocketTransport::finish_connect(Link& link) {
  int error = 0;
  socklen_t len = sizeof(error);
  ::getsockopt(link.fd, SOL_SOCKET, SO_ERROR, &error, &len);
  if (error != 0) {
    fail_link(link);
    return;
  }
  link.connecting = false;
  if (!flush_link(link)) {
    fail_link(link);
    return;
  }
  update_epoll(link.fd, !link.outbox.empty());
}

void SocketTransport::fail_link(Link& link) {
  if (link.fd >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, link.fd, nullptr);
    ::close(link.fd);
    link.fd = -1;
  }
  link.connecting = false;
  link.inbox.clear();  // mid-frame bytes are useless after a reconnect
  link.retry_at = now() + kReconnectBackoffMs;
  ++reconnects_;
}

bool SocketTransport::flush_link(Link& link) {
  std::size_t sent = 0;
  while (sent < link.outbox.size()) {
    const ssize_t n = ::send(link.fd, link.outbox.data() + sent,
                             link.outbox.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  link.outbox.erase(link.outbox.begin(),
                    link.outbox.begin() + static_cast<std::ptrdiff_t>(sent));
  update_epoll(link.fd, !link.outbox.empty());
  return true;
}

void SocketTransport::update_epoll(int fd, bool want_write) {
  epoll_event ev{};
  ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
  ev.data.fd = fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
}

void SocketTransport::read_link(int fd, std::vector<std::byte>& inbox,
                                bool* closed) {
  *closed = false;
  std::byte buffer[16384];
  while (true) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      inbox.insert(inbox.end(), buffer, buffer + n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    *closed = true;  // orderly close or error
    break;
  }

  std::size_t offset = 0;
  while (inbox.size() - offset >= kWireSize) {
    const auto span = std::span<const std::byte>(inbox).subspan(offset);
    Address from;
    Address to;
    if (!parse_envelope(span.first(kEnvelopeSize), &from, &to)) {
      MP_LOG_WARN("socket") << "bad envelope on fd " << fd
                            << "; closing connection";
      *closed = true;
      inbox.clear();
      return;
    }
    const auto msg =
        wire::decode(span.subspan(kEnvelopeSize, wire::kEncodedSize));
    if (!msg.has_value()) {
      MP_LOG_WARN("socket") << "corrupt frame on fd " << fd
                            << "; closing connection";
      *closed = true;
      inbox.clear();
      return;
    }
    offset += kWireSize;
    const auto it = handlers_.find(to);
    if (it == handlers_.end()) {
      ++dropped_unregistered_;
      continue;
    }
    ++delivered_;
    it->second(*msg);
  }
  inbox.erase(inbox.begin(), inbox.begin() + static_cast<std::ptrdiff_t>(offset));
}

void SocketTransport::accept_pending() {
  while (listen_fd_ >= 0) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (!set_nonblocking(fd)) {
      ::close(fd);
      continue;
    }
    inbound_[fd];
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  }
}

std::size_t SocketTransport::fire_due_timers() {
  std::size_t fired = 0;
  while (!timers_.empty() && timers_.top().due <= now()) {
    // The action may schedule more timers; pop before running.
    auto action = std::move(const_cast<Timer&>(timers_.top()).action);
    timers_.pop();
    action();
    ++fired;
  }
  return fired;
}

int SocketTransport::next_deadline_wait(int max_wait_ms) const {
  Millis wait = static_cast<Millis>(max_wait_ms);
  const Millis current = now();
  if (!timers_.empty()) {
    wait = std::min(wait, timers_.top().due - current);
  }
  for (const auto& [node, link] : links_) {
    if (link.fd < 0 && !link.outbox.empty()) {
      wait = std::min(wait, link.retry_at - current);
    }
  }
  if (wait < 0.0) wait = 0.0;
  return static_cast<int>(wait) + (wait > static_cast<int>(wait) ? 1 : 0);
}

std::size_t SocketTransport::poll_once(int max_wait_ms) {
  const std::uint64_t before = delivered_;

  // Retry due down-links that still have traffic queued.
  for (auto& [node, link] : links_) {
    if (link.fd < 0 && !link.outbox.empty() && !link.connecting &&
        now() >= link.retry_at) {
      try_connect(link);
    }
  }

  epoll_event events[64];
  const int n = ::epoll_wait(epoll_fd_, events, 64,
                             next_deadline_wait(max_wait_ms));
  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    const std::uint32_t mask = events[i].events;
    if (fd == listen_fd_) {
      accept_pending();
      continue;
    }

    if (const auto inbound = inbound_.find(fd); inbound != inbound_.end()) {
      bool closed = false;
      if ((mask & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) {
        read_link(fd, inbound->second, &closed);
      }
      if (closed) {
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
        ::close(fd);
        inbound_.erase(inbound);
      }
      continue;
    }

    for (auto& [node, link] : links_) {
      if (link.fd != fd) continue;
      if (link.connecting) {
        if ((mask & (EPOLLOUT | EPOLLHUP | EPOLLERR)) != 0) {
          finish_connect(link);
        }
        break;
      }
      if ((mask & (EPOLLHUP | EPOLLERR)) != 0) {
        fail_link(link);
        break;
      }
      if ((mask & EPOLLOUT) != 0 && !flush_link(link)) {
        fail_link(link);
        break;
      }
      if ((mask & EPOLLIN) != 0) {
        bool closed = false;
        read_link(fd, link.inbox, &closed);
        if (closed) fail_link(link);
      }
      break;
    }
  }

  fire_due_timers();
  return delivered_ - before;
}

bool SocketTransport::drain(Millis idle_ms, Millis budget_ms) {
  const Millis deadline = now() + budget_ms;
  Millis last_activity = now();
  while (now() < deadline) {
    if (poll_once(5) > 0) {
      last_activity = now();
    } else if (now() - last_activity >= idle_ms) {
      return true;
    }
  }
  return false;
}

Bytes SocketTransport::inter_region_bytes(RegionId region) const {
  const auto index = static_cast<std::size_t>(region.value());
  return index < meters_.size() ? meters_[index].inter_region : 0;
}

Bytes SocketTransport::internet_bytes(RegionId region) const {
  const auto index = static_cast<std::size_t>(region.value());
  return index < meters_.size() ? meters_[index].internet : 0;
}

double SocketTransport::total_cost_dollars() const {
  if (catalog_ == nullptr) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < meters_.size(); ++i) {
    const geo::Region& region = catalog_->at(RegionId{static_cast<int>(i)});
    total += static_cast<double>(meters_[i].inter_region) *
                 region.alpha_per_byte() +
             static_cast<double>(meters_[i].internet) * region.beta_per_byte();
  }
  return total;
}

void SocketTransport::close_all() {
  for (auto& [node, link] : links_) {
    if (link.fd >= 0) ::close(link.fd);
    link.fd = -1;
    link.connecting = false;
  }
  for (auto& [fd, inbox] : inbound_) ::close(fd);
  inbound_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    port_ = 0;
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
}

}  // namespace multipub::net
