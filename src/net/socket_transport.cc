#include "net/socket_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cmath>
#include <cstring>

#include "common/assert.h"
#include "common/logging.h"

namespace multipub::net {
namespace {

/// Envelope preceding every codec frame on a node-to-node stream:
///   offset 0 : u16 magic "MP"
///   offset 2 : u8  from kind, offset 3 : u8 to kind
///   offset 4 : i32 from id,   offset 8 : i32 to id
constexpr std::size_t kEnvelopeSize = 12;
constexpr std::uint16_t kEnvelopeMagic = 0x4D50;
constexpr std::size_t kWireSize = kEnvelopeSize + wire::kEncodedSize;

/// Listen backlog: bounded by the deployment shape — every peer keeps ONE
/// inbound stream here, so a backlog of 64 covers a 64-region world with
/// every broker connecting in the same instant.
constexpr int kListenBacklog = 64;

/// Pooled send segment capacity. 64 KiB holds ~650 frames, large enough
/// that a full poll round of fan-out usually coalesces into one segment
/// (one iovec entry), small enough that an idle pool is cheap to keep.
constexpr std::size_t kSegmentBytes = 64 * 1024;

/// Iovec chain bound per sendmsg() call: 8 segments = 512 KiB in flight,
/// far beyond any socket buffer, so the bound never splits a flush that
/// the kernel would have accepted whole.
constexpr std::size_t kMaxIov = 8;

/// Bulk-read chunk per recv() call into the resumable decoder.
constexpr std::size_t kReadChunk = 64 * 1024;

/// Offsets of the per-target fields inside an encoded record, used by the
/// send_batch() patch path (everything else is shared across the batch).
constexpr std::size_t kRecordToKindOffset = 3;
constexpr std::size_t kRecordToIdOffset = 8;
constexpr std::size_t kRecordSubscriberOffset = kEnvelopeSize + 12;

bool set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

sockaddr_in loopback(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

/// Encodes envelope + codec frame into a kWireSize scratch record.
void encode_record(std::byte* record, Address from, Address to,
                   const wire::Message& msg) {
  const std::uint16_t magic = kEnvelopeMagic;
  std::memcpy(record, &magic, 2);
  record[2] = static_cast<std::byte>(from.kind);
  record[3] = static_cast<std::byte>(to.kind);
  std::memcpy(record + 4, &from.id, 4);
  std::memcpy(record + 8, &to.id, 4);
  const wire::EncodedMessage frame = wire::encode(msg);
  std::memcpy(record + kEnvelopeSize, frame.data(), frame.size());
}

/// Parses one envelope; false on bad magic/kind.
bool parse_envelope(std::span<const std::byte> buf, Address* from,
                    Address* to) {
  std::uint16_t magic = 0;
  std::memcpy(&magic, buf.data(), 2);
  if (magic != kEnvelopeMagic) return false;
  const auto from_kind = static_cast<std::uint8_t>(buf[2]);
  const auto to_kind = static_cast<std::uint8_t>(buf[3]);
  if (from_kind > static_cast<std::uint8_t>(Address::Kind::kCohort) ||
      to_kind > static_cast<std::uint8_t>(Address::Kind::kCohort)) {
    return false;
  }
  from->kind = static_cast<Address::Kind>(from_kind);
  to->kind = static_cast<Address::Kind>(to_kind);
  std::memcpy(&from->id, buf.data() + 4, 4);
  std::memcpy(&to->id, buf.data() + 8, 4);
  return true;
}

/// Domain separator for the per-link backoff jitter streams (arbitrary
/// constant, distinct from the fault-plan coin domain).
constexpr std::uint64_t kBackoffDomain = 0xb0ffb0ffb0ffb0ffULL;

}  // namespace

SocketTransport::SocketTransport()
    : epoch_(std::chrono::steady_clock::now()) {
  epoll_fd_ = ::epoll_create1(0);
  MP_EXPECTS(epoll_fd_ >= 0);
}

SocketTransport::~SocketTransport() { close_all(); }

Millis SocketTransport::now() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return std::chrono::duration<double, std::milli>(elapsed).count();
}

void SocketTransport::schedule_after(Millis delay,
                                     std::function<void()> action) {
  MP_EXPECTS(delay >= 0.0);
  timers_.push(Timer{now() + delay, timer_seq_++, std::move(action)});
}

void SocketTransport::register_handler(Address address, Handler handler) {
  handlers_[address] = std::move(handler);
}

void SocketTransport::unregister_handler(Address address) {
  handlers_.erase(address);
}

void SocketTransport::bill_raw(Address::Kind to_kind, std::int32_t from_region,
                               Bytes billable) {
  const auto index = static_cast<std::size_t>(from_region);
  if (meters_.size() <= index) meters_.resize(index + 1);
  if (to_kind == Address::Kind::kRegion) {
    meters_[index].inter_region += billable;
  } else {
    meters_[index].internet += billable;
  }
}

void SocketTransport::bill(Address from, Address to,
                           const wire::Message& msg) {
  if (from.kind != Address::Kind::kRegion) return;
  const Bytes billable = msg.billable_bytes() * msg.weight;
  if (billable == 0) return;
  bill_raw(to.kind, from.id, billable);
}

void SocketTransport::deliver_local(const wire::Message& msg, Address to) {
  // Deferred dispatch: the handler runs from the event loop, never inside
  // the send that produced the message — same asynchrony contract as the
  // simulator, which is what keeps middleware reentrancy assumptions valid
  // on both planes. The pending queue (rather than a 0-delay timer) keeps
  // the local fast path free of both the codec and per-message closure
  // allocations.
  pending_local_.push_back(LocalDelivery{to, msg});
}

SocketTransport::SendSegment* SocketTransport::tail_segment(Link& link) {
  if (link.outbox.empty() ||
      link.outbox.back()->bytes.size() + kWireSize > kSegmentBytes) {
    link.outbox.push_back(acquire_segment());
  }
  return link.outbox.back().get();
}

std::unique_ptr<SocketTransport::SendSegment>
SocketTransport::acquire_segment() {
  ++stats_.pool_acquires;
  ++segments_outstanding_;
  stats_.pool_high_water =
      std::max(stats_.pool_high_water, segments_outstanding_);
  if (!segment_pool_.empty()) {
    auto segment = std::move(segment_pool_.back());
    segment_pool_.pop_back();
    return segment;
  }
  auto segment = std::make_unique<SendSegment>();
  segment->bytes.reserve(kSegmentBytes);
  return segment;
}

void SocketTransport::release_segment(std::unique_ptr<SendSegment> segment) {
  --segments_outstanding_;
  segment->recycle();
  segment_pool_.push_back(std::move(segment));
}

void SocketTransport::mark_dirty(std::int32_t node, Link& link) {
  if (link.flush_queued) return;
  link.flush_queued = true;
  dirty_links_.push_back(node);
}

void SocketTransport::queue_frame(Link& link, const std::byte* record) {
  SendSegment* segment = tail_segment(link);
  segment->bytes.insert(segment->bytes.end(), record, record + kWireSize);
  ++segment->frames;
  link.pending_bytes += kWireSize;

  if (link.fd < 0) {
    if (!link.connecting && now() >= link.retry_at) try_connect(link);
    return;
  }
  if (link.connecting) return;
  if (batching_) {
    // Coalesce: the whole round's frames leave in one vectored flush from
    // poll_once(); EPOLLOUT interest is managed there as well.
    mark_dirty(link.node, link);
    return;
  }
  // Reference path: every frame flushed the moment it is queued — on an
  // uncongested socket, one write syscall per frame (PR 7 behaviour).
  if (!flush_link(link)) fail_link(link);
}

void SocketTransport::enqueue_remote(std::int32_t node, Address from,
                                     Address to, const wire::Message& msg) {
  const auto it = links_.find(node);
  if (it == links_.end()) {
    ++dropped_unresolved_;
    MP_LOG_WARN("socket") << "no link for node " << node << "; dropping "
                          << wire::to_string(msg.type);
    return;
  }
  std::byte record[kWireSize];
  encode_record(record, from, to, msg);
  queue_frame(it->second, record);
}

void SocketTransport::send(Address from, Address to, wire::Message msg) {
  ++sent_;
  bill(from, to, msg);
  if (resolver_ == nullptr) {
    deliver_local(msg, to);
    return;
  }
  const std::int32_t node = resolver_(to);
  if (node == self_node_) {
    deliver_local(msg, to);
  } else {
    enqueue_remote(node, from, to, msg);
  }
}

void SocketTransport::send_batch(Address from,
                                 std::span<const Address> targets,
                                 const wire::Message& msg,
                                 wire::MessageType stamped_type) {
  if (targets.empty()) return;
  if (!batching_) {
    // Reference path: the per-target copy-and-send loop (SimTransport's
    // semantics), one full Message copy and one encode per target.
    wire::Message copy = msg;
    copy.type = stamped_type;
    for (const Address to : targets) {
      copy.subscriber = to.kind == Address::Kind::kClient ? to.as_client()
                                                          : msg.subscriber;
      send(from, to, copy);
    }
    return;
  }

  // Batched path: the stamped type and weight are uniform across the
  // batch, so billable bytes are computed once; the record is encoded once
  // and only the per-target fields (envelope destination, subscriber id)
  // are patched per copy. Counters, billing and delivery order are
  // exactly the per-target loop's.
  wire::Message shared = msg;
  shared.type = stamped_type;
  const Bytes billable = from.kind == Address::Kind::kRegion
                             ? shared.billable_bytes() * shared.weight
                             : 0;
  std::byte record[kWireSize];
  bool encoded = false;
  for (const Address to : targets) {
    ++sent_;
    if (billable != 0) bill_raw(to.kind, from.id, billable);
    const ClientId subscriber =
        to.kind == Address::Kind::kClient ? to.as_client() : msg.subscriber;
    const std::int32_t node =
        resolver_ == nullptr ? self_node_ : resolver_(to);
    if (node == self_node_) {
      // Local fast path: never touches the codec.
      shared.subscriber = subscriber;
      deliver_local(shared, to);
      continue;
    }
    const auto it = links_.find(node);
    if (it == links_.end()) {
      ++dropped_unresolved_;
      MP_LOG_WARN("socket") << "no link for node " << node << "; dropping "
                            << wire::to_string(shared.type);
      continue;
    }
    if (!encoded) {
      shared.subscriber = subscriber;
      encode_record(record, from, to, shared);
      encoded = true;
    }
    record[kRecordToKindOffset] = static_cast<std::byte>(to.kind);
    std::memcpy(record + kRecordToIdOffset, &to.id, 4);
    const std::int32_t subscriber_id = subscriber.value();
    std::memcpy(record + kRecordSubscriberOffset, &subscriber_id, 4);
    queue_frame(it->second, record);
  }
}

bool SocketTransport::listen(std::uint16_t port) {
  MP_EXPECTS(listen_fd_ < 0);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;
  const int one = 1;
  if (::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                   sizeof(one)) != 0) {
    ++stats_.syscall_soft_errors;
  }
  sockaddr_in addr = loopback(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, kListenBacklog) != 0 ||
      !set_nonblocking(listen_fd_)) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    // Without epoll the listener would never be serviced: fail loudly.
    ++stats_.syscall_soft_errors;
    ::close(listen_fd_);
    listen_fd_ = -1;
    port_ = 0;
    return false;
  }
  return true;
}

void SocketTransport::add_peer(std::int32_t node, std::uint16_t port) {
  MP_EXPECTS(node != self_node_);
  Link& link = links_[node];
  link.node = node;
  link.peer_port = port;
  if (link.fd < 0 && !link.connecting) try_connect(link);
}

Rng& SocketTransport::backoff_rng(std::int32_t node) {
  const auto it = backoff_rngs_.find(node);
  if (it != backoff_rngs_.end()) return it->second;
  // Keyed by (self node, peer node): each direction of each pair jitters
  // independently, so a cluster of nodes retrying one dead peer never
  // hammers it in lock-step — yet every run of the same deployment shape
  // draws the identical sequence.
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(self_node_))
       << 32) ^
      static_cast<std::uint32_t>(node);
  return backoff_rngs_
      .emplace(node, Rng(derive_stream_seed(kBackoffDomain, key)))
      .first->second;
}

Millis SocketTransport::backoff_delay_ms(std::uint32_t attempt, Rng& rng) {
  const double doubling =
      std::ldexp(kBackoffBaseMs, static_cast<int>(std::min(attempt, 24u)));
  return std::min(doubling, kBackoffCapMs) *
         rng.uniform(1.0, 1.0 + kBackoffJitter);
}

void SocketTransport::schedule_retry(Link& link) {
  link.retry_at =
      now() + backoff_delay_ms(link.connect_attempts, backoff_rng(link.node));
  if (link.connect_attempts < ~0u) ++link.connect_attempts;
}

void SocketTransport::try_connect(Link& link) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    schedule_retry(link);
    return;
  }
  const int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    ++stats_.syscall_soft_errors;
  }
  if (socket_buffer_bytes_ > 0) {
    if (::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &socket_buffer_bytes_,
                     sizeof(socket_buffer_bytes_)) != 0 ||
        ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &socket_buffer_bytes_,
                     sizeof(socket_buffer_bytes_)) != 0) {
      ++stats_.syscall_soft_errors;
    }
  }
  if (!set_nonblocking(fd)) {
    ::close(fd);
    schedule_retry(link);
    return;
  }
  sockaddr_in addr = loopback(link.peer_port);
  const int rc =
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    schedule_retry(link);
    return;
  }
  link.fd = fd;
  link.connecting = rc != 0;
  epoll_event ev{};
  // While connecting, EPOLLOUT signals the outcome; once up, EPOLLOUT is
  // armed only when the outbox has bytes (update_epoll).
  ev.events = EPOLLIN | (link.connecting || link.pending_bytes > 0
                             ? EPOLLOUT
                             : 0u);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    ++stats_.syscall_soft_errors;
    ::close(fd);
    link.fd = -1;
    link.connecting = false;
    schedule_retry(link);
    return;
  }
  fd_to_node_[fd] = link.node;
  if (!link.connecting) {
    link.connect_attempts = 0;
    if (link.pending_bytes > 0 && !flush_link(link)) fail_link(link);
  }
}

void SocketTransport::finish_connect(Link& link) {
  int error = 0;
  socklen_t len = sizeof(error);
  ::getsockopt(link.fd, SOL_SOCKET, SO_ERROR, &error, &len);
  if (error != 0) {
    fail_link(link);
    return;
  }
  link.connecting = false;
  link.connect_attempts = 0;
  if (!flush_link(link)) {
    fail_link(link);
    return;
  }
  update_epoll(link.fd, link.pending_bytes > 0);
}

void SocketTransport::fail_link(Link& link) {
  if (link.fd >= 0) {
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, link.fd, nullptr) != 0) {
      ++stats_.syscall_soft_errors;
    }
    fd_to_node_.erase(link.fd);
    ::close(link.fd);
    link.fd = -1;
  }
  link.connecting = false;
  link.inbox.reset();  // mid-record bytes are useless after a reconnect
  link.partial_frame_bytes = 0;
  schedule_retry(link);
  ++reconnects_;
}

bool SocketTransport::flush_link(Link& link) {
  std::uint64_t frames_done = 0;
  std::size_t written_total = 0;
  bool blocked = false;
  while (link.pending_bytes > 0) {
    iovec iov[kMaxIov];
    std::size_t iov_count = 0;
    for (const auto& segment : link.outbox) {
      if (iov_count == kMaxIov) break;
      if (segment->pending() == 0) continue;
      iov[iov_count].iov_base = segment->bytes.data() + segment->read;
      iov[iov_count].iov_len = segment->pending();
      ++iov_count;
    }
    ssize_t n = 0;
    if (iov_count == 1) {
      n = ::send(link.fd, iov[0].iov_base, iov[0].iov_len, MSG_NOSIGNAL);
      ++stats_.send_calls;
    } else {
      msghdr header{};
      header.msg_iov = iov;
      header.msg_iovlen = iov_count;
      n = ::sendmsg(link.fd, &header, MSG_NOSIGNAL);
      ++stats_.sendmsg_calls;
    }
    if (n > 0) {
      std::size_t remaining = static_cast<std::size_t>(n);
      written_total += remaining;
      link.pending_bytes -= remaining;
      frames_done += (link.partial_frame_bytes + remaining) / kWireSize;
      link.partial_frame_bytes =
          (link.partial_frame_bytes + remaining) % kWireSize;
      while (remaining > 0) {
        SendSegment* front = link.outbox.front().get();
        const std::size_t take = std::min(front->pending(), remaining);
        front->read += take;
        remaining -= take;
        if (front->pending() == 0) {
          release_segment(std::move(link.outbox.front()));
          link.outbox.pop_front();
        }
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      blocked = true;
      break;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  if (written_total > 0) {
    stats_.bytes_sent += written_total;
    stats_.frames_sent += frames_done;
    ++stats_.flushes;
    if (blocked) ++stats_.partial_flushes;
    if (frames_done > 0) {
      const auto bucket = std::min<std::size_t>(
          std::bit_width(frames_done) - 1, stats_.flush_frames_hist.size() - 1);
      ++stats_.flush_frames_hist[bucket];
    }
  }
  update_epoll(link.fd, link.pending_bytes > 0);
  return true;
}

void SocketTransport::flush_dirty_links() {
  // A flush can fail the link (scheduling a reconnect), which re-queues
  // nothing: the segments stay on the outbox for the next connect.
  for (std::size_t i = 0; i < dirty_links_.size(); ++i) {
    const auto it = links_.find(dirty_links_[i]);
    if (it == links_.end()) continue;
    Link& link = it->second;
    link.flush_queued = false;
    if (link.fd < 0 || link.connecting || link.pending_bytes == 0) continue;
    if (!flush_link(link)) fail_link(link);
  }
  dirty_links_.clear();
}

void SocketTransport::update_epoll(int fd, bool want_write) {
  epoll_event ev{};
  ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    ++stats_.syscall_soft_errors;
  }
}

void SocketTransport::read_link(int fd, wire::StreamDecoder& inbox,
                                bool* closed) {
  *closed = false;
  while (true) {
    std::byte* window = inbox.write_window(kReadChunk);
    const ssize_t n = ::recv(fd, window, kReadChunk, 0);
    if (n > 0) {
      ++stats_.read_calls;
      stats_.bytes_received += static_cast<std::uint64_t>(n);
      inbox.commit(static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    *closed = true;  // orderly close or error
    break;
  }

  std::span<const std::byte> envelope;
  while (const auto msg = inbox.next(&envelope)) {
    Address from;
    Address to;
    if (!parse_envelope(envelope, &from, &to)) {
      MP_LOG_WARN("socket") << "bad envelope on fd " << fd
                            << "; closing connection";
      *closed = true;
      inbox.reset();
      return;
    }
    ++stats_.frames_received;
    const auto it = handlers_.find(to);
    if (it == handlers_.end()) {
      ++dropped_unregistered_;
      continue;
    }
    ++delivered_;
    it->second(*msg);
  }
  if (inbox.corrupt()) {
    MP_LOG_WARN("socket") << "corrupt frame on fd " << fd
                          << "; closing connection";
    *closed = true;
    inbox.reset();
  }
}

void SocketTransport::accept_pending() {
  while (listen_fd_ >= 0) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;
    const int one = 1;
    if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
      ++stats_.syscall_soft_errors;
    }
    if (socket_buffer_bytes_ > 0) {
      if (::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &socket_buffer_bytes_,
                       sizeof(socket_buffer_bytes_)) != 0 ||
          ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &socket_buffer_bytes_,
                       sizeof(socket_buffer_bytes_)) != 0) {
        ++stats_.syscall_soft_errors;
      }
    }
    if (!set_nonblocking(fd)) {
      ::close(fd);
      continue;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ++stats_.syscall_soft_errors;
      ::close(fd);
      continue;
    }
    inbound_.emplace(fd, wire::StreamDecoder(kEnvelopeSize));
  }
}

std::size_t SocketTransport::fire_due_timers() {
  std::size_t fired = 0;
  while (!timers_.empty() && timers_.top().due <= now()) {
    // The action may schedule more timers; pop before running.
    auto action = std::move(const_cast<Timer&>(timers_.top()).action);
    timers_.pop();
    action();
    ++fired;
  }
  return fired;
}

std::size_t SocketTransport::drain_local_and_timers() {
  // Local deliveries queued before this pass — and any their handlers or
  // due timer actions produce — all dispatch in the same pass, matching
  // the old 0-delay-timer semantics (due <= now fires until exhausted).
  std::size_t progressed_total = 0;
  while (true) {
    std::size_t progressed = 0;
    while (!pending_local_.empty()) {
      LocalDelivery delivery = std::move(pending_local_.front());
      pending_local_.pop_front();
      ++progressed;
      const auto it = handlers_.find(delivery.to);
      if (it == handlers_.end()) {
        ++dropped_unregistered_;
        continue;
      }
      ++delivered_;
      it->second(delivery.msg);
    }
    progressed += fire_due_timers();
    if (progressed == 0) return progressed_total;
    progressed_total += progressed;
  }
}

int SocketTransport::next_deadline_wait(int max_wait_ms) const {
  if (!pending_local_.empty()) return 0;
  Millis wait = static_cast<Millis>(max_wait_ms);
  const Millis current = now();
  if (!timers_.empty()) {
    wait = std::min(wait, timers_.top().due - current);
  }
  for (const auto& [node, link] : links_) {
    if (link.fd < 0 && link.pending_bytes > 0) {
      wait = std::min(wait, link.retry_at - current);
    }
  }
  if (wait < 0.0) wait = 0.0;
  return static_cast<int>(wait) + (wait > static_cast<int>(wait) ? 1 : 0);
}

std::size_t SocketTransport::poll_once(int max_wait_ms) {
  const std::uint64_t before = delivered_;

  // Retry due down-links that still have traffic queued.
  for (auto& [node, link] : links_) {
    if (link.fd < 0 && link.pending_bytes > 0 && !link.connecting &&
        now() >= link.retry_at) {
      try_connect(link);
    }
  }

  // Frames queued since the last pass (sends made outside the event loop)
  // leave before we sleep on readiness.
  flush_dirty_links();

  epoll_event events[64];
  const int n = ::epoll_wait(epoll_fd_, events, 64,
                             next_deadline_wait(max_wait_ms));
  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    const std::uint32_t mask = events[i].events;
    if (fd == listen_fd_) {
      accept_pending();
      continue;
    }

    if (const auto inbound = inbound_.find(fd); inbound != inbound_.end()) {
      bool closed = false;
      if ((mask & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) {
        read_link(fd, inbound->second, &closed);
      }
      if (closed) {
        if (::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr) != 0) {
          ++stats_.syscall_soft_errors;
        }
        ::close(fd);
        inbound_.erase(inbound);
      }
      continue;
    }

    // A dispatch above may add peers (rehashing links_), so resolve the
    // link by fd each time instead of iterating the map.
    const auto owner = fd_to_node_.find(fd);
    if (owner == fd_to_node_.end()) continue;
    const auto it = links_.find(owner->second);
    if (it == links_.end()) continue;
    Link& link = it->second;
    if (link.connecting) {
      if ((mask & (EPOLLOUT | EPOLLHUP | EPOLLERR)) != 0) {
        finish_connect(link);
      }
      continue;
    }
    if ((mask & (EPOLLHUP | EPOLLERR)) != 0) {
      fail_link(link);
      continue;
    }
    if ((mask & EPOLLOUT) != 0 && !flush_link(link)) {
      fail_link(link);
      continue;
    }
    if ((mask & EPOLLIN) != 0) {
      bool closed = false;
      read_link(fd, link.inbox, &closed);
      if (closed) fail_link(link);
    }
  }

  drain_local_and_timers();
  // Everything the round's handlers and timers queued leaves in one
  // vectored flush per link.
  flush_dirty_links();
  return delivered_ - before;
}

bool SocketTransport::drain(Millis idle_ms, Millis budget_ms) {
  const Millis deadline = now() + budget_ms;
  Millis last_activity = now();
  while (now() < deadline) {
    if (poll_once(5) > 0) {
      last_activity = now();
    } else if (now() - last_activity >= idle_ms) {
      return true;
    }
  }
  return false;
}

Bytes SocketTransport::inter_region_bytes(RegionId region) const {
  const auto index = static_cast<std::size_t>(region.value());
  return index < meters_.size() ? meters_[index].inter_region : 0;
}

Bytes SocketTransport::internet_bytes(RegionId region) const {
  const auto index = static_cast<std::size_t>(region.value());
  return index < meters_.size() ? meters_[index].internet : 0;
}

double SocketTransport::total_cost_dollars() const {
  if (catalog_ == nullptr) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < meters_.size(); ++i) {
    const geo::Region& region = catalog_->at(RegionId{static_cast<int>(i)});
    total += static_cast<double>(meters_[i].inter_region) *
                 region.alpha_per_byte() +
             static_cast<double>(meters_[i].internet) * region.beta_per_byte();
  }
  return total;
}

void SocketTransport::close_all() {
  for (auto& [node, link] : links_) {
    if (link.fd >= 0) ::close(link.fd);
    link.fd = -1;
    link.connecting = false;
  }
  for (auto& [fd, inbox] : inbound_) ::close(fd);
  inbound_.clear();
  fd_to_node_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    port_ = 0;
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
}

MetricsRegistry collect_transport_metrics(const SocketTransport& transport) {
  const TransportStats& stats = transport.stats();
  MetricsRegistry registry;
  const auto put = [&registry](const char* name, double value) {
    registry.set(std::string("net.transport.") + name, value);
  };
  put("sendmsg_calls", static_cast<double>(stats.sendmsg_calls));
  put("send_calls", static_cast<double>(stats.send_calls));
  put("read_calls", static_cast<double>(stats.read_calls));
  put("bytes_sent", static_cast<double>(stats.bytes_sent));
  put("bytes_received", static_cast<double>(stats.bytes_received));
  put("frames_sent", static_cast<double>(stats.frames_sent));
  put("frames_received", static_cast<double>(stats.frames_received));
  put("flushes", static_cast<double>(stats.flushes));
  put("partial_flushes", static_cast<double>(stats.partial_flushes));
  put("frames_per_flush", stats.frames_per_flush());
  for (std::size_t i = 0; i < stats.flush_frames_hist.size(); ++i) {
    put(("flush_frames_b" + std::to_string(1ull << i)).c_str(),
        static_cast<double>(stats.flush_frames_hist[i]));
  }
  put("pool_acquires", static_cast<double>(stats.pool_acquires));
  put("pool_high_water", static_cast<double>(stats.pool_high_water));
  put("syscall_soft_errors", static_cast<double>(stats.syscall_soft_errors));
  put("reconnects", static_cast<double>(transport.reconnect_count()));
  put("sent", static_cast<double>(transport.sent_count()));
  put("delivered", static_cast<double>(transport.delivered_count()));
  put("dropped_unresolved", static_cast<double>(transport.dropped_unresolved()));
  put("dropped_unregistered",
      static_cast<double>(transport.dropped_unregistered()));
  return registry;
}

}  // namespace multipub::net
