#include "core/optimizer.h"

#include <cmath>

#include "common/assert.h"
#include "core/evaluation_engine.h"

namespace multipub::core {

Optimizer::Optimizer(const geo::RegionCatalog& catalog,
                     const geo::InterRegionLatency& backbone,
                     const geo::ClientLatencyMap& clients)
    : catalog_(&catalog),
      delivery_(backbone, clients),
      cost_(catalog, clients) {}

ConfigEvaluation Optimizer::evaluate(const TopicState& topic,
                                     const TopicConfig& config,
                                     EvaluationStrategy strategy) const {
  ConfigEvaluation eval;
  eval.config = config;
  eval.percentile =
      strategy == EvaluationStrategy::kExactList
          ? delivery_.exact_delivery_percentile(topic, config,
                                                topic.constraint.ratio)
          : delivery_.delivery_percentile(topic, config,
                                          topic.constraint.ratio);
  eval.cost = cost_.cost(topic, config);
  eval.feasible = topic.constraint.satisfied_by(eval.percentile);
  return eval;
}

std::vector<ConfigEvaluation> Optimizer::evaluate_all_reference(
    const TopicState& topic, const OptimizerOptions& options) const {
  MP_EXPECTS(!topic.subscribers.empty());
  MP_EXPECTS(topic.total_messages() > 0);

  const geo::RegionSet candidates =
      options.candidates.empty() ? geo::RegionSet::universe(catalog_->size())
                                 : options.candidates;
  const auto configs =
      enumerate_configurations(candidates, options.mode_policy);

  std::vector<ConfigEvaluation> evals;
  evals.reserve(configs.size());
  for (const auto& config : configs) {
    evals.push_back(evaluate(topic, config, options.strategy));
  }
  return evals;
}

std::vector<ConfigEvaluation> Optimizer::evaluate_all(
    const TopicState& topic, const OptimizerOptions& options) const {
  if (options.strategy == EvaluationStrategy::kExactList) {
    return evaluate_all_reference(topic, options);
  }
  EvaluationEngine engine(*this);
  return engine.evaluate_all(topic, options);
}

bool Optimizer::almost_equal(double a, double b) {
  if (a == b) return true;  // covers exact ties and matching infinities
  if (!std::isfinite(a) || !std::isfinite(b)) return false;
  // Relative epsilon: percentiles are exact order statistics (some sample's
  // value) and costs are short sums of like-signed products, so genuinely
  // different configurations differ by far more than 1e-9 relative while
  // association-order noise stays within a few ulps.
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return std::fabs(a - b) <= 1e-9 * scale;
}

bool Optimizer::better(const ConfigEvaluation& lhs,
                       const ConfigEvaluation& rhs) {
  // Feasible configurations always beat infeasible ones.
  if (lhs.feasible != rhs.feasible) return lhs.feasible;
  if (lhs.feasible) {
    // Among feasible: cheapest, then FEWEST regions, then lowest percentile.
    // Note: the paper's text (§IV-B) states percentile before server count,
    // but its own Figure 3a/3c contradicts that order — at loose bounds
    // MultiPub collapses to ONE region and its delivery time aligns with the
    // One-Region baseline, even though the five equal-cost $0.09 regions
    // together have a strictly lower percentile. We match the figures (the
    // observed system behaviour); DESIGN.md records the deviation.
    if (!almost_equal(lhs.cost, rhs.cost)) return lhs.cost < rhs.cost;
    if (lhs.config.region_count() != rhs.config.region_count()) {
      return lhs.config.region_count() < rhs.config.region_count();
    }
    if (almost_equal(lhs.percentile, rhs.percentile)) return false;
    return lhs.percentile < rhs.percentile;
  }
  // Among infeasible: the most latency-minimizing one, irrespective of cost
  // (paper §IV-B); remaining ties broken by cost then size for determinism.
  if (!almost_equal(lhs.percentile, rhs.percentile)) {
    return lhs.percentile < rhs.percentile;
  }
  if (!almost_equal(lhs.cost, rhs.cost)) return lhs.cost < rhs.cost;
  return lhs.config.region_count() < rhs.config.region_count();
}

OptimizerResult Optimizer::optimize_reference(
    const TopicState& topic, const OptimizerOptions& options) const {
  const auto evals = evaluate_all_reference(topic, options);
  MP_ENSURES(!evals.empty());

  const ConfigEvaluation* best = &evals.front();
  for (const auto& eval : evals) {
    if (better(eval, *best)) best = &eval;
  }

  OptimizerResult result;
  result.config = best->config;
  result.percentile = best->percentile;
  result.cost = best->cost;
  result.constraint_met = best->feasible;
  result.configs_evaluated = evals.size();
  return result;
}

OptimizerResult Optimizer::optimize(const TopicState& topic,
                                    const OptimizerOptions& options) const {
  if (options.strategy == EvaluationStrategy::kExactList) {
    return optimize_reference(topic, options);
  }
  EvaluationEngine engine(*this);
  return engine.optimize(topic, options);
}

}  // namespace multipub::core
