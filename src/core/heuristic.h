// Heuristic configuration search (the paper's proposed future work).
//
// Brute force evaluates 2*(2^N - 1) - N configurations — fine for 10
// regions, hopeless for 30+. The heuristic runs in polynomial time:
//
//   1. SEED    — evaluate every single-region configuration, keep the best
//               under the optimizer's ordering.
//   2. GROW    — while the constraint is violated, add the absent region
//               (trying both permitted modes) that most reduces the
//               delivery-time percentile; stop when no addition helps.
//   3. TRIM    — repeatedly remove the region (or flip the delivery mode)
//               whose removal most reduces cost while keeping the
//               constraint satisfied.
//
// The result is not guaranteed optimal; the ablation bench and property
// tests measure how close it gets (on the EC2 world it almost always
// matches brute force exactly).
#pragma once

#include "core/optimizer.h"

namespace multipub::core {

struct HeuristicOptions {
  ModePolicy mode_policy = ModePolicy::kBoth;
  /// Upper bound on the region set the GROW phase may build (0 = no bound).
  int max_regions = 0;
  /// Restrict the search to these regions (empty = the whole catalog).
  /// Used for outage masking and pruning, mirroring OptimizerOptions.
  geo::RegionSet candidates;
};

struct HeuristicResult {
  TopicConfig config;
  Millis percentile = 0.0;
  Dollars cost = 0.0;
  bool constraint_met = false;
  /// Number of configuration evaluations performed (the cost driver; the
  /// brute-force equivalent is 2*(2^N - 1) - N).
  std::size_t configs_evaluated = 0;
};

class HeuristicOptimizer {
 public:
  /// Borrows all three inputs; they must outlive the optimizer.
  HeuristicOptimizer(const geo::RegionCatalog& catalog,
                     const geo::InterRegionLatency& backbone,
                     const geo::ClientLatencyMap& clients);

  /// Greedy seed/grow/trim search. Pre: topic has >= 1 subscriber and >= 1
  /// publisher with msg_count > 0.
  [[nodiscard]] HeuristicResult optimize(
      const TopicState& topic, const HeuristicOptions& options = {}) const;

 private:
  [[nodiscard]] ConfigEvaluation evaluate(const TopicState& topic,
                                          const TopicConfig& config) const;

  const geo::RegionCatalog* catalog_;
  Optimizer exact_;  // reused for single-config evaluation
};

}  // namespace multipub::core
