#include "core/bundling.h"

#include <cmath>

#include "common/assert.h"

namespace multipub::core {
namespace {

/// L-infinity distance between two latency rows.
[[nodiscard]] double row_distance(std::span<const Millis> a,
                                  std::span<const Millis> b) {
  MP_EXPECTS(a.size() == b.size());
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    d = std::max(d, std::abs(a[i] - b[i]));
  }
  return d;
}

}  // namespace

BundledProblem bundle_clients(const TopicState& topic,
                              const geo::ClientLatencyMap& clients,
                              const BundlingParams& params) {
  MP_EXPECTS(params.epsilon_ms >= 0.0);
  BundledProblem out;
  out.topic.topic = topic.topic;
  out.topic.constraint = topic.constraint;

  // Virtual clients for subscribers and publishers are kept in one shared
  // latency map; bundles are never shared across the two roles (a client
  // that both publishes and subscribes is represented twice, as in the
  // original TopicState).
  std::vector<std::vector<Millis>> representative_rows;
  auto intern_row = [&](std::span<const Millis> row) {
    representative_rows.emplace_back(row.begin(), row.end());
    return representative_rows.size() - 1;
  };

  // --- Subscribers ---
  std::vector<std::size_t> sub_bundle_rows;  // representative row per bundle
  for (const auto& sub : topic.subscribers) {
    const auto row = clients.row(sub.client);
    std::size_t bundle = sub_bundle_rows.size();
    for (std::size_t i = 0; i < sub_bundle_rows.size(); ++i) {
      if (row_distance(representative_rows[sub_bundle_rows[i]], row) <=
          params.epsilon_ms) {
        bundle = i;
        break;
      }
    }
    if (bundle == sub_bundle_rows.size()) {
      sub_bundle_rows.push_back(intern_row(row));
      out.topic.subscribers.push_back({ClientId::invalid(), 0});
      out.subscriber_members.emplace_back();
    }
    out.topic.subscribers[bundle].weight += sub.weight;
    out.subscriber_members[bundle].push_back(sub.client);
  }

  // --- Publishers ---
  std::vector<std::size_t> pub_bundle_rows;
  for (const auto& pub : topic.publishers) {
    const auto row = clients.row(pub.client);
    std::size_t bundle = pub_bundle_rows.size();
    for (std::size_t i = 0; i < pub_bundle_rows.size(); ++i) {
      if (row_distance(representative_rows[pub_bundle_rows[i]], row) <=
          params.epsilon_ms) {
        bundle = i;
        break;
      }
    }
    if (bundle == pub_bundle_rows.size()) {
      pub_bundle_rows.push_back(intern_row(row));
      out.topic.publishers.push_back({ClientId::invalid(), 0, 0});
      out.publisher_members.emplace_back();
    }
    out.topic.publishers[bundle].msg_count += pub.msg_count;
    out.topic.publishers[bundle].total_bytes += pub.total_bytes;
    out.publisher_members[bundle].push_back(pub.client);
  }

  // Materialize virtual clients: subscribers first, then publishers.
  out.latencies = geo::ClientLatencyMap(clients.n_regions());
  for (std::size_t i = 0; i < sub_bundle_rows.size(); ++i) {
    out.topic.subscribers[i].client =
        out.latencies.add_client(representative_rows[sub_bundle_rows[i]]);
  }
  for (std::size_t i = 0; i < pub_bundle_rows.size(); ++i) {
    out.topic.publishers[i].client =
        out.latencies.add_client(representative_rows[pub_bundle_rows[i]]);
  }

  MP_ENSURES(out.topic.total_messages() == topic.total_messages());
  MP_ENSURES(out.topic.total_subscriber_weight() ==
             topic.total_subscriber_weight());
  return out;
}

}  // namespace multipub::core
