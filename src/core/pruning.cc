#include "core/pruning.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/assert.h"

namespace multipub::core {
namespace {

/// Adds `keep` regions with the lowest latency from `client` to `out`.
void add_closest(geo::RegionSet& out, const geo::ClientLatencyMap& clients,
                 ClientId client, int keep) {
  const auto row = clients.row(client);
  std::vector<std::size_t> order(row.size());
  std::iota(order.begin(), order.end(), 0);
  const auto k = std::min<std::size_t>(static_cast<std::size_t>(keep),
                                       order.size());
  std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k),
                    order.end(), [&](std::size_t a, std::size_t b) {
                      return row[a] < row[b];
                    });
  for (std::size_t i = 0; i < k; ++i) {
    out.add(RegionId{static_cast<RegionId::underlying_type>(order[i])});
  }
}

}  // namespace

geo::RegionSet prune_candidates(const TopicState& topic,
                                const geo::ClientLatencyMap& clients,
                                const geo::RegionCatalog& catalog,
                                const PruningParams& params) {
  MP_EXPECTS(params.keep_closest >= 1);
  MP_EXPECTS(!catalog.empty());

  geo::RegionSet out;
  for (const auto& pub : topic.publishers) {
    add_closest(out, clients, pub.client, params.keep_closest);
  }
  for (const auto& sub : topic.subscribers) {
    add_closest(out, clients, sub.client, params.keep_closest);
  }

  // Keep the cheapest-egress region so the cost-minimal single-region
  // configuration stays in the search space.
  const geo::Region* cheapest = &catalog.all().front();
  for (const auto& region : catalog.all()) {
    if (region.internet_cost_per_gb < cheapest->internet_cost_per_gb) {
      cheapest = &region;
    }
  }
  out.add(cheapest->id);

  MP_ENSURES(!out.empty());
  return out;
}

}  // namespace multipub::core
