#include "core/topic_store.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace multipub::core {

namespace {

bool same_publishers(const std::vector<PublisherStats>& a,
                     const std::vector<PublisherStats>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].client != b[i].client || a[i].msg_count != b[i].msg_count ||
        a[i].total_bytes != b[i].total_bytes) {
      return false;
    }
  }
  return true;
}

bool same_subscribers(const std::vector<SubscriberStats>& a,
                      const std::vector<SubscriberStats>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].client != b[i].client || a[i].weight != b[i].weight ||
        a[i].selectivity != b[i].selectivity) {
      return false;
    }
  }
  return true;
}

/// Relative change of one counter against its stored value.
double relative_delta(std::uint64_t stored, std::uint64_t incoming) {
  const double old_value = static_cast<double>(stored);
  const double new_value = static_cast<double>(incoming);
  return std::abs(new_value - old_value) / std::max(1.0, old_value);
}

/// True when `incoming` differs from `stored` only by per-publisher stat
/// drift within `threshold` (same publisher set, both sorted by client).
bool within_threshold(const std::vector<PublisherStats>& stored,
                      const std::vector<PublisherStats>& incoming,
                      double threshold) {
  if (stored.size() != incoming.size()) return false;
  for (std::size_t i = 0; i < stored.size(); ++i) {
    if (stored[i].client != incoming[i].client) return false;
    if (relative_delta(stored[i].msg_count, incoming[i].msg_count) >
            threshold ||
        relative_delta(stored[i].total_bytes, incoming[i].total_bytes) >
            threshold) {
      return false;
    }
  }
  return true;
}

}  // namespace

const char* to_string(DirtyReason reason) {
  switch (reason) {
    case DirtyReason::kNew: return "new";
    case DirtyReason::kTraffic: return "traffic";
    case DirtyReason::kMembership: return "membership";
    case DirtyReason::kConstraint: return "constraint";
    case DirtyReason::kAvailability: return "availability";
    case DirtyReason::kLatency: return "latency";
    case DirtyReason::kRefresh: return "refresh";
    case DirtyReason::kForced: return "forced";
  }
  return "?";
}

TopicStore::TopicStore(const TopicStoreOptions& options) : options_(options) {
  MP_EXPECTS(options.traffic_threshold >= 0.0);
}

void TopicStore::set_traffic_threshold(double threshold) {
  MP_EXPECTS(threshold >= 0.0);
  options_.traffic_threshold = threshold;
}

TopicStore::Entry& TopicStore::entry_for(TopicId topic) {
  const auto [it, inserted] = entries_.try_emplace(topic);
  if (inserted) {
    it->second.aggregate.topic = topic;
    mark(topic, it->second, DirtyReason::kNew);
  }
  return it->second;
}

void TopicStore::mark(TopicId topic, Entry& entry, DirtyReason reason) {
  entry.dirty |= reason_bit(reason);
  dirty_.insert(topic);
}

void TopicStore::mark_dirty(TopicId topic, DirtyReason reason) {
  const auto it = entries_.find(topic);
  if (it == entries_.end()) return;
  mark(topic, it->second, reason);
}

void TopicStore::mark_all_dirty(DirtyReason reason) {
  for (auto& [topic, entry] : entries_) {
    mark(topic, entry, reason);
  }
}

void TopicStore::clear_dirty() {
  for (TopicId topic : dirty_) {
    entries_.at(topic).dirty = 0;
  }
  dirty_.clear();
}

void TopicStore::set_constraint(TopicId topic,
                                const DeliveryConstraint& constraint) {
  MP_EXPECTS(constraint.ratio > 0.0 && constraint.ratio <= 100.0);
  Entry& entry = entry_for(topic);
  if (entry.aggregate.constraint == constraint) return;
  entry.aggregate.constraint = constraint;
  mark(topic, entry, DirtyReason::kConstraint);
}

void TopicStore::apply_report(RegionId region, TopicId topic,
                              const std::vector<PublisherStats>& publishers,
                              const std::vector<ClientId>& subscribers) {
  Entry& entry = entry_for(topic);

  RegionView incoming;
  incoming.publishers = publishers;
  std::sort(incoming.publishers.begin(), incoming.publishers.end(),
            [](const PublisherStats& a, const PublisherStats& b) {
              return a.client < b.client;
            });
  incoming.subscribers = subscribers;
  std::sort(incoming.subscribers.begin(), incoming.subscribers.end());

  const auto view_it = entry.views.find(region);
  if (view_it != entry.views.end()) {
    const RegionView& stored = view_it->second;
    // Noise gate: drift of an unchanged publisher set within the threshold
    // is rejected outright (the stored stats stay), keeping the stored state
    // and the dirty set consistent with each other.
    if (within_threshold(stored.publishers, incoming.publishers,
                         options_.traffic_threshold)) {
      incoming.publishers = stored.publishers;
    }
    if (same_publishers(incoming.publishers, stored.publishers) &&
        incoming.subscribers == stored.subscribers) {
      return;  // nothing changed for this region
    }
  }

  if (incoming.publishers.empty() && incoming.subscribers.empty()) {
    if (view_it == entry.views.end()) return;
    entry.views.erase(view_it);
  } else {
    entry.views[region] = std::move(incoming);
  }
  rebuild_aggregate(topic, entry);
}

void TopicStore::reconcile_region(RegionId region,
                                  const std::vector<TopicId>& reported) {
  const std::set<TopicId> alive(reported.begin(), reported.end());
  const DirtyReason refresh = DirtyReason::kRefresh;
  for (auto& [topic, entry] : entries_) {
    if (alive.count(topic) > 0) continue;
    const auto view_it = entry.views.find(region);
    if (view_it == entry.views.end()) continue;
    entry.views.erase(view_it);
    rebuild_aggregate(topic, entry, &refresh);
  }
}

void TopicStore::touch_client(ClientId client, DirtyReason reason) {
  const auto it = client_topics_.find(client);
  if (it == client_topics_.end()) return;
  for (TopicId topic : it->second) {
    mark_dirty(topic, reason);
  }
}

void TopicStore::rebuild_aggregate(TopicId topic, Entry& entry,
                                   const DirtyReason* override_reason) {
  // Cross-region merge. Publishers are deduplicated by taking the maximum
  // msg_count per client: under direct delivery every serving region
  // observes the same publications.
  std::map<ClientId, PublisherStats> merged_pubs;
  std::set<ClientId> merged_subs;
  for (const auto& [region, view] : entry.views) {
    for (const PublisherStats& pub : view.publishers) {
      const auto [it, inserted] = merged_pubs.try_emplace(pub.client, pub);
      if (!inserted && pub.msg_count > it->second.msg_count) {
        it->second = pub;
      }
    }
    merged_subs.insert(view.subscribers.begin(), view.subscribers.end());
  }

  std::vector<PublisherStats> new_pubs;
  new_pubs.reserve(merged_pubs.size());
  for (const auto& [client, stats] : merged_pubs) {
    new_pubs.push_back(stats);
  }
  const std::vector<SubscriberStats> new_subs = unit_subscribers(
      std::vector<ClientId>(merged_subs.begin(), merged_subs.end()));

  const bool traffic_changed =
      !same_publishers(entry.aggregate.publishers, new_pubs);
  const bool membership_changed =
      !same_subscribers(entry.aggregate.subscribers, new_subs);
  if (!traffic_changed && !membership_changed) return;

  entry.aggregate.publishers = std::move(new_pubs);
  entry.aggregate.subscribers = new_subs;
  reindex_participants(topic, entry);

  if (override_reason != nullptr) {
    mark(topic, entry, *override_reason);
  } else {
    if (traffic_changed) mark(topic, entry, DirtyReason::kTraffic);
    if (membership_changed) mark(topic, entry, DirtyReason::kMembership);
  }
}

void TopicStore::reindex_participants(TopicId topic, Entry& entry) {
  std::set<ClientId> now;
  for (const PublisherStats& pub : entry.aggregate.publishers) {
    now.insert(pub.client);
  }
  for (const SubscriberStats& sub : entry.aggregate.subscribers) {
    now.insert(sub.client);
  }

  for (ClientId former : entry.participants) {
    if (now.count(former) > 0) continue;
    const auto it = client_topics_.find(former);
    if (it == client_topics_.end()) continue;
    it->second.erase(topic);
    if (it->second.empty()) client_topics_.erase(it);
  }
  for (ClientId client : now) {
    client_topics_[client].insert(topic);
  }
  entry.participants.assign(now.begin(), now.end());
}

const TopicState* TopicStore::state(TopicId topic) const {
  const auto it = entries_.find(topic);
  return it == entries_.end() ? nullptr : &it->second.aggregate;
}

std::vector<TopicId> TopicStore::topic_ids() const {
  std::vector<TopicId> out;
  out.reserve(entries_.size());
  for (const auto& [topic, entry] : entries_) {
    out.push_back(topic);
  }
  return out;
}

std::vector<TopicId> TopicStore::dirty_topics() const {
  return std::vector<TopicId>(dirty_.begin(), dirty_.end());
}

unsigned TopicStore::dirty_reasons(TopicId topic) const {
  const auto it = entries_.find(topic);
  return it == entries_.end() ? 0u : it->second.dirty;
}

}  // namespace multipub::core
