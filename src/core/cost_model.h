// Outgoing-bandwidth cost model (paper §III-E, Equations 3 and 4).
//
// Only outgoing bandwidth is billed (inbound is free in EC2-style pricing):
//   Z_Direct = sum over publishers/messages/serving regions of
//              N_S^{R_i} * Omega(M) * beta(R_i)                      (Eq. 3)
//   Z_Routed = Z_Direct + sum over publishers/messages of
//              (N_R - 1) * Omega(M) * alpha(R^P)                     (Eq. 4)
// where beta is the region's $/byte to Internet clients and alpha its
// $/byte to a sibling region.
#pragma once

#include <vector>

#include "common/types.h"
#include "core/config.h"
#include "core/serving.h"
#include "core/topic_state.h"
#include "geo/latency.h"
#include "geo/region.h"

namespace multipub::core {

class CostModel {
 public:
  /// Catalog and client latencies are borrowed and must outlive the model
  /// (latencies determine which serving region each client attaches to).
  CostModel(const geo::RegionCatalog& catalog,
            const geo::ClientLatencyMap& clients);

  /// Effective subscriber count per serving region (N_S^{R_i}), weighted by
  /// bundling weight and content-filter selectivity; indexed by region id,
  /// zero for non-serving regions.
  [[nodiscard]] std::vector<double> subscribers_per_region(
      const TopicState& topic, geo::RegionSet regions) const;

  /// Total interval cost Z_C for the configuration (Eq. 3 or Eq. 3+4).
  [[nodiscard]] Dollars cost(const TopicState& topic,
                             const TopicConfig& config) const;

  /// Breakdown for reporting: egress to subscribers vs. inter-region
  /// forwarding.
  struct Breakdown {
    Dollars subscriber_egress = 0.0;   ///< Eq. 3 term.
    Dollars inter_region = 0.0;        ///< Eq. 4 additional term.
    [[nodiscard]] Dollars total() const {
      return subscriber_egress + inter_region;
    }
  };
  [[nodiscard]] Breakdown cost_breakdown(const TopicState& topic,
                                         const TopicConfig& config) const;

  /// Zero-allocation variant: serving regions were resolved once by the
  /// caller (shared with the delivery model) and `counts_scratch` is a
  /// reusable per-region accumulator (resized/zeroed here). Produces results
  /// bit-identical to cost_breakdown — same accumulation order.
  [[nodiscard]] Breakdown cost_breakdown(const TopicState& topic,
                                         const TopicConfig& config,
                                         const ServingAssignment& assignment,
                                         std::vector<double>& counts_scratch) const;

  [[nodiscard]] const geo::RegionCatalog& catalog() const { return *catalog_; }

 private:
  const geo::RegionCatalog* catalog_;       // non-owning, never null
  const geo::ClientLatencyMap* clients_;    // non-owning, never null
};

/// Scales an observation-interval cost to a daily figure, as the paper's
/// experiments report ("cloud cost calculated as if the test workload had
/// run for a full day").
[[nodiscard]] Dollars scale_to_day(Dollars interval_cost,
                                   double interval_seconds);

}  // namespace multipub::core
