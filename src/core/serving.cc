#include "core/serving.h"

#include "common/assert.h"

namespace multipub::core {

void resolve_serving(const TopicState& topic, geo::RegionSet regions,
                     const geo::ClientLatencyMap& clients,
                     bool with_publishers, ServingAssignment& out) {
  MP_EXPECTS(!regions.empty());
  out.sub_region.clear();
  out.sub_last_leg.clear();
  out.pub_region.clear();
  out.pub_first_leg.clear();
  out.sub_region.reserve(topic.subscribers.size());
  out.sub_last_leg.reserve(topic.subscribers.size());
  for (const auto& sub : topic.subscribers) {
    const RegionId r = clients.closest_region(sub.client, regions);
    out.sub_region.push_back(r);
    out.sub_last_leg.push_back(clients.at(sub.client, r));
  }
  if (!with_publishers) return;
  out.pub_region.reserve(topic.publishers.size());
  out.pub_first_leg.reserve(topic.publishers.size());
  for (const auto& pub : topic.publishers) {
    const RegionId r = clients.closest_region(pub.client, regions);
    out.pub_region.push_back(r);
    out.pub_first_leg.push_back(clients.at(pub.client, r));
  }
}

}  // namespace multipub::core
