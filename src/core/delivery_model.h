// Publication delivery-time model (paper §III-D and §IV-A).
//
// Under a configuration C, every (publisher, subscriber) pair has one
// deterministic delivery time:
//
//   direct:  D = L[P][R^S]              + L[S][R^S]            (Eq. 1)
//   routed:  D = L[P][R^P] + L^R[R^P][R^S] + L[S][R^S]         (Eq. 2)
//
// where R^S (R^P) is the subscriber's (publisher's) closest serving region.
// (Eq. 2's first term appears as L_{PR^S} in the paper text, a typo: the
// prose — "publisher sends towards its local region R^P", two hops when
// R^S = R^P — requires L_{PR^P}.)
//
// The constraint check (Eq. 5/6) then needs the ratio_T-percentile of the
// delivery times of all messages of the observation interval. Two evaluation
// strategies:
//   - exact_*: materialize one entry per (message, subscriber) delivery, the
//     paper's approach — linear in message count, reproduced for Fig. 6;
//   - weighted_*: one entry per (publisher, subscriber) pair weighted by the
//     publisher's message count times the subscriber weight — identical
//     order statistic, independent of message volume.
#pragma once

#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "core/config.h"
#include "core/serving.h"
#include "core/topic_state.h"
#include "geo/latency.h"

namespace multipub::core {

class DeliveryModel {
 public:
  /// Both matrices are borrowed and must outlive the model.
  DeliveryModel(const geo::InterRegionLatency& backbone,
                const geo::ClientLatencyMap& clients);

  /// Eq. 1/2 for a single (publisher, subscriber) pair under `config`.
  [[nodiscard]] Millis pair_delivery_time(ClientId publisher,
                                          ClientId subscriber,
                                          const TopicConfig& config) const;

  /// One weighted sample per (publisher, subscriber) pair; weight =
  /// publisher msg_count * subscriber weight.
  [[nodiscard]] std::vector<WeightedSample> weighted_delivery_times(
      const TopicState& topic, const TopicConfig& config) const;

  /// Zero-allocation variant: the caller resolved the serving regions once
  /// (shared with the cost model) and owns the reusable output buffer, which
  /// is cleared and refilled. `assignment` must cover the topic's
  /// subscribers, and its publishers too under routed mode.
  void weighted_delivery_times(const TopicState& topic,
                               const TopicConfig& config,
                               const ServingAssignment& assignment,
                               std::vector<WeightedSample>& out) const;

  /// The ratio-percentile of the interval's deliveries (D̊_C), weighted path.
  /// Pre: topic has at least one publisher with msg_count > 0 and one
  /// subscriber.
  [[nodiscard]] Millis delivery_percentile(const TopicState& topic,
                                           const TopicConfig& config,
                                           double ratio) const;

  /// The paper's full list D_C: one entry per (message, subscriber).
  /// Memory: total_deliveries() entries — intended for the runtime analysis.
  [[nodiscard]] std::vector<Millis> exact_delivery_times(
      const TopicState& topic, const TopicConfig& config) const;

  /// D̊_C computed from the materialized list (identical value to
  /// delivery_percentile; verified by property tests).
  [[nodiscard]] Millis exact_delivery_percentile(const TopicState& topic,
                                                 const TopicConfig& config,
                                                 double ratio) const;

  [[nodiscard]] const geo::InterRegionLatency& backbone() const {
    return *backbone_;
  }
  [[nodiscard]] const geo::ClientLatencyMap& clients() const {
    return *clients_;
  }

 private:
  const geo::InterRegionLatency* backbone_;  // non-owning, never null
  const geo::ClientLatencyMap* clients_;     // non-owning, never null
};

}  // namespace multipub::core
