#include "core/delivery_model.h"

#include "common/assert.h"

namespace multipub::core {

DeliveryModel::DeliveryModel(const geo::InterRegionLatency& backbone,
                             const geo::ClientLatencyMap& clients)
    : backbone_(&backbone), clients_(&clients) {
  MP_EXPECTS(backbone.size() == clients.n_regions());
}

Millis DeliveryModel::pair_delivery_time(ClientId publisher,
                                         ClientId subscriber,
                                         const TopicConfig& config) const {
  MP_EXPECTS(!config.regions.empty());
  const RegionId sub_region =
      clients_->closest_region(subscriber, config.regions);
  const Millis last_leg = clients_->at(subscriber, sub_region);

  if (config.mode == DeliveryMode::kDirect) {
    return clients_->at(publisher, sub_region) + last_leg;  // Eq. 1
  }
  const RegionId pub_region =
      clients_->closest_region(publisher, config.regions);
  return clients_->at(publisher, pub_region) +
         backbone_->at(pub_region, sub_region) + last_leg;  // Eq. 2
}

std::vector<WeightedSample> DeliveryModel::weighted_delivery_times(
    const TopicState& topic, const TopicConfig& config) const {
  // Resolve the per-client serving regions once, then delegate to the
  // buffer-reusing overload (one resolution shared by both hops).
  ServingAssignment assignment;
  resolve_serving(topic, config.regions, *clients_,
                  config.mode == DeliveryMode::kRouted, assignment);
  std::vector<WeightedSample> out;
  weighted_delivery_times(topic, config, assignment, out);
  return out;
}

void DeliveryModel::weighted_delivery_times(
    const TopicState& topic, const TopicConfig& config,
    const ServingAssignment& assignment,
    std::vector<WeightedSample>& out) const {
  MP_EXPECTS(assignment.sub_region.size() == topic.subscribers.size());
  out.clear();
  out.reserve(topic.publishers.size() * topic.subscribers.size());
  const auto& subs = assignment.sub_region;

  if (config.mode == DeliveryMode::kDirect) {
    for (const auto& pub : topic.publishers) {
      if (pub.msg_count == 0) continue;
      const auto pub_row = clients_->row(pub.client);
      for (std::size_t i = 0; i < subs.size(); ++i) {
        out.push_back({pub_row[subs[i].index()] + assignment.sub_last_leg[i],
                       pub.msg_count * topic.subscribers[i].weight});
      }
    }
  } else {
    MP_EXPECTS(assignment.pub_region.size() == topic.publishers.size());
    for (std::size_t p = 0; p < topic.publishers.size(); ++p) {
      const auto& pub = topic.publishers[p];
      if (pub.msg_count == 0) continue;
      const RegionId pub_region = assignment.pub_region[p];
      const Millis first_leg = assignment.pub_first_leg[p];
      for (std::size_t i = 0; i < subs.size(); ++i) {
        out.push_back({first_leg + backbone_->at(pub_region, subs[i]) +
                           assignment.sub_last_leg[i],
                       pub.msg_count * topic.subscribers[i].weight});
      }
    }
  }
}

Millis DeliveryModel::delivery_percentile(const TopicState& topic,
                                          const TopicConfig& config,
                                          double ratio) const {
  auto samples = weighted_delivery_times(topic, config);
  MP_EXPECTS(!samples.empty());
  return weighted_percentile(std::move(samples), ratio);
}

std::vector<Millis> DeliveryModel::exact_delivery_times(
    const TopicState& topic, const TopicConfig& config) const {
  std::vector<Millis> out;
  out.reserve(topic.total_deliveries());
  for (const auto& sub : topic.subscribers) {
    for (const auto& pub : topic.publishers) {
      const Millis d = pair_delivery_time(pub.client, sub.client, config);
      const std::uint64_t copies = pub.msg_count * sub.weight;
      out.insert(out.end(), copies, d);
    }
  }
  return out;
}

Millis DeliveryModel::exact_delivery_percentile(const TopicState& topic,
                                                const TopicConfig& config,
                                                double ratio) const {
  const auto list = exact_delivery_times(topic, config);
  MP_EXPECTS(!list.empty());
  return percentile(list, ratio);
}

}  // namespace multipub::core
