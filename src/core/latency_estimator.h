// EWMA latency estimation (paper §III-C).
//
// The controller "keeps track of the latencies between every client and
// each of the cloud regions"; the paper assumes L constant "but our model
// still holds if the value is updated over time at an infrequent rate".
// LatencyEstimator owns the controller's live copy of L and folds measured
// samples in with an exponentially weighted moving average, so a client
// whose connection degrades drags its row towards the truth without
// over-reacting to single noisy probes.
#pragma once

#include <cstdint>

#include "geo/latency.h"

namespace multipub::core {

class LatencyEstimator {
 public:
  /// Starts from an initial map (e.g. King-derived values) and smooths new
  /// observations in with weight `smoothing` in (0, 1]; 1.0 means "trust
  /// the newest sample completely".
  explicit LatencyEstimator(geo::ClientLatencyMap initial,
                            double smoothing = 0.3);

  /// Folds one measured one-way latency sample into the estimate. Returns
  /// true when the stored estimate actually moved (the controller uses this
  /// to dirty the topics the client participates in).
  bool observe(ClientId client, RegionId region, Millis sample);

  /// The current estimate matrix (what the optimizer should use).
  [[nodiscard]] const geo::ClientLatencyMap& map() const { return map_; }

  [[nodiscard]] Millis estimate(ClientId client, RegionId region) const {
    return map_.at(client, region);
  }

  [[nodiscard]] std::uint64_t observations() const { return observations_; }
  [[nodiscard]] double smoothing() const { return smoothing_; }

 private:
  geo::ClientLatencyMap map_;
  double smoothing_;
  std::uint64_t observations_ = 0;
};

}  // namespace multipub::core
