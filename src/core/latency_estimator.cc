#include "core/latency_estimator.h"

#include "common/assert.h"

namespace multipub::core {

LatencyEstimator::LatencyEstimator(geo::ClientLatencyMap initial,
                                   double smoothing)
    : map_(std::move(initial)), smoothing_(smoothing) {
  MP_EXPECTS(smoothing > 0.0 && smoothing <= 1.0);
}

bool LatencyEstimator::observe(ClientId client, RegionId region,
                               Millis sample) {
  MP_EXPECTS(sample >= 0.0);
  map_.ensure_client(client);  // churn: first sample from a new client
  const Millis previous = map_.at(client, region);
  const Millis blended = previous == kUnreachable
                             ? sample
                             : (1.0 - smoothing_) * previous +
                                   smoothing_ * sample;
  map_.set(client, region, blended);
  ++observations_;
  return blended != previous;
}

}  // namespace multipub::core
