// Proportional bundling (paper §V-F).
//
// "Proportional bundling can be used, grouping clients that are close to
// each other and replacing them with a virtual client in order to reduce the
// scale of the problem." Clients whose latency rows differ by at most
// epsilon (L-infinity over all regions) are merged:
//   - subscribers merge into one virtual subscriber whose weight is the sum
//     of the members' weights (preserving N_S^R proportions), and
//   - publishers merge into one virtual publisher accumulating msg_count and
//     bytes (preserving both the percentile weights and Eq. 4's per-home
//     forwarding cost, since near-identical rows share a closest region).
// The answer drifts by at most O(epsilon) in the percentile; the ablation
// bench quantifies it.
#pragma once

#include <vector>

#include "core/topic_state.h"
#include "geo/latency.h"

namespace multipub::core {

struct BundlingParams {
  /// Maximum per-region latency difference (ms) for two clients to share a
  /// bundle.
  double epsilon_ms = 5.0;
};

/// A reduced optimization problem over virtual clients.
struct BundledProblem {
  /// Latency rows of the virtual clients (representative member's row).
  geo::ClientLatencyMap latencies;
  /// Topic restated in virtual-client ids (same TopicId and constraint).
  TopicState topic;
  /// For each virtual subscriber, the original member ids.
  std::vector<std::vector<ClientId>> subscriber_members;
  /// For each virtual publisher, the original member ids.
  std::vector<std::vector<ClientId>> publisher_members;
};

/// Greedy epsilon-bundling of the topic's clients. Deterministic: clients
/// are scanned in topic order and join the first compatible bundle.
[[nodiscard]] BundledProblem bundle_clients(const TopicState& topic,
                                            const geo::ClientLatencyMap& clients,
                                            const BundlingParams& params = {});

}  // namespace multipub::core
