#include "core/mitigation.h"

#include <algorithm>

#include "common/assert.h"
#include "common/stats.h"

namespace multipub::core {
namespace {

/// Weighted delivery samples restricted to one subscriber.
std::vector<WeightedSample> samples_for_subscriber(const TopicState& topic,
                                                   const TopicConfig& config,
                                                   ClientId subscriber,
                                                   const DeliveryModel& model) {
  std::vector<WeightedSample> out;
  out.reserve(topic.publishers.size());
  for (const auto& pub : topic.publishers) {
    if (pub.msg_count == 0) continue;
    out.push_back({model.pair_delivery_time(pub.client, subscriber, config),
                   pub.msg_count});
  }
  return out;
}

}  // namespace

Millis subscriber_percentile(const TopicState& topic,
                             const TopicConfig& config, ClientId subscriber,
                             const DeliveryModel& model) {
  auto samples = samples_for_subscriber(topic, config, subscriber, model);
  MP_EXPECTS(!samples.empty());
  return weighted_percentile(std::move(samples), topic.constraint.ratio);
}

MitigationOutcome mitigate_high_latency_clients(const TopicState& topic,
                                                const TopicConfig& config,
                                                const DeliveryModel& model,
                                                const MitigationParams& params) {
  MP_EXPECTS(!config.regions.empty());
  MitigationOutcome outcome;
  outcome.config = config;

  const std::size_t n_regions = model.clients().n_regions();

  for (const auto& sub : topic.subscribers) {
    // Disadvantaged: every delivery to this subscriber exceeds max_T, i.e.
    // even the *fastest* publisher path is too slow.
    const auto samples =
        samples_for_subscriber(topic, outcome.config, sub.client, model);
    MP_EXPECTS(!samples.empty());
    const Millis fastest =
        std::min_element(samples.begin(), samples.end(),
                         [](const WeightedSample& a, const WeightedSample& b) {
                           return a.value < b.value;
                         })
            ->value;
    if (fastest <= topic.constraint.max) continue;
    outcome.disadvantaged.push_back(sub.client);

    const Millis current =
        subscriber_percentile(topic, outcome.config, sub.client, model);

    // Try force-adding each absent region; keep the one that minimizes the
    // client's own percentile.
    RegionId best_region = RegionId::invalid();
    Millis best_percentile = current;
    for (std::size_t i = 0; i < n_regions; ++i) {
      const RegionId r{static_cast<RegionId::underlying_type>(i)};
      if (outcome.config.regions.contains(r)) continue;
      TopicConfig augmented = outcome.config;
      augmented.regions.add(r);
      const Millis p =
          subscriber_percentile(topic, augmented, sub.client, model);
      if (p < best_percentile) {
        best_percentile = p;
        best_region = r;
      }
    }
    if (!best_region.valid()) continue;

    const bool meets = best_percentile <= topic.constraint.max;
    const bool significant =
        best_percentile <= params.significant_improvement * current;
    if (meets || significant) {
      outcome.config.regions.add(best_region);
      outcome.added_regions.push_back(best_region);
    }
  }
  return outcome;
}

}  // namespace multipub::core
