#include "core/topic_state.h"

namespace multipub::core {

std::uint64_t TopicState::total_messages() const {
  std::uint64_t n = 0;
  for (const auto& p : publishers) n += p.msg_count;
  return n;
}

Bytes TopicState::total_published_bytes() const {
  Bytes n = 0;
  for (const auto& p : publishers) n += p.total_bytes;
  return n;
}

std::uint64_t TopicState::total_subscriber_weight() const {
  std::uint64_t n = 0;
  for (const auto& s : subscribers) n += s.weight;
  return n;
}

std::uint64_t TopicState::total_deliveries() const {
  return total_messages() * total_subscriber_weight();
}

std::vector<PublisherStats> uniform_publishers(const std::vector<ClientId>& ids,
                                               std::uint64_t msg_count,
                                               Bytes msg_bytes) {
  std::vector<PublisherStats> out;
  out.reserve(ids.size());
  for (ClientId id : ids) {
    out.push_back({id, msg_count, msg_count * msg_bytes});
  }
  return out;
}

std::vector<SubscriberStats> unit_subscribers(const std::vector<ClientId>& ids) {
  std::vector<SubscriberStats> out;
  out.reserve(ids.size());
  for (ClientId id : ids) out.push_back({id, 1});
  return out;
}

}  // namespace multipub::core
