// Batched subset-lattice evaluation engine for the optimizer hot path.
//
// The reference path (Optimizer::evaluate, kept for differential testing)
// treats each of the 2·(2^N − 1) − N configurations independently: it
// re-resolves every client's closest serving region with an O(N) scan —
// twice, once in the delivery model and once in the cost model — allocates a
// fresh P×S weighted-sample vector and runs a full weighted quickselect per
// configuration. The engine evaluates the whole lattice in one pass instead:
//
//  1. Region preference lists. Each client's candidate regions are sorted
//     once per topic by (latency, region id) — the exact tie-break of
//     ClientLatencyMap::closest_region — so closest(client, subset) is the
//     first subset member in preference order, and during the lattice walk
//     the comparison "does the newly added region steal this client?" is a
//     single rank compare.
//  2. Lattice-order enumeration. Subsets are walked depth-first, each child
//     extending its parent by one region, so serving assignments update
//     incrementally (the new region either steals a client or nothing
//     changes) and are undone on backtrack.
//  3. Integer feasibility counting. The constraint <ratio, max> holds iff
//     the total weight of delivery samples ≤ max reaches the percentile
//     rank — an exact integer criterion maintained incrementally, with no
//     allocation and no quickselect.
//  4. Lazy percentiles. The weighted quickselect (reusing one scratch
//     buffer) runs only for configurations that survive the cost-first
//     feasible ordering, or — when nothing is feasible — for the
//     latency-minimizing fallback scan, not for all configurations.
//
// Selection replays the reference enumeration order (subset mask ascending,
// direct before routed), so tie-breaks resolve identically and the result is
// bit-identical to the reference path. See DESIGN.md §"Evaluation engine".
//
// An engine instance owns reusable scratch buffers and is therefore NOT
// thread-safe; create one engine per worker thread (optimize_topics does).
#pragma once

#include <cstdint>
#include <vector>

#include "core/optimizer.h"

namespace multipub::core {

class EvaluationEngine {
 public:
  /// Borrows the optimizer (and through it the catalog/latency matrices);
  /// it must outlive the engine.
  explicit EvaluationEngine(const Optimizer& optimizer);

  /// Same contract and bit-identical result as Optimizer::optimize.
  /// kExactList delegates to the reference path (it exists to reproduce the
  /// paper's runtime analysis, not to be fast).
  [[nodiscard]] OptimizerResult optimize(const TopicState& topic,
                                         const OptimizerOptions& options = {});

  /// Same contract and bit-identical rows as Optimizer::evaluate_all_reference
  /// (every configuration's percentile is materialized, eagerly).
  [[nodiscard]] std::vector<ConfigEvaluation> evaluate_all(
      const TopicState& topic, const OptimizerOptions& options = {});

 private:
  /// One lattice node × delivery mode; indexed by local subset mask.
  struct Row {
    Dollars cost_direct = 0.0;
    Dollars cost_routed = 0.0;
    Millis pct_direct = -1.0;  ///< lazily filled; -1 = not yet computed
    Millis pct_routed = -1.0;
    bool feasible_direct = false;
    bool feasible_routed = false;
  };

  /// Per-level undo record for the depth-first lattice walk.
  struct Level {
    std::vector<std::uint32_t> moved_subs;
    std::vector<std::int32_t> moved_subs_old_member;
    std::vector<std::uint64_t> moved_subs_old_contrib_d;
    std::vector<std::uint64_t> moved_subs_old_contrib_r;
    std::vector<std::uint32_t> moved_pubs;
    std::vector<std::int32_t> moved_pubs_old_member;
    std::vector<std::uint64_t> contrib_r_snapshot;
    std::uint64_t old_count_d = 0;
    std::uint64_t old_count_r = 0;
    bool pubs_moved = false;
  };

  void prepare(const TopicState& topic, const OptimizerOptions& options);
  void walk_lattice();
  void push_member(std::size_t j, Level& level);
  void pop_member(Level& level);
  void dfs(std::size_t next_member, std::uint64_t mask, int size);
  void emit_row(std::uint64_t mask, int size);

  [[nodiscard]] geo::RegionSet global_set(std::uint64_t mask) const;
  /// Lazily computes (and memoizes) the configuration's delivery percentile.
  [[nodiscard]] Millis percentile_of(std::uint64_t mask, DeliveryMode mode);

  const Optimizer* optimizer_;  // non-owning, never null

  // ---- per-topic state (rebuilt by prepare, buffers reused) ----
  const TopicState* topic_ = nullptr;
  OptimizerOptions options_;
  std::vector<RegionId> members_;        ///< candidate regions, ascending id
  std::size_t k_ = 0;                    ///< members_.size()
  bool routed_tracked_ = false;          ///< policy permits routed rows
  Millis max_t_ = 0.0;
  std::uint64_t rank_needed_ = 0;        ///< percentile rank in total weight
  double published_bytes_ = 0.0;
  std::vector<double> beta_;             ///< $/byte per member
  std::vector<double> alpha_;
  std::vector<Millis> backbone_mm_;      ///< k×k member-to-member one-way
  std::vector<Millis> sub_lat_;          ///< S×k client→member latency
  std::vector<Millis> pub_lat_;          ///< P×k
  std::vector<std::uint16_t> sub_rank_;  ///< S×k preference rank of member
  std::vector<std::uint16_t> pub_rank_;
  std::vector<std::uint32_t> active_pubs_;  ///< indices with msg_count > 0
  std::vector<std::uint64_t> active_msgs_;  ///< their msg_count
  std::vector<std::uint64_t> sub_weight_;
  std::vector<double> sub_weight_sel_;   ///< weight × selectivity

  // ---- lattice walk state ----
  std::vector<std::int32_t> cur_sub_member_;  ///< -1 = unassigned
  std::vector<std::int32_t> cur_pub_member_;
  std::vector<std::uint64_t> contrib_d_;  ///< per-sub weight ≤ max, direct
  std::vector<std::uint64_t> contrib_r_;
  std::uint64_t count_d_ = 0;
  std::uint64_t count_r_ = 0;
  std::vector<Level> levels_;
  std::vector<double> egress_counts_;    ///< per-member N_S accumulator
  std::vector<Row> rows_;                ///< 2^k entries

  // ---- lazy-percentile scratch ----
  std::vector<WeightedSample> samples_;
  std::vector<std::uint16_t> pref_order_;  ///< S+P × k members by preference
};

}  // namespace multipub::core
