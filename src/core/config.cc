#include "core/config.h"

#include "common/assert.h"

namespace multipub::core {

const char* to_string(DeliveryMode mode) {
  switch (mode) {
    case DeliveryMode::kDirect: return "direct";
    case DeliveryMode::kRouted: return "routed";
  }
  return "?";
}

std::string TopicConfig::to_string() const {
  return regions.to_string() + "/" + core::to_string(mode);
}

std::vector<TopicConfig> enumerate_configurations(geo::RegionSet candidates,
                                                  ModePolicy policy) {
  MP_EXPECTS(!candidates.empty());
  const std::vector<RegionId> members = candidates.to_vector();
  const std::size_t k = members.size();
  MP_EXPECTS(k <= 24);

  std::vector<TopicConfig> out;
  const std::uint64_t limit = std::uint64_t{1} << k;
  for (std::uint64_t m = 1; m < limit; ++m) {
    // Expand the subset of `members` selected by local mask m into a
    // RegionSet over global region ids.
    geo::RegionSet subset;
    for (std::size_t bit = 0; bit < k; ++bit) {
      if ((m >> bit) & 1) subset.add(members[bit]);
    }
    if (subset.size() == 1) {
      out.push_back({subset, DeliveryMode::kDirect});
      continue;
    }
    if (policy != ModePolicy::kRoutedOnly) {
      out.push_back({subset, DeliveryMode::kDirect});
    }
    if (policy != ModePolicy::kDirectOnly) {
      out.push_back({subset, DeliveryMode::kRouted});
    }
  }
  return out;
}

}  // namespace multipub::core
