#include "core/parallel.h"

#include <atomic>
#include <thread>

#include "common/assert.h"
#include "core/evaluation_engine.h"

namespace multipub::core {

std::vector<OptimizerResult> optimize_topics(const Optimizer& optimizer,
                                             std::span<const TopicState> topics,
                                             const OptimizerOptions& options,
                                             unsigned threads) {
  std::vector<OptimizerResult> results(topics.size());
  if (topics.empty()) return results;

  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = std::min<unsigned>(threads, static_cast<unsigned>(topics.size()));

  if (threads == 1) {
    EvaluationEngine engine(optimizer);
    for (std::size_t i = 0; i < topics.size(); ++i) {
      results[i] = engine.optimize(topics[i], options);
    }
    return results;
  }

  // Work stealing via a shared atomic cursor: topics can have wildly
  // different sizes, so static partitioning would leave workers idle.
  // Each worker owns one EvaluationEngine whose scratch buffers amortize
  // across all topics it processes; per-topic results do not depend on which
  // worker ran them, so the thread count never changes the output.
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    EvaluationEngine engine(optimizer);
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= topics.size()) return;
      results[i] = engine.optimize(topics[i], options);
    }
  };

  std::vector<std::jthread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back(worker);
  }
  pool.clear();  // joins
  return results;
}

}  // namespace multipub::core
