// Serving-region resolution shared by the delivery and cost models.
//
// Under a configuration, each client attaches to its closest serving region
// (paper §III-B). Both models need that resolution — the delivery model for
// the first/last legs of Eq. 1/2, the cost model for N_S^{R_i} and for the
// routed forwarding source R^P of Eq. 4. The seed code resolved it twice per
// configuration with an O(N) scan per client; ServingAssignment lets a
// caller (the evaluation engine, or any batched evaluator) resolve once and
// hand the result to both models.
#pragma once

#include <vector>

#include "common/types.h"
#include "core/topic_state.h"
#include "geo/latency.h"

namespace multipub::core {

/// Per-client serving-region resolution for one configuration. Entries are
/// parallel to TopicState::subscribers / TopicState::publishers. Publisher
/// entries are only required by routed-mode evaluations; direct-mode callers
/// may leave them empty.
struct ServingAssignment {
  std::vector<RegionId> sub_region;   ///< R^S per subscriber.
  std::vector<Millis> sub_last_leg;   ///< L[S][R^S] per subscriber.
  std::vector<RegionId> pub_region;   ///< R^P per publisher.
  std::vector<Millis> pub_first_leg;  ///< L[P][R^P] per publisher.
};

/// Fills `out` (reusing its capacity) with every client's closest serving
/// region among `regions`, matching ClientLatencyMap::closest_region exactly
/// (ties towards the lower region id). `with_publishers` controls whether
/// publisher entries are resolved (needed for routed mode).
void resolve_serving(const TopicState& topic, geo::RegionSet regions,
                     const geo::ClientLatencyMap& clients,
                     bool with_publishers, ServingAssignment& out);

}  // namespace multipub::core
