// Parallel optimization of independent topics (paper §IV-C / §V-F).
//
// "Since there is no global constraint, or inter-topic constraints, all
// topics can then be considered as independent" — so the controller can
// solve them concurrently. Optimizer::optimize is a pure const member; the
// workers share one optimizer and partition the topic list.
#pragma once

#include <span>
#include <vector>

#include "core/optimizer.h"

namespace multipub::core {

/// Optimizes every topic, one OptimizerResult per input in input order.
/// `threads` = 0 picks the hardware concurrency. Deterministic: the result
/// for each topic is independent of the thread schedule.
[[nodiscard]] std::vector<OptimizerResult> optimize_topics(
    const Optimizer& optimizer, std::span<const TopicState> topics,
    const OptimizerOptions& options = {}, unsigned threads = 0);

}  // namespace multipub::core
