// High-latency client mitigation (paper §IV-D).
//
// A client may temporarily sit behind a bad connection; since the constraint
// is a percentile over *all* deliveries, such a client can have every one of
// its deliveries land above max_T while the configuration still counts as
// feasible. The controller periodically scans for those clients and checks
// whether force-adding one region to the topic's current region set would
// meet — or significantly improve — that client's latencies; if so the
// region is added (and dropped again once no longer needed).
#pragma once

#include <vector>

#include "core/delivery_model.h"
#include "core/topic_state.h"

namespace multipub::core {

struct MitigationParams {
  /// A forced region is also accepted when it cannot fully meet max_T but
  /// reduces the client's percentile to at most this fraction of its
  /// current value ("improved significantly").
  double significant_improvement = 0.7;
};

struct MitigationOutcome {
  /// The (possibly augmented) configuration to deploy.
  TopicConfig config;
  /// Subscribers whose every delivery exceeded max_T under the input config.
  std::vector<ClientId> disadvantaged;
  /// Regions force-added on their behalf (empty when none helped).
  std::vector<RegionId> added_regions;
};

/// The percentile (at the topic's ratio) of the delivery times of messages
/// arriving at one specific subscriber under `config`.
[[nodiscard]] Millis subscriber_percentile(const TopicState& topic,
                                           const TopicConfig& config,
                                           ClientId subscriber,
                                           const DeliveryModel& model);

/// Detects disadvantaged subscribers and force-adds helpful regions.
/// Leaves the delivery mode unchanged. Pre: topic has publishers with
/// messages; config non-empty.
[[nodiscard]] MitigationOutcome mitigate_high_latency_clients(
    const TopicState& topic, const TopicConfig& config,
    const DeliveryModel& model, const MitigationParams& params = {});

}  // namespace multipub::core
