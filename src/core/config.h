// Topic configurations: assignment vector + delivery mode.
//
// A configuration (paper §IV) is one row of the assignment matrix — which
// regions serve the topic — plus the choice between direct delivery
// (publishers send to every serving region) and routed delivery (publishers
// send to their closest serving region, which forwards to the rest).
#pragma once

#include <string>
#include <vector>

#include "geo/region_set.h"

namespace multipub::core {

/// How publications reach the serving regions (paper §II-B2).
enum class DeliveryMode {
  kDirect,  ///< Publisher sends to all serving regions itself.
  kRouted,  ///< Publisher sends to its closest serving region, which forwards.
};

[[nodiscard]] const char* to_string(DeliveryMode mode);

/// One candidate configuration for a topic.
struct TopicConfig {
  geo::RegionSet regions;
  DeliveryMode mode = DeliveryMode::kDirect;

  [[nodiscard]] int region_count() const { return regions.size(); }
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const TopicConfig&, const TopicConfig&) = default;
};

/// Which delivery modes the optimizer may consider. MultiPub-D / MultiPub-R
/// of Experiment 2 restrict the controller to one mode.
enum class ModePolicy { kBoth, kDirectOnly, kRoutedOnly };

/// Enumerates every configuration over the member regions of `candidates`:
/// all non-empty subsets; subsets of size >= 2 appear once per permitted
/// mode, singleton subsets once (both modes coincide — there is nothing to
/// forward — and are canonicalized as kDirect). With kBoth and a full
/// candidate set of n regions this yields the paper's
/// 2*(2^n - 1) - n configurations.
[[nodiscard]] std::vector<TopicConfig> enumerate_configurations(
    geo::RegionSet candidates, ModePolicy policy = ModePolicy::kBoth);

}  // namespace multipub::core
