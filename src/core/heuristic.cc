#include "core/heuristic.h"

#include <optional>

#include "common/assert.h"

namespace multipub::core {
namespace {

/// Delivery modes the policy permits for multi-region sets.
std::vector<DeliveryMode> permitted_modes(ModePolicy policy) {
  switch (policy) {
    case ModePolicy::kDirectOnly: return {DeliveryMode::kDirect};
    case ModePolicy::kRoutedOnly: return {DeliveryMode::kRouted};
    case ModePolicy::kBoth:
      return {DeliveryMode::kDirect, DeliveryMode::kRouted};
  }
  return {DeliveryMode::kDirect};
}

}  // namespace

HeuristicOptimizer::HeuristicOptimizer(const geo::RegionCatalog& catalog,
                                       const geo::InterRegionLatency& backbone,
                                       const geo::ClientLatencyMap& clients)
    : catalog_(&catalog), exact_(catalog, backbone, clients) {}

ConfigEvaluation HeuristicOptimizer::evaluate(const TopicState& topic,
                                              const TopicConfig& config) const {
  return exact_.evaluate(topic, config);
}

HeuristicResult HeuristicOptimizer::optimize(
    const TopicState& topic, const HeuristicOptions& options) const {
  MP_EXPECTS(!topic.subscribers.empty());
  MP_EXPECTS(topic.total_messages() > 0);
  const std::size_t n = catalog_->size();
  const geo::RegionSet candidates = options.candidates.empty()
                                        ? geo::RegionSet::universe(n)
                                        : options.candidates;
  const auto modes = permitted_modes(options.mode_policy);
  std::size_t evals = 0;
  auto is_candidate = [&](std::size_t i) {
    return candidates.contains(
        RegionId{static_cast<RegionId::underlying_type>(i)});
  };

  // TRIM/SWAP local search: remove one region, flip the delivery mode, or
  // swap one member for one absent region — whichever feasibility-preserving
  // move most improves the paper's ordering. Removal undoes GROW overshoot;
  // swaps repair greedy path dependence.
  auto local_search = [&](ConfigEvaluation current) {
    bool improved = current.feasible;
    while (improved) {
      improved = false;
      std::optional<ConfigEvaluation> best_step;
      auto consider = [&](const TopicConfig& candidate) {
        auto eval = evaluate(topic, candidate);
        ++evals;
        if (eval.feasible &&
            (!best_step || Optimizer::better(eval, *best_step))) {
          best_step = eval;
        }
      };
      auto consider_set = [&](geo::RegionSet regions) {
        if (regions.empty()) return;
        if (regions.size() == 1) {
          consider({regions, DeliveryMode::kDirect});
          return;
        }
        for (DeliveryMode mode : modes) consider({regions, mode});
      };

      for (RegionId r : current.config.regions) {
        const geo::RegionSet without = current.config.regions.without(r);
        consider_set(without);  // removal
        for (std::size_t i = 0; i < n; ++i) {
          if (!is_candidate(i)) continue;
          const RegionId a{static_cast<RegionId::underlying_type>(i)};
          if (current.config.regions.contains(a)) continue;
          consider_set(without.with(a));  // swap r -> a
        }
      }
      if (current.config.region_count() > 1) {
        for (DeliveryMode mode : modes) {
          if (mode != current.config.mode) {
            consider({current.config.regions, mode});  // mode flip
          }
        }
      }

      if (best_step && Optimizer::better(*best_step, current)) {
        current = *best_step;
        improved = true;
      }
    }
    return current;
  };

  // --- Pass A: SEED at the best single region, GROW until feasible, then
  //     local-search down. ---
  std::optional<ConfigEvaluation> best_single;
  for (std::size_t i = 0; i < n; ++i) {
    if (!is_candidate(i)) continue;
    const TopicConfig single{
        geo::RegionSet::single(RegionId{static_cast<RegionId::underlying_type>(i)}),
        DeliveryMode::kDirect};
    auto eval = evaluate(topic, single);
    ++evals;
    if (!best_single || Optimizer::better(eval, *best_single)) {
      best_single = eval;
    }
  }
  ConfigEvaluation grown = *best_single;
  while (!grown.feasible) {
    if (options.max_regions > 0 &&
        grown.config.region_count() >= options.max_regions) {
      break;
    }
    std::optional<ConfigEvaluation> best_step;
    for (std::size_t i = 0; i < n; ++i) {
      if (!is_candidate(i)) continue;
      const RegionId r{static_cast<RegionId::underlying_type>(i)};
      if (grown.config.regions.contains(r)) continue;
      for (DeliveryMode mode : modes) {
        auto eval = evaluate(topic, {grown.config.regions.with(r), mode});
        ++evals;
        if (!best_step || Optimizer::better(eval, *best_step)) {
          best_step = eval;
        }
      }
    }
    // Stop when no addition lowers the percentile: adding more regions is
    // then pure cost.
    if (!best_step ||
        (!best_step->feasible && best_step->percentile >= grown.percentile)) {
      break;
    }
    grown = *best_step;
  }
  ConfigEvaluation best = local_search(grown);

  // --- Pass B: SEED at the full region set and local-search down. The two
  //     directions get stuck in different local optima; tight-middle bounds
  //     are typically won by the shrink direction. Skipped when max_regions
  //     forbids the full seed. ---
  if (options.max_regions == 0 ||
      options.max_regions >= candidates.size()) {
    std::optional<ConfigEvaluation> universe_best;
    for (DeliveryMode mode : modes) {
      auto eval = evaluate(
          topic, {candidates,
                  candidates.size() == 1 ? DeliveryMode::kDirect : mode});
      ++evals;
      if (!universe_best || Optimizer::better(eval, *universe_best)) {
        universe_best = eval;
      }
    }
    const ConfigEvaluation shrunk = local_search(*universe_best);
    if (Optimizer::better(shrunk, best)) best = shrunk;
  }

  HeuristicResult result;
  result.config = best.config;
  result.percentile = best.percentile;
  result.cost = best.cost;
  result.constraint_met = best.feasible;
  result.configs_evaluated = evals;
  return result;
}

}  // namespace multipub::core
