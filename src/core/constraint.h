// Per-topic delivery constraint <ratio_T, max_T> (paper §II-A).
#pragma once

#include "common/types.h"

namespace multipub::core {

/// "ratio percent of all messages sent on the topic must be delivered
/// within max milliseconds." E.g. {95.0, 200.0}: 95 % within 200 ms.
struct DeliveryConstraint {
  double ratio = 100.0;  ///< Percentile in (0, 100].
  Millis max = kUnreachable;  ///< Upper bound on that percentile's latency.

  [[nodiscard]] bool satisfied_by(Millis percentile_value) const {
    return percentile_value <= max;
  }

  friend bool operator==(const DeliveryConstraint&,
                         const DeliveryConstraint&) = default;
};

}  // namespace multipub::core
