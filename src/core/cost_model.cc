#include "core/cost_model.h"

#include "common/assert.h"

namespace multipub::core {

CostModel::CostModel(const geo::RegionCatalog& catalog,
                     const geo::ClientLatencyMap& clients)
    : catalog_(&catalog), clients_(&clients) {
  MP_EXPECTS(catalog.size() == clients.n_regions());
}

std::vector<double> CostModel::subscribers_per_region(
    const TopicState& topic, geo::RegionSet regions) const {
  MP_EXPECTS(!regions.empty());
  std::vector<double> counts(catalog_->size(), 0.0);
  for (const auto& sub : topic.subscribers) {
    MP_EXPECTS(sub.selectivity > 0.0 && sub.selectivity <= 1.0);
    const RegionId r = clients_->closest_region(sub.client, regions);
    // A content-filtered subscriber only receives (and is only billed for)
    // the fraction of publications its filter matches.
    counts[r.index()] += static_cast<double>(sub.weight) * sub.selectivity;
  }
  return counts;
}

CostModel::Breakdown CostModel::cost_breakdown(const TopicState& topic,
                                               const TopicConfig& config) const {
  Breakdown out;
  const auto subs_per_region =
      subscribers_per_region(topic, config.regions);
  const Bytes published_bytes = topic.total_published_bytes();

  // Eq. 3: every serving region R_i sends each published byte once per local
  // subscriber at beta(R_i). Regions without subscribers contribute zero,
  // whichever mode.
  for (RegionId r : config.regions.to_vector()) {
    out.subscriber_egress += subs_per_region[r.index()] *
                             static_cast<double>(published_bytes) *
                             catalog_->at(r).beta_per_byte();
  }

  // Eq. 4: under routed delivery each publisher's bytes are forwarded from
  // its closest serving region R^P to the other N_R - 1 serving regions at
  // alpha(R^P).
  if (config.mode == DeliveryMode::kRouted && config.regions.size() > 1) {
    const double forwards = static_cast<double>(config.regions.size() - 1);
    for (const auto& pub : topic.publishers) {
      if (pub.total_bytes == 0) continue;
      const RegionId home =
          clients_->closest_region(pub.client, config.regions);
      out.inter_region += forwards * static_cast<double>(pub.total_bytes) *
                          catalog_->at(home).alpha_per_byte();
    }
  }
  return out;
}

Dollars CostModel::cost(const TopicState& topic,
                        const TopicConfig& config) const {
  return cost_breakdown(topic, config).total();
}

Dollars scale_to_day(Dollars interval_cost, double interval_seconds) {
  MP_EXPECTS(interval_seconds > 0.0);
  return interval_cost * (86400.0 / interval_seconds);
}

}  // namespace multipub::core
