#include "core/cost_model.h"

#include "common/assert.h"

namespace multipub::core {

CostModel::CostModel(const geo::RegionCatalog& catalog,
                     const geo::ClientLatencyMap& clients)
    : catalog_(&catalog), clients_(&clients) {
  MP_EXPECTS(catalog.size() == clients.n_regions());
}

std::vector<double> CostModel::subscribers_per_region(
    const TopicState& topic, geo::RegionSet regions) const {
  MP_EXPECTS(!regions.empty());
  std::vector<double> counts(catalog_->size(), 0.0);
  for (const auto& sub : topic.subscribers) {
    MP_EXPECTS(sub.selectivity > 0.0 && sub.selectivity <= 1.0);
    const RegionId r = clients_->closest_region(sub.client, regions);
    // A content-filtered subscriber only receives (and is only billed for)
    // the fraction of publications its filter matches.
    counts[r.index()] += static_cast<double>(sub.weight) * sub.selectivity;
  }
  return counts;
}

CostModel::Breakdown CostModel::cost_breakdown(const TopicState& topic,
                                               const TopicConfig& config) const {
  ServingAssignment assignment;
  resolve_serving(topic, config.regions, *clients_,
                  config.mode == DeliveryMode::kRouted, assignment);
  std::vector<double> counts;
  return cost_breakdown(topic, config, assignment, counts);
}

CostModel::Breakdown CostModel::cost_breakdown(
    const TopicState& topic, const TopicConfig& config,
    const ServingAssignment& assignment,
    std::vector<double>& counts_scratch) const {
  MP_EXPECTS(!config.regions.empty());
  MP_EXPECTS(assignment.sub_region.size() == topic.subscribers.size());
  Breakdown out;

  // N_S^{R_i}, accumulated exactly as subscribers_per_region does (same
  // per-region addition order) so both entry points price identically.
  counts_scratch.assign(catalog_->size(), 0.0);
  for (std::size_t i = 0; i < topic.subscribers.size(); ++i) {
    const auto& sub = topic.subscribers[i];
    MP_EXPECTS(sub.selectivity > 0.0 && sub.selectivity <= 1.0);
    counts_scratch[assignment.sub_region[i].index()] +=
        static_cast<double>(sub.weight) * sub.selectivity;
  }
  const Bytes published_bytes = topic.total_published_bytes();

  // Eq. 3: every serving region R_i sends each published byte once per local
  // subscriber at beta(R_i). Regions without subscribers contribute zero,
  // whichever mode.
  for (RegionId r : config.regions) {
    out.subscriber_egress += counts_scratch[r.index()] *
                             static_cast<double>(published_bytes) *
                             catalog_->at(r).beta_per_byte();
  }

  // Eq. 4: under routed delivery each publisher's bytes are forwarded from
  // its closest serving region R^P to the other N_R - 1 serving regions at
  // alpha(R^P).
  if (config.mode == DeliveryMode::kRouted && config.regions.size() > 1) {
    MP_EXPECTS(assignment.pub_region.size() == topic.publishers.size());
    const double forwards = static_cast<double>(config.regions.size() - 1);
    for (std::size_t p = 0; p < topic.publishers.size(); ++p) {
      const auto& pub = topic.publishers[p];
      if (pub.total_bytes == 0) continue;
      out.inter_region += forwards * static_cast<double>(pub.total_bytes) *
                          catalog_->at(assignment.pub_region[p]).alpha_per_byte();
    }
  }
  return out;
}

Dollars CostModel::cost(const TopicState& topic,
                        const TopicConfig& config) const {
  return cost_breakdown(topic, config).total();
}

Dollars scale_to_day(Dollars interval_cost, double interval_seconds) {
  MP_EXPECTS(interval_seconds > 0.0);
  return interval_cost * (86400.0 / interval_seconds);
}

}  // namespace multipub::core
