// Candidate-region pruning (paper §V-F).
//
// The optimizer is exponential in the number of candidate regions, and the
// paper notes that "simple pruning can remove expensive regions with no or
// very few subscribers". This heuristic restricts the search to regions
// that are actually close to someone:
//   - the union, over every client of the topic, of that client's
//     `keep_closest` lowest-latency regions, plus
//   - the region with the cheapest subscriber-egress tariff (so the cheap
//     one-region fallback configuration always remains reachable).
#pragma once

#include "core/topic_state.h"
#include "geo/latency.h"
#include "geo/region.h"
#include "geo/region_set.h"

namespace multipub::core {

struct PruningParams {
  /// How many of each client's closest regions survive (>= 1).
  int keep_closest = 2;
};

/// Returns the pruned candidate set; never empty, always a subset of the
/// catalog's universe.
[[nodiscard]] geo::RegionSet prune_candidates(
    const TopicState& topic, const geo::ClientLatencyMap& clients,
    const geo::RegionCatalog& catalog, const PruningParams& params = {});

}  // namespace multipub::core
