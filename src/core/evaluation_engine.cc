#include "core/evaluation_engine.h"

#include <algorithm>
#include <bit>
#include <numeric>

#include "common/assert.h"

namespace multipub::core {

EvaluationEngine::EvaluationEngine(const Optimizer& optimizer)
    : optimizer_(&optimizer) {}

void EvaluationEngine::prepare(const TopicState& topic,
                               const OptimizerOptions& options) {
  MP_EXPECTS(!topic.subscribers.empty());
  MP_EXPECTS(topic.total_messages() > 0);
  topic_ = &topic;
  options_ = options;

  const auto& catalog = optimizer_->cost_model().catalog();
  const auto& clients = optimizer_->delivery_model().clients();
  const auto& backbone = optimizer_->delivery_model().backbone();

  const geo::RegionSet candidates =
      options.candidates.empty() ? geo::RegionSet::universe(catalog.size())
                                 : options.candidates;
  members_ = candidates.to_vector();
  k_ = members_.size();
  MP_EXPECTS(k_ >= 1 && k_ <= 24);  // mirrors enumerate_configurations

  routed_tracked_ = options.mode_policy != ModePolicy::kDirectOnly && k_ > 1;
  max_t_ = topic.constraint.max;

  const std::uint64_t total_weight =
      topic.total_messages() * topic.total_subscriber_weight();
  MP_EXPECTS(total_weight > 0);
  rank_needed_ = percentile_rank(topic.constraint.ratio, total_weight);
  published_bytes_ = static_cast<double>(topic.total_published_bytes());

  beta_.resize(k_);
  alpha_.resize(k_);
  for (std::size_t j = 0; j < k_; ++j) {
    beta_[j] = catalog.at(members_[j]).beta_per_byte();
    alpha_[j] = catalog.at(members_[j]).alpha_per_byte();
  }
  backbone_mm_.resize(k_ * k_);
  for (std::size_t i = 0; i < k_; ++i) {
    for (std::size_t j = 0; j < k_; ++j) {
      backbone_mm_[i * k_ + j] = backbone.at(members_[i], members_[j]);
    }
  }

  const std::size_t S = topic.subscribers.size();
  const std::size_t P = topic.publishers.size();

  sub_lat_.resize(S * k_);
  sub_weight_.resize(S);
  sub_weight_sel_.resize(S);
  for (std::size_t s = 0; s < S; ++s) {
    const auto& sub = topic.subscribers[s];
    MP_EXPECTS(sub.selectivity > 0.0 && sub.selectivity <= 1.0);
    const auto row = clients.row(sub.client);
    for (std::size_t j = 0; j < k_; ++j) {
      sub_lat_[s * k_ + j] = row[members_[j].index()];
    }
    sub_weight_[s] = sub.weight;
    sub_weight_sel_[s] = static_cast<double>(sub.weight) * sub.selectivity;
  }

  pub_lat_.resize(P * k_);
  active_pubs_.clear();
  active_msgs_.clear();
  for (std::size_t p = 0; p < P; ++p) {
    const auto& pub = topic.publishers[p];
    const auto row = clients.row(pub.client);
    for (std::size_t j = 0; j < k_; ++j) {
      pub_lat_[p * k_ + j] = row[members_[j].index()];
    }
    if (pub.msg_count > 0) {
      active_pubs_.push_back(static_cast<std::uint32_t>(p));
      active_msgs_.push_back(pub.msg_count);
    }
  }

  // Preference lists: members sorted per client by (latency, region id) —
  // ascending member index breaks latency ties exactly like the reference
  // closest_region scan (members_ is ascending in global id).
  pref_order_.resize((S + P) * k_);
  sub_rank_.resize(S * k_);
  pub_rank_.resize(P * k_);
  const auto build_pref = [this](const Millis* lat, std::uint16_t* order,
                                 std::uint16_t* rank) {
    for (std::size_t j = 0; j < k_; ++j) {
      order[j] = static_cast<std::uint16_t>(j);
    }
    std::sort(order, order + k_, [lat](std::uint16_t a, std::uint16_t b) {
      if (lat[a] != lat[b]) return lat[a] < lat[b];
      return a < b;
    });
    for (std::size_t t = 0; t < k_; ++t) {
      rank[order[t]] = static_cast<std::uint16_t>(t);
    }
  };
  for (std::size_t s = 0; s < S; ++s) {
    build_pref(&sub_lat_[s * k_], &pref_order_[s * k_], &sub_rank_[s * k_]);
  }
  for (std::size_t p = 0; p < P; ++p) {
    build_pref(&pub_lat_[p * k_], &pref_order_[(S + p) * k_],
               &pub_rank_[p * k_]);
  }

  // Lattice-walk state.
  cur_sub_member_.assign(S, -1);
  cur_pub_member_.assign(P, -1);
  contrib_d_.assign(S, 0);
  contrib_r_.assign(S, 0);
  count_d_ = 0;
  count_r_ = 0;
  levels_.resize(k_);
  egress_counts_.resize(k_);
  rows_.assign(std::size_t{1} << k_, Row{});
}

void EvaluationEngine::push_member(std::size_t j, Level& level) {
  level.moved_subs.clear();
  level.moved_subs_old_member.clear();
  level.moved_subs_old_contrib_d.clear();
  level.moved_subs_old_contrib_r.clear();
  level.moved_pubs.clear();
  level.moved_pubs_old_member.clear();
  level.pubs_moved = false;
  level.old_count_d = count_d_;
  level.old_count_r = count_r_;

  const std::size_t S = topic_->subscribers.size();
  for (std::size_t s = 0; s < S; ++s) {
    const std::int32_t cur = cur_sub_member_[s];
    // The added region steals the subscriber only when it is strictly
    // preferred (lower (latency, id) rank) over the current serving region.
    if (cur >= 0 && sub_rank_[s * k_ + j] >=
                        sub_rank_[s * k_ + static_cast<std::size_t>(cur)]) {
      continue;
    }
    level.moved_subs.push_back(static_cast<std::uint32_t>(s));
    level.moved_subs_old_member.push_back(cur);
    level.moved_subs_old_contrib_d.push_back(contrib_d_[s]);
    level.moved_subs_old_contrib_r.push_back(contrib_r_[s]);
    cur_sub_member_[s] = static_cast<std::int32_t>(j);
  }
  if (routed_tracked_) {
    const std::size_t P = topic_->publishers.size();
    for (std::size_t p = 0; p < P; ++p) {
      const std::int32_t cur = cur_pub_member_[p];
      if (cur >= 0 && pub_rank_[p * k_ + j] >=
                          pub_rank_[p * k_ + static_cast<std::size_t>(cur)]) {
        continue;
      }
      level.moved_pubs.push_back(static_cast<std::uint32_t>(p));
      level.moved_pubs_old_member.push_back(cur);
      cur_pub_member_[p] = static_cast<std::int32_t>(j);
    }
    level.pubs_moved = !level.moved_pubs.empty();
  }

  // Direct-mode feasibility weight: per-subscriber contributions only change
  // for stolen subscribers (the publisher leg L[P][R^S] depends on R^S only).
  for (const std::uint32_t s : level.moved_subs) {
    const Millis sl = sub_lat_[s * k_ + j];
    std::uint64_t c = 0;
    for (std::size_t a = 0; a < active_pubs_.size(); ++a) {
      const std::size_t p = active_pubs_[a];
      c += active_msgs_[a] * ((pub_lat_[p * k_ + j] + sl) <= max_t_ ? 1u : 0u);
    }
    const std::uint64_t nc = c * sub_weight_[s];
    count_d_ += nc - contrib_d_[s];
    contrib_d_[s] = nc;
  }

  if (!routed_tracked_) return;
  const auto routed_contrib = [this](std::size_t s) {
    const auto ms = static_cast<std::size_t>(cur_sub_member_[s]);
    const Millis sl = sub_lat_[s * k_ + ms];
    std::uint64_t c = 0;
    for (std::size_t a = 0; a < active_pubs_.size(); ++a) {
      const std::size_t p = active_pubs_[a];
      const auto mp = static_cast<std::size_t>(cur_pub_member_[p]);
      const Millis v =
          (pub_lat_[p * k_ + mp] + backbone_mm_[mp * k_ + ms]) + sl;
      c += active_msgs_[a] * (v <= max_t_ ? 1u : 0u);
    }
    return c * sub_weight_[s];
  };
  if (level.pubs_moved) {
    // A publisher changed home: every (publisher, subscriber) pair may have
    // changed — recompute all routed contributions (integer sums, exact).
    level.contrib_r_snapshot.assign(contrib_r_.begin(), contrib_r_.end());
    count_r_ = 0;
    const std::size_t S2 = topic_->subscribers.size();
    for (std::size_t s = 0; s < S2; ++s) {
      contrib_r_[s] = routed_contrib(s);
      count_r_ += contrib_r_[s];
    }
  } else {
    for (const std::uint32_t s : level.moved_subs) {
      const std::uint64_t nc = routed_contrib(s);
      count_r_ += nc - contrib_r_[s];
      contrib_r_[s] = nc;
    }
  }
}

void EvaluationEngine::pop_member(Level& level) {
  count_d_ = level.old_count_d;
  count_r_ = level.old_count_r;
  for (std::size_t i = 0; i < level.moved_subs.size(); ++i) {
    const std::uint32_t s = level.moved_subs[i];
    cur_sub_member_[s] = level.moved_subs_old_member[i];
    contrib_d_[s] = level.moved_subs_old_contrib_d[i];
    if (routed_tracked_ && !level.pubs_moved) {
      contrib_r_[s] = level.moved_subs_old_contrib_r[i];
    }
  }
  if (routed_tracked_ && level.pubs_moved) {
    std::copy(level.contrib_r_snapshot.begin(), level.contrib_r_snapshot.end(),
              contrib_r_.begin());
  }
  for (std::size_t i = 0; i < level.moved_pubs.size(); ++i) {
    cur_pub_member_[level.moved_pubs[i]] = level.moved_pubs_old_member[i];
  }
}

void EvaluationEngine::emit_row(std::uint64_t mask, int size) {
  Row& row = rows_[mask];

  // Eq. 3 subscriber egress, accumulated exactly like CostModel::
  // cost_breakdown: per-region N_S in subscriber order, then one term per
  // subset member in ascending region id.
  std::fill(egress_counts_.begin(), egress_counts_.end(), 0.0);
  const std::size_t S = topic_->subscribers.size();
  for (std::size_t s = 0; s < S; ++s) {
    egress_counts_[static_cast<std::size_t>(cur_sub_member_[s])] +=
        sub_weight_sel_[s];
  }
  double egress = 0.0;
  for (std::size_t j = 0; j < k_; ++j) {
    if ((mask >> j) & 1) {
      egress += egress_counts_[j] * published_bytes_ * beta_[j];
    }
  }
  row.cost_direct = egress;
  row.feasible_direct = count_d_ >= rank_needed_;

  if (routed_tracked_ && size > 1) {
    // Eq. 4 inter-region forwarding, publisher order as the reference.
    const double forwards = static_cast<double>(size - 1);
    double inter = 0.0;
    const std::size_t P = topic_->publishers.size();
    for (std::size_t p = 0; p < P; ++p) {
      const auto& pub = topic_->publishers[p];
      if (pub.total_bytes == 0) continue;
      inter += forwards * static_cast<double>(pub.total_bytes) *
               alpha_[static_cast<std::size_t>(cur_pub_member_[p])];
    }
    row.cost_routed = egress + inter;
    row.feasible_routed = count_r_ >= rank_needed_;
  }
}

void EvaluationEngine::dfs(std::size_t next_member, std::uint64_t mask,
                           int size) {
  for (std::size_t j = next_member; j < k_; ++j) {
    Level& level = levels_[static_cast<std::size_t>(size)];
    push_member(j, level);
    emit_row(mask | (std::uint64_t{1} << j), size + 1);
    dfs(j + 1, mask | (std::uint64_t{1} << j), size + 1);
    pop_member(level);
  }
}

void EvaluationEngine::walk_lattice() { dfs(0, 0, 0); }

geo::RegionSet EvaluationEngine::global_set(std::uint64_t mask) const {
  geo::RegionSet out;
  for (std::size_t j = 0; j < k_; ++j) {
    if ((mask >> j) & 1) out.add(members_[j]);
  }
  return out;
}

Millis EvaluationEngine::percentile_of(std::uint64_t mask, DeliveryMode mode) {
  Row& row = rows_[mask];
  Millis& slot =
      mode == DeliveryMode::kDirect ? row.pct_direct : row.pct_routed;
  if (slot >= 0.0) return slot;

  // Resolve serving members with a first-hit scan over each client's
  // preference list (identical assignment to closest_region).
  const std::size_t S = topic_->subscribers.size();
  const auto first_member = [this, mask](std::size_t pref_row) {
    const std::uint16_t* order = &pref_order_[pref_row * k_];
    for (std::size_t t = 0; t < k_; ++t) {
      if ((mask >> order[t]) & 1) return static_cast<std::size_t>(order[t]);
    }
    MP_ENSURES(false && "non-empty subset must have a first member");
    return std::size_t{0};
  };

  samples_.clear();
  if (mode == DeliveryMode::kDirect) {
    for (std::size_t a = 0; a < active_pubs_.size(); ++a) {
      const std::size_t p = active_pubs_[a];
      for (std::size_t s = 0; s < S; ++s) {
        const std::size_t ms = first_member(s);
        samples_.push_back(
            {pub_lat_[p * k_ + ms] + sub_lat_[s * k_ + ms],
             active_msgs_[a] * sub_weight_[s]});
      }
    }
  } else {
    for (std::size_t a = 0; a < active_pubs_.size(); ++a) {
      const std::size_t p = active_pubs_[a];
      const std::size_t mp = first_member(S + p);
      for (std::size_t s = 0; s < S; ++s) {
        const std::size_t ms = first_member(s);
        samples_.push_back(
            {(pub_lat_[p * k_ + mp] + backbone_mm_[mp * k_ + ms]) +
                 sub_lat_[s * k_ + ms],
             active_msgs_[a] * sub_weight_[s]});
      }
    }
  }
  slot = weighted_percentile_inplace(samples_, topic_->constraint.ratio);
  return slot;
}

OptimizerResult EvaluationEngine::optimize(const TopicState& topic,
                                           const OptimizerOptions& options) {
  if (options.strategy == EvaluationStrategy::kExactList) {
    return optimizer_->optimize_reference(topic, options);
  }
  prepare(topic, options);
  walk_lattice();

  const std::uint64_t limit = std::uint64_t{1} << k_;
  const bool allow_direct = options.mode_policy != ModePolicy::kRoutedOnly;
  const bool allow_routed = options.mode_policy != ModePolicy::kDirectOnly;

  struct Best {
    std::uint64_t mask = 0;
    DeliveryMode mode = DeliveryMode::kDirect;
    double cost = 0.0;
    int size = 0;
  };
  Best best;
  bool have_best = false;

  // Pass A — feasible configurations only, replayed in the reference
  // enumeration order (mask ascending, direct before routed) so ties keep
  // the earliest candidate exactly like Optimizer::optimize_reference.
  // The ordering mirrors Optimizer::better's feasible branch: cost, then
  // region count, then (lazily computed) percentile.
  const auto consider_feasible = [&](std::uint64_t m, DeliveryMode mode,
                                     double cost, int size) {
    if (!have_best) {
      best = {m, mode, cost, size};
      have_best = true;
      return;
    }
    bool wins = false;
    if (!Optimizer::almost_equal(cost, best.cost)) {
      wins = cost < best.cost;
    } else if (size != best.size) {
      wins = size < best.size;
    } else {
      const Millis pc = percentile_of(m, mode);
      const Millis pb = percentile_of(best.mask, best.mode);
      wins = !Optimizer::almost_equal(pc, pb) && pc < pb;
    }
    if (wins) best = {m, mode, cost, size};
  };
  for (std::uint64_t m = 1; m < limit; ++m) {
    const Row& row = rows_[m];
    const int size = std::popcount(m);
    if (size == 1) {
      if (row.feasible_direct) {
        consider_feasible(m, DeliveryMode::kDirect, row.cost_direct, 1);
      }
      continue;
    }
    if (allow_direct && row.feasible_direct) {
      consider_feasible(m, DeliveryMode::kDirect, row.cost_direct, size);
    }
    if (allow_routed && row.feasible_routed) {
      consider_feasible(m, DeliveryMode::kRouted, row.cost_routed, size);
    }
  }

  const bool constraint_met = have_best;

  // Pass B — nothing feasible: the latency-minimizing fallback needs the
  // percentile of every configuration (Optimizer::better's infeasible
  // branch: percentile, then cost, then size).
  if (!have_best) {
    const auto consider_infeasible = [&](std::uint64_t m, DeliveryMode mode,
                                         double cost, int size) {
      const Millis pc = percentile_of(m, mode);
      if (!have_best) {
        best = {m, mode, cost, size};
        have_best = true;
        return;
      }
      const Millis pb = percentile_of(best.mask, best.mode);
      bool wins = false;
      if (!Optimizer::almost_equal(pc, pb)) {
        wins = pc < pb;
      } else if (!Optimizer::almost_equal(cost, best.cost)) {
        wins = cost < best.cost;
      } else {
        wins = size < best.size;
      }
      if (wins) best = {m, mode, cost, size};
    };
    for (std::uint64_t m = 1; m < limit; ++m) {
      const Row& row = rows_[m];
      const int size = std::popcount(m);
      if (size == 1) {
        consider_infeasible(m, DeliveryMode::kDirect, row.cost_direct, 1);
        continue;
      }
      if (allow_direct) {
        consider_infeasible(m, DeliveryMode::kDirect, row.cost_direct, size);
      }
      if (allow_routed) {
        consider_infeasible(m, DeliveryMode::kRouted, row.cost_routed, size);
      }
    }
  }
  MP_ENSURES(have_best);

  OptimizerResult result;
  result.config = {global_set(best.mask), best.mode};
  result.percentile = percentile_of(best.mask, best.mode);
  result.cost = best.cost;
  result.constraint_met = constraint_met;
  result.configs_evaluated =
      k_ + (limit - 1 - k_) *
               (options.mode_policy == ModePolicy::kBoth ? 2 : 1);
  return result;
}

std::vector<ConfigEvaluation> EvaluationEngine::evaluate_all(
    const TopicState& topic, const OptimizerOptions& options) {
  if (options.strategy == EvaluationStrategy::kExactList) {
    return optimizer_->evaluate_all_reference(topic, options);
  }
  prepare(topic, options);
  walk_lattice();

  const std::uint64_t limit = std::uint64_t{1} << k_;
  const bool allow_direct = options.mode_policy != ModePolicy::kRoutedOnly;
  const bool allow_routed = options.mode_policy != ModePolicy::kDirectOnly;

  std::vector<ConfigEvaluation> evals;
  const auto emit = [&](std::uint64_t m, DeliveryMode mode, double cost,
                        bool feasible) {
    ConfigEvaluation eval;
    eval.config = {global_set(m), mode};
    eval.percentile = percentile_of(m, mode);
    eval.cost = cost;
    eval.feasible = feasible;
    evals.push_back(std::move(eval));
  };
  for (std::uint64_t m = 1; m < limit; ++m) {
    const Row& row = rows_[m];
    if (std::popcount(m) == 1) {
      emit(m, DeliveryMode::kDirect, row.cost_direct, row.feasible_direct);
      continue;
    }
    if (allow_direct) {
      emit(m, DeliveryMode::kDirect, row.cost_direct, row.feasible_direct);
    }
    if (allow_routed) {
      emit(m, DeliveryMode::kRouted, row.cost_routed, row.feasible_routed);
    }
  }
  return evals;
}

}  // namespace multipub::core
