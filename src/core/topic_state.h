// Observed per-topic state for one collection interval.
//
// This is the input to the optimizer: the region managers report, per topic,
// who published how much and who is subscribed (paper §III-A3). Subscribers
// carry an integer weight so that proportional bundling (paper §V-F) can
// replace a cluster of nearby clients with one virtual client.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "core/constraint.h"

namespace multipub::core {

/// One publisher's traffic on the topic during the observation interval.
struct PublisherStats {
  ClientId client;
  /// Number of messages published (N_M^P in the paper).
  std::uint64_t msg_count = 0;
  /// Sum of message sizes in bytes (sum of Omega(M_j^P)).
  Bytes total_bytes = 0;
};

/// One subscriber (or a bundled virtual subscriber standing for `weight`
/// real ones at nearly identical network positions).
struct SubscriberStats {
  ClientId client;
  std::uint32_t weight = 1;
  /// Fraction of the topic's publications this subscriber's content filter
  /// matches (1.0 = plain topic subscription). Affects the cost model only:
  /// filtering is independent of network position, so the latency
  /// distribution of the messages that ARE delivered — and hence the
  /// delivery-time percentile — is unchanged.
  double selectivity = 1.0;
};

/// Everything the controller knows about one topic for one interval.
struct TopicState {
  TopicId topic;
  DeliveryConstraint constraint;
  std::vector<PublisherStats> publishers;
  std::vector<SubscriberStats> subscribers;

  /// Total messages published across all publishers (sum of N_M^P).
  [[nodiscard]] std::uint64_t total_messages() const;

  /// Total bytes published across all publishers.
  [[nodiscard]] Bytes total_published_bytes() const;

  /// Total subscriber weight (N_S, counting bundled multiplicities).
  [[nodiscard]] std::uint64_t total_subscriber_weight() const;

  /// |D_C| of the paper: total number of end-to-end deliveries in the
  /// interval, i.e. total_messages() * total_subscriber_weight().
  [[nodiscard]] std::uint64_t total_deliveries() const;
};

/// Convenience builder: `count` publishers each sending `msg_count`
/// messages of `msg_bytes` bytes, clients drawn from `ids` in order.
[[nodiscard]] std::vector<PublisherStats> uniform_publishers(
    const std::vector<ClientId>& ids, std::uint64_t msg_count,
    Bytes msg_bytes);

/// Convenience builder for unit-weight subscribers.
[[nodiscard]] std::vector<SubscriberStats> unit_subscribers(
    const std::vector<ClientId>& ids);

}  // namespace multipub::core
