// The MultiPub configuration optimizer (paper §IV).
//
// For each topic the controller enumerates every configuration — each
// non-empty region subset, direct and routed — computes its delivery-time
// percentile D̊_C and bandwidth cost Z_C, and selects:
//   1. among constraint-satisfying configurations, the cheapest;
//   2. ties broken by fewer regions, then by lower percentile (see
//      Optimizer::better for why this deviates from the paper's §IV-B text);
//   3. if nothing satisfies the constraint, the configuration with the
//      lowest percentile (the most latency-minimizing one).
#pragma once

#include <optional>
#include <vector>

#include "core/config.h"
#include "core/cost_model.h"
#include "core/delivery_model.h"
#include "core/topic_state.h"
#include "geo/latency.h"
#include "geo/region.h"

namespace multipub::core {

/// Which percentile evaluation strategy the optimizer uses.
enum class EvaluationStrategy {
  /// Per-(publisher, subscriber) weighted samples — volume-independent.
  kWeighted,
  /// The paper's materialized per-message list — linear in message count.
  /// Kept to reproduce the runtime analysis (Fig. 6).
  kExactList,
};

struct OptimizerOptions {
  ModePolicy mode_policy = ModePolicy::kBoth;
  EvaluationStrategy strategy = EvaluationStrategy::kWeighted;
  /// Restrict the search to a subset of regions (empty = all regions of the
  /// catalog). Used by the pruning heuristic and by region sweeps.
  geo::RegionSet candidates;
};

/// One evaluated configuration: the row the controller would sort.
struct ConfigEvaluation {
  TopicConfig config;
  Millis percentile = 0.0;  ///< D̊_C.
  Dollars cost = 0.0;       ///< Z_C for the observation interval.
  bool feasible = false;    ///< D̊_C <= max_T.
};

/// The optimizer's decision for one topic.
struct OptimizerResult {
  TopicConfig config;
  Millis percentile = 0.0;
  Dollars cost = 0.0;
  /// False when no configuration met the constraint and `config` is merely
  /// the latency-minimizing fallback.
  bool constraint_met = false;
  std::size_t configs_evaluated = 0;
};

class Optimizer {
 public:
  /// All three inputs are borrowed and must outlive the optimizer.
  Optimizer(const geo::RegionCatalog& catalog,
            const geo::InterRegionLatency& backbone,
            const geo::ClientLatencyMap& clients);

  /// Full enumeration + selection. Pre: topic has >= 1 subscriber and >= 1
  /// publisher with msg_count > 0. The kWeighted strategy runs on the
  /// batched EvaluationEngine (bit-identical result, see
  /// evaluation_engine.h); kExactList keeps the paper's per-config algorithm
  /// for the Fig. 6 runtime analysis.
  [[nodiscard]] OptimizerResult optimize(const TopicState& topic,
                                         const OptimizerOptions& options = {}) const;

  /// Evaluates every candidate configuration without selecting (exposed for
  /// benchmarks, tests and the what-if analyses of the examples).
  [[nodiscard]] std::vector<ConfigEvaluation> evaluate_all(
      const TopicState& topic, const OptimizerOptions& options = {}) const;

  /// The seed's config-by-config enumeration + selection, kept as the
  /// reference implementation for differential tests and the engine
  /// speedup benchmark. Same results as optimize().
  [[nodiscard]] OptimizerResult optimize_reference(
      const TopicState& topic, const OptimizerOptions& options = {}) const;

  /// Config-by-config evaluate_all (reference path).
  [[nodiscard]] std::vector<ConfigEvaluation> evaluate_all_reference(
      const TopicState& topic, const OptimizerOptions& options = {}) const;

  /// Evaluates one specific configuration (used by baselines and by the
  /// high-latency mitigation pass).
  [[nodiscard]] ConfigEvaluation evaluate(const TopicState& topic,
                                          const TopicConfig& config,
                                          EvaluationStrategy strategy =
                                              EvaluationStrategy::kWeighted) const;

  /// True when `lhs` is a strictly better choice than `rhs` under the
  /// paper's ordering (§IV-B). Exposed for property tests.
  [[nodiscard]] static bool better(const ConfigEvaluation& lhs,
                                   const ConfigEvaluation& rhs);

  /// Relative-epsilon equality used by better()'s cost and percentile
  /// tie-breaks: model outputs are sums/order statistics of identical terms
  /// whose association order may legally differ between evaluation paths, so
  /// exact float equality would let sub-ulp noise flip selections
  /// nondeterministically. See DESIGN.md §"Evaluation engine".
  [[nodiscard]] static bool almost_equal(double a, double b);

  [[nodiscard]] const DeliveryModel& delivery_model() const { return delivery_; }
  [[nodiscard]] const CostModel& cost_model() const { return cost_; }

 private:
  const geo::RegionCatalog* catalog_;  // non-owning, never null
  DeliveryModel delivery_;
  CostModel cost_;
};

}  // namespace multipub::core
