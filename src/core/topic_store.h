// Persistent, incrementally maintained per-topic state (the controller's
// materialized view of the system).
//
// The paper's controller re-aggregates every region's reports and re-runs
// the optimizer for every topic each collection interval (§III-A4). That
// makes round cost proportional to the TOTAL topic count. TopicStore keeps
// each topic's aggregated TopicState across intervals and tracks which
// topics actually CHANGED — publisher traffic beyond a configurable
// relative threshold, subscriber membership, constraint, region
// availability, or a latency estimate touching a participating client — so
// a reconfiguration round only has to optimize the dirty ones.
//
// Invariant: a topic is marked dirty if and only if its stored state (or an
// external input affecting its optimization) changed since the last
// clear_dirty(). In particular, a traffic delta within the threshold is
// REJECTED — the stored stats keep their previous values — so the store
// never holds state the dirty set does not account for, and a full scan
// over the store is bit-identical to an incremental scan at any threshold.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "core/topic_state.h"

namespace multipub::core {

/// Why a topic needs re-optimization (bitmask values; a topic can be dirty
/// for several reasons at once).
enum class DirtyReason : unsigned {
  kNew = 1u << 0,           ///< first time the store sees the topic
  kTraffic = 1u << 1,       ///< publisher stats changed beyond the threshold
  kMembership = 1u << 2,    ///< subscriber joined or left
  kConstraint = 1u << 3,    ///< delivery constraint updated
  kAvailability = 1u << 4,  ///< candidate region set flipped
  kLatency = 1u << 5,       ///< latency estimate of a participant moved
  kRefresh = 1u << 6,       ///< periodic full refresh corrected stale state
  kForced = 1u << 7,        ///< explicit invalidation (policy change etc.)
};

inline constexpr int kDirtyReasonCount = 8;

[[nodiscard]] constexpr unsigned reason_bit(DirtyReason reason) {
  return static_cast<unsigned>(reason);
}

[[nodiscard]] const char* to_string(DirtyReason reason);

struct TopicStoreOptions {
  /// Maximum relative per-publisher stats delta (on msg_count and
  /// total_bytes, against the stored values) that is considered noise and
  /// dropped without dirtying the topic. 0.0 = every change is significant.
  /// Deltas accumulate against the stored stats, so sustained drift
  /// eventually crosses any threshold.
  double traffic_threshold = 0.0;
};

class TopicStore {
 public:
  TopicStore() = default;
  explicit TopicStore(const TopicStoreOptions& options);

  /// Registers (or updates) a topic's delivery constraint; dirties the topic
  /// (kConstraint) only when the constraint actually changed.
  void set_constraint(TopicId topic, const DeliveryConstraint& constraint);

  /// Applies one region's interval report for one topic. Both lists are
  /// authoritative for that region (an empty publisher list means "no
  /// traffic there anymore"). Order does not matter; they are sorted
  /// internally. Dirties the topic only when the aggregate state changes.
  void apply_report(RegionId region, TopicId topic,
                    const std::vector<PublisherStats>& publishers,
                    const std::vector<ClientId>& subscribers);

  /// Self-healing against lost deltas: given the complete list of topics a
  /// region reported in a FULL snapshot, drops that region's view of every
  /// topic not in the list (the region no longer knows it). Changes caused
  /// here are marked kRefresh.
  void reconcile_region(RegionId region, const std::vector<TopicId>& reported);

  /// Dirties (with `reason`) every topic the client currently participates
  /// in — used when the client's latency estimate moves.
  void touch_client(ClientId client, DirtyReason reason);

  void mark_dirty(TopicId topic, DirtyReason reason);
  void mark_all_dirty(DirtyReason reason);
  void clear_dirty();

  /// The aggregated state the optimizer should see (cross-region publisher
  /// dedup by max msg_count, sorted unit subscribers). nullptr when the
  /// topic is unknown.
  [[nodiscard]] const TopicState* state(TopicId topic) const;

  /// All tracked topics, ascending.
  [[nodiscard]] std::vector<TopicId> topic_ids() const;

  /// Currently dirty topics, ascending.
  [[nodiscard]] std::vector<TopicId> dirty_topics() const;

  /// This topic's dirty-reason bitmask (0 = clean or unknown).
  [[nodiscard]] unsigned dirty_reasons(TopicId topic) const;

  [[nodiscard]] bool dirty(TopicId topic) const {
    return dirty_reasons(topic) != 0;
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t dirty_count() const { return dirty_.size(); }
  [[nodiscard]] const TopicStoreOptions& options() const { return options_; }

  /// Adjusts the traffic noise gate; applies to subsequent reports only.
  void set_traffic_threshold(double threshold);

 private:
  /// What one region last told us about one topic (both vectors sorted).
  struct RegionView {
    std::vector<PublisherStats> publishers;
    std::vector<ClientId> subscribers;
  };

  struct Entry {
    std::map<RegionId, RegionView> views;  // ordered for determinism
    TopicState aggregate;                  // cached merge of the views
    std::vector<ClientId> participants;    // sorted clients of the aggregate
    unsigned dirty = 0;
  };

  Entry& entry_for(TopicId topic);
  void mark(TopicId topic, Entry& entry, DirtyReason reason);
  /// Re-merges the views into the cached aggregate; dirties with
  /// kTraffic/kMembership (or `override_reason` when given) if it changed.
  void rebuild_aggregate(TopicId topic, Entry& entry,
                         const DirtyReason* override_reason = nullptr);
  void reindex_participants(TopicId topic, Entry& entry);

  TopicStoreOptions options_;
  std::map<TopicId, Entry> entries_;  // ordered for deterministic rounds
  std::set<TopicId> dirty_;
  /// Reverse index for touch_client: which topics a client participates in.
  std::unordered_map<ClientId, std::set<TopicId>> client_topics_;
};

}  // namespace multipub::core
