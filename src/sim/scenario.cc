#include "sim/scenario.h"

#include <cmath>

#include "common/assert.h"

namespace multipub::sim {

std::uint64_t messages_per_interval(const WorkloadSpec& workload) {
  MP_EXPECTS(workload.publish_rate_hz > 0.0);
  MP_EXPECTS(workload.interval_seconds > 0.0);
  const double n =
      std::round(workload.publish_rate_hz * workload.interval_seconds);
  return n < 1.0 ? 1 : static_cast<std::uint64_t>(n);
}

Scenario make_scenario(const std::vector<PlacementSpec>& placements,
                       const WorkloadSpec& workload, Rng& rng,
                       const geo::KingSynthParams& synth) {
  Scenario s;
  s.catalog = geo::RegionCatalog::ec2_2016();
  s.backbone = geo::InterRegionLatency::ec2_2016();
  s.interval_seconds = workload.interval_seconds;

  s.population.latencies = geo::ClientLatencyMap(s.catalog.size());

  std::vector<ClientId> publisher_ids;
  std::vector<ClientId> subscriber_ids;
  for (const auto& place : placements) {
    MP_EXPECTS(place.region.valid() && place.region.index() < s.catalog.size());
    const std::size_t count = place.publishers + place.subscribers;
    auto local = geo::synthesize_local_population(
        s.catalog, s.backbone, place.region, count, synth, rng);
    // Re-home the freshly synthesized rows into the scenario population so
    // ids stay dense across placements.
    MP_EXPECTS(workload.subscriber_replication >= 1);
    for (std::size_t i = 0; i < count; ++i) {
      const ClientId local_id{static_cast<ClientId::underlying_type>(i)};
      const auto row = local.latencies.row(local_id);
      if (i < place.publishers) {
        publisher_ids.push_back(s.population.latencies.add_client(row));
        s.population.home_region.push_back(place.region);
      } else {
        // Each subscriber position materializes `subscriber_replication`
        // distinct clients on the same exact row.
        for (std::size_t rep = 0; rep < workload.subscriber_replication;
             ++rep) {
          subscriber_ids.push_back(s.population.latencies.add_client(row));
          s.population.home_region.push_back(place.region);
        }
      }
    }
  }

  s.topic.topic = TopicId{0};
  s.topic.constraint = {workload.ratio, workload.max_t};
  const std::uint64_t msgs = messages_per_interval(workload);
  s.topic.publishers =
      core::uniform_publishers(publisher_ids, msgs, workload.message_bytes);
  s.topic.subscribers = core::unit_subscribers(subscriber_ids);
  return s;
}

Scenario make_experiment1_scenario(Rng& rng) {
  // "100 globally-distributed publishers and subscribers, where always 10
  // publishers and 10 subscribers are located close to one of the EC2
  // regions. Each publisher publishes on average once per second (message
  // size of 1 KByte)." Ratio 75 %.
  std::vector<PlacementSpec> placements;
  for (int r = 0; r < 10; ++r) {
    placements.push_back({RegionId{r}, 10, 10});
  }
  WorkloadSpec workload;
  workload.ratio = 75.0;
  return make_scenario(placements, workload, rng);
}

Scenario make_experiment2_scenario(Rng& rng) {
  // "100 publishers and 25 subscribers in Asia, and 25 subscribers in the
  // USA." Publishers spread over the four Asia-Pacific regions; Asian
  // subscribers near Tokyo, US subscribers near N. Virginia. Ratio 75 %.
  const auto catalog = geo::RegionCatalog::ec2_2016();
  const RegionId tokyo = catalog.find("ap-northeast-1");
  const RegionId seoul = catalog.find("ap-northeast-2");
  const RegionId singapore = catalog.find("ap-southeast-1");
  const RegionId sydney = catalog.find("ap-southeast-2");
  const RegionId virginia = catalog.find("us-east-1");

  std::vector<PlacementSpec> placements{
      {tokyo, 25, 25},
      {seoul, 25, 0},
      {singapore, 25, 0},
      {sydney, 25, 0},
      {virginia, 0, 25},
  };
  WorkloadSpec workload;
  workload.ratio = 75.0;
  return make_scenario(placements, workload, rng);
}

Scenario make_experiment3_scenario(RegionId home, Rng& rng) {
  // "100 publishers and 100 subscribers were selected so that they were
  // closest from a latency point of view to region R." Ratio 95 %.
  std::vector<PlacementSpec> placements{{home, 100, 100}};
  WorkloadSpec workload;
  workload.ratio = 95.0;
  return make_scenario(placements, workload, rng);
}

}  // namespace multipub::sim
