#include "sim/baselines.h"

#include "common/assert.h"

namespace multipub::sim {

core::ConfigEvaluation one_region_baseline(const core::Optimizer& optimizer,
                                           const core::TopicState& topic) {
  const std::size_t n = optimizer.cost_model().catalog().size();
  MP_EXPECTS(n > 0);
  std::optional<core::ConfigEvaluation> best;
  for (std::size_t i = 0; i < n; ++i) {
    const core::TopicConfig config{
        geo::RegionSet::single(RegionId{static_cast<RegionId::underlying_type>(i)}),
        core::DeliveryMode::kDirect};
    auto eval = optimizer.evaluate(topic, config);
    const bool is_better =
        !best || eval.cost < best->cost ||
        (eval.cost == best->cost && eval.percentile < best->percentile);
    if (is_better) best = eval;
  }
  return *best;
}

core::ConfigEvaluation all_regions_baseline(const core::Optimizer& optimizer,
                                            const core::TopicState& topic,
                                            core::DeliveryMode mode,
                                            std::size_t n_regions) {
  MP_EXPECTS(n_regions > 0);
  const core::TopicConfig config{geo::RegionSet::universe(n_regions), mode};
  return optimizer.evaluate(topic, config);
}

}  // namespace multipub::sim
