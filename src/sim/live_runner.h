// Live (event-driven) execution of a scenario.
//
// While the figures are produced by the analytic engine (as in the paper),
// LiveSystem instantiates the actual middleware — per-region brokers, region
// managers, the controller, publisher and subscriber endpoints — over the
// discrete-event transport, runs real publication traffic through it, and
// measures delivery times and billed bytes. Property tests assert that the
// measurements coincide with the analytic model (Eq. 1-4), and the examples
// use it to demonstrate transparent reconfiguration.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "broker/controller.h"
#include "broker/region_manager.h"
#include "client/client_registry.h"
#include "client/cohort_pool.h"
#include "client/publisher.h"
#include "client/subscriber.h"
#include "client/topic_set_pool.h"
#include "common/arena.h"
#include "net/shard_placement.h"
#include "net/simulator.h"
#include "net/transport.h"
#include "sim/scenario.h"

namespace multipub::sim {

/// Measurements from one traffic interval.
struct LiveRunResult {
  /// Every end-to-end delivery time observed by any subscriber.
  std::vector<Millis> delivery_times;
  /// The ratio_T-percentile of delivery_times (the topic's ratio).
  Millis percentile = 0.0;
  /// Billed cost of this interval (ledger delta).
  Dollars interval_cost = 0.0;
  Dollars cost_per_day = 0.0;
  std::uint64_t publications = 0;
  std::uint64_t deliveries = 0;
};

class LiveSystem {
 public:
  /// Builds brokers for every region of the scenario's catalog and one
  /// endpoint per publisher/subscriber of its topic. Borrows the scenario;
  /// it must outlive the system.
  explicit LiveSystem(const Scenario& scenario);

  /// Bootstraps a configuration everywhere: brokers' assignment rows,
  /// publishers' send targets, subscribers' attachments. Runs the simulator
  /// until the subscription handshakes have settled.
  void deploy(const core::TopicConfig& config);

  /// Publishes `seconds` worth of traffic (each publisher at `rate_hz`,
  /// fixed spacing with a random phase drawn from `rng`), runs the simulator
  /// until every message settles, and returns the measurements.
  [[nodiscard]] LiveRunResult run_interval(double seconds, Bytes payload_bytes,
                                           double rate_hz, Rng& rng);

  /// One control round: region managers report, the controller re-optimizes,
  /// changed configurations are deployed through the region managers (which
  /// notify clients over the network). Runs the simulator until the control
  /// traffic settles. Returns the controller's decisions.
  std::vector<broker::Controller::Decision> control_round(
      const core::OptimizerOptions& options = {});

  /// Chooses the control-plane pipeline. Incremental (default): region
  /// managers send delta reports and the controller re-optimizes dirty
  /// topics only. Off: full snapshots + Controller::reconfigure_full every
  /// round (the seed's behaviour, kept as the differential reference).
  void set_incremental(bool incremental) { incremental_ = incremental; }
  [[nodiscard]] bool incremental() const { return incremental_; }

  /// Selects the data-plane scheduling path. On (default): typed simulator
  /// delivery events + batched fan-out (allocation-free per hop). Off: the
  /// seed's std::function-per-hop reference, kept observationally
  /// bit-identical for differential tests and bench_dataplane. Must be
  /// called before any traffic is scheduled (right after construction).
  void set_data_plane_fast_path(bool on) { transport_->set_fast_path(on); }
  [[nodiscard]] bool data_plane_fast_path() const {
    return transport_->fast_path();
  }

  /// Splits the data plane over `shards` worker threads (DESIGN.md §11):
  /// regions are placed by the current shard placement strategy (topology
  /// clustering by default), clients follow their home region, and the
  /// simulator synchronizes on conservative windows derived from the
  /// cross-shard lookahead matrix (rescaled under an installed FaultPlan's
  /// delay rules before every drain). Observables stay bit-identical to the
  /// single-threaded fast path for every shard count, placement and window
  /// policy. Requires the fast path and shards <= regions; call before
  /// deploy()/traffic, like set_data_plane_fast_path. `shards == 1` is the
  /// single-threaded plane.
  void set_shards(std::uint32_t shards);
  [[nodiscard]] std::uint32_t shards() const { return shards_; }

  /// Region-to-shard placement for set_shards. Default kTopology: cluster
  /// nearby regions onto one shard (DESIGN.md §14), maximizing the minimum
  /// cross-shard latency and with it every window. kRoundRobin is the PR 5
  /// reference recipe. Call before set_shards; placement never changes
  /// observables, only window structure and wall-clock.
  void set_shard_placement(net::ShardPlacement placement);
  [[nodiscard]] net::ShardPlacement shard_placement() const {
    return placement_;
  }

  /// Window policy for the sharded plane. Default kAdaptive: windows widen
  /// past the fixed stride whenever the busy-shard horizon allows
  /// (DESIGN.md §14). kFixed is the PR 5 pacing. Call before set_shards;
  /// the policy never changes observables.
  void set_window_policy(net::WindowPolicy policy);
  [[nodiscard]] net::WindowPolicy window_policy() const {
    return window_policy_;
  }

  /// Switches the subscriber side to the cohort-compressed plane
  /// (DESIGN.md §12): identical subscribers fold into weighted cohorts, the
  /// per-client Subscriber endpoints leave the wire, and one weighted
  /// message per flock replaces one per member. With `row_bucket_ms == 0`
  /// (the default) only bit-identical latency rows merge, and observables
  /// (delivery times, costs, weighted counters) stay bit-identical to the
  /// per-client plane. A positive bucket quantizes rows to
  /// floor(latency / bucket) * bucket before interning, so near-identical
  /// clients fold too — more compression, at the price of delivery times
  /// moving by up to one bucket. Requires the fast path; call once, before
  /// deploy()/traffic and before set_shards (the flock universe must exist
  /// to be sharded). Disabling after enabling is not supported.
  void set_cohorts(bool on, Millis row_bucket_ms = 0.0);
  [[nodiscard]] bool cohorts() const { return pool_ != nullptr; }
  /// The cohort pool when cohorts are on, nullptr otherwise.
  [[nodiscard]] client::CohortPool* cohort_pool() { return pool_.get(); }
  [[nodiscard]] const client::CohortPool* cohort_pool() const {
    return pool_.get();
  }
  [[nodiscard]] const client::ClientRegistry* client_registry() const {
    return registry_.get();
  }

  /// Same as control_round but does NOT drain the simulator: the
  /// kConfigUpdate traffic is merely scheduled. This is the form a
  /// ControlLoop calls from inside a simulator event, where draining would
  /// swallow all future traffic.
  std::vector<broker::Controller::Decision> reconfigure_now(
      const core::OptimizerOptions& options = {});

  /// How publication instants are spaced within an interval.
  enum class Arrivals {
    kFixedRate,  ///< exact 1/rate spacing with a random phase (default)
    kPoisson,    ///< exponential inter-arrival times with mean 1/rate
  };

  /// Schedules `seconds` of publication traffic starting `start_offset_ms`
  /// after the current simulator time, without running the simulator.
  /// Under kPoisson the per-publisher message count is whatever the process
  /// produced (at least 1), matching real bursty publishers.
  void schedule_traffic(Millis start_offset_ms, double seconds,
                        Bytes payload_bytes, double rate_hz, Rng& rng,
                        Arrivals arrivals = Arrivals::kFixedRate);

  /// TopicState with the *actual* published message counts of the last
  /// interval (for exact analytic cross-checks).
  [[nodiscard]] core::TopicState observed_topic_state() const;

  [[nodiscard]] broker::Controller& controller() { return *controller_; }
  [[nodiscard]] net::SimTransport& transport() { return *transport_; }
  [[nodiscard]] net::Simulator& simulator() { return sim_; }
  [[nodiscard]] const net::Simulator& simulator() const { return sim_; }
  [[nodiscard]] const std::vector<std::unique_ptr<client::Subscriber>>&
  subscribers() const {
    return subscribers_;
  }
  [[nodiscard]] const std::vector<std::unique_ptr<client::Publisher>>&
  publishers() const {
    return publishers_;
  }
  [[nodiscard]] broker::RegionManager& region_manager(RegionId region);
  [[nodiscard]] const Scenario& scenario() const { return *scenario_; }

  // ---- Reliable delivery + broker state replication (DESIGN.md §15)

  /// Arms the reliability layer end to end: brokers stamp and retain
  /// publications (sequenced replay), clients detect gaps and re-request,
  /// control traffic becomes fault-exempt on the transport, and every
  /// broker streams its subscription/config state to a standby — the
  /// backbone-nearest peer region (lowest id on ties). Call after
  /// construction, before deploy()/traffic. Off by default: without it,
  /// every observable is bit-identical to the pre-reliable system.
  void set_reliable(bool on);
  [[nodiscard]] bool reliable() const { return reliable_; }

  /// Outage entry point for the chaos/churn paths. Besides the transport's
  /// down flag, in reliable mode a down-transition CRASHES the region's
  /// broker (its in-memory state is lost, and publications no surviving
  /// broker holds are recorded as crash-lost); an up-transition restores
  /// broker state from the standby's replica and reconnects every
  /// subscriber attached to the region (reconnect-and-replay).
  void set_region_down(RegionId region, bool down);

  /// Reliable sync pass: brokers ask peers to replay missed forwards and
  /// heartbeat their standby; then subscribers re-request replay from their
  /// expected next sequence. run_interval() runs one automatically; chaos
  /// rounds call it again after healing faults.
  void sync_reliable();

  /// Publications of `topic` that died with a crashing broker before
  /// reaching any surviving one — unrepairable by replay, so exempt from
  /// the zero-loss oracle (cumulative since construction).
  [[nodiscard]] std::uint64_t crash_lost(TopicId topic) const;

 private:
  /// Drains the simulator, refreshing the sharded window width first (an
  /// active FaultPlan may have gained or lost delay rules since last time).
  void drain();

  /// Counts the crashing region's publications that no surviving broker
  /// holds (called before the crash wipes its state).
  void record_crash_losses(RegionId region);

  const Scenario* scenario_;
  net::Simulator sim_;
  std::unique_ptr<net::SimTransport> transport_;
  // Cohort plane (null in per-client mode). Declared after the transport:
  // the pool unhooks its handlers and directory on destruction.
  std::unique_ptr<Arena> arena_;
  std::unique_ptr<client::TopicSetPool> topic_sets_;
  std::unique_ptr<client::ClientRegistry> registry_;
  std::unique_ptr<client::CohortPool> pool_;
  std::vector<std::unique_ptr<broker::RegionManager>> managers_;
  std::unique_ptr<broker::Controller> controller_;
  std::vector<std::unique_ptr<client::Publisher>> publishers_;
  std::vector<std::unique_ptr<client::Subscriber>> subscribers_;
  Dollars billed_so_far_ = 0.0;
  std::vector<std::uint64_t> last_interval_counts_;  // per publisher index
  Bytes last_payload_bytes_ = 0;
  bool incremental_ = true;
  std::uint32_t shards_ = 1;
  net::ShardPlacement placement_ = net::ShardPlacement::kTopology;
  net::WindowPolicy window_policy_ = net::WindowPolicy::kAdaptive;
  Millis base_lookahead_ = kUnreachable;  // min cross-shard latency, unscaled
  /// Unscaled cross-shard lookahead matrix of the current map (K*K,
  /// row-major); rescaled alongside base_lookahead_ before every drain.
  std::vector<Millis> base_lookaheads_;
  bool reliable_ = false;
  /// Cumulative crash-lost publication counts by topic value.
  std::map<std::int32_t, std::uint64_t> crash_lost_;
};

}  // namespace multipub::sim
