// Multi-topic live execution.
//
// The controller optimizes topics independently (paper §IV-C); this runner
// hosts any number of topics — each with its own publishers, subscribers,
// constraint and traffic profile — on ONE shared broker fabric, and lets
// the controller reconfigure them all in a single round. Per-topic costs
// come from the transport's topic attribution.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "broker/controller.h"
#include "broker/region_manager.h"
#include "client/publisher.h"
#include "client/subscriber.h"
#include "net/simulator.h"
#include "net/transport.h"
#include "sim/scenario.h"

namespace multipub::sim {

/// One topic's workload inside a multi-topic scenario.
struct TopicSpec {
  std::vector<PlacementSpec> placements;
  WorkloadSpec workload;
};

/// Shared world + per-topic states over a common client id space.
struct MultiTopicScenario {
  geo::RegionCatalog catalog;
  geo::InterRegionLatency backbone;
  geo::ClientPopulation population;
  std::vector<core::TopicState> topics;
  std::vector<WorkloadSpec> workloads;  // parallel to topics
};

/// Builds a scenario with one TopicState per spec; client ids are dense
/// across all topics (clients are not shared between topics).
[[nodiscard]] MultiTopicScenario make_multi_topic_scenario(
    const std::vector<TopicSpec>& specs, Rng& rng,
    const geo::KingSynthParams& synth = {});

/// Per-topic measurements of one interval.
struct TopicRunResult {
  TopicId topic;
  Millis percentile = 0.0;
  Dollars interval_cost = 0.0;  ///< attributed via SimTransport::topic_cost
  std::uint64_t publications = 0;
  std::uint64_t deliveries = 0;
};

class MultiLiveSystem {
 public:
  explicit MultiLiveSystem(const MultiTopicScenario& scenario);

  /// Bootstraps one topic's configuration everywhere.
  void deploy(TopicId topic, const core::TopicConfig& config);
  /// Bootstraps every topic with the same configuration.
  void deploy_all(const core::TopicConfig& config);

  /// Runs one interval of traffic for every topic (each at its own rate and
  /// payload size) and reports per-topic measurements.
  [[nodiscard]] std::vector<TopicRunResult> run_interval(double seconds,
                                                         Rng& rng);

  /// Full control round (reports -> optimize -> deploy -> settle).
  std::vector<broker::Controller::Decision> control_round(
      const core::OptimizerOptions& options = {});

  /// Incremental (default) vs full-snapshot control plane — see
  /// LiveSystem::set_incremental.
  void set_incremental(bool incremental) { incremental_ = incremental; }
  [[nodiscard]] bool incremental() const { return incremental_; }

  [[nodiscard]] broker::Controller& controller() { return *controller_; }
  [[nodiscard]] net::SimTransport& transport() { return *transport_; }
  [[nodiscard]] net::Simulator& simulator() { return sim_; }

  /// Subscribers of one topic (borrowed).
  [[nodiscard]] const std::vector<client::Subscriber*>& subscribers(
      TopicId topic) const;

 private:
  const MultiTopicScenario* scenario_;
  net::Simulator sim_;
  std::unique_ptr<net::SimTransport> transport_;
  std::vector<std::unique_ptr<broker::RegionManager>> managers_;
  std::unique_ptr<broker::Controller> controller_;
  std::vector<std::unique_ptr<client::Publisher>> publishers_;
  std::vector<std::unique_ptr<client::Subscriber>> subscribers_;
  std::unordered_map<TopicId, std::vector<client::Publisher*>> topic_pubs_;
  std::unordered_map<TopicId, std::vector<client::Subscriber*>> topic_subs_;
  std::unordered_map<TopicId, Dollars> billed_so_far_;
  bool incremental_ = true;
};

}  // namespace multipub::sim
