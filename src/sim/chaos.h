// Deterministic chaos harness (DESIGN.md §10).
//
// ChaosRunner drives a LiveSystem through a sequence of control rounds
// while a FaultSchedule injects region outages, asymmetric partitions,
// latency inflation and probabilistic message loss through the transport's
// FaultPlan. Everything — fault placement, coin flips, traffic phases — is
// derived from one seed, so a run is bit-reproducible: same seed, same
// schedule, same oracle report.
//
// After every round an invariant oracle suite checks system-wide
// properties (cost-ledger conservation, dead-region silence and exclusion,
// counter consistency, controller convergence, constraint conformance).
// On a violation the runner shrinks the schedule — prefix truncation, then
// greedy event removal, re-executing a fresh system each probe — and the
// report renders a minimal reproducing schedule that can be pasted into a
// regression test via testutil::chaos_schedule().
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/config.h"
#include "geo/region_set.h"
#include "net/shard_placement.h"
#include "net/simulator.h"
#include "sim/fault_schedule.h"
#include "sim/scenario.h"

namespace multipub::sim {

/// Knobs for one chaos campaign.
struct ChaosOptions {
  int rounds = 12;              ///< control rounds per execution
  int fault_events = 4;         ///< generated schedule size (run() only)
  double interval_seconds = 10.0;
  Bytes payload_bytes = 1024;
  double rate_hz = 1.0;
  /// k: consecutive fault-free rounds before the convergence and
  /// conformance oracles arm (clients need time to migrate back).
  int convergence_rounds = 2;
  bool incremental = true;      ///< control-plane pipeline under test
  bool fast_path = true;        ///< data-plane scheduling path under test
  /// Data-plane shard (worker-thread) count under test. Observables — and
  /// therefore the whole report — must be identical for every value; >1
  /// requires fast_path and shards <= regions.
  std::uint32_t shards = 1;
  /// Region-to-shard placement strategy for shards > 1 (DESIGN.md §14).
  /// Neither placement nor window policy may change the report by a byte.
  net::ShardPlacement placement = net::ShardPlacement::kTopology;
  /// Window sizing policy for the sharded plane (DESIGN.md §14).
  net::WindowPolicy window_policy = net::WindowPolicy::kAdaptive;
  /// Runs the subscriber side on the cohort-compressed plane (DESIGN.md
  /// §12). Requires fast_path. With schedules free of probabilistic drop
  /// rules the report is byte-identical to the per-client plane; drop rules
  /// are replayed per member for deliveries but a partially dropped
  /// kConfigUpdate re-homes the whole flock, so drop schedules may diverge
  /// in reconnect counts (never in oracle soundness).
  bool cohorts = false;
  /// Arms the reliability layer (DESIGN.md §15): sequenced replay,
  /// reconnect-and-replay on outage healing, Clone-pattern broker state
  /// replication — and with it the three reliable oracles
  /// (zero-message-loss, no-duplicate, bounded-replication-lag). Outage
  /// transitions additionally crash/restore brokers through
  /// LiveSystem::set_region_down. Off by default: the report stays
  /// byte-identical to the pre-reliable harness.
  bool reliable = false;
  /// Negative-path demo (requires reliable): brokers refuse to serve
  /// kReplayRequest, so any dropped delivery stays lost and the
  /// zero-message-loss oracle must catch it with a minimal schedule.
  bool break_replay = false;
  /// Negative-path demo (requires reliable): clients record duplicates
  /// instead of absorbing them, so the first replayed overlap trips the
  /// no-duplicate oracle.
  bool break_dedup = false;
  /// Negative-path demo (requires reliable): brokers stop streaming state
  /// deltas/snapshots to their standby, so the bounded-replication-lag
  /// oracle must catch the stale replica.
  bool break_state_sync = false;
  /// Negative-path demo: disables the controller's outage exclusion so it
  /// keeps routing topics through dead regions. The dead-region-exclusion
  /// oracle must catch this with a minimal schedule.
  bool break_outage_exclusion = false;
  /// Negative-path demo: the runner skips every control round, so the
  /// deployment can never converge back to the analytic optimum.
  bool freeze_control_plane = false;
  bool shrink_on_failure = true;
  int max_shrink_runs = 64;     ///< probe budget for the greedy pass
};

/// One oracle failure.
struct OracleViolation {
  std::string oracle;  ///< stable name, e.g. "dead-region-exclusion"
  int round = -1;
  std::string detail;
};

/// Everything the oracle suite looks at after one round. The runner fills
/// this from the live system; negative unit tests hand-craft instances.
struct RoundObservation {
  int round = 0;
  bool fault_active = false;  ///< any schedule event covered this round
  int clean_streak = 0;       ///< consecutive fault-free rounds, incl. this

  // Counter books (cumulative transport counters, post-drain).
  std::size_t pending_events = 0;
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t dropped_sender_down = 0;

  // Cost books.
  Dollars ledger_total = 0.0;  ///< CostLedger::total_cost
  Dollars topic_total = 0.0;   ///< SimTransport::topic_cost_total

  /// Per-region activity DELTAS over the round for regions that were down
  /// for the whole round. A dead region must be silent on every axis.
  struct DownRegionActivity {
    RegionId region;
    std::uint64_t broker_delta = 0;  ///< delivered+forwarded+drain deltas
    Bytes egress_delta = 0;          ///< inter-region + internet bytes
  };
  std::vector<DownRegionActivity> down_regions;

  // Deployment state after the round's control round.
  geo::RegionSet down_set;   ///< regions down when the controller decided
  geo::RegionSet universe;   ///< all catalog regions
  bool have_deployed = false;
  core::TopicConfig deployed;

  // Convergence: analytic re-optimization of the controller's aggregate.
  bool check_convergence = false;
  core::TopicConfig analytic;

  // Conformance: measured percentile vs the topic's bound, checked when the
  // serving configuration claimed the constraint was met.
  bool check_conformance = false;
  Millis measured_percentile = 0.0;
  Millis max_t = kUnreachable;

  // ---- Reliable-delivery books (armed only under ChaosOptions::reliable).

  /// Arms the no-duplicate oracle (checked every round).
  bool reliable = false;
  /// Duplicate publications the dedup layer let through to an application
  /// (weighted on the cohort plane). Must be zero: replay and handover
  /// overlap may re-send, but the (topic, publisher, seq) identity filter
  /// must absorb every copy.
  std::uint64_t recorded_duplicates = 0;

  /// Zero-message-loss, checked on clean rounds (the sync pass has run
  /// fault-free): every match-all audience member holds every publication
  /// except the provably unrepairable.
  bool check_zero_loss = false;
  std::uint64_t published = 0;      ///< cumulative topic publications
  std::uint64_t publish_drops = 0;  ///< kPublish copies lost in flight
                                    ///< (weighted; never reached a broker)
  std::uint64_t crash_lost = 0;     ///< died inside a crashed broker before
                                    ///< reaching any surviving one
  /// Smallest unique-publication count over the match-all audience
  /// (Subscriber::unique_count / CohortPool::flock_complete_count).
  std::uint64_t min_unique = 0;
  bool have_audience = false;  ///< min_unique is meaningful

  /// Bounded-replication-lag, checked on clean rounds after the heartbeat
  /// sync: each standby's applied delta sequence must equal its primary's.
  struct ReplicationLag {
    RegionId primary;
    std::uint64_t state_seq = 0;    ///< primary's delta sequence
    std::uint64_t applied_seq = 0;  ///< standby replica's applied sequence
  };
  bool check_replication = false;
  std::vector<ReplicationLag> replication;
};

/// Runs every oracle over one observation; returns the violations (empty =
/// all invariants hold). Pure — exposed so each oracle gets direct positive
/// and negative unit tests.
[[nodiscard]] std::vector<OracleViolation> check_invariants(
    const RoundObservation& obs);

/// Outcome of one chaos campaign.
struct ChaosReport {
  std::uint64_t seed = 0;
  int rounds = 0;
  FaultSchedule schedule;  ///< what actually ran
  std::vector<OracleViolation> violations;
  [[nodiscard]] bool passed() const { return violations.empty(); }

  /// Shrunk repro (only on failure with shrink_on_failure): the smallest
  /// event subset that still trips `minimal_oracle` within minimal_rounds.
  FaultSchedule minimal_schedule;
  int minimal_rounds = 0;
  std::string minimal_oracle;

  // Campaign totals (first, unshrunk execution).
  std::uint64_t publications = 0;
  std::uint64_t deliveries = 0;
  Dollars total_cost = 0.0;

  /// Deterministic human-readable report. On failure it ends with the
  /// minimal schedule in fault-schedule syntax, pasteable into
  /// testutil::chaos_schedule().
  [[nodiscard]] std::string render() const;
};

/// Draws a randomized-but-valid schedule: outages biased to the scenario's
/// home regions (where they hurt), at most one region down per round,
/// windows clamped to leave `options.convergence_rounds + 1` clean tail
/// rounds. Deterministic in `rng`.
[[nodiscard]] FaultSchedule generate_schedule(const Scenario& scenario,
                                              const ChaosOptions& options,
                                              Rng& rng);

class ChaosRunner {
 public:
  /// Borrows the scenario; it must outlive the runner.
  ChaosRunner(const Scenario& scenario, const ChaosOptions& options);

  /// Runs the scenario's own fault schedule if it has one, otherwise a
  /// generated one. Everything derives from `seed`.
  [[nodiscard]] ChaosReport run(std::uint64_t seed);

  /// Runs an explicit schedule (regression-test entry point).
  [[nodiscard]] ChaosReport run_schedule(const FaultSchedule& schedule,
                                         std::uint64_t seed);

 private:
  struct Execution {
    std::vector<OracleViolation> violations;
    std::uint64_t publications = 0;
    std::uint64_t deliveries = 0;
    Dollars total_cost = 0.0;
  };
  /// One full system life: fresh LiveSystem, `rounds` rounds, oracles each
  /// round. stop_at_first makes shrink probes cheap.
  Execution execute(const FaultSchedule& schedule, std::uint64_t seed,
                    int rounds, bool stop_at_first);
  void shrink(ChaosReport& report, std::uint64_t seed);

  const Scenario* scenario_;
  ChaosOptions options_;
};

}  // namespace multipub::sim
