#include "sim/control_loop.h"

#include "common/assert.h"

namespace multipub::sim {

ControlLoop::ControlLoop(LiveSystem& system, Millis period_ms,
                         core::OptimizerOptions options)
    : system_(&system), period_ms_(period_ms), options_(options) {
  MP_EXPECTS(period_ms > 0.0);
}

void ControlLoop::schedule_rounds(std::size_t count) {
  if (count == 0) return;
  system_->simulator().schedule_after(period_ms_,
                                      [this, count] { fire(count); });
}

void ControlLoop::fire(std::size_t remaining) {
  RoundRecord record;
  record.at = system_->simulator().now();
  record.decisions = system_->reconfigure_now(options_);
  record.stats = system_->controller().last_round_stats();
  history_.push_back(std::move(record));

  if (remaining > 1) {
    system_->simulator().schedule_after(
        period_ms_, [this, remaining] { fire(remaining - 1); });
  }
}

std::size_t ControlLoop::total_evaluated() const {
  std::size_t n = 0;
  for (const auto& record : history_) {
    n += record.stats.evaluated;
  }
  return n;
}

std::size_t ControlLoop::rounds_with_changes() const {
  std::size_t n = 0;
  for (const auto& record : history_) {
    for (const auto& decision : record.decisions) {
      if (decision.changed) {
        ++n;
        break;
      }
    }
  }
  return n;
}

}  // namespace multipub::sim
