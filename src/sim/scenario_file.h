// Scenario files: declarative workload descriptions for the simulation
// package.
//
// A plain-text, line-oriented format (comments with '#'):
//
//   # one client group per placement line: region, publishers, subscribers
//   placement us-east-1 10 10
//   placement ap-northeast-1 5 20
//   rate 1.0          # publications per publisher per second
//   size 1024         # payload bytes
//   interval 60       # observation interval seconds
//   ratio 75          # delivery guarantee percentile
//   max_t 150         # delivery bound ms ("inf" for unconstrained)
//   seed 2017         # synthetic-population RNG seed
//
//   # optional scheduled faults (rounds are control rounds, see
//   # sim/fault_schedule.h for the grammar and endpoint syntax):
//   fault outage ap-northeast-1 4 3
//   fault partition us-east-1 ap-northeast-1 2 2
//   fault delay region:* region:* 1 5 2.0 25
//   fault drop us-east-1 client:* 3 1 0.25
//
// Unknown keys, malformed numbers and unknown regions are reported with
// line numbers; parsing never throws.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "sim/scenario.h"

namespace multipub::sim {

/// Parsed scenario description (world-independent; regions are named).
struct ScenarioSpec {
  struct Placement {
    std::string region;
    std::size_t publishers = 0;
    std::size_t subscribers = 0;
  };
  std::vector<Placement> placements;
  WorkloadSpec workload;
  FaultSchedule faults;
  std::uint64_t seed = 2017;
};

/// Parses the file format above. On failure returns nullopt and writes a
/// line-numbered message to `error`.
[[nodiscard]] std::optional<ScenarioSpec> parse_scenario_spec(
    std::string_view content, std::string* error);

/// Materializes a Scenario over `catalog`/`backbone` (region names resolved
/// against the catalog). On failure returns nullopt and explains in
/// `error`.
[[nodiscard]] std::optional<Scenario> build_scenario(
    const ScenarioSpec& spec, const geo::RegionCatalog& catalog,
    const geo::InterRegionLatency& backbone, std::string* error);

}  // namespace multipub::sim
