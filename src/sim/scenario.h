// Experiment scenarios.
//
// A Scenario bundles everything one evaluation needs: the region catalog,
// the backbone latency matrix, a synthesized client population, and the
// observed TopicState of one collection interval. The three builders mirror
// the paper's Experiments 1-3 workloads; make_scenario() is the generic
// entry point used by examples and tests.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/optimizer.h"
#include "core/topic_state.h"
#include "geo/king_synth.h"
#include "geo/latency.h"
#include "geo/region.h"
#include "sim/fault_schedule.h"

namespace multipub::sim {

/// Placement request: `publishers` / `subscribers` clients homed at `region`.
struct PlacementSpec {
  RegionId region;
  std::size_t publishers = 0;
  std::size_t subscribers = 0;
};

/// Workload knobs shared by all scenario builders.
struct WorkloadSpec {
  /// Average publications per publisher per second (paper: 1).
  double publish_rate_hz = 1.0;
  /// Size of each publication in bytes (paper: 1 KByte).
  Bytes message_bytes = 1024;
  /// Length of the observation interval in seconds.
  double interval_seconds = 60.0;
  /// Delivery guarantee ratio (percentile).
  double ratio = 75.0;
  /// Delivery bound; sweeps overwrite it per point.
  Millis max_t = kUnreachable;
  /// Clones every synthesized subscriber position this many times. The
  /// clones are real, distinct clients sharing one exact latency row and
  /// home region — the shape the cohort plane (DESIGN.md §12) folds into
  /// weight-N cohorts while the per-client plane runs N endpoints, which is
  /// what the cohort differential tests sweep. 1 = no replication.
  std::size_t subscriber_replication = 1;
};

/// A fully materialized single-topic evaluation problem.
struct Scenario {
  geo::RegionCatalog catalog;
  geo::InterRegionLatency backbone;
  geo::ClientPopulation population;
  core::TopicState topic;
  double interval_seconds = 60.0;
  /// Optional scheduled faults (scenario-file 'fault' stanzas); consumed by
  /// the chaos runner, ignored by the plain control loop.
  FaultSchedule faults;

  /// Optimizer wired to this scenario's matrices. The returned object
  /// borrows the scenario; keep the scenario alive while using it.
  [[nodiscard]] core::Optimizer make_optimizer() const {
    return core::Optimizer(catalog, backbone, population.latencies);
  }
};

/// Builds a scenario over the EC2-2016 catalog from explicit placements.
[[nodiscard]] Scenario make_scenario(const std::vector<PlacementSpec>& placements,
                                     const WorkloadSpec& workload, Rng& rng,
                                     const geo::KingSynthParams& synth = {});

/// Experiment 1: 10 publishers and 10 subscribers close to each of the ten
/// regions, 1 msg/s, 1 KB, ratio 75 %.
[[nodiscard]] Scenario make_experiment1_scenario(Rng& rng);

/// Experiment 2: 100 publishers spread over the four Asia-Pacific regions,
/// 25 subscribers near Tokyo and 25 near N. Virginia, ratio 75 %.
[[nodiscard]] Scenario make_experiment2_scenario(Rng& rng);

/// Experiment 3: 100 publishers and 100 subscribers all closest to `home`
/// (the paper runs Tokyo and Sao Paulo), ratio 95 %.
[[nodiscard]] Scenario make_experiment3_scenario(RegionId home, Rng& rng);

/// Messages one publisher emits during the interval (rate * seconds,
/// rounded, at least 1).
[[nodiscard]] std::uint64_t messages_per_interval(const WorkloadSpec& workload);

}  // namespace multipub::sim
