#include "sim/metrics_snapshot.h"

namespace multipub::sim {

MetricsRegistry collect_metrics(LiveSystem& live) {
  MetricsRegistry out;
  const Scenario& scenario = live.scenario();
  net::SimTransport& transport = live.transport();

  out.set("transport.messages_sent",
          static_cast<double>(transport.sent_count()));
  out.set("transport.messages_dropped",
          static_cast<double>(transport.dropped_count()));
  // Silent drops: deliveries that reached an address nobody registered a
  // handler for (misrouted or stale traffic). Down-region drops at least
  // show up in region.<name>.down; these would otherwise be invisible.
  out.set("transport.dropped_unregistered",
          static_cast<double>(transport.dropped_unregistered_count()));
  out.set("transport.messages_delivered",
          static_cast<double>(transport.delivered_count()));
  // Drop taxonomy: sends suppressed at a dead sender (never left), messages
  // discarded on arrival at a region that died mid-flight, and losses
  // injected by an installed FaultPlan (partitions + probabilistic drop).
  out.set("transport.dropped_sender_down",
          static_cast<double>(transport.dropped_sender_down_count()));
  out.set("transport.dropped_dead_arrival",
          static_cast<double>(transport.dropped_dead_arrival_count()));
  out.set("transport.dropped_faulted",
          static_cast<double>(transport.dropped_faulted_count()));
  out.set("transport.cost_usd",
          transport.ledger().total_cost(scenario.catalog));

  for (const auto& region : scenario.catalog.all()) {
    const std::string prefix = "region." + region.name + ".";
    out.set(prefix + "inter_region_bytes",
            static_cast<double>(
                transport.ledger().inter_region_bytes[region.id.index()]));
    out.set(prefix + "internet_bytes",
            static_cast<double>(
                transport.ledger().internet_bytes[region.id.index()]));
    auto& manager = live.region_manager(region.id);
    out.set(prefix + "delivered",
            static_cast<double>(manager.broker().delivered_count()));
    out.set(prefix + "forwarded",
            static_cast<double>(manager.broker().forwarded_count()));
    out.set(prefix + "drain_forwarded",
            static_cast<double>(manager.broker().drain_forwarded_count()));
    out.set(prefix + "filtered",
            static_cast<double>(manager.broker().filtered_count()));
    out.set(prefix + "servers",
            static_cast<double>(manager.provisioned_servers()));
    out.set(prefix + "down", transport.region_down(region.id) ? 1.0 : 0.0);
  }

  double reconnects = 0.0, duplicates = 0.0, deliveries = 0.0;
  if (const client::CohortPool* pool = live.cohort_pool()) {
    // Weighted cohort counters are exactly what the per-client loop below
    // would have summed (DESIGN.md §12).
    reconnects = static_cast<double>(pool->reconnect_weight());
    duplicates = static_cast<double>(pool->duplicate_weight());
    deliveries = static_cast<double>(pool->interval_delivery_weight());
  } else {
    for (const auto& sub : live.subscribers()) {
      reconnects += static_cast<double>(sub->reconnect_count());
      duplicates += static_cast<double>(sub->duplicate_count());
      deliveries += static_cast<double>(sub->deliveries().size());
    }
  }
  out.set("clients.reconnects", reconnects);
  out.set("clients.duplicates", duplicates);
  out.set("clients.deliveries", deliveries);

  out.set("controller.latency_observations",
          static_cast<double>(
              live.controller().latency_estimator().observations()));

  const broker::Controller::RoundStats& stats =
      live.controller().last_round_stats();
  out.set("controller.rounds", static_cast<double>(stats.round));
  out.set("controller.topics_tracked", static_cast<double>(stats.tracked));
  out.set("controller.dirty_last_round", static_cast<double>(stats.dirty));
  out.set("controller.evaluated_last_round",
          static_cast<double>(stats.evaluated));
  out.set("controller.skipped_clean_last_round",
          static_cast<double>(stats.skipped_clean));
  return out;

}

MetricsRegistry collect_window_metrics(const LiveSystem& live) {
  MetricsRegistry out;
  const net::WindowStats stats = live.simulator().window_stats();
  out.set("dataplane.windows_executed", static_cast<double>(stats.windows));
  out.set("dataplane.window_width_mean_ms", stats.width_mean());
  out.set("dataplane.window_width_max_ms", stats.width_max);
  out.set("dataplane.events_per_window", stats.events_per_window());
  out.set("dataplane.mail_items", static_cast<double>(stats.mail_items));
  out.set("dataplane.barrier_spins",
          static_cast<double>(stats.barrier_spins));
  out.set("dataplane.barrier_parks",
          static_cast<double>(stats.barrier_parks));
  return out;
}

}  // namespace multipub::sim
