// Periodic controller rounds inside the simulation.
//
// The paper's controller "continuously recomputes an optimal configuration"
// from data "collected throughout a collection interval" (§III-A3/A4).
// ControlLoop schedules that cadence as simulator events: every period it
// drains the region managers' reports, re-optimizes, and deploys changed
// configurations — while publication traffic keeps flowing around it. This
// is the faithful in-band version of LiveSystem::control_round (which is a
// test convenience that stops the world).
#pragma once

#include <vector>

#include "sim/live_runner.h"

namespace multipub::sim {

class ControlLoop {
 public:
  /// One executed controller round.
  struct RoundRecord {
    Millis at = 0.0;  ///< virtual time the round fired
    std::vector<broker::Controller::Decision> decisions;
    /// The controller's incremental accounting for this round (how many
    /// topics were dirty / optimized / carried forward).
    broker::Controller::RoundStats stats;
  };

  /// Borrows the live system; it must outlive the loop.
  ControlLoop(LiveSystem& system, Millis period_ms,
              core::OptimizerOptions options = {});

  /// Schedules `count` rounds, the first one period from the current
  /// simulator time. (Bounded so the event queue can drain; schedule more
  /// rounds for longer runs.)
  void schedule_rounds(std::size_t count);

  [[nodiscard]] const std::vector<RoundRecord>& history() const {
    return history_;
  }
  [[nodiscard]] std::size_t rounds_executed() const { return history_.size(); }

  /// Number of rounds whose decisions changed at least one topic.
  [[nodiscard]] std::size_t rounds_with_changes() const;

  /// Total optimizer invocations across all executed rounds (with the
  /// incremental pipeline this is proportional to churn, not to rounds x
  /// topics).
  [[nodiscard]] std::size_t total_evaluated() const;

 private:
  void fire(std::size_t remaining);

  LiveSystem* system_;
  Millis period_ms_;
  core::OptimizerOptions options_;
  std::vector<RoundRecord> history_;
};

}  // namespace multipub::sim
