// Interval-trace recording and replay.
//
// Records the controller's inputs — every region's per-interval topic
// reports — in a line-oriented text format, so production behaviour can be
// replayed offline: against different constraints, a different tie-break, a
// pruned candidate set, or the heuristic optimizer ("what would MultiPub
// have done if...").
//
// Format (one record per line):
//   interval
//   report <region-id> <topic-id>
//   pub <client-id> <msg-count> <total-bytes>
//   sub <client-id>
// `report` opens a topic report inside the current interval; `pub`/`sub`
// rows belong to the most recent `report`. `interval` closes the previous
// interval and opens the next.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "broker/controller.h"

namespace multipub::sim {

/// One region's reports within one interval.
struct TraceIngest {
  RegionId region;
  std::vector<broker::TopicReport> reports;
};

/// Everything the controller was told during one interval.
struct IntervalTrace {
  std::vector<TraceIngest> ingests;
};

/// Collects ingests as they happen; serialize() renders the full history.
class TraceRecorder {
 public:
  /// Records one region's reports for the current interval.
  void record(RegionId region, const std::vector<broker::TopicReport>& reports);

  /// Closes the current interval (a new one opens on the next record()).
  void end_interval();

  [[nodiscard]] const std::vector<IntervalTrace>& intervals() const {
    return intervals_;
  }

  /// Text form of the complete trace (see format above).
  [[nodiscard]] std::string serialize() const;

 private:
  std::vector<IntervalTrace> intervals_;
  bool open_ = false;
};

/// Parses a serialized trace; nullopt + line-numbered `error` on failure.
[[nodiscard]] std::optional<std::vector<IntervalTrace>> parse_trace(
    std::string_view text, std::string* error);

/// Replays a trace into a controller: for each interval, ingests every
/// recorded report and runs one reconfigure round. Returns each round's
/// decisions. The controller keeps its own constraints/options — that is
/// the point: replay the same inputs under different policies.
std::vector<std::vector<broker::Controller::Decision>> replay_trace(
    const std::vector<IntervalTrace>& trace, broker::Controller& controller,
    const core::OptimizerOptions& options = {});

}  // namespace multipub::sim
