// Baseline deployment strategies (paper §II-B1/B2).
//
// Experiment 1 compares MultiPub against:
//   - "One Region": a single statically chosen region — the cheapest one,
//     ties broken towards lower delivery percentile;
//   - "All Regions": every region serves the topic, with either direct or
//     routed delivery (the paper's figure uses routed).
#pragma once

#include "core/optimizer.h"
#include "sim/scenario.h"

namespace multipub::sim {

/// Evaluates the best single-region deployment: cheapest cost, ties broken
/// by lower percentile (the region "that minimizes costs", paper §V-C).
[[nodiscard]] core::ConfigEvaluation one_region_baseline(
    const core::Optimizer& optimizer, const core::TopicState& topic);

/// Evaluates the all-regions deployment under the given mode.
[[nodiscard]] core::ConfigEvaluation all_regions_baseline(
    const core::Optimizer& optimizer, const core::TopicState& topic,
    core::DeliveryMode mode, std::size_t n_regions);

}  // namespace multipub::sim
