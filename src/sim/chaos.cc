#include "sim/chaos.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/assert.h"
#include "net/fault_plan.h"
#include "sim/live_runner.h"

namespace multipub::sim {
namespace {

/// Ledger total vs per-topic billing differ only in summation order.
constexpr double kCostEps = 1e-9;
/// Measured percentiles are exact under zero jitter; this absorbs FP noise.
constexpr Millis kLatencyEps = 1e-6;

net::FaultEndpoint resolve_endpoint(const FaultEndpointSpec& spec,
                                    const geo::RegionCatalog& catalog) {
  using Kind = FaultEndpointSpec::Kind;
  switch (spec.kind) {
    case Kind::kAny:
      return net::FaultEndpoint::any();
    case Kind::kAnyRegion:
      return net::FaultEndpoint::any_region();
    case Kind::kAnyClient:
      return net::FaultEndpoint::any_client();
    case Kind::kClient:
      return net::FaultEndpoint::client(ClientId{spec.client});
    case Kind::kRegion: {
      const RegionId region = catalog.find(spec.region);
      MP_EXPECTS(region.valid());  // names were validated against the catalog
      return net::FaultEndpoint::region(region);
    }
  }
  return net::FaultEndpoint::any();
}

geo::RegionSet down_regions_in_round(const FaultSchedule& schedule, int round,
                                     const geo::RegionCatalog& catalog) {
  geo::RegionSet down;
  for (const auto& event : schedule) {
    if (event.kind == FaultEvent::Kind::kOutage && event.covers(round)) {
      const RegionId region = catalog.find(event.from.region);
      if (region.valid()) down.add(region);
    }
  }
  return down;
}

bool any_fault_covers(const FaultSchedule& schedule, int round) {
  return std::any_of(
      schedule.begin(), schedule.end(),
      [round](const FaultEvent& event) { return event.covers(round); });
}

std::string format_dollars(Dollars value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  return buf;
}

}  // namespace

std::vector<OracleViolation> check_invariants(const RoundObservation& obs) {
  std::vector<OracleViolation> out;
  const auto violate = [&](const char* oracle, std::string detail) {
    out.push_back({oracle, obs.round, std::move(detail)});
  };

  // (a) Cost-ledger conservation: the per-region byte ledger and the
  // per-topic dollar attribution are written by the same billing branch, so
  // their totals must agree (up to summation order).
  if (std::abs(obs.ledger_total - obs.topic_total) >
      kCostEps * (1.0 + std::abs(obs.ledger_total))) {
    violate("cost-conservation",
            "ledger total " + format_dollars(obs.ledger_total) +
                " != per-topic total " + format_dollars(obs.topic_total));
  }

  // (d) Metric-counter consistency: with a drained queue every message that
  // left a sender was handed to a handler or dropped in flight; sends
  // suppressed at a dead sender never left.
  if (obs.pending_events != 0) {
    violate("counter-conservation",
            std::to_string(obs.pending_events) +
                " events still pending after the round drained");
  }
  const std::uint64_t accounted =
      obs.delivered + obs.dropped - obs.dropped_sender_down;
  if (obs.sent != accounted) {
    violate("counter-conservation",
            "sent " + std::to_string(obs.sent) + " != delivered " +
                std::to_string(obs.delivered) + " + dropped " +
                std::to_string(obs.dropped) + " - sender-down " +
                std::to_string(obs.dropped_sender_down));
  }

  // (b) Dead-region silence: a region that was down for the whole round
  // must neither deliver nor forward nor egress a single byte.
  for (const auto& activity : obs.down_regions) {
    if (activity.broker_delta != 0 || activity.egress_delta != 0) {
      violate("dead-region-silence",
              "down region R" + std::to_string(activity.region.value() + 1) +
                  " moved: broker +" + std::to_string(activity.broker_delta) +
                  ", egress +" + std::to_string(activity.egress_delta) +
                  " bytes");
    }
  }

  // (b') Dead-region exclusion: once the controller has decided with the
  // outage known, no deployed topic may be served from a dead region. When
  // EVERYTHING is down the controller deliberately keeps the last candidate
  // set (there is nothing sane to deploy), so the check stands down.
  if (obs.have_deployed && !obs.down_set.empty() &&
      (obs.universe & geo::RegionSet(~obs.down_set.mask())) !=
          geo::RegionSet()) {
    const geo::RegionSet overlap = obs.deployed.regions & obs.down_set;
    if (!overlap.empty()) {
      violate("dead-region-exclusion",
              "deployed " + obs.deployed.regions.to_string() +
                  " intersects down " + obs.down_set.to_string() + " in " +
                  overlap.to_string());
    }
  }

  // (c) Controller convergence: k clean rounds after fault clearance the
  // deployed configuration must equal the analytic optimum for the actual
  // workload.
  if (obs.check_convergence && obs.have_deployed &&
      !(obs.deployed == obs.analytic)) {
    violate("controller-convergence",
            "deployed " + obs.deployed.to_string() + " != analytic optimum " +
                obs.analytic.to_string());
  }

  // (e) Constraint conformance: when the serving configuration claimed the
  // delivery constraint was met, the measured percentile must honor it.
  if (obs.check_conformance &&
      obs.measured_percentile > obs.max_t + kLatencyEps) {
    violate("constraint-conformance",
            "measured percentile " + std::to_string(obs.measured_percentile) +
                " ms exceeds bound " + std::to_string(obs.max_t) + " ms");
  }

  // (f) No-duplicate (reliable mode, every round): replay and handover
  // overlap legitimately re-send publications, but the identity dedup layer
  // must absorb every extra copy before the application sees it.
  if (obs.reliable && obs.recorded_duplicates != 0) {
    violate("no-duplicate",
            std::to_string(obs.recorded_duplicates) +
                " duplicate publication(s) reached an application");
  }

  // (g) Zero-message-loss (reliable mode, clean rounds): after a fault-free
  // sync pass every match-all audience member must hold every publication,
  // save the two disjoint unrepairable classes — copies dropped before any
  // broker accepted them (publish drops) and publications that died inside
  // a crashed broker before reaching a surviving one. >= rather than ==:
  // a subscriber may legitimately hold a crash-lost publication it received
  // before the crash.
  if (obs.reliable && obs.check_zero_loss && obs.have_audience) {
    const std::uint64_t exempt = obs.publish_drops + obs.crash_lost;
    const std::uint64_t floor =
        obs.published > exempt ? obs.published - exempt : 0;
    if (obs.min_unique < floor) {
      violate("zero-message-loss",
              "audience member holds " + std::to_string(obs.min_unique) +
                  " unique publication(s) < " + std::to_string(floor) +
                  " required (published " + std::to_string(obs.published) +
                  " - publish-drops " + std::to_string(obs.publish_drops) +
                  " - crash-lost " + std::to_string(obs.crash_lost) + ")");
    }
  }

  // (h) Bounded-replication-lag (reliable mode, clean rounds after the
  // heartbeat sync): a standby whose applied delta sequence trails its
  // primary's would hand a stale table to the successor.
  if (obs.reliable && obs.check_replication) {
    for (const auto& lag : obs.replication) {
      if (lag.applied_seq != lag.state_seq) {
        violate("bounded-replication-lag",
                "standby of R" + std::to_string(lag.primary.value() + 1) +
                    " applied seq " + std::to_string(lag.applied_seq) +
                    " != primary state seq " + std::to_string(lag.state_seq));
      }
    }
  }

  return out;
}

FaultSchedule generate_schedule(const Scenario& scenario,
                                const ChaosOptions& options, Rng& rng) {
  const geo::RegionCatalog& catalog = scenario.catalog;

  // Outages aimed at regions nobody uses prove nothing: bias the targets
  // towards the homes of the scenario's client population.
  std::vector<std::string> homes;
  for (const RegionId region : scenario.population.home_region) {
    const std::string& name = catalog.at(region).name;
    if (std::find(homes.begin(), homes.end(), name) == homes.end()) {
      homes.push_back(name);
    }
  }
  MP_EXPECTS(!homes.empty());

  const auto region_spec = [](const std::string& name) {
    FaultEndpointSpec spec;
    spec.kind = FaultEndpointSpec::Kind::kRegion;
    spec.region = name;
    return spec;
  };
  const auto any_region_spec = [] {
    FaultEndpointSpec spec;
    spec.kind = FaultEndpointSpec::Kind::kAnyRegion;
    return spec;
  };
  const auto pick_home = [&] {
    return homes[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(homes.size()) - 1))];
  };

  // Leave a clean tail so the convergence and conformance oracles can arm.
  const int tail = options.convergence_rounds + 1;
  const int last_start = std::max(0, options.rounds - tail - 1);

  FaultSchedule schedule;
  for (int i = 0; i < options.fault_events; ++i) {
    FaultEvent event;
    event.start_round = static_cast<int>(rng.uniform_int(0, last_start));
    const int max_len = std::max(1, options.rounds - tail - event.start_round);
    event.rounds =
        static_cast<int>(rng.uniform_int(1, std::min(2, max_len)));

    const auto overlaps_outage = [&](const FaultEvent& candidate) {
      for (const auto& other : schedule) {
        if (other.kind != FaultEvent::Kind::kOutage) continue;
        for (int r = candidate.start_round;
             r < candidate.start_round + candidate.rounds; ++r) {
          if (other.covers(r)) return true;
        }
      }
      return false;
    };

    switch (rng.uniform_int(0, 9)) {
      case 0:
      case 1:
      case 2:
      case 3:
        event.kind = FaultEvent::Kind::kOutage;
        event.from = region_spec(pick_home());
        // One region down at a time: concurrent outages can black out the
        // whole population and teach us nothing new per event.
        if (overlaps_outage(event)) {
          event.kind = FaultEvent::Kind::kDrop;
          event.to = FaultEndpointSpec{};  // any
          event.drop_probability = rng.uniform(0.1, 0.4);
        }
        break;
      case 4:
      case 5:
      case 6: {
        event.kind = FaultEvent::Kind::kPartition;
        const std::string src = pick_home();
        std::string dst = pick_home();
        if (dst == src) {
          // Fall back to any catalog region that differs.
          for (const auto& region : catalog.all()) {
            if (region.name != src) {
              dst = region.name;
              break;
            }
          }
        }
        event.from = region_spec(src);
        event.to = region_spec(dst);
        break;
      }
      case 7:
      case 8:
        event.kind = FaultEvent::Kind::kDelay;
        event.from = any_region_spec();
        event.to = any_region_spec();
        event.delay_factor = rng.uniform(1.5, 3.0);
        event.delay_extra_ms =
            static_cast<Millis>(rng.uniform_int(0, 40));
        break;
      default:
        event.kind = FaultEvent::Kind::kDrop;
        event.from = region_spec(pick_home());
        event.to = FaultEndpointSpec{};  // any
        event.drop_probability = rng.uniform(0.1, 0.4);
        break;
    }
    schedule.push_back(std::move(event));
  }

  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.start_round < b.start_round;
                   });
  return schedule;
}

ChaosRunner::ChaosRunner(const Scenario& scenario, const ChaosOptions& options)
    : scenario_(&scenario), options_(options) {}

ChaosRunner::Execution ChaosRunner::execute(const FaultSchedule& schedule,
                                            std::uint64_t seed, int rounds,
                                            bool stop_at_first) {
  Execution exec;
  const geo::RegionCatalog& catalog = scenario_->catalog;
  const TopicId topic = scenario_->topic.topic;
  const geo::RegionSet universe = geo::RegionSet::universe(catalog.size());

  // The plan outlives the system (the transport borrows it).
  net::FaultPlan plan(seed ^ 0x9e3779b97f4a7c15ULL);
  LiveSystem live(*scenario_);
  live.set_data_plane_fast_path(options_.fast_path);
  live.set_incremental(options_.incremental);
  live.set_cohorts(options_.cohorts);  // before set_shards: flocks get shards
  live.set_shard_placement(options_.placement);
  live.set_window_policy(options_.window_policy);
  live.set_shards(options_.shards);
  live.transport().set_fault_plan(&plan);
  if (options_.break_outage_exclusion) {
    live.controller().set_outage_exclusion_enabled(false);
  }
  if (options_.reliable) {
    live.set_reliable(true);
    for (const auto& region : catalog.all()) {
      auto& broker = live.region_manager(region.id).broker();
      if (options_.break_replay) broker.set_replay_enabled(false);
      if (options_.break_state_sync) broker.set_state_sync_enabled(false);
    }
    if (options_.break_dedup) {
      if (auto* pool = live.cohort_pool()) {
        pool->set_dedup_enabled(false);
      } else {
        for (const auto& sub : live.subscribers()) {
          sub->set_dedup_enabled(false);
        }
      }
    }
  }

  Rng traffic_rng(seed + 1);
  core::TopicConfig current{universe, core::DeliveryMode::kRouted};
  live.deploy(current);

  int clean_streak = 0;
  bool prev_constraint_met = false;
  std::uint64_t published_total = 0;

  for (int round = 0; round < rounds; ++round) {
    // (1) Fault boundaries. The harness is also the health monitor: it
    // tells the controller which regions died, exactly like the operator
    // loop in the failure tests. FaultPlan rules are re-derived from the
    // schedule each round (the plan's coin stream persists across rounds).
    const geo::RegionSet down = down_regions_in_round(schedule, round, catalog);
    for (const auto& region : catalog.all()) {
      const bool is_down = down.contains(region.id);
      // Through the system, not the raw transport: in reliable mode a
      // down-transition crashes the broker and an up-transition restores it
      // from the standby and reconnects its subscribers. Without reliable
      // mode this is exactly the transport flag.
      live.set_region_down(region.id, is_down);
      live.controller().set_region_available(region.id, !is_down);
    }
    plan.clear();
    for (const auto& event : schedule) {
      if (!event.covers(round) || event.kind == FaultEvent::Kind::kOutage) {
        continue;
      }
      net::FaultRule rule;
      rule.from = resolve_endpoint(event.from, catalog);
      rule.to = resolve_endpoint(event.to, catalog);
      switch (event.kind) {
        case FaultEvent::Kind::kPartition:
          rule.kind = net::FaultRule::Kind::kPartition;
          break;
        case FaultEvent::Kind::kDelay:
          rule.kind = net::FaultRule::Kind::kDelay;
          rule.delay_factor = event.delay_factor;
          rule.delay_extra_ms = event.delay_extra_ms;
          break;
        case FaultEvent::Kind::kDrop:
          rule.kind = net::FaultRule::Kind::kDrop;
          rule.drop_probability = event.drop_probability;
          break;
        case FaultEvent::Kind::kOutage:
          continue;
      }
      (void)plan.add(rule);
    }

    // (2) Per-region activity snapshot for the silence oracle.
    struct Snapshot {
      std::uint64_t broker = 0;
      Bytes egress = 0;
    };
    std::vector<Snapshot> before(catalog.size());
    for (const auto& region : catalog.all()) {
      const auto& broker = live.region_manager(region.id).broker();
      const auto& ledger = live.transport().ledger();
      before[region.id.index()] = {
          broker.delivered_count() + broker.forwarded_count() +
              broker.drain_forwarded_count(),
          ledger.inter_region_bytes[region.id.index()] +
              ledger.internet_bytes[region.id.index()]};
    }

    // (3) One interval of traffic, (4) one control round.
    const LiveRunResult run =
        live.run_interval(options_.interval_seconds, options_.payload_bytes,
                          options_.rate_hz, traffic_rng);
    exec.publications += run.publications;
    exec.deliveries += run.deliveries;
    published_total += run.publications;

    const bool serving_constraint_met = prev_constraint_met;
    if (!options_.freeze_control_plane) {
      const auto decisions = live.control_round();
      for (const auto& decision : decisions) {
        if (decision.topic != topic) continue;
        current = decision.result.config;
        prev_constraint_met = decision.result.constraint_met;
      }
    }

    // (5) Observe and check.
    const bool fault_active = any_fault_covers(schedule, round);
    clean_streak = fault_active ? 0 : clean_streak + 1;

    if (options_.reliable && !fault_active) {
      // The control round's config churn and any just-healed outage both
      // postdate run_interval's own sync pass; run another fault-free one so
      // the reliable books below see converged rings and replicas.
      live.sync_reliable();
    }

    RoundObservation obs;
    obs.round = round;
    obs.fault_active = fault_active;
    obs.clean_streak = clean_streak;
    obs.pending_events = live.simulator().pending();
    const net::SimTransport& transport = live.transport();
    obs.sent = transport.sent_count();
    obs.delivered = transport.delivered_count();
    obs.dropped = transport.dropped_count();
    obs.dropped_sender_down = transport.dropped_sender_down_count();
    obs.ledger_total = transport.ledger().total_cost(catalog);
    obs.topic_total = transport.topic_cost_total();
    for (const RegionId region : down) {
      const auto& broker = live.region_manager(region).broker();
      const auto& ledger = transport.ledger();
      RoundObservation::DownRegionActivity activity;
      activity.region = region;
      activity.broker_delta = broker.delivered_count() +
                              broker.forwarded_count() +
                              broker.drain_forwarded_count() -
                              before[region.index()].broker;
      activity.egress_delta = ledger.inter_region_bytes[region.index()] +
                              ledger.internet_bytes[region.index()] -
                              before[region.index()].egress;
      obs.down_regions.push_back(activity);
    }
    obs.down_set = down;
    obs.universe = universe;
    obs.have_deployed = true;
    obs.deployed = current;

    if (options_.reliable) {
      obs.reliable = true;
      if (const auto* pool = live.cohort_pool()) {
        obs.recorded_duplicates = pool->recorded_duplicate_weight();
      } else {
        for (const auto& sub : live.subscribers()) {
          obs.recorded_duplicates += sub->recorded_duplicate_count();
        }
      }
      if (!fault_active) {
        obs.check_zero_loss = true;
        obs.published = published_total;
        obs.publish_drops = transport.publish_drop_count(topic);
        obs.crash_lost = live.crash_lost(topic);
        if (const auto* pool = live.cohort_pool()) {
          for (std::size_t f = 0; f < pool->flock_count(); ++f) {
            const auto fid = static_cast<std::int32_t>(f);
            if (pool->flock_topic(fid) != topic) continue;
            if (pool->flock_weight(fid) == 0) continue;  // retired flock
            if (!pool->flock_matches_all(fid)) continue;
            const std::uint64_t unique = pool->flock_complete_count(fid);
            if (!obs.have_audience || unique < obs.min_unique) {
              obs.min_unique = unique;
            }
            obs.have_audience = true;
          }
        } else {
          for (const auto& sub : live.subscribers()) {
            if (!sub->attached_region(topic).valid()) continue;
            if (!sub->matches_all(topic)) continue;
            const std::uint64_t unique = sub->unique_count(topic);
            if (!obs.have_audience || unique < obs.min_unique) {
              obs.min_unique = unique;
            }
            obs.have_audience = true;
          }
        }
        obs.check_replication = true;
        for (const auto& region : catalog.all()) {
          const auto& broker = live.region_manager(region.id).broker();
          const RegionId standby = broker.standby();
          if (!standby.valid()) continue;
          RoundObservation::ReplicationLag lag;
          lag.primary = region.id;
          lag.state_seq = broker.state_seq();
          lag.applied_seq =
              live.region_manager(standby).broker().replica_applied_seq(
                  region.id);
          obs.replication.push_back(lag);
        }
      }
    }

    if (clean_streak >= options_.convergence_rounds) {
      // Ground truth: the analytic optimizer over the scenario's own
      // matrices and the interval's ACTUAL publication counts — independent
      // of the controller's internal state, so a wedged control plane
      // cannot grade its own homework.
      obs.check_convergence = true;
      obs.analytic =
          scenario_->make_optimizer().optimize(live.observed_topic_state())
              .config;
      obs.check_conformance =
          serving_constraint_met && scenario_->topic.constraint.max < kUnreachable;
      obs.measured_percentile = run.percentile;
      obs.max_t = scenario_->topic.constraint.max;
    }

    auto violations = check_invariants(obs);
    exec.violations.insert(exec.violations.end(), violations.begin(),
                           violations.end());
    exec.total_cost = obs.ledger_total;
    if (stop_at_first && !exec.violations.empty()) break;
  }
  return exec;
}

void ChaosRunner::shrink(ChaosReport& report, std::uint64_t seed) {
  const OracleViolation& first = report.violations.front();
  const std::string target = first.oracle;
  const int repro_rounds = first.round + 1;

  int runs = 0;
  const auto still_fails = [&](const FaultSchedule& candidate) {
    if (runs >= options_.max_shrink_runs) return false;
    ++runs;
    const Execution probe = execute(candidate, seed, repro_rounds,
                                    /*stop_at_first=*/true);
    return std::any_of(
        probe.violations.begin(), probe.violations.end(),
        [&](const OracleViolation& v) { return v.oracle == target; });
  };

  // Prefix truncation: events that start after the violation round cannot
  // have contributed (rounds execute in order and the probe stops there).
  FaultSchedule current;
  for (const auto& event : report.schedule) {
    if (event.start_round < repro_rounds) current.push_back(event);
  }
  if (!still_fails(current)) {
    // Paranoia: if truncation somehow lost the failure, report the full
    // schedule rather than a bogus "minimal" one.
    report.minimal_schedule = report.schedule;
    report.minimal_rounds = report.rounds;
    report.minimal_oracle = target;
    return;
  }

  // Greedy event removal until no single event can be dropped.
  bool progress = true;
  while (progress && !current.empty()) {
    progress = false;
    for (std::size_t i = 0; i < current.size(); ++i) {
      FaultSchedule candidate = current;
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
      if (still_fails(candidate)) {
        current = std::move(candidate);
        progress = true;
        break;
      }
    }
  }

  report.minimal_schedule = std::move(current);
  report.minimal_rounds = repro_rounds;
  report.minimal_oracle = target;
}

ChaosReport ChaosRunner::run_schedule(const FaultSchedule& schedule,
                                      std::uint64_t seed) {
  ChaosReport report;
  report.seed = seed;
  report.rounds = options_.rounds;
  report.schedule = schedule;

  Execution exec = execute(schedule, seed, options_.rounds,
                           /*stop_at_first=*/false);
  report.violations = std::move(exec.violations);
  report.publications = exec.publications;
  report.deliveries = exec.deliveries;
  report.total_cost = exec.total_cost;

  if (!report.passed() && options_.shrink_on_failure) shrink(report, seed);
  return report;
}

ChaosReport ChaosRunner::run(std::uint64_t seed) {
  if (!scenario_->faults.empty()) {
    return run_schedule(scenario_->faults, seed);
  }
  Rng rng(seed);
  return run_schedule(generate_schedule(*scenario_, options_, rng), seed);
}

std::string ChaosReport::render() const {
  std::ostringstream out;
  out << "chaos seed=" << seed << " rounds=" << rounds << " events="
      << schedule.size() << "\n";
  out << "schedule:\n";
  if (schedule.empty()) {
    out << "  (none)\n";
  } else {
    out << format_fault_schedule(schedule);
  }
  for (const auto& violation : violations) {
    out << "round " << violation.round << ": VIOLATION " << violation.oracle
        << ": " << violation.detail << "\n";
  }
  out << "publications=" << publications << " deliveries=" << deliveries
      << " cost=" << format_dollars(total_cost) << "\n";
  if (passed()) {
    out << "PASS: all invariants held\n";
  } else {
    out << "FAIL: " << violations.size() << " violation(s); first "
        << violations.front().oracle << " at round " << violations.front().round
        << "\n";
    if (!minimal_oracle.empty()) {
      out << "minimal repro (oracle " << minimal_oracle << ", "
          << minimal_schedule.size() << " event(s), " << minimal_rounds
          << " round(s), seed " << seed << "):\n";
      if (minimal_schedule.empty()) {
        out << "  (fails with no faults at all)\n";
      } else {
        out << format_fault_schedule(minimal_schedule);
      }
    }
  }
  return out.str();
}

}  // namespace multipub::sim
