#include "sim/scenario_file.h"

#include <charconv>
#include <sstream>
#include <vector>

#include "geo/king_synth.h"

namespace multipub::sim {
namespace {

/// Splits a line into whitespace-separated tokens.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream stream(line);
  std::string token;
  while (stream >> token) out.push_back(token);
  return out;
}

bool parse_double(const std::string& token, double* out) {
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc{} && ptr == end;
}

bool parse_size(const std::string& token, std::size_t* out) {
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc{} && ptr == end;
}

std::string at_line(int line, const std::string& message) {
  return "line " + std::to_string(line) + ": " + message;
}

}  // namespace

std::optional<ScenarioSpec> parse_scenario_spec(std::string_view content,
                                                std::string* error) {
  ScenarioSpec spec;
  std::istringstream stream{std::string(content)};
  std::string raw;
  int line_no = 0;
  while (std::getline(stream, raw)) {
    ++line_no;
    // Strip comments.
    if (const auto hash = raw.find('#'); hash != std::string::npos) {
      raw.erase(hash);
    }
    const auto tokens = tokenize(raw);
    if (tokens.empty()) continue;
    const std::string& key = tokens[0];

    auto want = [&](std::size_t n) {
      if (tokens.size() == n + 1) return true;
      if (error) {
        *error = at_line(line_no, "'" + key + "' expects " +
                                      std::to_string(n) + " argument(s)");
      }
      return false;
    };

    if (key == "placement") {
      if (!want(3)) return std::nullopt;
      ScenarioSpec::Placement place;
      place.region = tokens[1];
      if (!parse_size(tokens[2], &place.publishers) ||
          !parse_size(tokens[3], &place.subscribers)) {
        if (error) *error = at_line(line_no, "bad placement counts");
        return std::nullopt;
      }
      spec.placements.push_back(std::move(place));
    } else if (key == "rate") {
      if (!want(1) || !parse_double(tokens[1], &spec.workload.publish_rate_hz)) {
        if (error && error->empty()) *error = at_line(line_no, "bad rate");
        return std::nullopt;
      }
    } else if (key == "size") {
      std::size_t bytes = 0;
      if (!want(1) || !parse_size(tokens[1], &bytes)) {
        if (error && error->empty()) *error = at_line(line_no, "bad size");
        return std::nullopt;
      }
      spec.workload.message_bytes = bytes;
    } else if (key == "interval") {
      if (!want(1) ||
          !parse_double(tokens[1], &spec.workload.interval_seconds)) {
        if (error && error->empty()) *error = at_line(line_no, "bad interval");
        return std::nullopt;
      }
    } else if (key == "ratio") {
      if (!want(1) || !parse_double(tokens[1], &spec.workload.ratio)) {
        if (error && error->empty()) *error = at_line(line_no, "bad ratio");
        return std::nullopt;
      }
    } else if (key == "max_t") {
      if (!want(1)) return std::nullopt;
      if (tokens[1] == "inf") {
        spec.workload.max_t = kUnreachable;
      } else if (!parse_double(tokens[1], &spec.workload.max_t)) {
        if (error) *error = at_line(line_no, "bad max_t");
        return std::nullopt;
      }
    } else if (key == "fault") {
      std::string detail;
      auto event = parse_fault_tokens(
          std::vector<std::string>(tokens.begin() + 1, tokens.end()), &detail);
      if (!event) {
        if (error) *error = at_line(line_no, detail);
        return std::nullopt;
      }
      spec.faults.push_back(std::move(*event));
    } else if (key == "seed") {
      std::size_t seed = 0;
      if (!want(1) || !parse_size(tokens[1], &seed)) {
        if (error && error->empty()) *error = at_line(line_no, "bad seed");
        return std::nullopt;
      }
      spec.seed = seed;
    } else {
      if (error) *error = at_line(line_no, "unknown key '" + key + "'");
      return std::nullopt;
    }
  }

  if (spec.placements.empty()) {
    if (error) *error = "no placement lines";
    return std::nullopt;
  }
  if (spec.workload.ratio <= 0.0 || spec.workload.ratio > 100.0) {
    if (error) *error = "ratio must be in (0, 100]";
    return std::nullopt;
  }
  return spec;
}

std::optional<Scenario> build_scenario(const ScenarioSpec& spec,
                                       const geo::RegionCatalog& catalog,
                                       const geo::InterRegionLatency& backbone,
                                       std::string* error) {
  Rng rng(spec.seed);
  Scenario scenario;
  scenario.catalog = catalog;
  scenario.backbone = backbone;
  scenario.interval_seconds = spec.workload.interval_seconds;
  scenario.population.latencies = geo::ClientLatencyMap(catalog.size());

  std::vector<ClientId> pub_ids, sub_ids;
  for (const auto& place : spec.placements) {
    const RegionId region = catalog.find(place.region);
    if (!region.valid()) {
      if (error) *error = "unknown region '" + place.region + "'";
      return std::nullopt;
    }
    auto local = geo::synthesize_local_population(
        catalog, backbone, region, place.publishers + place.subscribers, {},
        rng);
    for (std::size_t i = 0; i < local.size(); ++i) {
      const ClientId id = scenario.population.latencies.add_client(
          local.latencies.row(ClientId{static_cast<ClientId::underlying_type>(i)}));
      scenario.population.home_region.push_back(region);
      (i < place.publishers ? pub_ids : sub_ids).push_back(id);
    }
  }
  if (pub_ids.empty() || sub_ids.empty()) {
    if (error) *error = "scenario needs at least one publisher and one subscriber";
    return std::nullopt;
  }

  scenario.topic.topic = TopicId{0};
  scenario.topic.constraint = {spec.workload.ratio, spec.workload.max_t};
  scenario.topic.publishers = core::uniform_publishers(
      pub_ids, messages_per_interval(spec.workload),
      spec.workload.message_bytes);
  scenario.topic.subscribers = core::unit_subscribers(sub_ids);

  // Fault endpoints stay name-based in the schedule, but reject names the
  // catalog can't resolve now so the error carries the scenario's context.
  for (const auto& event : spec.faults) {
    for (const auto* endpoint : {&event.from, &event.to}) {
      if (endpoint->kind == FaultEndpointSpec::Kind::kRegion &&
          !catalog.find(endpoint->region).valid()) {
        if (error) {
          *error = "fault references unknown region '" + endpoint->region + "'";
        }
        return std::nullopt;
      }
    }
  }
  scenario.faults = spec.faults;
  return scenario;
}

}  // namespace multipub::sim
