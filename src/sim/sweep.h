// max_T sweeps: the x-axis of Figures 3, 4 and 5.
//
// Each experiment varies the per-topic delivery bound max_T and records, per
// point, what MultiPub selects: the achieved percentile, the daily cost, the
// region count and the delivery mode.
#pragma once

#include <vector>

#include "core/optimizer.h"
#include "sim/scenario.h"

namespace multipub::sim {

/// One row of a figure's data series.
struct SweepPoint {
  Millis max_t = 0.0;
  Millis achieved_percentile = 0.0;
  Dollars cost_per_day = 0.0;
  int n_regions = 0;
  core::DeliveryMode mode = core::DeliveryMode::kDirect;
  bool constraint_met = false;
};

/// Inclusive sweep bounds with a fixed step (ms).
struct SweepRange {
  Millis from = 100.0;
  Millis to = 200.0;
  Millis step = 4.0;
};

/// Runs the optimizer once per max_T value. The scenario's topic constraint
/// ratio is kept; only max_T varies.
[[nodiscard]] std::vector<SweepPoint> sweep_max_t(
    const Scenario& scenario, const SweepRange& range,
    core::ModePolicy policy = core::ModePolicy::kBoth);

}  // namespace multipub::sim
