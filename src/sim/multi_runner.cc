#include "sim/multi_runner.h"

#include "common/assert.h"
#include "common/stats.h"

namespace multipub::sim {

MultiTopicScenario make_multi_topic_scenario(
    const std::vector<TopicSpec>& specs, Rng& rng,
    const geo::KingSynthParams& synth) {
  MP_EXPECTS(!specs.empty());
  MultiTopicScenario out;
  out.catalog = geo::RegionCatalog::ec2_2016();
  out.backbone = geo::InterRegionLatency::ec2_2016();
  out.population.latencies = geo::ClientLatencyMap(out.catalog.size());

  for (std::size_t t = 0; t < specs.size(); ++t) {
    const TopicSpec& spec = specs[t];
    std::vector<ClientId> pub_ids, sub_ids;
    for (const auto& place : spec.placements) {
      auto local = geo::synthesize_local_population(
          out.catalog, out.backbone, place.region,
          place.publishers + place.subscribers, synth, rng);
      for (std::size_t i = 0; i < local.size(); ++i) {
        const ClientId id = out.population.latencies.add_client(
            local.latencies.row(ClientId{static_cast<ClientId::underlying_type>(i)}));
        out.population.home_region.push_back(place.region);
        (i < place.publishers ? pub_ids : sub_ids).push_back(id);
      }
    }
    core::TopicState topic;
    topic.topic = TopicId{static_cast<TopicId::underlying_type>(t)};
    topic.constraint = {spec.workload.ratio, spec.workload.max_t};
    topic.publishers = core::uniform_publishers(
        pub_ids, messages_per_interval(spec.workload),
        spec.workload.message_bytes);
    topic.subscribers = core::unit_subscribers(sub_ids);
    out.topics.push_back(std::move(topic));
    out.workloads.push_back(spec.workload);
  }
  return out;
}

MultiLiveSystem::MultiLiveSystem(const MultiTopicScenario& scenario)
    : scenario_(&scenario) {
  transport_ = std::make_unique<net::SimTransport>(
      sim_, scenario.catalog, scenario.backbone,
      scenario.population.latencies);
  for (const auto& region : scenario.catalog.all()) {
    managers_.push_back(std::make_unique<broker::RegionManager>(
        region.id, sim_, *transport_));
  }
  controller_ = std::make_unique<broker::Controller>(
      scenario.catalog, scenario.backbone, scenario.population.latencies);

  for (const auto& topic : scenario.topics) {
    controller_->set_constraint(topic.topic, topic.constraint);
    for (const auto& pub : topic.publishers) {
      publishers_.push_back(std::make_unique<client::Publisher>(
          pub.client, sim_, *transport_, scenario.population.latencies));
      topic_pubs_[topic.topic].push_back(publishers_.back().get());
    }
    for (const auto& sub : topic.subscribers) {
      subscribers_.push_back(std::make_unique<client::Subscriber>(
          sub.client, sim_, *transport_, scenario.population.latencies));
      topic_subs_[topic.topic].push_back(subscribers_.back().get());
    }
  }
}

void MultiLiveSystem::deploy(TopicId topic, const core::TopicConfig& config) {
  for (auto& manager : managers_) {
    manager->broker().set_topic_config(topic, config);
  }
  for (client::Publisher* pub : topic_pubs_[topic]) {
    pub->set_config(topic, config);
  }
  for (client::Subscriber* sub : topic_subs_[topic]) {
    sub->subscribe(topic, config);
  }
  sim_.run();
}

void MultiLiveSystem::deploy_all(const core::TopicConfig& config) {
  for (const auto& topic : scenario_->topics) {
    deploy(topic.topic, config);
  }
}

std::vector<TopicRunResult> MultiLiveSystem::run_interval(double seconds,
                                                          Rng& rng) {
  MP_EXPECTS(seconds > 0.0);
  for (auto& sub : subscribers_) sub->clear_deliveries();

  const Millis start = sim_.now();
  for (std::size_t t = 0; t < scenario_->topics.size(); ++t) {
    const auto& topic = scenario_->topics[t];
    const auto& workload = scenario_->workloads[t];
    const double spacing_ms = 1000.0 / workload.publish_rate_hz;
    const auto per_pub =
        static_cast<std::uint64_t>(seconds * workload.publish_rate_hz + 0.5);
    for (client::Publisher* pub : topic_pubs_.at(topic.topic)) {
      const double phase = rng.uniform(0.0, spacing_ms);
      for (std::uint64_t k = 0; k < per_pub; ++k) {
        sim_.schedule_at(start + phase + static_cast<double>(k) * spacing_ms,
                         [pub, id = topic.topic,
                          bytes = workload.message_bytes] {
                           pub->publish(id, bytes);
                         });
      }
    }
  }
  sim_.run();

  std::vector<TopicRunResult> results;
  for (std::size_t t = 0; t < scenario_->topics.size(); ++t) {
    const auto& topic = scenario_->topics[t];
    const auto& workload = scenario_->workloads[t];
    TopicRunResult result;
    result.topic = topic.topic;

    std::vector<Millis> times;
    for (client::Subscriber* sub : topic_subs_.at(topic.topic)) {
      for (const auto& record : sub->deliveries()) {
        times.push_back(record.delivery_time);
      }
    }
    result.deliveries = times.size();
    if (!times.empty()) {
      result.percentile = percentile(times, topic.constraint.ratio);
    }
    for (client::Publisher* pub : topic_pubs_.at(topic.topic)) {
      result.publications += static_cast<std::uint64_t>(
          seconds * workload.publish_rate_hz + 0.5);
      (void)pub;
    }
    const Dollars billed = transport_->topic_cost(topic.topic);
    result.interval_cost = billed - billed_so_far_[topic.topic];
    billed_so_far_[topic.topic] = billed;
    results.push_back(result);
  }
  return results;
}

std::vector<broker::Controller::Decision> MultiLiveSystem::control_round(
    const core::OptimizerOptions& options) {
  for (auto& manager : managers_) {
    if (incremental_) {
      const broker::ReportBatch batch = manager->collect_reports();
      controller_->ingest(manager->region(), batch.reports,
                          batch.full_snapshot);
    } else {
      controller_->ingest(manager->region(), manager->collect_full_reports(),
                          /*full_snapshot=*/true);
    }
    controller_->observe_latencies(manager->region(),
                                   manager->collect_latency_reports());
  }
  auto decisions = incremental_ ? controller_->reconfigure(options)
                                : controller_->reconfigure_full(options);
  for (const auto& decision : decisions) {
    if (!decision.changed) continue;
    for (auto& manager : managers_) {
      manager->apply_config(decision.topic, decision.result.config);
    }
  }
  sim_.run();
  return decisions;
}

const std::vector<client::Subscriber*>& MultiLiveSystem::subscribers(
    TopicId topic) const {
  static const std::vector<client::Subscriber*> kEmpty;
  const auto it = topic_subs_.find(topic);
  return it == topic_subs_.end() ? kEmpty : it->second;
}

}  // namespace multipub::sim
