#include "sim/live_runner.h"

#include <array>
#include <map>

#include "common/assert.h"
#include "common/stats.h"
#include "core/cost_model.h"

namespace multipub::sim {

LiveSystem::LiveSystem(const Scenario& scenario) : scenario_(&scenario) {
  transport_ = std::make_unique<net::SimTransport>(
      sim_, scenario.catalog, scenario.backbone,
      scenario.population.latencies);

  managers_.reserve(scenario.catalog.size());
  for (const auto& region : scenario.catalog.all()) {
    managers_.push_back(std::make_unique<broker::RegionManager>(
        region.id, sim_, *transport_));
  }

  controller_ = std::make_unique<broker::Controller>(
      scenario.catalog, scenario.backbone, scenario.population.latencies);
  controller_->set_constraint(scenario.topic.topic,
                              scenario.topic.constraint);

  publishers_.reserve(scenario.topic.publishers.size());
  for (const auto& pub : scenario.topic.publishers) {
    publishers_.push_back(std::make_unique<client::Publisher>(
        pub.client, sim_, *transport_, scenario.population.latencies));
  }
  subscribers_.reserve(scenario.topic.subscribers.size());
  for (const auto& sub : scenario.topic.subscribers) {
    subscribers_.push_back(std::make_unique<client::Subscriber>(
        sub.client, sim_, *transport_, scenario.population.latencies));
  }
  last_interval_counts_.assign(publishers_.size(), 0);
}

broker::RegionManager& LiveSystem::region_manager(RegionId region) {
  MP_EXPECTS(region.valid() && region.index() < managers_.size());
  return *managers_[region.index()];
}

void LiveSystem::set_reliable(bool on) {
  MP_EXPECTS(on || !reliable_);  // arming is one-way (like set_cohorts)
  if (!on || reliable_) return;
  reliable_ = true;
  transport_->set_reliable_control(true);
  for (auto& manager : managers_) manager->broker().set_reliable(true);
  if (pool_ != nullptr) {
    pool_->set_reliable(true);
  } else {
    for (auto& subscriber : subscribers_) subscriber->set_reliable(true);
  }
  // Clone-pattern standby ring: every broker replicates to its
  // backbone-nearest peer (lowest region id on ties — the managers_ walk is
  // id-ascending and the comparison strict). A single-region world has no
  // peer to replicate to.
  if (managers_.size() < 2) return;
  for (auto& manager : managers_) {
    const RegionId self = manager->region();
    RegionId standby = RegionId::invalid();
    Millis best = kUnreachable;
    for (const auto& other : managers_) {
      if (other->region() == self) continue;
      const Millis l = scenario_->backbone.at(self, other->region());
      if (l < best) {
        best = l;
        standby = other->region();
      }
    }
    manager->broker().set_standby(standby);
  }
}

void LiveSystem::record_crash_losses(RegionId region) {
  const broker::Broker& crashing = region_manager(region).broker();
  for (const auto& [topic, by_publisher] : crashing.seen_publications()) {
    for (const auto& [publisher, seqs] : by_publisher) {
      for (const std::uint64_t seq : seqs) {
        bool survives = false;
        for (const auto& manager : managers_) {
          if (manager->region() == region ||
              transport_->region_down(manager->region())) {
            continue;  // a down broker's state is already gone
          }
          if (manager->broker().has_accepted(topic, publisher, seq)) {
            survives = true;
            break;
          }
        }
        if (!survives) ++crash_lost_[topic.value()];
      }
    }
  }
}

std::uint64_t LiveSystem::crash_lost(TopicId topic) const {
  const auto it = crash_lost_.find(topic.value());
  return it == crash_lost_.end() ? 0 : it->second;
}

void LiveSystem::set_region_down(RegionId region, bool down) {
  if (down == transport_->region_down(region)) return;
  if (down) {
    // Record what dies with the broker BEFORE the crash wipes it.
    if (reliable_) record_crash_losses(region);
    transport_->set_region_down(region, true);
    if (reliable_) region_manager(region).broker().crash();
    return;
  }
  transport_->set_region_down(region, false);
  if (!reliable_) return;
  // Recovery: the standby host streams the replica back (a no-op on every
  // other manager), and the region's subscribers re-subscribe so the
  // rebuilt table is authoritative even if the replica was stale. The
  // traffic lands on the next drain.
  for (auto& manager : managers_) {
    if (manager->region() != region) manager->broker().restore_peer(region);
  }
  if (pool_ != nullptr) {
    pool_->reconnect(region);
  } else {
    for (auto& subscriber : subscribers_) subscriber->reconnect(region);
  }
}

void LiveSystem::sync_reliable() {
  if (!reliable_) return;
  // Broker half first: peer rings converge (and standbys resync) before the
  // clients ask for the repaired suffixes.
  for (auto& manager : managers_) manager->broker().sync_with_peers();
  drain();
  if (pool_ != nullptr) {
    pool_->sync_replay();
  } else {
    for (auto& subscriber : subscribers_) subscriber->sync_replay();
  }
  drain();
}

void LiveSystem::set_shard_placement(net::ShardPlacement placement) {
  MP_EXPECTS(shards_ == 1 && "call set_shard_placement before set_shards");
  placement_ = placement;
}

void LiveSystem::set_window_policy(net::WindowPolicy policy) {
  MP_EXPECTS(shards_ == 1 && "call set_window_policy before set_shards");
  window_policy_ = policy;
}

void LiveSystem::set_shards(std::uint32_t shards) {
  MP_EXPECTS(shards >= 1);
  shards_ = shards;
  if (shards == 1) {
    if (sim_.sharded()) sim_.configure_shards(net::ShardMap{}, 0.0);
    transport_->set_shards(1);
    base_lookahead_ = kUnreachable;
    base_lookaheads_.clear();
    return;
  }
  // The parallel plane runs on the typed-event engine; the legacy reference
  // path stays single-threaded.
  MP_EXPECTS(transport_->fast_path());
  net::ShardMap map;
  map.shards = shards;
  map.region_shard =
      net::partition_regions(placement_, scenario_->backbone, shards);
  // Clients are co-sharded with their home region: the dominant client
  // traffic (attach, publish-in, deliver-out) stays intra-shard, and the
  // home link — typically the shortest a client has — never constrains the
  // window width.
  map.client_shard.resize(scenario_->population.size());
  for (std::size_t c = 0; c < map.client_shard.size(); ++c) {
    map.client_shard[c] = map.region_shard[scenario_->population
                                               .home_region[c]
                                               .index()];
  }
  if (pool_ != nullptr) {
    // A flock's events run on its home region's shard — the same placement
    // its members would have had — and the flock universe closes here:
    // shard assignments are static.
    pool_->freeze();
    map.cohort_shard.resize(pool_->flock_count());
    for (std::size_t f = 0; f < map.cohort_shard.size(); ++f) {
      map.cohort_shard[f] =
          map.region_shard[pool_->flock_home(static_cast<std::int32_t>(f))
                               .index()];
    }
  }
  base_lookahead_ = transport_->min_cross_shard_latency(map);
  MP_EXPECTS(base_lookahead_ > 0.0 && base_lookahead_ < kUnreachable);
  base_lookaheads_ = transport_->cross_shard_lookaheads(map);
  transport_->set_shards(shards);
  sim_.configure_shards(std::move(map), base_lookahead_);
  sim_.set_window_policy(window_policy_);
  sim_.set_lookahead_matrix(base_lookaheads_);
}

void LiveSystem::drain() {
  if (shards_ > 1) {
    // The window width is the min cross-shard latency, shrunk by whatever
    // the current fault rules could shrink a latency by. Jitter only
    // stretches delays (factor >= 1, half-normal addend >= 0), so it needs
    // no adjustment.
    double scale = 1.0;
    if (const net::FaultPlan* plan = transport_->fault_plan()) {
      scale = plan->lookahead_scale();
    }
    sim_.set_lookahead(base_lookahead_ * scale);
    if (window_policy_ == net::WindowPolicy::kAdaptive) {
      // The matrix shrinks by the same uniform factor (a delay rule can
      // shorten any link's effective latency by at most that factor);
      // infinities stay infinite under a positive scale.
      std::vector<Millis> scaled = base_lookaheads_;
      if (scale != 1.0) {
        for (Millis& entry : scaled) entry *= scale;
      }
      sim_.set_lookahead_matrix(std::move(scaled));
    }
  }
  sim_.run();
}

void LiveSystem::deploy(const core::TopicConfig& config) {
  const TopicId topic = scenario_->topic.topic;
  for (auto& manager : managers_) {
    manager->broker().set_topic_config(topic, config);
  }
  for (auto& publisher : publishers_) {
    publisher->set_config(topic, config);
  }
  if (pool_ != nullptr) {
    pool_->deploy(topic, config);
  } else {
    for (auto& subscriber : subscribers_) {
      subscriber->subscribe(topic, config);
    }
  }
  drain();  // let the kSubscribe handshakes land
}

void LiveSystem::set_cohorts(bool on, Millis row_bucket_ms) {
  if (!on) {
    MP_EXPECTS(pool_ == nullptr && "disabling cohorts is not supported");
    return;
  }
  if (pool_ != nullptr) return;
  MP_EXPECTS(transport_->fast_path());
  MP_EXPECTS(row_bucket_ms >= 0.0);
  const std::size_t n_clients = scenario_->population.size();
  const std::size_t n_regions = scenario_->catalog.size();
  arena_ = std::make_unique<Arena>();
  topic_sets_ = std::make_unique<client::TopicSetPool>(*arena_);
  // Exact rows (bucket 0, the default): only bit-identical latency rows
  // merge, which is what keeps the cohort plane bit-identical to the
  // per-client one. A positive bucket trades that for more folding.
  registry_ = std::make_unique<client::ClientRegistry>(
      n_clients, n_regions, row_bucket_ms, *arena_);

  const TopicId topic = scenario_->topic.topic;
  const std::array<TopicId, 1> topics{topic};
  const std::int32_t topic_set = topic_sets_->intern(topics);
  std::vector<char> is_subscriber(n_clients, 0);
  for (const auto& sub : scenario_->topic.subscribers) {
    is_subscriber[sub.client.index()] = 1;
  }
  // Mirror the population 1:1 so registry ids equal scenario ClientIds.
  std::vector<Millis> row(n_regions);
  for (std::size_t c = 0; c < n_clients; ++c) {
    const ClientId id{static_cast<ClientId::underlying_type>(c)};
    for (std::size_t r = 0; r < n_regions; ++r) {
      row[r] = scenario_->population.latencies.at(
          id, RegionId{static_cast<RegionId::underlying_type>(r)});
    }
    const ClientId added =
        registry_->add(scenario_->population.home_region[c], row,
                       is_subscriber[c] != 0 ? topic_set
                                             : client::TopicSetPool::kEmpty);
    MP_EXPECTS(added == id);
  }

  pool_ = std::make_unique<client::CohortPool>(*registry_, *topic_sets_, sim_,
                                               *transport_);
  // Enrollment order = the scenario's subscriber order, so cohort and flock
  // ids are deterministic.
  for (const auto& sub : scenario_->topic.subscribers) {
    pool_->enroll(sub.client);
  }
  // The per-client subscriber endpoints leave the wire; the pool owns their
  // traffic from here on.
  for (const auto& subscriber : subscribers_) {
    transport_->unregister_handler(net::Address::client(subscriber->id()));
  }
  subscribers_.clear();
  transport_->set_cohort_directory(pool_.get());
}

void LiveSystem::schedule_traffic(Millis start_offset_ms, double seconds,
                                  Bytes payload_bytes, double rate_hz,
                                  Rng& rng, Arrivals arrivals) {
  MP_EXPECTS(start_offset_ms >= 0.0);
  MP_EXPECTS(seconds > 0.0 && rate_hz > 0.0);
  const TopicId topic = scenario_->topic.topic;
  const double spacing_ms = 1000.0 / rate_hz;

  const Millis start = sim_.now() + start_offset_ms;
  const Millis horizon = 1000.0 * seconds;
  for (std::size_t i = 0; i < publishers_.size(); ++i) {
    client::Publisher* publisher = publishers_[i].get();
    // Owner-hinted: the publish action must run on the shard that owns the
    // publisher's client (a no-op hint on a single-threaded simulator).
    const net::Address owner = net::Address::client(publisher->id());
    auto publish_at = [&](Millis t) {
      sim_.schedule_at(start + t, owner, [publisher, topic, payload_bytes] {
        publisher->publish(topic, payload_bytes);
      });
    };

    std::uint64_t count = 0;
    if (arrivals == Arrivals::kFixedRate) {
      const double phase = rng.uniform(0.0, spacing_ms);
      count = static_cast<std::uint64_t>(seconds * rate_hz + 0.5);
      MP_EXPECTS(count >= 1);
      for (std::uint64_t k = 0; k < count; ++k) {
        publish_at(phase + static_cast<double>(k) * spacing_ms);
      }
    } else {
      // Poisson process: exponential gaps with mean spacing.
      for (Millis t = rng.exponential(spacing_ms); t < horizon;
           t += rng.exponential(spacing_ms)) {
        publish_at(t);
        ++count;
      }
      if (count == 0) {  // guarantee at least one message per publisher
        publish_at(rng.uniform(0.0, horizon));
        count = 1;
      }
    }
    last_interval_counts_[i] = count;
  }
  last_payload_bytes_ = payload_bytes;
}

LiveRunResult LiveSystem::run_interval(double seconds, Bytes payload_bytes,
                                       double rate_hz, Rng& rng) {
  if (pool_ != nullptr) {
    pool_->clear_arrivals();
  } else {
    for (auto& subscriber : subscribers_) subscriber->clear_deliveries();
  }
  schedule_traffic(0.0, seconds, payload_bytes, rate_hz, rng);
  drain();  // drain: every publication reaches every subscriber
  // Reliable mode: one sync pass per interval repairs tail losses (replayed
  // deliveries are recorded with their true, longer end-to-end delay; in a
  // clean interval nothing is missing and the pass is delivery-silent).
  sync_reliable();

  LiveRunResult result;
  if (pool_ != nullptr) {
    // Expand weighted arrivals back to per-member delivery times, in the
    // same subscriber order the per-client loop concatenates.
    for (const auto& sub : scenario_->topic.subscribers) {
      pool_->append_delivery_times(sub.client, result.delivery_times);
    }
  } else {
    for (const auto& subscriber : subscribers_) {
      const auto times = subscriber->delivery_times();
      result.delivery_times.insert(result.delivery_times.end(), times.begin(),
                                   times.end());
    }
  }
  result.publications = 0;
  for (std::uint64_t count : last_interval_counts_) {
    result.publications += count;
  }
  result.deliveries = result.delivery_times.size();
  if (!result.delivery_times.empty()) {
    result.percentile =
        percentile(result.delivery_times, scenario_->topic.constraint.ratio);
  }

  const Dollars billed = transport_->ledger().total_cost(scenario_->catalog);
  result.interval_cost = billed - billed_so_far_;
  billed_so_far_ = billed;
  result.cost_per_day = core::scale_to_day(result.interval_cost, seconds);
  return result;
}

std::vector<broker::Controller::Decision> LiveSystem::reconfigure_now(
    const core::OptimizerOptions& options) {
  for (auto& manager : managers_) {
    if (incremental_) {
      const broker::ReportBatch batch = manager->collect_reports();
      controller_->ingest(manager->region(), batch.reports,
                          batch.full_snapshot);
    } else {
      controller_->ingest(manager->region(), manager->collect_full_reports(),
                          /*full_snapshot=*/true);
    }
    controller_->observe_latencies(manager->region(),
                                   manager->collect_latency_reports());
  }
  auto decisions = incremental_ ? controller_->reconfigure(options)
                                : controller_->reconfigure_full(options);
  for (const auto& decision : decisions) {
    // Orphans (clients whose region died) are notified through an alive
    // region manager: their own manager cannot reach them. Pick the first
    // serving region of the new configuration — the controller already
    // excluded unavailable regions from it.
    if (!decision.orphans.empty()) {
      const RegionId notifier = decision.result.config.regions.first();
      if (pool_ != nullptr) {
        // A flock's members share a home region, so they are orphaned
        // together: one weighted notification per flock (ordered map for a
        // deterministic send order).
        std::map<std::int32_t, std::uint32_t> orphans_by_flock;
        for (ClientId orphan : decision.orphans) {
          const std::int32_t flock = pool_->flock_of(orphan, decision.topic);
          if (flock >= 0) {
            ++orphans_by_flock[flock];
          } else {
            // Publishers (and unpooled clients) keep per-client endpoints.
            region_manager(notifier).notify_client(
                decision.topic, decision.result.config, orphan);
          }
        }
        for (const auto& [flock, weight] : orphans_by_flock) {
          region_manager(notifier).notify_flock(
              decision.topic, decision.result.config, flock, weight);
        }
      } else {
        for (ClientId orphan : decision.orphans) {
          region_manager(notifier).notify_client(
              decision.topic, decision.result.config, orphan);
        }
      }
    }
    if (!decision.changed) continue;
    for (auto& manager : managers_) {
      manager->apply_config(decision.topic, decision.result.config);
    }
    // Publishers always learn the new configuration from their own region
    // manager; bootstrap-only publishers that never published yet keep the
    // deployed config via their initial set_config.
  }
  return decisions;
}

std::vector<broker::Controller::Decision> LiveSystem::control_round(
    const core::OptimizerOptions& options) {
  auto decisions = reconfigure_now(options);
  drain();  // deliver kConfigUpdate / resubscription traffic
  return decisions;
}

core::TopicState LiveSystem::observed_topic_state() const {
  core::TopicState state = scenario_->topic;
  for (std::size_t i = 0; i < state.publishers.size(); ++i) {
    state.publishers[i].msg_count = last_interval_counts_[i];
    state.publishers[i].total_bytes =
        last_interval_counts_[i] * last_payload_bytes_;
  }
  return state;
}

}  // namespace multipub::sim
