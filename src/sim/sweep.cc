#include "sim/sweep.h"

#include "common/assert.h"
#include "core/cost_model.h"

namespace multipub::sim {

std::vector<SweepPoint> sweep_max_t(const Scenario& scenario,
                                    const SweepRange& range,
                                    core::ModePolicy policy) {
  MP_EXPECTS(range.step > 0.0);
  MP_EXPECTS(range.from <= range.to);

  const core::Optimizer optimizer = scenario.make_optimizer();
  core::OptimizerOptions options;
  options.mode_policy = policy;

  std::vector<SweepPoint> out;
  core::TopicState topic = scenario.topic;
  for (Millis max_t = range.from; max_t <= range.to + 1e-9;
       max_t += range.step) {
    topic.constraint.max = max_t;
    const auto result = optimizer.optimize(topic, options);

    SweepPoint point;
    point.max_t = max_t;
    point.achieved_percentile = result.percentile;
    point.cost_per_day =
        core::scale_to_day(result.cost, scenario.interval_seconds);
    point.n_regions = result.config.region_count();
    point.mode = result.config.mode;
    point.constraint_met = result.constraint_met;
    out.push_back(point);
  }
  return out;
}

}  // namespace multipub::sim
