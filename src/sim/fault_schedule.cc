#include "sim/fault_schedule.h"

#include <charconv>
#include <cstdio>
#include <sstream>

namespace multipub::sim {
namespace {

bool parse_int(const std::string& token, int* out) {
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc{} && ptr == end;
}

bool parse_double(const std::string& token, double* out) {
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc{} && ptr == end;
}

bool parse_endpoint(const std::string& token, FaultEndpointSpec* out,
                    std::string* error) {
  using Kind = FaultEndpointSpec::Kind;
  *out = FaultEndpointSpec{};
  if (token == "*") {
    out->kind = Kind::kAny;
    return true;
  }
  if (token == "region:*") {
    out->kind = Kind::kAnyRegion;
    return true;
  }
  if (token == "client:*") {
    out->kind = Kind::kAnyClient;
    return true;
  }
  if (token.starts_with("client:")) {
    int id = -1;
    if (!parse_int(token.substr(7), &id) || id < 0) {
      if (error) *error = "bad client id in '" + token + "'";
      return false;
    }
    out->kind = Kind::kClient;
    out->client = id;
    return true;
  }
  // 'region:<name>' or a bare region name; resolved against a catalog later.
  out->kind = Kind::kRegion;
  out->region = token.starts_with("region:") ? token.substr(7) : token;
  if (out->region.empty()) {
    if (error) *error = "empty region name in '" + token + "'";
    return false;
  }
  return true;
}

/// %.17g survives a text round-trip for every double.
std::string format_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string format_endpoint(const FaultEndpointSpec& endpoint) {
  using Kind = FaultEndpointSpec::Kind;
  switch (endpoint.kind) {
    case Kind::kAny:
      return "*";
    case Kind::kAnyRegion:
      return "region:*";
    case Kind::kAnyClient:
      return "client:*";
    case Kind::kClient:
      return "client:" + std::to_string(endpoint.client);
    case Kind::kRegion:
      return endpoint.region;
  }
  return "*";
}

bool parse_window(const std::string& start_tok, const std::string& rounds_tok,
                  FaultEvent* event, std::string* error) {
  if (!parse_int(start_tok, &event->start_round) || event->start_round < 0) {
    if (error) *error = "bad start round '" + start_tok + "'";
    return false;
  }
  if (!parse_int(rounds_tok, &event->rounds) || event->rounds < 1) {
    if (error) *error = "bad round count '" + rounds_tok + "'";
    return false;
  }
  return true;
}

}  // namespace

std::optional<FaultEvent> parse_fault_tokens(
    const std::vector<std::string>& tokens, std::string* error) {
  auto fail = [&](const std::string& message) -> std::optional<FaultEvent> {
    if (error) *error = message;
    return std::nullopt;
  };
  if (tokens.empty()) return fail("missing fault kind");
  const std::string& kind = tokens[0];
  FaultEvent event;

  if (kind == "outage") {
    if (tokens.size() != 4) {
      return fail("'outage' expects <region> <start> <rounds>");
    }
    event.kind = FaultEvent::Kind::kOutage;
    if (!parse_endpoint(tokens[1], &event.from, error)) return std::nullopt;
    if (event.from.kind != FaultEndpointSpec::Kind::kRegion) {
      return fail("'outage' needs a concrete region name, got '" + tokens[1] +
                  "'");
    }
    if (!parse_window(tokens[2], tokens[3], &event, error)) return std::nullopt;
    return event;
  }
  if (kind == "partition") {
    if (tokens.size() != 5) {
      return fail("'partition' expects <src> <dst> <start> <rounds>");
    }
    event.kind = FaultEvent::Kind::kPartition;
    if (!parse_endpoint(tokens[1], &event.from, error) ||
        !parse_endpoint(tokens[2], &event.to, error)) {
      return std::nullopt;
    }
    if (!parse_window(tokens[3], tokens[4], &event, error)) return std::nullopt;
    return event;
  }
  if (kind == "delay") {
    if (tokens.size() != 7) {
      return fail(
          "'delay' expects <src> <dst> <start> <rounds> <factor> <extra_ms>");
    }
    event.kind = FaultEvent::Kind::kDelay;
    if (!parse_endpoint(tokens[1], &event.from, error) ||
        !parse_endpoint(tokens[2], &event.to, error)) {
      return std::nullopt;
    }
    if (!parse_window(tokens[3], tokens[4], &event, error)) return std::nullopt;
    if (!parse_double(tokens[5], &event.delay_factor) ||
        event.delay_factor <= 0.0) {
      return fail("bad delay factor '" + tokens[5] + "'");
    }
    if (!parse_double(tokens[6], &event.delay_extra_ms) ||
        event.delay_extra_ms < 0.0) {
      return fail("bad delay extra '" + tokens[6] + "'");
    }
    return event;
  }
  if (kind == "drop") {
    if (tokens.size() != 6) {
      return fail("'drop' expects <src> <dst> <start> <rounds> <probability>");
    }
    event.kind = FaultEvent::Kind::kDrop;
    if (!parse_endpoint(tokens[1], &event.from, error) ||
        !parse_endpoint(tokens[2], &event.to, error)) {
      return std::nullopt;
    }
    if (!parse_window(tokens[3], tokens[4], &event, error)) return std::nullopt;
    if (!parse_double(tokens[5], &event.drop_probability) ||
        event.drop_probability < 0.0 || event.drop_probability > 1.0) {
      return fail("drop probability must be in [0, 1], got '" + tokens[5] +
                  "'");
    }
    return event;
  }
  return fail("unknown fault kind '" + kind + "'");
}

std::optional<FaultSchedule> parse_fault_schedule(std::string_view content,
                                                  std::string* error) {
  FaultSchedule schedule;
  std::istringstream stream{std::string(content)};
  std::string raw;
  int line_no = 0;
  while (std::getline(stream, raw)) {
    ++line_no;
    if (const auto hash = raw.find('#'); hash != std::string::npos) {
      raw.erase(hash);
    }
    std::istringstream line(raw);
    std::vector<std::string> tokens;
    std::string token;
    while (line >> token) tokens.push_back(token);
    if (tokens.empty()) continue;
    if (tokens[0] != "fault") {
      if (error) {
        *error = "line " + std::to_string(line_no) + ": expected 'fault', got '" +
                 tokens[0] + "'";
      }
      return std::nullopt;
    }
    std::string detail;
    auto event = parse_fault_tokens(
        std::vector<std::string>(tokens.begin() + 1, tokens.end()), &detail);
    if (!event) {
      if (error) *error = "line " + std::to_string(line_no) + ": " + detail;
      return std::nullopt;
    }
    schedule.push_back(std::move(*event));
  }
  return schedule;
}

std::string format_fault_event(const FaultEvent& event) {
  const std::string window = " " + std::to_string(event.start_round) + " " +
                             std::to_string(event.rounds);
  switch (event.kind) {
    case FaultEvent::Kind::kOutage:
      return "fault outage " + format_endpoint(event.from) + window;
    case FaultEvent::Kind::kPartition:
      return "fault partition " + format_endpoint(event.from) + " " +
             format_endpoint(event.to) + window;
    case FaultEvent::Kind::kDelay:
      return "fault delay " + format_endpoint(event.from) + " " +
             format_endpoint(event.to) + window + " " +
             format_double(event.delay_factor) + " " +
             format_double(event.delay_extra_ms);
    case FaultEvent::Kind::kDrop:
      return "fault drop " + format_endpoint(event.from) + " " +
             format_endpoint(event.to) + window + " " +
             format_double(event.drop_probability);
  }
  return {};
}

std::string format_fault_schedule(const FaultSchedule& schedule) {
  std::string out;
  for (const auto& event : schedule) {
    out += format_fault_event(event);
    out += '\n';
  }
  return out;
}

}  // namespace multipub::sim
