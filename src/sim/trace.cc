#include "sim/trace.h"

#include <charconv>
#include <sstream>

namespace multipub::sim {
namespace {

template <typename T>
bool parse_number(const std::string& token, T* out) {
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc{} && ptr == end;
}

std::string at_line(int line, const char* message) {
  return "line " + std::to_string(line) + ": " + message;
}

}  // namespace

void TraceRecorder::record(RegionId region,
                           const std::vector<broker::TopicReport>& reports) {
  if (!open_) {
    intervals_.emplace_back();
    open_ = true;
  }
  intervals_.back().ingests.push_back({region, reports});
}

void TraceRecorder::end_interval() { open_ = false; }

std::string TraceRecorder::serialize() const {
  std::string out;
  for (const auto& interval : intervals_) {
    out += "interval\n";
    for (const auto& ingest : interval.ingests) {
      for (const auto& report : ingest.reports) {
        out += "report " + std::to_string(ingest.region.value()) + " " +
               std::to_string(report.topic.value()) + "\n";
        for (const auto& pub : report.publishers) {
          out += "pub " + std::to_string(pub.client.value()) + " " +
                 std::to_string(pub.msg_count) + " " +
                 std::to_string(pub.total_bytes) + "\n";
        }
        for (ClientId sub : report.subscribers) {
          out += "sub " + std::to_string(sub.value()) + "\n";
        }
      }
    }
  }
  return out;
}

std::optional<std::vector<IntervalTrace>> parse_trace(std::string_view text,
                                                      std::string* error) {
  std::vector<IntervalTrace> out;
  IntervalTrace* interval = nullptr;
  TraceIngest* ingest = nullptr;
  broker::TopicReport* report = nullptr;

  std::istringstream stream{std::string(text)};
  std::string line;
  int line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    std::istringstream fields(line);
    std::string kind;
    if (!(fields >> kind)) continue;  // blank line

    if (kind == "interval") {
      out.emplace_back();
      interval = &out.back();
      ingest = nullptr;
      report = nullptr;
    } else if (kind == "report") {
      if (interval == nullptr) {
        if (error) *error = at_line(line_no, "report outside interval");
        return std::nullopt;
      }
      std::string region_token, topic_token;
      std::int32_t region_id = 0, topic_id = 0;
      if (!(fields >> region_token >> topic_token) ||
          !parse_number(region_token, &region_id) ||
          !parse_number(topic_token, &topic_id)) {
        if (error) *error = at_line(line_no, "bad report line");
        return std::nullopt;
      }
      // Reuse the ingest when consecutive reports share the region.
      if (ingest == nullptr || ingest->region != RegionId{region_id}) {
        interval->ingests.push_back({RegionId{region_id}, {}});
        ingest = &interval->ingests.back();
      }
      ingest->reports.emplace_back();
      report = &ingest->reports.back();
      report->topic = TopicId{topic_id};
    } else if (kind == "pub") {
      if (report == nullptr) {
        if (error) *error = at_line(line_no, "pub outside report");
        return std::nullopt;
      }
      std::string client_token, count_token, bytes_token;
      std::int32_t client_id = 0;
      std::uint64_t count = 0, bytes = 0;
      if (!(fields >> client_token >> count_token >> bytes_token) ||
          !parse_number(client_token, &client_id) ||
          !parse_number(count_token, &count) ||
          !parse_number(bytes_token, &bytes)) {
        if (error) *error = at_line(line_no, "bad pub line");
        return std::nullopt;
      }
      report->publishers.push_back({ClientId{client_id}, count, bytes});
    } else if (kind == "sub") {
      if (report == nullptr) {
        if (error) *error = at_line(line_no, "sub outside report");
        return std::nullopt;
      }
      std::string client_token;
      std::int32_t client_id = 0;
      if (!(fields >> client_token) ||
          !parse_number(client_token, &client_id)) {
        if (error) *error = at_line(line_no, "bad sub line");
        return std::nullopt;
      }
      report->subscribers.emplace_back(client_id);
    } else {
      if (error) *error = at_line(line_no, "unknown record kind");
      return std::nullopt;
    }
  }
  return out;
}

std::vector<std::vector<broker::Controller::Decision>> replay_trace(
    const std::vector<IntervalTrace>& trace, broker::Controller& controller,
    const core::OptimizerOptions& options) {
  std::vector<std::vector<broker::Controller::Decision>> out;
  out.reserve(trace.size());
  for (const auto& interval : trace) {
    for (const auto& ingest : interval.ingests) {
      controller.ingest(ingest.region, ingest.reports);
    }
    out.push_back(controller.reconfigure(options));
  }
  return out;
}

}  // namespace multipub::sim
