// Snapshot a live system's operational state into a MetricsRegistry.
//
// Gives operators one flat, renderable view: transport counters and billed
// bytes, per-region broker activity and provisioned servers, client-side
// handover statistics, and the controller's monitoring state.
#pragma once

#include "common/metrics.h"
#include "sim/live_runner.h"

namespace multipub::sim {

/// Collects the registry. Names are stable:
///   transport.messages_sent / .messages_delivered / .messages_dropped /
///             .dropped_unregistered / .dropped_sender_down /
///             .dropped_dead_arrival / .dropped_faulted / .cost_usd
///   region.<name>.inter_region_bytes / .internet_bytes / .delivered /
///                 .forwarded / .drain_forwarded / .filtered / .servers /
///                 .down
///   clients.reconnects / .duplicates / .deliveries
///   controller.latency_observations / .rounds / .topics_tracked /
///             .dirty_last_round / .evaluated_last_round /
///             .skipped_clean_last_round
[[nodiscard]] MetricsRegistry collect_metrics(LiveSystem& live);

/// Window telemetry of the sharded data plane (DESIGN.md §14), DELIBERATELY
/// separate from collect_metrics: that snapshot is byte-compared across
/// shard counts by the differential suites, while these numbers describe the
/// execution engine itself (how the plane was driven, not what it did) and
/// legitimately vary with shards, placement and window policy. All zeros on
/// an unsharded system. Names:
///   dataplane.windows_executed / .window_width_mean_ms /
///             .window_width_max_ms / .events_per_window / .mail_items /
///             .barrier_spins / .barrier_parks
[[nodiscard]] MetricsRegistry collect_window_metrics(const LiveSystem& live);

}  // namespace multipub::sim
