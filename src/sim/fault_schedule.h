// Declarative fault schedules for the chaos harness.
//
// A FaultSchedule is a list of fault events expressed in control ROUNDS
// (the ChaosRunner maps rounds onto the transport's virtual-time fault
// windows) with world-independent endpoints (regions by name), so the same
// schedule text works in scenario files, in the chaos tool's output, and —
// pasted as a string literal — in regression tests. One line per event:
//
//   fault outage <region> <start_round> <rounds>
//   fault partition <src> <dst> <start_round> <rounds>
//   fault delay <src> <dst> <start_round> <rounds> <factor> <extra_ms>
//   fault drop <src> <dst> <start_round> <rounds> <probability>
//
// <src>/<dst> endpoints: '*' (anything), 'region:*', 'client:*',
// 'client:<id>', 'region:<name>' or a bare region name. Windows cover
// rounds [start_round, start_round + rounds).
//
// format_fault_schedule() and parse_fault_schedule() round-trip exactly
// (numbers are printed with %.17g), which is what lets the shrinker print a
// minimal reproducing schedule that a regression test reconstructs from one
// literal.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace multipub::sim {

/// One side of a fault's link pattern, with the region still by NAME (the
/// chaos runner resolves names against a catalog when installing rules).
struct FaultEndpointSpec {
  enum class Kind : std::uint8_t {
    kAny,
    kAnyRegion,
    kAnyClient,
    kRegion,  ///< `region` holds the catalog name
    kClient,  ///< `client` holds the id
  };
  Kind kind = Kind::kAny;
  std::string region;
  std::int32_t client = -1;

  friend bool operator==(const FaultEndpointSpec&,
                         const FaultEndpointSpec&) = default;
};

/// One scheduled fault, active for rounds [start_round, start_round+rounds).
struct FaultEvent {
  enum class Kind : std::uint8_t { kOutage, kPartition, kDelay, kDrop };
  Kind kind = Kind::kOutage;
  /// kOutage: `from` names the dying region (`to` unused). Other kinds:
  /// directed (from -> to) link pattern.
  FaultEndpointSpec from;
  FaultEndpointSpec to;
  int start_round = 0;
  int rounds = 1;
  double delay_factor = 1.0;      ///< kDelay
  Millis delay_extra_ms = 0.0;    ///< kDelay
  double drop_probability = 0.0;  ///< kDrop

  /// Active during round `r`?
  [[nodiscard]] bool covers(int r) const {
    return r >= start_round && r < start_round + rounds;
  }

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

using FaultSchedule = std::vector<FaultEvent>;

/// Parses one event from the whitespace tokens FOLLOWING the 'fault' key
/// (shared with the scenario-file parser). On failure returns nullopt and
/// explains in `error`.
[[nodiscard]] std::optional<FaultEvent> parse_fault_tokens(
    const std::vector<std::string>& tokens, std::string* error);

/// Parses a whole schedule: one 'fault ...' line per event, '#' comments
/// and blank lines ignored. Line numbers are reported in `error`.
[[nodiscard]] std::optional<FaultSchedule> parse_fault_schedule(
    std::string_view content, std::string* error);

/// One canonical 'fault ...' line (no trailing newline).
[[nodiscard]] std::string format_fault_event(const FaultEvent& event);

/// The whole schedule, one line per event, each newline-terminated. Exact
/// round-trip: parse_fault_schedule(format_fault_schedule(s)) == s.
[[nodiscard]] std::string format_fault_schedule(const FaultSchedule& schedule);

}  // namespace multipub::sim
