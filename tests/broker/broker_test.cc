#include "broker/broker.h"

#include <gtest/gtest.h>

#include <map>

#include "net/simulator.h"
#include "net/transport.h"
#include "testutil.h"

namespace multipub::broker {
namespace {

using testutil::TinyWorld;

class BrokerTest : public ::testing::Test {
 protected:
  BrokerTest() {
    // Collect everything delivered to each client address.
    for (ClientId c : {TinyWorld::kNearA, TinyWorld::kNearA2,
                       TinyWorld::kNearB, TinyWorld::kNearC}) {
      transport_.register_handler(
          net::Address::client(c), [this, c](const wire::Message& msg) {
            inbox_[c].push_back(msg);
          });
    }
  }

  wire::Message publish_msg(ClientId publisher, Bytes payload = 1000,
                            wire::WireMode mode = wire::WireMode::kDirect) {
    wire::Message msg;
    msg.type = wire::MessageType::kPublish;
    msg.topic = TopicId{0};
    msg.publisher = publisher;
    msg.seq = next_seq_++;
    msg.published_at = sim_.now();
    msg.payload_bytes = payload;
    msg.config_mode = mode;  // the publisher stamps its fan-out intent
    return msg;
  }

  void subscribe(Broker& broker, ClientId subscriber) {
    wire::Message msg;
    msg.type = wire::MessageType::kSubscribe;
    msg.topic = TopicId{0};
    msg.subscriber = subscriber;
    broker.handle(msg);
  }

  static core::TopicConfig config_ab(core::DeliveryMode mode) {
    geo::RegionSet set;
    set.add(TinyWorld::kA);
    set.add(TinyWorld::kB);
    return {set, mode};
  }

  TinyWorld world_;
  net::Simulator sim_;
  net::SimTransport transport_{sim_, world_.catalog, world_.backbone,
                               world_.clients};
  std::map<ClientId, std::vector<wire::Message>> inbox_;
  std::uint64_t next_seq_ = 0;
};

TEST_F(BrokerTest, DeliversPublicationToLocalSubscribers) {
  Broker broker(TinyWorld::kA, sim_, transport_);
  broker.set_topic_config(TopicId{0}, config_ab(core::DeliveryMode::kDirect));
  subscribe(broker, TinyWorld::kNearA2);
  subscribe(broker, TinyWorld::kNearC);

  broker.handle(publish_msg(TinyWorld::kNearA));
  sim_.run();

  ASSERT_EQ(inbox_[TinyWorld::kNearA2].size(), 1u);
  ASSERT_EQ(inbox_[TinyWorld::kNearC].size(), 1u);
  EXPECT_EQ(inbox_[TinyWorld::kNearA2][0].type, wire::MessageType::kDeliver);
  EXPECT_EQ(inbox_[TinyWorld::kNearA2][0].subscriber, TinyWorld::kNearA2);
  EXPECT_EQ(broker.delivered_count(), 2u);
}

TEST_F(BrokerTest, DirectModeDoesNotForward) {
  Broker broker_a(TinyWorld::kA, sim_, transport_);
  Broker broker_b(TinyWorld::kB, sim_, transport_);
  broker_a.set_topic_config(TopicId{0}, config_ab(core::DeliveryMode::kDirect));
  broker_b.set_topic_config(TopicId{0}, config_ab(core::DeliveryMode::kDirect));
  subscribe(broker_b, TinyWorld::kNearB);

  // Direct mode: the publisher itself sends to each region; broker A must
  // not replicate to B.
  broker_a.handle(publish_msg(TinyWorld::kNearA));
  sim_.run();
  EXPECT_TRUE(inbox_[TinyWorld::kNearB].empty());
}

TEST_F(BrokerTest, RoutedModeForwardsToPeersExactlyOnce) {
  Broker broker_a(TinyWorld::kA, sim_, transport_);
  Broker broker_b(TinyWorld::kB, sim_, transport_);
  broker_a.set_topic_config(TopicId{0}, config_ab(core::DeliveryMode::kRouted));
  broker_b.set_topic_config(TopicId{0}, config_ab(core::DeliveryMode::kRouted));
  subscribe(broker_a, TinyWorld::kNearA2);
  subscribe(broker_b, TinyWorld::kNearB);

  broker_a.handle(
      publish_msg(TinyWorld::kNearA, 1000, wire::WireMode::kRouted));
  sim_.run();

  // Local subscriber served, remote subscriber served via forward.
  EXPECT_EQ(inbox_[TinyWorld::kNearA2].size(), 1u);
  ASSERT_EQ(inbox_[TinyWorld::kNearB].size(), 1u);
  // A forward must not be re-forwarded (no loop): B received kForward and
  // only delivered locally. Exactly one inter-region message was billed.
  EXPECT_EQ(transport_.ledger().inter_region_bytes[TinyWorld::kA.index()],
            1000u);
  EXPECT_EQ(transport_.ledger().inter_region_bytes[TinyWorld::kB.index()], 0u);
}

TEST_F(BrokerTest, DrainForwardedCountsDuplicateFanOut) {
  Broker broker_a(TinyWorld::kA, sim_, transport_);
  broker_a.set_topic_config(TopicId{0}, config_ab(core::DeliveryMode::kRouted));
  EXPECT_EQ(broker_a.drain_forwarded_count(), 0u);

  // The serving set shrinks to {A}: B enters the drain window, and routed
  // publications keep fanning out to it — counted as drain forwards.
  geo::RegionSet only_a;
  only_a.add(TinyWorld::kA);
  broker_a.set_topic_config(TopicId{0},
                            {only_a, core::DeliveryMode::kRouted});
  broker_a.handle(
      publish_msg(TinyWorld::kNearA, 1000, wire::WireMode::kRouted));
  EXPECT_EQ(broker_a.drain_forwarded_count(), 1u);

  // Once the grace period expires, the duplicate fan-out stops.
  sim_.run();  // runs past the scheduled drain expiry
  EXPECT_TRUE(broker_a.draining_regions(TopicId{0}).empty());
  broker_a.handle(
      publish_msg(TinyWorld::kNearA, 1000, wire::WireMode::kRouted));
  EXPECT_EQ(broker_a.drain_forwarded_count(), 1u);
}

TEST_F(BrokerTest, RoutedFanOutSendsOneCopyPerPeerAcrossServingAndDraining) {
  // Region B sits in BOTH the new serving set and the drain window after a
  // reconfiguration {A,B} -> {A,B,C}; the fan-out targets are the UNION, so
  // B must receive exactly one copy (and C, newly serving, one too).
  Broker broker_a(TinyWorld::kA, sim_, transport_);
  std::uint64_t to_b = 0, to_c = 0;
  transport_.register_handler(net::Address::region(TinyWorld::kB),
                              [&](const wire::Message&) { ++to_b; });
  transport_.register_handler(net::Address::region(TinyWorld::kC),
                              [&](const wire::Message&) { ++to_c; });

  broker_a.set_topic_config(TopicId{0}, config_ab(core::DeliveryMode::kRouted));
  geo::RegionSet abc;
  abc.add(TinyWorld::kA);
  abc.add(TinyWorld::kB);
  abc.add(TinyWorld::kC);
  broker_a.set_topic_config(TopicId{0}, {abc, core::DeliveryMode::kRouted});
  ASSERT_TRUE(broker_a.draining_regions(TopicId{0}).contains(TinyWorld::kB));

  broker_a.handle(
      publish_msg(TinyWorld::kNearA, 1000, wire::WireMode::kRouted));
  sim_.run_until(sim_.now() + 500.0);  // deliver forwards, stay in the window

  EXPECT_EQ(to_b, 1u);
  EXPECT_EQ(to_c, 1u);
  EXPECT_EQ(broker_a.forwarded_count(), 2u);
  // B still serves, so neither forward is a drain-only duplicate.
  EXPECT_EQ(broker_a.drain_forwarded_count(), 0u);
  EXPECT_EQ(transport_.ledger().inter_region_bytes[TinyWorld::kA.index()],
            2000u);
}

TEST_F(BrokerTest, DrainOnlyPeerStillGetsExactlyOneCopy) {
  // {A,B} -> {A,C}: B is drain-only, C newly serving; one copy each, and
  // only B's copy counts as a drain forward.
  Broker broker_a(TinyWorld::kA, sim_, transport_);
  std::uint64_t to_b = 0, to_c = 0;
  transport_.register_handler(net::Address::region(TinyWorld::kB),
                              [&](const wire::Message&) { ++to_b; });
  transport_.register_handler(net::Address::region(TinyWorld::kC),
                              [&](const wire::Message&) { ++to_c; });

  broker_a.set_topic_config(TopicId{0}, config_ab(core::DeliveryMode::kRouted));
  geo::RegionSet ac;
  ac.add(TinyWorld::kA);
  ac.add(TinyWorld::kC);
  broker_a.set_topic_config(TopicId{0}, {ac, core::DeliveryMode::kRouted});

  broker_a.handle(
      publish_msg(TinyWorld::kNearA, 1000, wire::WireMode::kRouted));
  sim_.run_until(sim_.now() + 500.0);

  EXPECT_EQ(to_b, 1u);
  EXPECT_EQ(to_c, 1u);
  EXPECT_EQ(broker_a.forwarded_count(), 2u);
  EXPECT_EQ(broker_a.drain_forwarded_count(), 1u);
}

TEST_F(BrokerTest, RoutedDeliveryTimingMatchesEquation2) {
  Broker broker_a(TinyWorld::kA, sim_, transport_);
  Broker broker_b(TinyWorld::kB, sim_, transport_);
  broker_a.set_topic_config(TopicId{0}, config_ab(core::DeliveryMode::kRouted));
  broker_b.set_topic_config(TopicId{0}, config_ab(core::DeliveryMode::kRouted));
  subscribe(broker_b, TinyWorld::kNearB);

  // Inject at broker A as if the publisher's kPublish just arrived
  // (publisher leg simulated by sending through the transport).
  wire::Message msg =
      publish_msg(TinyWorld::kNearA, 1000, wire::WireMode::kRouted);
  transport_.send(net::Address::client(TinyWorld::kNearA),
                  net::Address::region(TinyWorld::kA), msg);
  sim_.run();

  ASSERT_EQ(inbox_[TinyWorld::kNearB].size(), 1u);
  const Millis delivery =
      sim_.now() - inbox_[TinyWorld::kNearB][0].published_at;
  // 10 (pub->A) + 80 (A->B) + 15 (B->nearB) = 105; the last event in the
  // simulation is exactly this delivery.
  EXPECT_DOUBLE_EQ(inbox_[TinyWorld::kNearB][0].published_at, 0.0);
  EXPECT_DOUBLE_EQ(delivery, 105.0);
}

TEST_F(BrokerTest, UnsubscribedClientStopsReceiving) {
  Broker broker(TinyWorld::kA, sim_, transport_);
  broker.set_topic_config(TopicId{0}, config_ab(core::DeliveryMode::kDirect));
  subscribe(broker, TinyWorld::kNearA2);

  broker.handle(publish_msg(TinyWorld::kNearA));
  wire::Message unsub;
  unsub.type = wire::MessageType::kUnsubscribe;
  unsub.topic = TopicId{0};
  unsub.subscriber = TinyWorld::kNearA2;
  broker.handle(unsub);
  broker.handle(publish_msg(TinyWorld::kNearA));
  sim_.run();

  EXPECT_EQ(inbox_[TinyWorld::kNearA2].size(), 1u);
}

TEST_F(BrokerTest, TrafficStatisticsAccumulateAndReset) {
  Broker broker(TinyWorld::kA, sim_, transport_);
  broker.set_topic_config(TopicId{0}, config_ab(core::DeliveryMode::kDirect));

  broker.handle(publish_msg(TinyWorld::kNearA, 100));
  broker.handle(publish_msg(TinyWorld::kNearA, 200));
  broker.handle(publish_msg(TinyWorld::kNearB, 50));

  const auto& traffic = broker.traffic().at(TopicId{0});
  EXPECT_EQ(traffic.at(TinyWorld::kNearA).msg_count, 2u);
  EXPECT_EQ(traffic.at(TinyWorld::kNearA).total_bytes, 300u);
  EXPECT_EQ(traffic.at(TinyWorld::kNearB).msg_count, 1u);

  broker.reset_traffic();
  EXPECT_TRUE(broker.traffic().empty());
}

TEST_F(BrokerTest, PublishWithoutConfigStillDeliversLocally) {
  // A broker that has not yet received the assignment row behaves as a
  // plain single-region pub/sub (no forwarding).
  Broker broker(TinyWorld::kA, sim_, transport_);
  subscribe(broker, TinyWorld::kNearA2);
  broker.handle(publish_msg(TinyWorld::kNearA));
  sim_.run();
  EXPECT_EQ(inbox_[TinyWorld::kNearA2].size(), 1u);
}

}  // namespace
}  // namespace multipub::broker
