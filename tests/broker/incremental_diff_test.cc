// Randomized differential test: the incremental reconfiguration pipeline
// (delta ingest + dirty-topic-only optimization) must produce a deployed
// assignment matrix bit-identical to the full-scan reference under traffic
// churn, membership churn, constraint updates, latency drift, and a region
// outage with recovery.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "broker/controller.h"
#include "common/rng.h"
#include "geo/king_synth.h"
#include "geo/synthetic.h"

namespace multipub::broker {
namespace {

constexpr std::size_t kRegions = 8;
constexpr std::size_t kClientsPerRegion = 4;
constexpr int kTopics = 20;
constexpr int kRounds = 14;
constexpr int kOutageRound = 5;
constexpr int kRecoveryRound = 8;
constexpr int kRefreshRound = 10;

/// Ground truth of the simulated world: what every region would report for
/// every topic if asked for a full snapshot.
struct WorldState {
  // topic -> region -> (publishers, subscribers); absent = no activity.
  struct RegionActivity {
    std::vector<core::PublisherStats> publishers;
    std::vector<ClientId> subscribers;

    friend bool operator==(const RegionActivity& a, const RegionActivity& b) {
      if (a.subscribers != b.subscribers ||
          a.publishers.size() != b.publishers.size()) {
        return false;
      }
      for (std::size_t i = 0; i < a.publishers.size(); ++i) {
        if (a.publishers[i].client != b.publishers[i].client ||
            a.publishers[i].msg_count != b.publishers[i].msg_count ||
            a.publishers[i].total_bytes != b.publishers[i].total_bytes) {
          return false;
        }
      }
      return true;
    }
  };
  std::map<TopicId, std::map<RegionId, RegionActivity>> activity;
};

class IncrementalDiffTest : public ::testing::Test {
 protected:
  IncrementalDiffTest()
      : rng_(4242),
        world_(geo::synthesize_world(kRegions, {}, rng_)),
        population_(geo::synthesize_population(world_.catalog, world_.backbone,
                                               kClientsPerRegion, {}, rng_)),
        incremental_(world_.catalog, world_.backbone, population_.latencies),
        full_(world_.catalog, world_.backbone, population_.latencies) {
    incremental_.set_solver(Controller::Solver::kHeuristic);
    full_.set_solver(Controller::Solver::kHeuristic);
  }

  ClientId random_client() {
    return ClientId{static_cast<ClientId::underlying_type>(
        rng_.uniform_int(0, static_cast<std::int64_t>(population_.size()) - 1))};
  }

  RegionId home_of(ClientId client) {
    return population_.home_region[static_cast<std::size_t>(client.value())];
  }

  /// Seeds every topic with a couple of publishers and subscribers.
  void seed_world() {
    for (int t = 0; t < kTopics; ++t) {
      const TopicId topic{static_cast<TopicId::underlying_type>(t)};
      for (int p = 0; p < 2; ++p) {
        const ClientId pub = random_client();
        auto& at_home = truth_.activity[topic][home_of(pub)];
        at_home.publishers.push_back(
            {pub, static_cast<std::uint64_t>(rng_.uniform_int(5, 50)),
             static_cast<Bytes>(rng_.uniform_int(5, 50) * 1024)});
      }
      for (int s = 0; s < 3; ++s) {
        const ClientId sub = random_client();
        truth_.activity[topic][home_of(sub)].subscribers.push_back(sub);
      }
      normalize(topic);
      const auto constraint = core::DeliveryConstraint{
          90.0, rng_.uniform(120.0, 400.0)};
      incremental_.set_constraint(topic, constraint);
      full_.set_constraint(topic, constraint);
    }
  }

  /// Deduplicates + sorts a topic's truth (the report builders assume it).
  void normalize(TopicId topic) {
    for (auto& [region, act] : truth_.activity[topic]) {
      std::map<ClientId, core::PublisherStats> pubs;
      for (const auto& p : act.publishers) pubs[p.client] = p;
      act.publishers.clear();
      for (const auto& [c, p] : pubs) act.publishers.push_back(p);
      std::set<ClientId> subs(act.subscribers.begin(), act.subscribers.end());
      act.subscribers.assign(subs.begin(), subs.end());
    }
  }

  /// One round of random churn against the ground truth.
  void churn() {
    for (int i = 0; i < 6; ++i) {
      const TopicId topic{
          static_cast<TopicId::underlying_type>(rng_.uniform_int(0, kTopics - 1))};
      switch (rng_.uniform_int(0, 3)) {
        case 0: {  // traffic change (possibly drop to zero)
          auto& regions = truth_.activity[topic];
          if (regions.empty()) break;
          auto it = regions.begin();
          std::advance(it, rng_.uniform_int(
                               0, static_cast<std::int64_t>(regions.size()) - 1));
          if (!it->second.publishers.empty()) {
            auto& pub = it->second.publishers.front();
            if (rng_.uniform(0.0, 1.0) < 0.2) {
              it->second.publishers.erase(it->second.publishers.begin());
            } else {
              pub.msg_count =
                  static_cast<std::uint64_t>(rng_.uniform_int(1, 80));
              pub.total_bytes = pub.msg_count * 1024;
            }
          }
          break;
        }
        case 1: {  // subscriber join
          const ClientId sub = random_client();
          truth_.activity[topic][home_of(sub)].subscribers.push_back(sub);
          break;
        }
        case 2: {  // subscriber leave
          auto& regions = truth_.activity[topic];
          for (auto& [region, act] : regions) {
            if (!act.subscribers.empty()) {
              act.subscribers.erase(act.subscribers.begin());
              break;
            }
          }
          break;
        }
        case 3: {  // constraint update
          const auto constraint = core::DeliveryConstraint{
              90.0, rng_.uniform(120.0, 400.0)};
          incremental_.set_constraint(topic, constraint);
          full_.set_constraint(topic, constraint);
          break;
        }
      }
      normalize(topic);
    }
  }

  /// Builds this round's per-region report stream (deltas against what was
  /// last reported, or complete snapshots on `full_snapshot` rounds) and
  /// feeds the identical stream to BOTH controllers.
  void ingest_round(bool full_snapshot) {
    for (std::size_t r = 0; r < kRegions; ++r) {
      const RegionId region{static_cast<RegionId::underlying_type>(r)};
      std::vector<TopicReport> reports;
      for (int t = 0; t < kTopics; ++t) {
        const TopicId topic{static_cast<TopicId::underlying_type>(t)};
        const auto& regions = truth_.activity[topic];
        const auto now_it = regions.find(region);
        const bool active = now_it != regions.end() &&
                            (!now_it->second.publishers.empty() ||
                             !now_it->second.subscribers.empty());
        const auto& last = last_reported_.activity[topic][region];
        const WorldState::RegionActivity current =
            active ? now_it->second : WorldState::RegionActivity{};
        if (full_snapshot) {
          if (!active) continue;  // snapshots list only live topics
        } else if (current == last) {
          continue;  // unchanged: not part of the delta
        }
        reports.push_back({topic, current.publishers, current.subscribers});
        last_reported_.activity[topic][region] = current;
      }
      incremental_.ingest(region, reports, full_snapshot);
      full_.ingest(region, reports, full_snapshot);
    }
  }

  /// Feeds a few identical latency observations to both controllers.
  void observe_latencies() {
    const RegionId region{
        static_cast<RegionId::underlying_type>(rng_.uniform_int(0, kRegions - 1))};
    std::vector<LatencyReport> reports;
    for (int i = 0; i < 3; ++i) {
      reports.push_back({random_client(), rng_.uniform(10.0, 200.0)});
    }
    incremental_.observe_latencies(region, reports);
    full_.observe_latencies(region, reports);
  }

  Rng rng_;
  geo::SyntheticWorld world_;
  geo::ClientPopulation population_;
  Controller incremental_;
  Controller full_;
  WorldState truth_;
  WorldState last_reported_;
};

TEST_F(IncrementalDiffTest, MatrixBitIdenticalAcrossChurnOutageAndRecovery) {
  seed_world();

  bool saw_skipped_round = false;
  for (int round = 0; round < kRounds; ++round) {
    if (round > 0) churn();
    if (round % 3 == 1) observe_latencies();
    if (round == kOutageRound) {
      const RegionId down{2};
      incremental_.set_region_available(down, false);
      full_.set_region_available(down, false);
    }
    if (round == kRecoveryRound) {
      const RegionId down{2};
      incremental_.set_region_available(down, true);
      full_.set_region_available(down, true);
    }

    ingest_round(/*full_snapshot=*/round == 0 || round == kRefreshRound);
    (void)incremental_.reconfigure();
    (void)full_.reconfigure_full();

    ASSERT_EQ(incremental_.render_assignment_matrix(),
              full_.render_assignment_matrix())
        << "round " << round;

    const auto& stats = incremental_.last_round_stats();
    EXPECT_FALSE(stats.full_scan);
    EXPECT_TRUE(full_.last_round_stats().full_scan);
    EXPECT_EQ(stats.evaluated + stats.skipped_clean + stats.skipped_empty,
              stats.tracked)
        << "round " << round;
    if (round > 0 && stats.skipped_clean > 0) saw_skipped_round = true;
  }
  // The whole point: churn of ~6 events per round against 20 topics must
  // leave some topics clean (otherwise the incremental path optimizes
  // everything and the test proves nothing).
  EXPECT_TRUE(saw_skipped_round);
}

TEST_F(IncrementalDiffTest, TrafficThresholdKeepsPathsIdentical) {
  // A noise gate suppresses re-optimization on both paths equally: the
  // matrices must still match (the store rejects sub-threshold drift before
  // either scan sees it).
  incremental_.set_traffic_threshold(0.25);
  full_.set_traffic_threshold(0.25);
  seed_world();

  for (int round = 0; round < 6; ++round) {
    if (round > 0) {
      // Small drift on every topic: mostly below the 25% gate.
      for (int t = 0; t < kTopics; ++t) {
        const TopicId topic{static_cast<TopicId::underlying_type>(t)};
        for (auto& [region, act] : truth_.activity[topic]) {
          for (auto& pub : act.publishers) {
            const double factor = rng_.uniform(0.9, 1.1);
            pub.msg_count = static_cast<std::uint64_t>(
                static_cast<double>(pub.msg_count) * factor) + 1;
            pub.total_bytes = pub.msg_count * 1024;
          }
        }
        normalize(topic);
      }
    }
    ingest_round(/*full_snapshot=*/round == 0);
    (void)incremental_.reconfigure();
    (void)full_.reconfigure_full();
    ASSERT_EQ(incremental_.render_assignment_matrix(),
              full_.render_assignment_matrix())
        << "round " << round;
  }
}

}  // namespace
}  // namespace multipub::broker
