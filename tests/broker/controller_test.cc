#include "broker/controller.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace multipub::broker {
namespace {

using testutil::TinyWorld;

class ControllerTest : public ::testing::Test {
 protected:
  TinyWorld world_;
  Controller controller_{world_.catalog, world_.backbone, world_.clients};

  static TopicReport report(TopicId topic,
                            std::vector<core::PublisherStats> pubs,
                            std::vector<ClientId> subs) {
    TopicReport r;
    r.topic = topic;
    r.publishers = std::move(pubs);
    r.subscribers = std::move(subs);
    return r;
  }
};

TEST_F(ControllerTest, AggregatesReportsAcrossRegions) {
  controller_.set_constraint(TopicId{0}, {75.0, 200.0});
  controller_.ingest(TinyWorld::kA,
                     {report(TopicId{0}, {{TinyWorld::kNearA, 10, 10000}},
                             {TinyWorld::kNearA2})});
  controller_.ingest(TinyWorld::kB,
                     {report(TopicId{0}, {}, {TinyWorld::kNearB})});

  const auto state = controller_.aggregate(TopicId{0});
  EXPECT_EQ(state.publishers.size(), 1u);
  EXPECT_EQ(state.subscribers.size(), 2u);
  EXPECT_EQ(state.constraint.max, 200.0);
}

TEST_F(ControllerTest, DirectModeDuplicatesAreDeduplicatedByMax) {
  // Under direct delivery both regions saw the same 10 publications; the
  // aggregate must count them once, not twice.
  controller_.set_constraint(TopicId{0}, {75.0, 200.0});
  controller_.ingest(TinyWorld::kA,
                     {report(TopicId{0}, {{TinyWorld::kNearA, 10, 10000}},
                             {TinyWorld::kNearA2})});
  controller_.ingest(TinyWorld::kB,
                     {report(TopicId{0}, {{TinyWorld::kNearA, 10, 10000}},
                             {TinyWorld::kNearB})});

  const auto state = controller_.aggregate(TopicId{0});
  ASSERT_EQ(state.publishers.size(), 1u);
  EXPECT_EQ(state.publishers[0].msg_count, 10u);
  EXPECT_EQ(state.publishers[0].total_bytes, 10000u);
}

TEST_F(ControllerTest, ReconfigurePicksOptimizerAnswer) {
  controller_.set_constraint(TopicId{0}, {75.0, kUnreachable});
  controller_.ingest(
      TinyWorld::kA,
      {report(TopicId{0}, {{TinyWorld::kNearA, 10, 10000}},
              {TinyWorld::kNearA2, TinyWorld::kNearB, TinyWorld::kNearC})});

  const auto decisions = controller_.reconfigure();
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_TRUE(decisions[0].changed);
  // Unconstrained -> cheapest single region A (see optimizer tests).
  EXPECT_EQ(decisions[0].result.config.regions,
            geo::RegionSet::single(TinyWorld::kA));
  ASSERT_NE(controller_.deployed_config(TopicId{0}), nullptr);
  EXPECT_EQ(*controller_.deployed_config(TopicId{0}),
            decisions[0].result.config);
}

TEST_F(ControllerTest, UnchangedOptimumIsReportedAsUnchanged) {
  controller_.set_constraint(TopicId{0}, {75.0, kUnreachable});
  const auto pubs = std::vector<core::PublisherStats>{
      {TinyWorld::kNearA, 10, 10000}};
  const auto subs = std::vector<ClientId>{TinyWorld::kNearA2};

  controller_.ingest(TinyWorld::kA, {report(TopicId{0}, pubs, subs)});
  auto first = controller_.reconfigure();
  ASSERT_EQ(first.size(), 1u);
  EXPECT_TRUE(first[0].changed);

  controller_.ingest(TinyWorld::kA, {report(TopicId{0}, pubs, subs)});
  auto second = controller_.reconfigure();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_FALSE(second[0].changed);
}

TEST_F(ControllerTest, WorkloadShiftTriggersReconfiguration) {
  // Interval 1: only a subscriber near A -> one cheap region A.
  controller_.set_constraint(TopicId{0}, {75.0, 120.0});
  controller_.ingest(TinyWorld::kA,
                     {report(TopicId{0}, {{TinyWorld::kNearA, 10, 10000}},
                             {TinyWorld::kNearA2})});
  const auto first = controller_.reconfigure();
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].result.config.regions,
            geo::RegionSet::single(TinyWorld::kA));

  // Interval 2: a subscriber near B appears; {A} alone gives nearB 115 ms >
  // 120? no, 115 <= 120. Tighten story: subscriber near B with bound 110
  // requires a second region.
  controller_.set_constraint(TopicId{0}, {75.0, 110.0});
  controller_.ingest(TinyWorld::kA,
                     {report(TopicId{0}, {{TinyWorld::kNearA, 10, 10000}},
                             {TinyWorld::kNearA2})});
  controller_.ingest(TinyWorld::kB,
                     {report(TopicId{0}, {}, {TinyWorld::kNearB})});
  const auto second = controller_.reconfigure();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_TRUE(second[0].changed);
  EXPECT_TRUE(second[0].result.constraint_met);
  EXPECT_GE(second[0].result.config.region_count(), 2);
}

TEST_F(ControllerTest, TopicsAreIndependent) {
  // Paper §IV-C: optimizing one topic must not affect another.
  controller_.set_constraint(TopicId{0}, {75.0, kUnreachable});
  controller_.set_constraint(TopicId{1}, {75.0, 110.0});
  controller_.ingest(
      TinyWorld::kA,
      {report(TopicId{0}, {{TinyWorld::kNearA, 5, 5000}}, {TinyWorld::kNearA2}),
       report(TopicId{1}, {{TinyWorld::kNearA, 5, 5000}},
              {TinyWorld::kNearB})});

  const auto decisions = controller_.reconfigure();
  ASSERT_EQ(decisions.size(), 2u);
  EXPECT_EQ(decisions[0].topic, TopicId{0});
  EXPECT_EQ(decisions[1].topic, TopicId{1});
  // Topic 0 unconstrained -> single cheap region; topic 1 needs B coverage.
  EXPECT_EQ(decisions[0].result.config.regions,
            geo::RegionSet::single(TinyWorld::kA));
  EXPECT_TRUE(decisions[1].result.config.regions.contains(TinyWorld::kB));
}

TEST_F(ControllerTest, TopicWithoutSubscribersIsSkipped) {
  controller_.set_constraint(TopicId{0}, {75.0, 100.0});
  controller_.ingest(TinyWorld::kA,
                     {report(TopicId{0}, {{TinyWorld::kNearA, 10, 10000}}, {})});
  EXPECT_TRUE(controller_.reconfigure().empty());
}

TEST_F(ControllerTest, MitigationForceAddsRegionForStrandedSubscriber) {
  // Custom world: four subscribers sit right next to cheap region X; one
  // stranded subscriber is far from X (130 ms) but adjacent to pricier
  // region Y. With ratio 75 the optimizer happily serves everyone from X —
  // the stranded client's deliveries all miss the bound. §IV-D mitigation
  // must force-add Y for them.
  geo::RegionCatalog catalog({
      {RegionId{}, "x", "X", 0.02, 0.05},
      {RegionId{}, "y", "Y", 0.09, 0.20},
  });
  geo::InterRegionLatency backbone(2);
  backbone.set(RegionId{0}, RegionId{1}, 60.0);

  geo::ClientLatencyMap clients(2);
  const ClientId pub = clients.add_client(std::vector<Millis>{10, 30});
  std::vector<ClientId> near;
  for (int i = 0; i < 4; ++i) {
    near.push_back(clients.add_client(std::vector<Millis>{12, 80}));
  }
  const ClientId stranded = clients.add_client(std::vector<Millis>{130, 15});

  Controller controller(catalog, backbone, clients);
  controller.set_constraint(TopicId{0}, {75.0, 110.0});
  controller.enable_mitigation(true);

  std::vector<ClientId> subs = near;
  subs.push_back(stranded);
  controller.ingest(RegionId{0},
                    {report(TopicId{0}, {{pub, 10, 10000}}, subs)});
  const auto decisions = controller.reconfigure();
  ASSERT_EQ(decisions.size(), 1u);

  // Without mitigation the optimum is {X} alone (vanilla controller):
  Controller vanilla(catalog, backbone, clients);
  vanilla.set_constraint(TopicId{0}, {75.0, 110.0});
  vanilla.ingest(RegionId{0},
                 {report(TopicId{0}, {{pub, 10, 10000}}, subs)});
  const auto plain = vanilla.reconfigure();
  ASSERT_EQ(plain.size(), 1u);
  EXPECT_EQ(plain[0].result.config.regions,
            geo::RegionSet::single(RegionId{0}));
  EXPECT_TRUE(plain[0].mitigation_regions.empty());

  // With mitigation, Y joins for the stranded client.
  EXPECT_EQ(decisions[0].mitigation_regions,
            std::vector<RegionId>{RegionId{1}});
  EXPECT_TRUE(decisions[0].result.config.regions.contains(RegionId{1}));
  EXPECT_TRUE(decisions[0].result.config.regions.contains(RegionId{0}));
}

TEST_F(ControllerTest, MitigationIdlesWhenEveryoneIsServed) {
  controller_.set_constraint(TopicId{0}, {75.0, 300.0});
  controller_.enable_mitigation(true);
  controller_.ingest(
      TinyWorld::kA,
      {report(TopicId{0}, {{TinyWorld::kNearA, 10, 10000}},
              {TinyWorld::kNearA2, TinyWorld::kNearB, TinyWorld::kNearC})});
  const auto decisions = controller_.reconfigure();
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_TRUE(decisions[0].mitigation_regions.empty());
}

TEST_F(ControllerTest, HeuristicSolverMatchesExhaustiveOnTinyWorld) {
  controller_.set_constraint(TopicId{0}, {75.0, 110.0});
  const auto pubs = std::vector<core::PublisherStats>{
      {TinyWorld::kNearA, 10, 10000}};
  const auto subs = std::vector<ClientId>{
      TinyWorld::kNearA2, TinyWorld::kNearB, TinyWorld::kNearC};

  controller_.ingest(TinyWorld::kA, {report(TopicId{0}, pubs, subs)});
  const auto exhaustive = controller_.reconfigure();
  ASSERT_EQ(exhaustive.size(), 1u);

  Controller heuristic_controller(world_.catalog, world_.backbone,
                                  world_.clients);
  heuristic_controller.set_constraint(TopicId{0}, {75.0, 110.0});
  heuristic_controller.set_solver(Controller::Solver::kHeuristic);
  heuristic_controller.ingest(TinyWorld::kA, {report(TopicId{0}, pubs, subs)});
  const auto heuristic = heuristic_controller.reconfigure();
  ASSERT_EQ(heuristic.size(), 1u);

  EXPECT_EQ(heuristic[0].result.config, exhaustive[0].result.config);
  EXPECT_TRUE(heuristic[0].result.constraint_met);
}

TEST_F(ControllerTest, HeuristicSolverRespectsOutageMask) {
  controller_.set_solver(Controller::Solver::kHeuristic);
  controller_.set_constraint(TopicId{0}, {75.0, kUnreachable});
  controller_.set_region_available(TinyWorld::kA, false);
  controller_.ingest(
      TinyWorld::kB,
      {report(TopicId{0}, {{TinyWorld::kNearA, 10, 10000}},
              {TinyWorld::kNearA2, TinyWorld::kNearB})});
  const auto decisions = controller_.reconfigure();
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_FALSE(decisions[0].result.config.regions.contains(TinyWorld::kA));
}

TEST_F(ControllerTest, AssignmentMatrixReflectsDeployments) {
  controller_.set_constraint(TopicId{0}, {75.0, kUnreachable});
  controller_.set_constraint(TopicId{1}, {75.0, 110.0});
  controller_.ingest(
      TinyWorld::kA,
      {report(TopicId{0}, {{TinyWorld::kNearA, 5, 5000}}, {TinyWorld::kNearA2}),
       report(TopicId{1}, {{TinyWorld::kNearA, 5, 5000}},
              {TinyWorld::kNearB})});
  (void)controller_.reconfigure();

  const auto matrix = controller_.assignment_matrix();
  ASSERT_EQ(matrix.size(), 2u);
  EXPECT_EQ(matrix[0].topic, TopicId{0});
  EXPECT_EQ(matrix[0].config.regions, geo::RegionSet::single(TinyWorld::kA));
  EXPECT_EQ(matrix[1].topic, TopicId{1});
  EXPECT_TRUE(matrix[1].config.regions.contains(TinyWorld::kB));

  const std::string rendered = controller_.render_assignment_matrix();
  EXPECT_NE(rendered.find("topic 0 | 1 0 0 |"), std::string::npos);
  EXPECT_NE(rendered.find("topic 1 |"), std::string::npos);
}

TEST_F(ControllerTest, IntervalStateClearsAfterReconfigure) {
  controller_.set_constraint(TopicId{0}, {75.0, kUnreachable});
  controller_.ingest(TinyWorld::kA,
                     {report(TopicId{0}, {{TinyWorld::kNearA, 10, 10000}},
                             {TinyWorld::kNearA2})});
  const auto first = controller_.reconfigure();
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(controller_.last_round_stats().evaluated, 1u);
  // No new reports: the topic is clean, so the cached decision is carried
  // forward without re-optimizing.
  const auto second = controller_.reconfigure();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_FALSE(second[0].changed);
  EXPECT_EQ(second[0].result.configs_evaluated, 0u);
  EXPECT_EQ(second[0].result.config, first[0].result.config);
  EXPECT_EQ(controller_.last_round_stats().evaluated, 0u);
  EXPECT_EQ(controller_.last_round_stats().skipped_clean, 1u);
}

}  // namespace
}  // namespace multipub::broker
