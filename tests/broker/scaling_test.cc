#include "broker/scaling.h"

#include <gtest/gtest.h>

namespace multipub::broker {
namespace {

IntraRegionScaler::Params small_servers() {
  IntraRegionScaler::Params p;
  p.server_capacity = 100.0;
  return p;
}

TEST(IntraRegionScaler, LightLoadUsesOneServer) {
  IntraRegionScaler scaler(small_servers());
  const auto a = scaler.rebalance({{TopicId{0}, 30.0}, {TopicId{1}, 20.0}});
  EXPECT_EQ(a.n_servers, 1);
  EXPECT_DOUBLE_EQ(a.server_load[0], 50.0);
  EXPECT_DOUBLE_EQ(a.max_utilization, 0.5);
}

TEST(IntraRegionScaler, PoolGrowsWithLoad) {
  IntraRegionScaler scaler(small_servers());
  // Total 450 over capacity 100 -> 5 servers.
  std::vector<TopicLoad> loads;
  for (int t = 0; t < 9; ++t) loads.push_back({TopicId{t}, 50.0});
  const auto a = scaler.rebalance(loads);
  EXPECT_EQ(a.n_servers, 5);
  // LPT over equal loads: near-perfect balance, nothing above capacity.
  for (double load : a.server_load) {
    EXPECT_LE(load, 100.0 + 1e-9);
  }
}

TEST(IntraRegionScaler, PoolShrinksWhenLoadFalls) {
  IntraRegionScaler scaler(small_servers());
  std::vector<TopicLoad> heavy;
  for (int t = 0; t < 8; ++t) heavy.push_back({TopicId{t}, 50.0});
  EXPECT_EQ(scaler.rebalance(heavy).n_servers, 4);

  const auto shrunk = scaler.rebalance({{TopicId{0}, 50.0}});
  EXPECT_EQ(shrunk.n_servers, 1);
  EXPECT_EQ(scaler.server_of(TopicId{0}), 0);
}

TEST(IntraRegionScaler, StickyAssignmentsAvoidMigrations) {
  IntraRegionScaler scaler(small_servers());
  const std::vector<TopicLoad> loads{{TopicId{0}, 50.0},
                                     {TopicId{1}, 50.0},
                                     {TopicId{2}, 50.0},
                                     {TopicId{3}, 50.0}};
  (void)scaler.rebalance(loads);
  const int s0 = scaler.server_of(TopicId{0});
  const int s1 = scaler.server_of(TopicId{1});
  const int s2 = scaler.server_of(TopicId{2});
  const int s3 = scaler.server_of(TopicId{3});
  EXPECT_EQ(scaler.migrations(), 0u);

  // Small wobble (within stickiness slack): same servers, no migrations.
  (void)scaler.rebalance({{TopicId{0}, 52.0},
                          {TopicId{1}, 49.0},
                          {TopicId{2}, 51.0},
                          {TopicId{3}, 48.0}});
  EXPECT_EQ(scaler.server_of(TopicId{0}), s0);
  EXPECT_EQ(scaler.server_of(TopicId{1}), s1);
  EXPECT_EQ(scaler.server_of(TopicId{2}), s2);
  EXPECT_EQ(scaler.server_of(TopicId{3}), s3);
  EXPECT_EQ(scaler.migrations(), 0u);
}

TEST(IntraRegionScaler, OverloadedTopicMigrates) {
  IntraRegionScaler scaler(small_servers());
  (void)scaler.rebalance({{TopicId{0}, 60.0}, {TopicId{1}, 50.0}});
  // Topic 1 explodes: it cannot stay co-resident within slack.
  const auto a = scaler.rebalance({{TopicId{0}, 60.0}, {TopicId{1}, 150.0}});
  EXPECT_GE(a.n_servers, 3);
  EXPECT_NE(scaler.server_of(TopicId{0}), -1);
  EXPECT_NE(scaler.server_of(TopicId{1}), -1);
}

TEST(IntraRegionScaler, ZeroLoadTopicReleasesAssignment) {
  IntraRegionScaler scaler(small_servers());
  (void)scaler.rebalance({{TopicId{0}, 50.0}});
  EXPECT_EQ(scaler.server_of(TopicId{0}), 0);
  (void)scaler.rebalance({{TopicId{0}, 0.0}});
  EXPECT_EQ(scaler.server_of(TopicId{0}), -1);
}

TEST(IntraRegionScaler, DeterministicAcrossRuns) {
  std::vector<TopicLoad> loads;
  for (int t = 0; t < 12; ++t) {
    loads.push_back({TopicId{t}, 10.0 + 7.0 * static_cast<double>(t % 5)});
  }
  IntraRegionScaler a(small_servers()), b(small_servers());
  (void)a.rebalance(loads);
  (void)b.rebalance(loads);
  for (int t = 0; t < 12; ++t) {
    EXPECT_EQ(a.server_of(TopicId{t}), b.server_of(TopicId{t}));
  }
}

}  // namespace
}  // namespace multipub::broker
