#include "broker/region_manager.h"

#include <gtest/gtest.h>

#include <map>

#include "net/simulator.h"
#include "net/transport.h"
#include "testutil.h"

namespace multipub::broker {
namespace {

using testutil::TinyWorld;

class RegionManagerTest : public ::testing::Test {
 protected:
  RegionManagerTest() : manager_(TinyWorld::kA, sim_, transport_) {
    for (ClientId c : {TinyWorld::kNearA, TinyWorld::kNearA2,
                       TinyWorld::kNearB, TinyWorld::kNearC}) {
      transport_.register_handler(
          net::Address::client(c), [this, c](const wire::Message& msg) {
            inbox_[c].push_back(msg);
          });
    }
  }

  void publish(ClientId publisher, TopicId topic, Bytes bytes) {
    wire::Message msg;
    msg.type = wire::MessageType::kPublish;
    msg.topic = topic;
    msg.publisher = publisher;
    msg.payload_bytes = bytes;
    manager_.broker().handle(msg);
  }

  void subscribe(ClientId subscriber, TopicId topic) {
    wire::Message msg;
    msg.type = wire::MessageType::kSubscribe;
    msg.topic = topic;
    msg.subscriber = subscriber;
    manager_.broker().handle(msg);
  }

  TinyWorld world_;
  net::Simulator sim_;
  net::SimTransport transport_{sim_, world_.catalog, world_.backbone,
                               world_.clients};
  RegionManager manager_;
  std::map<ClientId, std::vector<wire::Message>> inbox_;
};

TEST_F(RegionManagerTest, ReportsCoverTrafficAndSubscriptions) {
  publish(TinyWorld::kNearA, TopicId{0}, 100);
  publish(TinyWorld::kNearA, TopicId{0}, 200);
  subscribe(TinyWorld::kNearA2, TopicId{0});
  subscribe(TinyWorld::kNearB, TopicId{1});  // subscription-only topic

  const auto batch = manager_.collect_reports();
  EXPECT_TRUE(batch.full_snapshot);  // the first collection always is
  const auto& reports = batch.reports;
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].topic, TopicId{0});
  ASSERT_EQ(reports[0].publishers.size(), 1u);
  EXPECT_EQ(reports[0].publishers[0].msg_count, 2u);
  EXPECT_EQ(reports[0].publishers[0].total_bytes, 300u);
  EXPECT_EQ(reports[0].subscribers,
            std::vector<ClientId>{TinyWorld::kNearA2});
  EXPECT_EQ(reports[1].topic, TopicId{1});
  EXPECT_TRUE(reports[1].publishers.empty());
}

TEST_F(RegionManagerTest, CollectResetsTrafficButKeepsSubscriptions) {
  publish(TinyWorld::kNearA, TopicId{0}, 100);
  subscribe(TinyWorld::kNearA2, TopicId{0});
  (void)manager_.collect_reports();

  // Second interval: the traffic stopped, which IS a change — the delta
  // reports the topic once with an empty (authoritative) publisher list.
  const auto second = manager_.collect_reports();
  EXPECT_FALSE(second.full_snapshot);
  ASSERT_EQ(second.reports.size(), 1u);
  EXPECT_TRUE(second.reports[0].publishers.empty());
  EXPECT_EQ(second.reports[0].subscribers.size(), 1u);

  // Third interval: nothing changed anymore — the delta is empty.
  EXPECT_TRUE(manager_.collect_reports().reports.empty());
}

TEST_F(RegionManagerTest, DeltaSkipsTopicsWithUnchangedTraffic) {
  subscribe(TinyWorld::kNearA2, TopicId{0});
  publish(TinyWorld::kNearA, TopicId{0}, 100);
  (void)manager_.collect_reports();

  // Identical traffic next interval: not worth reporting.
  publish(TinyWorld::kNearA, TopicId{0}, 100);
  EXPECT_TRUE(manager_.collect_reports().reports.empty());

  // Different traffic: reported again.
  publish(TinyWorld::kNearA, TopicId{0}, 100);
  publish(TinyWorld::kNearA, TopicId{0}, 100);
  const auto third = manager_.collect_reports();
  ASSERT_EQ(third.reports.size(), 1u);
  EXPECT_EQ(third.reports[0].publishers[0].msg_count, 2u);
}

TEST_F(RegionManagerTest, MembershipChangeTriggersDeltaReport) {
  publish(TinyWorld::kNearA, TopicId{0}, 100);
  (void)manager_.collect_reports();
  publish(TinyWorld::kNearA, TopicId{0}, 100);  // same traffic as before

  subscribe(TinyWorld::kNearA2, TopicId{0});
  const auto batch = manager_.collect_reports();
  ASSERT_EQ(batch.reports.size(), 1u);
  EXPECT_EQ(batch.reports[0].subscribers,
            std::vector<ClientId>{TinyWorld::kNearA2});
}

TEST_F(RegionManagerTest, PeriodicRefreshIsAFullSnapshot) {
  manager_.set_refresh_period(2);
  subscribe(TinyWorld::kNearA2, TopicId{0});
  EXPECT_TRUE(manager_.collect_reports().full_snapshot);   // first
  EXPECT_FALSE(manager_.collect_reports().full_snapshot);  // delta (empty)
  const auto refresh = manager_.collect_reports();         // every 2nd
  EXPECT_TRUE(refresh.full_snapshot);
  // The refresh re-reports even unchanged topics, so the controller can
  // reconcile.
  ASSERT_EQ(refresh.reports.size(), 1u);
  EXPECT_EQ(refresh.reports[0].subscribers.size(), 1u);
}

TEST_F(RegionManagerTest, KnownPublishersArePrunedWhenTopicLeavesRegion) {
  publish(TinyWorld::kNearA, TopicId{0}, 100);
  (void)manager_.collect_reports();
  EXPECT_EQ(manager_.known_publisher_count(TopicId{0}), 1u);

  // The deployed configuration moves the topic away from this region and no
  // local activity remains: the remembered publishers are dropped.
  manager_.broker().set_topic_config(
      TopicId{0}, {geo::RegionSet(0b010), core::DeliveryMode::kRouted});
  (void)manager_.collect_reports();
  EXPECT_EQ(manager_.known_publisher_count(TopicId{0}), 0u);
  EXPECT_EQ(manager_.known_publisher_topic_count(), 0u);
}

TEST_F(RegionManagerTest, KnownPublishersKeptWhileRegionStillServes) {
  publish(TinyWorld::kNearA, TopicId{0}, 100);
  (void)manager_.collect_reports();

  // Region A (bit 0) stays in the serving set: the quiet publisher must
  // keep hearing about configuration changes.
  manager_.broker().set_topic_config(
      TopicId{0}, {geo::RegionSet(0b011), core::DeliveryMode::kRouted});
  (void)manager_.collect_reports();
  EXPECT_EQ(manager_.known_publisher_count(TopicId{0}), 1u);
}

TEST_F(RegionManagerTest, KnownPublisherCapBoundsPerTopicMemory) {
  manager_.set_known_publisher_cap(2);
  publish(TinyWorld::kNearA, TopicId{0}, 10);
  publish(TinyWorld::kNearA2, TopicId{0}, 10);
  publish(TinyWorld::kNearB, TopicId{0}, 10);
  publish(TinyWorld::kNearC, TopicId{0}, 10);
  (void)manager_.collect_reports();
  EXPECT_LE(manager_.known_publisher_count(TopicId{0}), 2u);
}

TEST_F(RegionManagerTest, PublishersSortedDeterministically) {
  publish(TinyWorld::kNearB, TopicId{0}, 10);
  publish(TinyWorld::kNearA, TopicId{0}, 10);
  publish(TinyWorld::kNearC, TopicId{0}, 10);
  const auto reports = manager_.collect_reports().reports;
  ASSERT_EQ(reports.size(), 1u);
  ASSERT_EQ(reports[0].publishers.size(), 3u);
  EXPECT_LT(reports[0].publishers[0].client, reports[0].publishers[1].client);
  EXPECT_LT(reports[0].publishers[1].client, reports[0].publishers[2].client);
}

TEST_F(RegionManagerTest, ApplyConfigNotifiesSubscribersAndKnownPublishers) {
  publish(TinyWorld::kNearA, TopicId{0}, 100);
  subscribe(TinyWorld::kNearA2, TopicId{0});
  (void)manager_.collect_reports();  // learns the publisher

  core::TopicConfig config{geo::RegionSet(0b011), core::DeliveryMode::kRouted};
  manager_.apply_config(TopicId{0}, config);
  sim_.run();

  ASSERT_EQ(inbox_[TinyWorld::kNearA2].size(), 1u);
  EXPECT_EQ(inbox_[TinyWorld::kNearA2][0].type,
            wire::MessageType::kConfigUpdate);
  EXPECT_EQ(inbox_[TinyWorld::kNearA2][0].config_regions.mask(), 0b011u);
  EXPECT_EQ(inbox_[TinyWorld::kNearA2][0].config_mode, wire::WireMode::kRouted);
  // The publisher heard about it too.
  ASSERT_EQ(inbox_[TinyWorld::kNearA].size(), 1u);
  // Uninvolved clients heard nothing.
  EXPECT_TRUE(inbox_[TinyWorld::kNearC].empty());
}

TEST_F(RegionManagerTest, NotifyClientSendsDirectedUpdate) {
  core::TopicConfig config{geo::RegionSet(0b100), core::DeliveryMode::kDirect};
  manager_.notify_client(TopicId{3}, config, TinyWorld::kNearC);
  sim_.run();
  ASSERT_EQ(inbox_[TinyWorld::kNearC].size(), 1u);
  EXPECT_EQ(inbox_[TinyWorld::kNearC][0].topic, TopicId{3});
  EXPECT_EQ(inbox_[TinyWorld::kNearC][0].config_regions.mask(), 0b100u);
}

TEST_F(RegionManagerTest, ScalerSizesPoolFromEgressLoad) {
  // Default capacity is 1 MiB per interval; 2 MiB inbound fanned out to one
  // subscriber needs > 1 server.
  subscribe(TinyWorld::kNearA2, TopicId{0});
  for (int i = 0; i < 4; ++i) {
    publish(TinyWorld::kNearA, TopicId{0}, 512 * 1024);
  }
  (void)manager_.collect_reports();
  EXPECT_GE(manager_.provisioned_servers(), 2);
  EXPECT_NE(manager_.scaler().server_of(TopicId{0}), -1);

  // Idle interval: pool shrinks back.
  (void)manager_.collect_reports();
  EXPECT_EQ(manager_.provisioned_servers(), 1);
}

TEST_F(RegionManagerTest, LatencyReportsDrainOnce) {
  wire::Message report;
  report.type = wire::MessageType::kLatencyReport;
  report.subscriber = TinyWorld::kNearB;
  report.published_at = 17.5;
  manager_.broker().handle(report);

  const auto first = manager_.collect_latency_reports();
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].client, TinyWorld::kNearB);
  EXPECT_DOUBLE_EQ(first[0].one_way_ms, 17.5);
  EXPECT_TRUE(manager_.collect_latency_reports().empty());
}

}  // namespace
}  // namespace multipub::broker
