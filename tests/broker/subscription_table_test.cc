#include "broker/subscription_table.h"

#include <gtest/gtest.h>

namespace multipub::broker {
namespace {

TEST(SubscriptionTable, EmptyTopicHasNoSubscribers) {
  SubscriptionTable table;
  EXPECT_TRUE(table.subscriptions(TopicId{1}).empty());
  EXPECT_EQ(table.topic_count(), 0u);
}

TEST(SubscriptionTable, SubscribeAndLookup) {
  SubscriptionTable table;
  EXPECT_TRUE(table.subscribe(TopicId{1}, ClientId{10}));
  EXPECT_TRUE(table.subscribe(TopicId{1}, ClientId{20}));
  EXPECT_TRUE(table.contains(TopicId{1}, ClientId{10}));
  EXPECT_FALSE(table.contains(TopicId{2}, ClientId{10}));
  EXPECT_EQ(table.subscriptions(TopicId{1}).size(), 2u);
  EXPECT_EQ(table.subscription_count(), 2u);
}

TEST(SubscriptionTable, SubscribeIsIdempotent) {
  SubscriptionTable table;
  EXPECT_TRUE(table.subscribe(TopicId{1}, ClientId{10}));
  EXPECT_FALSE(table.subscribe(TopicId{1}, ClientId{10}));
  EXPECT_EQ(table.subscriptions(TopicId{1}).size(), 1u);
}

TEST(SubscriptionTable, UnsubscribeRemoves) {
  SubscriptionTable table;
  table.subscribe(TopicId{1}, ClientId{10});
  EXPECT_TRUE(table.unsubscribe(TopicId{1}, ClientId{10}));
  EXPECT_FALSE(table.contains(TopicId{1}, ClientId{10}));
  // Topic with no subscribers disappears entirely.
  EXPECT_EQ(table.topic_count(), 0u);
}

TEST(SubscriptionTable, UnsubscribeAbsentIsHarmless) {
  SubscriptionTable table;
  EXPECT_FALSE(table.unsubscribe(TopicId{1}, ClientId{10}));
  table.subscribe(TopicId{1}, ClientId{10});
  EXPECT_FALSE(table.unsubscribe(TopicId{1}, ClientId{99}));
  EXPECT_FALSE(table.unsubscribe(TopicId{9}, ClientId{10}));
  EXPECT_EQ(table.subscription_count(), 1u);
}

TEST(SubscriptionTable, PreservesSubscriptionOrder) {
  SubscriptionTable table;
  for (int i = 0; i < 5; ++i) table.subscribe(TopicId{1}, ClientId{i});
  const auto& subs = table.subscriptions(TopicId{1});
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(subs[static_cast<size_t>(i)].subscriber.value(), i);
  }
}

TEST(SubscriptionTable, TopicsSortedAndLive) {
  SubscriptionTable table;
  table.subscribe(TopicId{5}, ClientId{1});
  table.subscribe(TopicId{2}, ClientId{1});
  table.subscribe(TopicId{9}, ClientId{1});
  const auto topics = table.topics();
  ASSERT_EQ(topics.size(), 3u);
  EXPECT_EQ(topics[0], TopicId{2});
  EXPECT_EQ(topics[1], TopicId{5});
  EXPECT_EQ(topics[2], TopicId{9});
}

TEST(SubscriptionTable, DefaultFilterMatchesEverything) {
  SubscriptionTable table;
  table.subscribe(TopicId{1}, ClientId{10});
  const auto& subs = table.subscriptions(TopicId{1});
  ASSERT_EQ(subs.size(), 1u);
  EXPECT_TRUE(subs[0].filter.match_all());
}

TEST(SubscriptionTable, FilterIsStoredWithSubscription) {
  SubscriptionTable table;
  table.subscribe(TopicId{1}, ClientId{10}, wire::KeyFilter{5, 15});
  const auto& subs = table.subscriptions(TopicId{1});
  ASSERT_EQ(subs.size(), 1u);
  EXPECT_TRUE(subs[0].filter.matches(10));
  EXPECT_FALSE(subs[0].filter.matches(16));
}

TEST(SubscriptionTable, ResubscribeReplacesFilter) {
  SubscriptionTable table;
  table.subscribe(TopicId{1}, ClientId{10}, wire::KeyFilter{0, 4});
  EXPECT_FALSE(table.subscribe(TopicId{1}, ClientId{10},
                               wire::KeyFilter{100, 200}));
  const auto& subs = table.subscriptions(TopicId{1});
  ASSERT_EQ(subs.size(), 1u);
  EXPECT_TRUE(subs[0].filter.matches(150));
  EXPECT_FALSE(subs[0].filter.matches(2));
}

TEST(SubscriptionTable, SubscriberIdsInOrder) {
  SubscriptionTable table;
  table.subscribe(TopicId{1}, ClientId{30});
  table.subscribe(TopicId{1}, ClientId{10});
  const auto ids = table.subscriber_ids(TopicId{1});
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], ClientId{30});
  EXPECT_EQ(ids[1], ClientId{10});
}

TEST(SubscriptionTable, ClientMaySubscribeToManyTopics) {
  SubscriptionTable table;
  for (int t = 0; t < 10; ++t) table.subscribe(TopicId{t}, ClientId{1});
  EXPECT_EQ(table.topic_count(), 10u);
  EXPECT_EQ(table.subscription_count(), 10u);
}

}  // namespace
}  // namespace multipub::broker
