// Bounded per-topic replay ring (DESIGN.md §15): ring semantics against a
// naive map reference, wrap-around, eviction-past-request behaviour, and
// the weight-carrying flock replay path through a real broker.
#include "broker/replay_ring.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "broker/broker.h"
#include "common/rng.h"
#include "net/simulator.h"
#include "net/transport.h"
#include "testutil.h"

namespace multipub::broker {
namespace {

using testutil::TinyWorld;

wire::Message publication(std::uint64_t seq, std::uint64_t key = 0) {
  wire::Message msg;
  msg.type = wire::MessageType::kPublish;
  msg.topic = TopicId{0};
  msg.publisher = ClientId{1};
  msg.seq = seq;
  msg.payload_bytes = 100;
  msg.key = key;
  return msg;
}

TEST(ReplayRing, AppendStampsStrictlyMonotoneOneBasedSequences) {
  ReplayRing ring(8);
  EXPECT_EQ(ring.head(), 0u);
  EXPECT_EQ(ring.oldest_retained(), 1u);  // empty: head + 1
  EXPECT_EQ(ring.append(publication(10)), 1u);
  EXPECT_EQ(ring.append(publication(11)), 2u);
  EXPECT_EQ(ring.head(), 2u);
  EXPECT_EQ(ring.oldest_retained(), 1u);
  EXPECT_EQ(ring.size(), 2u);
}

TEST(ReplayRing, FindReturnsTheEntryStampedWithItsRingSequence) {
  ReplayRing ring(8);
  ring.append(publication(40));
  ring.append(publication(41));
  const wire::Message* entry = ring.find(2);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->seq, 41u);
  EXPECT_EQ(entry->delivery_seq, 2u);
  EXPECT_EQ(ring.find(0), nullptr);
  EXPECT_EQ(ring.find(3), nullptr);  // never appended
}

TEST(ReplayRing, WrapAroundEvictsOldestAndKeepsTheSuffixIntact) {
  ReplayRing ring(4);
  for (std::uint64_t i = 1; i <= 10; ++i) ring.append(publication(100 + i));

  EXPECT_EQ(ring.head(), 10u);
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.oldest_retained(), 7u);
  for (std::uint64_t seq = 1; seq <= 6; ++seq) {
    EXPECT_EQ(ring.find(seq), nullptr) << "seq " << seq << " should be gone";
  }
  for (std::uint64_t seq = 7; seq <= 10; ++seq) {
    const wire::Message* entry = ring.find(seq);
    ASSERT_NE(entry, nullptr) << "seq " << seq << " should survive";
    EXPECT_EQ(entry->seq, 100 + seq);
    EXPECT_EQ(entry->delivery_seq, seq);
  }
}

TEST(ReplayRing, ClearRestartsTheNumbering) {
  ReplayRing ring(4);
  ring.append(publication(1));
  ring.append(publication(2));
  ring.clear();
  EXPECT_EQ(ring.head(), 0u);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.find(1), nullptr);
  EXPECT_EQ(ring.append(publication(3)), 1u);  // fresh ring, fresh numbering
}

TEST(ReplayRing, RandomizedPublishEvictLookupMatchesNaiveMapReference) {
  // The ring against the obvious implementation: a map from ring sequence
  // to publication, trimmed to the last `capacity` entries. Random
  // interleavings of appends and lookups (in-window, evicted, and future
  // sequences) must agree at every step.
  Rng rng(4096);
  for (const std::size_t capacity : {1u, 3u, 16u, 64u}) {
    ReplayRing ring(capacity);
    std::map<std::uint64_t, wire::Message> reference;
    std::uint64_t reference_head = 0;

    for (int step = 0; step < 500; ++step) {
      if (rng.uniform_int(0, 2) != 0) {  // append twice as often as lookup
        const wire::Message msg =
            publication(static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20)),
                        static_cast<std::uint64_t>(rng.uniform_int(0, 7)));
        const std::uint64_t stamped = ring.append(msg);
        reference[++reference_head] = msg;
        if (reference.size() > capacity) reference.erase(reference.begin());
        ASSERT_EQ(stamped, reference_head);
      }
      ASSERT_EQ(ring.head(), reference_head);
      ASSERT_EQ(ring.size(), reference.size());
      ASSERT_EQ(ring.oldest_retained(),
                reference_head - reference.size() + 1);

      // Probe a random sequence around the live window.
      const std::uint64_t probe =
          static_cast<std::uint64_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(reference_head) + 3));
      const wire::Message* got = ring.find(probe);
      const auto ref = reference.find(probe);
      if (ref == reference.end()) {
        ASSERT_EQ(got, nullptr) << "probe " << probe;
      } else {
        ASSERT_NE(got, nullptr) << "probe " << probe;
        ASSERT_EQ(got->seq, ref->second.seq);
        ASSERT_EQ(got->key, ref->second.key);
        ASSERT_EQ(got->delivery_seq, probe);
      }
    }
  }
}

/// Three identical clients near region A, presented as one weight-3 flock.
class OneFlockDirectory : public net::CohortDirectory {
 public:
  [[nodiscard]] std::uint32_t flock_weight(std::int32_t) const override {
    return 3;
  }
  [[nodiscard]] std::span<const ClientId> flock_members(
      std::int32_t) const override {
    return members_;
  }
  [[nodiscard]] Millis flock_latency(std::int32_t,
                                     RegionId) const override {
    return 5.0;
  }
  [[nodiscard]] RegionId flock_home(std::int32_t) const override {
    return TinyWorld::kA;
  }
  [[nodiscard]] RegionId flock_attachment(std::int32_t) const override {
    return TinyWorld::kA;
  }

 private:
  std::vector<ClientId> members_ = {TinyWorld::kNearA, TinyWorld::kNearA2,
                                    TinyWorld::kNearB};
};

/// Broker-level replay service: a reliable broker with a tiny ring,
/// publications flowing through the normal kPublish path.
class ReplayServiceTest : public ::testing::Test {
 protected:
  static constexpr int kFlock = 3;

  ReplayServiceTest() : broker_(TinyWorld::kA, sim_, transport_) {
    transport_.set_cohort_directory(&directory_);
    broker_.set_reliable(true);
    broker_.set_replay_capacity(4);
    geo::RegionSet serving;
    serving.add(TinyWorld::kA);
    broker_.set_topic_config(TopicId{0},
                             {serving, core::DeliveryMode::kDirect});
    transport_.register_handler(
        net::Address::client(TinyWorld::kNearA),
        [this](const wire::Message& msg) { client_inbox_.push_back(msg); });
    transport_.register_handler(
        net::Address::cohort(kFlock),
        [this](const wire::Message& msg) { cohort_inbox_.push_back(msg); });
  }

  void subscribe(ClientId subscriber) {
    wire::Message msg;
    msg.type = wire::MessageType::kSubscribe;
    msg.topic = TopicId{0};
    msg.subscriber = subscriber;
    broker_.handle(msg);
  }

  void publish(std::uint64_t count) {
    for (std::uint64_t i = 0; i < count; ++i) {
      wire::Message msg = publication(next_seq_++);
      msg.published_at = sim_.now();
      broker_.handle(msg);
    }
    sim_.run();
  }

  wire::Message replay_request(std::uint64_t from) {
    wire::Message req;
    req.type = wire::MessageType::kReplayRequest;
    req.topic = TopicId{0};
    req.delivery_seq = from;
    return req;
  }

  TinyWorld world_;
  net::Simulator sim_;
  net::SimTransport transport_{sim_, world_.catalog, world_.backbone,
                               world_.clients};
  OneFlockDirectory directory_;
  Broker broker_;
  std::vector<wire::Message> client_inbox_;
  std::vector<wire::Message> cohort_inbox_;
  std::uint64_t next_seq_ = 0;
};

TEST_F(ReplayServiceTest, RequestPastEvictionServesTheSurvivingSuffix) {
  subscribe(TinyWorld::kNearA);
  publish(10);  // capacity 4: ring retains seqs 7..10
  client_inbox_.clear();

  wire::Message req = replay_request(1);  // asks for evicted history
  req.subscriber = TinyWorld::kNearA;
  broker_.handle(req);
  sim_.run();

  // The documented loss bound: only the retained suffix comes back.
  ASSERT_EQ(client_inbox_.size(), 4u);
  for (std::size_t i = 0; i < client_inbox_.size(); ++i) {
    EXPECT_EQ(client_inbox_[i].type, wire::MessageType::kReplayBatch);
    EXPECT_EQ(client_inbox_[i].delivery_seq, 7 + i);
    EXPECT_EQ(client_inbox_[i].weight, 1u);
  }
}

TEST_F(ReplayServiceTest, WholeFlockReplayCarriesTheFlockWeight) {
  subscribe(ClientId{kFlock});  // the cohort plane subscribes under the
                                // flock id
  publish(3);
  cohort_inbox_.clear();

  wire::Message req = replay_request(2);
  req.key = kFlock + 1;  // flock-addressed: key = flock id + 1, subscriber
  req.weight = 3;        // invalid; one weighted batch stands for 3 members
  broker_.handle(req);
  sim_.run();

  ASSERT_EQ(cohort_inbox_.size(), 2u);  // seqs 2 and 3
  for (std::size_t i = 0; i < cohort_inbox_.size(); ++i) {
    EXPECT_EQ(cohort_inbox_[i].type, wire::MessageType::kReplayBatch);
    EXPECT_EQ(cohort_inbox_[i].delivery_seq, 2 + i);
    EXPECT_EQ(cohort_inbox_[i].weight, 3u);
    EXPECT_FALSE(cohort_inbox_[i].subscriber.valid());
  }
}

TEST_F(ReplayServiceTest, MemberStampedFlockReplayIsWeightOne) {
  subscribe(ClientId{kFlock});
  publish(2);
  cohort_inbox_.clear();

  // A member whose cursor diverged from the flock's shared one asks alone:
  // the batches come back stamped for exactly that member at weight 1.
  wire::Message req = replay_request(1);
  req.key = kFlock + 1;
  req.subscriber = ClientId{42};
  req.weight = 1;
  broker_.handle(req);
  sim_.run();

  ASSERT_EQ(cohort_inbox_.size(), 2u);
  for (const wire::Message& batch : cohort_inbox_) {
    EXPECT_EQ(batch.type, wire::MessageType::kReplayBatch);
    EXPECT_EQ(batch.weight, 1u);
    EXPECT_EQ(batch.subscriber, ClientId{42});
  }
}

TEST_F(ReplayServiceTest, ReplayHonoursTheSubscribersContentFilter) {
  wire::Message sub;
  sub.type = wire::MessageType::kSubscribe;
  sub.topic = TopicId{0};
  sub.subscriber = TinyWorld::kNearA;
  sub.filter = wire::KeyFilter{0, 1};  // keys 0 and 1 only
  broker_.handle(sub);

  for (std::uint64_t k = 0; k < 4; ++k) {
    wire::Message msg = publication(next_seq_++, /*key=*/k);
    msg.published_at = sim_.now();
    broker_.handle(msg);
  }
  sim_.run();
  client_inbox_.clear();

  wire::Message req = replay_request(1);
  req.subscriber = TinyWorld::kNearA;
  broker_.handle(req);
  sim_.run();

  // Keys 2 and 3 were never delivered, so they are not replayed either.
  ASSERT_EQ(client_inbox_.size(), 2u);
  EXPECT_EQ(client_inbox_[0].key, 0u);
  EXPECT_EQ(client_inbox_[1].key, 1u);
}

}  // namespace
}  // namespace multipub::broker
