// Sharded parallel simulator (DESIGN.md §11): conservative time windows
// over per-shard event stores, cross-shard deliveries through sequenced
// mailboxes. The contract under test is bit-identical observables for every
// shard count — the shard count is a performance knob, never a semantic one.
#include "net/simulator.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.h"

namespace multipub::net {
namespace {

/// Per-region trace of (hop counter, arrival time). Each sink is written
/// only by the shard owning its region, so the vectors need no locking.
struct RingSink : DeliverySink {
  Simulator* sim = nullptr;
  std::vector<std::pair<std::uint64_t, Millis>> trace;
  Address self;
  Address next;
  Millis next_latency = 0.0;  ///< >= the configured lookahead
  std::uint64_t max_hops = 0;

  void deliver(const DeliveryEvent& event) override {
    trace.emplace_back(event.msg.seq, sim->now());
    if (event.msg.seq < max_hops) {
      wire::Message msg = event.msg;
      ++msg.seq;
      sim->schedule_delivery_after(next_latency, *this, self, next, msg);
    }
  }
};

/// Four regions in a ring, round-robined over `shards` shards; one token
/// per region circles the ring for `hops` hops. Distinct per-edge latencies
/// and staggered starts keep every destination single-source per instant,
/// so the trace is well-defined independently of the shard count.
std::vector<std::vector<std::pair<std::uint64_t, Millis>>> run_ring(
    std::uint32_t shards, std::uint64_t hops,
    WindowPolicy policy = WindowPolicy::kFixed,
    WindowStats* stats = nullptr) {
  constexpr int kRegions = 4;
  Simulator sim;
  if (shards > 1) {
    ShardMap map;
    map.shards = shards;
    for (int r = 0; r < kRegions; ++r) {
      map.region_shard.push_back(static_cast<std::uint32_t>(r) % shards);
    }
    // Every ring edge is >= 10 ms; any cross-shard edge set shares that
    // lower bound, so 10 is a valid conservative window for every K.
    sim.configure_shards(std::move(map), 10.0);
    sim.set_window_policy(policy);
    if (policy == WindowPolicy::kAdaptive) {
      // Per-(src shard, dst shard) lookaheads; 10 ms is a sound bound for
      // every pair, the diagonal is ignored (rebuilt by the closure).
      std::vector<Millis> la(static_cast<std::size_t>(shards) * shards, 10.0);
      sim.set_lookahead_matrix(std::move(la));
    }
  }

  std::vector<RingSink> sinks(kRegions);
  for (int r = 0; r < kRegions; ++r) {
    sinks[r].sim = &sim;
    sinks[r].self = Address::region(RegionId{r});
    sinks[r].next = Address::region(RegionId{(r + 1) % kRegions});
    sinks[r].next_latency = 10.0 + 0.7 * r;
    sinks[r].max_hops = hops;
  }
  wire::Message msg;
  for (int r = 0; r < kRegions; ++r) {
    msg.seq = 0;
    sim.schedule_delivery_at(0.1 * r, sinks[r], sinks[(r + 3) % 4].self,
                             sinks[r].self, msg);
  }
  sim.run();
  if (stats != nullptr) *stats = sim.window_stats();

  std::vector<std::vector<std::pair<std::uint64_t, Millis>>> traces;
  for (auto& sink : sinks) traces.push_back(std::move(sink.trace));
  return traces;
}

TEST(ShardMapTest, RoutesClientsAndRegionsThroughSeparateTables) {
  ShardMap map;
  map.shards = 3;
  map.region_shard = {0, 1, 2};
  map.client_shard = {2, 2, 0, 1};
  EXPECT_EQ(map.shard_of(Address::region(RegionId{1})), 1u);
  EXPECT_EQ(map.shard_of(Address::region(RegionId{2})), 2u);
  // A client with the same numeric id as a region is a different endpoint.
  EXPECT_EQ(map.shard_of(Address::client(ClientId{1})), 2u);
  EXPECT_EQ(map.shard_of(Address::client(ClientId{3})), 1u);
}

TEST(ShardedSimulator, RingTraceIsBitIdenticalForEveryShardCount) {
  const auto reference = run_ring(1, 40);
  // The tokens actually circled: 4 regions x (40 hops + seeds) arrivals.
  std::size_t total = 0;
  for (const auto& trace : reference) total += trace.size();
  ASSERT_GT(total, 160u);
  for (std::uint32_t shards : {2u, 4u}) {
    const auto traces = run_ring(shards, 40);
    ASSERT_EQ(traces.size(), reference.size());
    for (std::size_t r = 0; r < traces.size(); ++r) {
      // Exact double equality on arrival times: the sharded engine must
      // execute the same arithmetic in the same order, not merely agree
      // approximately.
      EXPECT_EQ(traces[r], reference[r]) << "shards=" << shards
                                         << " region=" << r;
    }
  }
}

TEST(ShardedSimulator, AdaptiveWindowsKeepTheTraceAndExecuteFewerWindows) {
  // The adaptive policy (DESIGN.md §14) may only change window STRUCTURE:
  // same arithmetic in the same order, exactly equal traces — while paying
  // fewer synchronization rounds than fixed pacing on the same workload.
  const auto reference = run_ring(1, 40);
  for (std::uint32_t shards : {2u, 4u}) {
    WindowStats fixed_stats;
    WindowStats adaptive_stats;
    const auto fixed =
        run_ring(shards, 40, WindowPolicy::kFixed, &fixed_stats);
    const auto adaptive =
        run_ring(shards, 40, WindowPolicy::kAdaptive, &adaptive_stats);
    for (std::size_t r = 0; r < reference.size(); ++r) {
      EXPECT_EQ(fixed[r], reference[r]) << "shards=" << shards;
      EXPECT_EQ(adaptive[r], reference[r]) << "shards=" << shards;
    }
    ASSERT_GT(fixed_stats.windows, 0u);
    ASSERT_GT(adaptive_stats.windows, 0u);
    EXPECT_LE(adaptive_stats.windows, fixed_stats.windows)
        << "shards=" << shards;
    // Both policies process every event; only the grouping differs.
    EXPECT_EQ(adaptive_stats.events, fixed_stats.events);
  }
}

TEST(ShardedSimulator, WindowTelemetryCountsRoundsMailAndWidths) {
  WindowStats stats;
  (void)run_ring(2, 40, WindowPolicy::kFixed, &stats);
  EXPECT_GT(stats.windows, 0u);
  EXPECT_GT(stats.events, 0u);
  // The ring crosses shards constantly, so mailboxes must have carried
  // traffic, and every window is at least the 10 ms stride wide.
  EXPECT_GT(stats.mail_items, 0u);
  EXPECT_GE(stats.width_mean(), 10.0);
  EXPECT_GE(stats.width_max, stats.width_mean());
  EXPECT_GT(stats.events_per_window(), 0.0);

  // An unsharded engine reports all-zero telemetry.
  Simulator plain;
  const WindowStats none = plain.window_stats();
  EXPECT_EQ(none.windows, 0u);
  EXPECT_EQ(none.events, 0u);
  EXPECT_EQ(none.mail_items, 0u);
}

TEST(ShardedSimulator, RepeatedRunsOverTheSameEngineTerminate) {
  // Regression guard for the barrier's publication protocol: every run()
  // re-publishes work to parked workers and ends with an acknowledged
  // end-of-run round. A waiter that misses (or double-consumes) one epoch
  // step deadlocks this loop.
  Simulator sim;
  ShardMap map;
  map.shards = 4;
  map.region_shard = {0, 1, 2, 3};
  sim.configure_shards(std::move(map), 5.0);

  struct CountingSink : DeliverySink {
    int count = 0;
    void deliver(const DeliveryEvent&) override { ++count; }
  };
  CountingSink sink;
  wire::Message msg;
  for (int i = 0; i < 50; ++i) {
    sim.schedule_delivery_after(5.0 + i, sink,
                                Address::region(RegionId{i % 4}),
                                Address::region(RegionId{(i + 1) % 4}), msg);
    sim.run();
  }
  EXPECT_EQ(sink.count, 50);
  EXPECT_EQ(sim.processed(), 50u);
}

TEST(ShardedSimulator, OwnerHintedActionsRunOnTheOwningShard) {
  Simulator sim;
  ShardMap map;
  map.shards = 2;
  map.region_shard = {0, 1};
  sim.configure_shards(std::move(map), 5.0);
  ASSERT_TRUE(sim.sharded());
  ASSERT_EQ(sim.shards(), 2u);

  std::uint32_t hinted_shard = 99;
  std::uint32_t nested_shard = 99;
  std::uint32_t default_shard = 99;
  bool was_dispatching = false;
  sim.schedule_at(5.0, Address::region(RegionId{1}), [&] {
    hinted_shard = sim.current_shard();
    was_dispatching = sim.dispatching();
    // A follow-up scheduled from inside a window stays on the same shard:
    // entity timers are entity-local.
    sim.schedule_after(1.0, [&] { nested_shard = sim.current_shard(); });
  });
  sim.schedule_at(5.0, [&] { default_shard = sim.current_shard(); });
  sim.run();
  EXPECT_EQ(hinted_shard, 1u);
  EXPECT_EQ(nested_shard, 1u);
  EXPECT_EQ(default_shard, 0u);  // un-hinted outside-window schedule
  EXPECT_TRUE(was_dispatching);
  EXPECT_FALSE(sim.dispatching());
  EXPECT_EQ(sim.processed(), 3u);
}

TEST(ShardedSimulator, RunUntilStopsAtBoundaryAndKeepsTheRemainder) {
  Simulator sim;
  ShardMap map;
  map.shards = 2;
  map.region_shard = {0, 1};
  sim.configure_shards(std::move(map), 5.0);

  struct CountingSink : DeliverySink {
    int count = 0;
    void deliver(const DeliveryEvent&) override { ++count; }
  };
  CountingSink sink;
  wire::Message msg;
  const Address from = Address::region(RegionId{0});
  const Address to = Address::region(RegionId{1});
  for (Millis t : {10.0, 50.0, 90.0}) {
    sim.schedule_delivery_at(t, sink, from, to, msg);
  }
  sim.run_until(50.0);
  EXPECT_EQ(sink.count, 2);  // boundary event included
  EXPECT_DOUBLE_EQ(sim.now(), 50.0);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(sink.count, 3);
  EXPECT_EQ(sim.processed(), 3u);
}

TEST(ShardedSimulator, TinyLookaheadOnFarApartEventsStillTerminates) {
  // A window narrower than one ulp of the event times must not stall: the
  // engine starts each window at the actual next event time, so sparse
  // event sets take one window per occupied instant, however small the
  // lookahead relative to the clock magnitude.
  Simulator sim;
  ShardMap map;
  map.shards = 2;
  map.region_shard = {0, 1};
  sim.configure_shards(std::move(map), 1e-7);

  struct CountingSink : DeliverySink {
    int count = 0;
    void deliver(const DeliveryEvent&) override { ++count; }
  };
  CountingSink sink;
  wire::Message msg;
  sim.schedule_delivery_at(1.0e9, sink, Address::region(RegionId{0}),
                           Address::region(RegionId{1}), msg);
  sim.schedule_delivery_at(2.0e9, sink, Address::region(RegionId{1}),
                           Address::region(RegionId{0}), msg);
  sim.run();
  EXPECT_EQ(sink.count, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0e9);
}

TEST(ShardedSimulator, ReconfiguringBackToOneShardKeepsTheProcessedCount) {
  Simulator sim;
  ShardMap map;
  map.shards = 2;
  map.region_shard = {0, 1};
  sim.configure_shards(std::move(map), 5.0);
  int fired = 0;
  sim.schedule_at(5.0, Address::region(RegionId{1}), [&] { ++fired; });
  sim.run();
  ASSERT_EQ(sim.processed(), 1u);

  sim.configure_shards(ShardMap{}, 0.0);
  EXPECT_FALSE(sim.sharded());
  EXPECT_EQ(sim.processed(), 1u);  // retired stores fold into the base
  sim.schedule_after(1.0, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.processed(), 2u);
}

}  // namespace
}  // namespace multipub::net
