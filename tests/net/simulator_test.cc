#include "net/simulator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace multipub::net {
namespace {

/// Records the insertion markers (carried in msg.seq) of typed deliveries.
struct RecordingSink : DeliverySink {
  explicit RecordingSink(std::vector<int>& order) : order(&order) {}
  void deliver(const DeliveryEvent& event) override {
    order->push_back(static_cast<int>(event.msg.seq));
  }
  std::vector<int>* order;
};

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, EventsRunInTimestampOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30.0, [&] { order.push_back(3); });
  sim.schedule_at(10.0, [&] { order.push_back(1); });
  sim.schedule_at(20.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 30.0);
}

TEST(Simulator, EqualTimestampsAreFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ClockAdvancesDuringExecution) {
  Simulator sim;
  Millis seen = -1.0;
  sim.schedule_after(42.5, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 42.5);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int hops = 0;
  std::function<void()> hop = [&] {
    if (++hops < 5) sim.schedule_after(10.0, hop);
  };
  sim.schedule_after(0.0, hop);
  sim.run();
  EXPECT_EQ(hops, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 40.0);
}

TEST(Simulator, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  std::vector<Millis> fired;
  sim.schedule_at(10.0, [&] { fired.push_back(10.0); });
  sim.schedule_at(50.0, [&] { fired.push_back(50.0); });
  sim.schedule_at(90.0, [&] { fired.push_back(90.0); });

  sim.run_until(50.0);
  EXPECT_EQ(fired.size(), 2u);  // boundary event included
  EXPECT_DOUBLE_EQ(sim.now(), 50.0);
  EXPECT_EQ(sim.pending(), 1u);

  sim.run_until(100.0);
  EXPECT_EQ(fired.size(), 3u);
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

TEST(Simulator, ProcessedCountsEveryEvent) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_after(1.0 * i, [] {});
  sim.run();
  EXPECT_EQ(sim.processed(), 7u);
}

TEST(Simulator, TypedDeliveriesInterleaveWithActionsInFifoOrder) {
  Simulator sim;
  std::vector<int> order;
  RecordingSink sink(order);
  wire::Message msg;

  // Same timestamp, alternating kinds: dispatch must follow insertion order
  // regardless of the event's representation.
  for (int i = 0; i < 10; ++i) {
    if (i % 2 == 0) {
      sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
    } else {
      msg.seq = static_cast<std::uint64_t>(i);
      sim.schedule_delivery_at(5.0, sink, Address::client(ClientId{0}),
                               Address::client(ClientId{1}), msg);
    }
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, MixedEventOrderingPropertyRandomized) {
  // Property: for any mix of typed and generic events at clashing
  // timestamps, dispatch order equals a stable sort by time — i.e. the
  // (time, seq) FIFO contract of the seed engine, bit for bit.
  Rng rng(4242);
  for (int trial = 0; trial < 20; ++trial) {
    Simulator sim;
    std::vector<int> order;
    RecordingSink sink(order);
    std::vector<std::pair<Millis, int>> scheduled;  // (time, marker)

    const int n = 100;
    wire::Message msg;
    for (int i = 0; i < n; ++i) {
      // A handful of distinct instants guarantees plenty of ties.
      const Millis t = 5.0 * static_cast<double>(rng.uniform_int(0, 4));
      scheduled.emplace_back(t, i);
      if (rng.uniform_int(0, 1) == 0) {
        sim.schedule_at(t, [&order, i] { order.push_back(i); });
      } else {
        msg.seq = static_cast<std::uint64_t>(i);
        sim.schedule_delivery_at(t, sink, Address::client(ClientId{0}),
                                 Address::client(ClientId{1}), msg);
      }
    }
    sim.run();

    std::stable_sort(scheduled.begin(), scheduled.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    ASSERT_EQ(order.size(), scheduled.size());
    for (std::size_t i = 0; i < scheduled.size(); ++i) {
      EXPECT_EQ(order[i], scheduled[i].second) << "trial " << trial;
    }
    EXPECT_EQ(sim.processed(), static_cast<std::uint64_t>(n));
  }
}

TEST(Simulator, DeliveryHandlersCanScheduleFurtherEvents) {
  // Pool-reuse path: a delivery dispatch schedules both another delivery
  // and an action, exercising slot recycling mid-dispatch.
  Simulator sim;
  std::vector<int> order;
  struct ChainSink : DeliverySink {
    Simulator* sim;
    std::vector<int>* order;
    void deliver(const DeliveryEvent& event) override {
      order->push_back(static_cast<int>(event.msg.seq));
      if (event.msg.seq < 3) {
        wire::Message next = event.msg;
        ++next.seq;
        sim->schedule_delivery_after(1.0, *this, event.from, event.to, next);
        sim->schedule_after(0.5, [this] { order->push_back(-1); });
      }
    }
  };
  ChainSink sink;
  sink.sim = &sim;
  sink.order = &order;
  wire::Message msg;
  msg.seq = 0;
  sim.schedule_delivery_at(0.0, sink, Address::client(ClientId{0}),
                           Address::client(ClientId{1}), msg);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, -1, 1, -1, 2, -1, 3}));
}

TEST(Simulator, LateScheduleBeforeRungCoverageStaysOrdered) {
  // Regression: run_until can stop with the clock far below the rung's
  // start (the rung was built from far-future events). A later schedule
  // below rung_start_ would produce a negative bucket index; it must go to
  // the near heap, not be cast to an out-of-range size_t.
  Simulator sim;
  std::vector<Millis> fired;
  sim.schedule_at(5000.0, [&] { fired.push_back(5000.0); });
  sim.run_until(1000.0);
  EXPECT_DOUBLE_EQ(sim.now(), 1000.0);
  sim.schedule_at(1100.0, [&] { fired.push_back(1100.0); });
  sim.schedule_at(1050.0, [&] { fired.push_back(1050.0); });
  sim.run();
  EXPECT_EQ(fired, (std::vector<Millis>{1050.0, 1100.0, 5000.0}));
  EXPECT_EQ(sim.processed(), 3u);
}

TEST(Simulator, LegacySchedulingPreservesFifoContract) {
  Simulator sim;
  sim.set_legacy_scheduling(true);
  ASSERT_TRUE(sim.legacy_scheduling());
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  // Queue is drained, so switching back is allowed.
  sim.set_legacy_scheduling(false);
  EXPECT_FALSE(sim.legacy_scheduling());
}

TEST(Simulator, LegacyAndFastEnginesDispatchIdenticallyForActions) {
  for (bool legacy : {false, true}) {
    Simulator sim;
    sim.set_legacy_scheduling(legacy);
    std::vector<int> order;
    sim.schedule_at(30.0, [&] { order.push_back(3); });
    sim.schedule_at(10.0, [&] { order.push_back(1); });
    sim.schedule_at(10.0, [&] { order.push_back(2); });
    sim.run_until(10.0);
    EXPECT_EQ(order, (std::vector<int>{1, 2})) << "legacy=" << legacy;
    EXPECT_EQ(sim.pending(), 1u);
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3})) << "legacy=" << legacy;
    EXPECT_EQ(sim.processed(), 3u);
  }
}

TEST(Simulator, ZeroDelayEventRunsAtCurrentTime) {
  Simulator sim;
  sim.schedule_at(25.0, [&] {
    sim.schedule_after(0.0, [&] { EXPECT_DOUBLE_EQ(sim.now(), 25.0); });
  });
  sim.run();
  EXPECT_EQ(sim.processed(), 2u);
}

}  // namespace
}  // namespace multipub::net
