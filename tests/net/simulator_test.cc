#include "net/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace multipub::net {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, EventsRunInTimestampOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30.0, [&] { order.push_back(3); });
  sim.schedule_at(10.0, [&] { order.push_back(1); });
  sim.schedule_at(20.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 30.0);
}

TEST(Simulator, EqualTimestampsAreFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ClockAdvancesDuringExecution) {
  Simulator sim;
  Millis seen = -1.0;
  sim.schedule_after(42.5, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 42.5);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int hops = 0;
  std::function<void()> hop = [&] {
    if (++hops < 5) sim.schedule_after(10.0, hop);
  };
  sim.schedule_after(0.0, hop);
  sim.run();
  EXPECT_EQ(hops, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 40.0);
}

TEST(Simulator, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  std::vector<Millis> fired;
  sim.schedule_at(10.0, [&] { fired.push_back(10.0); });
  sim.schedule_at(50.0, [&] { fired.push_back(50.0); });
  sim.schedule_at(90.0, [&] { fired.push_back(90.0); });

  sim.run_until(50.0);
  EXPECT_EQ(fired.size(), 2u);  // boundary event included
  EXPECT_DOUBLE_EQ(sim.now(), 50.0);
  EXPECT_EQ(sim.pending(), 1u);

  sim.run_until(100.0);
  EXPECT_EQ(fired.size(), 3u);
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

TEST(Simulator, ProcessedCountsEveryEvent) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_after(1.0 * i, [] {});
  sim.run();
  EXPECT_EQ(sim.processed(), 7u);
}

TEST(Simulator, ZeroDelayEventRunsAtCurrentTime) {
  Simulator sim;
  sim.schedule_at(25.0, [&] {
    sim.schedule_after(0.0, [&] { EXPECT_DOUBLE_EQ(sim.now(), 25.0); });
  });
  sim.run();
  EXPECT_EQ(sim.processed(), 2u);
}

}  // namespace
}  // namespace multipub::net
