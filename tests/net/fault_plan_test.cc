// Fault-injection layer: asymmetric partitions, time-windowed delay
// inflation and seeded probabilistic drop, wired into the transport. The
// fast and legacy scheduling paths must stay observationally identical
// under every fault kind — the chaos harness relies on it.
#include "net/fault_plan.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <tuple>
#include <vector>

#include "net/transport.h"
#include "testutil.h"

namespace multipub::net {
namespace {

using testutil::TinyWorld;

class FaultPlanTest : public ::testing::Test {
 protected:
  TinyWorld world_;
  Simulator sim_;
  SimTransport transport_{sim_, world_.catalog, world_.backbone,
                          world_.clients};
  FaultPlan plan_{7};

  FaultPlanTest() { transport_.set_fault_plan(&plan_); }

  static wire::Message publication(Bytes payload) {
    wire::Message msg;
    msg.type = wire::MessageType::kPublish;
    msg.topic = TopicId{0};
    msg.payload_bytes = payload;
    return msg;
  }

  /// Registers a counting handler and returns the counter's address.
  std::uint64_t* count_deliveries(Address at) {
    auto counter = std::make_unique<std::uint64_t>(0);
    std::uint64_t* raw = counter.get();
    counters_.push_back(std::move(counter));
    transport_.register_handler(at,
                                [raw](const wire::Message&) { ++*raw; });
    return raw;
  }

  std::vector<std::unique_ptr<std::uint64_t>> counters_;
};

TEST(FaultEndpointTest, MatchingRules) {
  const Address region_a = Address::region(RegionId{0});
  const Address region_b = Address::region(RegionId{1});
  const Address client = Address::client(ClientId{3});

  EXPECT_TRUE(FaultEndpoint::any().matches(region_a));
  EXPECT_TRUE(FaultEndpoint::any().matches(client));
  EXPECT_TRUE(FaultEndpoint::any_region().matches(region_b));
  EXPECT_FALSE(FaultEndpoint::any_region().matches(client));
  EXPECT_TRUE(FaultEndpoint::any_client().matches(client));
  EXPECT_FALSE(FaultEndpoint::any_client().matches(region_a));
  EXPECT_TRUE(FaultEndpoint::region(RegionId{0}).matches(region_a));
  EXPECT_FALSE(FaultEndpoint::region(RegionId{0}).matches(region_b));
  // A client with the same numeric id as a region is a different endpoint.
  EXPECT_FALSE(FaultEndpoint::region(RegionId{3}).matches(client));
  EXPECT_TRUE(FaultEndpoint::client(ClientId{3}).matches(client));
  EXPECT_FALSE(FaultEndpoint::client(ClientId{4}).matches(client));
}

TEST_F(FaultPlanTest, PartitionIsAsymmetric) {
  std::uint64_t* at_a = count_deliveries(Address::region(TinyWorld::kA));
  std::uint64_t* at_b = count_deliveries(Address::region(TinyWorld::kB));

  FaultRule rule;
  rule.kind = FaultRule::Kind::kPartition;
  rule.from = FaultEndpoint::region(TinyWorld::kA);
  rule.to = FaultEndpoint::region(TinyWorld::kB);
  plan_.add(rule);

  transport_.send(Address::region(TinyWorld::kA),
                  Address::region(TinyWorld::kB), publication(100));
  transport_.send(Address::region(TinyWorld::kB),
                  Address::region(TinyWorld::kA), publication(100));
  sim_.run();

  EXPECT_EQ(*at_b, 0u);  // A -> B cut
  EXPECT_EQ(*at_a, 1u);  // B -> A unaffected
  EXPECT_EQ(plan_.partition_dropped(), 1u);
  EXPECT_EQ(transport_.dropped_faulted_count(), 1u);
  // The lost message was sent but never billed (it vanished in transit and
  // billing here mirrors the dead-destination accounting).
  EXPECT_EQ(transport_.sent_count(), 2u);
  EXPECT_EQ(transport_.ledger().inter_region_bytes[TinyWorld::kA.index()],
            0u);
  EXPECT_EQ(transport_.ledger().inter_region_bytes[TinyWorld::kB.index()],
            100u);
}

TEST_F(FaultPlanTest, PartitionWindowIsDrivenByTheSimulatorClock) {
  std::uint64_t* at_b = count_deliveries(Address::region(TinyWorld::kB));

  FaultRule rule;
  rule.kind = FaultRule::Kind::kPartition;
  rule.from = FaultEndpoint::region(TinyWorld::kA);
  rule.to = FaultEndpoint::region(TinyWorld::kB);
  rule.start = 100.0;
  rule.end = 200.0;
  plan_.add(rule);

  const Address a = Address::region(TinyWorld::kA);
  const Address b = Address::region(TinyWorld::kB);
  const wire::Message msg = publication(10);
  // Departure time decides: at 50 (before), 150 (inside), 200 (end is
  // exclusive — the link is back).
  sim_.schedule_at(50.0, [&] { transport_.send(a, b, msg); });
  sim_.schedule_at(150.0, [&] { transport_.send(a, b, msg); });
  sim_.schedule_at(200.0, [&] { transport_.send(a, b, msg); });
  sim_.run();

  EXPECT_EQ(*at_b, 2u);
  EXPECT_EQ(plan_.partition_dropped(), 1u);
}

TEST_F(FaultPlanTest, DelayRulesStretchLatencyAndCompound) {
  std::vector<Millis> arrivals;
  transport_.register_handler(Address::region(TinyWorld::kB),
                              [&](const wire::Message&) {
                                arrivals.push_back(sim_.now());
                              });

  FaultRule stretch;
  stretch.kind = FaultRule::Kind::kDelay;
  stretch.from = FaultEndpoint::any();
  stretch.to = FaultEndpoint::region(TinyWorld::kB);
  stretch.start = 1000.0;
  stretch.delay_factor = 2.0;
  stretch.delay_extra_ms = 30.0;
  plan_.add(stretch);

  const Address a = Address::region(TinyWorld::kA);
  const Address b = Address::region(TinyWorld::kB);
  const wire::Message msg = publication(10);
  // Before the window: nominal 80 ms. Inside: 80 * 2 + 30.
  transport_.send(a, b, msg);
  sim_.schedule_at(1000.0, [&] { transport_.send(a, b, msg); });
  sim_.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_DOUBLE_EQ(arrivals[0], 80.0);
  EXPECT_DOUBLE_EQ(arrivals[1], 1000.0 + 80.0 * 2.0 + 30.0);

  // A second overlapping delay rule compounds: factors multiply, extras add.
  FaultRule second = stretch;
  second.delay_factor = 1.5;
  second.delay_extra_ms = 5.0;
  plan_.add(second);
  arrivals.clear();
  sim_.schedule_at(2000.0, [&] { transport_.send(a, b, msg); });
  sim_.run();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_DOUBLE_EQ(arrivals[0], 2000.0 + 80.0 * 2.0 * 1.5 + 30.0 + 5.0);
  EXPECT_EQ(plan_.delayed(), 2u);
}

TEST_F(FaultPlanTest, DropProbabilityZeroAndOneAreDegenerate) {
  std::uint64_t* at_b = count_deliveries(Address::region(TinyWorld::kB));

  FaultRule drop;
  drop.kind = FaultRule::Kind::kDrop;
  drop.from = FaultEndpoint::region(TinyWorld::kA);
  drop.to = FaultEndpoint::region(TinyWorld::kB);
  drop.drop_probability = 0.0;
  const int keep_all = plan_.add(drop);
  for (int i = 0; i < 50; ++i) {
    transport_.send(Address::region(TinyWorld::kA),
                    Address::region(TinyWorld::kB), publication(10));
  }
  sim_.run();
  EXPECT_EQ(*at_b, 50u);

  plan_.remove(keep_all);
  drop.drop_probability = 1.0;
  plan_.add(drop);
  for (int i = 0; i < 50; ++i) {
    transport_.send(Address::region(TinyWorld::kA),
                    Address::region(TinyWorld::kB), publication(10));
  }
  sim_.run();
  EXPECT_EQ(*at_b, 50u);
  EXPECT_EQ(plan_.random_dropped(), 50u);
  EXPECT_EQ(transport_.dropped_faulted_count(), 50u);
}

TEST(FaultPlanSeed, SameSeedSameDecisions) {
  // Two plans with the same seed consulted with the same sequence make
  // identical drop decisions, message by message.
  FaultRule drop;
  drop.kind = FaultRule::Kind::kDrop;
  drop.drop_probability = 0.5;

  const Address a = Address::region(RegionId{0});
  const Address b = Address::region(RegionId{1});
  auto decisions = [&](std::uint64_t seed) {
    FaultPlan plan(seed);
    plan.add(drop);
    std::vector<bool> out;
    for (int i = 0; i < 200; ++i) {
      out.push_back(plan.apply(a, b, 0.0).dropped);
    }
    return out;
  };
  const auto first = decisions(42);
  EXPECT_EQ(first, decisions(42));
  EXPECT_NE(first, decisions(43));
  // The coin is fair-ish: with p=0.5 over 200 draws, expect 100 +- 40.
  const auto dropped =
      std::count(first.begin(), first.end(), true);
  EXPECT_GT(dropped, 60);
  EXPECT_LT(dropped, 140);
}

TEST(FaultPlanDiff, FastAndLegacyPathsAgreeUnderFaults) {
  // Mini differential: the same fan-out traffic under partitions + drop +
  // delay, one transport on the typed-event fast path, one on the seed's
  // std::function path. Counters, ledger and arrival times must match.
  auto run = [](bool fast_path) {
    TinyWorld world;
    Simulator sim;
    SimTransport transport(sim, world.catalog, world.backbone, world.clients);
    transport.set_fast_path(fast_path);
    FaultPlan plan(99);
    transport.set_fault_plan(&plan);

    FaultRule partition;
    partition.kind = FaultRule::Kind::kPartition;
    partition.from = FaultEndpoint::region(TinyWorld::kC);
    partition.to = FaultEndpoint::any_client();
    partition.start = 500.0;
    plan.add(partition);
    FaultRule drop;
    drop.kind = FaultRule::Kind::kDrop;
    drop.from = FaultEndpoint::any_region();
    drop.to = FaultEndpoint::any();
    drop.drop_probability = 0.3;
    plan.add(drop);
    FaultRule delay;
    delay.kind = FaultRule::Kind::kDelay;
    delay.from = FaultEndpoint::region(TinyWorld::kA);
    delay.to = FaultEndpoint::any_region();
    delay.delay_factor = 1.7;
    delay.delay_extra_ms = 11.0;
    plan.add(delay);

    std::vector<Millis> arrivals;
    auto record = [&](const wire::Message&) { arrivals.push_back(sim.now()); };
    for (int c = 0; c < 4; ++c) {
      transport.register_handler(Address::client(ClientId{c}), record);
    }
    for (int r = 0; r < 3; ++r) {
      transport.register_handler(Address::region(RegionId{r}), record);
    }

    wire::Message msg;
    msg.type = wire::MessageType::kPublish;
    msg.topic = TopicId{0};
    msg.payload_bytes = 64;
    const std::vector<Address> clients = {
        Address::client(ClientId{0}), Address::client(ClientId{1}),
        Address::client(ClientId{2}), Address::client(ClientId{3})};
    const std::vector<Address> peers = {Address::region(TinyWorld::kB),
                                        Address::region(TinyWorld::kC)};
    for (int burst = 0; burst < 10; ++burst) {
      sim.schedule_at(100.0 * burst, [&, burst] {
        msg.seq = static_cast<std::uint64_t>(burst);
        transport.send_batch(Address::region(TinyWorld::kA), peers, msg,
                             wire::MessageType::kForward);
        transport.send_batch(Address::region(TinyWorld::kC), clients, msg,
                             wire::MessageType::kDeliver);
      });
    }
    sim.run();

    return std::make_tuple(arrivals, transport.sent_count(),
                           transport.dropped_count(),
                           transport.dropped_faulted_count(),
                           transport.ledger().inter_region_bytes,
                           transport.ledger().internet_bytes);
  };

  EXPECT_EQ(run(true), run(false));
}

}  // namespace
}  // namespace multipub::net
