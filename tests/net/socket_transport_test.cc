// SocketTransport: the live Bus/Clock implementation, tested in-process by
// running two (or three) transports as pseudo-nodes and pumping both event
// loops from the test thread.
#include "net/socket_transport.h"

#include <gtest/gtest.h>

#include <vector>

namespace multipub::net {
namespace {

wire::Message publication(std::uint64_t seq, Bytes bytes = 1024) {
  wire::Message msg;
  msg.type = wire::MessageType::kPublish;
  msg.topic = TopicId{1};
  msg.publisher = ClientId{3};
  msg.seq = seq;
  msg.payload_bytes = bytes;
  return msg;
}

/// Pumps every transport until `pred` holds or ~budget_ms of wall time
/// passed.
template <typename Pred>
bool pump(std::vector<SocketTransport*> nodes, Pred pred,
          int budget_ms = 5000) {
  for (int elapsed = 0; elapsed < budget_ms; elapsed += 2) {
    for (SocketTransport* node : nodes) node->poll_once(1);
    if (pred()) return true;
  }
  return pred();
}

TEST(SocketTransport, WallClockAdvances) {
  SocketTransport transport;
  const Millis start = transport.now();
  EXPECT_GE(start, 0.0);
  transport.poll_once(5);
  EXPECT_GT(transport.now(), start);
}

TEST(SocketTransport, TimersFireInOrderFromPollOnce) {
  SocketTransport transport;
  std::vector<int> order;
  transport.schedule_after(4.0, [&] { order.push_back(2); });
  transport.schedule_after(1.0, [&] { order.push_back(1); });
  transport.schedule_after(1.0, [&] { order.push_back(3); });  // FIFO at tie
  for (int i = 0; i < 100 && order.size() < 3; ++i) transport.poll_once(2);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(SocketTransport, LocalDeliveryIsDeferredNeverReentrant) {
  SocketTransport transport;
  transport.set_self_node(0);
  transport.set_address_resolver([](Address) { return 0; });
  bool handled = false;
  transport.register_handler(Address::region(RegionId{0}),
                             [&](const wire::Message&) { handled = true; });
  transport.send(Address::client(ClientId{1}), Address::region(RegionId{0}),
                 publication(1));
  EXPECT_FALSE(handled) << "handler ran inside send()";
  for (int i = 0; i < 100 && !handled; ++i) transport.poll_once(2);
  EXPECT_TRUE(handled);
  EXPECT_EQ(transport.delivered_count(), 1u);
}

TEST(SocketTransport, RoutesBetweenTwoNodesByResolver) {
  SocketTransport a;  // node 0
  SocketTransport b;  // node 1
  a.set_self_node(0);
  b.set_self_node(1);
  const auto resolver = [](Address to) {
    return to.kind == Address::Kind::kRegion ? to.id : 0;
  };
  a.set_address_resolver(resolver);
  b.set_address_resolver(resolver);
  ASSERT_TRUE(a.listen(0));
  ASSERT_TRUE(b.listen(0));
  a.add_peer(1, b.port());
  b.add_peer(0, a.port());

  std::vector<wire::Message> inbox;
  b.register_handler(Address::region(RegionId{1}),
                     [&](const wire::Message& m) { inbox.push_back(m); });

  for (std::uint64_t seq = 0; seq < 50; ++seq) {
    a.send(Address::region(RegionId{0}), Address::region(RegionId{1}),
           publication(seq));
  }
  ASSERT_TRUE(pump({&a, &b}, [&] { return inbox.size() == 50; }));
  for (std::uint64_t seq = 0; seq < 50; ++seq) {
    EXPECT_EQ(inbox[seq].seq, seq);
  }
}

TEST(SocketTransport, SendBeforePeerIsUpIsQueuedAndFlushedOnConnect) {
  SocketTransport a;
  a.set_self_node(0);
  a.set_address_resolver([](Address) { return 1; });

  // Peer declared at a port nobody listens on yet: the connect fails, the
  // frame must wait in the outbox.
  SocketTransport probe;
  ASSERT_TRUE(probe.listen(0));
  const std::uint16_t port = probe.port();
  probe.close_all();  // free the port; node 1 will claim it later

  a.add_peer(1, port);
  a.send(Address::region(RegionId{0}), Address::region(RegionId{1}),
         publication(7));
  for (int i = 0; i < 50; ++i) a.poll_once(2);  // connect attempts fail

  SocketTransport b;
  b.set_self_node(1);
  ASSERT_TRUE(b.listen(port));
  std::vector<wire::Message> inbox;
  b.register_handler(Address::region(RegionId{1}),
                     [&](const wire::Message& m) { inbox.push_back(m); });

  ASSERT_TRUE(pump({&a, &b}, [&] { return inbox.size() == 1; }));
  EXPECT_EQ(inbox[0].seq, 7u);
  EXPECT_GE(a.reconnect_count(), 1u);
}

TEST(SocketTransport, BillsRegionEgressLikeTheSimulator) {
  SocketTransport transport;
  transport.set_self_node(0);
  transport.set_address_resolver([](Address) { return 0; });
  transport.register_handler(Address::region(RegionId{1}),
                             [](const wire::Message&) {});
  transport.register_handler(Address::client(ClientId{5}),
                             [](const wire::Message&) {});

  // Region -> region: inter-region meter; region -> client: internet meter;
  // client -> region: not billed. Weight multiplies, control traffic is
  // free.
  wire::Message publish = publication(1, 1000);
  transport.send(Address::region(RegionId{0}), Address::region(RegionId{1}),
                 publish);
  wire::Message deliver = publication(2, 1000);
  deliver.type = wire::MessageType::kDeliver;
  deliver.weight = 3;
  transport.send(Address::region(RegionId{0}), Address::client(ClientId{5}),
                 deliver);
  transport.send(Address::client(ClientId{5}), Address::region(RegionId{0}),
                 publication(3, 1000));
  wire::Message control;
  control.type = wire::MessageType::kHeartbeat;
  transport.send(Address::region(RegionId{0}), Address::region(RegionId{1}),
                 control);

  EXPECT_EQ(transport.inter_region_bytes(RegionId{0}), 1000u);
  EXPECT_EQ(transport.internet_bytes(RegionId{0}), 3000u);
  EXPECT_EQ(transport.inter_region_bytes(RegionId{1}), 0u);

  const geo::RegionCatalog catalog = geo::RegionCatalog::ec2_2016();
  transport.set_catalog(&catalog);
  const geo::Region& region = catalog.at(RegionId{0});
  EXPECT_DOUBLE_EQ(transport.total_cost_dollars(),
                   1000.0 * region.alpha_per_byte() +
                       3000.0 * region.beta_per_byte());
}

TEST(SocketTransport, DrainReportsIdleOnceTrafficStops) {
  SocketTransport a;
  SocketTransport b;
  a.set_self_node(0);
  b.set_self_node(1);
  const auto resolver = [](Address to) { return to.id; };
  a.set_address_resolver(resolver);
  b.set_address_resolver(resolver);
  ASSERT_TRUE(b.listen(0));
  a.add_peer(1, b.port());
  std::uint64_t got = 0;
  b.register_handler(Address::region(RegionId{1}),
                     [&](const wire::Message&) { ++got; });
  a.send(Address::region(RegionId{0}), Address::region(RegionId{1}),
         publication(1));
  ASSERT_TRUE(pump({&a, &b}, [&] { return got == 1; }));
  EXPECT_TRUE(b.drain(/*idle_ms=*/30.0, /*budget_ms=*/2000.0));
}

}  // namespace
}  // namespace multipub::net
