// Region-to-shard placement (DESIGN.md §14): the topology strategy must be
// a pure function of the latency matrix, beat round-robin on the metric it
// optimizes (minimum cross-shard latency) for the EC2-2016 backbone, and
// degrade gracefully on degenerate matrices. Cohort flocks must land on
// their home region's shard under every placement.
#include "net/shard_placement.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "net/address.h"
#include "sim/live_runner.h"
#include "sim/scenario.h"

namespace multipub::net {
namespace {

/// All off-diagonal entries set to `value`.
geo::InterRegionLatency uniform_matrix(std::size_t n, Millis value) {
  geo::InterRegionLatency m(n);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      m.set(RegionId{static_cast<int>(a)}, RegionId{static_cast<int>(b)},
            value);
    }
  }
  return m;
}

/// Shard sizes under an assignment; every shard must be non-empty.
std::vector<std::size_t> shard_sizes(const std::vector<std::uint32_t>& assign,
                                     std::uint32_t shards) {
  std::vector<std::size_t> sizes(shards, 0);
  for (const std::uint32_t s : assign) {
    EXPECT_LT(s, shards);
    ++sizes[s];
  }
  return sizes;
}

TEST(ShardPlacementFlag, ParsesAndNamesRoundTrip) {
  EXPECT_EQ(parse_shard_placement("round-robin"), ShardPlacement::kRoundRobin);
  EXPECT_EQ(parse_shard_placement("topology"), ShardPlacement::kTopology);
  EXPECT_FALSE(parse_shard_placement("roundrobin").has_value());
  EXPECT_FALSE(parse_shard_placement("").has_value());
  for (const auto placement :
       {ShardPlacement::kRoundRobin, ShardPlacement::kTopology}) {
    EXPECT_EQ(parse_shard_placement(shard_placement_name(placement)),
              placement);
  }
}

TEST(ShardPlacement, RoundRobinIsRegionModuloShards) {
  const auto backbone = geo::InterRegionLatency::ec2_2016();
  const auto assign =
      partition_regions(ShardPlacement::kRoundRobin, backbone, 4);
  ASSERT_EQ(assign.size(), backbone.size());
  for (std::size_t r = 0; r < assign.size(); ++r) {
    EXPECT_EQ(assign[r], r % 4);
  }
}

TEST(ShardPlacement, TopologyIsDeterministicAndFillsEveryShard) {
  const auto backbone = geo::InterRegionLatency::ec2_2016();
  for (const std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    const auto a = partition_regions(ShardPlacement::kTopology, backbone,
                                     shards);
    const auto b = partition_regions(ShardPlacement::kTopology, backbone,
                                     shards);
    EXPECT_EQ(a, b) << "shards " << shards;  // pure function of the matrix
    ASSERT_EQ(a.size(), backbone.size());
    // Labels are assigned by first appearance in region-id order, so region
    // 0 always gets label 0, and every shard is non-empty.
    EXPECT_EQ(a[0], 0u);
    for (const std::size_t size : shard_sizes(a, shards)) {
      EXPECT_GT(size, 0u) << "shards " << shards;
    }
  }
}

TEST(ShardPlacement, TopologyBeatsRoundRobinOnEc2Backbone) {
  // The whole point of the strategy: for the same K it must leave at least
  // as wide a minimum cross-shard latency as round-robin — that minimum is
  // the fixed window stride and the floor of every adaptive window.
  const auto backbone = geo::InterRegionLatency::ec2_2016();
  bool strictly_better_somewhere = false;
  for (const std::uint32_t shards : {2u, 4u, 8u}) {
    const auto rr =
        partition_regions(ShardPlacement::kRoundRobin, backbone, shards);
    const auto topo =
        partition_regions(ShardPlacement::kTopology, backbone, shards);
    const Millis rr_min = min_cross_shard_region_latency(backbone, rr);
    const Millis topo_min = min_cross_shard_region_latency(backbone, topo);
    EXPECT_GE(topo_min, rr_min) << "shards " << shards;
    strictly_better_somewhere =
        strictly_better_somewhere || topo_min > rr_min;
  }
  // Round-robin scatters neighbours by construction; clustering must win
  // outright for at least one K on a real matrix.
  EXPECT_TRUE(strictly_better_somewhere);
}

TEST(ShardPlacement, UniformMatrixStillYieldsAValidPartition) {
  // With all links equal the clustering objective is flat: any K-partition
  // is optimal. The tie order (latency, a, b) must still produce a
  // deterministic, full partition with the uniform min everywhere.
  const auto backbone = uniform_matrix(6, 25.0);
  for (const std::uint32_t shards : {2u, 3u}) {
    const auto assign =
        partition_regions(ShardPlacement::kTopology, backbone, shards);
    for (const std::size_t size : shard_sizes(assign, shards)) {
      EXPECT_GT(size, 0u);
    }
    EXPECT_EQ(min_cross_shard_region_latency(backbone, assign), 25.0);
  }
}

TEST(ShardPlacement, SingleRegionAndSingleShardDegenerate) {
  const auto one_region = uniform_matrix(1, 0.0);
  for (const auto placement :
       {ShardPlacement::kRoundRobin, ShardPlacement::kTopology}) {
    EXPECT_EQ(partition_regions(placement, one_region, 1),
              std::vector<std::uint32_t>{0});
  }
  // K = 1 separates nothing: the min cross-shard latency is unreachable
  // (the sharded plane never runs with one shard, but the metric must not
  // lie about it).
  const auto backbone = geo::InterRegionLatency::ec2_2016();
  const auto all_one =
      partition_regions(ShardPlacement::kTopology, backbone, 1);
  EXPECT_TRUE(std::all_of(all_one.begin(), all_one.end(),
                          [](std::uint32_t s) { return s == 0; }));
  EXPECT_EQ(min_cross_shard_region_latency(backbone, all_one), kUnreachable);
}

TEST(ShardPlacement, CohortFlocksLandOnTheirHomeRegionsShard) {
  // The cohort plane co-shards each flock with its home region (its events
  // are that region's egress), whatever the placement strategy chose for
  // the region. Checked through the live system because the assignment is
  // assembled there, not in the partitioner.
  Rng rng(2026);
  sim::WorkloadSpec workload;
  workload.interval_seconds = 5.0;
  workload.ratio = 95.0;
  workload.max_t = 150.0;
  workload.subscriber_replication = 3;  // real weight-3 flocks
  const sim::Scenario scenario = sim::make_scenario(
      {{RegionId{0}, 2, 4}, {RegionId{5}, 2, 4}}, workload, rng);
  for (const auto placement :
       {ShardPlacement::kRoundRobin, ShardPlacement::kTopology}) {
    sim::LiveSystem live(scenario);
    live.set_cohorts(true);
    live.set_shard_placement(placement);
    live.set_shards(4);
    const auto* pool = live.cohort_pool();
    ASSERT_NE(pool, nullptr);
    ASSERT_GT(pool->flock_count(), 0u);
    for (std::size_t f = 0; f < pool->flock_count(); ++f) {
      const auto flock = static_cast<std::int32_t>(f);
      EXPECT_EQ(live.simulator().owner_shard(Address::cohort(flock)),
                live.simulator().owner_shard(
                    Address::region(pool->flock_home(flock))))
          << shard_placement_name(placement) << " flock " << f;
    }
  }
}

}  // namespace
}  // namespace multipub::net
