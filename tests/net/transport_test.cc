#include "net/transport.h"

#include <gtest/gtest.h>

#include <map>
#include <utility>
#include <vector>

#include "testutil.h"

namespace multipub::net {
namespace {

using testutil::TinyWorld;

class TransportTest : public ::testing::Test {
 protected:
  TinyWorld world_;
  Simulator sim_;
  SimTransport transport_{sim_, world_.catalog, world_.backbone,
                          world_.clients};

  static wire::Message publication(Bytes payload) {
    wire::Message msg;
    msg.type = wire::MessageType::kPublish;
    msg.topic = TopicId{0};
    msg.payload_bytes = payload;
    return msg;
  }
};

TEST_F(TransportTest, DeliversAfterClientToRegionLatency) {
  Millis delivered_at = -1.0;
  transport_.register_handler(Address::region(TinyWorld::kA),
                              [&](const wire::Message&) {
                                delivered_at = sim_.now();
                              });
  transport_.send(Address::client(TinyWorld::kNearA),
                  Address::region(TinyWorld::kA), publication(100));
  sim_.run();
  EXPECT_DOUBLE_EQ(delivered_at, 10.0);  // L[nearA][A] = 10
}

TEST_F(TransportTest, DeliversAfterBackboneLatency) {
  Millis delivered_at = -1.0;
  transport_.register_handler(Address::region(TinyWorld::kB),
                              [&](const wire::Message&) {
                                delivered_at = sim_.now();
                              });
  transport_.send(Address::region(TinyWorld::kA),
                  Address::region(TinyWorld::kB), publication(100));
  sim_.run();
  EXPECT_DOUBLE_EQ(delivered_at, 80.0);  // backbone A-B
}

TEST_F(TransportTest, RegionToClientUsesSameMatrixAsClientToRegion) {
  EXPECT_DOUBLE_EQ(transport_.latency(Address::region(TinyWorld::kB),
                                      Address::client(TinyWorld::kNearB)),
                   15.0);
  EXPECT_DOUBLE_EQ(transport_.latency(Address::client(TinyWorld::kNearB),
                                      Address::region(TinyWorld::kB)),
                   15.0);
}

TEST_F(TransportTest, ClientEgressIsFree) {
  transport_.register_handler(Address::region(TinyWorld::kA),
                              [](const wire::Message&) {});
  transport_.send(Address::client(TinyWorld::kNearA),
                  Address::region(TinyWorld::kA), publication(1'000'000));
  sim_.run();
  EXPECT_DOUBLE_EQ(transport_.ledger().total_cost(world_.catalog), 0.0);
}

TEST_F(TransportTest, RegionToRegionBilledAtAlpha) {
  transport_.register_handler(Address::region(TinyWorld::kB),
                              [](const wire::Message&) {});
  transport_.send(Address::region(TinyWorld::kA),
                  Address::region(TinyWorld::kB), publication(1000));
  sim_.run();
  EXPECT_EQ(transport_.ledger().inter_region_bytes[0], 1000u);
  EXPECT_EQ(transport_.ledger().internet_bytes[0], 0u);
  EXPECT_DOUBLE_EQ(transport_.ledger().total_cost(world_.catalog),
                   1000.0 * per_gb_to_per_byte(0.02));
}

TEST_F(TransportTest, RegionToClientBilledAtBeta) {
  transport_.register_handler(Address::client(TinyWorld::kNearB),
                              [](const wire::Message&) {});
  wire::Message msg = publication(2000);
  msg.type = wire::MessageType::kDeliver;
  transport_.send(Address::region(TinyWorld::kB),
                  Address::client(TinyWorld::kNearB), msg);
  sim_.run();
  EXPECT_EQ(transport_.ledger().internet_bytes[1], 2000u);
  EXPECT_DOUBLE_EQ(transport_.ledger().total_cost(world_.catalog),
                   2000.0 * per_gb_to_per_byte(0.14));
}

TEST_F(TransportTest, ControlMessagesAreNotBilled) {
  transport_.register_handler(Address::client(TinyWorld::kNearA),
                              [](const wire::Message&) {});
  wire::Message msg;
  msg.type = wire::MessageType::kConfigUpdate;
  msg.payload_bytes = 999;  // even with a payload size set, control is free
  transport_.send(Address::region(TinyWorld::kA),
                  Address::client(TinyWorld::kNearA), msg);
  sim_.run();
  EXPECT_DOUBLE_EQ(transport_.ledger().total_cost(world_.catalog), 0.0);
}

TEST_F(TransportTest, UnregisteredDestinationCountsAsDropped) {
  transport_.send(Address::region(TinyWorld::kA),
                  Address::region(TinyWorld::kB), publication(500));
  sim_.run();
  EXPECT_EQ(transport_.dropped_count(), 1u);
  // Billing still happened: the bytes left region A.
  EXPECT_EQ(transport_.ledger().inter_region_bytes[0], 500u);
}

TEST_F(TransportTest, HandlerReplacementTakesEffect) {
  int first = 0, second = 0;
  const Address addr = Address::region(TinyWorld::kA);
  transport_.register_handler(addr, [&](const wire::Message&) { ++first; });
  transport_.register_handler(addr, [&](const wire::Message&) { ++second; });
  transport_.send(Address::client(TinyWorld::kNearA), addr, publication(1));
  sim_.run();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST_F(TransportTest, HandlerMayRegisterNewHandlersMidDelivery) {
  // Regression: client churn registers handlers from within a delivery
  // handler, growing the dense table the executing handler lives in. The
  // deque-backed table must leave the executing std::function in place
  // (a vector reallocation would move it mid-call — UB under ASan).
  bool relayed = false;
  transport_.register_handler(
      Address::client(TinyWorld::kNearA), [&](const wire::Message& m) {
        if (m.type == wire::MessageType::kDeliver) {
          relayed = true;
          return;
        }
        // Enough new registrations to force the table past any initial
        // capacity while this handler is on the stack.
        for (int i = 100; i < 400; ++i) {
          transport_.register_handler(Address::client(ClientId{i}),
                                      [](const wire::Message&) {});
        }
        wire::Message copy = m;
        copy.type = wire::MessageType::kDeliver;
        transport_.send(Address::region(TinyWorld::kA),
                        Address::client(TinyWorld::kNearA), copy);
      });
  transport_.send(Address::region(TinyWorld::kA),
                  Address::client(TinyWorld::kNearA), publication(10));
  sim_.run();
  EXPECT_TRUE(relayed);
}

TEST_F(TransportTest, MessagePayloadSurvivesTransit) {
  wire::Message received;
  transport_.register_handler(Address::region(TinyWorld::kA),
                              [&](const wire::Message& m) { received = m; });
  wire::Message sent = publication(777);
  sent.seq = 42;
  sent.publisher = TinyWorld::kNearA;
  transport_.send(Address::client(TinyWorld::kNearA),
                  Address::region(TinyWorld::kA), sent);
  sim_.run();
  EXPECT_EQ(received, sent);
}

TEST_F(TransportTest, SendBatchStampsTypeAndPerTargetSubscriber) {
  std::map<int, wire::Message> received;  // keyed by client id
  for (ClientId c : {TinyWorld::kNearA, TinyWorld::kNearA2, TinyWorld::kNearB}) {
    transport_.register_handler(Address::client(c),
                                [&received, c](const wire::Message& m) {
                                  received[c.value()] = m;
                                });
  }
  const std::vector<Address> targets = {Address::client(TinyWorld::kNearA),
                                        Address::client(TinyWorld::kNearA2),
                                        Address::client(TinyWorld::kNearB)};
  wire::Message msg = publication(1000);
  msg.publisher = TinyWorld::kNearC;
  msg.seq = 7;
  transport_.send_batch(Address::region(TinyWorld::kA), targets, msg,
                        wire::MessageType::kDeliver);
  sim_.run();

  ASSERT_EQ(received.size(), 3u);
  for (ClientId c : {TinyWorld::kNearA, TinyWorld::kNearA2, TinyWorld::kNearB}) {
    const wire::Message& m = received.at(c.value());
    EXPECT_EQ(m.type, wire::MessageType::kDeliver);
    EXPECT_EQ(m.subscriber, c);  // stamped per target
    EXPECT_EQ(m.publisher, TinyWorld::kNearC);
    EXPECT_EQ(m.seq, 7u);
    EXPECT_EQ(m.payload_bytes, 1000u);
  }
  // One billable egress per target at region A's Internet rate.
  EXPECT_EQ(transport_.ledger().internet_bytes[0], 3000u);
  EXPECT_EQ(transport_.sent_count(), 3u);
}

TEST_F(TransportTest, SendBatchMatchesPerTargetSendLoopExactly) {
  // The batch must be observationally identical to the seed's per-target
  // copy-and-send loop: same ledger, same topic cost, same delivery times.
  TinyWorld world2;
  Simulator sim2;
  SimTransport reference(sim2, world2.catalog, world2.backbone,
                         world2.clients);

  std::vector<std::pair<Millis, wire::Message>> got_batch, got_loop;
  for (ClientId c : {TinyWorld::kNearA, TinyWorld::kNearB}) {
    transport_.register_handler(Address::client(c),
                                [&, this](const wire::Message& m) {
                                  got_batch.emplace_back(sim_.now(), m);
                                });
    reference.register_handler(Address::client(c),
                               [&](const wire::Message& m) {
                                 got_loop.emplace_back(sim2.now(), m);
                               });
  }
  transport_.register_handler(Address::region(TinyWorld::kB),
                              [&, this](const wire::Message& m) {
                                got_batch.emplace_back(sim_.now(), m);
                              });
  reference.register_handler(Address::region(TinyWorld::kB),
                             [&](const wire::Message& m) {
                               got_loop.emplace_back(sim2.now(), m);
                             });

  const wire::Message msg = publication(1234);
  const std::vector<Address> targets = {Address::region(TinyWorld::kB),
                                        Address::client(TinyWorld::kNearA),
                                        Address::client(TinyWorld::kNearB)};
  transport_.send_batch(Address::region(TinyWorld::kA), targets, msg,
                        wire::MessageType::kForward);
  for (const Address to : targets) {
    wire::Message copy = msg;
    copy.type = wire::MessageType::kForward;
    if (to.kind == Address::Kind::kClient) copy.subscriber = to.as_client();
    reference.send(Address::region(TinyWorld::kA), to, copy);
  }
  sim_.run();
  sim2.run();

  ASSERT_EQ(got_batch.size(), got_loop.size());
  for (std::size_t i = 0; i < got_batch.size(); ++i) {
    EXPECT_DOUBLE_EQ(got_batch[i].first, got_loop[i].first);
    EXPECT_EQ(got_batch[i].second, got_loop[i].second);
  }
  EXPECT_EQ(transport_.sent_count(), reference.sent_count());
  EXPECT_EQ(transport_.ledger().inter_region_bytes,
            reference.ledger().inter_region_bytes);
  EXPECT_EQ(transport_.ledger().internet_bytes,
            reference.ledger().internet_bytes);
  EXPECT_DOUBLE_EQ(transport_.topic_cost(TopicId{0}),
                   reference.topic_cost(TopicId{0}));
}

TEST_F(TransportTest, SendBatchFromDownRegionDropsEverythingUnbilled) {
  transport_.set_region_down(TinyWorld::kA, true);
  const std::vector<Address> targets = {Address::client(TinyWorld::kNearA),
                                        Address::client(TinyWorld::kNearB)};
  transport_.send_batch(Address::region(TinyWorld::kA), targets,
                        publication(500), wire::MessageType::kDeliver);
  sim_.run();
  EXPECT_EQ(transport_.sent_count(), 0u);
  EXPECT_EQ(transport_.dropped_count(), 2u);
  EXPECT_DOUBLE_EQ(transport_.ledger().total_cost(world_.catalog), 0.0);
}

TEST_F(TransportTest, SendBatchSkipsDownTargetButBillsTheRest) {
  wire::Message seen;
  transport_.register_handler(Address::region(TinyWorld::kC),
                              [&](const wire::Message& m) { seen = m; });
  transport_.set_region_down(TinyWorld::kB, true);
  const std::vector<Address> targets = {Address::region(TinyWorld::kB),
                                        Address::region(TinyWorld::kC)};
  transport_.send_batch(Address::region(TinyWorld::kA), targets,
                        publication(500), wire::MessageType::kForward);
  sim_.run();
  EXPECT_EQ(transport_.sent_count(), 2u);   // the drop still counts as a send
  EXPECT_EQ(transport_.dropped_count(), 1u);
  EXPECT_EQ(transport_.ledger().inter_region_bytes[0], 500u);  // C only
  EXPECT_EQ(seen.type, wire::MessageType::kForward);
}

TEST_F(TransportTest, UnregisteredDeliveriesAreCountedSeparately) {
  for (bool fast : {true, false}) {
    TinyWorld world;
    Simulator sim;
    SimTransport transport(sim, world.catalog, world.backbone, world.clients);
    transport.set_fast_path(fast);
    transport.send(Address::region(TinyWorld::kA),
                   Address::region(TinyWorld::kB), publication(500));
    sim.run();
    EXPECT_EQ(transport.dropped_count(), 1u) << "fast=" << fast;
    EXPECT_EQ(transport.dropped_unregistered_count(), 1u) << "fast=" << fast;
    // A drop at a down region is NOT an unregistered drop.
    transport.set_region_down(TinyWorld::kC, true);
    transport.send(Address::region(TinyWorld::kA),
                   Address::region(TinyWorld::kC), publication(500));
    sim.run();
    EXPECT_EQ(transport.dropped_count(), 2u) << "fast=" << fast;
    EXPECT_EQ(transport.dropped_unregistered_count(), 1u) << "fast=" << fast;
  }
}

TEST_F(TransportTest, FastAndLegacyPathsDeliverIdentically) {
  for (bool fast : {true, false}) {
    TinyWorld world;
    Simulator sim;
    SimTransport transport(sim, world.catalog, world.backbone, world.clients);
    transport.set_fast_path(fast);
    EXPECT_EQ(transport.fast_path(), fast);
    EXPECT_EQ(sim.legacy_scheduling(), !fast);

    std::vector<std::pair<Millis, wire::Message>> got;
    transport.register_handler(Address::region(TinyWorld::kB),
                               [&](const wire::Message& m) {
                                 got.emplace_back(sim.now(), m);
                               });
    wire::Message msg = publication(777);
    msg.seq = 13;
    transport.send(Address::region(TinyWorld::kA),
                   Address::region(TinyWorld::kB), msg);
    sim.run();
    ASSERT_EQ(got.size(), 1u) << "fast=" << fast;
    EXPECT_DOUBLE_EQ(got[0].first, 80.0) << "fast=" << fast;
    EXPECT_EQ(got[0].second, msg) << "fast=" << fast;
    EXPECT_EQ(transport.ledger().inter_region_bytes[0], 777u);
  }
}

TEST_F(TransportTest, RegionDyingMidFlightDropsArrivalsOnBothPaths) {
  // A message already in flight towards a region that dies before it lands
  // is discarded on arrival: the bytes were billed at departure, but a dead
  // datacenter processes nothing. Both scheduling paths must agree.
  for (const bool fast : {true, false}) {
    TinyWorld world;
    Simulator sim;
    SimTransport transport(sim, world.catalog, world.backbone, world.clients);
    transport.set_fast_path(fast);

    std::uint64_t delivered = 0;
    transport.register_handler(Address::region(TinyWorld::kB),
                               [&](const wire::Message&) { ++delivered; });

    // A -> B takes 80 ms; B dies at t=40, while the message is in flight.
    transport.send(Address::region(TinyWorld::kA),
                   Address::region(TinyWorld::kB), publication(500));
    sim.schedule_at(40.0, [&] {
      transport.set_region_down(TinyWorld::kB, true);
    });
    sim.run();

    EXPECT_EQ(delivered, 0u) << "fast=" << fast;
    EXPECT_EQ(transport.sent_count(), 1u) << "fast=" << fast;
    EXPECT_EQ(transport.dropped_count(), 1u) << "fast=" << fast;
    EXPECT_EQ(transport.dropped_dead_arrival_count(), 1u) << "fast=" << fast;
    EXPECT_EQ(transport.delivered_count(), 0u) << "fast=" << fast;
    // Billed at departure regardless: the bytes left A.
    EXPECT_EQ(transport.ledger().inter_region_bytes[TinyWorld::kA.index()],
              500u);

    // After the region recovers, traffic flows (and is counted) again.
    transport.set_region_down(TinyWorld::kB, false);
    transport.send(Address::region(TinyWorld::kA),
                   Address::region(TinyWorld::kB), publication(500));
    sim.run();
    EXPECT_EQ(delivered, 1u) << "fast=" << fast;
    EXPECT_EQ(transport.delivered_count(), 1u) << "fast=" << fast;
  }
}

TEST_F(TransportTest, CounterBooksBalanceAcrossDropKinds) {
  // sent == delivered + (dropped - dropped_sender_down) once the queue
  // drains — the identity the chaos harness's counter oracle checks.
  transport_.register_handler(Address::region(TinyWorld::kB),
                              [](const wire::Message&) {});
  // One clean delivery, one to an unregistered address, one towards a dead
  // region, one from a dead region.
  transport_.send(Address::region(TinyWorld::kA),
                  Address::region(TinyWorld::kB), publication(10));
  transport_.send(Address::region(TinyWorld::kA),
                  Address::client(TinyWorld::kNearC), publication(10));
  transport_.set_region_down(TinyWorld::kC, true);
  transport_.send(Address::region(TinyWorld::kA),
                  Address::region(TinyWorld::kC), publication(10));
  transport_.send(Address::region(TinyWorld::kC),
                  Address::region(TinyWorld::kB), publication(10));
  sim_.run();

  EXPECT_EQ(transport_.sent_count(), 3u);
  EXPECT_EQ(transport_.delivered_count(), 1u);
  EXPECT_EQ(transport_.dropped_count(), 3u);
  EXPECT_EQ(transport_.dropped_sender_down_count(), 1u);
  EXPECT_EQ(transport_.dropped_unregistered_count(), 1u);
  EXPECT_EQ(transport_.sent_count(),
            transport_.delivered_count() + transport_.dropped_count() -
                transport_.dropped_sender_down_count());
}

}  // namespace
}  // namespace multipub::net
