#include "net/transport.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace multipub::net {
namespace {

using testutil::TinyWorld;

class TransportTest : public ::testing::Test {
 protected:
  TinyWorld world_;
  Simulator sim_;
  SimTransport transport_{sim_, world_.catalog, world_.backbone,
                          world_.clients};

  static wire::Message publication(Bytes payload) {
    wire::Message msg;
    msg.type = wire::MessageType::kPublish;
    msg.topic = TopicId{0};
    msg.payload_bytes = payload;
    return msg;
  }
};

TEST_F(TransportTest, DeliversAfterClientToRegionLatency) {
  Millis delivered_at = -1.0;
  transport_.register_handler(Address::region(TinyWorld::kA),
                              [&](const wire::Message&) {
                                delivered_at = sim_.now();
                              });
  transport_.send(Address::client(TinyWorld::kNearA),
                  Address::region(TinyWorld::kA), publication(100));
  sim_.run();
  EXPECT_DOUBLE_EQ(delivered_at, 10.0);  // L[nearA][A] = 10
}

TEST_F(TransportTest, DeliversAfterBackboneLatency) {
  Millis delivered_at = -1.0;
  transport_.register_handler(Address::region(TinyWorld::kB),
                              [&](const wire::Message&) {
                                delivered_at = sim_.now();
                              });
  transport_.send(Address::region(TinyWorld::kA),
                  Address::region(TinyWorld::kB), publication(100));
  sim_.run();
  EXPECT_DOUBLE_EQ(delivered_at, 80.0);  // backbone A-B
}

TEST_F(TransportTest, RegionToClientUsesSameMatrixAsClientToRegion) {
  EXPECT_DOUBLE_EQ(transport_.latency(Address::region(TinyWorld::kB),
                                      Address::client(TinyWorld::kNearB)),
                   15.0);
  EXPECT_DOUBLE_EQ(transport_.latency(Address::client(TinyWorld::kNearB),
                                      Address::region(TinyWorld::kB)),
                   15.0);
}

TEST_F(TransportTest, ClientEgressIsFree) {
  transport_.register_handler(Address::region(TinyWorld::kA),
                              [](const wire::Message&) {});
  transport_.send(Address::client(TinyWorld::kNearA),
                  Address::region(TinyWorld::kA), publication(1'000'000));
  sim_.run();
  EXPECT_DOUBLE_EQ(transport_.ledger().total_cost(world_.catalog), 0.0);
}

TEST_F(TransportTest, RegionToRegionBilledAtAlpha) {
  transport_.register_handler(Address::region(TinyWorld::kB),
                              [](const wire::Message&) {});
  transport_.send(Address::region(TinyWorld::kA),
                  Address::region(TinyWorld::kB), publication(1000));
  sim_.run();
  EXPECT_EQ(transport_.ledger().inter_region_bytes[0], 1000u);
  EXPECT_EQ(transport_.ledger().internet_bytes[0], 0u);
  EXPECT_DOUBLE_EQ(transport_.ledger().total_cost(world_.catalog),
                   1000.0 * per_gb_to_per_byte(0.02));
}

TEST_F(TransportTest, RegionToClientBilledAtBeta) {
  transport_.register_handler(Address::client(TinyWorld::kNearB),
                              [](const wire::Message&) {});
  wire::Message msg = publication(2000);
  msg.type = wire::MessageType::kDeliver;
  transport_.send(Address::region(TinyWorld::kB),
                  Address::client(TinyWorld::kNearB), msg);
  sim_.run();
  EXPECT_EQ(transport_.ledger().internet_bytes[1], 2000u);
  EXPECT_DOUBLE_EQ(transport_.ledger().total_cost(world_.catalog),
                   2000.0 * per_gb_to_per_byte(0.14));
}

TEST_F(TransportTest, ControlMessagesAreNotBilled) {
  transport_.register_handler(Address::client(TinyWorld::kNearA),
                              [](const wire::Message&) {});
  wire::Message msg;
  msg.type = wire::MessageType::kConfigUpdate;
  msg.payload_bytes = 999;  // even with a payload size set, control is free
  transport_.send(Address::region(TinyWorld::kA),
                  Address::client(TinyWorld::kNearA), msg);
  sim_.run();
  EXPECT_DOUBLE_EQ(transport_.ledger().total_cost(world_.catalog), 0.0);
}

TEST_F(TransportTest, UnregisteredDestinationCountsAsDropped) {
  transport_.send(Address::region(TinyWorld::kA),
                  Address::region(TinyWorld::kB), publication(500));
  sim_.run();
  EXPECT_EQ(transport_.dropped_count(), 1u);
  // Billing still happened: the bytes left region A.
  EXPECT_EQ(transport_.ledger().inter_region_bytes[0], 500u);
}

TEST_F(TransportTest, HandlerReplacementTakesEffect) {
  int first = 0, second = 0;
  const Address addr = Address::region(TinyWorld::kA);
  transport_.register_handler(addr, [&](const wire::Message&) { ++first; });
  transport_.register_handler(addr, [&](const wire::Message&) { ++second; });
  transport_.send(Address::client(TinyWorld::kNearA), addr, publication(1));
  sim_.run();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST_F(TransportTest, MessagePayloadSurvivesTransit) {
  wire::Message received;
  transport_.register_handler(Address::region(TinyWorld::kA),
                              [&](const wire::Message& m) { received = m; });
  wire::Message sent = publication(777);
  sent.seq = 42;
  sent.publisher = TinyWorld::kNearA;
  transport_.send(Address::client(TinyWorld::kNearA),
                  Address::region(TinyWorld::kA), sent);
  sim_.run();
  EXPECT_EQ(received, sent);
}

}  // namespace
}  // namespace multipub::net
