// Regression test for the short-write path in TcpEndpoint::send.
//
// With SO_SNDBUF shrunk to near the frame size and a receiver that never
// polls, a burst of sends overruns the kernel buffer mid-frame. The old
// implementation waited up to 100 ms for writability and then DROPPED the
// peer — tearing the stream and losing every queued frame. The endpoint
// must instead buffer the unsent remainder and flush it from poll() when
// the socket turns writable, so a slow receiver only delays frames.
#include <gtest/gtest.h>

#include <vector>

#include "net/tcp.h"

namespace multipub::net {
namespace {

wire::Message numbered(std::uint64_t seq) {
  wire::Message msg;
  msg.type = wire::MessageType::kPublish;
  msg.topic = TopicId{1};
  msg.publisher = ClientId{5};
  msg.seq = seq;
  msg.published_at = 10.0 * static_cast<double>(seq);
  msg.payload_bytes = 2048;
  return msg;
}

TEST(TcpSendBuffer, BurstAgainstTinyBufferArrivesIntactAndInOrder) {
  std::vector<wire::Message> inbox;
  TcpEndpoint server([&](const wire::Message& m) { inbox.push_back(m); });
  server.set_socket_buffer_bytes(256);
  ASSERT_TRUE(server.listen(0));

  TcpEndpoint client([](const wire::Message&) {});
  client.set_socket_buffer_bytes(256);
  const int peer = client.connect_to(server.port());
  ASSERT_GE(peer, 0);

  // Fill the pipe while the receiver is not draining. The kernel rounds
  // SO_SNDBUF up, but 1200 frames * 88 bytes far exceeds any doubling, so
  // many of these sends hit EAGAIN or partial writes. Every send must still
  // succeed (buffered, not dropped) and the connection must stay up.
  constexpr std::uint64_t kFrames = 1200;
  for (std::uint64_t seq = 0; seq < kFrames; ++seq) {
    ASSERT_TRUE(client.send(peer, numbered(seq))) << "seq " << seq;
  }
  ASSERT_EQ(client.connection_count(), 1u);
  EXPECT_GT(client.pending_send_bytes(peer), 0u)
      << "burst never backpressured: SO_SNDBUF shrink did not take effect";

  // Now let both sides run: the server drains, the client's poll() flushes
  // the outbox on POLLOUT. Everything must arrive, in order, undamaged.
  for (int round = 0; round < 4000 && inbox.size() < kFrames; ++round) {
    client.poll(5);
    server.poll(5);
  }
  ASSERT_EQ(inbox.size(), kFrames);
  EXPECT_EQ(client.pending_send_bytes(peer), 0u);
  EXPECT_EQ(server.corrupt_frames(), 0u);
  for (std::uint64_t seq = 0; seq < kFrames; ++seq) {
    ASSERT_EQ(inbox[seq], numbered(seq)) << "out of order at " << seq;
  }
}

TEST(TcpSendBuffer, ReplayBatchBurstSurvivesShortWritesOnV4Frames) {
  // The v4 frame is 88 bytes — no longer a divisor-friendly 80 — so a
  // 256-byte SO_SNDBUF cuts frames at different intra-frame offsets than
  // v3 did. A replay burst (the reliability path most likely to flood a
  // connection right after a reconnect) must survive the short writes with
  // every delivery_seq stamp intact and in order.
  std::vector<wire::Message> inbox;
  TcpEndpoint server([&](const wire::Message& m) { inbox.push_back(m); });
  server.set_socket_buffer_bytes(256);
  ASSERT_TRUE(server.listen(0));

  TcpEndpoint client([](const wire::Message&) {});
  client.set_socket_buffer_bytes(256);
  const int peer = client.connect_to(server.port());
  ASSERT_GE(peer, 0);

  constexpr std::uint64_t kFrames = 600;
  for (std::uint64_t seq = 0; seq < kFrames; ++seq) {
    wire::Message batch = numbered(seq);
    batch.type = wire::MessageType::kReplayBatch;
    batch.subscriber = ClientId{7};
    batch.delivery_seq = seq + 1;  // the ring stamp the client gap-checks
    ASSERT_TRUE(client.send(peer, batch)) << "seq " << seq;
  }

  for (int round = 0; round < 4000 && inbox.size() < kFrames; ++round) {
    client.poll(5);
    server.poll(5);
  }
  ASSERT_EQ(inbox.size(), kFrames);
  EXPECT_EQ(server.corrupt_frames(), 0u);
  for (std::uint64_t seq = 0; seq < kFrames; ++seq) {
    ASSERT_EQ(inbox[seq].type, wire::MessageType::kReplayBatch);
    ASSERT_EQ(inbox[seq].delivery_seq, seq + 1) << "stamp torn at " << seq;
  }
}

TEST(TcpSendBuffer, PendingBytesReportsZeroForUnknownPeer) {
  TcpEndpoint endpoint([](const wire::Message&) {});
  EXPECT_EQ(endpoint.pending_send_bytes(1234), 0u);
}

}  // namespace
}  // namespace multipub::net
