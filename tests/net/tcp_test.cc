#include "net/tcp.h"

#include <gtest/gtest.h>

#include <vector>

namespace multipub::net {
namespace {

wire::Message sample(std::uint64_t seq) {
  wire::Message msg;
  msg.type = wire::MessageType::kPublish;
  msg.topic = TopicId{3};
  msg.publisher = ClientId{7};
  msg.seq = seq;
  msg.published_at = 123.5;
  msg.payload_bytes = 1024;
  return msg;
}

/// Pumps both endpoints until `pred` holds or the budget is exhausted.
template <typename Pred>
bool pump(TcpEndpoint& a, TcpEndpoint& b, Pred pred, int budget_ms = 2000) {
  for (int elapsed = 0; elapsed < budget_ms; elapsed += 10) {
    a.poll(5);
    b.poll(5);
    if (pred()) return true;
  }
  return pred();
}

TEST(TcpEndpoint, ListenAssignsEphemeralPort) {
  TcpEndpoint server([](const wire::Message&) {});
  ASSERT_TRUE(server.listen(0));
  EXPECT_GT(server.port(), 0);
}

TEST(TcpEndpoint, RoundTripsSingleMessage) {
  std::vector<wire::Message> inbox;
  TcpEndpoint server([&](const wire::Message& m) { inbox.push_back(m); });
  ASSERT_TRUE(server.listen(0));

  TcpEndpoint client([](const wire::Message&) {});
  const int peer = client.connect_to(server.port());
  ASSERT_GE(peer, 0);

  const wire::Message msg = sample(42);
  ASSERT_TRUE(client.send(peer, msg));
  ASSERT_TRUE(pump(server, client, [&] { return inbox.size() == 1; }));
  EXPECT_EQ(inbox[0], msg);
}

TEST(TcpEndpoint, PreservesOrderAcrossManyMessages) {
  std::vector<wire::Message> inbox;
  TcpEndpoint server([&](const wire::Message& m) { inbox.push_back(m); });
  ASSERT_TRUE(server.listen(0));

  TcpEndpoint client([](const wire::Message&) {});
  const int peer = client.connect_to(server.port());
  ASSERT_GE(peer, 0);

  constexpr std::uint64_t kCount = 500;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    ASSERT_TRUE(client.send(peer, sample(i)));
  }
  ASSERT_TRUE(pump(server, client, [&] { return inbox.size() == kCount; }));
  for (std::uint64_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(inbox[i].seq, i);
  }
}

TEST(TcpEndpoint, BidirectionalTraffic) {
  std::vector<wire::Message> server_inbox, client_inbox;
  TcpEndpoint server(
      [&](const wire::Message& m) { server_inbox.push_back(m); });
  ASSERT_TRUE(server.listen(0));
  TcpEndpoint client(
      [&](const wire::Message& m) { client_inbox.push_back(m); });
  const int to_server = client.connect_to(server.port());
  ASSERT_GE(to_server, 0);

  ASSERT_TRUE(client.send(to_server, sample(1)));
  ASSERT_TRUE(pump(server, client, [&] { return server_inbox.size() == 1; }));

  // Server replies over the accepted connection (handle 0: its first peer).
  ASSERT_EQ(server.connection_count(), 1u);
  ASSERT_TRUE(server.send(0, sample(2)));
  ASSERT_TRUE(pump(server, client, [&] { return client_inbox.size() == 1; }));
  EXPECT_EQ(client_inbox[0].seq, 2u);
}

TEST(TcpEndpoint, MultipleClients) {
  std::vector<wire::Message> inbox;
  TcpEndpoint server([&](const wire::Message& m) { inbox.push_back(m); });
  ASSERT_TRUE(server.listen(0));

  TcpEndpoint c1([](const wire::Message&) {});
  TcpEndpoint c2([](const wire::Message&) {});
  const int p1 = c1.connect_to(server.port());
  const int p2 = c2.connect_to(server.port());
  ASSERT_GE(p1, 0);
  ASSERT_GE(p2, 0);

  ASSERT_TRUE(c1.send(p1, sample(100)));
  ASSERT_TRUE(c2.send(p2, sample(200)));
  ASSERT_TRUE(pump(server, c1, [&] {
    c2.poll(1);
    return inbox.size() == 2;
  }));
  EXPECT_EQ(server.connection_count(), 2u);
}

TEST(TcpEndpoint, AllMessageTypesSurviveTheSocket) {
  std::vector<wire::Message> inbox;
  TcpEndpoint server([&](const wire::Message& m) { inbox.push_back(m); });
  ASSERT_TRUE(server.listen(0));
  TcpEndpoint client([](const wire::Message&) {});
  const int peer = client.connect_to(server.port());
  ASSERT_GE(peer, 0);

  std::vector<wire::Message> sent;
  for (auto type : {wire::MessageType::kSubscribe, wire::MessageType::kPublish,
                    wire::MessageType::kForward, wire::MessageType::kDeliver,
                    wire::MessageType::kConfigUpdate, wire::MessageType::kPing,
                    wire::MessageType::kPong,
                    wire::MessageType::kLatencyReport}) {
    wire::Message msg = sample(sent.size());
    msg.type = type;
    msg.config_regions = geo::RegionSet(0b1010101);
    sent.push_back(msg);
    ASSERT_TRUE(client.send(peer, msg));
  }
  ASSERT_TRUE(
      pump(server, client, [&] { return inbox.size() == sent.size(); }));
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(inbox[i], sent[i]);
  }
}

TEST(TcpEndpoint, ConnectToClosedPortFails) {
  TcpEndpoint client([](const wire::Message&) {});
  // Port 1 is privileged and almost certainly closed.
  EXPECT_EQ(client.connect_to(1), -1);
}

TEST(TcpEndpoint, SendToUnknownPeerFails) {
  TcpEndpoint client([](const wire::Message&) {});
  EXPECT_FALSE(client.send(123, sample(0)));
}

TEST(TcpEndpoint, CloseAllDropsConnections) {
  TcpEndpoint server([](const wire::Message&) {});
  ASSERT_TRUE(server.listen(0));
  TcpEndpoint client([](const wire::Message&) {});
  const int peer = client.connect_to(server.port());
  ASSERT_GE(peer, 0);
  client.close_all();
  EXPECT_EQ(client.connection_count(), 0u);
  EXPECT_FALSE(client.send(peer, sample(0)));
}

}  // namespace
}  // namespace multipub::net
