// TCP framing robustness: frames arriving split or coalesced across reads.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "net/tcp.h"

namespace multipub::net {
namespace {

wire::Message sample(std::uint64_t seq) {
  wire::Message msg;
  msg.type = wire::MessageType::kPublish;
  msg.topic = TopicId{1};
  msg.publisher = ClientId{2};
  msg.seq = seq;
  msg.payload_bytes = 256;
  return msg;
}

/// Raw blocking socket to 127.0.0.1:port (no framing logic of its own).
class RawClient {
 public:
  explicit RawClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~RawClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  [[nodiscard]] bool connected() const { return connected_; }
  void send_bytes(const std::byte* data, std::size_t n) {
    ASSERT_EQ(::send(fd_, data, n, 0), static_cast<ssize_t>(n));
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

/// Pumps the endpoint until `received` frames arrived or time runs out.
void pump_until(TcpEndpoint& endpoint, std::size_t target) {
  for (int spins = 0; spins < 400; ++spins) {
    endpoint.poll(5);
    if (endpoint.received_count() >= target) return;
  }
}

TEST(TcpPartialFrames, ByteByByteDelivery) {
  std::vector<wire::Message> inbox;
  TcpEndpoint server([&](const wire::Message& m) { inbox.push_back(m); });
  ASSERT_TRUE(server.listen(0));
  RawClient raw(server.port());
  ASSERT_TRUE(raw.connected());

  const auto frame = wire::encode(sample(7));
  for (std::size_t i = 0; i < frame.size(); ++i) {
    raw.send_bytes(frame.data() + i, 1);
    server.poll(1);
  }
  pump_until(server, 1);
  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_EQ(inbox[0].seq, 7u);
}

TEST(TcpPartialFrames, SplitAcrossArbitraryBoundary) {
  std::vector<wire::Message> inbox;
  TcpEndpoint server([&](const wire::Message& m) { inbox.push_back(m); });
  ASSERT_TRUE(server.listen(0));
  RawClient raw(server.port());
  ASSERT_TRUE(raw.connected());

  const auto a = wire::encode(sample(1));
  const auto b = wire::encode(sample(2));
  // First frame + half of the second in one write; the rest later.
  std::vector<std::byte> first(a.begin(), a.end());
  first.insert(first.end(), b.begin(), b.begin() + 30);
  raw.send_bytes(first.data(), first.size());
  pump_until(server, 1);
  EXPECT_EQ(inbox.size(), 1u);

  raw.send_bytes(b.data() + 30, b.size() - 30);
  pump_until(server, 2);
  ASSERT_EQ(inbox.size(), 2u);
  EXPECT_EQ(inbox[1].seq, 2u);
}

TEST(TcpPartialFrames, CoalescedBurstDecodesAll) {
  std::vector<wire::Message> inbox;
  TcpEndpoint server([&](const wire::Message& m) { inbox.push_back(m); });
  ASSERT_TRUE(server.listen(0));
  RawClient raw(server.port());
  ASSERT_TRUE(raw.connected());

  std::vector<std::byte> burst;
  for (std::uint64_t i = 0; i < 50; ++i) {
    const auto frame = wire::encode(sample(i));
    burst.insert(burst.end(), frame.begin(), frame.end());
  }
  raw.send_bytes(burst.data(), burst.size());
  pump_until(server, 50);
  ASSERT_EQ(inbox.size(), 50u);
  for (std::uint64_t i = 0; i < 50; ++i) EXPECT_EQ(inbox[i].seq, i);
}

TEST(TcpPartialFrames, GarbageDropsTheConnection) {
  TcpEndpoint server([](const wire::Message&) {});
  ASSERT_TRUE(server.listen(0));
  RawClient raw(server.port());
  ASSERT_TRUE(raw.connected());

  std::byte junk[wire::kEncodedSize];
  for (auto& b : junk) b = std::byte{0x5A};
  raw.send_bytes(junk, sizeof(junk));
  for (int spins = 0; spins < 100 && server.corrupt_frames() == 0; ++spins) {
    server.poll(5);
  }
  EXPECT_EQ(server.corrupt_frames(), 1u);
  EXPECT_EQ(server.connection_count(), 0u);  // dropped
}

}  // namespace
}  // namespace multipub::net
